(** The overload-resilient query daemon.

    A long-lived HTTP/JSON front end over a {!Dirty.Store} directory
    and {!Conquer.Clean} query answering, designed to degrade rather
    than fall over:

    - {b admission control}: accepted connections enter a bounded
      queue drained by a fixed pool of worker domains; when the queue
      is full the request is shed immediately with 503 and a
      [Retry-After] hint instead of piling up latency for everyone.
    - {b deadlines}: every query runs under a wall-clock deadline
      (from the [deadline_ms] parameter, clamped to the configured
      maximum).  Time spent waiting in the queue counts against it.
      An expired deadline never produces a 500: if the query already
      started, the partial rows computed so far come back as HTTP 200
      with ["partial": true]; if it never started, 408.
    - {b disconnect cancellation}: a reaper domain watches in-flight
      connections; a client that goes away trips the query's
      cancellation token, freeing the worker at its next checkpoint.
    - {b circuit breaker}: repeated store failures (corruption,
      injected I/O faults, exhausted retries) open a per-store
      {!Breaker}; while open, queries answer 503 without touching the
      store, and a jittered-backoff probe schedule closes it again
      once the store heals.
    - {b prepared queries and result cache}: parsing and rewriting
      are cached per normalized query text; complete (non-partial)
      results are cached keyed on (normalized query, mode, store
      generation), so a store commit invalidates every stale entry by
      construction.
    - {b graceful drain}: {!shutdown} (the SIGTERM handler's job)
      stops accepting, lets workers finish the queue, and — if the
      drain deadline passes — cancels what is still running before
      joining every domain.

    {b HTTP surface} (one request per connection, [Content-Length]
    framing):

    - [GET /healthz] — 200 while the process lives.
    - [GET /readyz] — 200 when accepting and the breaker is closed,
      503 otherwise.
    - [GET /metrics] — Prometheus text exposition of the telemetry
      registry (conformant classic format: [_total] counter families,
      cumulative [_bucket]/[_sum]/[_count] histograms).
    - [GET /debug/requests] — queries executing right now, with trace
      id, elapsed and queue-wait milliseconds.
    - [GET /debug/traces] and [GET /debug/traces/<id>] — the bounded
      ring of retained span trees, as JSON (or pre-rendered text with
      [?format=pretty], which is what [conquer trace <id>] prints).
    - [GET /debug/querylog?n=K&after=SEQ] — the structured query log
      as JSON lines; poll with the last [seq] as [after] to tail it.
    - [GET /debug/gc] — a [Gc.quick_stat] heap snapshot.
    - [GET /debug/exemplars] — histogram buckets joined to the trace
      ids of recent requests that landed in them.
    - [POST /update] ({!Dirty.Delta} CSV records as the body) —
      validate the batch against the current snapshot, apply it with
      renormalization, and commit it crash-atomically (a delta
      generation, or a compacting full save once the chain reaches
      [compact_every]).  200 carries [{"generation", "ops", "touched",
      "compacted", "elapsed_ms"}]; the generation bump invalidates
      every cached result by construction.  400 for malformed CSV or
      an invalid op (nothing is committed), 503 with [Retry-After]
      when the breaker is open, the store is unavailable, or the
      probe/reload race persists — never 500 for contention.
    - [POST /query] (SQL text as the body) or [GET /query?sql=...] —
      query parameters [deadline_ms], [budget_rows], and
      [mode=rewritten|original].  200 carries
      [{"columns", "rows", "row_count", "generation", "partial",
      "truncated", "cancelled", "cached", "elapsed_ms"}]; 400 for
      unparsable or non-rewritable queries, 408 for a deadline that
      expired before execution began, 503 when shed, draining, or
      breaker-open, 500 (with the telemetry counter
      [serve.internal_errors]) for anything else — the worker never
      dies.

    {b Tracing}: every /query response carries an [X-Trace-Id] header
    (the client's, when it sent a plausible one; fresh otherwise).
    When the id samples in under [trace_sample] — a deterministic
    hash of the id, so reissuing the same id reproduces the decision
    — or the request crosses [slow_query_ms], the request's span tree
    (queue wait, store probe, prepare, cache probe, planner,
    per-operator execution, serialization, response write) is
    retained and served at [/debug/traces/<id>].  Every /query lands
    one structured record in the query log regardless of sampling. *)

type config = {
  host : string;  (** bind address, default 127.0.0.1 *)
  port : int;  (** 0 picks an ephemeral port (see {!port}) *)
  concurrency : int;  (** worker domains draining the queue *)
  queue_capacity : int;  (** admission queue bound; beyond it, shed *)
  default_deadline : float;  (** seconds, when [deadline_ms] absent *)
  max_deadline : float;  (** ceiling clamped onto client deadlines *)
  default_budget_rows : int option;  (** row budget when none given *)
  jobs : int;  (** engine domains per query; 1 = serial execution *)
  shards : int;
      (** cluster-hash shards the store is partitioned into at session
          load ([--shards]); shardable queries scatter across them and
          gather ({!Engine.Shard}), the rest run unsharded.  [1] (the
          default) disables sharding.  Answers are bag-identical
          whatever the value. *)
  cache_capacity : int;  (** result-cache entries; 0 disables *)
  breaker_threshold : int;  (** store failures before tripping open *)
  compact_every : int;
      (** delta-chain length at which an update commits as a
          compacting full snapshot instead of another delta *)
  drain_deadline : float;  (** seconds {!run} waits before hard drain *)
  retry_after : float;  (** seconds advertised on shed responses *)
  trace_sample : float;
      (** fraction of /query requests whose span tree is retained
          (decided deterministically from the trace id); 0 disables *)
  slow_query_ms : float option;
      (** total latency above this promotes the request to a full
          span dump and the query log's [slow] flag *)
  trace_capacity : int;  (** retained span trees (newest win) *)
  querylog_capacity : int;  (** query-log ring entries *)
  querylog_path : string option;
      (** also append each query-log record as a JSON line here *)
}

val default_config : config

type t

val create : ?config:config -> dir:string -> unit -> t
(** Sweep the store directory ({!Dirty.Store.recover}), load the
    committed snapshot, build the query session, and bind the listen
    socket.  Enables telemetry for the process (the daemon's counters
    and [/metrics] endpoint are part of its contract).
    @raise Dirty.Store.Corrupt when no intact snapshot exists (the
    CLI maps this to exit code 4). *)

val port : t -> int
(** The bound port (useful with [port = 0]). *)

val recovery_log : t -> string list
(** What the startup {!Dirty.Store.recover} sweep removed. *)

type drain_report = {
  drained : bool;
      (** every in-flight and queued request completed within
          [drain_deadline] *)
  cancelled_inflight : int;
      (** queries force-cancelled by the hard drain *)
}

val run : t -> drain_report
(** Serve until {!shutdown}: spawns the worker pool and the
    disconnect reaper, then accepts in the calling domain (with
    [SIGPIPE] ignored process-wide — socket writes must fail with
    [EPIPE], not kill the daemon).  Returns once every domain is
    joined. *)

val shutdown : t -> unit
(** Begin draining: stop accepting, finish (or, past the drain
    deadline, cancel) in-flight work.  Safe from any domain;
    idempotent.  Takes a lock — from a signal handler use
    {!request_shutdown} instead. *)

val request_shutdown : t -> unit
(** Async-signal-safe {!shutdown} request (one atomic store): the
    accept loop notices within one poll interval and begins the
    drain.  This is what the CLI's SIGTERM/SIGINT handlers call. *)
