(** Cluster-sharded scatter/gather execution (ROADMAP item 5).

    A shard session hash-partitions a dirty database along cluster
    boundaries ({!Dirty.Dirty_db.partition}) into [N] in-process shard
    catalogs.  A shardable query is rewritten into one serializable
    {e plan fragment} that every shard runs against [its fragment of
    one {e partition table} ∪ the global copies of every other table]
    (a broadcast join), scattered on the {!Parallel} domain pool; the
    partial results are gathered — SPJ outputs concatenated in shard
    order, aggregate groups merged additively in first-occurrence
    order — and a small {e finish} query over the merged intermediate
    restores the original projection, HAVING, DISTINCT and ORDER BY.

    {b Correctness.}  The partition table is a FROM table whose name
    occurs exactly once, so every result row of the inner-join block
    contains exactly one partition-table row; the fragments partition
    that table, hence each result row is produced by exactly one shard
    and nothing is double-counted.  SUM/COUNT partials merge by
    addition, MIN/MAX by {!Dirty.Value.compare}.  The merge scans
    partials in shard-index order and keeps groups in first-occurrence
    order of that scan, so answers are a deterministic function of the
    data and the shard count; row order may differ from the unsharded
    run, but the answer bags are identical (the differential fuzzer
    checks this across shard counts, job counts and both executors).

    {b Fallback.}  Queries outside the shardable class — subqueries,
    [SELECT *], LIMIT, outer joins, AVG, DISTINCT aggregates, no
    unique FROM table, or HAVING/ORDER BY not expressible over the
    partials — yield [None] from the entry points; the caller runs
    them unsharded through the plain {!Database} path. *)

type session

val create :
  ?index_identifiers:bool ->
  base:Database.t ->
  shards:int ->
  Dirty.Dirty_db.t ->
  session
(** Partition the dirty database into [shards] fragment catalogs.
    [base] is the unpartitioned engine database holding the full
    tables; per-query each shard overlays its fragment of the chosen
    partition table over it ({!Database.overlay}), so non-partitioned
    tables are shared, not copied.  When [index_identifiers] (default
    [true]) each fragment table gets a hash index on its identifier
    attribute and statistics, mirroring the base catalog.
    @raise Invalid_argument when [shards < 1]. *)

val shards : session -> int

val fragment_db : session -> int -> Database.t
(** The shard's fragment catalog (all dirty tables' fragments);
    exposed for tests. *)

(** {1 The scatter/gather boundary}

    Both sides of the boundary are serializable, so a future
    out-of-process worker can receive a fragment and return a partial
    result as text. *)

type fragment = { frag_table : string; frag_query : Sql.Ast.query }
(** The plan fragment every shard executes: [frag_table] names the
    partition table (the shard substitutes its fragment of it);
    [frag_query] is the rewritten per-shard query. *)

val fragment_to_string : fragment -> string
(** Partition-table line followed by the fragment SQL. *)

val fragment_of_string : string -> fragment
(** Inverse of {!fragment_to_string}.
    @raise Invalid_argument on a missing table line.
    @raise Sql.Parser.Error on malformed SQL. *)

val partial_to_string : Dirty.Relation.t -> string
(** Serialize a partial result: a CSV-framed header line of column
    names, then one line per row with self-describing typed cells
    ([i:], [f:] in lossless hex-float form, [s:], [b:], [d:], [n:]).
    Every value — including non-finite floats — round-trips
    exactly. *)

val partial_of_string : string -> Dirty.Relation.t
(** Inverse of {!partial_to_string}; column types are re-inferred from
    the decoded values.
    @raise Invalid_argument on malformed input. *)

type plan
(** A shardable query's scatter/gather plan: the fragment plus how to
    gather (concatenate or merge) and the finish query. *)

val plan_query : session -> Sql.Ast.query -> plan option
(** Analyze a query for shardability; [None] when it falls outside the
    shardable class (see the fallback list above). *)

val plan_fragment : plan -> fragment
val partition_table : plan -> string

(** {1 Gather} *)

val merge_partials :
  num_keys:int ->
  aggs:Sql.Ast.agg_fun array ->
  Dirty.Relation.t list ->
  Dirty.Relation.t
(** Merge per-shard GROUP BY partials: rows are keyed on their first
    [num_keys] columns; the remaining columns merge per [aggs] —
    [Count]/[Sum] add ([Null] means the shard saw no rows for the
    group; [Int]+[Int] stays exact, mixed operands add as floats),
    [Min]/[Max] compare.  Partials are scanned in list order and
    groups emitted in first-occurrence order of that scan, making the
    result deterministic for a fixed partial order.
    @raise Invalid_argument on arity mismatches, non-numeric partials
    under an additive merge, or an [Avg] merge (never produced by
    {!plan_query}). *)

(** {1 Query entry points}

    Sharded analogues of {!Database.query_ast} and
    {!Database.query_ast_within}: the same config flows to every
    shard, so [jobs], [chunked], spill settings and budgets apply {e
    per shard} (a Raise-mode budget that any shard exceeds raises; a
    Truncate-mode budget truncates each shard's partial independently
    and the stop flags are OR-combined).  The finish query runs on the
    coordinator with budgets and spill stripped — each shard already
    charged its own.  [None] means the query is not shardable and the
    caller must run it unsharded. *)

val query_ast :
  ?config:Planner.config -> session -> Sql.Ast.query -> Dirty.Relation.t option

val query_ast_within :
  ?config:Planner.config ->
  ?cancel:Cancel.token ->
  session ->
  Sql.Ast.query ->
  (Dirty.Relation.t * Database.stop) option
(** [cancel] is attached to every shard's execution; a trip stops each
    shard at its next checkpoint and surfaces as [stop.cancelled]. *)
