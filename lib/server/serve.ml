(* The daemon proper: admission queue, worker pool, disconnect
   reaper, circuit-breaker-guarded store access, result cache, and
   the drain protocol.  See serve.mli for the behavioral contract and
   DESIGN.md §5h for the rationale. *)

(* ---- telemetry ---- *)

let m_requests =
  Telemetry.Metrics.counter "serve.requests" ~help:"query requests admitted"

let m_shed =
  Telemetry.Metrics.counter "serve.shed"
    ~help:"requests refused with 503 because the admission queue was full"

let m_cancelled =
  Telemetry.Metrics.counter "serve.cancelled"
    ~help:"queries cancelled (deadline, disconnect, or drain)"

let m_partial =
  Telemetry.Metrics.counter "serve.partial"
    ~help:"200 responses carrying a partial (budgeted) answer set"

let m_cache_hits =
  Telemetry.Metrics.counter "serve.cache_hits"
    ~help:"queries answered from the result cache"

let m_internal =
  Telemetry.Metrics.counter "serve.internal_errors"
    ~help:"requests that ended in an unexpected exception (500)"

let m_updates =
  Telemetry.Metrics.counter "serve.updates"
    ~help:"update batches applied and committed"

let g_inflight =
  Telemetry.Metrics.gauge "serve.in_flight" ~help:"queries executing right now"

let g_queue =
  Telemetry.Metrics.gauge "serve.queue_depth" ~help:"requests waiting for a worker"

let m_slow =
  Telemetry.Metrics.counter "serve.slow_queries"
    ~help:"requests whose total latency crossed --slow-query-ms"

let m_traced =
  Telemetry.Metrics.counter "serve.traced"
    ~help:"requests whose span tree was retained in the trace ring"

let h_latency =
  Telemetry.Metrics.histogram "serve.request_seconds"
    ~help:"wall-clock seconds from accept to response"

(* ---- configuration ---- *)

type config = {
  host : string;
  port : int;
  concurrency : int;
  queue_capacity : int;
  default_deadline : float;
  max_deadline : float;
  default_budget_rows : int option;
  jobs : int;
  shards : int;
  cache_capacity : int;
  breaker_threshold : int;
  compact_every : int;
  drain_deadline : float;
  retry_after : float;
  trace_sample : float;
  slow_query_ms : float option;
  trace_capacity : int;
  querylog_capacity : int;
  querylog_path : string option;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    concurrency = 4;
    queue_capacity = 64;
    default_deadline = 5.0;
    max_deadline = 60.0;
    default_budget_rows = None;
    jobs = 1;
    shards = 1;
    cache_capacity = 256;
    breaker_threshold = 3;
    compact_every = 16;
    drain_deadline = 5.0;
    retry_after = 1.0;
    trace_sample = 0.0;
    slow_query_ms = None;
    trace_capacity = 128;
    querylog_capacity = 512;
    querylog_path = None;
  }

(* ---- state ---- *)

type job = { fd : Unix.file_descr; enqueued_at : float }

(* what /debug/requests shows about a query that is executing right
   now; the reaper and the hard drain only need [if_fd]/[if_token] *)
type inflight = {
  if_fd : Unix.file_descr;
  if_token : Engine.Cancel.token;
  if_trace_id : string;
  if_sql : string;
  if_mode : string;
  if_enqueued_at : float;
  if_started_at : float;
}

type t = {
  cfg : config;
  dir : string;
  listen_fd : Unix.file_descr;
  bound_port : int;
  recovered : string list;
  (* admission queue *)
  qlock : Mutex.t;
  qcond : Condition.t;
  queue : job Queue.t;
  mutable draining : bool;
  mutable hard_drain : bool;
  (* store session, guarded by slock *)
  slock : Mutex.t;
  breaker : Breaker.t;
  mutable session : (int * Conquer.Clean.session) option;
  prepared : (string, Sql.Ast.query * string) Cache.t;
  results : (string, string * int) Cache.t;
  (* observability: retained traces and the structured query log *)
  traces : Telemetry.Trace.ring;
  querylog : Querylog.t;
  (* in-flight queries, for the reaper, the hard drain, and
     /debug/requests *)
  ilock : Mutex.t;
  inflight : (int, inflight) Hashtbl.t;
  mutable next_id : int;
  active : int Atomic.t;
  reaper_stop : bool Atomic.t;
  force_cancelled : int Atomic.t;
  stop_requested : bool Atomic.t;
}

(* ---- small helpers ---- *)

let locked lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* ---- JSON rendering ---- *)

let value_json v =
  match v with
  | Dirty.Value.Null -> "null"
  | Dirty.Value.Bool b -> if b then "true" else "false"
  | Dirty.Value.Int i -> string_of_int i
  | Dirty.Value.Float f -> Telemetry.Export.json_float f
  | Dirty.Value.String s -> Telemetry.Export.json_string s
  | Dirty.Value.Date _ -> Telemetry.Export.json_string (Dirty.Value.to_string v)

(* the cacheable core of a /query response: everything except the
   per-request [cached] and [elapsed_ms] fields *)
let result_core rel ~generation ~truncated ~cancelled =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "\"columns\":[";
  List.iteri
    (fun i name ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Telemetry.Export.json_string name))
    (Dirty.Schema.names (Dirty.Relation.schema rel));
  Buffer.add_string buf "],\"rows\":[";
  Array.iteri
    (fun i row ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '[';
      Array.iteri
        (fun j v ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (value_json v))
        row;
      Buffer.add_char buf ']')
    (Dirty.Relation.rows rel);
  Buffer.add_string buf
    (Printf.sprintf "],\"row_count\":%d,\"generation\":%d"
       (Dirty.Relation.cardinality rel) generation);
  Buffer.add_string buf
    (Printf.sprintf ",\"partial\":%b,\"truncated\":%b,\"cancelled\":%b"
       (truncated || cancelled) truncated cancelled);
  Buffer.contents buf

let compose_body ~core ~cached ~elapsed =
  Printf.sprintf "{%s,\"cached\":%b,\"elapsed_ms\":%s}" core cached
    (Telemetry.Export.json_float (elapsed *. 1000.0))

let error_body detail =
  Printf.sprintf "{\"error\":%s}" (Telemetry.Export.json_string detail)

(* ---- construction ---- *)

(* every snapshot swap rebuilds the session the same way: sharded
   when the daemon was configured with [--shards N] (N > 1) *)
let clean_session (cfg : config) db =
  Conquer.Clean.create
    ?shards:(if cfg.shards > 1 then Some cfg.shards else None)
    db

let create ?(config = default_config) ~dir () =
  Telemetry.Control.enable ();
  let recovered = Dirty.Store.recover dir in
  let db = Dirty.Store.load dir in
  let generation = Dirty.Store.generation dir in
  let session = clean_session config db in
  let listen_fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt listen_fd SO_REUSEADDR true;
  (try
     Unix.bind listen_fd
       (ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
     Unix.listen listen_fd 128
   with e ->
     close_quiet listen_fd;
     raise e);
  let bound_port =
    match Unix.getsockname listen_fd with
    | ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  {
    cfg = config;
    dir;
    listen_fd;
    bound_port;
    recovered;
    qlock = Mutex.create ();
    qcond = Condition.create ();
    queue = Queue.create ();
    draining = false;
    hard_drain = false;
    slock = Mutex.create ();
    breaker = Breaker.create ~threshold:config.breaker_threshold ();
    session = Some (generation, session);
    prepared = Cache.create ~capacity:config.cache_capacity;
    results = Cache.create ~capacity:config.cache_capacity;
    traces = Telemetry.Trace.ring_create ~capacity:config.trace_capacity;
    querylog =
      Querylog.create ~capacity:config.querylog_capacity
        ?path:config.querylog_path ();
    ilock = Mutex.create ();
    inflight = Hashtbl.create 64;
    next_id = 0;
    active = Atomic.make 0;
    reaper_stop = Atomic.make false;
    force_cancelled = Atomic.make 0;
    stop_requested = Atomic.make false;
  }

let port t = t.bound_port
let recovery_log t = t.recovered

(* ---- store session management ---- *)

(* The single chokepoint for store access.  Probes the committed
   generation on every query (one small read through Fault.Io — this
   IS the cache-invalidation mechanism) and reloads the snapshot when
   it moved.  All failures feed the circuit breaker; while the breaker
   is open the probe is skipped entirely and the caller sheds. *)
(* losing the probe/reload race repeatedly is contention, not damage:
   it must surface as a retryable 503, never a 500 *)
exception Generation_unstable

let ensure_session_locked t =
  if not (Breaker.allow t.breaker) then
    Error "store circuit breaker open; retry later"
  else
    match
      let rec probe_and_load attempts =
        let generation = Dirty.Store.generation t.dir in
        match t.session with
        | Some (g, s) when g = generation -> (generation, s)
        | _ ->
          let db = Fault.Retry.with_retry (fun () -> Dirty.Store.load t.dir) in
          (* a commit can land between the probe and the load, which
             would label the newer snapshot with the older generation
             (and poison the result cache under that key) — re-probe
             and reload until the generation is stable around the
             load, giving up (retryably) under sustained writer
             pressure rather than spinning *)
          if Dirty.Store.generation t.dir <> generation then
            if attempts <= 1 then raise Generation_unstable
            else probe_and_load (attempts - 1)
          else begin
            let s = clean_session t.cfg db in
            t.session <- Some (generation, s);
            Cache.clear t.prepared;
            let live_suffix = Printf.sprintf "|g%d" generation in
            Cache.drop t.results (fun k ->
                not (String.ends_with ~suffix:live_suffix k));
            (generation, s)
          end
      in
      probe_and_load 5
    with
    | pair ->
      Breaker.success t.breaker;
      Ok pair
    | exception Generation_unstable ->
      (* not a store failure: don't count against the breaker *)
      Error "store generation moving under concurrent commits; retry later"
    | exception e ->
      Breaker.failure t.breaker;
      Error (Printf.sprintf "store unavailable: %s" (Printexc.to_string e))

let ensure_session t = locked t.slock @@ fun () -> ensure_session_locked t

(* The write path: validate and apply the batch against the current
   in-memory snapshot, persist it (a delta commit, or a compacting
   full save once the chain reaches [compact_every]), and swap the
   session in place — the daemon never reloads what it just applied.
   Serialized by [slock] with the probe/reload path, so readers always
   pair the right generation with the right session. *)
let apply_update t batch =
  locked t.slock @@ fun () ->
  match ensure_session_locked t with
  | Error detail -> Error (`Unavailable detail)
  | Ok (_generation, session) -> (
    match Dirty.Delta.apply (Conquer.Clean.dirty_db session) batch with
    | exception Dirty.Delta.Invalid msg -> Error (`Invalid msg)
    | outcome -> (
      let compact =
        Dirty.Store.delta_chain_length t.dir + 1 >= t.cfg.compact_every
      in
      match
        (* the store does its own transient-fault retries through
           Fault.Io; retrying the whole commit here could apply the
           batch twice if a failure landed after the CURRENT flip *)
        if compact then begin
          Dirty.Store.save t.dir outcome.Dirty.Delta.db;
          Dirty.Store.generation t.dir
        end
        else Dirty.Store.commit_delta t.dir batch
      with
      | exception e ->
        Breaker.failure t.breaker;
        Error
          (`Unavailable
            (Printf.sprintf "store unavailable: %s" (Printexc.to_string e)))
      | generation ->
        Breaker.success t.breaker;
        t.session <- Some (generation, clean_session t.cfg outcome.Dirty.Delta.db);
        Cache.clear t.prepared;
        let live_suffix = Printf.sprintf "|g%d" generation in
        Cache.drop t.results (fun k ->
            not (String.ends_with ~suffix:live_suffix k));
        Telemetry.Metrics.inc m_updates;
        Ok (generation, outcome, compact)))

(* ---- request handling ---- *)

type mode = Rewritten | Original

let mode_tag = function Rewritten -> "rewritten" | Original -> "original"

(* Per-request scratchpad the query handler fills in as it learns
   things (normalized SQL, plan hash, row counts, engine time); the
   connection epilogue turns it into the query-log record.  The
   handler communicates its response by raising {!Reply}, so these
   facts can't travel in a return value. *)
type reqctx = {
  mutable cx_is_query : bool;
  mutable cx_sql : string;
  mutable cx_plan_hash : string;
  mutable cx_generation : int;
  mutable cx_mode : string;
  mutable cx_rows : int;
  mutable cx_truncated : bool;
  mutable cx_cancelled : bool;
  mutable cx_cached : bool;
  mutable cx_exec : float;  (* seconds inside the engine *)
}

let new_reqctx () =
  {
    cx_is_query = false;
    cx_sql = "";
    cx_plan_hash = "";
    cx_generation = -1;
    cx_mode = "rewritten";
    cx_rows = 0;
    cx_truncated = false;
    cx_cancelled = false;
    cx_cached = false;
    cx_exec = 0.0;
  }

exception Reply of int * (string * string) list * string

let reply ?(headers = []) status body = raise (Reply (status, headers, body))

let parse_params t req =
  let deadline =
    match Http.param req "deadline_ms" with
    | None -> t.cfg.default_deadline
    | Some v -> (
      match float_of_string_opt v with
      | Some ms when ms > 0.0 -> Float.min (ms /. 1000.0) t.cfg.max_deadline
      | _ -> reply 400 (error_body ("bad deadline_ms: " ^ v)))
  in
  let budget_rows =
    match Http.param req "budget_rows" with
    | None -> t.cfg.default_budget_rows
    | Some v -> (
      match int_of_string_opt v with
      | Some n when n > 0 -> Some n
      | _ -> reply 400 (error_body ("bad budget_rows: " ^ v)))
  in
  let mode =
    match Http.param req "mode" with
    | None | Some "rewritten" -> Rewritten
    | Some "original" -> Original
    | Some m -> reply 400 (error_body ("bad mode: " ^ m))
  in
  (deadline, budget_rows, mode)

(* parse (for normalization) and rewrite once per (query, mode); the
   prepared AST is executed directly on the engine thereafter.  The
   plan hash rides along in the cache entry: it identifies the
   physical plan shape in the query log, so two queries that
   normalize differently but plan identically are groupable. *)
let prepare t session mode sql =
  let ast =
    try Sql.Parser.parse_query sql
    with e -> reply 400 (error_body ("parse error: " ^ Printexc.to_string e))
  in
  let normalized = Sql.Pretty.query_to_string ast in
  let key = mode_tag mode ^ "|" ^ normalized in
  match Cache.find t.prepared key with
  | Some (prepared, plan_hash) -> (normalized, prepared, plan_hash)
  | None ->
    let prepared =
      match mode with
      | Original -> ast
      | Rewritten -> (
        match Conquer.Clean.rewrite session sql with
        | Ok rewritten -> Sql.Parser.parse_query rewritten
        | Error violations ->
          reply 400
            (error_body
               ("not rewritable: "
               ^ String.concat "; "
                   (List.map Conquer.Rewritable.violation_to_string violations)
               )))
    in
    let plan_hash =
      try
        Querylog.fingerprint
          (Engine.Plan.to_string
             (Engine.Database.plan (Conquer.Clean.engine session) prepared))
      with _ -> ""
    in
    Cache.add t.prepared key (prepared, plan_hash);
    (normalized, prepared, plan_hash)

let register_inflight t info =
  locked t.ilock @@ fun () ->
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  Hashtbl.replace t.inflight id info;
  id

let unregister_inflight t id =
  locked t.ilock @@ fun () -> Hashtbl.remove t.inflight id

let handle_query t ctx ~trace_id job req =
  Telemetry.Metrics.inc m_requests;
  ctx.cx_is_query <- true;
  let sql =
    match (req.Http.meth, String.trim req.Http.body) with
    | "POST", body when body <> "" -> body
    | _ -> (
      match Http.param req "sql" with
      | Some sql when String.trim sql <> "" -> sql
      | _ -> reply 400 (error_body "no sql (POST a body or pass ?sql=)"))
  in
  ctx.cx_sql <- sql;
  let deadline, budget_rows, mode = parse_params t req in
  ctx.cx_mode <- mode_tag mode;
  let remaining = job.enqueued_at +. deadline -. Unix.gettimeofday () in
  if remaining <= 0.0 then begin
    (* spent the whole deadline waiting in the queue: the query never
       ran, so there are no partial rows to return *)
    Telemetry.Metrics.inc m_cancelled;
    ctx.cx_cancelled <- true;
    reply 408 (error_body "deadline expired before execution began")
  end;
  let generation, session =
    Telemetry.Span.with_ ~name:"serve.store_probe" (fun () ->
        match ensure_session t with
        | Ok pair -> pair
        | Error detail ->
          reply 503
            ~headers:
              [ ("retry-after", Printf.sprintf "%.0f" t.cfg.retry_after) ]
            (error_body detail))
  in
  ctx.cx_generation <- generation;
  let normalized, ast, plan_hash =
    Telemetry.Span.with_ ~name:"serve.prepare" (fun () ->
        prepare t session mode sql)
  in
  ctx.cx_sql <- normalized;
  ctx.cx_plan_hash <- plan_hash;
  let result_key =
    Printf.sprintf "%s|%s|g%d" (mode_tag mode) normalized generation
  in
  let cache_hit =
    Telemetry.Span.with_ ~name:"serve.cache_probe" (fun () ->
        Cache.find t.results result_key)
  in
  match cache_hit with
  | Some (core, rows) ->
    Telemetry.Metrics.inc m_cache_hits;
    ctx.cx_cached <- true;
    ctx.cx_rows <- rows;
    Telemetry.Span.add_attr "cached" "true";
    reply 200
      (compose_body ~core ~cached:true
         ~elapsed:(Unix.gettimeofday () -. job.enqueued_at))
  | None ->
    let token = Engine.Cancel.create () in
    let id =
      register_inflight t
        {
          if_fd = job.fd;
          if_token = token;
          if_trace_id = trace_id;
          if_sql = normalized;
          if_mode = mode_tag mode;
          if_enqueued_at = job.enqueued_at;
          if_started_at = Unix.gettimeofday ();
        }
    in
    let t_exec = Unix.gettimeofday () in
    let rel, stop =
      Fun.protect
        ~finally:(fun () -> unregister_inflight t id)
        (fun () ->
          let config =
            {
              Engine.Planner.default_config with
              jobs = t.cfg.jobs;
              max_rows = budget_rows;
              max_elapsed = Some remaining;
            }
          in
          Conquer.Clean.answers_ast_within ~config ~cancel:token session ast)
    in
    ctx.cx_exec <- Unix.gettimeofday () -. t_exec;
    let truncated = stop.Engine.Database.truncated in
    let cancelled = stop.Engine.Database.cancelled in
    if cancelled then Telemetry.Metrics.inc m_cancelled;
    if truncated || cancelled then Telemetry.Metrics.inc m_partial;
    ctx.cx_rows <- Dirty.Relation.cardinality rel;
    ctx.cx_truncated <- truncated;
    ctx.cx_cancelled <- cancelled;
    let core =
      Telemetry.Span.with_ ~name:"serve.serialize" (fun () ->
          let core = result_core rel ~generation ~truncated ~cancelled in
          Telemetry.Span.add_attr "bytes" (string_of_int (String.length core));
          core)
    in
    if not (truncated || cancelled) then
      Cache.add t.results result_key (core, ctx.cx_rows);
    reply 200
      (compose_body ~core ~cached:false
         ~elapsed:(Unix.gettimeofday () -. job.enqueued_at))

(* ---- the update endpoint ---- *)

let handle_update t job req =
  let body = String.trim req.Http.body in
  if body = "" then
    reply 400 (error_body "no update ops (POST delta CSV records)");
  let batch =
    match Dirty.Delta.of_rows (Dirty.Csv.parse_rows body) with
    | batch -> batch
    | exception Dirty.Delta.Invalid msg ->
      reply 400 (error_body ("invalid update: " ^ msg))
    | exception Dirty.Csv.Parse_error { line; msg; _ } ->
      reply 400 (error_body (Printf.sprintf "bad CSV at line %d: %s" line msg))
  in
  if batch = [] then
    reply 400 (error_body "no update ops (POST delta CSV records)");
  match
    Telemetry.Span.with_ ~name:"serve.update" (fun () -> apply_update t batch)
  with
  | Error (`Invalid msg) -> reply 400 (error_body ("invalid update: " ^ msg))
  | Error (`Unavailable detail) ->
    reply 503
      ~headers:[ ("retry-after", Printf.sprintf "%.0f" t.cfg.retry_after) ]
      (error_body detail)
  | Ok (generation, outcome, compacted) ->
    reply 200
      (Printf.sprintf
         "{\"generation\":%d,\"ops\":%d,\"touched\":%d,\"compacted\":%b,\"elapsed_ms\":%s}"
         generation (List.length batch)
         (List.length outcome.Dirty.Delta.touched)
         compacted
         (Telemetry.Export.json_float
            ((Unix.gettimeofday () -. job.enqueued_at) *. 1000.0)))

(* ---- the /debug surface ---- *)

let debug_requests_json t =
  let now = Unix.gettimeofday () in
  let snapshot =
    locked t.ilock @@ fun () ->
    Hashtbl.fold (fun id v acc -> (id, v) :: acc) t.inflight []
  in
  let snapshot = List.sort (fun (a, _) (b, _) -> compare a b) snapshot in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{\"in_flight\":[";
  List.iteri
    (fun i (id, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"id\":%d,\"trace_id\":%s,\"sql\":%s,\"mode\":%s,\"elapsed_ms\":%s,\"queue_wait_ms\":%s,\"cancelled\":%b}"
           id
           (Telemetry.Export.json_string v.if_trace_id)
           (Telemetry.Export.json_string v.if_sql)
           (Telemetry.Export.json_string v.if_mode)
           (Telemetry.Export.json_float ((now -. v.if_started_at) *. 1000.0))
           (Telemetry.Export.json_float
              ((v.if_started_at -. v.if_enqueued_at) *. 1000.0))
           (Engine.Cancel.cancelled v.if_token)))
    snapshot;
  Buffer.add_string buf
    (Printf.sprintf "],\"count\":%d}" (List.length snapshot));
  Buffer.contents buf

let debug_traces_index_json t =
  let entries = Telemetry.Trace.ring_recent t.traces in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{\"traces\":[";
  List.iteri
    (fun i (e : Telemetry.Trace.entry) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"trace_id\":%s,\"completed_at\":%s,\"elapsed_ms\":%s,\"covered_ms\":%s,\"spans\":%d}"
           (Telemetry.Export.json_string e.trace_id)
           (Telemetry.Export.json_float e.completed_at)
           (Telemetry.Export.json_float (e.root.Telemetry.Span.elapsed *. 1000.0))
           (Telemetry.Export.json_float
              (Telemetry.Span.leaf_elapsed e.root *. 1000.0))
           (Telemetry.Span.count e.root)))
    entries;
  Buffer.add_string buf
    (Printf.sprintf "],\"count\":%d,\"capacity\":%d}"
       (List.length entries)
       (Telemetry.Trace.ring_capacity t.traces));
  Buffer.contents buf

let debug_trace t req id =
  match Telemetry.Trace.ring_find t.traces id with
  | None -> reply 404 (error_body ("no retained trace " ^ id))
  | Some e -> (
    match Http.param req "format" with
    | Some "pretty" ->
      (* rendered server-side so the CLI needs no span-tree parser *)
      let text =
        Printf.sprintf "trace %s  completed %.3f\n%s" e.trace_id e.completed_at
          (Telemetry.Export.span_to_string e.root)
      in
      reply 200 ~headers:[ ("x-content-type", "text/plain") ] text
    | _ ->
      reply 200
        (Printf.sprintf "{\"trace_id\":%s,\"completed_at\":%s,\"root\":%s}"
           (Telemetry.Export.json_string e.trace_id)
           (Telemetry.Export.json_float e.completed_at)
           (Telemetry.Export.span_to_json e.root)))

let debug_querylog t req =
  let int_param name default =
    match Http.param req name with
    | None -> default
    | Some v -> (
      match int_of_string_opt v with
      | Some n when n >= 0 -> n
      | _ -> reply 400 (error_body (Printf.sprintf "bad %s: %s" name v)))
  in
  let n = int_param "n" 50 in
  let after = int_param "after" 0 in
  let records = Querylog.recent ~after ~n t.querylog in
  let body =
    String.concat "" (List.map (fun r -> Querylog.to_json r ^ "\n") records)
  in
  reply 200 ~headers:[ ("x-content-type", "application/x-ndjson") ] body

let debug_gc_json () =
  let s = Gc.quick_stat () in
  Printf.sprintf
    "{\"minor_words\":%s,\"promoted_words\":%s,\"major_words\":%s,\"minor_collections\":%d,\"major_collections\":%d,\"compactions\":%d,\"heap_words\":%d,\"top_heap_words\":%d,\"stack_size\":%d}"
    (Telemetry.Export.json_float s.Gc.minor_words)
    (Telemetry.Export.json_float s.Gc.promoted_words)
    (Telemetry.Export.json_float s.Gc.major_words)
    s.Gc.minor_collections s.Gc.major_collections s.Gc.compactions
    s.Gc.heap_words s.Gc.top_heap_words s.Gc.stack_size

(* every histogram bucket that holds an exemplar, as
   (metric, le, count, trace_id, value, ts) — the join between the
   latency distribution and the trace ring *)
let debug_exemplars_json () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{\"exemplars\":[";
  let first = ref true in
  List.iter
    (fun (s : Telemetry.Metrics.sample) ->
      match s.data with
      | Telemetry.Metrics.Histogram_value h ->
        Array.iteri
          (fun i ex ->
            match ex with
            | None -> ()
            | Some (e : Telemetry.Metrics.exemplar) ->
              if not !first then Buffer.add_char buf ',';
              first := false;
              let le =
                if i < Array.length h.hs_bounds then
                  Printf.sprintf "%.9g" h.hs_bounds.(i)
                else "+Inf"
              in
              Buffer.add_string buf
                (Printf.sprintf
                   "{\"metric\":%s,\"le\":%s,\"count\":%d,\"trace_id\":%s,\"value\":%s,\"ts\":%s}"
                   (Telemetry.Export.json_string s.name)
                   (Telemetry.Export.json_string le)
                   h.hs_counts.(i)
                   (Telemetry.Export.json_string e.ex_label)
                   (Telemetry.Export.json_float e.ex_value)
                   (Telemetry.Export.json_float e.ex_at)))
          h.hs_exemplars
      | _ -> ())
    (Telemetry.Metrics.snapshot ());
  Buffer.add_string buf "]}";
  Buffer.contents buf

let handle_request t ctx ~trace_id job req =
  match (req.Http.meth, req.Http.path) with
  | "GET", "/healthz" -> reply 200 "{\"status\":\"ok\"}"
  | "GET", "/readyz" ->
    let ready =
      (not t.draining)
      && (match Breaker.state t.breaker with
         | Breaker.Open -> false
         | _ -> true)
      && t.session <> None
    in
    if ready then reply 200 "{\"status\":\"ready\"}"
    else reply 503 (error_body "not ready")
  | "GET", "/metrics" ->
    raise
      (Reply
         ( 200,
           [ ("x-content-type", "text/plain") ],
           Telemetry.Export.prometheus_string () ))
  | ("GET" | "POST"), "/query" -> handle_query t ctx ~trace_id job req
  | "POST", "/update" -> handle_update t job req
  | "GET", "/debug/requests" -> reply 200 (debug_requests_json t)
  | "GET", "/debug/traces" -> reply 200 (debug_traces_index_json t)
  | "GET", path when String.starts_with ~prefix:"/debug/traces/" path ->
    let id =
      String.sub path (String.length "/debug/traces/")
        (String.length path - String.length "/debug/traces/")
    in
    debug_trace t req id
  | "GET", "/debug/querylog" -> debug_querylog t req
  | "GET", "/debug/gc" -> reply 200 (debug_gc_json ())
  | "GET", "/debug/exemplars" -> reply 200 (debug_exemplars_json ())
  | _, ("/healthz" | "/readyz" | "/metrics" | "/query" | "/update") ->
    reply 405 (error_body "method not allowed")
  | _, path
    when String.starts_with ~prefix:"/debug/" path ->
    reply 405 (error_body "method not allowed")
  | _ -> reply 404 (error_body "not found")

let outcome_to_response outcome =
  match outcome with
  | Reply (status, headers, body) -> (status, headers, body)
  | Http.Bad_request detail -> (400, [], error_body detail)
  | Http.Too_large detail -> (413, [], error_body detail)
  | Http.Timeout -> (408, [], error_body "request read timed out")
  | Http.Disconnected -> raise Http.Disconnected
  | e ->
    Telemetry.Metrics.inc m_internal;
    (500, [], error_body ("internal error: " ^ Printexc.to_string e))

let write_outcome fd (status, headers, body) =
  let content_type =
    match List.assoc_opt "x-content-type" headers with
    | Some ct -> ct
    | None -> "application/json"
  in
  let headers = List.remove_assoc "x-content-type" headers in
  Http.write_response fd ~status ~headers ~content_type ~body ();
  status

(* One request, one connection.  Every exception is converted into a
   response (or a silent close when the client is already gone): the
   worker domain survives anything a request can throw at it.

   Tracing: every request gets a trace id — the client's [X-Trace-Id]
   when it sends a plausible one (so a caller can correlate its own
   logs with the daemon's), a fresh one otherwise — echoed back on
   the response.  A span tree is captured when the id samples in
   under [trace_sample], or speculatively whenever a slow-query
   threshold is configured (a query does not announce in advance that
   it will be slow).  Captured trees are retained in the ring only
   when sampled or actually slow; everything else is dropped on the
   floor.  With sampling off and no threshold, no serve-level span
   capture happens at all — the zero-rate overhead budget in ISSUE
   terms.

   The capture must wrap the whole computation *as a value*:
   {!Telemetry.Span.detached} loses its captured root when the
   wrapped function raises, and [handle_request] signals every
   response by raising {!Reply}.  So the traced region converts
   outcomes to values (and writes the response, so serialization and
   the socket write are on the tree) and only {!Http.Disconnected}
   escapes — a trace nobody could have read anyway. *)
let serve_connection t job =
  Fun.protect
    ~finally:(fun () -> close_quiet job.fd)
    (fun () ->
      if t.hard_drain then begin
        let outcome =
          Reply
            ( 503,
              [ ("retry-after", Printf.sprintf "%.0f" t.cfg.retry_after) ],
              error_body "server is shutting down" )
        in
        let _status = write_outcome job.fd (outcome_to_response outcome) in
        Telemetry.Metrics.observe h_latency
          (Unix.gettimeofday () -. job.enqueued_at)
      end
      else
        match Http.read_request ~read_timeout:1.0 job.fd with
        | exception e ->
          (* no parsed request: no trace id to honor, nothing to log *)
          let _status = write_outcome job.fd (outcome_to_response e) in
          Telemetry.Metrics.observe h_latency
            (Unix.gettimeofday () -. job.enqueued_at)
        | req ->
          let started = Unix.gettimeofday () in
          let trace_id =
            match Http.header req "x-trace-id" with
            | Some id when Telemetry.Trace.valid_id id ->
              String.lowercase_ascii id
            | _ -> Telemetry.Trace.gen_id ()
          in
          let is_query = req.Http.path = "/query" in
          let sampled =
            is_query
            && Telemetry.Trace.decide ~rate:t.cfg.trace_sample trace_id
          in
          let capture =
            Telemetry.Control.enabled () && is_query
            && (sampled || t.cfg.slow_query_ms <> None)
          in
          let ctx = new_reqctx () in
          let run () =
            if capture then
              (* queue wait (including the header read) predates any
                 instrumented code: graft it as a hand-made first child *)
              Telemetry.Span.attach
                (Telemetry.Span.manual ~name:"serve.queue_wait"
                   ~start:job.enqueued_at
                   ~elapsed:(started -. job.enqueued_at) ());
            let outcome =
              try handle_request t ctx ~trace_id job req with o -> o
            in
            let status, headers, body = outcome_to_response outcome in
            let headers =
              if is_query then ("x-trace-id", trace_id) :: headers
              else headers
            in
            let respond () = write_outcome job.fd (status, headers, body) in
            if capture then
              Telemetry.Span.with_ ~name:"serve.respond" respond
            else respond ()
          in
          let status, root =
            if capture then
              Telemetry.Span.detached ~name:"serve.request"
                ~attrs:
                  [ ("trace_id", trace_id); ("path", req.Http.path) ]
                run
            else (run (), None)
          in
          let finished = Unix.gettimeofday () in
          let total = finished -. job.enqueued_at in
          let slow =
            match t.cfg.slow_query_ms with
            | Some ms -> is_query && total *. 1000.0 >= ms
            | None -> false
          in
          if slow then Telemetry.Metrics.inc m_slow;
          let retained =
            match root with
            | Some root when sampled || slow ->
              (* stretch the root over the whole request so the tree's
                 span covers queue wait too, then retain it *)
              root.Telemetry.Span.start <- job.enqueued_at;
              root.Telemetry.Span.elapsed <- total;
              root.Telemetry.Span.attrs <-
                ("status", string_of_int status)
                :: List.remove_assoc "status" root.Telemetry.Span.attrs;
              (* exclusive-time "(self)" leaves, so the retained tree
                 attributes the wall-clock all the way down *)
              Telemetry.Span.annotate_self root;
              Telemetry.Trace.ring_add t.traces ~trace_id root;
              Telemetry.Metrics.inc m_traced;
              true
            | _ -> false
          in
          Telemetry.Metrics.observe
            ?exemplar:(if retained then Some trace_id else None)
            h_latency total;
          if is_query then begin
            let record =
              {
                Querylog.empty_record with
                ts = finished;
                trace_id;
                sampled = retained;
                sql = ctx.cx_sql;
                fingerprint =
                  (if ctx.cx_sql = "" then ""
                   else Querylog.fingerprint ctx.cx_sql);
                plan_hash = ctx.cx_plan_hash;
                generation = ctx.cx_generation;
                mode = ctx.cx_mode;
                status;
                rows = ctx.cx_rows;
                truncated = ctx.cx_truncated;
                cancelled = ctx.cx_cancelled;
                cached = ctx.cx_cached;
                slow;
                queue_wait_ms = (started -. job.enqueued_at) *. 1000.0;
                exec_ms = ctx.cx_exec *. 1000.0;
                total_ms = total *. 1000.0;
              }
            in
            ignore (Querylog.log t.querylog record)
          end)

let serve_connection_quiet t job =
  try serve_connection t job with
  | Http.Disconnected -> ()
  | Unix.Unix_error _ -> ()

(* ---- worker pool ---- *)

let next_job t =
  locked t.qlock @@ fun () ->
  let rec wait () =
    if not (Queue.is_empty t.queue) then begin
      let job = Queue.pop t.queue in
      Telemetry.Metrics.set g_queue (Float.of_int (Queue.length t.queue));
      Some job
    end
    else if t.draining then None
    else begin
      Condition.wait t.qcond t.qlock;
      wait ()
    end
  in
  wait ()

let rec worker_loop t =
  match next_job t with
  | None -> ()
  | Some job ->
    Atomic.incr t.active;
    Telemetry.Metrics.set g_inflight (Float.of_int (Atomic.get t.active));
    serve_connection_quiet t job;
    Atomic.decr t.active;
    Telemetry.Metrics.set g_inflight (Float.of_int (Atomic.get t.active));
    worker_loop t

(* ---- disconnect reaper ---- *)

(* A zero-byte MSG_PEEK on a readable connection distinguishes "the
   client hung up" (recv returns 0) from "the client pipelined more
   bytes" (recv returns them, unconsumed).  Hung-up connections get
   their query's token tripped so the worker stops at its next
   checkpoint instead of computing an answer nobody will read. *)
let reap_once t =
  let snapshot =
    locked t.ilock @@ fun () ->
    Hashtbl.fold (fun _ v acc -> v :: acc) t.inflight []
  in
  List.iter
    (fun { if_fd = fd; if_token = token; _ } ->
      if not (Engine.Cancel.cancelled token) then
        try
          match Unix.select [ fd ] [] [] 0.0 with
          | [ _ ], _, _ -> (
            let b = Bytes.create 1 in
            match Unix.recv fd b 0 1 [ MSG_PEEK ] with
            | 0 -> Engine.Cancel.cancel ~reason:"client disconnected" token
            | _ -> ()
            | exception Unix.Unix_error _ ->
              Engine.Cancel.cancel ~reason:"client disconnected" token)
          | _ -> ()
        with Unix.Unix_error _ -> ())
    snapshot

let reaper_loop t =
  while not (Atomic.get t.reaper_stop) do
    reap_once t;
    Unix.sleepf 0.01
  done

(* ---- accept loop, shed, drain ---- *)

let shed t fd =
  Telemetry.Metrics.inc m_shed;
  (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 1.0
   with Unix.Unix_error _ -> ());
  (try
     Http.write_response fd ~status:503
       ~headers:[ ("retry-after", Printf.sprintf "%.0f" t.cfg.retry_after) ]
       ~body:(error_body "overloaded; request shed")
       ()
   with Http.Disconnected | Unix.Unix_error _ -> ());
  close_quiet fd

let admit t fd =
  let job = { fd; enqueued_at = Unix.gettimeofday () } in
  let admitted =
    locked t.qlock @@ fun () ->
    if t.draining || Queue.length t.queue >= t.cfg.queue_capacity then false
    else begin
      Queue.push job t.queue;
      Telemetry.Metrics.set g_queue (Float.of_int (Queue.length t.queue));
      Condition.signal t.qcond;
      true
    end
  in
  if not admitted then shed t fd

let shutdown t =
  locked t.qlock @@ fun () ->
  t.draining <- true;
  Condition.broadcast t.qcond

(* async-signal-safe shutdown request: one atomic store, no locks.
   Signal handlers run at safepoints of the accepting domain, which
   may already hold qlock — so the handler must only set this flag;
   the accept loop notices it within one select timeout and runs the
   real (locking) shutdown itself. *)
let request_shutdown t = Atomic.set t.stop_requested true

type drain_report = { drained : bool; cancelled_inflight : int }

let accept_loop t =
  let rec loop () =
    if Atomic.get t.stop_requested then shutdown t;
    if t.draining then ()
    else begin
      (match Unix.select [ t.listen_fd ] [] [] 0.05 with
      | [ _ ], _, _ -> (
        match Unix.accept t.listen_fd with
        | fd, _ -> admit t fd
        | exception Unix.Unix_error ((EINTR | ECONNABORTED), _, _) -> ())
      | _ -> ()
      | exception Unix.Unix_error ((EINTR | EBADF), _, _) -> ());
      loop ()
    end
  in
  loop ()

(* Drain protocol: stop accepting, let the workers finish the queue,
   and past the deadline flip to hard drain — remaining queued
   requests answer 503 without executing and every in-flight token is
   tripped — so the daemon always comes down in bounded time. *)
let run t =
  (* a client that vanishes mid-write must surface as EPIPE, not kill
     the process *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let workers =
    List.init t.cfg.concurrency (fun _ -> Domain.spawn (fun () -> worker_loop t))
  in
  let reaper = Domain.spawn (fun () -> reaper_loop t) in
  accept_loop t;
  close_quiet t.listen_fd;
  let deadline = Unix.gettimeofday () +. t.cfg.drain_deadline in
  let rec await_drain () =
    let idle =
      locked t.qlock (fun () -> Queue.is_empty t.queue)
      && Atomic.get t.active = 0
    in
    if idle then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Unix.sleepf 0.01;
      await_drain ()
    end
  in
  let drained = await_drain () in
  if not drained then begin
    t.hard_drain <- true;
    let victims =
      locked t.ilock @@ fun () ->
      Hashtbl.fold (fun _ { if_token; _ } acc -> if_token :: acc) t.inflight []
    in
    List.iter
      (fun token ->
        if not (Engine.Cancel.cancelled token) then begin
          Engine.Cancel.cancel ~reason:"server draining" token;
          Telemetry.Metrics.inc m_cancelled;
          Atomic.incr t.force_cancelled
        end)
      victims
  end;
  locked t.qlock (fun () -> Condition.broadcast t.qcond);
  List.iter Domain.join workers;
  Atomic.set t.reaper_stop true;
  Domain.join reaper;
  Querylog.close t.querylog;
  { drained; cancelled_inflight = Atomic.get t.force_cancelled }
