(** Compilation of scalar expressions to row functions.

    Column references are resolved against a schema once, at
    compilation time; the resulting closure then runs per row without
    name lookups.

    Name resolution follows SQL scoping over qualified schemas: after
    planning, attribute names are of the form ["alias.column"].  A
    qualified reference [t.c] resolves to attribute ["t.c"]; an
    unqualified reference [c] resolves to the unique attribute named
    [c] or whose name ends in [".c"] — ambiguity is an error.

    Null semantics: arithmetic involving NULL yields NULL; comparison
    predicates involving NULL are false; [NOT] of NULL is false-like
    (NULL is not true).  This matches the paper's workloads, which do
    not rely on three-valued logic. *)

exception Type_error of string
exception Unbound_column of string
exception Ambiguous_column of string

val resolve : Dirty.Schema.t -> Sql.Ast.column -> int
(** Index of the attribute a column reference denotes.
    @raise Unbound_column / Ambiguous_column *)

val compile : Dirty.Schema.t -> Sql.Ast.expr -> Dirty.Relation.row -> Dirty.Value.t
(** @raise Unbound_column / Ambiguous_column at compile time;
    [Type_error] at evaluation time.
    @raise Type_error also at compile time when the expression
    contains an aggregate (aggregates are handled by the aggregation
    operator, not here). *)

val truth : Dirty.Value.t -> bool
(** SQL predicate truth: [Bool true] is true; [Bool false] and [Null]
    are false. @raise Type_error on other values. *)

(** {1 Scalar operation semantics}

    The single definition of the engine's arithmetic and comparison
    behavior, shared by the row closures above and by the columnar
    kernels in {!Exec} (whose per-element fallbacks must agree with
    the row path bit for bit). *)

val add : Dirty.Value.t -> Dirty.Value.t -> Dirty.Value.t
val sub : Dirty.Value.t -> Dirty.Value.t -> Dirty.Value.t
val mul : Dirty.Value.t -> Dirty.Value.t -> Dirty.Value.t
val div : Dirty.Value.t -> Dirty.Value.t -> Dirty.Value.t
(** NULL propagates; Int op Int stays Int (division by zero is a
    [Type_error]); otherwise both operands coerce to float. *)

val comparison : Sql.Ast.binop -> Dirty.Value.t -> Dirty.Value.t -> Dirty.Value.t
(** [comparison op a b] for comparison operators only ([Eq]..[Ge]);
    [Bool false] when either operand is NULL, else the result of
    [Value.compare]. *)

val like_matcher : string -> string -> bool
(** [like_matcher pattern s] implements SQL LIKE ([%] = any sequence,
    [_] = any single character). *)

val columns_of : Sql.Ast.expr -> Sql.Ast.column list
(** Re-export of {!Sql.Ast.expr_columns} for convenience. *)
