(** String distances used by the edit-distance variant of the
    probability-assignment procedure (the paper notes the method can
    incorporate any available tuple distance, e.g. string edit
    distance). *)

val levenshtein : string -> string -> int
(** Classic edit distance (insert/delete/substitute, unit costs). *)

val normalized_levenshtein : string -> string -> float
(** [levenshtein a b / max(|a|,|b|)], in [0,1]; 0 for two empty
    strings. *)
