(* Tests for the probability-assignment pipeline of Section 4:
   the normalized matrix (Table 1), cluster representatives (Table 2),
   and the Figure 5 procedure (Table 3). *)

open Dirty

let check_float = Fixtures.check_float

let matrix () =
  Prob.Matrix.of_relation ~attrs:Fixtures.section4_attrs
    (Fixtures.section4_customer ())

(* ---- interning ---- *)

let test_interning_distinct_per_attribute () =
  let i = Prob.Interning.create () in
  let a = Prob.Interning.intern i ~attr:0 (Value.String "USA") in
  let b = Prob.Interning.intern i ~attr:1 (Value.String "USA") in
  Alcotest.(check bool) "same value, different attrs" true (a <> b);
  Alcotest.(check int) "stable" a
    (Prob.Interning.intern i ~attr:0 (Value.String "USA"));
  Alcotest.(check int) "reverse attr" 1 (Prob.Interning.attr_of i b);
  Alcotest.(check bool) "reverse value" true
    (Value.equal (Prob.Interning.value_of i b) (Value.String "USA"))

(* ---- the normalized matrix (Table 1) ---- *)

let test_matrix_shape () =
  let m = matrix () in
  Alcotest.(check int) "six rows" 6 (Prob.Matrix.num_rows m);
  (* Table 1 has 13 distinct (attribute, value) symbols *)
  Alcotest.(check int) "thirteen symbols" 13
    (Prob.Interning.size (Prob.Matrix.interning m))

let test_matrix_entries () =
  let m = matrix () in
  (* each tuple's row is uniform 1/4 on its values *)
  check_float "M[t1, Mary]" 0.25
    (Prob.Matrix.entry m 0 ~attr:0 ~value:(Value.String "Mary"));
  check_float "M[t1, banking] = 0" 0.0
    (Prob.Matrix.entry m 0 ~attr:1 ~value:(Value.String "banking"));
  check_float "M[t3, Jones ave]" 0.25
    (Prob.Matrix.entry m 2 ~attr:3 ~value:(Value.String "Jones ave"));
  let d = Prob.Matrix.row_dist m 0 in
  Alcotest.(check bool) "row normalized" true (Infotheory.Dist.is_normalized d);
  Alcotest.(check int) "four values" 4 (Infotheory.Dist.support_size d)

(* ---- cluster representatives (Table 2) ---- *)

let rep_prob m rep ~attr value =
  let interning = Prob.Matrix.interning m in
  match Prob.Interning.find_opt interning ~attr (Value.String value) with
  | None -> 0.0
  | Some sym -> Infotheory.Dist.prob rep.Infotheory.Dcf.dist sym

let test_representatives_table2 () =
  let m = matrix () in
  let clustering = Fixtures.section4_clustering () in
  let reps = Prob.Representative.all m clustering in
  Alcotest.(check int) "three representatives" 3 (List.length reps);
  let rep1 = List.assoc (Value.String "c1") reps in
  let rep2 = List.assoc (Value.String "c2") reps in
  let rep3 = List.assoc (Value.String "c3") reps in
  (* Table 2, row rep1: |c| = 3; Mary 0.167, Marion 0.083, banking
     0.167, building 0.083, USA 0.25, Jones Ave 0.167, Jones ave 0.083 *)
  check_float "rep1 weight" 3.0 rep1.Infotheory.Dcf.weight;
  check_float ~eps:1e-3 "rep1 Mary" 0.167 (rep_prob m rep1 ~attr:0 "Mary");
  check_float ~eps:1e-3 "rep1 Marion" 0.083 (rep_prob m rep1 ~attr:0 "Marion");
  check_float ~eps:1e-3 "rep1 banking" 0.167 (rep_prob m rep1 ~attr:1 "banking");
  check_float ~eps:1e-3 "rep1 building" 0.083 (rep_prob m rep1 ~attr:1 "building");
  check_float ~eps:1e-3 "rep1 USA" 0.25 (rep_prob m rep1 ~attr:2 "USA");
  check_float ~eps:1e-3 "rep1 Jones Ave" 0.167 (rep_prob m rep1 ~attr:3 "Jones Ave");
  check_float ~eps:1e-3 "rep1 Jones ave" 0.083 (rep_prob m rep1 ~attr:3 "Jones ave");
  (* Table 2, rep2: |c| = 2; building 0.25, Arrow 0.25, John 0.125,
     John S. 0.125, America 0.125, USA 0.125 *)
  check_float "rep2 weight" 2.0 rep2.Infotheory.Dcf.weight;
  check_float "rep2 building" 0.25 (rep_prob m rep2 ~attr:1 "building");
  check_float "rep2 Arrow" 0.25 (rep_prob m rep2 ~attr:3 "Arrow");
  check_float "rep2 John" 0.125 (rep_prob m rep2 ~attr:0 "John");
  check_float "rep2 John S." 0.125 (rep_prob m rep2 ~attr:0 "John S.");
  check_float "rep2 USA" 0.125 (rep_prob m rep2 ~attr:2 "USA");
  (* Table 2, rep3 = t6 alone: every value 0.25 *)
  check_float "rep3 weight" 1.0 rep3.Infotheory.Dcf.weight;
  check_float "rep3 John" 0.25 (rep_prob m rep3 ~attr:0 "John");
  check_float "rep3 Canada" 0.25 (rep_prob m rep3 ~attr:2 "Canada")

let test_modal_tuple () =
  let m = matrix () in
  let clustering = Fixtures.section4_clustering () in
  let reps = Prob.Representative.all m clustering in
  let rep1 = List.assoc (Value.String "c1") reps in
  let modal = Prob.Representative.modal_tuple m rep1 in
  (* c1's most frequent values: Mary, USA dominate; mktsegment tie
     between banking (2) and building (1) resolves to banking *)
  (match modal with
  | [ name; seg; nation; _addr ] ->
    Alcotest.(check bool) "Mary" true (Value.equal name (Value.String "Mary"));
    Alcotest.(check bool) "banking" true (Value.equal seg (Value.String "banking"));
    Alcotest.(check bool) "USA" true (Value.equal nation (Value.String "USA"))
  | _ -> Alcotest.fail "modal arity")

(* ---- the Figure 5 procedure (Table 3) ---- *)

let run_section4 () =
  Prob.Assign.run ~attrs:Fixtures.section4_attrs
    (Fixtures.section4_customer ())
    (Fixtures.section4_clustering ())

let test_assign_cluster_sums () =
  let r = run_section4 () in
  let clustering = Fixtures.section4_clustering () in
  Cluster.iter
    (fun id members ->
      let sum = List.fold_left (fun acc i -> acc +. r.probabilities.(i)) 0.0 members in
      check_float
        (Printf.sprintf "cluster %s sums to 1" (Value.to_string id))
        1.0 sum)
    clustering

let test_assign_table3_qualitative () =
  let r = run_section4 () in
  (* t2 shares all its values with other cluster members: it must be
     the most probable tuple of c1 (the paper's central claim) *)
  Alcotest.(check bool) "t2 beats t1" true
    (r.probabilities.(1) > r.probabilities.(0));
  Alcotest.(check bool) "t2 beats t3" true
    (r.probabilities.(1) > r.probabilities.(2));
  (* t4 and t5 are symmetric in c2: exactly 0.5 each *)
  check_float "t4 = 0.5" 0.5 r.probabilities.(3);
  check_float "t5 = 0.5" 0.5 r.probabilities.(4);
  (* singleton cluster: certainty *)
  check_float "t6 = 1.0" 1.0 r.probabilities.(5);
  check_float "t6 distance 0" 0.0 r.distances.(5)

let test_assign_similarity_definition () =
  let r = run_section4 () in
  (* s_t = 1 - d_t / S(c) for multi-tuple clusters *)
  let s_c1 = r.distances.(0) +. r.distances.(1) +. r.distances.(2) in
  List.iter
    (fun i ->
      check_float
        (Printf.sprintf "similarity of t%d" (i + 1))
        (1.0 -. (r.distances.(i) /. s_c1))
        r.similarities.(i))
    [ 0; 1; 2 ];
  (* probability = s_t / (|c| - 1) *)
  List.iter
    (fun i ->
      check_float
        (Printf.sprintf "probability of t%d" (i + 1))
        (r.similarities.(i) /. 2.0)
        r.probabilities.(i))
    [ 0; 1; 2 ]

let test_assign_identical_tuples_uniform () =
  let rel =
    Relation.create
      (Schema.make [ ("v", Value.TString); ("cl", Value.TString) ])
      [
        [| Value.String "x"; Value.String "c" |];
        [| Value.String "x"; Value.String "c" |];
        [| Value.String "x"; Value.String "c" |];
      ]
  in
  let clustering = Cluster.of_relation rel ~id_attr:"cl" in
  let probs = Prob.Assign.assign ~attrs:[ "v" ] rel clustering in
  Array.iter (fun p -> check_float "uniform third" (1.0 /. 3.0) p) probs

let test_assign_two_tuple_cluster () =
  (* with two tuples the distances are symmetric: both get 0.5 *)
  let rel =
    Relation.create
      (Schema.make [ ("v", Value.TString); ("w", Value.TString); ("cl", Value.TString) ])
      [
        [| Value.String "a"; Value.String "z"; Value.String "c" |];
        [| Value.String "b"; Value.String "z"; Value.String "c" |];
      ]
  in
  let clustering = Cluster.of_relation rel ~id_attr:"cl" in
  let probs = Prob.Assign.assign ~attrs:[ "v"; "w" ] rel clustering in
  check_float "first half" 0.5 probs.(0);
  check_float "second half" 0.5 probs.(1)

let test_annotate_table () =
  let table =
    Dirty_db.make_table ~name:"customer" ~id_attr:"id" ~prob_attr:"prob"
      (Fixtures.customers_relation ())
  in
  let annotated = Prob.Assign.annotate_table table in
  Alcotest.(check (list string)) "still valid" []
    (Dirty_db.table_validate annotated);
  (* both clusters have two symmetric-ish tuples; probabilities must
     not be the placeholder values any more but still sum to 1 *)
  let p0 = Dirty_db.row_probability annotated 0
  and p1 = Dirty_db.row_probability annotated 1 in
  check_float "c1 sums to 1" 1.0 (p0 +. p1)

(* ---- survivorship resolution ---- *)

let figure2_customer_table () =
  Dirty_db.make_table ~name:"customer" ~id_attr:"id" ~prob_attr:"prob"
    (Fixtures.customers_relation ())

let test_resolve_most_probable () =
  let resolved = Prob.Resolve.resolve_table (figure2_customer_table ()) in
  Alcotest.(check int) "one tuple per cluster" 2
    (Relation.cardinality resolved.relation);
  (* c1 keeps John@20000 (0.7), c2 keeps Marion@5000 (0.8) *)
  let balances = Relation.column resolved.relation "balance" in
  Alcotest.(check bool) "c1 best kept" true
    (Value.equal balances.(0) (Value.Int 20_000));
  Alcotest.(check bool) "c2 best kept" true
    (Value.equal balances.(1) (Value.Int 5_000));
  (* result is a clean table *)
  check_float "prob 1" 1.0 (Dirty_db.row_probability resolved 0);
  Alcotest.(check (list string)) "valid" [] (Dirty_db.table_validate resolved)

let test_resolve_merge () =
  let resolved =
    Prob.Resolve.resolve_table ~policy:Prob.Resolve.Merge
      (figure2_customer_table ())
  in
  let row = Relation.get resolved.relation 0 in
  (* the "average the incomes" rule: 0.7*20000 + 0.3*30000 = 23000 *)
  Alcotest.(check bool) "weighted balance" true
    (Value.equal (Relation.value resolved.relation row "balance") (Value.Int 23_000));
  Alcotest.(check bool) "modal name" true
    (Value.equal (Relation.value resolved.relation row "name") (Value.String "John"))

let test_resolution_loses_answers () =
  (* the introduction's motivation: resolving offline then querying
     misses answers that clean-answer semantics retains *)
  let db = Fixtures.figure2_db () in
  let resolved = Prob.Resolve.resolve db in
  let s_resolved = Conquer.Clean.create resolved in
  let s_dirty = Conquer.Clean.create db in
  let offline = Conquer.Clean.original s_resolved Fixtures.q2 in
  let clean = Conquer.Clean.answers s_dirty Fixtures.q2 in
  Alcotest.(check bool) "offline loses possible answers" true
    (Relation.cardinality offline < Relation.cardinality clean)

(* ---- string distance ---- *)

let test_levenshtein () =
  Alcotest.(check int) "identity" 0 (Prob.Strdist.levenshtein "abc" "abc");
  Alcotest.(check int) "substitution" 1 (Prob.Strdist.levenshtein "abc" "abd");
  Alcotest.(check int) "insertion" 1 (Prob.Strdist.levenshtein "abc" "abcd");
  Alcotest.(check int) "deletion" 1 (Prob.Strdist.levenshtein "abc" "ac");
  Alcotest.(check int) "kitten/sitting" 3
    (Prob.Strdist.levenshtein "kitten" "sitting");
  Alcotest.(check int) "empty" 3 (Prob.Strdist.levenshtein "" "abc")

let test_normalized_levenshtein () =
  check_float "identical" 0.0 (Prob.Strdist.normalized_levenshtein "abc" "abc");
  check_float "disjoint" 1.0 (Prob.Strdist.normalized_levenshtein "abc" "xyz");
  check_float "both empty" 0.0 (Prob.Strdist.normalized_levenshtein "" "");
  Alcotest.(check bool) "in unit range" true
    (let d = Prob.Strdist.normalized_levenshtein "hello" "help" in
     d > 0.0 && d < 1.0)

let test_edit_distance_assignment () =
  let r =
    Prob.Assign.run ~distance:Prob.Assign.Edit_distance
      ~attrs:Fixtures.section4_attrs
      (Fixtures.section4_customer ())
      (Fixtures.section4_clustering ())
  in
  (* same invariants as the information-loss variant *)
  let clustering = Fixtures.section4_clustering () in
  Cluster.iter
    (fun id members ->
      let sum = List.fold_left (fun acc i -> acc +. r.probabilities.(i)) 0.0 members in
      check_float
        (Printf.sprintf "cluster %s sums to 1" (Value.to_string id))
        1.0 sum)
    clustering;
  check_float "singleton still certain" 1.0 r.probabilities.(5)

let () =
  Alcotest.run "prob"
    [
      ( "interning",
        [ Alcotest.test_case "per-attribute" `Quick test_interning_distinct_per_attribute ] );
      ( "matrix (Table 1)",
        [
          Alcotest.test_case "shape" `Quick test_matrix_shape;
          Alcotest.test_case "entries" `Quick test_matrix_entries;
        ] );
      ( "representatives (Table 2)",
        [
          Alcotest.test_case "published numbers" `Quick
            test_representatives_table2;
          Alcotest.test_case "modal tuple" `Quick test_modal_tuple;
        ] );
      ( "assignment (Table 3)",
        [
          Alcotest.test_case "cluster sums" `Quick test_assign_cluster_sums;
          Alcotest.test_case "qualitative ranking" `Quick
            test_assign_table3_qualitative;
          Alcotest.test_case "similarity definition" `Quick
            test_assign_similarity_definition;
          Alcotest.test_case "identical tuples" `Quick
            test_assign_identical_tuples_uniform;
          Alcotest.test_case "two-tuple cluster" `Quick
            test_assign_two_tuple_cluster;
          Alcotest.test_case "annotate table" `Quick test_annotate_table;
        ] );
      ( "survivorship",
        [
          Alcotest.test_case "most probable" `Quick test_resolve_most_probable;
          Alcotest.test_case "merge policy" `Quick test_resolve_merge;
          Alcotest.test_case "resolution loses answers" `Quick
            test_resolution_loses_answers;
        ] );
      ( "string distance",
        [
          Alcotest.test_case "levenshtein" `Quick test_levenshtein;
          Alcotest.test_case "normalized" `Quick test_normalized_levenshtein;
          Alcotest.test_case "edit-distance assignment" `Quick
            test_edit_distance_assignment;
        ] );
    ]
