(** Agglomerative information-theoretic clustering of categorical
    tuples — the LIMBO algorithm of Andritsos et al. (EDBT 2004),
    which the paper builds its distance measure on (Section 4.1).

    This is the direct agglomerative variant: every tuple starts as a
    singleton DCF; the pair of clusters whose merge loses the least
    mutual information I(C;V) is merged repeatedly until a stopping
    condition holds.  (The original LIMBO accelerates this with a
    bounded DCF tree; the agglomerative core is the same and is what
    the duplicate-detection workloads here need.)  Complexity is
    O(k² · |V|) per merge — fine for blocking-sized inputs; pair it
    with {!Sorted_neighborhood} blocks for large relations. *)

type stop =
  | Num_clusters of int  (** merge until this many clusters remain *)
  | Max_loss of float
      (** stop before a merge that would lose more than this much
          mutual information (absolute, in bits) *)

type config = {
  attrs : string list;  (** attributes the summaries are built over *)
  stop : stop;
}

val run : config -> Dirty.Relation.t -> Dirty.Cluster.t
(** Cluster the relation's rows.  Cluster identifiers are [Int]
    values (the surviving DCF's lowest member row). *)

val merge_trace : config -> Dirty.Relation.t -> (int * int * float) list
(** The sequence of merges performed, as (cluster a's lowest row,
    cluster b's lowest row, information loss) — useful to inspect the
    dendrogram and pick a [Max_loss] threshold. *)
