lib/sql/parser.mli: Ast
