(* Probabilistic aggregates over dirty data — the extension layer.

   Run with:  dune exec examples/aggregates.exe

   Three levels of aggregate answers over the same dirty database:

   1. expected values   (Conquer.Expected — the paper's named future
                         work: SUM/COUNT/AVG rewritten to expectations)
   2. exact distributions (Conquer.Distribution — the full pmf of an
                         entity count, moments of a SUM)
   3. Monte-Carlo estimates (Conquer.Sampler — for queries where no
                         exact rewriting exists) *)

module Value = Dirty.Value
module Relation = Dirty.Relation
module Schema = Dirty.Schema
module Dirty_db = Dirty.Dirty_db

let v_s s = Value.String s
let v_i i = Value.Int i
let v_f f = Value.Float f

(* accounts with duplicated, conflicting balances *)
let accounts =
  Relation.create
    (Schema.make
       [
         ("id", Value.TString); ("owner", Value.TString);
         ("balance", Value.TInt); ("prob", Value.TFloat);
       ])
    [
      [| v_s "a1"; v_s "John"; v_i 1200; v_f 0.6 |];
      [| v_s "a1"; v_s "John"; v_i 1900; v_f 0.4 |];
      [| v_s "a2"; v_s "Mary"; v_i 800; v_f 0.5 |];
      [| v_s "a2"; v_s "Mary"; v_i 2400; v_f 0.5 |];
      [| v_s "a3"; v_s "Zoe"; v_i 3100; v_f 1.0 |];
      [| v_s "a4"; v_s "Ravi"; v_i 500; v_f 0.7 |];
      [| v_s "a4"; v_s "Ravi"; v_i 1600; v_f 0.3 |];
    ]

let () =
  let db =
    Dirty_db.add_table Dirty_db.empty
      (Dirty_db.make_table ~name:"accounts" ~id_attr:"id" ~prob_attr:"prob"
         accounts)
  in
  let s = Conquer.Clean.create db in
  print_endline "Dirty accounts:";
  print_string (Relation.to_string accounts);

  (* --- expected values --- *)
  let sql = "select count(*), sum(balance), avg(balance) from accounts where balance > 1000" in
  Printf.printf "\n%s\n" sql;
  let e = Conquer.Expected.answers s sql in
  print_string (Relation.to_string e);
  print_endline "(count and sum are exact expectations; avg is E[SUM]/E[COUNT])";

  (* --- the exact count distribution --- *)
  let counting = "select id from accounts where balance > 1000" in
  let pmf = Conquer.Distribution.count_distribution s counting in
  Printf.printf "\nHow many accounts really hold more than 1000?\n";
  Array.iteri (fun k p -> Printf.printf "  P(count = %d) = %.4f\n" k p) pmf;
  Printf.printf "  mean %.3f, std dev %.3f, P(count >= 2) = %.4f\n"
    (Conquer.Distribution.mean pmf)
    (Float.sqrt (Conquer.Distribution.variance pmf))
    (Conquer.Distribution.at_least pmf 2);

  (* --- moments of the SUM --- *)
  let m = Conquer.Distribution.sum_moments s "select sum(balance) from accounts" in
  Printf.printf "\nTotal balance: %.0f ± %.0f (one std dev)\n" m.mean m.std_dev;

  (* --- sampling where no rewriting exists --- *)
  let loans =
    Relation.create
      (Schema.make
         [
           ("lid", Value.TString); ("accfk", Value.TString);
           ("amount", Value.TInt); ("prob", Value.TFloat);
         ])
      [
        [| v_s "l1"; v_s "a1"; v_i 500; v_f 1.0 |];
        [| v_s "l2"; v_s "a2"; v_i 900; v_f 0.5 |];
        [| v_s "l2"; v_s "a4"; v_i 950; v_f 0.5 |];
      ]
  in
  let db2 =
    Dirty_db.add_table db
      (Dirty_db.make_table ~name:"loans" ~id_attr:"lid" ~prob_attr:"prob" loans)
  in
  let s2 = Conquer.Clean.create db2 in
  (* the loan identifier is not selected: outside the rewritable class *)
  let hard =
    "select a.id from loans l, accounts a \
     where l.accfk = a.id and a.balance > 1000 and l.amount < 920"
  in
  Printf.printf "\nNon-rewritable query (loan id not selected):\n%s\n" hard;
  (match Conquer.Clean.check s2 hard with
  | Ok _ -> ()
  | Error vs ->
    List.iter
      (fun v ->
        Printf.printf "  rejected: %s\n" (Conquer.Rewritable.violation_to_string v))
      vs);
  let sampled = Conquer.Sampler.answers ~seed:42 ~samples:5000 s2 hard in
  print_endline "Monte-Carlo estimates (5000 sampled candidate databases):";
  print_string (Relation.to_string sampled);
  let oracle = Conquer.Clean.answers_oracle s2 hard in
  print_endline "Exact (possible-worlds oracle, feasible at this size):";
  print_string (Relation.to_string oracle)
