lib/prob/matrix.ml: Array Dirty Infotheory Interning List Relation Schema
