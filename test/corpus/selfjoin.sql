SELECT r0.id
FROM t0 r0, t0 r1
WHERE r0.id = r1.id
