lib/infotheory/dcf.ml: Dist Format List
