lib/conquer/distribution.ml: Array Candidates Clean Cluster Dirty Dirty_db Dirty_schema Engine Float List Option Relation Sql Value
