open Dirty

type config = {
  pushdown : bool;
  use_indexes : bool;
  max_rows : int option;
  max_elapsed : float option;
  jobs : int;
  chunked : bool;
  spill_rows : int option;
  spill_dir : string option;
}

let default_config =
  {
    pushdown = true;
    use_indexes = true;
    max_rows = None;
    max_elapsed = None;
    jobs = 1;
    chunked = true;
    spill_rows = None;
    spill_dir = None;
  }

type env = {
  schema_of : string -> Schema.t option;
  stats_of : string -> Stats.t option;
  has_index : string -> string -> bool;
}

exception Plan_error of string

let plan_errorf fmt = Printf.ksprintf (fun s -> raise (Plan_error s)) fmt

let log_src = Logs.Src.create "engine.planner" ~doc:"SQL query planner"

module Log = (val Logs.src_log log_src)

(* ---- telemetry ---- *)

let m_plans =
  Telemetry.Metrics.counter "engine.planner.plans" ~help:"queries planned"

let m_stats_lookups =
  Telemetry.Metrics.counter "engine.planner.stats_lookups"
    ~help:"table statistics consulted while planning"

let m_selectivity_estimates =
  Telemetry.Metrics.counter "engine.planner.selectivity_estimates"
    ~help:"predicate selectivity estimations"

let m_join_candidates =
  Telemetry.Metrics.counter "engine.planner.join_candidates"
    ~help:"join-order candidates considered by the greedy search"

type binding = {
  alias : string;
  table : string;
  bare : Schema.t;  (* table schema with original names *)
  stats : Stats.t option;
}

(* ---- column ownership ---- *)

let owner_of_column bindings (c : Sql.Ast.column) =
  match c.table with
  | Some t -> (
    match List.find_opt (fun b -> b.alias = t) bindings with
    | Some b ->
      if Schema.mem b.bare c.name then b.alias
      else plan_errorf "column %s.%s not found" t c.name
    | None -> plan_errorf "unknown table alias %s" t)
  | None -> (
    match List.filter (fun b -> Schema.mem b.bare c.name) bindings with
    | [ b ] -> b.alias
    | [] -> plan_errorf "unbound column %s" c.name
    | _ :: _ :: _ -> plan_errorf "ambiguous column %s" c.name)

let aliases_of_expr bindings e =
  let cols = Sql.Ast.expr_columns e in
  List.sort_uniq String.compare (List.map (owner_of_column bindings) cols)

(* ---- conjunct classification ---- *)

type classified = {
  local : (string * Sql.Ast.expr list) list;  (* alias -> predicates *)
  edges : (string * Sql.Ast.expr * string * Sql.Ast.expr) list;
      (* (alias_a, expr_a, alias_b, expr_b) with expr_x over alias_x only *)
  residual : Sql.Ast.expr list;
}

let classify bindings where =
  let conjuncts = match where with None -> [] | Some w -> Sql.Ast.conjuncts w in
  let local = Hashtbl.create 8 in
  let edges = ref [] and residual = ref [] in
  List.iter
    (fun conjunct ->
      match aliases_of_expr bindings conjunct with
      | [] | [ _ ] ->
        let key = match aliases_of_expr bindings conjunct with
          | [ a ] -> a
          | _ -> (match bindings with b :: _ -> b.alias | [] -> assert false)
        in
        let existing = Option.value ~default:[] (Hashtbl.find_opt local key) in
        Hashtbl.replace local key (existing @ [ conjunct ])
      | [ _; _ ] -> (
        match (conjunct : Sql.Ast.expr) with
        | Binop (Eq, ea, eb) -> (
          match aliases_of_expr bindings ea, aliases_of_expr bindings eb with
          | [ xa ], [ xb ] when xa <> xb ->
            (* each key expression is tagged with its owning alias *)
            edges := (xa, ea, xb, eb) :: !edges
          | _ -> residual := conjunct :: !residual)
        | _ -> residual := conjunct :: !residual)
      | _ :: _ :: _ -> residual := conjunct :: !residual)
    conjuncts;
  {
    local =
      List.map
        (fun b -> (b.alias, Option.value ~default:[] (Hashtbl.find_opt local b.alias)))
        bindings;
    edges = List.rev !edges;
    residual = List.rev !residual;
  }

(* ---- cardinality estimation ---- *)

let base_estimate binding preds =
  let rows =
    match binding.stats with
    | Some s -> float_of_int (max 1 s.Stats.rows)
    | None -> 1000.0
  in
  List.fold_left
    (fun est pred ->
      Telemetry.Metrics.inc m_selectivity_estimates;
      est *. Stats.selectivity binding.stats pred)
    rows preds

let join_key_distinct binding (e : Sql.Ast.expr) =
  match e with
  | Col c -> (
    match Option.bind binding.stats (fun s -> Stats.column s c.name) with
    | Some { Stats.distinct; _ } when distinct > 0 -> float_of_int distinct
    | _ -> 10.0)
  | _ -> 10.0

(* ---- the planner ---- *)

let derive_output_names items =
  let taken = Hashtbl.create 8 in
  List.mapi
    (fun i ({ expr; alias } : Sql.Ast.select_item) ->
      let base =
        match alias with
        | Some a -> a
        | None -> (
          match (expr : Sql.Ast.expr) with
          | Col { name; _ } -> name
          | _ -> Printf.sprintf "expr%d" (i + 1))
      in
      let name =
        if not (Hashtbl.mem taken base) then base
        else
          let rec go k =
            let candidate = Printf.sprintf "%s_%d" base k in
            if Hashtbl.mem taken candidate then go (k + 1) else candidate
          in
          go 2
      in
      Hashtbl.replace taken name ();
      (expr, name))
    items

let resolves_against schema (e : Sql.Ast.expr) =
  try
    List.iter (fun c -> ignore (Expr.resolve schema c)) (Sql.Ast.expr_columns e);
    true
  with Expr.Unbound_column _ | Expr.Ambiguous_column _ -> false

let plan_query config env (q : Sql.Ast.query) : Plan.t =
  let stats_of table =
    Telemetry.Metrics.inc m_stats_lookups;
    env.stats_of table
  in
  (* bindings *)
  let bindings =
    List.map
      (fun ({ table; t_alias } : Sql.Ast.table_ref) ->
        let alias = Option.value ~default:table t_alias in
        match env.schema_of table with
        | None -> plan_errorf "unknown table %s" table
        | Some bare -> { alias; table; bare; stats = stats_of table })
      q.from
  in
  (match bindings with [] -> plan_errorf "empty FROM clause" | _ -> ());
  let outer_bindings =
    List.map
      (fun ({ oj_table = { table; t_alias }; oj_on } : Sql.Ast.outer_join) ->
        let alias = Option.value ~default:table t_alias in
        match env.schema_of table with
        | None -> plan_errorf "unknown table %s" table
        | Some bare -> ({ alias; table; bare; stats = stats_of table }, oj_on))
      q.outer_joins
  in
  let aliases =
    List.map (fun b -> b.alias) (bindings @ List.map fst outer_bindings)
  in
  if List.length (List.sort_uniq String.compare aliases) <> List.length aliases
  then plan_errorf "duplicate table alias in FROM";
  let aliases = List.map (fun b -> b.alias) bindings in
  let { local; edges; residual } = classify bindings q.where in
  let local, residual =
    if config.pushdown then (local, residual)
    else
      ( List.map (fun (a, _) -> (a, [])) local,
        List.concat_map snd local @ residual )
  in
  (* base inputs *)
  let base_input b =
    let scan = Plan.Scan { table = b.table; alias = b.alias } in
    match List.assoc b.alias local with
    | [] -> scan
    | preds ->
      Plan.Filter { input = scan; pred = Option.get (Sql.Ast.conj preds) }
  in
  let estimates =
    List.map (fun b -> (b.alias, base_estimate b (List.assoc b.alias local))) bindings
  in
  let binding_of alias = List.find (fun b -> b.alias = alias) bindings in
  (* greedy join ordering *)
  let joined = Hashtbl.create 8 in
  let residual_pending = ref residual in
  let apply_ready_residuals plan =
    let in_set e =
      List.for_all (fun a -> Hashtbl.mem joined a) (aliases_of_expr bindings e)
    in
    let ready, pending = List.partition in_set !residual_pending in
    residual_pending := pending;
    match Sql.Ast.conj ready with
    | None -> plan
    | Some pred -> Plan.Filter { input = plan; pred }
  in
  (* A table whose join-key column carries a persistent index is best
     probed as the inner side of an index join; avoid starting the
     greedy order there when possible (the paper's setup indexes the
     identifier attributes and probes them from the fk side). *)
  let is_index_target alias =
    config.use_indexes
    && List.exists
         (fun (a, ea, b, eb) ->
           let check al key =
             al = alias
             &&
             match (key : Sql.Ast.expr) with
             | Col c -> env.has_index (binding_of alias).table c.name
             | _ -> false
           in
           check a ea || check b eb)
         edges
  in
  let smallest candidates =
    List.fold_left
      (fun best (alias, est) ->
        match best with
        | None -> Some (alias, est)
        | Some (_, e) when est < e -> Some (alias, est)
        | Some _ -> best)
      None candidates
  in
  let start =
    match smallest (List.filter (fun (a, _) -> not (is_index_target a)) estimates) with
    | Some x -> Some x
    | None -> smallest estimates
  in
  let start_alias, start_est =
    match start with Some x -> x | None -> assert false
  in
  Hashtbl.replace joined start_alias ();
  let current = ref (apply_ready_residuals (base_input (binding_of start_alias))) in
  let current_est = ref start_est in
  let remaining = ref (List.filter (fun a -> a <> start_alias) aliases) in
  let edges_between target =
    (* edges connecting the joined set to [target]; returns
       (left_key over joined set, right_key over target) pairs *)
    List.filter_map
      (fun (a, ea, b, eb) ->
        if Hashtbl.mem joined a && b = target then Some (ea, eb)
        else if Hashtbl.mem joined b && a = target then Some (eb, ea)
        else None)
      edges
  in
  while !remaining <> [] do
    let connected =
      List.filter (fun a -> edges_between a <> []) !remaining
    in
    let candidates = if connected <> [] then connected else !remaining in
    Telemetry.Metrics.inc ~n:(List.length candidates) m_join_candidates;
    let next =
      List.fold_left
        (fun best alias ->
          let est = List.assoc alias estimates in
          match best with
          | None -> Some (alias, est)
          | Some (_, e) when est < e -> Some (alias, est)
          | Some _ -> best)
        None candidates
    in
    let next_alias, next_est = Option.get next in
    let b = binding_of next_alias in
    let pairs = edges_between next_alias in
    let node =
      if pairs = [] then Plan.Cross (!current, base_input b)
      else begin
        let left_keys = List.map fst pairs and right_keys = List.map snd pairs in
        (* index join applies when the inner side is a bare scan and
           some right key is a plain indexed column; reorder keys to
           put it first *)
        let right_is_bare = List.assoc next_alias local = [] in
        let indexed_first =
          if not (config.use_indexes && right_is_bare) then None
          else
            List.find_opt
              (fun (_, rk) ->
                match (rk : Sql.Ast.expr) with
                | Col c -> env.has_index b.table c.name
                | _ -> false)
              pairs
        in
        match indexed_first with
        | Some ((_, Col _) as first)
          when List.for_all
                 (fun (_, rk) ->
                   match (rk : Sql.Ast.expr) with Col _ -> true | _ -> false)
                 pairs ->
          let rest = List.filter (fun p -> p != first) pairs in
          let ordered = first :: rest in
          let right_attrs =
            List.map
              (fun (_, rk) ->
                match (rk : Sql.Ast.expr) with
                | Col c -> c.name
                | _ -> assert false)
              ordered
          in
          Plan.Index_join
            {
              left = !current;
              table = b.table;
              alias = b.alias;
              left_keys = List.map fst ordered;
              right_attrs;
            }
        | _ ->
          Plan.Hash_join { left = !current; right = base_input b; left_keys; right_keys }
      end
    in
    Hashtbl.replace joined next_alias ();
    let key_selectivity =
      List.fold_left
        (fun acc (_, rk) -> acc /. join_key_distinct b rk)
        1.0 pairs
    in
    current_est := !current_est *. next_est *. key_selectivity;
    current := apply_ready_residuals node;
    remaining := List.filter (fun a -> a <> next_alias) !remaining
  done;
  (match !residual_pending with
  | [] -> ()
  | pending ->
    current :=
      Plan.Filter { input = !current; pred = Option.get (Sql.Ast.conj pending) });
  (* LEFT OUTER JOINs apply after the inner block, in syntactic order *)
  List.iter
    (fun (b, on) ->
      current :=
        Plan.Left_outer_join
          { left = !current; right = Plan.Scan { table = b.table; alias = b.alias }; on })
    outer_bindings;
  (* projection / aggregation *)
  let joined_schema =
    List.fold_left
      (fun acc b -> Schema.append acc (Schema.rename ~prefix:b.alias b.bare))
      (Schema.make [])
      (bindings @ List.map fst outer_bindings)
  in
  let items =
    match q.select with
    | Items items -> derive_output_names items
    | Star ->
      List.map
        (fun (a : Schema.attribute) ->
          (Sql.Ast.Col { table = None; name = a.name }, a.name))
        (Schema.attributes joined_schema)
  in
  let needs_aggregate =
    q.group_by <> [] || q.having <> None
    || List.exists (fun (e, _) -> Sql.Ast.has_aggregates e) items
  in
  let projected =
    if needs_aggregate then
      Plan.Aggregate
        { input = !current; group_by = q.group_by; items; having = q.having }
    else Plan.Project { input = !current; items }
  in
  let projected = if q.distinct then Plan.Distinct projected else projected in
  (* ORDER BY *)
  let with_sort =
    if q.order_by = [] then projected
    else begin
      let out_schema =
        Schema.make (List.map (fun (_, n) -> (n, Value.TString)) items)
      in
      (* an ORDER BY key that repeats a select item's expression sorts
         on that output column (SQL's GROUP BY ... ORDER BY idiom) *)
      let as_output_column e =
        match
          List.find_opt (fun (ie, _) -> Sql.Ast.equal_expr ie e) items
        with
        | Some (_, name) -> Sql.Ast.Col { table = None; name }
        | None -> e
      in
      let keys_out =
        List.map
          (fun (o : Sql.Ast.order_item) -> (as_output_column o.o_expr, o.desc))
          q.order_by
      in
      let keys_in =
        List.map (fun (o : Sql.Ast.order_item) -> (o.o_expr, o.desc)) q.order_by
      in
      if List.for_all (fun (e, _) -> resolves_against out_schema e) keys_out then
        Plan.Sort { input = projected; keys = keys_out }
      else if
        (not needs_aggregate)
        && List.for_all (fun (e, _) -> resolves_against joined_schema e) keys_in
      then begin
        (* sort below the projection, over base columns *)
        match projected with
        | Plan.Project { input; items } ->
          Plan.Project { input = Plan.Sort { input; keys = keys_in }; items }
        | Plan.Distinct (Plan.Project { input; items }) ->
          Plan.Distinct
            (Plan.Project { input = Plan.Sort { input; keys = keys_in }; items })
        | _ -> plan_errorf "unsupported ORDER BY"
      end
      else
        plan_errorf
          "ORDER BY keys must all resolve against the output columns or all \
           against the input columns"
    end
  in
  let final =
    match q.limit with None -> with_sort | Some n -> Plan.Limit (with_sort, n)
  in
  Log.debug (fun m -> m "plan:@\n%a" Plan.pp final);
  final

let plan ?(config = default_config) env q =
  Telemetry.Metrics.inc m_plans;
  Telemetry.Span.with_ ~name:"planner.plan" (fun () -> plan_query config env q)
