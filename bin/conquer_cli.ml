(* The conquer command-line tool.

   Subcommands:
     query      run a query over dirty CSV tables and print clean answers
     profile    run a query with telemetry on and print the span tree
     validate   report structured integrity diagnostics (optionally repair)
     rewrite    print RewriteClean(q) or the rewritability violations
     why        per-answer provenance: which duplicates contribute how much
     expected   expected aggregates (SUM/COUNT/AVG as expectations)
     dist       exact distribution of a qualifying-entity count
     sample     Monte-Carlo clean answers for non-rewritable queries
     match      cluster duplicate records (sorted-neighborhood)
     assign     compute tuple probabilities for a clustered CSV (Figure 5)
     generate   emit a dirty TPC-H-style database as CSV files
     update     apply a delta batch to a saved database and commit it
     recover    sweep crash debris from a saved database directory
     serve      run the overload-resilient query daemon
     trace      inspect a running daemon: traces and the query log
     demo       walk through the paper's running example

   Exit codes: 0 success; 2 the database has Error-severity validation
   diagnostics (or a repair failed); 3 an execution budget was
   exceeded or the query was cancelled; 4 an I/O or recovery failure
   (corrupt store, exhausted retries); 1 other errors.

   '--verbose' anywhere turns on debug logging (plans, rewritten SQL).
   '--trace FILE' anywhere enables telemetry and appends every completed
   root span as a JSON line to FILE; '--metrics FILE' enables telemetry
   and writes a Prometheus-style metrics snapshot to FILE at exit.
   '--jobs N' anywhere runs partition-parallel operators on up to N
   domains (same results, defaults to CONQUER_JOBS or 1).
   '--retries N' / '--io-backoff-ms N' anywhere tune the retry policy
   for transient I/O failures when saving or loading a database. *)

module Value = Dirty.Value
module Relation = Dirty.Relation
module Schema = Dirty.Schema
module Dirty_db = Dirty.Dirty_db
module Csv = Dirty.Csv

open Cmdliner

(* ---- table specifications: name=path[:id=ATTR][:prob=ATTR] ---- *)

type table_arg = {
  t_name : string;
  path : string;
  id : string;
  prob : string option;  (* absent: assign probabilities on load *)
}

let parse_table_arg s =
  match String.split_on_char '=' s with
  | t_name :: rest when rest <> [] ->
    let rest = String.concat "=" rest in
    let segments = String.split_on_char ':' rest in
    (match segments with
    | path :: options ->
      let id = ref "id" and prob = ref None in
      let ok =
        List.for_all
          (fun opt ->
            match String.index_opt opt '=' with
            | Some i ->
              let key = String.sub opt 0 i
              and v = String.sub opt (i + 1) (String.length opt - i - 1) in
              (match key with
              | "id" ->
                id := v;
                true
              | "prob" ->
                prob := Some v;
                true
              | _ -> false)
            | None -> false)
          options
      in
      if ok then Ok { t_name; path; id = !id; prob = !prob }
      else Error (`Msg (Printf.sprintf "bad table option in %S" s))
    | [] -> Error (`Msg (Printf.sprintf "bad table spec %S" s)))
  | _ ->
    Error
      (`Msg
        (Printf.sprintf
           "bad table spec %S (expected name=path.csv[:id=attr][:prob=attr])" s))

let table_conv =
  Arg.conv
    ( parse_table_arg,
      fun fmt t -> Format.fprintf fmt "%s=%s:id=%s" t.t_name t.path t.id )

let load_table ?(validate = true) (t : table_arg) =
  let rel = Csv.load_file t.path in
  match t.prob with
  | Some prob_attr ->
    Dirty_db.make_table ~validate ~name:t.t_name ~id_attr:t.id ~prob_attr rel
  | None ->
    (* append a prob column and compute it from the clustering *)
    let schema = Relation.schema rel in
    let schema' = Schema.append schema (Schema.make [ ("prob", Value.TFloat) ]) in
    let rel' =
      Relation.map_rows schema'
        (fun row -> Array.append row [| Value.Float 1.0 |])
        rel
    in
    let table =
      Dirty_db.make_table ~validate:false ~name:t.t_name ~id_attr:t.id
        ~prob_attr:"prob" rel'
    in
    let attrs =
      List.filter
        (fun n -> n <> t.id && n <> "prob")
        (Schema.names schema')
    in
    Prob.Assign.annotate_table ~attrs table

let load_db ?validate tables =
  List.fold_left
    (fun db t -> Dirty_db.add_table db (load_table ?validate t))
    Dirty_db.empty tables

let tables_arg =
  let doc =
    "Dirty table as NAME=PATH.csv[:id=ATTR][:prob=ATTR]. The id attribute \
     (default 'id') holds the cluster identifier. Without a prob attribute, \
     probabilities are computed from the clustering (Figure 5 of the paper)."
  in
  Arg.(value & opt_all table_conv [] & info [ "t"; "table" ] ~docv:"TABLE" ~doc)

let dir_arg =
  let doc =
    "Load a dirty database saved as a directory (manifest.csv plus one CSV \
     per table, as written by 'conquer generate --save-db' or \
     Dirty.Store.save)."
  in
  Arg.(value & opt (some dir) None & info [ "d"; "dir" ] ~docv:"DIR" ~doc)

let load_store ?validate ~lenient d =
  let db, warnings = Dirty.Store.load_verbose ?validate ~lenient d in
  List.iter (fun w -> Printf.eprintf "warning: %s\n%!" w) warnings;
  db

let resolve_db ?validate ?(lenient = false) tables dir =
  match tables, dir with
  | [], None ->
    prerr_endline "specify dirty tables with --table or a database with --dir";
    exit 1
  | [], Some d -> load_store ?validate ~lenient d
  | ts, None -> load_db ?validate ts
  | ts, Some d ->
    List.fold_left (fun db t -> Dirty_db.add_table db (load_table ?validate t))
      (load_store ?validate ~lenient d) ts

let sql_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL" ~doc:"The query.")

let lenient_arg =
  let doc =
    "With --dir: skip corrupt or invalid tables (reported as warnings on \
     stderr) instead of aborting the load."
  in
  Arg.(value & flag & info [ "lenient" ] ~doc)

let policy_conv =
  Arg.conv
    ( (fun s ->
        match Dirty.Repair.policy_of_string s with
        | Some p -> Ok p
        | None ->
          Error
            (`Msg
              (Printf.sprintf
                 "unknown repair policy %S (expected renormalize, clamp, \
                  uniform, drop or fail)"
                 s))),
      fun fmt p ->
        Format.pp_print_string fmt (Dirty.Repair.policy_to_string p) )

let repair_arg =
  let doc =
    "Repair invalid clusters before answering, under POLICY: 'renormalize' \
     (rescale to sum 1), 'clamp' (clamp into [0,1], then renormalize), \
     'uniform' (1/n each), 'drop' (delete the cluster), or 'fail' (abort on \
     the first problem). Applied actions are reported on stderr."
  in
  Arg.(
    value & opt (some policy_conv) None
    & info [ "repair" ] ~docv:"POLICY" ~doc)

let budget_rows_arg =
  let doc =
    "Execution budget: abort (exit code 3) once the plan's operators have \
     produced N rows, intermediate results included."
  in
  Arg.(value & opt (some int) None & info [ "budget-rows" ] ~docv:"N" ~doc)

let budget_time_arg =
  let doc =
    "Execution budget: abort (exit code 3) after SECONDS of wall-clock \
     execution."
  in
  Arg.(
    value & opt (some float) None & info [ "budget-time" ] ~docv:"SECONDS" ~doc)

let partial_arg =
  let doc =
    "With a budget: degrade gracefully instead of aborting — print the \
     partial answers produced within the budget, flagged as truncated."
  in
  Arg.(value & flag & info [ "partial" ] ~doc)

let shards_arg =
  let doc =
    "Cluster-hash shards to partition the database into: shardable queries \
     scatter across N in-process shard catalogs and gather their partial \
     results; the rest run unsharded. Answers are bag-identical whatever \
     the value; 1 disables sharding."
  in
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)

let shards_opt = function
  | 1 -> None
  | n when n >= 1 -> Some n
  | _ ->
    prerr_endline "conquer: --shards expects a positive integer";
    exit 1

let budget_config budget_rows budget_time =
  if budget_rows = None && budget_time = None then None
  else
    Some
      {
        Engine.Planner.default_config with
        max_rows = budget_rows;
        max_elapsed = budget_time;
      }

(* validate, and either report-and-exit or repair *)
let validate_or_repair ?(quiet_warnings = false) repair db =
  match repair with
  | Some policy ->
    let db, actions = Dirty.Repair.repair_db ~policy db in
    List.iter
      (fun a -> Printf.eprintf "repaired: %s\n" (Dirty.Repair.action_to_string a))
      actions;
    db
  | None ->
    let diags = Dirty.Validate.db_diagnostics db in
    List.iter
      (fun d ->
        if (not quiet_warnings) || Dirty.Validate.severity d = Dirty.Validate.Error
        then prerr_endline (Dirty.Validate.to_string d))
      diags;
    if not (Dirty.Validate.is_clean diags) then begin
      Printf.eprintf
        "%d validation error(s); re-run with --repair POLICY to fix them\n"
        (List.length (Dirty.Validate.errors diags));
      exit 2
    end;
    db

let handling_failures f =
  try f () with
  | Sys_error msg ->
    prerr_endline msg;
    exit 1
  | Invalid_argument msg | Failure msg ->
    Printf.eprintf "invalid input: %s\n" msg;
    exit 1
  | Sql.Parser.Error msg ->
    Printf.eprintf "SQL parse error: %s\n" msg;
    exit 1
  | Engine.Planner.Plan_error msg ->
    Printf.eprintf "planning error: %s\n" msg;
    exit 1
  | Engine.Exec.Exec_error msg ->
    Printf.eprintf "execution error: %s\n" msg;
    exit 1
  | Conquer.Rewrite.Not_rewritable vs ->
    prerr_endline "query is not in the rewritable class (Dfn 7):";
    List.iter
      (fun v -> prerr_endline ("  - " ^ Conquer.Rewritable.violation_to_string v))
      vs;
    exit 1
  | Dirty.Repair.Repair_failed d ->
    Printf.eprintf "repair failed: %s\n" (Dirty.Validate.to_string d);
    exit 2
  | Dirty_db.Invalid msg ->
    Printf.eprintf "invalid dirty database: %s\n" msg;
    exit 2
  | Engine.Budget.Exceeded { produced; elapsed; limits } ->
    prerr_endline (Engine.Budget.exceeded_message ~produced ~elapsed limits);
    prerr_endline "re-run with --partial for the answers produced in budget";
    exit 3
  | Engine.Cancel.Cancelled reason ->
    Printf.eprintf "query cancelled: %s\n" reason;
    prerr_endline "re-run with --partial for the answers produced in budget";
    exit 3
  | Dirty.Csv.Parse_error { path; line; msg } ->
    Printf.eprintf "parse error: %s:%d: %s\n" path line msg;
    exit 1
  | Tpch.Tbl.Parse_error { path; lineno; msg } ->
    Printf.eprintf "parse error: %s:%d: %s\n" path lineno msg;
    exit 1
  | Dirty.Store.Corrupt { dir; detail } ->
    Printf.eprintf "corrupt database directory %s: %s\n" dir detail;
    prerr_endline "run 'conquer recover DIR' to sweep debris, or --lenient to skip bad tables";
    exit 4
  | Fault.Io.Io_error { op; path; msg; transient = _ } ->
    Printf.eprintf "I/O error (%s %s): %s\n" (Fault.Io.op_name op) path msg;
    exit 4
  | Fault.Retry.Gave_up { attempts; last } ->
    Printf.eprintf "I/O failed after %d attempt(s): %s\n" attempts
      (Printexc.to_string last);
    exit 4

(* ---- query ---- *)

type mode = Rewritten | Original | Oracle | Consistent

let mode_conv =
  Arg.enum
    [
      ("rewritten", Rewritten); ("original", Original); ("oracle", Oracle);
      ("consistent", Consistent);
    ]

let query_cmd =
  let run tables dir sql mode explain max_rows lenient repair budget_rows
      budget_time partial shards =
    handling_failures @@ fun () ->
    let db = resolve_db ~validate:false ~lenient tables dir in
    let db = validate_or_repair ~quiet_warnings:true repair db in
    let config = budget_config budget_rows budget_time in
    let session = Conquer.Clean.create ?shards:(shards_opt shards) db in
    if explain then
      print_endline (Engine.Database.explain (Conquer.Clean.engine session) sql);
    let complete rel = (rel, (false, false)) in
    let result, (truncated, cancelled) =
      match mode with
      | Rewritten when partial ->
        let { Conquer.Clean.rows; truncated; cancelled } =
          Conquer.Clean.answers_within ?config session sql
        in
        (rows, (truncated, cancelled))
      | Rewritten -> complete (Conquer.Clean.answers ?config session sql)
      | Original -> complete (Conquer.Clean.original ?config session sql)
      | Oracle -> complete (Conquer.Clean.answers_oracle session sql)
      | Consistent -> complete (Conquer.Clean.consistent_answers ?config session sql)
    in
    print_string (Relation.to_string ~max_rows result);
    Printf.printf "(%d rows%s)\n"
      (Relation.cardinality result)
      (if truncated then ", truncated by execution budget"
       else if cancelled then ", cancelled by time budget"
       else "")
  in
  let mode =
    Arg.(
      value & opt mode_conv Rewritten
      & info [ "m"; "mode" ] ~docv:"MODE"
          ~doc:
            "One of 'rewritten' (clean answers via RewriteClean), 'original' \
             (the query as-is on the dirty data), 'oracle' (possible-worlds \
             enumeration; exponential), or 'consistent' (probability-1 \
             answers).")
  in
  let explain =
    Arg.(value & flag & info [ "explain" ] ~doc:"Print the execution plan.")
  in
  let max_rows =
    Arg.(value & opt int 50 & info [ "max-rows" ] ~doc:"Rows to display.")
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Run a query over dirty tables and print clean answers")
    Term.(
      const run $ tables_arg $ dir_arg $ sql_arg $ mode $ explain $ max_rows
      $ lenient_arg $ repair_arg $ budget_rows_arg $ budget_time_arg
      $ partial_arg $ shards_arg)

(* ---- profile ---- *)

let profile_cmd =
  let run tables dir sql mode runs format lenient repair =
    handling_failures @@ fun () ->
    (* counting starts before the load, so I/O retries and recoveries
       during store loading show up in the counter section below *)
    Telemetry.Control.enable ();
    let db = resolve_db ~validate:false ~lenient tables dir in
    let db = validate_or_repair ~quiet_warnings:true repair db in
    let session = Conquer.Clean.create db in
    let execute () =
      match mode with
      | Rewritten -> Conquer.Clean.answers session sql
      | Original -> Conquer.Clean.original session sql
      | Oracle -> Conquer.Clean.answers_oracle session sql
      | Consistent -> Conquer.Clean.consistent_answers session sql
    in
    (* one instrumented pass captures the span tree (plan operators,
       rewriting, and the clean-answer aggregation) *)
    let result, spans = Telemetry.Span.collecting (fun () -> execute ()) in
    (* repeated timing runs with telemetry forced off, so the numbers
       are not distorted by the instrumentation itself *)
    let stats =
      Telemetry.Control.with_disabled (fun () ->
          Telemetry.Timing.time_runs ~runs (fun () -> ignore (execute ())))
    in
    let samples = Telemetry.Metrics.snapshot () in
    let histograms =
      List.filter_map
        (fun (s : Telemetry.Metrics.sample) ->
          match s.data with
          | Telemetry.Metrics.Histogram_value h when h.hs_total > 0 ->
            Some
              ( s.name,
                h,
                Telemetry.Metrics.histogram_quantile h 0.5,
                Telemetry.Metrics.histogram_quantile h 0.99 )
          | _ -> None)
        samples
    in
    match format with
    | `Human ->
      Printf.printf "%d answer row(s)\n\nspan tree:\n"
        (Relation.cardinality result);
      List.iter
        (fun s -> print_string (Telemetry.Export.span_to_string s))
        spans;
      (* counters, including the robustness ones (faults injected, I/O
         retries, store recoveries, cancellations) *)
      print_string "\ncounters:\n";
      List.iter
        (fun (s : Telemetry.Metrics.sample) ->
          match s.data with
          | Telemetry.Metrics.Counter_value n ->
            Printf.printf "  %-36s %d\n" s.name n
          | _ -> ())
        samples;
      (* latency distributions, summarized by the same quantile
         estimator the daemon's debug surface uses *)
      print_string "\nhistograms (p50/p99, bucket upper bounds):\n";
      List.iter
        (fun (name, (h : Telemetry.Metrics.histogram_snapshot), p50, p99) ->
          Printf.printf "  %-36s n=%-6d p50=%.3gs p99=%.3gs sum=%.3gs\n" name
            h.hs_total p50 p99 h.hs_sum)
        histograms;
      Printf.printf "\ntiming (telemetry off): %s\n"
        (Telemetry.Timing.to_string stats)
    | `Json ->
      let buf = Buffer.create 1024 in
      Buffer.add_string buf
        (Printf.sprintf "{\"rows\":%d,\"spans\":["
           (Relation.cardinality result));
      List.iteri
        (fun i s ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Telemetry.Export.span_to_json s))
        spans;
      Buffer.add_string buf "],\"metrics\":";
      Buffer.add_string buf (Telemetry.Export.metrics_json ());
      Buffer.add_string buf ",\"quantiles\":{";
      List.iteri
        (fun i (name, _, p50, p99) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf "%s:{\"p50\":%s,\"p99\":%s}"
               (Telemetry.Export.json_string name)
               (Telemetry.Export.json_float p50)
               (Telemetry.Export.json_float p99)))
        histograms;
      Buffer.add_string buf
        (Printf.sprintf
           "},\"timing_ms\":{\"runs\":%d,\"min\":%s,\"median\":%s,\"max\":%s}}"
           stats.Telemetry.Timing.runs
           (Telemetry.Export.json_float (stats.Telemetry.Timing.min *. 1000.0))
           (Telemetry.Export.json_float
              (stats.Telemetry.Timing.median *. 1000.0))
           (Telemetry.Export.json_float (stats.Telemetry.Timing.max *. 1000.0)));
      print_endline (Buffer.contents buf)
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("human", `Human); ("json", `Json) ]) `Human
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:
            "Output format: 'human' (the span tree and counter sections) or \
             'json' (one machine-readable object with spans, metrics, \
             histogram quantiles, and timings).")
  in
  let mode =
    Arg.(
      value & opt mode_conv Rewritten
      & info [ "m"; "mode" ] ~docv:"MODE"
          ~doc:
            "One of 'rewritten' (default), 'original', 'oracle' or \
             'consistent' — same semantics as 'query'.")
  in
  let runs =
    Arg.(
      value & opt int 5
      & info [ "runs" ] ~docv:"N"
          ~doc:"Timed executions after one warmup (reported as min/median/max).")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a query with telemetry enabled: print the tracing-span tree \
          (per-operator rows, wall-clock, allocation), histogram p50/p99 \
          quantiles, and min/median/max timings — or the same as one JSON \
          object with --format json. Combine with --metrics FILE for a \
          Prometheus-style counter snapshot.")
    Term.(
      const run $ tables_arg $ dir_arg $ sql_arg $ mode $ runs $ format
      $ lenient_arg $ repair_arg)

(* ---- validate ---- *)

let validate_cmd =
  let run tables dir lenient repair output =
    handling_failures @@ fun () ->
    let db = resolve_db ~validate:false ~lenient tables dir in
    let diags = Dirty.Validate.db_diagnostics db in
    List.iter (fun d -> print_endline (Dirty.Validate.to_string d)) diags;
    let errors = List.length (Dirty.Validate.errors diags) in
    let warnings = List.length diags - errors in
    Printf.printf "%d error(s), %d warning(s)\n" errors warnings;
    match repair with
    | None -> if errors > 0 then exit 2
    | Some policy ->
      let repaired, actions = Dirty.Repair.repair_db ~policy db in
      List.iter
        (fun a ->
          Printf.printf "repaired: %s\n" (Dirty.Repair.action_to_string a))
        actions;
      let after = Dirty.Validate.errors (Dirty.Validate.db_diagnostics repaired) in
      Printf.printf "after repair: %d error(s)\n" (List.length after);
      (match output with
      | Some outdir ->
        Dirty.Store.save outdir repaired;
        Printf.printf "repaired database written to %s\n" outdir
      | None -> ());
      if after <> [] then exit 2
  in
  let output =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"DIR"
          ~doc:"With --repair: save the repaired database to this directory.")
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Report every integrity problem of a dirty database (cluster sums, \
          bad probabilities, duplicates, empty clusters) as structured \
          diagnostics; optionally repair them. Exits 2 when Error-severity \
          diagnostics remain.")
    Term.(
      const run $ tables_arg $ dir_arg $ lenient_arg $ repair_arg $ output)

(* ---- rewrite ---- *)

let rewrite_cmd =
  let run tables dir sql =
    let db = resolve_db tables dir in
    let session = Conquer.Clean.create ~index_identifiers:false db in
    match Conquer.Clean.rewrite session sql with
    | Ok text -> print_endline text
    | Error violations ->
      prerr_endline "query is not in the rewritable class (Dfn 7):";
      List.iter
        (fun v ->
          prerr_endline ("  - " ^ Conquer.Rewritable.violation_to_string v))
        violations;
      exit 1
  in
  Cmd.v
    (Cmd.info "rewrite"
       ~doc:"Print RewriteClean(q), or the reasons the query is not rewritable")
    Term.(const run $ tables_arg $ dir_arg $ sql_arg)

(* ---- provenance ---- *)

let why_cmd =
  let run tables dir sql limit =
    let db = resolve_db tables dir in
    let session = Conquer.Clean.create db in
    match Conquer.Provenance.explain session sql with
    | explanations ->
      List.iteri
        (fun i e ->
          if i < limit then
            Format.printf "%a" Conquer.Provenance.pp_explanation e)
        explanations;
      if List.length explanations > limit then
        Printf.printf "... (%d answers total)\n" (List.length explanations)
    | exception Conquer.Rewrite.Not_rewritable vs ->
      prerr_endline "query is not in the rewritable class (Dfn 7):";
      List.iter
        (fun v -> prerr_endline ("  - " ^ Conquer.Rewritable.violation_to_string v))
        vs;
      exit 1
  in
  let limit =
    Arg.(value & opt int 20 & info [ "limit" ] ~doc:"Answers to explain.")
  in
  Cmd.v
    (Cmd.info "why"
       ~doc:
         "Explain clean answers: which combinations of duplicates \
          contribute how much probability")
    Term.(const run $ tables_arg $ dir_arg $ sql_arg $ limit)

(* ---- expected aggregates ---- *)

let expected_cmd =
  let run tables dir sql =
    let db = resolve_db tables dir in
    let session = Conquer.Clean.create db in
    match Conquer.Expected.answers session sql with
    | result ->
      print_string (Relation.to_string result);
      Printf.printf "(%d rows)\n" (Relation.cardinality result)
    | exception Conquer.Expected.Not_supported vs ->
      prerr_endline "query outside the expected-aggregate class:";
      List.iter
        (fun v -> prerr_endline ("  - " ^ Conquer.Expected.violation_to_string v))
        vs;
      exit 1
  in
  Cmd.v
    (Cmd.info "expected"
       ~doc:
         "Expected aggregates over dirty data (SUM/COUNT/AVG rewritten to \
          expectations)")
    Term.(const run $ tables_arg $ dir_arg $ sql_arg)

(* ---- sampling ---- *)

let sample_cmd =
  let run tables dir sql samples seed =
    let db = resolve_db tables dir in
    let session = Conquer.Clean.create db in
    let result = Conquer.Sampler.answers ~seed ~samples session sql in
    print_string (Relation.to_string result);
    Printf.printf "(%d answers from %d sampled candidate databases)\n"
      (Relation.cardinality result) samples
  in
  let samples =
    Arg.(value & opt int 1000 & info [ "n"; "samples" ] ~doc:"Sample count.")
  in
  let seed = Arg.(value & opt int 0x5eed & info [ "seed" ] ~doc:"PRNG seed.") in
  Cmd.v
    (Cmd.info "sample"
       ~doc:
         "Monte-Carlo clean answers (works for queries outside the \
          rewritable class)")
    Term.(const run $ tables_arg $ dir_arg $ sql_arg $ samples $ seed)

(* ---- count distribution ---- *)

let dist_cmd =
  let run tables dir sql =
    let db = resolve_db tables dir in
    let session = Conquer.Clean.create db in
    match Conquer.Distribution.count_distribution session sql with
    | pmf ->
      Printf.printf "%-8s %12s\n" "count" "probability";
      Array.iteri
        (fun k p -> if p > 1e-9 then Printf.printf "%-8d %12.6f\n" k p)
        pmf;
      Printf.printf
        "mean %.4f, variance %.4f, std dev %.4f\n"
        (Conquer.Distribution.mean pmf)
        (Conquer.Distribution.variance pmf)
        (Float.sqrt (Conquer.Distribution.variance pmf))
    | exception Conquer.Distribution.Not_supported vs ->
      prerr_endline "query outside the count-distribution class:";
      List.iter
        (fun v ->
          prerr_endline ("  - " ^ Conquer.Distribution.violation_to_string v))
        vs;
      exit 1
  in
  Cmd.v
    (Cmd.info "dist"
       ~doc:
         "Exact distribution of the number of entities satisfying a \
          single-relation predicate")
    Term.(const run $ tables_arg $ dir_arg $ sql_arg)

(* ---- tuple matching ---- *)

let match_cmd =
  let run input output keys window threshold attrs out_id =
    let rel = Csv.load_file input in
    let all_attrs = Schema.names (Relation.schema rel) in
    let compare_attrs = if attrs = [] then all_attrs else attrs in
    let passes =
      match keys with
      | [] -> [ Matcher.Sorted_neighborhood.pass [ List.hd all_attrs ] ]
      | ks -> List.map (fun k -> Matcher.Sorted_neighborhood.pass [ k ]) ks
    in
    let config =
      { Matcher.Sorted_neighborhood.passes; window; threshold; attrs = compare_attrs }
    in
    let clustering = Matcher.Sorted_neighborhood.run config rel in
    Printf.eprintf "%d records -> %d entities\n%!" (Relation.cardinality rel)
      (Dirty.Cluster.num_clusters clustering);
    let schema' =
      Schema.append (Relation.schema rel)
        (Schema.make [ (out_id, Value.TInt) ])
    in
    let counter = ref (-1) in
    let rel' =
      Relation.map_rows schema'
        (fun row ->
          incr counter;
          Array.append row [| Dirty.Cluster.cluster_of_row clustering !counter |])
        rel
    in
    match output with
    | Some path -> Csv.write_file path rel'
    | None -> print_string (Relation.to_string ~max_rows:max_int rel')
  in
  let input =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT.csv" ~doc:"Raw CSV.")
  in
  let output =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"OUTPUT.csv" ~doc:"Output path (default: stdout).")
  in
  let keys =
    Arg.(
      value & opt_all string []
      & info [ "k"; "key" ] ~docv:"ATTR"
          ~doc:"Blocking-key attribute (repeatable; one sorted-neighborhood \
                pass per key).")
  in
  let window =
    Arg.(value & opt int 8 & info [ "w"; "window" ] ~doc:"Sliding-window size.")
  in
  let threshold =
    Arg.(
      value & opt float 0.75
      & info [ "threshold" ] ~doc:"Record-similarity merge threshold in [0,1].")
  in
  let attrs =
    Arg.(
      value & opt_all string []
      & info [ "a"; "attr" ] ~docv:"ATTR"
          ~doc:"Attribute compared by the similarity (repeatable; default: all).")
  in
  let out_id =
    Arg.(
      value & opt string "id"
      & info [ "id-attr" ] ~doc:"Name of the appended cluster-identifier column.")
  in
  Cmd.v
    (Cmd.info "match"
       ~doc:"Cluster duplicate records (sorted-neighborhood merge/purge)")
    Term.(
      const run $ input $ output $ keys $ window $ threshold $ attrs $ out_id)

(* ---- assign ---- *)

let assign_cmd =
  let run input output id_attr distance =
    let rel = Csv.load_file input in
    let clustering = Dirty.Cluster.of_relation rel ~id_attr in
    let attrs =
      List.filter (fun n -> n <> id_attr) (Schema.names (Relation.schema rel))
    in
    let dist =
      match distance with
      | "info-loss" -> Prob.Assign.Information_loss
      | "edit" -> Prob.Assign.Edit_distance
      | other ->
        Printf.eprintf "unknown distance %s (info-loss or edit)\n" other;
        exit 1
    in
    let probs = Prob.Assign.assign ~distance:dist ~attrs rel clustering in
    let schema' =
      Schema.append (Relation.schema rel) (Schema.make [ ("prob", Value.TFloat) ])
    in
    let counter = ref (-1) in
    let rel' =
      Relation.map_rows schema'
        (fun row ->
          incr counter;
          Array.append row [| Value.Float probs.(!counter) |])
        rel
    in
    (match output with
    | Some path -> Csv.write_file path rel'
    | None -> print_string (Relation.to_string ~max_rows:max_int rel'))
  in
  let input =
    Arg.(
      required & pos 0 (some file) None & info [] ~docv:"INPUT.csv"
        ~doc:"Clustered CSV input.")
  in
  let output =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"OUTPUT.csv" ~doc:"Output path (default: stdout).")
  in
  let id_attr =
    Arg.(
      value & opt string "id" & info [ "id-attr" ] ~docv:"ATTR"
        ~doc:"Cluster identifier attribute.")
  in
  let distance =
    Arg.(
      value & opt string "info-loss"
      & info [ "distance" ] ~docv:"D" ~doc:"'info-loss' (default) or 'edit'.")
  in
  Cmd.v
    (Cmd.info "assign"
       ~doc:"Compute tuple probabilities for a clustered CSV (Figure 5)")
    Term.(const run $ input $ output $ id_attr $ distance)

(* ---- generate ---- *)

let generate_cmd =
  let run outdir sf inconsistency seed assign =
    let config = { Tpch.Datagen.default with sf; inconsistency; seed } in
    let db = Tpch.Datagen.generate config in
    let db = if assign then Tpch.Datagen.assign_probabilities db else db in
    Dirty.Store.save outdir db;
    List.iter
      (fun (t : Dirty_db.table) ->
        Printf.printf "%s: %d rows\n"
          (Filename.concat outdir (t.name ^ ".csv"))
          (Relation.cardinality t.relation))
      (Dirty_db.tables db);
    Printf.printf "%s written; reload with --dir %s\n"
      (Filename.concat outdir "manifest.csv")
      outdir
  in
  let outdir =
    Arg.(
      required & pos 0 (some string) None & info [] ~docv:"DIR"
        ~doc:"Output directory.")
  in
  let sf =
    Arg.(
      value & opt float 0.1 & info [ "sf" ] ~doc:"Scaling factor (database size).")
  in
  let inconsistency =
    Arg.(
      value & opt int 3
      & info [ "if" ] ~doc:"Inconsistency factor (mean tuples per cluster).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let assign =
    Arg.(
      value & flag
      & info [ "assign" ]
          ~doc:"Recompute probabilities with the Section 4 procedure instead \
                of the uniform default.")
  in
  Cmd.v
    (Cmd.info "generate"
       ~doc:"Generate a dirty TPC-H-style database as CSV files")
    Term.(const run $ outdir $ sf $ inconsistency $ seed $ assign)

(* ---- recover ---- *)

let recover_cmd =
  let run dir check =
    handling_failures @@ fun () ->
    let actions = Dirty.Store.recover dir in
    if actions = [] then print_endline "nothing to recover: store is clean"
    else List.iter print_endline actions;
    if check then begin
      (* verify every retained generation's journal, not just the
         committed one: a corrupt fallback is worth knowing about
         before the day the fallback is needed *)
      List.iter
        (fun (c : Dirty.Store.check) ->
          Printf.printf "generation %d (%s%s): %s\n" c.check_generation
            (match c.check_kind with
            | `Snapshot -> "snapshot"
            | `Delta -> "delta")
            (if c.check_in_chain then ", committed chain" else "")
            (match c.check_result with
            | Ok () -> "OK"
            | Error detail -> "CORRUPT: " ^ detail))
        (Dirty.Store.check_generations dir);
      let db = load_store ~lenient:false dir in
      Printf.printf "store loads cleanly: %d table(s), generation %d\n"
        (List.length (Dirty.Dirty_db.tables db))
        (Dirty.Store.generation dir)
    end
  in
  let dir =
    Arg.(
      required & pos 0 (some Cmdliner.Arg.dir) None
      & info [] ~docv:"DIR" ~doc:"The database directory to sweep.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "After sweeping, verify the journalled checksums of every \
             retained generation (snapshots and delta records, committed \
             chain and fallbacks), report each as OK or CORRUPT, then load \
             the store.")
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Sweep the debris an interrupted save or delta commit can leave in \
          a database directory (orphaned temp files, never-committed or \
          superseded generations) and report each removal. The committed \
          chain is never touched. With --check, every retained generation's \
          journal is verified (per-generation OK/CORRUPT report) and the \
          store is loaded; the exit code is 4 only if no loadable snapshot \
          remains — a corrupt fallback alone does not fail the check.")
    Term.(const run $ dir $ check)

(* ---- update ---- *)

let update_cmd =
  let run dir ops file compact =
    handling_failures @@ fun () ->
    let text =
      match (ops, file) with
      | _ :: _, Some _ ->
        prerr_endline "give update ops either as arguments or with --file";
        exit 1
      | _ :: _, None -> String.concat "\n" ops
      | [], Some "-" | [], None -> In_channel.input_all stdin
      | [], Some f -> In_channel.with_open_text f In_channel.input_all
    in
    let batch =
      match Dirty.Delta.of_rows (Csv.parse_rows text) with
      | batch -> batch
      | exception Dirty.Delta.Invalid msg ->
        Printf.eprintf "invalid update: %s\n" msg;
        exit 2
    in
    if batch = [] then begin
      prerr_endline "no update ops given";
      exit 1
    end;
    let db = load_store ~lenient:false dir in
    let outcome =
      match Dirty.Delta.apply db batch with
      | outcome -> outcome
      | exception Dirty.Delta.Invalid msg ->
        Printf.eprintf "invalid update: %s\n" msg;
        exit 2
    in
    List.iter
      (fun a ->
        Printf.eprintf "renormalized: %s\n" (Dirty.Repair.action_to_string a))
      outcome.Dirty.Delta.actions;
    let generation =
      if compact then begin
        Dirty.Store.save dir outcome.Dirty.Delta.db;
        Dirty.Store.generation dir
      end
      else Dirty.Store.commit_delta dir batch
    in
    Printf.printf "committed generation %d: %d op(s), %d cluster(s) touched%s\n"
      generation (List.length batch)
      (List.length outcome.Dirty.Delta.touched)
      (if compact then ", compacted to a full snapshot" else "")
  in
  let dir =
    Arg.(
      required & opt (some Cmdliner.Arg.dir) None
      & info [ "d"; "dir" ] ~docv:"DIR"
          ~doc:"The database directory to update (Dirty.Store layout).")
  in
  let ops =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"OP"
          ~doc:
            "Update operations as CSV records, one per argument: \
             'insert,TABLE,V1,...'; 'delete,TABLE,CLUSTER,ORDINAL'; \
             'split,TABLE,CLUSTER,NEWID,I1,...'; 'merge,TABLE,FROM,INTO'; \
             'reassign,TABLE,CLUSTER,W1,...'. Omitted: records are read \
             from --file or stdin.")
  in
  let file =
    Arg.(
      value & opt (some string) None
      & info [ "f"; "file" ] ~docv:"FILE"
          ~doc:"Read update records from FILE ('-' for stdin).")
  in
  let compact =
    Arg.(
      value & flag
      & info [ "compact" ]
          ~doc:
            "Commit the updated database as a full snapshot generation \
             instead of appending a delta record, collapsing the chain.")
  in
  Cmd.v
    (Cmd.info "update"
       ~doc:
         "Apply an update batch (insert / delete / split / merge / reassign) \
          to a saved database and commit it crash-atomically as a new \
          generation — a checksummed delta record by default, a compacting \
          full snapshot with --compact. Touched clusters are renormalized; \
          the batch commits in full or not at all. Exit codes: 0 committed, \
          1 unreadable input (missing file, broken CSV quoting, empty \
          batch), 2 an invalid op (malformed record, unknown table or \
          cluster, bad weights), 4 the store cannot be loaded.")
    Term.(const run $ dir $ ops $ file $ compact)

(* ---- serve ---- *)

let serve_cmd =
  let run dir host port concurrency queue_capacity deadline_ms max_deadline_ms
      budget_rows jobs shards cache drain_ms trace_sample slow_query_ms
      query_log =
    handling_failures @@ fun () ->
    if shards < 1 then begin
      prerr_endline "conquer serve: --shards expects a positive integer";
      exit 1
    end;
    let config =
      {
        Server.Serve.default_config with
        host;
        port;
        concurrency;
        queue_capacity;
        default_deadline = float_of_int deadline_ms /. 1000.0;
        max_deadline = float_of_int max_deadline_ms /. 1000.0;
        default_budget_rows = budget_rows;
        jobs;
        shards;
        cache_capacity = cache;
        drain_deadline = float_of_int drain_ms /. 1000.0;
        trace_sample;
        slow_query_ms;
        querylog_path = query_log;
      }
    in
    let t = Server.Serve.create ~config ~dir () in
    List.iter
      (fun a -> Printf.eprintf "recovered: %s\n" a)
      (Server.Serve.recovery_log t);
    let stop _ = Server.Serve.request_shutdown t in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    Printf.printf "conquer serve: listening on %s:%d (store %s)\n%!" host
      (Server.Serve.port t) dir;
    let report = Server.Serve.run t in
    if report.Server.Serve.drained then print_endline "drained cleanly"
    else begin
      Printf.eprintf "drain deadline exceeded: %d in-flight quer(ies) cancelled\n"
        report.Server.Serve.cancelled_inflight;
      exit 3
    end
  in
  let dir =
    Arg.(
      required & opt (some Cmdliner.Arg.dir) None
      & info [ "d"; "dir" ] ~docv:"DIR"
          ~doc:"The database directory to serve (Dirty.Store layout).")
  in
  let host =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Bind address.")
  in
  let port =
    Arg.(
      value & opt int 8080
      & info [ "p"; "port" ] ~docv:"PORT"
          ~doc:"Listen port; 0 picks an ephemeral one (printed at startup).")
  in
  let concurrency =
    Arg.(
      value & opt int 4
      & info [ "concurrency" ] ~docv:"N"
          ~doc:"Worker domains executing queries.")
  in
  let queue_capacity =
    Arg.(
      value & opt int 64
      & info [ "queue" ] ~docv:"N"
          ~doc:"Admission queue bound; beyond it requests are shed with 503.")
  in
  let deadline_ms =
    Arg.(
      value & opt int 5000
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Default per-request deadline (clients override with the \
                deadline_ms query parameter).")
  in
  let max_deadline_ms =
    Arg.(
      value & opt int 60000
      & info [ "max-deadline-ms" ] ~docv:"MS"
          ~doc:"Ceiling clamped onto client-supplied deadlines.")
  in
  let budget_rows =
    Arg.(
      value & opt (some int) None
      & info [ "budget-rows" ] ~docv:"N"
          ~doc:"Default row budget per query (clients override with the \
                budget_rows query parameter).")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "query-jobs" ] ~docv:"N"
          ~doc:"Engine domains per query; 1 keeps each query serial and lets \
                --concurrency provide the parallelism.")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Cluster-hash shards the store is partitioned into at load: \
             shardable queries scatter across N in-process shard catalogs \
             and gather their partial results; the rest run unsharded. \
             Answers are bag-identical whatever the value; 1 disables \
             sharding.")
  in
  let cache =
    Arg.(
      value & opt int 256
      & info [ "cache" ] ~docv:"N"
          ~doc:"Result-cache capacity in entries; 0 disables caching.")
  in
  let drain_ms =
    Arg.(
      value & opt int 5000
      & info [ "drain-ms" ] ~docv:"MS"
          ~doc:"Grace period for in-flight work on shutdown; past it, \
                remaining queries are cancelled (exit code 3).")
  in
  let trace_sample =
    Arg.(
      value & opt float 0.0
      & info [ "trace-sample" ] ~docv:"RATE"
          ~doc:
            "Fraction of /query requests whose span tree is retained for \
             /debug/traces (decided deterministically from the trace id). 0 \
             disables request tracing; 1 traces everything.")
  in
  let slow_query_ms =
    Arg.(
      value & opt (some float) None
      & info [ "slow-query-ms" ] ~docv:"MS"
          ~doc:
            "Requests slower than this (total, queue wait included) are \
             counted, flagged in the query log, and promoted to a full span \
             dump even when not sampled.")
  in
  let query_log =
    Arg.(
      value & opt (some string) None
      & info [ "query-log" ] ~docv:"FILE"
          ~doc:
            "Append one JSON line per /query request (fingerprint, plan \
             hash, latency split, outcome flags) to FILE, in addition to \
             the in-memory ring behind /debug/querylog.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the query daemon: an HTTP/JSON endpoint over a database \
          directory with admission control, per-request deadlines (partial \
          answers instead of errors), client-disconnect cancellation, a \
          store circuit breaker, a generation-keyed result cache, \
          request-scoped tracing (--trace-sample, --slow-query-ms, \
          /debug/traces), a structured query log (--query-log, \
          /debug/querylog), and graceful SIGTERM drain. Routes: GET \
          /healthz, GET /readyz, GET /metrics (Prometheus), GET \
          /debug/requests|traces|querylog|gc|exemplars, POST /query (SQL \
          body; deadline_ms, budget_rows, mode parameters). Exit codes: 0 \
          after a clean drain, 3 when the drain deadline forced \
          cancellations, 4 when the store cannot be loaded.")
    Term.(
      const run $ dir $ host $ port $ concurrency $ queue_capacity
      $ deadline_ms $ max_deadline_ms $ budget_rows $ jobs $ shards $ cache
      $ drain_ms $ trace_sample $ slow_query_ms $ query_log)

(* ---- trace: inspect a running daemon's observability surface ---- *)

let trace_cmd =
  let run host port id log n follow json =
    handling_failures @@ fun () ->
    let get target =
      match Server.Http.request ~host ~port target with
      | resp -> resp
      | exception (Unix.Unix_error _ as e) ->
        Printf.eprintf "cannot reach %s:%d: %s\n" host port
          (Printexc.to_string e);
        exit 4
    in
    let fail_body (resp : Server.Http.response) =
      Printf.eprintf "daemon answered %d: %s\n" resp.status
        (String.trim resp.r_body);
      exit 1
    in
    let print_record (r : Server.Querylog.record) =
      if json then print_endline (Server.Querylog.to_json r)
      else begin
        let flags =
          List.filter_map
            (fun (set, tag) -> if set then Some tag else None)
            [
              (r.cached, "cached");
              (r.truncated, "truncated");
              (r.cancelled, "cancelled");
              (r.slow, "slow");
              (r.sampled, "traced");
            ]
        in
        Printf.printf
          "#%-5d %3d %-9s %6d rows  queue=%.1fms exec=%.1fms total=%.1fms  %s%s  %s\n"
          r.seq r.status r.mode r.rows r.queue_wait_ms r.exec_ms r.total_ms
          r.trace_id
          (if flags = [] then "" else "  [" ^ String.concat "," flags ^ "]")
          r.sql
      end
    in
    match (id, log) with
    | Some id, _ ->
      (* one retained trace, rendered server-side so the output here
         matches the daemon's own /debug view *)
      let target =
        if json then Printf.sprintf "/debug/traces/%s" id
        else Printf.sprintf "/debug/traces/%s?format=pretty" id
      in
      let resp = get target in
      if resp.status <> 200 then fail_body resp;
      print_string resp.r_body;
      if String.length resp.r_body > 0
         && resp.r_body.[String.length resp.r_body - 1] <> '\n'
      then print_newline ()
    | None, true ->
      (* tail the query log by sequence cursor *)
      let parse_lines body =
        String.split_on_char '\n' body
        |> List.filter_map (fun line ->
               if String.trim line = "" then None
               else
                 match Server.Querylog.of_json line with
                 | Ok r -> Some r
                 | Error e ->
                   Printf.eprintf "skipping malformed record: %s\n" e;
                   None)
      in
      let fetch ~after ~n =
        let resp =
          get (Printf.sprintf "/debug/querylog?n=%d&after=%d" n after)
        in
        if resp.status <> 200 then fail_body resp;
        parse_lines resp.r_body
      in
      let records = fetch ~after:0 ~n in
      List.iter print_record records;
      let cursor =
        ref
          (List.fold_left (fun acc (r : Server.Querylog.record) ->
               max acc r.seq)
             0 records)
      in
      if follow then
        while true do
          Unix.sleepf 0.5;
          let fresh = fetch ~after:!cursor ~n:1000 in
          List.iter print_record fresh;
          List.iter
            (fun (r : Server.Querylog.record) -> cursor := max !cursor r.seq)
            fresh
        done
    | None, false ->
      (* no id, no --log: list what the trace ring holds *)
      let resp = get "/debug/traces" in
      if resp.status <> 200 then fail_body resp;
      print_endline resp.r_body
  in
  let host =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Daemon address.")
  in
  let port =
    Arg.(
      value & opt int 8080
      & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Daemon port.")
  in
  let id =
    Arg.(
      value & pos 0 (some string) None
      & info [] ~docv:"TRACE_ID"
          ~doc:
            "Fetch one retained trace and pretty-print its span tree \
             (per-operator wall-clock, rows, allocation).")
  in
  let log =
    Arg.(
      value & flag
      & info [ "log" ]
          ~doc:"Print the daemon's structured query log instead of a trace.")
  in
  let n =
    Arg.(
      value & opt int 50
      & info [ "n" ] ~docv:"K" ~doc:"Query-log records to fetch (with --log).")
  in
  let follow =
    Arg.(
      value & flag
      & info [ "f"; "follow" ]
          ~doc:"With --log: keep polling for new records (like tail -f).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Raw JSON output (the trace object, or one JSON line per \
             query-log record).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Inspect a running 'conquer serve' daemon: fetch a retained \
          request trace by id (pretty span tree with queue wait, planner, \
          per-operator execution, serialization), tail the structured query \
          log with --log [--follow], or list retained traces when called \
          with no arguments. Pair with serve's --trace-sample / \
          --slow-query-ms to control what gets retained.")
    Term.(const run $ host $ port $ id $ log $ n $ follow $ json)

(* ---- fuzz ---- *)

let fuzz_cmd =
  let run seed cases max_candidates out replay =
    handling_failures @@ fun () ->
    let failures = ref 0 in
    let rejected = ref 0 in
    let agreed = ref 0 in
    let skipped = ref 0 in
    let jobs = Fuzz.Differential.default_jobs in
    let record name case =
      match Fuzz.Differential.run ~jobs ~max_candidates case with
      | Fuzz.Differential.Rejected _ -> incr rejected
      | Fuzz.Differential.Agree _ -> incr agreed
      | Fuzz.Differential.Oracle_too_large _ -> incr skipped
      | outcome ->
        incr failures;
        let failing c =
          Fuzz.Differential.failing
            (Fuzz.Differential.run ~jobs ~max_candidates c)
        in
        let small = Fuzz.Differential.minimize failing case in
        Printf.printf "FAILURE %s (minimized):\n%s%s\n" name
          (Fuzz.Case.print small)
          (Fuzz.Differential.to_string
             (Fuzz.Differential.run ~jobs ~max_candidates small));
        Option.iter
          (fun dir ->
            Fuzz.Corpus.save ~dir ~name small;
            Printf.printf "counterexample saved to %s/%s.*\n" dir name)
          out;
        ignore outcome
    in
    (match replay with
    | Some dir ->
      let names = Fuzz.Corpus.names dir in
      if names = [] then begin
        Printf.eprintf "no corpus cases found in %s\n" dir;
        exit 1
      end;
      List.iter
        (fun name -> record name (Fuzz.Corpus.load ~dir ~name))
        names;
      Printf.printf
        "replayed %d corpus case(s): %d agree, %d rejected, %d skipped, %d \
         failure(s)\n"
        (List.length names) !agreed !rejected !skipped !failures
    | None ->
      Printf.printf "fuzzing %d case(s) with seed %d (jobs %s; shards %s)\n%!"
        cases seed
        (String.concat "," (List.map string_of_int jobs))
        (String.concat ","
           (List.map string_of_int Fuzz.Differential.default_shards));
      for i = 0 to cases - 1 do
        let rand = Random.State.make [| seed; i |] in
        let case = QCheck.Gen.generate1 ~rand (Fuzz.Case.gen ()) in
        record (Printf.sprintf "seed%d-case%d" seed i) case
      done;
      Printf.printf
        "%d case(s): %d agree with the oracle, %d rejected by the \
         rewritability check, %d over oracle budget, %d failure(s)\n"
        cases !agreed !rejected !skipped !failures);
    if !failures > 0 then exit 1
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"N"
          ~doc:"Generator seed; case $(i,i) derives its stream from (seed, i), \
                so any failing case replays from the seed alone.")
  in
  let cases =
    Arg.(
      value & opt int 500
      & info [ "cases" ] ~docv:"N" ~doc:"Number of (database, query) cases.")
  in
  let max_candidates =
    Arg.(
      value & opt int 200_000
      & info [ "max-candidates" ] ~docv:"N"
          ~doc:"Skip databases with more candidate databases than this \
                (the oracle enumerates them all).")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Write minimized counterexamples to this directory as \
                corpus-format CSV + SQL.")
  in
  let replay =
    Arg.(
      value & opt (some Cmdliner.Arg.dir) None
      & info [ "replay" ] ~docv:"DIR"
          ~doc:"Instead of generating cases, replay every corpus case in DIR \
                (see test/corpus for the format).")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: random dirty databases and SPJ queries, \
          RewriteClean on the engine versus the candidate-enumeration \
          oracle, at every parallelism degree. Prints minimized \
          counterexamples; exit code 1 if any case disagrees.")
    Term.(const run $ seed $ cases $ max_candidates $ out $ replay)

(* ---- demo ---- *)

let demo_cmd =
  let run () =
    let v_s s = Value.String s
    and v_i i = Value.Int i
    and v_f f = Value.Float f in
    let orders =
      Relation.create
        (Schema.make
           [
             ("id", Value.TString); ("orderid", Value.TInt);
             ("custfk", Value.TString); ("cidfk", Value.TString);
             ("quantity", Value.TInt); ("prob", Value.TFloat);
           ])
        [
          [| v_s "o1"; v_i 11; v_s "m1"; v_s "c1"; v_i 3; v_f 1.0 |];
          [| v_s "o2"; v_i 12; v_s "m2"; v_s "c1"; v_i 2; v_f 0.5 |];
          [| v_s "o2"; v_i 13; v_s "m3"; v_s "c2"; v_i 5; v_f 0.5 |];
        ]
    in
    let customer =
      Relation.create
        (Schema.make
           [
             ("id", Value.TString); ("custid", Value.TString);
             ("name", Value.TString); ("balance", Value.TInt);
             ("prob", Value.TFloat);
           ])
        [
          [| v_s "c1"; v_s "m1"; v_s "John"; v_i 20_000; v_f 0.7 |];
          [| v_s "c1"; v_s "m2"; v_s "John"; v_i 30_000; v_f 0.3 |];
          [| v_s "c2"; v_s "m3"; v_s "Mary"; v_i 27_000; v_f 0.2 |];
          [| v_s "c2"; v_s "m4"; v_s "Marion"; v_i 5_000; v_f 0.8 |];
        ]
    in
    let db =
      Dirty_db.add_table
        (Dirty_db.add_table Dirty_db.empty
           (Dirty_db.make_table ~name:"orders" ~id_attr:"id" ~prob_attr:"prob"
              orders))
        (Dirty_db.make_table ~name:"customer" ~id_attr:"id" ~prob_attr:"prob"
           customer)
    in
    let s = Conquer.Clean.create db in
    print_endline "The dirty database of Figure 2:";
    List.iter
      (fun (t : Dirty_db.table) ->
        Printf.printf "%s:\n%s" t.name (Relation.to_string t.relation))
      (Dirty_db.tables db);
    let sql =
      "select o.id, c.id from orders o, customer c \
       where o.cidfk = c.id and c.balance > 10000"
    in
    Printf.printf "\nQuery: %s\n" sql;
    (match Conquer.Clean.rewrite s sql with
    | Ok text -> Printf.printf "\nRewriteClean output:\n%s\n" text
    | Error _ -> ());
    Printf.printf "\nClean answers:\n%s" (Relation.to_string (Conquer.Clean.answers s sql))
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Walk through the paper's running example")
    Term.(const run $ const ())

(* Pull the first occurrence of [--name VALUE] or [--name=VALUE] out of
   an argument list; returns the value (if any) and the remaining
   arguments.  Used for the global telemetry flags, which — like
   --verbose — apply to every subcommand. *)
let extract_value name args =
  let prefix = name ^ "=" in
  let plen = String.length prefix in
  let rec go acc = function
    | [] -> (None, List.rev acc)
    | a :: value :: rest when a = name -> (Some value, List.rev_append acc rest)
    | [ a ] when a = name -> (None, List.rev acc)
    | a :: rest
      when String.length a > plen && String.sub a 0 plen = prefix ->
      (Some (String.sub a plen (String.length a - plen)), List.rev_append acc rest)
    | a :: rest -> go (a :: acc) rest
  in
  go [] args

let () =
  (* --verbose anywhere on the command line turns on debug logging
     (planner plans, rewritten queries) *)
  if Array.exists (fun a -> a = "--verbose") Sys.argv then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Debug)
  end;
  let args = List.filter (fun a -> a <> "--verbose") (Array.to_list Sys.argv) in
  (* --trace FILE / --metrics FILE anywhere enable telemetry globally *)
  let trace_file, args = extract_value "--trace" args in
  let metrics_file, args = extract_value "--metrics" args in
  (* --jobs N anywhere sets the process-wide parallelism default
     (overrides CONQUER_JOBS); results are identical for any N *)
  let jobs_arg, args = extract_value "--jobs" args in
  (match jobs_arg with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Engine.Parallel.set_default_jobs n
    | _ ->
      prerr_endline ("conquer: --jobs expects a positive integer, got " ^ s);
      exit 1)
  | None -> ());
  (* --retries N / --io-backoff-ms N anywhere tune the process-wide
     retry policy for transient store I/O failures *)
  let retries_arg, args = extract_value "--retries" args in
  (match retries_arg with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 ->
      Fault.Retry.set_policy { (Fault.Retry.policy ()) with attempts = n }
    | _ ->
      prerr_endline ("conquer: --retries expects a positive integer, got " ^ s);
      exit 1)
  | None -> ());
  let backoff_arg, args = extract_value "--io-backoff-ms" args in
  (match backoff_arg with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some ms when ms >= 0 ->
      Fault.Retry.set_policy
        { (Fault.Retry.policy ()) with base_backoff = float_of_int ms /. 1000.0 }
    | _ ->
      prerr_endline
        ("conquer: --io-backoff-ms expects a non-negative integer, got " ^ s);
      exit 1)
  | None -> ());
  (match trace_file with
  | Some path ->
    Telemetry.Control.enable ();
    Telemetry.Span.subscribe (Telemetry.Export.trace_writer path)
  | None -> ());
  (match metrics_file with
  | Some path ->
    Telemetry.Control.enable ();
    at_exit (fun () -> Telemetry.Export.write_metrics path)
  | None -> ());
  let info =
    Cmd.info "conquer" ~version:"1.0.0"
      ~doc:"Clean answers over dirty databases (ConQuer, ICDE 2006)"
  in
  let argv = Array.of_list args in
  exit
    (Cmd.eval ~argv
       (Cmd.group info
          [
            query_cmd; profile_cmd; validate_cmd; rewrite_cmd; why_cmd;
            expected_cmd; dist_cmd; sample_cmd; match_cmd; assign_cmd;
            generate_cmd; update_cmd; recover_cmd; serve_cmd; trace_cmd;
            fuzz_cmd;
            demo_cmd;
          ]))
