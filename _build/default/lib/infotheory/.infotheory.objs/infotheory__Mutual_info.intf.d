lib/infotheory/mutual_info.mli: Dcf Dist
