lib/dirty/schema.mli: Format Value
