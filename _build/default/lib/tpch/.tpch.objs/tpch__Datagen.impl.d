lib/tpch/datagen.ml: Array Bytes Char Dirty Float List Option Printf Prob Random Schema String
