test/test_infotheory.ml: Alcotest Dcf Dist Fixtures Infotheory List Mutual_info
