lib/conquer/dirty_schema.ml: Dirty Option
