(** RewriteClean (Figure 4).

    Given an SPJ query

    {v select A1, ..., An from R1, ..., Rm where W v}

    the rewriting is

    {v
    select A1, ..., An, sum(R1.prob * ... * Rm.prob) as clean_prob
    from R1, ..., Rm where W
    group by A1, ..., An
    v}

    The rewritten query computes the clean answers (Dfn 5) for every
    rewritable query (Theorem 1).  The ORDER BY clause of the input,
    if any, is preserved on top, as in the paper's experiments. *)

val prob_column : string
(** Name of the appended probability column, ["clean_prob"]. *)

val prob_product : Dirty_schema.env -> Sql.Ast.table_ref list -> Sql.Ast.expr
(** [R1.prob * ... * Rm.prob] over the FROM relations; the probability
    of a join tuple surviving into a candidate database.
    @raise Invalid_argument on an empty FROM or a relation with no
    dirty metadata. *)

exception Not_rewritable of Rewritable.violation list

val rewrite_clean : Dirty_schema.env -> Sql.Ast.query -> Sql.Ast.query
(** Apply Figure 4 without checking membership in the rewritable
    class (the rewriting is syntactically defined for any SPJ query;
    it is only guaranteed correct for rewritable ones).
    @raise Rewritable.Unresolved-like errors via [Invalid_argument]
    when a FROM relation has no dirty metadata. *)

val rewrite_checked :
  Dirty_schema.env -> Sql.Ast.query -> (Sql.Ast.query, Rewritable.violation list) result
(** Check Dfn 7 first; [Error] lists the violations. *)

val rewrite_exn : Dirty_schema.env -> Sql.Ast.query -> Sql.Ast.query
(** @raise Not_rewritable *)
