(* Tests for the clean-answers semantics, the rewriting, and the
   possible-worlds oracle — including every number the paper's
   running examples publish. *)

open Dirty

let v_s s = Value.String s
let v_i i = Value.Int i
let v_f f = Value.Float f

let session () = Conquer.Clean.create (Fixtures.figure2_db ())
let loyalty_session () = Conquer.Clean.create (Fixtures.loyalty_db ())

(* ---- candidate databases (Examples 2 and 3) ---- *)

let test_candidate_count () =
  let db = Fixtures.figure2_db () in
  Alcotest.(check (float 1e-9)) "8 candidates" 8.0 (Conquer.Candidates.count db)

let test_candidate_probabilities () =
  let db = Fixtures.figure2_db () in
  let probs =
    Conquer.Candidates.fold db (fun acc _sel p -> p :: acc) []
    |> List.sort Float.compare
  in
  (* Example 3: 0.07, 0.28, 0.03, 0.12, 0.07, 0.28, 0.03, 0.12 *)
  let expected = List.sort Float.compare [ 0.07; 0.28; 0.03; 0.12; 0.07; 0.28; 0.03; 0.12 ] in
  List.iter2 (Fixtures.check_float "candidate probability") expected probs

let test_candidate_mass () =
  let db = Fixtures.figure2_db () in
  let total = Conquer.Candidates.fold db (fun acc _ p -> acc +. p) 0.0 in
  Fixtures.check_float "candidate probabilities sum to 1" 1.0 total

let test_candidate_selection_shape () =
  let db = Fixtures.figure2_db () in
  Conquer.Candidates.fold db
    (fun () sel _p ->
      Alcotest.(check int)
        "orders candidate has 2 rows" 2
        (List.length (Conquer.Candidates.chosen_rows sel "orders"));
      Alcotest.(check int)
        "customer candidate has 2 rows" 2
        (List.length (Conquer.Candidates.chosen_rows sel "customer")))
    ()

(* ---- Example 4 / Example 5: query q1 ---- *)

let test_q1_oracle () =
  let db = Fixtures.figure2_db () in
  let result =
    Conquer.Candidates.clean_answers db (Sql.Parser.parse_query Fixtures.q1)
  in
  Fixtures.expect_answer result [ v_s "c1" ] 1.0;
  Fixtures.expect_answer result [ v_s "c2" ] 0.2

let test_q1_rewritten () =
  let s = session () in
  let result = Conquer.Clean.answers s Fixtures.q1 in
  Fixtures.expect_answer result [ v_s "c1" ] 1.0;
  Fixtures.expect_answer result [ v_s "c2" ] 0.2

(* ---- Example 6: query q2 ---- *)

let test_q2_rewritten () =
  let s = session () in
  let result = Conquer.Clean.answers s Fixtures.q2 in
  Alcotest.(check int) "three answers" 3 (Relation.cardinality result);
  Fixtures.expect_answer result [ v_s "o1"; v_s "c1" ] 1.0;
  Fixtures.expect_answer result [ v_s "o2"; v_s "c1" ] 0.5;
  Fixtures.expect_answer result [ v_s "o2"; v_s "c2" ] 0.1

let test_q2_oracle_agrees () =
  let s = session () in
  let db = Fixtures.figure2_db () in
  let oracle =
    Conquer.Candidates.clean_answers db (Sql.Parser.parse_query Fixtures.q2)
  in
  let rewritten = Conquer.Clean.answers s Fixtures.q2 in
  Alcotest.(check int)
    "same cardinality"
    (Relation.cardinality oracle)
    (Relation.cardinality rewritten);
  Relation.iter
    (fun row ->
      let key = [ row.(0); row.(1) ] in
      let expected = Option.get (Fixtures.answer_prob oracle key) in
      Fixtures.expect_answer rewritten key expected)
    oracle

(* ---- Example 7: query q3 — where naive rewriting over-counts ---- *)

let test_q3_not_rewritable () =
  let s = session () in
  match Conquer.Clean.check s Fixtures.q3 with
  | Ok _ -> Alcotest.fail "q3 should not be rewritable"
  | Error violations ->
    let is_root_violation = function
      | Conquer.Rewritable.Root_identifier_not_selected { root; id_attr } ->
        root = "o" && id_attr = "id"
      | _ -> false
    in
    Alcotest.(check bool)
      "violation is the missing root identifier" true
      (List.exists is_root_violation violations)

let test_q3_oracle_truth () =
  let db = Fixtures.figure2_db () in
  let result =
    Conquer.Candidates.clean_answers db (Sql.Parser.parse_query Fixtures.q3)
  in
  (* customer c1 has probability 0.3; c2 is not a clean answer at all *)
  Fixtures.expect_answer result [ v_s "c1" ] 0.3;
  Fixtures.expect_no_answer result [ v_s "c2" ]

let test_q3_unchecked_overcounts () =
  let s = session () in
  let result = Conquer.Clean.answers_unchecked s Fixtures.q3 in
  (* the paper: grouping-and-summing incorrectly returns (c1, 0.45) *)
  Fixtures.expect_answer result [ v_s "c1" ] 0.45

let test_q3_answers_raises () =
  let s = session () in
  match Conquer.Clean.answers s Fixtures.q3 with
  | exception Conquer.Rewrite.Not_rewritable _ -> ()
  | _ -> Alcotest.fail "expected Not_rewritable"

(* ---- the introduction's loyalty-card example ---- *)

let test_loyalty_example () =
  let s = loyalty_session () in
  let sql =
    "select l.cardid from loyaltycard l, customer c \
     where l.custfk = c.custid and c.income > 100000"
  in
  let result = Conquer.Clean.answers s sql in
  (* card 111 has 60% probability of belonging to a customer earning
     over $100K *)
  Fixtures.expect_answer result [ v_i 111 ] 0.6;
  let oracle =
    Conquer.Candidates.clean_answers (Fixtures.loyalty_db ())
      (Sql.Parser.parse_query sql)
  in
  Fixtures.expect_answer oracle [ v_i 111 ] 0.6

let test_loyalty_offline_cleaning_fails () =
  (* The introduction's motivation: keeping only the most probable
     tuple per cluster and querying the result misses card 111. *)
  let db = Fixtures.loyalty_db () in
  let keep_best (t : Dirty_db.table) =
    let best =
      Cluster.fold
        (fun _id members acc ->
          let best =
            List.fold_left
              (fun best i ->
                match best with
                | None -> Some i
                | Some j ->
                  if Dirty_db.row_probability t i > Dirty_db.row_probability t j
                  then Some i
                  else best)
              None members
          in
          Option.get best :: acc)
        t.clustering []
    in
    Relation.create
      (Relation.schema t.relation)
      (List.rev_map (Relation.get t.relation) best)
  in
  let engine = Engine.Database.create () in
  List.iter
    (fun (t : Dirty_db.table) ->
      Engine.Database.add_relation engine ~name:t.name (keep_best t))
    (Dirty_db.tables db);
  let result =
    Engine.Database.query engine
      "select l.cardid from loyaltycard l, customer c \
       where l.custfk = c.custid and c.income > 100000"
  in
  Alcotest.(check int) "offline cleaning loses card 111" 0
    (Relation.cardinality result)

(* ---- join graph and the rewritable class ---- *)

let env () = Conquer.Clean.env (session ())

let test_join_graph_q2 () =
  let graph =
    Conquer.Join_graph.build (env ()) (Sql.Parser.parse_query Fixtures.q2)
  in
  Alcotest.(check (list string)) "vertices" [ "o"; "c" ] graph.vertices;
  (match graph.arcs with
  | [ arc ] ->
    Alcotest.(check string) "arc source" "o" arc.from_alias;
    Alcotest.(check string) "arc source attr" "cidfk" arc.from_attr;
    Alcotest.(check string) "arc target" "c" arc.to_alias;
    Alcotest.(check string) "arc target attr" "id" arc.to_attr
  | arcs -> Alcotest.failf "expected one arc, got %d" (List.length arcs));
  Alcotest.(check bool) "is a tree" true (Conquer.Join_graph.is_tree graph);
  Alcotest.(check (list string)) "root" [ "o" ] (Conquer.Join_graph.roots graph)

let test_single_relation_is_tree () =
  let graph =
    Conquer.Join_graph.build (env ()) (Sql.Parser.parse_query Fixtures.q1)
  in
  Alcotest.(check bool) "single vertex is a tree" true
    (Conquer.Join_graph.is_tree graph)

let test_self_join_rejected () =
  let sql = "select a.id from customer a, customer b where a.id = b.id" in
  match Conquer.Clean.check (session ()) sql with
  | Ok _ -> Alcotest.fail "self-join should be rejected"
  | Error vs ->
    Alcotest.(check bool) "repeated relation reported" true
      (List.exists
         (function Conquer.Rewritable.Repeated_relation "customer" -> true | _ -> false)
         vs)

let test_non_identifier_join_rejected () =
  let sql =
    "select o.id, c.id from orders o, customer c where o.custfk = c.custid"
  in
  (* customer.custid IS the identifier of customer in Figure 1, but in
     the Figure 2 database the identifier is [id], so custfk = custid
     joins two non-identifiers *)
  match Conquer.Clean.check (session ()) sql with
  | Ok _ -> Alcotest.fail "non-identifier join should be rejected"
  | Error vs ->
    Alcotest.(check bool) "join-without-identifier reported" true
      (List.exists
         (function
           | Conquer.Rewritable.Join_without_identifier _ -> true
           | Conquer.Rewritable.Graph_not_tree _ -> false
           | _ -> false)
         vs)

let test_aggregate_query_rejected () =
  let sql = "select id, count(*) from customer group by id" in
  match Conquer.Clean.check (session ()) sql with
  | Ok _ -> Alcotest.fail "aggregate query should be rejected"
  | Error vs ->
    Alcotest.(check bool) "not-SPJ reported" true
      (List.exists
         (function Conquer.Rewritable.Not_spj _ -> true | _ -> false)
         vs)

let test_cross_product_not_tree () =
  let sql = "select o.id, c.id from orders o, customer c" in
  match Conquer.Clean.check (session ()) sql with
  | Ok _ -> Alcotest.fail "cross product should be rejected"
  | Error vs ->
    Alcotest.(check bool) "graph-not-tree reported" true
      (List.exists
         (function Conquer.Rewritable.Graph_not_tree _ -> true | _ -> false)
         vs)

(* a three-relation database whose foreign keys can close a cycle:
   t1 references t0, and t2 references both *)
let triangle_db () =
  let table name columns row =
    Dirty_db.make_table ~name ~id_attr:"id" ~prob_attr:"prob"
      (Relation.create (Schema.make columns) [ row ])
  in
  List.fold_left Dirty_db.add_table Dirty_db.empty
    [
      table "t0"
        [ ("id", Value.TInt); ("prob", Value.TFloat) ]
        [| v_i 0; v_f 1.0 |];
      table "t1"
        [ ("id", Value.TInt); ("fkt0", Value.TInt); ("prob", Value.TFloat) ]
        [| v_i 0; v_i 0; v_f 1.0 |];
      table "t2"
        [
          ("id", Value.TInt); ("fkt0", Value.TInt); ("fkt1", Value.TInt);
          ("prob", Value.TFloat);
        ]
        [| v_i 0; v_i 0; v_i 0; v_f 1.0 |];
    ]

let test_cyclic_join_graph_rejected () =
  let s = Conquer.Clean.create (triangle_db ()) in
  let sql =
    "select r0.id, r1.id, r2.id from t0 r0, t1 r1, t2 r2 \
     where r1.fkt0 = r0.id and r2.fkt1 = r1.id and r2.fkt0 = r0.id"
  in
  match Conquer.Clean.check s sql with
  | Ok _ -> Alcotest.fail "cyclic join graph should be rejected"
  | Error vs ->
    Alcotest.(check bool) "graph-not-tree reported" true
      (List.exists
         (function Conquer.Rewritable.Graph_not_tree _ -> true | _ -> false)
         vs)

let test_root_identifier_not_projected () =
  (* the join-graph root is orders; selecting only the customer side's
     identifier must name the precise missing column *)
  let sql = "select c.id from orders o, customer c where o.cidfk = c.id" in
  match Conquer.Clean.check (session ()) sql with
  | Ok _ -> Alcotest.fail "dropped root identifier should be rejected"
  | Error vs ->
    Alcotest.(check bool) "missing o.id reported" true
      (List.exists
         (function
           | Conquer.Rewritable.Root_identifier_not_selected
               { root = "o"; id_attr = "id" } ->
             true
           | _ -> false)
         vs)

(* the SPJ frontier shapes the rewriting cannot honour: each must be
   rejected with a Not_spj naming the offending clause, because the
   grouped rewriting would silently change their semantics (LIMIT and
   ORDER BY act per candidate database, not on the clean answers) *)
let expect_not_spj name sql fragment =
  match Conquer.Clean.check (session ()) sql with
  | Ok _ -> Alcotest.failf "%s should be rejected" name
  | Error vs ->
    Alcotest.(check bool) name true
      (List.exists
         (function
           | Conquer.Rewritable.Not_spj why ->
             (* the diagnostic names the clause *)
             let contains s sub =
               let n = String.length sub in
               let rec go i =
                 i + n <= String.length s
                 && (String.sub s i n = sub || go (i + 1))
               in
               go 0
             in
             contains why fragment
           | _ -> false)
         vs)

let test_select_star_rejected () =
  expect_not_spj "SELECT * rejected" "select * from customer" "SELECT *"

let test_order_by_rejected () =
  (* ordering by a selected column is fine (it survives the GROUP BY
     the rewriting adds); ordering by a dropped one is not *)
  (match Conquer.Clean.check (session ()) "select id from customer order by id"
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "ORDER BY on a selected column is rewritable");
  expect_not_spj "ORDER BY on dropped column rejected"
    "select id from customer order by balance" "ORDER BY"

let test_limit_rejected () =
  expect_not_spj "LIMIT rejected" "select id from customer limit 1" "LIMIT"

(* ---- the rewriting's SQL output ---- *)

let test_rewrite_text_q1 () =
  match Conquer.Clean.rewrite (session ()) Fixtures.q1 with
  | Error _ -> Alcotest.fail "q1 is rewritable"
  | Ok text ->
    let q = Sql.Parser.parse_query text in
    Alcotest.(check int) "one group-by column" 1 (List.length q.group_by);
    (match q.select with
    | Items [ _; { expr = Agg (Sum, Some _); alias = Some a } ] ->
      Alcotest.(check string) "probability alias" Conquer.Rewrite.prob_column a
    | _ -> Alcotest.fail "unexpected rewritten select list")

let test_rewrite_text_q2_roundtrip () =
  match Conquer.Clean.rewrite (session ()) Fixtures.q2 with
  | Error _ -> Alcotest.fail "q2 is rewritable"
  | Ok text ->
    (* the rewritten SQL re-parses and evaluates to the clean answers *)
    let result = Engine.Database.query (Conquer.Clean.engine (session ())) text in
    Fixtures.expect_answer result [ v_s "o2"; v_s "c1" ] 0.5

let test_rewrite_preserves_order_by () =
  let sql = Fixtures.q2 ^ " order by o.id desc" in
  match Conquer.Clean.rewrite (session ()) sql with
  | Error _ -> Alcotest.fail "rewritable"
  | Ok text ->
    let q = Sql.Parser.parse_query text in
    Alcotest.(check int) "order by preserved" 1 (List.length q.order_by)

(* ---- subqueries under clean semantics ---- *)

let subquery_sql =
  "select id from customer where balance > (select min(balance) from customer)"

let test_subquery_not_rewritable () =
  let s = session () in
  match Conquer.Clean.check s subquery_sql with
  | Ok _ -> Alcotest.fail "subquery should not be rewritable"
  | Error vs ->
    Alcotest.(check bool) "not-SPJ violation" true
      (List.exists
         (function Conquer.Rewritable.Not_spj _ -> true | _ -> false)
         vs)

let test_subquery_oracle () =
  (* the oracle evaluates the subquery against each candidate, so the
     nested MIN varies with the world: P(c1) = 0.86, P(c2) = 0.14 *)
  let db = Fixtures.figure2_db () in
  let result =
    Conquer.Candidates.clean_answers db (Sql.Parser.parse_query subquery_sql)
  in
  Fixtures.expect_answer result [ v_s "c1" ] 0.86;
  Fixtures.expect_answer result [ v_s "c2" ] 0.14

let test_subquery_sampler_converges () =
  let s = session () in
  let result = Conquer.Sampler.answers ~seed:5 ~samples:4000 s subquery_sql in
  let prob key =
    let row =
      List.find
        (fun r -> Value.equal r.(0) (v_s key))
        (Relation.row_list result)
    in
    Option.get (Value.to_float row.(1))
  in
  Alcotest.(check bool)
    (Printf.sprintf "c1 estimate %.3f near 0.86" (prob "c1"))
    true
    (Float.abs (prob "c1" -. 0.86) < 0.03);
  Alcotest.(check bool)
    (Printf.sprintf "c2 estimate %.3f near 0.14" (prob "c2"))
    true
    (Float.abs (prob "c2" -. 0.14) < 0.03)

(* ---- provenance explanations ---- *)

let test_provenance_q2 () =
  let s = session () in
  let explanations = Conquer.Provenance.explain s Fixtures.q2 in
  Alcotest.(check int) "three answers explained" 3 (List.length explanations);
  (* the (o2, c1) answer decomposes as 0.35 + 0.15 *)
  let o2c1 =
    List.find
      (fun (e : Conquer.Provenance.explanation) ->
        Value.equal e.answer.(0) (v_s "o2") && Value.equal e.answer.(1) (v_s "c1"))
      explanations
  in
  Fixtures.check_float "total is the clean probability" 0.5 o2c1.total;
  (match o2c1.contributions with
  | [ a; b ] ->
    Fixtures.check_float "largest contribution" 0.35 a.mass;
    Fixtures.check_float "second contribution" 0.15 b.mass;
    (match a.witnesses with
    | [ o; c ] ->
      Alcotest.(check string) "orders witness" "orders" o.w_table;
      Fixtures.check_float "orders duplicate prob" 0.5 o.w_probability;
      Alcotest.(check string) "customer witness" "customer" c.w_table;
      Fixtures.check_float "customer duplicate prob" 0.7 c.w_probability
    | _ -> Alcotest.fail "expected two witnesses")
  | _ -> Alcotest.fail "expected two contributions");
  (* every explanation's total matches the rewriting's answer *)
  let answers = Conquer.Clean.answers s Fixtures.q2 in
  List.iter
    (fun (e : Conquer.Provenance.explanation) ->
      let expected =
        Option.get (Fixtures.answer_prob answers (Array.to_list e.answer))
      in
      Fixtures.check_float "total = clean_prob" expected e.total)
    explanations

let test_provenance_sorted () =
  let s = session () in
  let explanations = Conquer.Provenance.explain s Fixtures.q2 in
  let totals = List.map (fun (e : Conquer.Provenance.explanation) -> e.total) explanations in
  Alcotest.(check (list (float 1e-9)))
    "descending totals" (List.sort (fun a b -> Float.compare b a) totals) totals

let test_provenance_rejects_unrewritable () =
  let s = session () in
  match Conquer.Provenance.explain s Fixtures.q3 with
  | exception Conquer.Rewrite.Not_rewritable _ -> ()
  | _ -> Alcotest.fail "q3 should be rejected"

let test_provenance_pp () =
  let s = session () in
  let explanations = Conquer.Provenance.explain s Fixtures.q1 in
  let text =
    String.concat ""
      (List.map (Format.asprintf "%a" Conquer.Provenance.pp_explanation) explanations)
  in
  Alcotest.(check bool) "mentions customer" true
    (String.length text > 0
    &&
    let rec contains i =
      i + 8 <= String.length text
      && (String.sub text i 8 = "customer" || contains (i + 1))
    in
    contains 0)

(* ---- ranking helpers ---- *)

let test_top_answers () =
  let s = session () in
  let top = Conquer.Clean.top_answers ~k:2 s Fixtures.q2 in
  Alcotest.(check int) "two rows" 2 (Relation.cardinality top);
  (* ranked by probability: (o1,c1,1.0) then (o2,c1,0.5) *)
  let first = Relation.get top 0 and second = Relation.get top 1 in
  Alcotest.(check bool) "best first" true
    (Value.equal first.(0) (v_s "o1") && Value.equal first.(2) (Value.Float 1.0));
  Alcotest.(check bool) "second best" true
    (Value.equal second.(1) (v_s "c1") && Value.equal second.(2) (Value.Float 0.5))

let test_answers_above () =
  let s = session () in
  let strong = Conquer.Clean.answers_above ~threshold:0.4 s Fixtures.q2 in
  Alcotest.(check int) "two answers above 0.4" 2 (Relation.cardinality strong);
  Fixtures.expect_no_answer strong [ v_s "o2"; v_s "c2" ];
  let all = Conquer.Clean.answers_above ~threshold:0.0 s Fixtures.q2 in
  Alcotest.(check int) "zero threshold keeps all" 3 (Relation.cardinality all)

let test_join_on_syntax_rewritable () =
  (* the q2 join written with JOIN ... ON is still in the class *)
  let s = session () in
  let sql =
    "select o.id, c.id from orders o join customer c on o.cidfk = c.id \
     where c.balance > 10000"
  in
  let result = Conquer.Clean.answers s sql in
  Fixtures.expect_answer result [ v_s "o2"; v_s "c1" ] 0.5

(* ---- consistent answers ---- *)

let test_consistent_answers () =
  let s = session () in
  let result = Conquer.Clean.consistent_answers s Fixtures.q1 in
  (* only c1 is certain *)
  Alcotest.(check int) "one consistent answer" 1 (Relation.cardinality result);
  Alcotest.(check bool) "c1 is the consistent answer" true
    (Value.equal (Relation.get result 0).(0) (v_s "c1"))

let test_consistent_answers_q2 () =
  let s = session () in
  let result = Conquer.Clean.consistent_answers s Fixtures.q2 in
  Alcotest.(check int) "one consistent answer" 1 (Relation.cardinality result);
  let row = Relation.get result 0 in
  Alcotest.(check bool) "(o1,c1) is consistent" true
    (Value.equal row.(0) (v_s "o1") && Value.equal row.(1) (v_s "c1"))

(* ---- independent-tuple semantics ablation ---- *)

let test_independent_differs () =
  (* Under exclusive-duplicate semantics q1 gives c2 probability 0.2;
     under independent tuples both Mary (0.2) and the absence of any
     qualifying tuple coexist differently: P(c2 answer) = P(Mary
     present) = 0.2 as well, but c1's probability differs: exclusive
     gives 1.0, independent gives 1 - (1-0.7)(1-0.3) = 0.79. *)
  let db = Fixtures.figure2_db () in
  let q = Sql.Parser.parse_query Fixtures.q1 in
  let independent = Conquer.Independent.answers db q in
  Fixtures.expect_answer independent [ v_s "c1" ] 0.79;
  let exclusive = Conquer.Candidates.clean_answers db q in
  Fixtures.expect_answer exclusive [ v_s "c1" ] 1.0

let test_independent_world_count () =
  let db = Fixtures.figure2_db () in
  Alcotest.(check (float 1e-9)) "2^7 worlds" 128.0
    (Conquer.Independent.world_count db)

(* ---- boolean-query probability ---- *)

let test_probability_nonempty () =
  let db = Fixtures.figure2_db () in
  let q =
    Sql.Parser.parse_query
      "select id from customer where balance > 25000"
  in
  (* customers above 25K: t5 (c1, 0.3) or t6 (c2, 0.2); nonempty unless
     both clusters pick the low-balance tuple: 1 - 0.7*0.8 = 0.44 *)
  Fixtures.check_float "nonempty probability" 0.44
    (Conquer.Candidates.probability_that_nonempty db q)

(* ---- oracle equals rewriting on another shape ---- *)

let test_three_way_chain () =
  (* chain: shipment -> orders -> customer *)
  let shipment =
    Relation.create
      (Schema.make
         [
           ("sid", Value.TString);
           ("ordfk", Value.TString);
           ("carrier", Value.TString);
           ("prob", Value.TFloat);
         ])
      [
        [| v_s "s1"; v_s "o1"; v_s "UPS"; Value.Float 0.6 |];
        [| v_s "s1"; v_s "o2"; v_s "FedEx"; Value.Float 0.4 |];
        [| v_s "s2"; v_s "o2"; v_s "UPS"; Value.Float 1.0 |];
      ]
  in
  let db =
    Dirty_db.add_table (Fixtures.figure2_db ())
      (Dirty_db.make_table ~name:"shipment" ~id_attr:"sid" ~prob_attr:"prob"
         shipment)
  in
  let s = Conquer.Clean.create db in
  let sql =
    "select s.sid, o.id, c.id from shipment s, orders o, customer c \
     where s.ordfk = o.id and o.cidfk = c.id and c.balance > 10000"
  in
  (match Conquer.Clean.check s sql with
  | Ok graph ->
    Alcotest.(check (list string)) "root is shipment" [ "s" ]
      (Conquer.Join_graph.roots graph)
  | Error vs ->
    Alcotest.failf "expected rewritable: %s"
      (String.concat "; " (List.map Conquer.Rewritable.violation_to_string vs)));
  let rewritten = Conquer.Clean.answers s sql in
  let oracle = Conquer.Candidates.clean_answers db (Sql.Parser.parse_query sql) in
  Alcotest.(check int)
    "same answer count"
    (Relation.cardinality oracle)
    (Relation.cardinality rewritten);
  Relation.iter
    (fun row ->
      let key = [ row.(0); row.(1); row.(2) ] in
      let expected = Option.get (Fixtures.answer_prob oracle key) in
      Fixtures.expect_answer rewritten key expected)
    oracle

let () =
  Alcotest.run "conquer"
    [
      ( "candidates",
        [
          Alcotest.test_case "count" `Quick test_candidate_count;
          Alcotest.test_case "probabilities (Example 3)" `Quick
            test_candidate_probabilities;
          Alcotest.test_case "total mass" `Quick test_candidate_mass;
          Alcotest.test_case "selection shape" `Quick test_candidate_selection_shape;
        ] );
      ( "clean answers",
        [
          Alcotest.test_case "q1 oracle (Example 4)" `Quick test_q1_oracle;
          Alcotest.test_case "q1 rewritten (Example 5)" `Quick test_q1_rewritten;
          Alcotest.test_case "q2 rewritten (Example 6)" `Quick test_q2_rewritten;
          Alcotest.test_case "q2 oracle agrees" `Quick test_q2_oracle_agrees;
          Alcotest.test_case "loyalty example (Section 1)" `Quick
            test_loyalty_example;
          Alcotest.test_case "offline cleaning fails (Section 1)" `Quick
            test_loyalty_offline_cleaning_fails;
          Alcotest.test_case "three-way chain" `Quick test_three_way_chain;
          Alcotest.test_case "nonempty probability" `Quick
            test_probability_nonempty;
        ] );
      ( "example 7",
        [
          Alcotest.test_case "q3 not rewritable" `Quick test_q3_not_rewritable;
          Alcotest.test_case "q3 oracle truth" `Quick test_q3_oracle_truth;
          Alcotest.test_case "q3 naive rewriting over-counts" `Quick
            test_q3_unchecked_overcounts;
          Alcotest.test_case "q3 answers raises" `Quick test_q3_answers_raises;
        ] );
      ( "rewritable class",
        [
          Alcotest.test_case "join graph of q2" `Quick test_join_graph_q2;
          Alcotest.test_case "single relation tree" `Quick
            test_single_relation_is_tree;
          Alcotest.test_case "self-join rejected" `Quick test_self_join_rejected;
          Alcotest.test_case "non-identifier join rejected" `Quick
            test_non_identifier_join_rejected;
          Alcotest.test_case "aggregate query rejected" `Quick
            test_aggregate_query_rejected;
          Alcotest.test_case "cyclic join graph rejected" `Quick
            test_cyclic_join_graph_rejected;
          Alcotest.test_case "root identifier not projected" `Quick
            test_root_identifier_not_projected;
          Alcotest.test_case "select star rejected" `Quick
            test_select_star_rejected;
          Alcotest.test_case "order by rejected" `Quick test_order_by_rejected;
          Alcotest.test_case "limit rejected" `Quick test_limit_rejected;
          Alcotest.test_case "cross product rejected" `Quick
            test_cross_product_not_tree;
        ] );
      ( "rewriting",
        [
          Alcotest.test_case "q1 rewrite text" `Quick test_rewrite_text_q1;
          Alcotest.test_case "q2 rewrite round-trips" `Quick
            test_rewrite_text_q2_roundtrip;
          Alcotest.test_case "order by preserved" `Quick
            test_rewrite_preserves_order_by;
        ] );
      ( "subqueries",
        [
          Alcotest.test_case "not rewritable" `Quick test_subquery_not_rewritable;
          Alcotest.test_case "oracle semantics" `Quick test_subquery_oracle;
          Alcotest.test_case "sampler converges" `Quick
            test_subquery_sampler_converges;
        ] );
      ( "provenance",
        [
          Alcotest.test_case "q2 decomposition" `Quick test_provenance_q2;
          Alcotest.test_case "sorted" `Quick test_provenance_sorted;
          Alcotest.test_case "rejects non-rewritable" `Quick
            test_provenance_rejects_unrewritable;
          Alcotest.test_case "pretty printing" `Quick test_provenance_pp;
        ] );
      ( "ranking",
        [
          Alcotest.test_case "top-k" `Quick test_top_answers;
          Alcotest.test_case "threshold" `Quick test_answers_above;
          Alcotest.test_case "join-on syntax" `Quick
            test_join_on_syntax_rewritable;
        ] );
      ( "consistent answers",
        [
          Alcotest.test_case "q1" `Quick test_consistent_answers;
          Alcotest.test_case "q2" `Quick test_consistent_answers_q2;
        ] );
      ( "independent semantics",
        [
          Alcotest.test_case "differs from exclusive" `Quick
            test_independent_differs;
          Alcotest.test_case "world count" `Quick test_independent_world_count;
        ] );
    ]
