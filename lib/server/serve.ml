(* The daemon proper: admission queue, worker pool, disconnect
   reaper, circuit-breaker-guarded store access, result cache, and
   the drain protocol.  See serve.mli for the behavioral contract and
   DESIGN.md §5h for the rationale. *)

(* ---- telemetry ---- *)

let m_requests =
  Telemetry.Metrics.counter "serve.requests" ~help:"query requests admitted"

let m_shed =
  Telemetry.Metrics.counter "serve.shed"
    ~help:"requests refused with 503 because the admission queue was full"

let m_cancelled =
  Telemetry.Metrics.counter "serve.cancelled"
    ~help:"queries cancelled (deadline, disconnect, or drain)"

let m_partial =
  Telemetry.Metrics.counter "serve.partial"
    ~help:"200 responses carrying a partial (budgeted) answer set"

let m_cache_hits =
  Telemetry.Metrics.counter "serve.cache_hits"
    ~help:"queries answered from the result cache"

let m_internal =
  Telemetry.Metrics.counter "serve.internal_errors"
    ~help:"requests that ended in an unexpected exception (500)"

let g_inflight =
  Telemetry.Metrics.gauge "serve.in_flight" ~help:"queries executing right now"

let g_queue =
  Telemetry.Metrics.gauge "serve.queue_depth" ~help:"requests waiting for a worker"

let h_latency =
  Telemetry.Metrics.histogram "serve.request_seconds"
    ~help:"wall-clock seconds from accept to response"

(* ---- configuration ---- *)

type config = {
  host : string;
  port : int;
  concurrency : int;
  queue_capacity : int;
  default_deadline : float;
  max_deadline : float;
  default_budget_rows : int option;
  jobs : int;
  cache_capacity : int;
  breaker_threshold : int;
  drain_deadline : float;
  retry_after : float;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    concurrency = 4;
    queue_capacity = 64;
    default_deadline = 5.0;
    max_deadline = 60.0;
    default_budget_rows = None;
    jobs = 1;
    cache_capacity = 256;
    breaker_threshold = 3;
    drain_deadline = 5.0;
    retry_after = 1.0;
  }

(* ---- state ---- *)

type job = { fd : Unix.file_descr; enqueued_at : float }

type t = {
  cfg : config;
  dir : string;
  listen_fd : Unix.file_descr;
  bound_port : int;
  recovered : string list;
  (* admission queue *)
  qlock : Mutex.t;
  qcond : Condition.t;
  queue : job Queue.t;
  mutable draining : bool;
  mutable hard_drain : bool;
  (* store session, guarded by slock *)
  slock : Mutex.t;
  breaker : Breaker.t;
  mutable session : (int * Conquer.Clean.session) option;
  prepared : (string, Sql.Ast.query) Cache.t;
  results : (string, string) Cache.t;
  (* in-flight queries, for the reaper and the hard drain *)
  ilock : Mutex.t;
  inflight : (int, Unix.file_descr * Engine.Cancel.token) Hashtbl.t;
  mutable next_id : int;
  active : int Atomic.t;
  reaper_stop : bool Atomic.t;
  force_cancelled : int Atomic.t;
  stop_requested : bool Atomic.t;
}

(* ---- small helpers ---- *)

let locked lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* ---- JSON rendering ---- *)

let value_json v =
  match v with
  | Dirty.Value.Null -> "null"
  | Dirty.Value.Bool b -> if b then "true" else "false"
  | Dirty.Value.Int i -> string_of_int i
  | Dirty.Value.Float f -> Telemetry.Export.json_float f
  | Dirty.Value.String s -> Telemetry.Export.json_string s
  | Dirty.Value.Date _ -> Telemetry.Export.json_string (Dirty.Value.to_string v)

(* the cacheable core of a /query response: everything except the
   per-request [cached] and [elapsed_ms] fields *)
let result_core rel ~generation ~truncated ~cancelled =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "\"columns\":[";
  List.iteri
    (fun i name ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Telemetry.Export.json_string name))
    (Dirty.Schema.names (Dirty.Relation.schema rel));
  Buffer.add_string buf "],\"rows\":[";
  Array.iteri
    (fun i row ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '[';
      Array.iteri
        (fun j v ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (value_json v))
        row;
      Buffer.add_char buf ']')
    (Dirty.Relation.rows rel);
  Buffer.add_string buf
    (Printf.sprintf "],\"row_count\":%d,\"generation\":%d"
       (Dirty.Relation.cardinality rel) generation);
  Buffer.add_string buf
    (Printf.sprintf ",\"partial\":%b,\"truncated\":%b,\"cancelled\":%b"
       (truncated || cancelled) truncated cancelled);
  Buffer.contents buf

let compose_body ~core ~cached ~elapsed =
  Printf.sprintf "{%s,\"cached\":%b,\"elapsed_ms\":%s}" core cached
    (Telemetry.Export.json_float (elapsed *. 1000.0))

let error_body detail =
  Printf.sprintf "{\"error\":%s}" (Telemetry.Export.json_string detail)

(* ---- construction ---- *)

let create ?(config = default_config) ~dir () =
  Telemetry.Control.enable ();
  let recovered = Dirty.Store.recover dir in
  let db = Dirty.Store.load dir in
  let generation = Dirty.Store.generation dir in
  let session = Conquer.Clean.create db in
  let listen_fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt listen_fd SO_REUSEADDR true;
  (try
     Unix.bind listen_fd
       (ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
     Unix.listen listen_fd 128
   with e ->
     close_quiet listen_fd;
     raise e);
  let bound_port =
    match Unix.getsockname listen_fd with
    | ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  {
    cfg = config;
    dir;
    listen_fd;
    bound_port;
    recovered;
    qlock = Mutex.create ();
    qcond = Condition.create ();
    queue = Queue.create ();
    draining = false;
    hard_drain = false;
    slock = Mutex.create ();
    breaker = Breaker.create ~threshold:config.breaker_threshold ();
    session = Some (generation, session);
    prepared = Cache.create ~capacity:config.cache_capacity;
    results = Cache.create ~capacity:config.cache_capacity;
    ilock = Mutex.create ();
    inflight = Hashtbl.create 64;
    next_id = 0;
    active = Atomic.make 0;
    reaper_stop = Atomic.make false;
    force_cancelled = Atomic.make 0;
    stop_requested = Atomic.make false;
  }

let port t = t.bound_port
let recovery_log t = t.recovered

(* ---- store session management ---- *)

(* The single chokepoint for store access.  Probes the committed
   generation on every query (one small read through Fault.Io — this
   IS the cache-invalidation mechanism) and reloads the snapshot when
   it moved.  All failures feed the circuit breaker; while the breaker
   is open the probe is skipped entirely and the caller sheds. *)
let ensure_session t =
  locked t.slock @@ fun () ->
  if not (Breaker.allow t.breaker) then
    Error "store circuit breaker open; retry later"
  else
    match
      let rec probe_and_load () =
        let generation = Dirty.Store.generation t.dir in
        match t.session with
        | Some (g, s) when g = generation -> (generation, s)
        | _ ->
          let db = Fault.Retry.with_retry (fun () -> Dirty.Store.load t.dir) in
          (* a commit can land between the probe and the load, which
             would label the newer snapshot with the older generation
             (and poison the result cache under that key) — re-probe
             and reload until the generation is stable around the
             load *)
          if Dirty.Store.generation t.dir <> generation then probe_and_load ()
          else begin
            let s = Conquer.Clean.create db in
            t.session <- Some (generation, s);
            Cache.clear t.prepared;
            let live_suffix = Printf.sprintf "|g%d" generation in
            Cache.drop t.results (fun k ->
                not (String.ends_with ~suffix:live_suffix k));
            (generation, s)
          end
      in
      probe_and_load ()
    with
    | pair ->
      Breaker.success t.breaker;
      Ok pair
    | exception e ->
      Breaker.failure t.breaker;
      Error (Printf.sprintf "store unavailable: %s" (Printexc.to_string e))

(* ---- request handling ---- *)

type mode = Rewritten | Original

let mode_tag = function Rewritten -> "rewritten" | Original -> "original"

exception Reply of int * (string * string) list * string

let reply ?(headers = []) status body = raise (Reply (status, headers, body))

let parse_params t req =
  let deadline =
    match Http.param req "deadline_ms" with
    | None -> t.cfg.default_deadline
    | Some v -> (
      match float_of_string_opt v with
      | Some ms when ms > 0.0 -> Float.min (ms /. 1000.0) t.cfg.max_deadline
      | _ -> reply 400 (error_body ("bad deadline_ms: " ^ v)))
  in
  let budget_rows =
    match Http.param req "budget_rows" with
    | None -> t.cfg.default_budget_rows
    | Some v -> (
      match int_of_string_opt v with
      | Some n when n > 0 -> Some n
      | _ -> reply 400 (error_body ("bad budget_rows: " ^ v)))
  in
  let mode =
    match Http.param req "mode" with
    | None | Some "rewritten" -> Rewritten
    | Some "original" -> Original
    | Some m -> reply 400 (error_body ("bad mode: " ^ m))
  in
  (deadline, budget_rows, mode)

(* parse (for normalization) and rewrite once per (query, mode); the
   prepared AST is executed directly on the engine thereafter *)
let prepare t session mode sql =
  let ast =
    try Sql.Parser.parse_query sql
    with e -> reply 400 (error_body ("parse error: " ^ Printexc.to_string e))
  in
  let normalized = Sql.Pretty.query_to_string ast in
  let key = mode_tag mode ^ "|" ^ normalized in
  match Cache.find t.prepared key with
  | Some prepared -> (normalized, prepared)
  | None ->
    let prepared =
      match mode with
      | Original -> ast
      | Rewritten -> (
        match Conquer.Clean.rewrite session sql with
        | Ok rewritten -> Sql.Parser.parse_query rewritten
        | Error violations ->
          reply 400
            (error_body
               ("not rewritable: "
               ^ String.concat "; "
                   (List.map Conquer.Rewritable.violation_to_string violations)
               )))
    in
    Cache.add t.prepared key prepared;
    (normalized, prepared)

let register_inflight t fd token =
  locked t.ilock @@ fun () ->
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  Hashtbl.replace t.inflight id (fd, token);
  id

let unregister_inflight t id =
  locked t.ilock @@ fun () -> Hashtbl.remove t.inflight id

let handle_query t job req =
  Telemetry.Metrics.inc m_requests;
  let sql =
    match (req.Http.meth, String.trim req.Http.body) with
    | "POST", body when body <> "" -> body
    | _ -> (
      match Http.param req "sql" with
      | Some sql when String.trim sql <> "" -> sql
      | _ -> reply 400 (error_body "no sql (POST a body or pass ?sql=)"))
  in
  let deadline, budget_rows, mode = parse_params t req in
  let remaining = job.enqueued_at +. deadline -. Unix.gettimeofday () in
  if remaining <= 0.0 then begin
    (* spent the whole deadline waiting in the queue: the query never
       ran, so there are no partial rows to return *)
    Telemetry.Metrics.inc m_cancelled;
    reply 408 (error_body "deadline expired before execution began")
  end;
  let generation, session =
    match ensure_session t with
    | Ok pair -> pair
    | Error detail ->
      reply 503
        ~headers:
          [ ("retry-after", Printf.sprintf "%.0f" t.cfg.retry_after) ]
        (error_body detail)
  in
  let normalized, ast = prepare t session mode sql in
  let result_key =
    Printf.sprintf "%s|%s|g%d" (mode_tag mode) normalized generation
  in
  match Cache.find t.results result_key with
  | Some core ->
    Telemetry.Metrics.inc m_cache_hits;
    reply 200
      (compose_body ~core ~cached:true
         ~elapsed:(Unix.gettimeofday () -. job.enqueued_at))
  | None ->
    let token = Engine.Cancel.create () in
    let id = register_inflight t job.fd token in
    let rel, stop =
      Fun.protect
        ~finally:(fun () -> unregister_inflight t id)
        (fun () ->
          let config =
            {
              Engine.Planner.default_config with
              jobs = t.cfg.jobs;
              max_rows = budget_rows;
              max_elapsed = Some remaining;
            }
          in
          Engine.Database.query_ast_within ~config ~cancel:token
            (Conquer.Clean.engine session)
            ast)
    in
    let truncated = stop.Engine.Database.truncated in
    let cancelled = stop.Engine.Database.cancelled in
    if cancelled then Telemetry.Metrics.inc m_cancelled;
    if truncated || cancelled then Telemetry.Metrics.inc m_partial;
    let core = result_core rel ~generation ~truncated ~cancelled in
    if not (truncated || cancelled) then Cache.add t.results result_key core;
    reply 200
      (compose_body ~core ~cached:false
         ~elapsed:(Unix.gettimeofday () -. job.enqueued_at))

let handle_request t job req =
  match (req.Http.meth, req.Http.path) with
  | "GET", "/healthz" -> reply 200 "{\"status\":\"ok\"}"
  | "GET", "/readyz" ->
    let ready =
      (not t.draining)
      && (match Breaker.state t.breaker with
         | Breaker.Open -> false
         | _ -> true)
      && t.session <> None
    in
    if ready then reply 200 "{\"status\":\"ready\"}"
    else reply 503 (error_body "not ready")
  | "GET", "/metrics" ->
    raise
      (Reply
         ( 200,
           [ ("x-content-type", "text/plain") ],
           Telemetry.Export.prometheus_string () ))
  | ("GET" | "POST"), "/query" -> handle_query t job req
  | _, ("/healthz" | "/readyz" | "/metrics" | "/query") ->
    reply 405 (error_body "method not allowed")
  | _ -> reply 404 (error_body "not found")

(* One request, one connection.  Every exception is converted into a
   response (or a silent close when the client is already gone): the
   worker domain survives anything a request can throw at it. *)
let serve_connection t job =
  Fun.protect
    ~finally:(fun () -> close_quiet job.fd)
    (fun () ->
      let outcome =
        if t.hard_drain then
          Reply
            ( 503,
              [ ("retry-after", Printf.sprintf "%.0f" t.cfg.retry_after) ],
              error_body "server is shutting down" )
        else
          match Http.read_request ~read_timeout:1.0 job.fd with
          | req -> ( try handle_request t job req with o -> o)
          | exception e -> e
      in
      let status, headers, body =
        match outcome with
        | Reply (status, headers, body) -> (status, headers, body)
        | Http.Bad_request detail -> (400, [], error_body detail)
        | Http.Too_large detail -> (413, [], error_body detail)
        | Http.Timeout -> (408, [], error_body "request read timed out")
        | Http.Disconnected -> raise Http.Disconnected
        | e ->
          Telemetry.Metrics.inc m_internal;
          (500, [], error_body ("internal error: " ^ Printexc.to_string e))
      in
      let content_type =
        match List.assoc_opt "x-content-type" headers with
        | Some ct -> ct
        | None -> "application/json"
      in
      let headers = List.remove_assoc "x-content-type" headers in
      Http.write_response job.fd ~status ~headers ~content_type ~body ();
      Telemetry.Metrics.observe h_latency
        (Unix.gettimeofday () -. job.enqueued_at))

let serve_connection_quiet t job =
  try serve_connection t job with
  | Http.Disconnected -> ()
  | Unix.Unix_error _ -> ()

(* ---- worker pool ---- *)

let next_job t =
  locked t.qlock @@ fun () ->
  let rec wait () =
    if not (Queue.is_empty t.queue) then begin
      let job = Queue.pop t.queue in
      Telemetry.Metrics.set g_queue (Float.of_int (Queue.length t.queue));
      Some job
    end
    else if t.draining then None
    else begin
      Condition.wait t.qcond t.qlock;
      wait ()
    end
  in
  wait ()

let rec worker_loop t =
  match next_job t with
  | None -> ()
  | Some job ->
    Atomic.incr t.active;
    Telemetry.Metrics.set g_inflight (Float.of_int (Atomic.get t.active));
    serve_connection_quiet t job;
    Atomic.decr t.active;
    Telemetry.Metrics.set g_inflight (Float.of_int (Atomic.get t.active));
    worker_loop t

(* ---- disconnect reaper ---- *)

(* A zero-byte MSG_PEEK on a readable connection distinguishes "the
   client hung up" (recv returns 0) from "the client pipelined more
   bytes" (recv returns them, unconsumed).  Hung-up connections get
   their query's token tripped so the worker stops at its next
   checkpoint instead of computing an answer nobody will read. *)
let reap_once t =
  let snapshot =
    locked t.ilock @@ fun () ->
    Hashtbl.fold (fun _ v acc -> v :: acc) t.inflight []
  in
  List.iter
    (fun (fd, token) ->
      if not (Engine.Cancel.cancelled token) then
        try
          match Unix.select [ fd ] [] [] 0.0 with
          | [ _ ], _, _ -> (
            let b = Bytes.create 1 in
            match Unix.recv fd b 0 1 [ MSG_PEEK ] with
            | 0 -> Engine.Cancel.cancel ~reason:"client disconnected" token
            | _ -> ()
            | exception Unix.Unix_error _ ->
              Engine.Cancel.cancel ~reason:"client disconnected" token)
          | _ -> ()
        with Unix.Unix_error _ -> ())
    snapshot

let reaper_loop t =
  while not (Atomic.get t.reaper_stop) do
    reap_once t;
    Unix.sleepf 0.01
  done

(* ---- accept loop, shed, drain ---- *)

let shed t fd =
  Telemetry.Metrics.inc m_shed;
  (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 1.0
   with Unix.Unix_error _ -> ());
  (try
     Http.write_response fd ~status:503
       ~headers:[ ("retry-after", Printf.sprintf "%.0f" t.cfg.retry_after) ]
       ~body:(error_body "overloaded; request shed")
       ()
   with Http.Disconnected | Unix.Unix_error _ -> ());
  close_quiet fd

let admit t fd =
  let job = { fd; enqueued_at = Unix.gettimeofday () } in
  let admitted =
    locked t.qlock @@ fun () ->
    if t.draining || Queue.length t.queue >= t.cfg.queue_capacity then false
    else begin
      Queue.push job t.queue;
      Telemetry.Metrics.set g_queue (Float.of_int (Queue.length t.queue));
      Condition.signal t.qcond;
      true
    end
  in
  if not admitted then shed t fd

let shutdown t =
  locked t.qlock @@ fun () ->
  t.draining <- true;
  Condition.broadcast t.qcond

(* async-signal-safe shutdown request: one atomic store, no locks.
   Signal handlers run at safepoints of the accepting domain, which
   may already hold qlock — so the handler must only set this flag;
   the accept loop notices it within one select timeout and runs the
   real (locking) shutdown itself. *)
let request_shutdown t = Atomic.set t.stop_requested true

type drain_report = { drained : bool; cancelled_inflight : int }

let accept_loop t =
  let rec loop () =
    if Atomic.get t.stop_requested then shutdown t;
    if t.draining then ()
    else begin
      (match Unix.select [ t.listen_fd ] [] [] 0.05 with
      | [ _ ], _, _ -> (
        match Unix.accept t.listen_fd with
        | fd, _ -> admit t fd
        | exception Unix.Unix_error ((EINTR | ECONNABORTED), _, _) -> ())
      | _ -> ()
      | exception Unix.Unix_error ((EINTR | EBADF), _, _) -> ());
      loop ()
    end
  in
  loop ()

(* Drain protocol: stop accepting, let the workers finish the queue,
   and past the deadline flip to hard drain — remaining queued
   requests answer 503 without executing and every in-flight token is
   tripped — so the daemon always comes down in bounded time. *)
let run t =
  (* a client that vanishes mid-write must surface as EPIPE, not kill
     the process *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let workers =
    List.init t.cfg.concurrency (fun _ -> Domain.spawn (fun () -> worker_loop t))
  in
  let reaper = Domain.spawn (fun () -> reaper_loop t) in
  accept_loop t;
  close_quiet t.listen_fd;
  let deadline = Unix.gettimeofday () +. t.cfg.drain_deadline in
  let rec await_drain () =
    let idle =
      locked t.qlock (fun () -> Queue.is_empty t.queue)
      && Atomic.get t.active = 0
    in
    if idle then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Unix.sleepf 0.01;
      await_drain ()
    end
  in
  let drained = await_drain () in
  if not drained then begin
    t.hard_drain <- true;
    let victims =
      locked t.ilock @@ fun () ->
      Hashtbl.fold (fun _ (_, token) acc -> token :: acc) t.inflight []
    in
    List.iter
      (fun token ->
        if not (Engine.Cancel.cancelled token) then begin
          Engine.Cancel.cancel ~reason:"server draining" token;
          Telemetry.Metrics.inc m_cancelled;
          Atomic.incr t.force_cancelled
        end)
      victims
  end;
  locked t.qlock (fun () -> Condition.broadcast t.qcond);
  List.iter Domain.join workers;
  Atomic.set t.reaper_stop true;
  Domain.join reaper;
  { drained; cancelled_inflight = Atomic.get t.force_cancelled }
