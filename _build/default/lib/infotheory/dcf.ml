type t = { weight : float; dist : Dist.t }

let make ~weight dist =
  if weight <= 0.0 then invalid_arg "Dcf.make: non-positive weight";
  if not (Dist.is_normalized ~eps:1e-6 dist) then
    invalid_arg "Dcf.make: distribution not normalized";
  { weight; dist }

let of_symbols symbols =
  match symbols with
  | [] -> invalid_arg "Dcf.of_symbols: empty tuple"
  | _ -> { weight = 1.0; dist = Dist.uniform symbols }

let merge a b =
  let weight = a.weight +. b.weight in
  let dist =
    Dist.mix [ (a.weight /. weight, a.dist); (b.weight /. weight, b.dist) ]
  in
  { weight; dist }

let merge_many = function
  | [] -> invalid_arg "Dcf.merge_many: empty list"
  | first :: rest -> List.fold_left merge first rest

let information_loss ~total a b =
  if total <= 0.0 then invalid_arg "Dcf.information_loss: non-positive total";
  let w = a.weight +. b.weight in
  let pi1 = a.weight /. w and pi2 = b.weight /. w in
  w /. total *. Dist.js_divergence ~w1:pi1 ~w2:pi2 a.dist b.dist

let pp fmt t = Format.fprintf fmt "DCF(|c|=%g, %a)" t.weight Dist.pp t.dist
