test/test_infotheory.mli:
