(* Citation deduplication (the paper's Section 4.2 / Table 4 study).

   Run with:  dune exec examples/citations.exe

   A cluster of citation records for the same publication, gathered
   from many bibliographies, contains formatting variations and —
   because tuple matchers are imperfect — sometimes a record of a
   different publication.  The Section 4 procedure ranks the records:
   records that agree with the cluster's most frequent values get high
   probability; reformatted or mis-clustered records sink to the
   bottom. *)

module Relation = Dirty.Relation
module Value = Dirty.Value

let () =
  let g =
    Tpch.Cora.generate { Tpch.Cora.default with cluster_size = 20; seed = 3 }
  in
  Printf.printf "A cluster of %d citation records:\n"
    (Relation.cardinality g.relation);
  print_string (Relation.to_string ~max_rows:8 g.relation);

  let ranking = Tpch.Cora.ranking g in
  let describe i =
    if Some i = g.foreign_row then "MIS-CLUSTERED"
    else if List.mem i g.variant_rows then "variant"
    else "canonical"
  in
  print_endline "\nRanking by probability of being the clean record:";
  List.iter
    (fun (i, p) ->
      let row = Relation.get g.relation i in
      Printf.printf "  %.4f  %-14s %s — %s (%s)\n" p
        ("[" ^ describe i ^ "]")
        (Value.to_string (Relation.value g.relation row "author"))
        (Value.to_string (Relation.value g.relation row "title"))
        (Value.to_string (Relation.value g.relation row "year")))
    ranking;

  (match g.foreign_row with
  | Some f ->
    let last, _ = List.nth ranking (List.length ranking - 1) in
    if last = f then
      print_endline
        "\nThe mis-clustered record ranks last — exactly the behaviour the\n\
         paper reports on the Cora dataset (Table 4)."
    else
      print_endline "\nWARNING: the mis-clustered record did not rank last."
  | None -> ());

  (* the ranking is also what a downstream engine consumes: probabilities
     sum to 1 within the cluster *)
  let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 ranking in
  Printf.printf "\nProbability mass of the cluster: %.6f (must be 1.0)\n" total
