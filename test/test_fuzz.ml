(* The differential fuzzing harness as a test suite.

   The headline property: on random dirty databases and random SPJ
   queries, whenever [Rewritable.check] accepts, RewriteClean on the
   engine agrees exactly with the candidate-enumeration oracle — at
   jobs=1 and jobs=4.  Around it: the oracle's own invariants, sampler
   convergence to oracle probabilities, the SQL pretty-printer
   round-trip on generated queries, corpus round-trip and replay, and
   the shrinker actually shrinking. *)

open Dirty

let case_arb = Fuzz.Case.arbitrary ()

let total_rows db =
  List.fold_left
    (fun n (t : Dirty_db.table) -> n + Relation.cardinality t.relation)
    0 (Dirty_db.tables db)

(* ---- the differential property ---- *)

let prop_differential =
  QCheck.Test.make ~count:300
    ~name:
      "rewriting agrees with the oracle (jobs 1 and 4; shards 1, 2 and 4 \
       bit-identical to unsharded)"
    case_arb
    (fun case ->
      let outcome =
        Fuzz.Differential.run ~jobs:[ 1; 4 ] ~shards:[ 1; 2; 4 ] case
      in
      if Fuzz.Differential.failing outcome then
        QCheck.Test.fail_report (Fuzz.Differential.to_string outcome)
      else true)

(* ---- the update differential property ----

   300 random update sequences over rewritable cases: incremental
   maintenance of the materialized view agrees bit-for-bit (eps 0)
   with from-scratch re-execution at jobs in {1,4} x chunked in
   {false,true}, and the final database agrees with the oracle.  The
   generator stays on the 1/16 probability grid, so sums and products
   are dyadic and exact equality is sound. *)

let prop_update_differential =
  QCheck.Test.make ~count:300
    ~name:
      "incremental maintenance agrees with from-scratch and the oracle (4 \
       legs)"
    (Fuzz.Updategen.scenario_arbitrary ())
    (fun (case, batches) ->
      let outcome =
        Fuzz.Differential.run_updates ~jobs:[ 1; 4 ] ~eps:0.0 case batches
      in
      if Fuzz.Differential.update_failing outcome then
        QCheck.Test.fail_report (Fuzz.Differential.update_to_string outcome)
      else true)

(* ---- oracle invariants ---- *)

let prop_oracle_mass =
  QCheck.Test.make ~count:150
    ~name:"oracle probabilities in (0,1], one row per answer tuple" case_arb
    (fun case ->
      match Conquer.Oracle.answer_probabilities case.db case.query with
      | exception Conquer.Oracle.Too_many_candidates _ -> QCheck.assume_fail ()
      | exception _ ->
        (* a query the engine cannot run (e.g. planner limits) is not
           an oracle defect *)
        QCheck.assume_fail ()
      | answers ->
        let seen = Hashtbl.create 16 in
        List.for_all
          (fun (row, p) ->
            let key =
              String.concat "\x00"
                (Array.to_list (Array.map Value.to_string row))
            in
            let fresh = not (Hashtbl.mem seen key) in
            Hashtbl.replace seen key ();
            fresh && p > 0.0 && p <= 1.0 +. 1e-9)
          answers)

(* ---- sampler convergence ---- *)

let prop_sampler_converges =
  QCheck.Test.make ~count:25
    ~name:"sampler estimates converge to oracle probabilities" case_arb
    (fun case ->
      match Conquer.Oracle.answer_probabilities case.db case.query with
      | exception _ -> QCheck.assume_fail ()
      | oracle ->
        let samples = 1500 in
        let session = Conquer.Clean.create case.db in
        let estimates =
          try
            Conquer.Sampler.estimates ~seed:7 ~samples session
              (Fuzz.Case.sql case)
          with _ -> QCheck.assume_fail ()
        in
        let find row =
          List.find_opt
            (fun (e : Conquer.Sampler.estimate) ->
              Array.length e.row = Array.length row
              && Array.for_all2 Value.equal e.row row)
            estimates
        in
        let tolerance p =
          Float.max 0.08
            (6.0 *. sqrt (p *. (1.0 -. p) /. float_of_int samples))
        in
        (* every oracle answer is estimated within tolerance (absent
           means estimated 0), and nothing is sampled that the oracle
           rules out *)
        List.for_all
          (fun (row, p) ->
            let estimate =
              match find row with Some e -> e.probability | None -> 0.0
            in
            Float.abs (estimate -. p) <= tolerance p)
          oracle
        && List.for_all
             (fun (e : Conquer.Sampler.estimate) ->
               List.exists
                 (fun (row, _) ->
                   Array.length e.row = Array.length row
                   && Array.for_all2 Value.equal e.row row)
                 oracle)
             estimates)

(* ---- SQL pretty-printer round-trip ---- *)

let prop_roundtrip =
  QCheck.Test.make ~count:500
    ~name:"Parser.parse (Pretty.to_string q) reparses to q" case_arb
    (fun case ->
      let text = Sql.Pretty.query_to_string case.query in
      match Sql.Parser.parse_query text with
      | exception Sql.Parser.Error msg ->
        QCheck.Test.fail_reportf "unparseable: %s\n%s" msg text
      | reparsed ->
        if reparsed = case.query then true
        else
          QCheck.Test.fail_reportf "round-trip changed the query:\n%s" text)

(* ---- corpus round-trip ---- *)

let prop_corpus_roundtrip =
  QCheck.Test.make ~count:50 ~name:"corpus save/load is exact" case_arb
    (fun case ->
      Testutil.with_temp_dir (fun dir ->
          Fuzz.Corpus.save ~dir ~name:"case" case;
          let loaded = Fuzz.Corpus.load ~dir ~name:"case" in
          let fingerprint db =
            List.map
              (fun (t : Dirty_db.table) ->
                ( t.name,
                  Schema.names (Relation.schema t.relation),
                  List.sort compare
                    (List.map
                       (fun row ->
                         Array.to_list (Array.map Value.to_string row))
                       (Array.to_list (Relation.rows t.relation))) ))
              (Dirty_db.tables db)
          in
          loaded.query = case.query
          && fingerprint loaded.db = fingerprint case.db))

(* ---- seed corpus replay ---- *)

(* dune runtest runs tests in _build/default/test, where the glob_files
   dep places the corpus; a manual dune exec from the repo root finds
   the source copy instead *)
let corpus_dir =
  if Sys.file_exists "corpus" then "corpus" else Filename.concat "test" "corpus"

let test_corpus_replay () =
  let dir = corpus_dir in
  let names = Fuzz.Corpus.names dir in
  Alcotest.(check bool) "seed corpus present" true (List.length names >= 8);
  let outcomes =
    List.map
      (fun name -> (name, Fuzz.Differential.run (Fuzz.Corpus.load ~dir ~name)))
      names
  in
  List.iter
    (fun (name, outcome) ->
      if Fuzz.Differential.failing outcome then
        Alcotest.failf "corpus case %s: %s" name
          (Fuzz.Differential.to_string outcome))
    outcomes;
  (* the seed corpus straddles the class boundary *)
  let is_agree = function _, Fuzz.Differential.Agree _ -> true | _ -> false in
  let is_rejected =
    function _, Fuzz.Differential.Rejected _ -> true | _ -> false
  in
  Alcotest.(check bool) "some case is rewritable" true
    (List.exists is_agree outcomes);
  Alcotest.(check bool) "some case is rejected" true
    (List.exists is_rejected outcomes)

(* the corpus cases assert specific class membership *)
let test_corpus_classification () =
  let dir = corpus_dir in
  let check name expect_rewritable =
    let case = Fuzz.Corpus.load ~dir ~name in
    let env = Conquer.Dirty_schema.of_dirty_db case.db in
    let accepted = Result.is_ok (Conquer.Rewritable.check env case.query) in
    Alcotest.(check bool) name expect_rewritable accepted
  in
  check "single-filter" true;
  check "fk-tree" true;
  check "selfjoin" false;
  check "cycle" false;
  check "dropped-root" false;
  (* the two shard pins: a rewritten answer group whose clusters land
     on different shards (cross-shard merge), and an aggregate whose
     clusters all land on shard 0 (one-sided merge over empty
     partials) — both must stay rewritable for the shards legs of the
     replay above to exercise the merge *)
  check "shard-split-group" true;
  check "shard-one-sided" true

(* ---- pinned update edge cases ----

   Deterministic witnesses for the two update shapes most likely to
   break incremental maintenance, run through the full 4-leg
   differential at eps 0. *)

let run_pinned_updates name batches =
  let case = Fuzz.Corpus.load ~dir:corpus_dir ~name in
  match
    Fuzz.Differential.run_updates ~jobs:[ 1; 4 ] ~eps:0.0 case batches
  with
  | Fuzz.Differential.U_agree { answers; _ } -> answers
  | outcome ->
    Alcotest.failf "pinned %s: %s" name
      (Fuzz.Differential.update_to_string outcome)

(* splitting a cluster of the join root moves a member into a brand
   new answer group; the follow-up insert gives the new cluster a
   join partner so the group actually surfaces in the view *)
let test_pin_split_across_answer_groups () =
  let batches =
    [
      [
        Delta.Split
          {
            table = "t0";
            cluster = Value.Int 0;
            into = Value.Int 5;
            members = [ 0 ];
          };
      ];
      [
        Delta.Insert
          {
            table = "t1";
            row = [| Value.Int 3; Value.Int 9; Value.Int 5; Value.Float 1.0 |];
          };
      ];
    ]
  in
  Alcotest.(check int)
    "new answer group surfaced" 4
    (run_pinned_updates "fk-tree" batches)

(* deleting the only member of t0 cluster 1 removes the cluster; the
   t1 tuple whose foreign key pointed at it dangles, and its answer
   group must vanish from the maintained view *)
let test_pin_delete_last_tuple_of_cluster () =
  let batches =
    [ [ Delta.Delete { table = "t0"; cluster = Value.Int 1; member = 0 } ] ]
  in
  Alcotest.(check int)
    "dangling answer group vanished" 2
    (run_pinned_updates "fk-tree" batches)

(* ---- shrinking ---- *)

let test_minimize_shrinks () =
  (* a fake bug that any non-empty database triggers: the minimizer
     must walk it down to a single-row database and a skeletal query *)
  let rand = Random.State.make [| 42 |] in
  let still_failing (c : Fuzz.Case.t) = total_rows c.db >= 1 in
  let rec find_big tries =
    let case = QCheck.Gen.generate1 ~rand (Fuzz.Case.gen ()) in
    if total_rows case.db >= 6 || tries > 200 then case else find_big (tries + 1)
  in
  let case = find_big 0 in
  let small = Fuzz.Differential.minimize still_failing case in
  Alcotest.(check bool) "still failing" true (still_failing small);
  Alcotest.(check int) "shrunk to a single row" 1 (total_rows small.db);
  Alcotest.(check bool) "query shrunk too" true
    (List.length small.query.from <= List.length case.query.from)

(* ---- refute finds planted wrong answers ---- *)

let test_refute_detects_tampering () =
  let dir = corpus_dir in
  let case = Fuzz.Corpus.load ~dir ~name:"single-filter" in
  let env = Conquer.Dirty_schema.of_dirty_db case.db in
  let rewritten = Conquer.Rewrite.rewrite_exn env case.query in
  let session = Conquer.Clean.create case.db in
  let answers =
    Engine.Database.query_ast (Conquer.Clean.engine session) rewritten
  in
  Alcotest.(check bool) "honest answers pass" true
    (Conquer.Oracle.refute case.db case.query answers = None);
  let tampered =
    Relation.map_rows (Relation.schema answers)
      (fun row ->
        let row = Array.copy row in
        let n = Array.length row in
        row.(n - 1) <-
          (match row.(n - 1) with
          | Value.Float p -> Value.Float (p /. 2.0)
          | v -> v);
        row)
      answers
  in
  match Conquer.Oracle.refute case.db case.query tampered with
  | None -> Alcotest.fail "halved probabilities not refuted"
  | Some m ->
    Alcotest.(check bool) "mismatch names the probability gap" true
      (m.oracle_prob <> None && m.actual_prob <> None)

let () =
  let to_alcotest tests =
    List.map (QCheck_alcotest.to_alcotest ~long:false) tests
  in
  Alcotest.run "fuzz"
    [
      ( "differential",
        to_alcotest
          [ prop_differential; prop_update_differential; prop_oracle_mass ] );
      ("sampler", to_alcotest [ prop_sampler_converges ]);
      ("roundtrip", to_alcotest [ prop_roundtrip; prop_corpus_roundtrip ]);
      ( "corpus",
        [
          Alcotest.test_case "replay seed corpus" `Quick test_corpus_replay;
          Alcotest.test_case "class membership" `Quick
            test_corpus_classification;
          Alcotest.test_case "pin: split across answer groups" `Quick
            test_pin_split_across_answer_groups;
          Alcotest.test_case "pin: delete last tuple of a cluster" `Quick
            test_pin_delete_last_tuple_of_cluster;
        ] );
      ( "shrinking",
        [
          Alcotest.test_case "minimize reaches a one-row witness" `Quick
            test_minimize_shrinks;
          Alcotest.test_case "refute detects tampered answers" `Quick
            test_refute_detects_tampering;
        ] );
    ]
