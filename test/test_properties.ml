(* Property-based tests (QCheck): the rewriting agrees with the
   possible-worlds oracle on random dirty databases and random
   rewritable queries, the probability assignment satisfies its
   invariants, and the engine's plan transformations preserve
   results. *)

open Dirty

let ( let* ) gen f = QCheck.Gen.( >>= ) gen f

(* ---- random dirty databases over a parent/child schema ----

   The schema spec and instance generator are the fuzzing harness's
   ([Fuzz.Dbgen]), instantiated at the fixed parent/child spec: this
   suite and the differential fuzzer draw from the same space of
   dirty databases (1/16-grain probabilities, occasional NULL or
   dangling foreign keys). *)

let db_gen = Fuzz.Dbgen.instance_gen Fuzz.Dbgen.parent_child_spec

(* random rewritable queries over the parent/child schema *)
let query_gen =
  let* shape = QCheck.Gen.int_range 0 2 in
  let* threshold = QCheck.Gen.int_range 0 10 in
  let* threshold2 = QCheck.Gen.int_range 0 10 in
  QCheck.Gen.return
    (match shape with
    | 0 -> Printf.sprintf "select id from parent where val < %d" threshold
    | 1 ->
      Printf.sprintf
        "select c.id, p.id from child c, parent p where c.fk = p.id and p.val < %d"
        threshold
    | _ ->
      Printf.sprintf
        "select c.id, c.val, p.id from child c, parent p \
         where c.fk = p.id and p.val < %d and c.val >= %d"
        threshold threshold2)

let db_and_query =
  QCheck.make
    ~print:(fun (db, sql) ->
      let buf = Buffer.create 256 in
      List.iter
        (fun (t : Dirty_db.table) ->
          Buffer.add_string buf (t.name ^ ":\n");
          Buffer.add_string buf (Relation.to_string t.relation))
        (Dirty_db.tables db);
      Buffer.add_string buf sql;
      Buffer.contents buf)
    (let* db = db_gen in
     let* q = query_gen in
     QCheck.Gen.return (db, q))

(* compare two answer relations keyed on all-but-last column *)
let answers_agree a b =
  let key row = Array.to_list (Array.sub row 0 (Array.length row - 1)) in
  let to_map rel =
    Relation.fold
      (fun acc row ->
        let p = Option.get (Value.to_float row.(Array.length row - 1)) in
        (key row, p) :: acc)
      [] rel
  in
  let ma = to_map a and mb = to_map b in
  List.length ma = List.length mb
  && List.for_all
       (fun (k, p) ->
         match
           List.find_opt (fun (k', _) -> List.for_all2 Value.equal k k') mb
         with
         | Some (_, p') -> Float.abs (p -. p') <= 1e-9
         | None -> false)
       ma

let prop_rewriting_equals_oracle =
  QCheck.Test.make ~count:150 ~name:"RewriteClean = possible-worlds oracle"
    db_and_query (fun (db, sql) ->
      let q = Sql.Parser.parse_query sql in
      let session = Conquer.Clean.create db in
      match Conquer.Rewritable.check (Conquer.Clean.env session) q with
      | Error _ -> QCheck.assume_fail ()
      | Ok _ ->
        let rewritten = Conquer.Clean.answers session sql in
        let oracle = Conquer.Candidates.clean_answers db q in
        answers_agree rewritten oracle)

let prop_oracle_mass_bounded =
  QCheck.Test.make ~count:100 ~name:"answer probabilities within (0,1]"
    db_and_query (fun (db, sql) ->
      let session = Conquer.Clean.create db in
      match Conquer.Clean.answers session sql with
      | exception Conquer.Rewrite.Not_rewritable _ -> QCheck.assume_fail ()
      | rel ->
        Relation.fold
          (fun acc row ->
            let p = Option.get (Value.to_float row.(Array.length row - 1)) in
            acc && p > 0.0 && p <= 1.0 +. 1e-9)
          true rel)

let prop_consistent_subset =
  QCheck.Test.make ~count:80 ~name:"consistent answers are the prob-1 answers"
    db_and_query (fun (db, sql) ->
      let session = Conquer.Clean.create db in
      match Conquer.Clean.answers session sql with
      | exception Conquer.Rewrite.Not_rewritable _ -> QCheck.assume_fail ()
      | answers ->
        let consistent = Conquer.Clean.consistent_answers session sql in
        let certain =
          Relation.fold
            (fun acc row ->
              let p = Option.get (Value.to_float row.(Array.length row - 1)) in
              if p >= 1.0 -. 1e-9 then acc + 1 else acc)
            0 answers
        in
        Relation.cardinality consistent = certain)

(* ---- probability assignment invariants ---- *)

let categorical_relation_gen =
  let* rows = QCheck.Gen.int_range 2 12 in
  let* num_clusters = QCheck.Gen.int_range 1 4 in
  let* data =
    QCheck.Gen.list_size (QCheck.Gen.return rows)
      (QCheck.Gen.pair
         (QCheck.Gen.int_range 0 4)  (* value a *)
         (QCheck.Gen.int_range 0 2)  (* value b *))
  in
  let* owners =
    QCheck.Gen.list_size (QCheck.Gen.return rows)
      (QCheck.Gen.int_range 0 (num_clusters - 1))
  in
  let schema =
    Schema.make
      [ ("a", Value.TString); ("b", Value.TString); ("cl", Value.TInt) ]
  in
  let rows =
    List.map2
      (fun (a, b) owner ->
        [|
          Value.String (Printf.sprintf "a%d" a);
          Value.String (Printf.sprintf "b%d" b);
          Value.Int owner;
        |])
      data owners
  in
  QCheck.Gen.return (Relation.create schema rows)

let categorical_relation =
  QCheck.make ~print:(fun rel -> Relation.to_string rel) categorical_relation_gen

let prop_assignment_invariants =
  QCheck.Test.make ~count:200 ~name:"Figure 5 probabilities are a distribution"
    categorical_relation (fun rel ->
      let clustering = Cluster.of_relation rel ~id_attr:"cl" in
      let r = Prob.Assign.run ~attrs:[ "a"; "b" ] rel clustering in
      let ok_range =
        Array.for_all (fun p -> p >= -1e-9 && p <= 1.0 +. 1e-9) r.probabilities
      in
      let ok_sums =
        Cluster.fold
          (fun _ members acc ->
            let sum =
              List.fold_left (fun s i -> s +. r.probabilities.(i)) 0.0 members
            in
            acc && Float.abs (sum -. 1.0) <= 1e-6)
          clustering true
      in
      let ok_singletons =
        Cluster.fold
          (fun _ members acc ->
            match members with
            | [ i ] -> acc && Float.abs (r.probabilities.(i) -. 1.0) <= 1e-9
            | _ -> acc)
          clustering true
      in
      ok_range && ok_sums && ok_singletons)

(* ---- information-theory invariants ---- *)

let dist_gen =
  let* n = QCheck.Gen.int_range 1 6 in
  let* masses =
    QCheck.Gen.list_size (QCheck.Gen.return n) (QCheck.Gen.float_range 0.05 1.0)
  in
  let total = List.fold_left ( +. ) 0.0 masses in
  QCheck.Gen.return
    (Infotheory.Dist.of_assoc (List.mapi (fun i m -> (i, m /. total)) masses))

let dist_pair =
  QCheck.make
    ~print:(fun (a, b) ->
      Format.asprintf "%a / %a" Infotheory.Dist.pp a Infotheory.Dist.pp b)
    (QCheck.Gen.pair dist_gen dist_gen)

let prop_js_nonneg_symmetric =
  QCheck.Test.make ~count:300 ~name:"JS divergence nonneg and symmetric"
    dist_pair (fun (a, b) ->
      let ab = Infotheory.Dist.js_divergence a b in
      let ba = Infotheory.Dist.js_divergence b a in
      ab >= -1e-12 && Float.abs (ab -. ba) <= 1e-9)

let prop_merge_loss_consistent =
  QCheck.Test.make ~count:300
    ~name:"DCF information loss = direct MI difference" dist_pair
    (fun (a, b) ->
      let da = Infotheory.Dcf.make ~weight:2.0 a in
      let db_ = Infotheory.Dcf.make ~weight:3.0 b in
      let total = 8.0 in
      let rest = [ Infotheory.Dcf.make ~weight:3.0 (Infotheory.Dist.uniform [ 100; 101 ]) ] in
      let direct = Infotheory.Mutual_info.merge_loss ~total da db_ ~rest in
      let shortcut = Infotheory.Dcf.information_loss ~total da db_ in
      Float.abs (direct -. shortcut) <= 1e-9)

let prop_entropy_bounds =
  QCheck.Test.make ~count:300 ~name:"0 <= H(p) <= log2 |support|"
    (QCheck.make ~print:(Format.asprintf "%a" Infotheory.Dist.pp) dist_gen)
    (fun d ->
      let h = Infotheory.Dist.entropy d in
      let n = float_of_int (Infotheory.Dist.support_size d) in
      h >= -1e-12 && h <= (Float.log n /. Float.log 2.0) +. 1e-9)

(* ---- engine metamorphic properties ---- *)

let prop_pushdown_equivalence =
  QCheck.Test.make ~count:100 ~name:"selection pushdown preserves results"
    db_and_query (fun (db, sql) ->
      let session = Conquer.Clean.create db in
      let engine = Conquer.Clean.engine session in
      let a = Engine.Database.query engine sql in
      let b =
        Engine.Database.query
          ~config:{ Engine.Planner.default_config with pushdown = false }
          engine sql
      in
      Relation.equal_as_bags a b)

let prop_index_equivalence =
  QCheck.Test.make ~count:100 ~name:"index joins preserve results"
    db_and_query (fun (db, sql) ->
      let session = Conquer.Clean.create db in
      let engine = Conquer.Clean.engine session in
      let a = Engine.Database.query engine sql in
      let b =
        Engine.Database.query
          ~config:{ Engine.Planner.default_config with use_indexes = false }
          engine sql
      in
      Relation.equal_as_bags a b)

let prop_distinct_idempotent =
  QCheck.Test.make ~count:100 ~name:"distinct is idempotent"
    categorical_relation (fun rel ->
      let d = Relation.distinct rel in
      Relation.equal_as_bags d (Relation.distinct d))

(* ---- SQL printer/parser round trip ---- *)

let expr_gen =
  let open QCheck.Gen in
  let literal =
    oneof
      [
        map (fun i -> Sql.Ast.lit_int i) (int_range (-100) 100);
        map (fun f -> Sql.Ast.lit_float f) (float_range (-10.0) 10.0);
        map (fun s -> Sql.Ast.lit_string s) (oneofl [ "x"; "it's"; "a b" ]);
        return (Sql.Ast.Lit Dirty.Value.Null);
        return (Sql.Ast.Lit (Dirty.Value.Bool true));
      ]
  in
  let column = map (fun n -> Sql.Ast.col n) (oneofl [ "a"; "b"; "t.c" ]) in
  (* qualified references are generated via the column table field *)
  let column =
    oneof
      [ column; return (Sql.Ast.Col { table = Some "t"; name = "c" }) ]
  in
  let leaf = oneof [ literal; column ] in
  let rec node depth =
    if depth = 0 then leaf
    else
      let sub = node (depth - 1) in
      oneof
        [
          leaf;
          map2
            (fun op (a, b) -> Sql.Ast.Binop (op, a, b))
            (oneofl
               Sql.Ast.[ Eq; Neq; Lt; Le; Gt; Ge; Add; Sub; Mul; Div; And; Or ])
            (pair sub sub);
          map (fun a -> Sql.Ast.Unop (Not, a)) sub;
          map (fun a -> Sql.Ast.Unop (Neg, a)) sub;
          map2 (fun a p -> Sql.Ast.Like (a, p)) sub (oneofl [ "x%"; "_y" ]);
          map
            (fun a -> Sql.Ast.In_list (a, [ Dirty.Value.Int 1; Dirty.Value.String "z" ]))
            sub;
          map3 (fun a b c -> Sql.Ast.Between (a, b, c)) sub sub sub;
          map (fun a -> Sql.Ast.Is_null a) sub;
          map (fun a -> Sql.Ast.Is_not_null a) sub;
        ]
  in
  node 3

let prop_pretty_parse_roundtrip =
  QCheck.Test.make ~count:500 ~name:"pretty |> parse is the identity on exprs"
    (QCheck.make ~print:Sql.Pretty.expr_to_string expr_gen)
    (fun e ->
      let printed = Sql.Pretty.expr_to_string e in
      match Sql.Parser.parse_expr printed with
      | reparsed ->
        (* floats may differ in the final digit through printing; use
           the printer as the normal form *)
        Sql.Pretty.expr_to_string reparsed = printed
      | exception Sql.Parser.Error msg ->
        QCheck.Test.fail_reportf "failed to reparse %S: %s" printed msg)

(* ---- expected aggregates vs oracle ---- *)

let prop_expected_equals_oracle =
  QCheck.Test.make ~count:80 ~name:"expected aggregates = oracle expectations"
    db_and_query (fun (db, _) ->
      let session = Conquer.Clean.create db in
      let sql = "select id, count(*), sum(val) from parent group by id" in
      let fast = Conquer.Expected.answers session sql in
      let slow = Conquer.Expected.answers_oracle session sql in
      Relation.cardinality fast = Relation.cardinality slow
      && Relation.fold
           (fun acc row ->
             acc
             &&
             match
               List.find_opt
                 (fun r -> Value.equal r.(0) row.(0))
                 (Relation.row_list slow)
             with
             | None -> false
             | Some r ->
               let close i =
                 match Value.to_float row.(i), Value.to_float r.(i) with
                 | Some a, Some b -> Float.abs (a -. b) <= 1e-9
                 | _ -> false
               in
               close 1 && close 2)
           true fast)

(* ---- count distribution vs oracle ---- *)

let prop_distribution_equals_oracle =
  QCheck.Test.make ~count:60 ~name:"count pmf = oracle pmf"
    db_and_query (fun (db, _) ->
      let session = Conquer.Clean.create db in
      let sql = "select id from parent where val < 5" in
      let fast = Conquer.Distribution.count_distribution session sql in
      let slow = Conquer.Distribution.count_distribution_oracle session sql in
      Array.for_all Fun.id
        (Array.mapi
           (fun i p ->
             let q = if i < Array.length fast then fast.(i) else 0.0 in
             Float.abs (p -. q) <= 1e-9)
           slow))

(* ---- rewritten query cardinality vs original ---- *)

let prop_rewriting_groups =
  QCheck.Test.make ~count:100
    ~name:"rewritten cardinality never exceeds the original"
    db_and_query (fun (db, sql) ->
      let session = Conquer.Clean.create db in
      match Conquer.Clean.answers session sql with
      | exception Conquer.Rewrite.Not_rewritable _ -> QCheck.assume_fail ()
      | rewritten ->
        let original = Conquer.Clean.original session sql in
        Relation.cardinality rewritten <= Relation.cardinality original)

let () =
  let suite name tests =
    (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)
  in
  Alcotest.run "properties"
    [
      suite "oracle"
        [
          prop_rewriting_equals_oracle;
          prop_oracle_mass_bounded;
          prop_consistent_subset;
          prop_rewriting_groups;
        ];
      suite "assignment" [ prop_assignment_invariants ];
      suite "sql" [ prop_pretty_parse_roundtrip ];
      suite "extensions"
        [ prop_expected_equals_oracle; prop_distribution_equals_oracle ];
      suite "infotheory"
        [ prop_js_nonneg_symmetric; prop_merge_loss_consistent; prop_entropy_bounds ];
      suite "engine"
        [ prop_pushdown_equivalence; prop_index_equivalence; prop_distinct_idempotent ];
    ]
