open Dirty

type policy = Most_probable | Merge

let most_probable_row (table : Dirty_db.table) members =
  match members with
  | [] -> invalid_arg "Resolve: empty cluster"
  | first :: rest ->
    let best =
      List.fold_left
        (fun best i ->
          if Dirty_db.row_probability table i > Dirty_db.row_probability table best
          then i
          else best)
        first rest
    in
    Array.copy (Relation.get table.relation best)

(* probability-weighted merge of a cluster's rows: numeric columns
   average, categorical columns take the heaviest value *)
let merged_row (table : Dirty_db.table) members =
  let schema = Relation.schema table.relation in
  let arity = Schema.arity schema in
  let rows = List.map (Relation.get table.relation) members in
  let probs = List.map (Dirty_db.row_probability table) members in
  Array.init arity (fun j ->
      let values = List.map (fun r -> r.(j)) rows in
      let ty = (Schema.attribute_at schema j).Schema.ty in
      match ty with
      | Value.TInt | Value.TFloat | Value.TDate ->
        (* weighted mean over the non-null values *)
        let total_w = ref 0.0 and total = ref 0.0 in
        List.iter2
          (fun v p ->
            match Value.to_float v with
            | Some x ->
              total_w := !total_w +. p;
              total := !total +. (p *. x)
            | None -> ())
          values probs;
        if !total_w <= 0.0 then Value.Null
        else begin
          let mean = !total /. !total_w in
          match ty with
          | Value.TInt -> Value.Int (int_of_float (Float.round mean))
          | Value.TDate -> Value.Date (int_of_float (Float.round mean))
          | _ -> Value.Float mean
        end
      | Value.TString | Value.TBool ->
        (* heaviest value by accumulated probability *)
        let weights = Hashtbl.create 8 in
        List.iter2
          (fun v p ->
            let k = Value.to_string v in
            Hashtbl.replace weights k
              ((match Hashtbl.find_opt weights k with Some (w, _) -> w | None -> 0.0)
               +. p,
               v))
          values probs;
        let best = ref None in
        Hashtbl.iter
          (fun _ (w, v) ->
            match !best with
            | Some (bw, _) when bw >= w -> ()
            | _ -> best := Some (w, v))
          weights;
        (match !best with Some (_, v) -> v | None -> Value.Null))

let resolve_table ?(policy = Most_probable) (table : Dirty_db.table) =
  let schema = Relation.schema table.relation in
  let prob_idx = Schema.index_of schema table.prob_attr in
  let id_idx = Schema.index_of schema table.id_attr in
  let rows =
    List.rev
      (Cluster.fold
         (fun id members acc ->
           let row =
             match policy with
             | Most_probable -> most_probable_row table members
             | Merge -> merged_row table members
           in
           row.(prob_idx) <- Value.Float 1.0;
           row.(id_idx) <- id;
           row :: acc)
         table.clustering [])
  in
  Dirty_db.make_table ~name:table.name ~id_attr:table.id_attr
    ~prob_attr:table.prob_attr
    (Relation.create schema rows)

let resolve ?policy db =
  List.fold_left
    (fun acc t -> Dirty_db.add_table acc (resolve_table ?policy t))
    Dirty_db.empty (Dirty_db.tables db)
