(** End-to-end clean query answering.

    A session wraps a dirty database together with an embedded engine
    database holding its relations.  Queries are SQL text; answers
    come back as relations whose last column, [clean_prob], is the
    probability of the answer being in the clean database. *)

type session

val create : ?index_identifiers:bool -> ?shards:int -> Dirty.Dirty_db.t -> session
(** Build a session.  When [index_identifiers] (default [true]),
    hash indexes are created on every table's identifier attribute
    and statistics are collected, mirroring the paper's experimental
    setup (indexes on the identifier + RUNSTATS).

    When [shards] is given, the dirty database is additionally
    hash-partitioned along cluster boundaries into that many
    in-process shard catalogs ({!Engine.Shard}), and every query
    entry point below scatters shardable queries across them —
    gathering partial results with deterministic first-occurrence
    merge order — falling back transparently to unsharded execution
    for queries outside the shardable class (subqueries, [SELECT *],
    LIMIT — so {!top_answers} always runs unsharded — outer joins,
    AVG, and HAVING/ORDER BY not expressible over partials).  Answers
    are bag-identical whatever the shard count.  Budgets in [config]
    apply {e per shard}; cancellation tokens reach every shard. *)

val dirty_db : session -> Dirty.Dirty_db.t
val engine : session -> Engine.Database.t
val env : session -> Dirty_schema.env

val shards : session -> int
(** The shard count the session was created with ([1] when
    unsharded). *)

val check : session -> string -> (Join_graph.t, Rewritable.violation list) result
(** Parse the SQL text and test membership in the rewritable class. *)

val rewrite : session -> string -> (string, Rewritable.violation list) result
(** The rewritten SQL text of a rewritable query. *)

val answers : ?config:Engine.Planner.config -> session -> string -> Dirty.Relation.t
(** Clean answers via RewriteClean executed on the engine.

    Parallelism rides along in [config]: set its [jobs] field to run
    the rewritten query's operators partition-parallel (answers are
    bit-identical for any value); with no [config] the process-wide
    default ([--jobs] / [CONQUER_JOBS]) applies.  The same holds for
    every query entry point below.
    @raise Rewrite.Not_rewritable when the query is outside the
    class. *)

val top_answers :
  ?config:Engine.Planner.config -> k:int -> session -> string -> Dirty.Relation.t
(** The [k] clean answers most likely to be in the clean database:
    the rewritten query ordered by descending probability (any ORDER
    BY of the input query is replaced) and truncated to [k] rows —
    the ranking use case the paper motivates.
    @raise Rewrite.Not_rewritable as {!answers}. *)

type partial = { rows : Dirty.Relation.t; truncated : bool; cancelled : bool }
(** A possibly-incomplete answer set.  [truncated] is [true] when the
    row budget ran out and [rows] is only a prefix of the full answer
    set; [cancelled] is [true] when the execution was cancelled (time
    budget crossed, or the budget's token tripped) and [rows] is
    whatever had been produced by then.  At most one of the two is
    set. *)

val answers_within :
  ?config:Engine.Planner.config ->
  ?cancel:Engine.Cancel.token ->
  session ->
  string ->
  partial
(** Like {!answers}, but a budget declared by [config] ([max_rows] /
    [max_elapsed]) degrades gracefully: instead of raising
    {!Engine.Budget.Exceeded} or {!Engine.Cancel.Cancelled}, execution
    stops producing rows once the budget is spent and the partial
    answers are returned with the corresponding flag set.

    [cancel] attaches an externally owned token to the execution (see
    {!Engine.Database.query_ast_within}): tripping it — e.g. when the
    requesting client disconnects — stops the query at its next
    checkpoint and sets the [cancelled] flag. *)

val answers_ast_within :
  ?config:Engine.Planner.config ->
  ?cancel:Engine.Cancel.token ->
  session ->
  Sql.Ast.query ->
  Dirty.Relation.t * Engine.Database.stop
(** Budgeted execution of an already-rewritten (prepared) query AST
    through the session's execution path — sharded scatter/gather when
    the session is sharded and the query is shardable, the plain
    engine otherwise.  The daemon's prepared-statement cache uses
    this. *)

val top_answers_within :
  ?config:Engine.Planner.config ->
  ?cancel:Engine.Cancel.token ->
  k:int ->
  session ->
  string ->
  partial
(** Budgeted {!top_answers}: the prefix of the ranked answers that the
    budget allowed, with the truncation flag. *)

val answers_above :
  ?config:Engine.Planner.config ->
  threshold:float ->
  session ->
  string ->
  Dirty.Relation.t
(** Clean answers whose probability is at least [threshold],
    implemented declaratively by attaching
    [HAVING SUM(...) >= threshold] to the rewritten query. *)

val answers_unchecked :
  ?config:Engine.Planner.config -> session -> string -> Dirty.Relation.t
(** Apply the rewriting without the Dfn 7 check (used to demonstrate
    Example 7's failure mode). *)

val answers_oracle :
  ?max_candidates:int -> session -> string -> Dirty.Relation.t
(** Clean answers via candidate enumeration (Dfn 5), independent of
    the rewriting.  Exponential; for small databases. *)

val original : ?config:Engine.Planner.config -> session -> string -> Dirty.Relation.t
(** Run the query as-is on the dirty database (the baseline the
    paper compares running times against). *)

val consistent_answers :
  ?config:Engine.Planner.config -> ?eps:float -> session -> string -> Dirty.Relation.t
(** Consistent answers in the sense of Arenas et al.: the clean
    answers whose probability is 1 (within [eps], default 1e-9),
    with the probability column dropped. *)

val answer_probability : Dirty.Relation.t -> Dirty.Relation.row -> float
(** Probability of an answer row of {!answers} (its last column).
    @raise Invalid_argument if the row has no numeric last column. *)
