examples/quickstart.mli:
