(** Cluster representatives (Section 4.1.2, Table 2).

    The representative of a cluster is the DCF obtained by recursively
    merging the DCFs of its member tuples.  A representative need not
    coincide with any tuple of the relation. *)

val of_rows : Matrix.t -> int list -> Infotheory.Dcf.t
(** Representative of the cluster containing the given row indices.
    @raise Invalid_argument on the empty cluster. *)

val all : Matrix.t -> Dirty.Cluster.t -> (Dirty.Value.t * Infotheory.Dcf.t) list
(** Representative per cluster, keyed by cluster identifier, in
    first-appearance order. *)

val modal_tuple : Matrix.t -> Infotheory.Dcf.t -> Dirty.Value.t list
(** The most frequent value per attribute under the representative's
    distribution — the "most frequent values" row of Table 4.  Ties
    break toward the lower interned symbol. *)

val pp_table :
  Matrix.t -> Format.formatter -> (Dirty.Value.t * Infotheory.Dcf.t) list -> unit
(** Render representatives as the value-by-cluster table of Table 2. *)
