let manifest_name = "manifest.csv"

let m_files_written =
  Telemetry.Metrics.counter "dirty.store.files_written"
    ~help:"files persisted by Store.save (tables and manifests)"

let m_bytes_written =
  Telemetry.Metrics.counter "dirty.store.bytes_written"
    ~help:"bytes persisted by Store.save"

let m_renames =
  Telemetry.Metrics.counter "dirty.store.renames"
    ~help:"atomic temp-to-final renames (the fsync-equivalent commit points)"

(* Run [f oc] against a temp file in [path]'s directory, then rename it
   into place.  The rename is atomic on POSIX filesystems, so readers
   (and crash recovery) only ever observe the old or the new complete
   file, never a partial write. *)
let write_atomic path f =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir ".store-" ".tmp" in
  match
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        f oc;
        (* pos_out counts buffered bytes too, so this is the file's
           final size *)
        pos_out oc)
  with
  | bytes ->
    Sys.rename tmp path;
    Telemetry.Metrics.inc m_files_written;
    Telemetry.Metrics.inc ~n:bytes m_bytes_written;
    Telemetry.Metrics.inc m_renames
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let save dir db =
  Telemetry.Span.with_ ~name:"store.save" ~attrs:[ ("dir", dir) ] @@ fun () ->
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    raise (Sys_error (dir ^ ": not a directory"));
  (* table files first, the manifest last: a crash mid-save leaves the
     previous manifest in place, so [load] never sees a database whose
     manifest names half-written tables *)
  List.iter
    (fun (t : Dirty_db.table) ->
      write_atomic
        (Filename.concat dir (t.name ^ ".csv"))
        (fun oc -> Csv.write_channel oc t.relation))
    (Dirty_db.tables db);
  let manifest =
    [ "name"; "id_attr"; "prob_attr" ]
    :: List.map
         (fun (t : Dirty_db.table) -> [ t.name; t.id_attr; t.prob_attr ])
         (Dirty_db.tables db)
  in
  write_atomic (Filename.concat dir manifest_name) (fun oc ->
      List.iter
        (fun fields ->
          output_string oc (Csv.render_line fields);
          output_char oc '\n')
        manifest)

let describe_exn = function
  | Sys_error msg -> msg
  | Dirty_db.Invalid msg -> msg
  | Invalid_argument msg -> msg
  | Failure msg -> msg
  | e -> Printexc.to_string e

let load_verbose ?(validate = true) ?(lenient = false) dir =
  Telemetry.Span.with_ ~name:"store.load" ~attrs:[ ("dir", dir) ] @@ fun () ->
  let manifest_path = Filename.concat dir manifest_name in
  let rows = Csv.read_file manifest_path in
  let entries =
    match rows with
    | [ "name"; "id_attr"; "prob_attr" ] :: entries -> entries
    | _ -> raise (Sys_error (manifest_path ^ ": malformed manifest header"))
  in
  let warnings = ref [] in
  let warn fmt = Printf.ksprintf (fun s -> warnings := s :: !warnings) fmt in
  let db =
    List.fold_left
      (fun db entry ->
        match entry with
        | [ name; id_attr; prob_attr ] -> (
          let path = Filename.concat dir (name ^ ".csv") in
          match
            let relation = Csv.load_file path in
            Dirty_db.make_table ~validate ~name ~id_attr ~prob_attr relation
          with
          | table -> Dirty_db.add_table db table
          | exception e when lenient ->
            warn "table %s skipped: %s" name (describe_exn e);
            db)
        | entry ->
          if lenient then begin
            warn "%s: malformed manifest row [%s] skipped" manifest_path
              (String.concat "," entry);
            db
          end
          else raise (Sys_error (manifest_path ^ ": malformed manifest row")))
      Dirty_db.empty entries
  in
  (db, List.rev !warnings)

let load ?validate ?lenient dir = fst (load_verbose ?validate ?lenient dir)
