test/test_prob.mli:
