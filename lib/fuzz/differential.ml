(* The differential core: run one fuzz case through both paths and
   compare.

   Operational path: [Rewritable.check], then [Rewrite.rewrite_exn],
   then engine execution — once per requested parallelism degree plus
   one row-at-a-time executor leg, since answers must be bit-identical
   at any [jobs] value and the chunked and row executors must agree.
   Declarative path: [Oracle.answers], candidate enumeration.

   A rejected query is not a failure — rejection is the fuzzer probing
   the class boundary — but acceptance followed by disagreement with
   the oracle is, as is any exception out of the rewrite or the
   engine on an accepted query. *)

type outcome =
  | Rejected of Conquer.Rewritable.violation list
  | Agree of { answers : int }
  | Mismatch of {
      jobs : int;
      chunked : bool;
      mismatch : Conquer.Oracle.mismatch;
    }
  | Oracle_too_large of { count : float }
  | Error_during of { stage : string; message : string }

let default_jobs = [ 1; 4 ]

let failing = function
  | Mismatch _ | Error_during _ -> true
  | Rejected _ | Agree _ | Oracle_too_large _ -> false

let to_string = function
  | Rejected vs ->
    "rejected: "
    ^ String.concat "; "
        (List.map Conquer.Rewritable.violation_to_string vs)
  | Agree { answers } -> Printf.sprintf "agree (%d answers)" answers
  | Mismatch { jobs; chunked; mismatch } ->
    Printf.sprintf "MISMATCH at jobs=%d (%s executor): %s" jobs
      (if chunked then "chunked" else "row")
      (Conquer.Oracle.mismatch_to_string mismatch)
  | Oracle_too_large { count } ->
    Printf.sprintf "oracle budget exceeded (%.0f candidates)" count
  | Error_during { stage; message } ->
    Printf.sprintf "ERROR during %s: %s" stage message

let run ?(jobs = default_jobs) ?(max_candidates = 200_000) (case : Case.t) =
  let env = Conquer.Dirty_schema.of_dirty_db case.db in
  match Conquer.Rewritable.check env case.query with
  | Error vs -> Rejected vs
  | Ok _ -> (
    match Conquer.Oracle.answers ~max_candidates case.db case.query with
    | exception Conquer.Oracle.Too_many_candidates { count; _ } ->
      Oracle_too_large { count }
    | exception e ->
      Error_during { stage = "oracle"; message = Printexc.to_string e }
    | oracle -> (
      match Conquer.Rewrite.rewrite_exn env case.query with
      | exception e ->
        Error_during { stage = "rewrite"; message = Printexc.to_string e }
      | rewritten ->
        let session = Conquer.Clean.create case.db in
        (* one leg per jobs value on the chunked executor, plus a
           serial row-at-a-time leg: chunked vs row disagreement is a
           real bug even when both agree across jobs values *)
        let legs =
          (1, false) :: List.map (fun j -> (j, true)) jobs
        in
        let rec check_legs = function
          | [] -> Agree { answers = Dirty.Relation.cardinality oracle }
          | (j, chunked) :: rest -> (
            let config =
              { Engine.Planner.default_config with jobs = j; chunked }
            in
            match
              Engine.Database.query_ast ~config
                (Conquer.Clean.engine session)
                rewritten
            with
            | exception e ->
              Error_during
                {
                  stage =
                    Printf.sprintf "execute (jobs=%d, %s executor)" j
                      (if chunked then "chunked" else "row");
                  message = Printexc.to_string e;
                }
            | answers -> (
              match Conquer.Oracle.compare_answers ~oracle answers with
              | Ok () -> check_legs rest
              | Error mismatch -> Mismatch { jobs = j; chunked; mismatch }))
        in
        check_legs legs))

(* Greedy shrinking: repeatedly take the first shrink candidate that
   still fails, until none does (or the step budget runs out).  Used
   both by the property tests' deliberate-bug check and the CLI's
   counterexample minimizer. *)
let minimize ?(max_steps = 500) still_failing (case : Case.t) =
  let steps = ref 0 in
  let exception Found of Case.t in
  let rec go case =
    if !steps >= max_steps then case
    else
      match
        Case.shrink case (fun candidate ->
            incr steps;
            if !steps <= max_steps && still_failing candidate then
              raise (Found candidate))
      with
      | () -> case
      | exception Found smaller -> go smaller
  in
  go case
