examples/citations.ml: Dirty List Printf Tpch
