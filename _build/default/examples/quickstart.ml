(* Quickstart: the paper's running example (Figure 2), end to end.

   Run with:  dune exec examples/quickstart.exe

   A dirty database contains duplicate tuples — alternative
   representations of the same real-world entity, marked with a shared
   identifier and a probability of being the clean one.  Queries are
   rewritten (RewriteClean, Section 3 of the paper) into plain SQL that
   returns each answer with its probability of being in the clean
   database. *)

module Value = Dirty.Value
module Relation = Dirty.Relation
module Schema = Dirty.Schema
module Dirty_db = Dirty.Dirty_db

let () =
  (* 1. Build the dirty tables.  Each has an identifier column (shared
     by duplicates) and a probability column (summing to 1 inside each
     cluster of duplicates). *)
  let v_s s = Value.String s
  and v_i i = Value.Int i
  and v_f f = Value.Float f in
  let orders =
    Relation.create
      (Schema.make
         [
           ("id", Value.TString);       (* order identifier *)
           ("custfk", Value.TString);   (* raw fk: a customer tuple key *)
           ("cidfk", Value.TString);    (* propagated fk: customer identifier *)
           ("quantity", Value.TInt);
           ("prob", Value.TFloat);
         ])
      [
        [| v_s "o1"; v_s "m1"; v_s "c1"; v_i 3; v_f 1.0 |];
        [| v_s "o2"; v_s "m2"; v_s "c1"; v_i 2; v_f 0.5 |];
        [| v_s "o2"; v_s "m3"; v_s "c2"; v_i 5; v_f 0.5 |];
      ]
  in
  let customer =
    Relation.create
      (Schema.make
         [
           ("id", Value.TString);
           ("custid", Value.TString);
           ("name", Value.TString);
           ("balance", Value.TInt);
           ("prob", Value.TFloat);
         ])
      [
        [| v_s "c1"; v_s "m1"; v_s "John"; v_i 20_000; v_f 0.7 |];
        [| v_s "c1"; v_s "m2"; v_s "John"; v_i 30_000; v_f 0.3 |];
        [| v_s "c2"; v_s "m3"; v_s "Mary"; v_i 27_000; v_f 0.2 |];
        [| v_s "c2"; v_s "m4"; v_s "Marion"; v_i 5_000; v_f 0.8 |];
      ]
  in
  let db =
    Dirty_db.empty
    |> Fun.flip Dirty_db.add_table
         (Dirty_db.make_table ~name:"orders" ~id_attr:"id" ~prob_attr:"prob"
            orders)
    |> Fun.flip Dirty_db.add_table
         (Dirty_db.make_table ~name:"customer" ~id_attr:"id" ~prob_attr:"prob"
            customer)
  in

  (* 2. Open a session: registers the tables in the embedded engine,
     indexes the identifiers and collects statistics. *)
  let session = Conquer.Clean.create db in

  (* 3. Ask for the orders of customers with a balance above $10K. *)
  let sql =
    "select o.id, c.id from orders o, customer c \
     where o.cidfk = c.id and c.balance > 10000"
  in

  (* The query must be in the rewritable class (Dfn 7): foreign-key
     joins forming a tree, no self-joins, root identifier selected. *)
  (match Conquer.Clean.rewrite session sql with
  | Ok rewritten -> Printf.printf "Rewritten query:\n%s\n\n" rewritten
  | Error violations ->
    List.iter
      (fun v -> print_endline (Conquer.Rewritable.violation_to_string v))
      violations;
    exit 1);

  (* 4. Clean answers: each row is paired with the probability that it
     is an answer over the (unknown) clean database. *)
  let answers = Conquer.Clean.answers session sql in
  print_endline "Clean answers:";
  print_string (Relation.to_string answers);

  (* 5. Cross-check against the possible-worlds oracle (Dfn 5) —
     exponential, but fine for 4 clusters. *)
  let oracle = Conquer.Clean.answers_oracle session sql in
  print_endline "\nPossible-worlds oracle agrees:";
  print_string (Relation.to_string oracle);

  (* 6. Consistent answers (Arenas et al.): the certain ones. *)
  let consistent = Conquer.Clean.consistent_answers session sql in
  print_endline "\nConsistent (probability-1) answers:";
  print_string (Relation.to_string consistent)
