(* Tests for the TPC-H workload substrate: generator invariants, the
   13 queries, identifier propagation, and the Cora study. *)

open Dirty

let small_config = { Tpch.Datagen.default with sf = 0.02; inconsistency = 3; seed = 11 }

let db = lazy (Tpch.Datagen.generate small_config)

(* ---- generator invariants ---- *)

let test_generated_db_valid () =
  Alcotest.(check (list string)) "valid dirty database" []
    (Dirty_db.validate (Lazy.force db))

let test_all_tables_present () =
  Alcotest.(check (list string)) "eight tables"
    [ "customer"; "lineitem"; "nation"; "orders"; "part"; "partsupp"; "region"; "supplier" ]
    (Dirty_db.table_names (Lazy.force db))

let test_cluster_sizes_bounded () =
  let db = Lazy.force db in
  let max_allowed = (2 * small_config.inconsistency) - 1 in
  List.iter
    (fun (t : Dirty_db.table) ->
      let m = Cluster.max_cluster_size t.clustering in
      Alcotest.(check bool)
        (Printf.sprintf "%s max cluster size %d <= %d" t.name m max_allowed)
        true (m <= max_allowed))
    (Dirty_db.tables db)

let test_clean_db_when_if_1 () =
  let clean =
    Tpch.Datagen.generate { small_config with inconsistency = 1 }
  in
  List.iter
    (fun (t : Dirty_db.table) ->
      Alcotest.(check int)
        (t.name ^ " all singletons")
        (Relation.cardinality t.relation)
        (Cluster.num_clusters t.clustering))
    (Dirty_db.tables clean)

let test_rowids_unique () =
  let db = Lazy.force db in
  List.iter
    (fun (spec : Tpch.Schema.table_spec) ->
      match spec.rowid_attr with
      | None -> ()
      | Some rowid ->
        let t = Dirty_db.find_table db spec.name in
        let col = Relation.column t.relation rowid in
        let seen = Hashtbl.create 64 in
        Array.iter
          (fun v ->
            let k = Value.to_string v in
            if Hashtbl.mem seen k then
              Alcotest.failf "%s: duplicate rowid %s" spec.name k;
            Hashtbl.replace seen k ())
          col)
    Tpch.Schema.all

let test_scaling_monotone () =
  let small = Tpch.Datagen.total_rows (Tpch.Datagen.generate { small_config with sf = 0.02 }) in
  let bigger = Tpch.Datagen.total_rows (Tpch.Datagen.generate { small_config with sf = 0.08 }) in
  Alcotest.(check bool) "more sf, more rows" true (bigger > 2 * small)

let test_inconsistency_changes_clusters_not_size () =
  (* sf fixes the database size; if only changes the cluster sizes *)
  let base = { small_config with sf = 0.3 } in
  let low = Tpch.Datagen.generate { base with inconsistency = 1 } in
  let high = Tpch.Datagen.generate { base with inconsistency = 5 } in
  let mean db =
    let t = Dirty_db.find_table db "lineitem" in
    Cluster.mean_cluster_size t.clustering
  in
  Alcotest.(check bool) "higher if, larger clusters" true
    (mean high > 2.0 *. mean low);
  let rows_low = Tpch.Datagen.total_rows low
  and rows_high = Tpch.Datagen.total_rows high in
  let ratio = float_of_int rows_high /. float_of_int rows_low in
  Alcotest.(check bool)
    (Printf.sprintf "row counts comparable (ratio %.2f)" ratio)
    true
    (ratio > 0.4 && ratio < 2.5)

let test_deterministic_by_seed () =
  let a = Tpch.Datagen.generate small_config in
  let b = Tpch.Datagen.generate small_config in
  List.iter2
    (fun (ta : Dirty_db.table) (tb : Dirty_db.table) ->
      Alcotest.(check bool)
        (ta.name ^ " reproducible")
        true
        (Relation.equal_as_bags ta.relation tb.relation))
    (Dirty_db.tables a) (Dirty_db.tables b)

let test_foreign_keys_resolve () =
  let db = Lazy.force db in
  let ids name attr =
    let t = Dirty_db.find_table db name in
    let seen = Hashtbl.create 64 in
    Array.iter
      (fun v -> Hashtbl.replace seen (Value.to_string v) ())
      (Relation.column t.relation attr);
    seen
  in
  let check_fk src attr target target_id =
    let targets = ids target target_id in
    let t = Dirty_db.find_table db src in
    Array.iter
      (fun v ->
        if not (Hashtbl.mem targets (Value.to_string v)) then
          Alcotest.failf "%s.%s = %s has no target in %s" src attr
            (Value.to_string v) target)
      (Relation.column t.relation attr)
  in
  check_fk "orders" "o_custkey" "customer" "c_custkey";
  check_fk "lineitem" "l_orderkey" "orders" "o_orderkey";
  check_fk "lineitem" "l_psid" "partsupp" "ps_id";
  check_fk "partsupp" "ps_partkey" "part" "p_partkey";
  check_fk "partsupp" "ps_suppkey" "supplier" "s_suppkey";
  check_fk "customer" "c_nationkey" "nation" "n_nationkey";
  check_fk "nation" "n_regionkey" "region" "r_regionkey"

(* ---- propagation round-trip ---- *)

let test_propagate_all_is_consistent () =
  (* the generator emits propagated fks directly; re-running the
     propagation from the raw fks must reproduce them *)
  let db = Lazy.force db in
  let before =
    List.map (fun (t : Dirty_db.table) -> (t.name, t.relation)) (Dirty_db.tables db)
  in
  let after = Tpch.Datagen.propagate_all db in
  List.iter
    (fun (name, rel) ->
      let rel' = (Dirty_db.find_table after name).relation in
      Alcotest.(check bool) (name ^ " unchanged by re-propagation") true
        (Relation.equal_as_bags rel rel'))
    before

(* ---- probability assignment on generated data ---- *)

let test_assign_probabilities_valid () =
  let db = Tpch.Datagen.assign_probabilities (Lazy.force db) in
  Alcotest.(check (list string)) "valid after assignment" []
    (Dirty_db.validate db)

(* ---- the 13 queries ---- *)

let session = lazy (Conquer.Clean.create (Lazy.force db))

let test_all_queries_rewritable () =
  let s = Lazy.force session in
  List.iter
    (fun (q : Tpch.Queries.query) ->
      match Conquer.Clean.check s q.sql with
      | Ok _ -> ()
      | Error vs ->
        Alcotest.failf "Q%d not rewritable: %s" q.qid
          (String.concat "; "
             (List.map Conquer.Rewritable.violation_to_string vs)))
    Tpch.Queries.all

let test_all_queries_run () =
  let s = Lazy.force session in
  List.iter
    (fun (q : Tpch.Queries.query) ->
      let original = Conquer.Clean.original s q.sql in
      let rewritten = Conquer.Clean.answers s q.sql in
      (* each clean answer's probability lies in (0, 1] *)
      let prob_idx =
        Schema.index_of (Relation.schema rewritten) Conquer.Rewrite.prob_column
      in
      Relation.iter
        (fun row ->
          match Value.to_float row.(prob_idx) with
          | Some p ->
            if p <= 0.0 || p > 1.0 +. 1e-9 then
              Alcotest.failf "Q%d probability %f out of range" q.qid p
          | None -> Alcotest.failf "Q%d non-numeric probability" q.qid)
        rewritten;
      (* grouping can only reduce cardinality *)
      Alcotest.(check bool)
        (Printf.sprintf "Q%d |rewritten| <= |original|" q.qid)
        true
        (Relation.cardinality rewritten <= Relation.cardinality original))
    Tpch.Queries.all

let test_query_count () =
  Alcotest.(check int) "thirteen queries" 13 (List.length Tpch.Queries.all);
  Alcotest.(check (list int)) "the paper's numbers"
    [ 1; 2; 3; 4; 6; 9; 10; 11; 12; 14; 17; 18; 20 ]
    (List.map (fun (q : Tpch.Queries.query) -> q.qid) Tpch.Queries.all)

let test_q3_no_order_by_same_rows () =
  let s = Lazy.force session in
  let with_ob = Conquer.Clean.answers s (Tpch.Queries.find 3).sql in
  let without = Conquer.Clean.answers s Tpch.Queries.q3_no_order_by.sql in
  Alcotest.(check bool) "same bag of answers" true
    (Relation.equal_as_bags with_ob without)

let test_q18_original_form () =
  (* the genuine Q18 (with its IN/HAVING subquery) runs on the engine,
     is rejected by the Dfn 7 checker, and is answerable by sampling *)
  let s = Lazy.force session in
  let q = Tpch.Queries.q18_original_form in
  let direct = Conquer.Clean.original s q.sql in
  Alcotest.(check bool) "engine evaluates the subquery" true
    (Relation.cardinality direct >= 0);
  (match Conquer.Clean.check s q.sql with
  | Ok _ -> Alcotest.fail "subquery form must not be rewritable"
  | Error vs ->
    Alcotest.(check bool) "rejected as non-SPJ" true
      (List.exists
         (function Conquer.Rewritable.Not_spj _ -> true | _ -> false)
         vs));
  let sampled = Conquer.Sampler.answers ~seed:2 ~samples:30 s q.sql in
  let prob_idx =
    Schema.index_of (Relation.schema sampled) Conquer.Rewrite.prob_column
  in
  Relation.iter
    (fun row ->
      let p = Option.get (Value.to_float row.(prob_idx)) in
      Alcotest.(check bool) "estimates in (0,1]" true (p > 0.0 && p <= 1.0))
    sampled

let test_clean_database_rewriting_is_identity_like () =
  (* on a clean database (if = 1) every clean answer has probability 1 *)
  let clean = Tpch.Datagen.generate { small_config with inconsistency = 1 } in
  let s = Conquer.Clean.create clean in
  let q = Tpch.Queries.find 6 in
  let rewritten = Conquer.Clean.answers s q.sql in
  let prob_idx =
    Schema.index_of (Relation.schema rewritten) Conquer.Rewrite.prob_column
  in
  Relation.iter
    (fun row ->
      match Value.to_float row.(prob_idx) with
      | Some p -> Fixtures.check_float "certain answer" 1.0 p
      | None -> Alcotest.fail "non-numeric probability")
    rewritten;
  let original = Conquer.Clean.original s q.sql in
  Alcotest.(check int) "same cardinality as original"
    (Relation.cardinality original)
    (Relation.cardinality rewritten)

(* ---- .tbl loading and dirtify ---- *)

let write_tbl dir name lines =
  let oc = open_out (Filename.concat dir (name ^ ".tbl")) in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> List.iter (fun l -> output_string oc (l ^ "\n")) lines)

let with_tbl_dir f =
  let dir = Filename.temp_file "tpch" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun x -> Sys.remove (Filename.concat dir x)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      write_tbl dir "region" [ "0|AMERICA|comment|" ];
      write_tbl dir "nation" [ "0|CANADA|0|comment|" ];
      write_tbl dir "supplier" [ "1|Supplier#1|addr one|0|11-123|100.50|c|" ];
      write_tbl dir "part"
        [ "1|green copper|Mfgr#1|Brand#12|STANDARD TIN|7|SM BOX|901.00|c|" ];
      write_tbl dir "partsupp" [ "1|1|500|10.25|c|" ];
      write_tbl dir "customer"
        [
          "1|Customer#1|someplace|0|11-999|3000.00|BUILDING|c|";
          "2|Customer#2|elsewhere|0|11-888|-50.00|AUTOMOBILE|c|";
        ];
      write_tbl dir "orders"
        [
          "10|1|O|1000.00|1995-01-15|1-URGENT|Clerk#1|0|c|";
          "11|2|F|2000.00|1996-06-01|5-LOW|Clerk#2|0|c|";
        ];
      write_tbl dir "lineitem"
        [
          "10|1|1|1|17|17000.00|0.04|0.02|N|O|1995-02-01|1995-02-10|1995-02-20|NONE|AIR|c|";
          "11|1|1|1|3|3000.00|0.00|0.00|R|F|1996-06-10|1996-06-15|1996-06-20|NONE|MAIL|c|";
        ];
      f dir)

let test_tbl_parse_line () =
  Alcotest.(check (list string)) "trailing separator" [ "1"; "x"; "y" ]
    (Tpch.Tbl.parse_line "1|x|y|");
  Alcotest.(check (list string)) "no trailing separator" [ "1"; "x" ]
    (Tpch.Tbl.parse_line "1|x")

let test_tbl_load_dir () =
  with_tbl_dir (fun dir ->
      let db = Tpch.Tbl.load_dir dir in
      Alcotest.(check (list string)) "validates clean" [] (Dirty_db.validate db);
      let customer = Dirty_db.find_table db "customer" in
      Alcotest.(check int) "two customers" 2
        (Relation.cardinality customer.relation);
      Alcotest.(check int) "singleton clusters" 2
        (Cluster.num_clusters customer.clustering);
      (* queries run over the loaded data *)
      let s = Conquer.Clean.create db in
      let r =
        Conquer.Clean.answers s
          "select l_id, o_orderkey from lineitem, orders \
           where l_orderkey = o_orderkey"
      in
      Alcotest.(check int) "join works" 2 (Relation.cardinality r))

let test_tbl_lineitem_psid_linked () =
  with_tbl_dir (fun dir ->
      let db = Tpch.Tbl.load_dir dir in
      let s = Conquer.Clean.create db in
      let r =
        Conquer.Clean.answers s
          "select l_id, ps_supplycost from lineitem, partsupp \
           where l_psid = ps_id"
      in
      Alcotest.(check int) "partsupp link resolves" 2 (Relation.cardinality r))

let test_dirtify () =
  with_tbl_dir (fun dir ->
      let clean = Tpch.Tbl.load_dir dir in
      let dirty =
        Tpch.Datagen.dirtify
          ~config:{ Tpch.Datagen.default with inconsistency = 4; seed = 9 }
          clean
      in
      Alcotest.(check (list string)) "still a valid dirty db" []
        (Dirty_db.validate dirty);
      let customer = Dirty_db.find_table dirty "customer" in
      (* same entities, more rows *)
      Alcotest.(check int) "entities preserved" 2
        (Cluster.num_clusters customer.clustering);
      Alcotest.(check bool) "duplicates injected" true
        (Relation.cardinality customer.relation >= 2);
      (* lookup tables untouched *)
      let region = Dirty_db.find_table dirty "region" in
      Alcotest.(check int) "region untouched" 1
        (Relation.cardinality region.relation);
      (* identifiers and fks are preserved, so joins still resolve *)
      let s = Conquer.Clean.create dirty in
      let r =
        Conquer.Clean.answers s
          "select l_id, o_orderkey from lineitem, orders \
           where l_orderkey = o_orderkey"
      in
      Alcotest.(check bool) "join non-empty" true (Relation.cardinality r > 0);
      (* every answer's probability is a valid probability *)
      let prob_idx =
        Schema.index_of (Relation.schema r) Conquer.Rewrite.prob_column
      in
      Relation.iter
        (fun row ->
          let p = Option.get (Value.to_float row.(prob_idx)) in
          Alcotest.(check bool) "probability in (0,1]" true (p > 0.0 && p <= 1.0 +. 1e-9))
        r)

let test_dirtify_rowids_stay_unique () =
  with_tbl_dir (fun dir ->
      let dirty =
        Tpch.Datagen.dirtify
          ~config:{ Tpch.Datagen.default with inconsistency = 3; seed = 4 }
          (Tpch.Tbl.load_dir dir)
      in
      List.iter
        (fun (spec : Tpch.Schema.table_spec) ->
          match spec.rowid_attr with
          | None -> ()
          | Some rowid -> (
            match Dirty_db.find_table_opt dirty spec.name with
            | None -> ()
            | Some t ->
              let seen = Hashtbl.create 16 in
              Array.iter
                (fun v ->
                  let k = Value.to_string v in
                  if Hashtbl.mem seen k then
                    Alcotest.failf "%s: duplicate rowid %s" spec.name k;
                  Hashtbl.replace seen k ())
                (Relation.column t.relation rowid)))
        Tpch.Schema.all)

(* ---- Cora (Table 4) ---- *)

let test_cora_structure () =
  let g = Tpch.Cora.generate Tpch.Cora.default in
  Alcotest.(check int) "56 tuples" 56 (Relation.cardinality g.relation);
  Alcotest.(check int) "single cluster" 1 (Cluster.num_clusters g.clustering);
  Alcotest.(check bool) "has canonical rows" true (g.canonical_rows <> []);
  Alcotest.(check bool) "has variant rows" true (g.variant_rows <> []);
  Alcotest.(check bool) "foreign row planted" true (Option.is_some g.foreign_row)

let test_cora_probabilities_sum () =
  let g = Tpch.Cora.generate Tpch.Cora.default in
  let ranking = Tpch.Cora.ranking g in
  let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 ranking in
  Fixtures.check_float ~eps:1e-6 "sums to 1" 1.0 total

let test_cora_ranking_table4 () =
  let g = Tpch.Cora.generate Tpch.Cora.default in
  let ranking = Tpch.Cora.ranking g in
  (* Table 4's claim: the most likely tuple carries the most frequent
     values (a canonical row); the least likely tuple is the
     mis-clustered one *)
  (match ranking with
  | (top, _) :: _ ->
    Alcotest.(check bool) "top is canonical" true
      (List.mem top g.canonical_rows)
  | [] -> Alcotest.fail "empty ranking");
  let bottom, _ = List.nth ranking (List.length ranking - 1) in
  Alcotest.(check (option int)) "bottom is the foreign tuple"
    g.foreign_row (Some bottom)

let test_cora_without_foreign () =
  let g =
    Tpch.Cora.generate { Tpch.Cora.default with plant_foreign = false }
  in
  Alcotest.(check (option int)) "no foreign row" None g.foreign_row;
  let ranking = Tpch.Cora.ranking g in
  (* variants rank below canonicals *)
  let bottom, _ = List.nth ranking (List.length ranking - 1) in
  Alcotest.(check bool) "bottom is a variant" true (List.mem bottom g.variant_rows)

let () =
  Alcotest.run "tpch"
    [
      ( "generator",
        [
          Alcotest.test_case "valid dirty db" `Quick test_generated_db_valid;
          Alcotest.test_case "all tables" `Quick test_all_tables_present;
          Alcotest.test_case "cluster sizes bounded" `Quick
            test_cluster_sizes_bounded;
          Alcotest.test_case "if=1 is clean" `Quick test_clean_db_when_if_1;
          Alcotest.test_case "rowids unique" `Quick test_rowids_unique;
          Alcotest.test_case "sf scaling" `Quick test_scaling_monotone;
          Alcotest.test_case "if changes clusters not size" `Quick
            test_inconsistency_changes_clusters_not_size;
          Alcotest.test_case "seed determinism" `Quick test_deterministic_by_seed;
          Alcotest.test_case "foreign keys resolve" `Quick
            test_foreign_keys_resolve;
        ] );
      ( "propagation",
        [
          Alcotest.test_case "re-propagation consistent" `Quick
            test_propagate_all_is_consistent;
        ] );
      ( "probabilities",
        [
          Alcotest.test_case "assignment valid" `Quick
            test_assign_probabilities_valid;
        ] );
      ( "queries",
        [
          Alcotest.test_case "thirteen queries" `Quick test_query_count;
          Alcotest.test_case "all rewritable" `Quick test_all_queries_rewritable;
          Alcotest.test_case "all run with sane probabilities" `Quick
            test_all_queries_run;
          Alcotest.test_case "q3 order-by variant" `Quick
            test_q3_no_order_by_same_rows;
          Alcotest.test_case "q18 original subquery form" `Quick
            test_q18_original_form;
          Alcotest.test_case "clean db gives certainty" `Quick
            test_clean_database_rewriting_is_identity_like;
        ] );
      ( "tbl loader & dirtify",
        [
          Alcotest.test_case "parse line" `Quick test_tbl_parse_line;
          Alcotest.test_case "load dir" `Quick test_tbl_load_dir;
          Alcotest.test_case "partsupp link" `Quick test_tbl_lineitem_psid_linked;
          Alcotest.test_case "dirtify" `Quick test_dirtify;
          Alcotest.test_case "dirtify rowids unique" `Quick
            test_dirtify_rowids_stay_unique;
        ] );
      ( "cora (Table 4)",
        [
          Alcotest.test_case "structure" `Quick test_cora_structure;
          Alcotest.test_case "probabilities sum" `Quick
            test_cora_probabilities_sum;
          Alcotest.test_case "ranking" `Quick test_cora_ranking_table4;
          Alcotest.test_case "without foreign tuple" `Quick
            test_cora_without_foreign;
        ] );
    ]
