lib/tpch/schema.ml: Dirty List Schema Value
