lib/sql/pretty.mli: Ast Format
