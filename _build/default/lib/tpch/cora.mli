(** Synthetic citation clusters for the Table 4 qualitative study.

    The paper evaluates the probability assignment on the Cora
    research-paper dataset (duplicated citation records), showing for
    a 56-tuple cluster of a Schapire publication that the most likely
    tuples agree with the cluster's most frequent attribute values
    while the least likely tuples are either heavily reformatted or
    belong to a different publication (mis-clustered).

    Cora itself is not redistributable here, so this module generates
    clusters with the same structure: a canonical citation, many
    near-identical copies, a few copies with formatting variations
    (abbreviated authors, different page/volume notation, NULLs), and
    optionally one planted tuple from a {e different} publication. *)

type config = {
  cluster_size : int;  (** total tuples in the cluster (default 56) *)
  variant_fraction : float;
      (** fraction of tuples with format variations (default 0.25) *)
  plant_foreign : bool;
      (** plant one mis-clustered tuple from another publication
          (default true) *)
  seed : int;
}

val default : config

type generated = {
  relation : Dirty.Relation.t;
      (** schema: author, title, venue, volume, year, pages, cluster *)
  attrs : string list;  (** the six descriptive attributes *)
  clustering : Dirty.Cluster.t;
  canonical_rows : int list;  (** rows identical to the canonical form *)
  variant_rows : int list;  (** rows with formatting variations *)
  foreign_row : int option;  (** the planted mis-clustered row *)
}

val generate : config -> generated

val ranking : generated -> (int * float) list
(** Rows with their assigned probabilities (Figure 5, information-loss
    distance), sorted most likely first. *)
