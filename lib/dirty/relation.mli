(** Materialized relations: a schema and an array of rows.

    Relations are bag-semantics (duplicate rows allowed) as in SQL.
    Rows are immutable by convention: operations return fresh
    relations. *)

type row = Value.t array
type t

val create : Schema.t -> row list -> t
(** @raise Invalid_argument if a row's arity differs from the schema's. *)

val of_array : Schema.t -> row array -> t
val schema : t -> Schema.t
val cardinality : t -> int
val rows : t -> row array
(** The backing array; callers must not mutate it. *)

val row_list : t -> row list
val get : t -> int -> row
val is_empty : t -> bool

val iter : (row -> unit) -> t -> unit
val fold : ('a -> row -> 'a) -> 'a -> t -> 'a
val filter : (row -> bool) -> t -> t
val map_rows : Schema.t -> (row -> row) -> t -> t

val column : t -> string -> Value.t array
(** All values of the named attribute, in row order. *)

val column_slice : t -> col:int -> lo:int -> len:int -> Value.t array
(** [column_slice t ~col ~lo ~len] is the values of column [col]
    (by position) for rows [lo .. lo+len-1], in row order — the
    row-major to column-major pivot used by columnar extraction. *)

val value : t -> row -> string -> Value.t
(** [value t row attr] looks up [attr] in [t]'s schema and returns the
    row's value there. *)

val project : t -> string list -> t
val sort_by : (row -> row -> int) -> t -> t
val distinct : t -> t
(** Set-semantics copy: removes duplicate rows (first occurrence order
    preserved). *)

val append : t -> t -> t
(** Bag union of two relations over the same schema.
    @raise Invalid_argument when schemas differ. *)

val equal_as_bags : t -> t -> bool
(** True when both relations contain the same rows with the same
    multiplicities (order-insensitive). *)

val pp : ?max_rows:int -> Format.formatter -> t -> unit
(** Table-style printer used by the CLI and the examples. *)

val to_string : ?max_rows:int -> t -> string
