lib/conquer/clean.ml: Array Candidates Dirty Dirty_db Dirty_schema Engine List Logs Relation Rewritable Rewrite Schema Sql Value
