module Imap = Map.Make (Int)

type t = float Imap.t

let log2 x = Float.log x /. Float.log 2.0

let of_assoc pairs =
  List.fold_left
    (fun acc (sym, mass) ->
      if mass < 0.0 then invalid_arg "Dist.of_assoc: negative mass"
      else if mass = 0.0 then acc
      else
        Imap.update sym
          (function None -> Some mass | Some m -> Some (m +. mass))
          acc)
    Imap.empty pairs

let uniform symbols =
  match symbols with
  | [] -> invalid_arg "Dist.uniform: empty support"
  | _ ->
    let p = 1.0 /. float_of_int (List.length symbols) in
    of_assoc (List.map (fun s -> (s, p)) symbols)

let singleton sym = Imap.singleton sym 1.0
let prob t sym = Option.value ~default:0.0 (Imap.find_opt sym t)
let support t = List.map fst (Imap.bindings t)
let support_size t = Imap.cardinal t
let total_mass t = Imap.fold (fun _ m acc -> acc +. m) t 0.0
let is_normalized ?(eps = 1e-9) t = Float.abs (total_mass t -. 1.0) <= eps

let normalize t =
  let z = total_mass t in
  if z <= 0.0 then invalid_arg "Dist.normalize: zero mass"
  else Imap.map (fun m -> m /. z) t

let scale w t = Imap.map (fun m -> m *. w) t

let mix weighted =
  List.fold_left
    (fun acc (w, d) ->
      Imap.fold
        (fun sym m acc ->
          let contribution = w *. m in
          if contribution = 0.0 then acc
          else
            Imap.update sym
              (function None -> Some contribution | Some x -> Some (x +. contribution))
              acc)
        d acc)
    Imap.empty weighted

let fold f t init = Imap.fold f t init

let entropy t =
  Imap.fold (fun _ p acc -> if p > 0.0 then acc -. (p *. log2 p) else acc) t 0.0

let kl_divergence p q =
  Imap.fold
    (fun sym pp acc ->
      if pp <= 0.0 then acc
      else
        let qq = prob q sym in
        if qq <= 0.0 then
          invalid_arg "Dist.kl_divergence: support of p not contained in q"
        else acc +. (pp *. log2 (pp /. qq)))
    p 0.0

let js_divergence ?(w1 = 0.5) ?(w2 = 0.5) p q =
  let m = mix [ (w1, p); (w2, q) ] in
  (* when the weights do not sum to 1 the mixture must be renormalized
     for the KL terms to be well defined *)
  let m = if Float.abs (w1 +. w2 -. 1.0) <= 1e-12 then m else normalize m in
  (w1 *. kl_divergence p m) +. (w2 *. kl_divergence q m)

let equal ?(eps = 1e-9) a b =
  let keys = List.sort_uniq Int.compare (support a @ support b) in
  List.for_all (fun k -> Float.abs (prob a k -. prob b k) <= eps) keys

let pp fmt t =
  Format.fprintf fmt "{";
  let first = ref true in
  Imap.iter
    (fun sym p ->
      if not !first then Format.fprintf fmt ", ";
      first := false;
      Format.fprintf fmt "%d:%.4g" sym p)
    t;
  Format.fprintf fmt "}"
