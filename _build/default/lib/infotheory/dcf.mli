(** Distributional Cluster Features (Section 4.1.2 of the paper,
    after LIMBO).

    A DCF summarizes a cluster [c] as the pair
    [(|c|, p(V | c))]: the cluster's cardinality and the conditional
    distribution of attribute values given the cluster. *)

type t = private {
  weight : float;  (** cluster cardinality |c| (can be fractional
                       after weighted merges) *)
  dist : Dist.t;  (** p(v | c), normalized *)
}

val make : weight:float -> Dist.t -> t
(** @raise Invalid_argument if [weight <= 0] or the distribution is
    not normalized (1e-6 tolerance). *)

val of_symbols : int list -> t
(** DCF of a single tuple containing the given [m] attribute values:
    weight 1, probability [1/m] on each value (Section 4.1.1). *)

val merge : t -> t -> t
(** The paper's recursive DCF merge: the merged weight is
    [|c1| + |c2|] and the merged conditional is the
    cardinality-weighted average of the two conditionals. *)

val merge_many : t list -> t
(** Left fold of {!merge}. @raise Invalid_argument on the empty
    list. *)

val information_loss : total:float -> t -> t -> float
(** [information_loss ~total d1 d2] is the mutual-information loss
    [I(C;V) − I(C';V)] incurred by merging the two clusters, where
    [total] is the total number of tuples [n] (so cluster priors are
    [weight/n]).  By the standard identity this equals
    [(w1+w2)/n · JS_{π1,π2}(p1, p2)] with [πi = wi/(w1+w2)];
    {!Mutual_info} provides the direct computation used to
    cross-check this in tests. *)

val pp : Format.formatter -> t -> unit
