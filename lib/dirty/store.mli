(** Directory persistence for dirty databases.

    A database is saved as one CSV file per table plus a
    [manifest.csv] recording each table's identifier and probability
    attributes:

    {v
    dir/
      manifest.csv      -- name,id_attr,prob_attr
      customer.csv
      orders.csv
    v}

    Writes are crash-safe: each file is written to a temporary name in
    the same directory and renamed into place (atomic on POSIX), and
    the manifest is written {e after} every table file, so a process
    killed mid-{!save} never leaves a manifest naming a half-written
    table — {!load} sees either the previous database or the new one,
    complete. *)

val save : string -> Dirty_db.t -> unit
(** Write the database into the directory (created if missing;
    existing table files are overwritten atomically). *)

val load : ?validate:bool -> ?lenient:bool -> string -> Dirty_db.t
(** Load a database saved by {!save}.  When [validate] (default
    [true]) the per-cluster probability sums are re-checked.  When
    [lenient] (default [false]), corrupt or invalid tables and
    malformed manifest rows are skipped instead of aborting the whole
    load (use {!load_verbose} to see what was skipped); a missing or
    header-corrupt manifest is still fatal, since nothing can be
    loaded without it.
    @raise Sys_error / Dirty_db.Invalid on missing or malformed
    files (non-lenient mode). *)

val load_verbose :
  ?validate:bool -> ?lenient:bool -> string -> Dirty_db.t * string list
(** Like {!load}, also returning the warnings collected while loading
    (always empty when [lenient] is false, since problems raise). *)
