lib/tpch/datagen.mli: Dirty Prob
