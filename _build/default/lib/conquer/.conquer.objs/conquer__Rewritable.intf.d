lib/conquer/rewritable.mli: Dirty_schema Join_graph Sql
