lib/engine/index.ml: Array Dirty Hashtbl Option Relation Schema Value
