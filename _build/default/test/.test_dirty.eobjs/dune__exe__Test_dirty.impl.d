test/test_dirty.ml: Alcotest Array Cluster Conquer Csv Dirty Dirty_db Filename Fixtures Fun List Option Relation Schema Store String Sys Value
