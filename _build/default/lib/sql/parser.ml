open Ast

exception Error of string

type state = { tokens : (Lexer.token * int) array; mutable pos : int }

let errorf state fmt =
  let tok, pos = state.tokens.(state.pos) in
  Printf.ksprintf
    (fun msg ->
      raise
        (Error
           (Printf.sprintf "%s at position %d (found %s)" msg pos
              (Lexer.token_to_string tok))))
    fmt

let peek state = fst state.tokens.(state.pos)

let advance state =
  let tok = peek state in
  if tok <> Lexer.EOF then state.pos <- state.pos + 1;
  tok

let expect state tok what =
  if peek state = tok then ignore (advance state) else errorf state "expected %s" what

let accept state tok = if peek state = tok then (ignore (advance state); true) else false

let accept_keyword state kw = accept state (Lexer.KEYWORD kw)

let expect_keyword state kw = expect state (Lexer.KEYWORD kw) kw

let expect_ident state what =
  match peek state with
  | Lexer.IDENT name ->
    ignore (advance state);
    name
  | _ -> errorf state "expected %s" what

(* ---- expressions ---- *)

let agg_of_keyword = function
  | "COUNT" -> Some Count
  | "SUM" -> Some Sum
  | "AVG" -> Some Avg
  | "MIN" -> Some Min
  | "MAX" -> Some Max
  | _ -> None

let parse_literal state =
  match advance state with
  | Lexer.INT i -> Dirty.Value.Int i
  | Lexer.FLOAT f -> Dirty.Value.Float f
  | Lexer.STRING s -> Dirty.Value.String s
  | Lexer.KEYWORD "NULL" -> Dirty.Value.Null
  | Lexer.KEYWORD "TRUE" -> Dirty.Value.Bool true
  | Lexer.KEYWORD "FALSE" -> Dirty.Value.Bool false
  | Lexer.KEYWORD "DATE" -> (
    match advance state with
    | Lexer.STRING s -> (
      try Dirty.Value.date_of_string s
      with Invalid_argument msg -> raise (Error msg))
    | _ ->
      state.pos <- state.pos - 1;
      errorf state "expected date string after DATE")
  | _ ->
    state.pos <- state.pos - 1;
    errorf state "expected literal"

let rec parse_or state =
  let lhs = parse_and state in
  if accept_keyword state "OR" then Binop (Or, lhs, parse_or state) else lhs

and parse_and state =
  let lhs = parse_not state in
  if accept_keyword state "AND" then Binop (And, lhs, parse_and state) else lhs

and parse_not state =
  if accept_keyword state "NOT" then Unop (Not, parse_not state)
  else parse_predicate state

and parse_predicate state =
  let lhs = parse_additive state in
  match peek state with
  | Lexer.OP (("=" | "<>" | "<" | "<=" | ">" | ">=") as op) ->
    ignore (advance state);
    let rhs = parse_additive state in
    let binop =
      match op with
      | "=" -> Eq
      | "<>" -> Neq
      | "<" -> Lt
      | "<=" -> Le
      | ">" -> Gt
      | _ -> Ge
    in
    Binop (binop, lhs, rhs)
  | Lexer.KEYWORD "LIKE" ->
    ignore (advance state);
    parse_like state lhs ~negated:false
  | Lexer.KEYWORD "NOT" -> (
    ignore (advance state);
    match advance state with
    | Lexer.KEYWORD "LIKE" -> parse_like state lhs ~negated:true
    | Lexer.KEYWORD "IN" -> Unop (Not, parse_in state lhs)
    | Lexer.KEYWORD "BETWEEN" -> Unop (Not, parse_between state lhs)
    | _ ->
      state.pos <- state.pos - 1;
      errorf state "expected LIKE, IN or BETWEEN after NOT")
  | Lexer.KEYWORD "IN" ->
    ignore (advance state);
    parse_in state lhs
  | Lexer.KEYWORD "BETWEEN" ->
    ignore (advance state);
    parse_between state lhs
  | Lexer.KEYWORD "IS" ->
    ignore (advance state);
    let negated = accept_keyword state "NOT" in
    expect_keyword state "NULL";
    if negated then Is_not_null lhs else Is_null lhs
  | _ -> lhs

and parse_like state lhs ~negated =
  match advance state with
  | Lexer.STRING pattern ->
    if negated then Not_like (lhs, pattern) else Like (lhs, pattern)
  | _ ->
    state.pos <- state.pos - 1;
    errorf state "expected pattern string after LIKE"

and parse_in state lhs =
  expect state Lexer.LPAREN "(";
  if peek state = Lexer.KEYWORD "SELECT" then begin
    let q = parse_query_state state in
    expect state Lexer.RPAREN ")";
    In_query (lhs, q)
  end
  else begin
    let rec items acc =
      let v = parse_literal state in
      if accept state Lexer.COMMA then items (v :: acc) else List.rev (v :: acc)
    in
    let values = items [] in
    expect state Lexer.RPAREN ")";
    In_list (lhs, values)
  end

and parse_between state lhs =
  let lo = parse_additive state in
  expect_keyword state "AND";
  let hi = parse_additive state in
  Between (lhs, lo, hi)

and parse_additive state =
  let lhs = ref (parse_multiplicative state) in
  let continue = ref true in
  while !continue do
    match peek state with
    | Lexer.OP "+" ->
      ignore (advance state);
      lhs := Binop (Add, !lhs, parse_multiplicative state)
    | Lexer.OP "-" ->
      ignore (advance state);
      lhs := Binop (Sub, !lhs, parse_multiplicative state)
    | _ -> continue := false
  done;
  !lhs

and parse_multiplicative state =
  let lhs = ref (parse_unary state) in
  let continue = ref true in
  while !continue do
    match peek state with
    | Lexer.OP "*" ->
      ignore (advance state);
      lhs := Binop (Mul, !lhs, parse_unary state)
    | Lexer.OP "/" ->
      ignore (advance state);
      lhs := Binop (Div, !lhs, parse_unary state)
    | _ -> continue := false
  done;
  !lhs

and parse_unary state =
  if accept state (Lexer.OP "-") then Unop (Neg, parse_unary state)
  else parse_primary state

and parse_primary state =
  match peek state with
  | Lexer.LPAREN ->
    ignore (advance state);
    if peek state = Lexer.KEYWORD "SELECT" then begin
      let q = parse_query_state state in
      expect state Lexer.RPAREN ")";
      Scalar_subquery q
    end
    else begin
      let e = parse_or state in
      expect state Lexer.RPAREN ")";
      e
    end
  | Lexer.KEYWORD "EXISTS" ->
    ignore (advance state);
    expect state Lexer.LPAREN "(";
    let q = parse_query_state state in
    expect state Lexer.RPAREN ")";
    Exists q
  | Lexer.INT _ | Lexer.FLOAT _ | Lexer.STRING _
  | Lexer.KEYWORD ("NULL" | "TRUE" | "FALSE" | "DATE") ->
    Lit (parse_literal state)
  | Lexer.KEYWORD kw when agg_of_keyword kw <> None ->
    ignore (advance state);
    let agg = Option.get (agg_of_keyword kw) in
    expect state Lexer.LPAREN "(";
    let arg =
      if agg = Count && accept state (Lexer.OP "*") then None
      else Some (parse_or state)
    in
    expect state Lexer.RPAREN ")";
    Agg (agg, arg)
  | Lexer.IDENT first ->
    ignore (advance state);
    if accept state Lexer.DOT then
      let name = expect_ident state "column name after '.'" in
      Col { table = Some first; name }
    else Col { table = None; name = first }
  | _ -> errorf state "expected expression"

(* ---- queries ---- *)

and parse_select_item state =
  let expr = parse_or state in
  let alias =
    if accept_keyword state "AS" then Some (expect_ident state "alias")
    else
      match peek state with
      | Lexer.IDENT name ->
        ignore (advance state);
        Some name
      | _ -> None
  in
  { expr; alias }

and parse_select_list state =
  if accept state (Lexer.OP "*") then Star
  else begin
    let rec items acc =
      let item = parse_select_item state in
      if accept state Lexer.COMMA then items (item :: acc)
      else List.rev (item :: acc)
    in
    Items (items [])
  end

and parse_table_ref state =
  let table = expect_ident state "table name" in
  let t_alias =
    if accept_keyword state "AS" then Some (expect_ident state "table alias")
    else
      match peek state with
      | Lexer.IDENT name ->
        ignore (advance state);
        Some name
      | _ -> None
  in
  { table; t_alias }

(* FROM items: comma-separated, each possibly followed by a chain of
   [INNER] JOIN t ON cond / CROSS JOIN t.  Joins are desugared: the
   tables join the FROM list and the ON conditions are conjoined into
   the WHERE clause. *)
and parse_from state =
  let on_conditions = ref [] in
  let outer_joins = ref [] in
  let rec join_chain acc =
    if accept_keyword state "JOIN" || (accept_keyword state "INNER" && (expect_keyword state "JOIN"; true))
    then begin
      let r = parse_table_ref state in
      expect_keyword state "ON";
      let cond = parse_or state in
      on_conditions := cond :: !on_conditions;
      join_chain (r :: acc)
    end
    else if accept_keyword state "CROSS" then begin
      expect_keyword state "JOIN";
      let r = parse_table_ref state in
      join_chain (r :: acc)
    end
    else if accept_keyword state "LEFT" then begin
      ignore (accept_keyword state "OUTER");
      expect_keyword state "JOIN";
      let r = parse_table_ref state in
      expect_keyword state "ON";
      let cond = parse_or state in
      outer_joins := { oj_table = r; oj_on = cond } :: !outer_joins;
      join_chain acc
    end
    else acc
  in
  let rec refs acc =
    let r = parse_table_ref state in
    let acc = join_chain (r :: acc) in
    if accept state Lexer.COMMA then refs acc else List.rev acc
  in
  let from = refs [] in
  (from, List.rev !on_conditions, List.rev !outer_joins)

and parse_expr_list state =
  let rec go acc =
    let e = parse_or state in
    if accept state Lexer.COMMA then go (e :: acc) else List.rev (e :: acc)
  in
  go []

and parse_order_list state =
  let rec go acc =
    let e = parse_or state in
    let desc =
      if accept_keyword state "DESC" then true
      else begin
        ignore (accept_keyword state "ASC");
        false
      end
    in
    let item = { o_expr = e; desc } in
    if accept state Lexer.COMMA then go (item :: acc) else List.rev (item :: acc)
  in
  go []

and parse_query_state state =
  expect_keyword state "SELECT";
  let distinct = accept_keyword state "DISTINCT" in
  let select = parse_select_list state in
  expect_keyword state "FROM";
  let from, on_conditions, outer_joins = parse_from state in
  let where = if accept_keyword state "WHERE" then Some (parse_or state) else None in
  let where = conj (on_conditions @ Option.to_list where) in
  let group_by =
    if accept_keyword state "GROUP" then begin
      expect_keyword state "BY";
      parse_expr_list state
    end
    else []
  in
  let having = if accept_keyword state "HAVING" then Some (parse_or state) else None in
  let order_by =
    if accept_keyword state "ORDER" then begin
      expect_keyword state "BY";
      parse_order_list state
    end
    else []
  in
  let limit =
    if accept_keyword state "LIMIT" then begin
      match advance state with
      | Lexer.INT i -> Some i
      | _ ->
        state.pos <- state.pos - 1;
        errorf state "expected integer after LIMIT"
    end
    else None
  in
  { distinct; select; from; outer_joins; where; group_by; having; order_by; limit }

let make_state input =
  match Lexer.tokenize input with
  | tokens -> { tokens = Array.of_list tokens; pos = 0 }
  | exception Lexer.Error (msg, pos) ->
    raise (Error (Printf.sprintf "%s at position %d" msg pos))

let parse_query input =
  let state = make_state input in
  let q = parse_query_state state in
  expect state Lexer.EOF "end of input";
  q

let parse_expr input =
  let state = make_state input in
  let e = parse_or state in
  expect state Lexer.EOF "end of input";
  e
