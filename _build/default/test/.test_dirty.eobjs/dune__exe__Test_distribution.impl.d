test/test_distribution.ml: Alcotest Array Conquer Dirty Dirty_db Fixtures List Option Printf Random Relation Schema Sql Value
