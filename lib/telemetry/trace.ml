(* Request-scoped trace context: trace identifiers, probabilistic
   sampling, and a bounded in-memory ring of completed traces.

   A trace id is 16 lowercase hex characters.  Generation draws from a
   splitmix64 stream behind a mutex; {!set_seed} pins the stream so
   tests (and replay tooling) get a deterministic id sequence.  The
   sampling decision is a pure function of (rate, id) — hashing the id
   into [0,1) and comparing against the rate — so every component that
   sees the same trace id reaches the same keep/drop verdict without
   coordination, and a fixed seed makes the whole sampled set
   reproducible.

   The ring retains the last [capacity] completed traces (root spans
   stamped with their id and completion time).  It is the backing
   store for the daemon's [/debug/traces] surface: bounded memory,
   newest-wins eviction, lookup by id. *)

(* ---- id generation (seedable splitmix64) ---- *)

let state_lock = Mutex.create ()

let state =
  (* default seed: distinct per process, without consulting the
     generator before a test can call set_seed *)
  ref (Int64.of_int (Unix.getpid () + 0x9e3779b9))

let seeded = ref false

let set_seed seed =
  Mutex.lock state_lock;
  state := Int64.of_int seed;
  seeded := true;
  Mutex.unlock state_lock

let splitmix64 s =
  (* the standard finalizer: good avalanche from a sequential state *)
  let open Int64 in
  let z = add s 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  (z, logxor z (shift_right_logical z 31))

let next_word () =
  Mutex.lock state_lock;
  if not !seeded then begin
    (* mix the clock in once, so two daemons started in the same
       second do not share an id stream *)
    state :=
      Int64.logxor !state
        (Int64.of_float (Unix.gettimeofday () *. 1e6));
    seeded := true
  end;
  let s, w = splitmix64 !state in
  state := s;
  Mutex.unlock state_lock;
  w

let gen_id () = Printf.sprintf "%016Lx" (next_word ())

(* ids accepted from the outside (the X-Trace-Id header): non-empty
   hex, bounded so a hostile client cannot stuff arbitrary bytes into
   logs and debug pages *)
let valid_id s =
  let n = String.length s in
  n >= 1 && n <= 64
  && String.for_all
       (fun c ->
         match c with '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false)
       s

(* ---- sampling ---- *)

(* FNV-1a over the id bytes; the decision uses 53 bits so the
   [0,1) mapping is exact in a float *)
let fnv1a64 s =
  let open Int64 in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := logxor !h (of_int (Char.code c));
      h := mul !h 0x100000001b3L)
    s;
  !h

let decide ~rate id =
  if rate >= 1.0 then true
  else if rate <= 0.0 then false
  else
    let bits =
      Int64.to_float (Int64.shift_right_logical (fnv1a64 id) 11)
    in
    bits /. 9007199254740992.0 (* 2^53 *) < rate

(* ---- bounded trace ring ---- *)

type entry = {
  trace_id : string;
  root : Span.t;
  completed_at : float;  (* Unix epoch seconds *)
}

type ring = {
  lock : Mutex.t;
  capacity : int;
  slots : entry option array;  (* circular, newest at (next-1) mod capacity *)
  mutable next : int;          (* total entries ever stored *)
  by_id : (string, entry) Hashtbl.t;
}

let ring_create ~capacity =
  let capacity = max 1 capacity in
  {
    lock = Mutex.create ();
    capacity;
    slots = Array.make capacity None;
    next = 0;
    by_id = Hashtbl.create (2 * capacity);
  }

let ring_locked r f =
  Mutex.lock r.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock r.lock) f

let ring_add r ~trace_id root =
  ring_locked r @@ fun () ->
  let entry = { trace_id; root; completed_at = Unix.gettimeofday () } in
  let slot = r.next mod r.capacity in
  (match r.slots.(slot) with
  | Some old ->
    (* evict, unless the same id was re-stored in a newer slot *)
    (match Hashtbl.find_opt r.by_id old.trace_id with
    | Some cur when cur == old -> Hashtbl.remove r.by_id old.trace_id
    | _ -> ())
  | None -> ());
  r.slots.(slot) <- Some entry;
  r.next <- r.next + 1;
  Hashtbl.replace r.by_id trace_id entry

let ring_find r trace_id =
  ring_locked r (fun () -> Hashtbl.find_opt r.by_id trace_id)

(* newest first *)
let ring_recent ?n r =
  ring_locked r @@ fun () ->
  let stored = min r.next r.capacity in
  let want = match n with None -> stored | Some n -> min (max 0 n) stored in
  (* walk newest→oldest, prepending: the accumulator ends up
     oldest-first, so one reverse hands back newest-first *)
  let rec collect acc got i =
    if got >= want || i >= stored then List.rev acc
    else
      let slot = (r.next - 1 - i) mod r.capacity in
      match r.slots.(slot) with
      | Some e -> collect (e :: acc) (got + 1) (i + 1)
      | None -> collect acc got (i + 1)
  in
  collect [] 0 0

let ring_length r =
  ring_locked r (fun () -> min r.next r.capacity)

let ring_capacity r = r.capacity
