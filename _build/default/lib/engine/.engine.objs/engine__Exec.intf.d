lib/engine/exec.mli: Dirty Format Index Plan
