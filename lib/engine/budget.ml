type limits = { max_rows : int option; max_elapsed : float option }

let no_limits = { max_rows = None; max_elapsed = None }

type mode = Raise | Truncate

exception
  Exceeded of { produced : int; elapsed : float; limits : limits }

let exceeded_message ~produced ~elapsed limits =
  let limit_s =
    String.concat ", "
      (List.filter_map Fun.id
         [
           Option.map (Printf.sprintf "max %d rows") limits.max_rows;
           Option.map (Printf.sprintf "max %gs") limits.max_elapsed;
         ])
  in
  Printf.sprintf "execution budget exceeded after %d rows in %.3fs (%s)" produced
    elapsed
    (if limit_s = "" then "no limits" else limit_s)

let () =
  Printexc.register_printer (function
    | Exceeded { produced; elapsed; limits } ->
      Some (exceeded_message ~produced ~elapsed limits)
    | _ -> None)

(* rows admitted between wall-clock reads; gettimeofday costs ~20ns so
   this keeps the per-row overhead well under a nanosecond amortized *)
let time_check_interval = 256

(* The mutable accounting fields are guarded by [lock]: a budget can be
   charged from several domains when the executor runs partitioned
   operators in parallel, and a torn produced/countdown update would
   let rows slip past the limit.  The lock is uncontended in serial
   runs, so the cost there is a couple of atomic instructions per
   admit — still dwarfed by row materialization. *)
type t = {
  limits : limits;
  mode : mode;
  started : float;
  cancel : Cancel.token option;
  lock : Mutex.t;
  mutable produced : int;
  mutable stopped : bool;
  mutable was_cancelled : bool;
  mutable countdown : int;
}

let create ?(mode = Raise) ?cancel limits =
  {
    limits;
    mode;
    started = Unix.gettimeofday ();
    cancel;
    lock = Mutex.create ();
    produced = 0;
    stopped = false;
    was_cancelled = false;
    countdown = time_check_interval;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let elapsed t = Unix.gettimeofday () -. t.started
let produced t = with_lock t (fun () -> t.produced)
let exhausted t = with_lock t (fun () -> t.stopped)
let truncated t = with_lock t (fun () -> t.stopped && not t.was_cancelled)
let cancelled t = with_lock t (fun () -> t.was_cancelled)
let cancel_token t = t.cancel
let mode t = t.mode
let limits t = t.limits

(* must be called with [t.lock] held; raises in [Raise] mode, so
   callers release the lock via Fun.protect *)
let stop_locked t =
  match t.mode with
  | Raise ->
    raise (Exceeded { produced = t.produced; elapsed = elapsed t; limits = t.limits })
  | Truncate -> t.stopped <- true

(* Stop because of cancellation — either the token tripped (watchdog,
   caller) or the wall-clock limit was crossed.  Unlike a row-budget
   stop this is surfaced as [Cancel.Cancelled], and the token (when
   present) is tripped so parallel partitions observe it too.  Must be
   called with [t.lock] held. *)
let stop_cancel_locked t reason =
  t.was_cancelled <- true;
  (match t.cancel with Some tok -> Cancel.cancel ~reason tok | None -> ());
  match t.mode with
  | Raise -> raise (Cancel.Cancelled reason)
  | Truncate -> t.stopped <- true

let over_time t =
  match t.limits.max_elapsed with
  | None -> false
  | Some lim -> elapsed t > lim

let time_reason t =
  Printf.sprintf "time budget of %gs exceeded after %d rows in %.3fs"
    (Option.value t.limits.max_elapsed ~default:0.0)
    t.produced (elapsed t)

(* token trip observed at a checkpoint; None when the token is absent
   or untripped *)
let token_reason t =
  match t.cancel with
  | Some tok when Cancel.cancelled tok ->
    Some (Option.value (Cancel.reason tok) ~default:"cancelled")
  | _ -> None

let check_time t =
  with_lock t (fun () ->
      if not t.stopped then
        match token_reason t with
        | Some reason -> stop_cancel_locked t reason
        | None -> if over_time t then stop_cancel_locked t (time_reason t))

let admit t n =
  with_lock t @@ fun () ->
  if t.stopped then 0
  else begin
    (match token_reason t with
     | Some reason -> stop_cancel_locked t reason
     | None ->
       t.countdown <- t.countdown - n;
       if t.countdown <= 0 then begin
         t.countdown <- time_check_interval;
         if over_time t then stop_cancel_locked t (time_reason t)
       end);
    if t.stopped then 0
    else
      match t.limits.max_rows with
      | None ->
        t.produced <- t.produced + n;
        n
      | Some lim ->
        if t.produced + n <= lim then begin
          t.produced <- t.produced + n;
          n
        end
        else begin
          let allowed = max 0 (lim - t.produced) in
          t.produced <- t.produced + n;
          stop_locked t;
          (* only reached in Truncate mode *)
          allowed
        end
  end
