lib/conquer/sampler.ml: Array Clean Cluster Dirty Dirty_db Engine Float Hashtbl List Option Random Relation Rewrite Schema Sql Value
