(* Seeded-problem databases for the robustness suite: one dirty
   database exhibiting every injectable Validate diagnostic at once. *)

open Dirty

let v_s s = Value.String s
let v_f f = Value.Float f

(* ---- seeded problems ----

   One dirty database exhibiting every injectable Validate diagnostic
   at once, built with [~validate:false] so construction succeeds:

   - cust/c1: probabilities sum to 1.3        -> Cluster_sum_mismatch
   - cust/c2: a probability that is a string  -> Non_numeric_probability
   - cust/c3: a NaN probability               -> Nan_probability
   - cust/c4: -0.2 and 1.2 (sum still 1)      -> Probability_out_of_range x2
   - cust/c5: probabilities 0 and 1           -> Zero_probability (warning)
   - cust/c6: two rows identical off-prob     -> Duplicate_tuple (warning)
   - cust/c7: a well-formed cluster (control)
   - orders/o1: custfk = "zzz"                -> Dangling_reference
     (against reference orders.custfk -> cust) *)

let cust_schema =
  Schema.make
    [ ("id", Value.TString); ("name", Value.TString); ("prob", Value.TFloat) ]

let orders_schema =
  Schema.make
    [ ("id", Value.TString); ("custfk", Value.TString); ("prob", Value.TFloat) ]

let seeded_reference : Validate.reference =
  { ref_table = "orders"; fk_attr = "custfk"; target = "cust" }

let seeded_db () =
  let cust =
    Relation.create cust_schema
      [
        [| v_s "c1"; v_s "Ann"; v_f 0.7 |];
        [| v_s "c1"; v_s "Anne"; v_f 0.6 |];
        [| v_s "c2"; v_s "Bob"; v_s "lots" |];
        [| v_s "c2"; v_s "Rob"; v_f 1.0 |];
        [| v_s "c3"; v_s "Cal"; v_f Float.nan |];
        [| v_s "c3"; v_s "Carl"; v_f 1.0 |];
        [| v_s "c4"; v_s "Dee"; v_f (-0.2) |];
        [| v_s "c4"; v_s "Di"; v_f 1.2 |];
        [| v_s "c5"; v_s "Ed"; v_f 0.0 |];
        [| v_s "c5"; v_s "Eddy"; v_f 1.0 |];
        [| v_s "c6"; v_s "Flo"; v_f 0.5 |];
        [| v_s "c6"; v_s "Flo"; v_f 0.5 |];
        [| v_s "c7"; v_s "Gus"; v_f 1.0 |];
      ]
  in
  let orders =
    Relation.create orders_schema
      [
        [| v_s "o1"; v_s "zzz"; v_f 1.0 |];
        [| v_s "o2"; v_s "c7"; v_f 1.0 |];
      ]
  in
  let db =
    Dirty_db.add_table Dirty_db.empty
      (Dirty_db.make_table ~validate:false ~name:"cust" ~id_attr:"id"
         ~prob_attr:"prob" cust)
  in
  Dirty_db.add_table db
    (Dirty_db.make_table ~validate:false ~name:"orders" ~id_attr:"id"
       ~prob_attr:"prob" orders)

(* ---- random seeded-problem tables ----

   The cluster skeleton (cluster count, cluster sizes, integer
   payloads) is drawn from the fuzzing harness's store-table
   generator, so the robustness suite corrupts the same space of
   databases the chaos and differential suites fuzz; only the
   probability column is then replaced with random garbage
   (out-of-range, NaN, zero, or valid) for the repair policies to
   work on. *)

let ( let* ) gen f = QCheck.Gen.( >>= ) gen f

let garbage_prob_gen =
  QCheck.Gen.frequency
    [
      (5, QCheck.Gen.float_range (-0.5) 2.0);
      (1, QCheck.Gen.return Float.nan);
      (1, QCheck.Gen.return 0.0);
      (4, QCheck.Gen.float_range 0.0 1.0);
    ]

let garbage_table_gen =
  let* t = Fuzz.Dbgen.store_table_gen "t" in
  let rel = t.Dirty_db.relation in
  let* probs =
    QCheck.Gen.flatten_l
      (List.init (Relation.cardinality rel) (fun _ -> garbage_prob_gen))
  in
  let probs = Array.of_list probs in
  let pi = Schema.index_of (Relation.schema rel) t.prob_attr in
  let i = ref (-1) in
  let corrupted =
    Relation.map_rows (Relation.schema rel)
      (fun row ->
        incr i;
        let row = Array.copy row in
        row.(pi) <- Value.Float probs.(!i);
        row)
      rel
  in
  QCheck.Gen.return
    (Dirty_db.make_table ~validate:false ~name:t.name ~id_attr:t.id_attr
       ~prob_attr:t.prob_attr corrupted)
