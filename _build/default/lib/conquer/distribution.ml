open Dirty

type violation = Not_single_table | Not_spj of string | Unknown_dirty_table of string

let violation_to_string = function
  | Not_single_table -> "the count distribution requires a single-relation query"
  | Not_spj why -> "query is not select-project: " ^ why
  | Unknown_dirty_table t -> "relation " ^ t ^ " is not a known dirty table"

exception Not_supported of violation list

let check env (q : Sql.Ast.query) =
  let violations = ref [] in
  let add v = violations := v :: !violations in
  (match q.from with
  | [ r ] ->
    if env.Dirty_schema.info_of r.table = None then
      add (Unknown_dirty_table r.table)
  | _ -> add Not_single_table);
  if q.outer_joins <> [] then add (Not_spj "outer join present");
  if Sql.Ast.query_has_subqueries q then add (Not_spj "subquery present");
  if q.distinct then add (Not_spj "DISTINCT present");
  if q.group_by <> [] then add (Not_spj "GROUP BY present");
  if q.having <> None then add (Not_spj "HAVING present");
  (match q.select with
  | Star -> ()
  | Items items ->
    if
      List.exists
        (fun (i : Sql.Ast.select_item) -> Sql.Ast.has_aggregates i.expr)
        items
    then add (Not_spj "aggregate present"));
  (match q.where with
  | Some w when Sql.Ast.has_aggregates w -> add (Not_spj "aggregate in WHERE")
  | _ -> ());
  match List.rev !violations with [] -> Ok () | vs -> Error vs

let checked_parts session sql =
  let q = Sql.Parser.parse_query sql in
  let env = Clean.env session in
  (match check env q with Ok () -> () | Error vs -> raise (Not_supported vs));
  let table_ref = List.hd q.from in
  let alias = Option.value ~default:table_ref.table table_ref.t_alias in
  let info = Option.get (env.Dirty_schema.info_of table_ref.table) in
  (q, table_ref, alias, info)

let qualification_probabilities session sql =
  let q, table_ref, alias, info = checked_parts session sql in
  (* per cluster: sum of qualifying tuple probabilities, via the
     engine: SELECT id, SUM(prob) FROM t WHERE W GROUP BY id *)
  let id_col = Sql.Ast.col ~table:alias info.id_attr in
  let prob_col = Sql.Ast.col ~table:alias info.prob_attr in
  let grouped : Sql.Ast.query =
    {
      distinct = false;
      select =
        Items
          [
            { expr = id_col; alias = Some "cluster" };
            { expr = Agg (Sum, Some prob_col); alias = Some "p" };
          ];
      from = [ table_ref ];
      outer_joins = [];
      where = q.where;
      group_by = [ id_col ];
      having = None;
      order_by = [];
      limit = None;
    }
  in
  let result = Engine.Database.query_ast (Clean.engine session) grouped in
  Relation.fold
    (fun acc row ->
      match Value.to_float row.(1) with
      | Some p when p > 0.0 -> (row.(0), Float.min 1.0 p) :: acc
      | _ -> acc)
    [] result
  |> List.rev

(* pmf of a sum of independent Bernoullis (Poisson binomial), by the
   standard convolution DP *)
let poisson_binomial ps =
  let pmf = Array.make (List.length ps + 1) 0.0 in
  pmf.(0) <- 1.0;
  List.iteri
    (fun i p ->
      (* after i+1 variables, counts up to i+1 are possible; iterate
         downwards so each variable is used once *)
      for k = i + 1 downto 1 do
        pmf.(k) <- (pmf.(k) *. (1.0 -. p)) +. (pmf.(k - 1) *. p)
      done;
      pmf.(0) <- pmf.(0) *. (1.0 -. p))
    ps;
  pmf

let count_distribution session sql =
  let ps = List.map snd (qualification_probabilities session sql) in
  poisson_binomial ps

let count_distribution_oracle ?max_candidates session sql =
  let q, table_ref, alias, info = checked_parts session sql in
  let counting : Sql.Ast.query =
    {
      q with
      select =
        Items [ { expr = Sql.Ast.col ~table:alias info.id_attr; alias = None } ];
      from = [ table_ref ];
    }
  in
  let db = Clean.dirty_db session in
  let engine = Engine.Database.create () in
  List.iter
    (fun (t : Dirty_db.table) ->
      Engine.Database.add_relation engine ~name:t.name t.relation)
    (Dirty_db.tables db);
  let plan = Engine.Database.plan engine counting in
  let max_count =
    Cluster.num_clusters (Dirty_db.find_table db table_ref.table).clustering
  in
  let pmf = Array.make (max_count + 1) 0.0 in
  Candidates.fold ?max_candidates db
    (fun () selection prob ->
      List.iter
        (fun (name, rel) -> Engine.Database.add_relation engine ~name rel)
        (Candidates.candidate_relations db selection);
      let rows =
        Relation.cardinality
          (Relation.distinct (Engine.Database.run_plan engine plan))
      in
      pmf.(rows) <- pmf.(rows) +. prob)
    ();
  (* trim to the same length convention as the DP (clusters with some
     qualifying tuple) *)
  pmf

let mean pmf =
  let total = ref 0.0 in
  Array.iteri (fun i p -> total := !total +. (float_of_int i *. p)) pmf;
  !total

let variance pmf =
  let m = mean pmf in
  let total = ref 0.0 in
  Array.iteri
    (fun i p ->
      let d = float_of_int i -. m in
      total := !total +. (p *. d *. d))
    pmf;
  !total

let at_least pmf k =
  let total = ref 0.0 in
  Array.iteri (fun i p -> if i >= k then total := !total +. p) pmf;
  !total

type moments = { mean : float; variance : float; std_dev : float }

let sum_moments session sql =
  let q = Sql.Parser.parse_query sql in
  let env = Clean.env session in
  (* the count-distribution checks minus the aggregate restriction *)
  (match q.from, q.outer_joins, q.group_by with
  | [ r ], [], [] ->
    if env.Dirty_schema.info_of r.table = None then
      raise (Not_supported [ Unknown_dirty_table r.table ])
  | _ -> raise (Not_supported [ Not_single_table ]));
  let e =
    match q.select with
    | Items [ { expr = Agg (Sum, Some e); _ } ] when not (Sql.Ast.has_aggregates e) -> e
    | _ ->
      invalid_arg
        "Distribution.sum_moments: the query must select exactly sum(<expr>)"
  in
  let table_ref = List.hd q.from in
  let alias = Option.value ~default:table_ref.table table_ref.t_alias in
  let info = Option.get (env.Dirty_schema.info_of table_ref.table) in
  let id_col = Sql.Ast.col ~table:alias info.id_attr in
  let prob_col = Sql.Ast.col ~table:alias info.prob_attr in
  (* per cluster: E[X_c] and E[X_c^2] *)
  let grouped : Sql.Ast.query =
    {
      distinct = false;
      select =
        Items
          [
            { expr = id_col; alias = Some "cluster" };
            {
              expr = Agg (Sum, Some (Binop (Mul, prob_col, e)));
              alias = Some "ex";
            };
            {
              expr = Agg (Sum, Some (Binop (Mul, prob_col, Binop (Mul, e, e))));
              alias = Some "ex2";
            };
          ];
      from = [ table_ref ];
      outer_joins = [];
      where = q.where;
      group_by = [ id_col ];
      having = None;
      order_by = [];
      limit = None;
    }
  in
  let result = Engine.Database.query_ast (Clean.engine session) grouped in
  let mean = ref 0.0 and variance = ref 0.0 in
  Relation.iter
    (fun row ->
      let ex = Option.value ~default:0.0 (Value.to_float row.(1)) in
      let ex2 = Option.value ~default:0.0 (Value.to_float row.(2)) in
      mean := !mean +. ex;
      variance := !variance +. (ex2 -. (ex *. ex)))
    result;
  let variance = Float.max 0.0 !variance in
  { mean = !mean; variance; std_dev = Float.sqrt variance }
