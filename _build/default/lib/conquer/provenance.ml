open Dirty

type witness = {
  w_alias : string;
  w_table : string;
  w_cluster : Value.t;
  w_probability : float;
}

type contribution = { witnesses : witness list; mass : float; count : int }

type explanation = {
  answer : Relation.row;
  total : float;
  contributions : contribution list;
}

module Rtbl = Hashtbl.Make (struct
  type t = Value.t array

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec loop i =
      i >= Array.length a || (Value.equal a.(i) b.(i) && loop (i + 1))
    in
    loop 0

  let hash a = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 a
end)

let explain ?config session sql =
  let q = Sql.Parser.parse_query sql in
  let env = Clean.env session in
  (match Rewritable.check env q with
  | Ok _ -> ()
  | Error vs -> raise (Rewrite.Not_rewritable vs));
  let items =
    match q.select with
    | Items items -> items
    | Star -> invalid_arg "Provenance.explain: SELECT * not supported"
  in
  let num_answer_cols = List.length items in
  (* the ungrouped rewriting: answer columns followed by each
     relation's identifier and probability *)
  let relations =
    List.map
      (fun (r : Sql.Ast.table_ref) ->
        let alias = Option.value ~default:r.table r.t_alias in
        let info = Option.get (env.Dirty_schema.info_of r.table) in
        (alias, r.table, info))
      q.from
  in
  let witness_items =
    List.concat_map
      (fun (alias, _, (info : Dirty_schema.table_info)) ->
        [
          ({ expr = Sql.Ast.Col { table = Some alias; name = info.id_attr };
             alias = None }
            : Sql.Ast.select_item);
          { expr = Sql.Ast.Col { table = Some alias; name = info.prob_attr };
            alias = None };
        ])
      relations
  in
  let ungrouped =
    {
      q with
      select = Items (items @ witness_items);
      group_by = [];
      order_by = [];
      limit = None;
    }
  in
  let rel = Engine.Database.query_ast ?config (Clean.engine session) ungrouped in
  let grouped = Rtbl.create 64 in
  let order = ref [] in
  Relation.iter
    (fun row ->
      let answer = Array.sub row 0 num_answer_cols in
      let witnesses =
        List.mapi
          (fun i (alias, table, _) ->
            let base = num_answer_cols + (2 * i) in
            {
              w_alias = alias;
              w_table = table;
              w_cluster = row.(base);
              w_probability =
                Option.value ~default:0.0 (Value.to_float row.(base + 1));
            })
          relations
      in
      let mass =
        List.fold_left (fun acc w -> acc *. w.w_probability) 1.0 witnesses
      in
      let c = { witnesses; mass; count = 1 } in
      match Rtbl.find_opt grouped answer with
      | Some cs -> Rtbl.replace grouped answer (c :: cs)
      | None ->
        Rtbl.replace grouped answer [ c ];
        order := answer :: !order)
    rel;
  (* merge contributions whose witness signatures coincide *)
  let merge contributions =
    let signature c =
      List.map
        (fun w -> (w.w_alias, Value.to_string w.w_cluster, w.w_probability))
        c.witnesses
    in
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun c ->
        let key = signature c in
        match Hashtbl.find_opt tbl key with
        | Some existing ->
          Hashtbl.replace tbl key
            { existing with mass = existing.mass +. c.mass;
              count = existing.count + c.count }
        | None -> Hashtbl.add tbl key c)
      contributions;
    Hashtbl.fold (fun _ c acc -> c :: acc) tbl []
  in
  List.rev_map
    (fun answer ->
      let contributions =
        List.sort
          (fun a b -> Float.compare b.mass a.mass)
          (merge (Rtbl.find grouped answer))
      in
      {
        answer;
        total = List.fold_left (fun acc c -> acc +. c.mass) 0.0 contributions;
        contributions;
      })
    !order
  |> List.sort (fun a b -> Float.compare b.total a.total)

let pp_explanation fmt e =
  Format.fprintf fmt "(%s)  probability %.6g@\n"
    (String.concat ", "
       (Array.to_list (Array.map Value.to_string e.answer)))
    e.total;
  List.iter
    (fun c ->
      Format.fprintf fmt "  %.6g = %s%s@\n" c.mass
        (String.concat " * "
           (List.map
              (fun w ->
                Printf.sprintf "%s[%s @ %g]" w.w_table
                  (Value.to_string w.w_cluster)
                  w.w_probability)
              c.witnesses))
        (if c.count > 1 then Printf.sprintf "  (x%d join tuples)" c.count else ""))
    e.contributions
