type op =
  | Insert of { table : string; row : Value.t array }
  | Delete of { table : string; cluster : Value.t; member : int }
  | Split of {
      table : string;
      cluster : Value.t;
      into : Value.t;
      members : int list;
    }
  | Merge of { table : string; from_ : Value.t; into : Value.t }
  | Reassign of { table : string; cluster : Value.t; weights : float array }

type batch = op list

exception Invalid of string

let invalidf fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

type outcome = {
  db : Dirty_db.t;
  touched : (string * Value.t) list;
  actions : Repair.action list;
}

let op_table = function
  | Insert { table; _ }
  | Delete { table; _ }
  | Split { table; _ }
  | Merge { table; _ }
  | Reassign { table; _ } ->
    table

(* {1 Record format} *)

(* [Value.to_string] prints non-integer floats with %g, which loses
   low-order bits; delta records must replay to the same values the
   in-memory apply produced (given the same base), so floats render
   with 17 significant digits.  Integer-valued floats keep
   [to_string]'s "2.0" form so [Value.parse] reads them back as floats,
   not ints. *)
let render_value = function
  | Value.Float f when not (Float.is_integer f && Float.abs f < 1e15) ->
    Printf.sprintf "%.17g" f
  | v -> Value.to_string v

let render_weight f = Printf.sprintf "%.17g" f

let int_field what s =
  match int_of_string_opt (String.trim s) with
  | Some i -> i
  | None -> invalidf "%s: not an integer: %S" what s

let float_field what s =
  match float_of_string_opt (String.trim s) with
  | Some f -> f
  | None -> invalidf "%s: not a number: %S" what s

let op_to_row = function
  | Insert { table; row } ->
    "insert" :: table :: Array.to_list (Array.map render_value row)
  | Delete { table; cluster; member } ->
    [ "delete"; table; render_value cluster; string_of_int member ]
  | Split { table; cluster; into; members } ->
    "split" :: table :: render_value cluster :: render_value into
    :: List.map string_of_int members
  | Merge { table; from_; into } ->
    [ "merge"; table; render_value from_; render_value into ]
  | Reassign { table; cluster; weights } ->
    "reassign" :: table :: render_value cluster
    :: Array.to_list (Array.map render_weight weights)

let op_of_row = function
  | "insert" :: table :: (_ :: _ as values) ->
    Insert { table; row = Array.of_list (List.map Value.parse values) }
  | [ "delete"; table; cluster; member ] ->
    Delete
      {
        table;
        cluster = Value.parse cluster;
        member = int_field "delete member" member;
      }
  | "split" :: table :: cluster :: into :: (_ :: _ as members) ->
    Split
      {
        table;
        cluster = Value.parse cluster;
        into = Value.parse into;
        members = List.map (int_field "split member") members;
      }
  | [ "merge"; table; from_; into ] ->
    Merge { table; from_ = Value.parse from_; into = Value.parse into }
  | "reassign" :: table :: cluster :: (_ :: _ as weights) ->
    Reassign
      {
        table;
        cluster = Value.parse cluster;
        weights =
          Array.of_list (List.map (float_field "reassign weight") weights);
      }
  | row -> invalidf "malformed delta record: %S" (String.concat "," row)

let to_rows batch = List.map op_to_row batch
let of_rows rows = List.map op_of_row rows

let op_to_string = function
  | Insert { table; row } ->
    Printf.sprintf "insert %s (%s)" table
      (String.concat ", " (Array.to_list (Array.map Value.to_string row)))
  | Delete { table; cluster; member } ->
    Printf.sprintf "delete %s cluster %s member %d" table
      (Value.to_string cluster) member
  | Split { table; cluster; into; members } ->
    Printf.sprintf "split %s cluster %s -> %s members [%s]" table
      (Value.to_string cluster) (Value.to_string into)
      (String.concat "," (List.map string_of_int members))
  | Merge { table; from_; into } ->
    Printf.sprintf "merge %s cluster %s into %s" table (Value.to_string from_)
      (Value.to_string into)
  | Reassign { table; cluster; weights } ->
    Printf.sprintf "reassign %s cluster %s weights [%s]" table
      (Value.to_string cluster)
      (String.concat ","
         (Array.to_list (Array.map (Printf.sprintf "%g") weights)))

(* {1 Application} *)

let find_table db name =
  match Dirty_db.find_table_opt db name with
  | Some t -> t
  | None -> invalidf "unknown table %S" name

let replace_table db (tbl : Dirty_db.table) =
  List.fold_left
    (fun acc (t : Dirty_db.table) ->
      Dirty_db.add_table acc (if String.equal t.name tbl.name then tbl else t))
    Dirty_db.empty (Dirty_db.tables db)

let rebuild (tbl : Dirty_db.table) rows =
  let rel = Relation.create (Relation.schema tbl.relation) rows in
  Dirty_db.make_table ~validate:false ~name:tbl.name ~id_attr:tbl.id_attr
    ~prob_attr:tbl.prob_attr rel

let renormalize tbl = Repair.repair_table ~policy:Repair.Renormalize tbl

let check_prob what v =
  match Value.to_float v with
  | Some p when Float.is_finite p && p >= 0.0 && p <= 1.0 -> ()
  | _ ->
    invalidf "%s: probability must be a finite number in [0, 1], got %s" what
      (Value.to_string v)

let apply_op db op =
  let tbl = find_table db (op_table op) in
  let schema = Relation.schema tbl.relation in
  let id_ix = Schema.index_of schema tbl.id_attr in
  let prob_ix = Schema.index_of schema tbl.prob_attr in
  let rows () = Relation.rows tbl.relation in
  match op with
  | Insert { row; _ } ->
    if Array.length row <> Schema.arity schema then
      invalidf "insert into %s: row arity %d, schema expects %d" tbl.name
        (Array.length row) (Schema.arity schema);
    if Value.is_null row.(id_ix) then
      invalidf "insert into %s: identifier attribute %s must not be NULL"
        tbl.name tbl.id_attr;
    check_prob (Printf.sprintf "insert into %s" tbl.name) row.(prob_ix);
    let rows' = Array.to_list (rows ()) @ [ Array.copy row ] in
    let tbl', actions = renormalize (rebuild tbl rows') in
    (replace_table db tbl', [ (tbl.name, row.(id_ix)) ], actions)
  | Delete { cluster; member; _ } ->
    let members = Dirty_db.cluster_rows tbl cluster in
    if members = [] then
      invalidf "delete from %s: unknown cluster %s" tbl.name
        (Value.to_string cluster);
    let n = List.length members in
    if member < 0 || member >= n then
      invalidf "delete from %s cluster %s: member %d out of range (size %d)"
        tbl.name (Value.to_string cluster) member n;
    let victim = List.nth members member in
    let rows' =
      Array.to_list (rows ()) |> List.filteri (fun i _ -> i <> victim)
    in
    let tbl', actions = renormalize (rebuild tbl rows') in
    (replace_table db tbl', [ (tbl.name, cluster) ], actions)
  | Split { cluster; into; members = picked; _ } ->
    let members = Dirty_db.cluster_rows tbl cluster in
    if members = [] then
      invalidf "split %s: unknown cluster %s" tbl.name
        (Value.to_string cluster);
    if Value.equal cluster into then
      invalidf "split %s cluster %s: target must differ from source" tbl.name
        (Value.to_string cluster);
    if picked = [] then
      invalidf "split %s cluster %s: empty member list" tbl.name
        (Value.to_string cluster);
    let n = List.length members in
    let seen = Hashtbl.create 8 in
    List.iter
      (fun m ->
        if m < 0 || m >= n then
          invalidf "split %s cluster %s: member %d out of range (size %d)"
            tbl.name (Value.to_string cluster) m n;
        if Hashtbl.mem seen m then
          invalidf "split %s cluster %s: duplicate member %d" tbl.name
            (Value.to_string cluster) m;
        Hashtbl.add seen m ())
      picked;
    let move = List.map (fun m -> List.nth members m) picked in
    let rows' =
      Array.to_list
        (Array.mapi
           (fun i r ->
             if List.mem i move then (
               let r = Array.copy r in
               r.(id_ix) <- into;
               r)
             else r)
           (rows ()))
    in
    let tbl', actions = renormalize (rebuild tbl rows') in
    (replace_table db tbl', [ (tbl.name, cluster); (tbl.name, into) ], actions)
  | Merge { from_; into; _ } ->
    if Value.equal from_ into then
      invalidf "merge %s: cluster %s into itself" tbl.name
        (Value.to_string into);
    let members = Dirty_db.cluster_rows tbl from_ in
    if members = [] then
      invalidf "merge %s: unknown cluster %s" tbl.name (Value.to_string from_);
    let rows' =
      Array.to_list
        (Array.mapi
           (fun i r ->
             if List.mem i members then (
               let r = Array.copy r in
               r.(id_ix) <- into;
               r)
             else r)
           (rows ()))
    in
    let tbl', actions = renormalize (rebuild tbl rows') in
    (replace_table db tbl', [ (tbl.name, from_); (tbl.name, into) ], actions)
  | Reassign { cluster; weights; _ } ->
    let members = Dirty_db.cluster_rows tbl cluster in
    if members = [] then
      invalidf "reassign %s: unknown cluster %s" tbl.name
        (Value.to_string cluster);
    let n = List.length members in
    if Array.length weights <> n then
      invalidf "reassign %s cluster %s: %d weights for %d members" tbl.name
        (Value.to_string cluster) (Array.length weights) n;
    Array.iter
      (fun w ->
        if not (Float.is_finite w && w >= 0.0) then
          invalidf "reassign %s cluster %s: weights must be finite and >= 0"
            tbl.name (Value.to_string cluster))
      weights;
    let total = Array.fold_left ( +. ) 0.0 weights in
    if total <= 0.0 then
      invalidf "reassign %s cluster %s: weight sum must be positive" tbl.name
        (Value.to_string cluster);
    let rows' = Array.map Fun.id (rows ()) in
    List.iteri
      (fun ord ri ->
        let r = Array.copy rows'.(ri) in
        r.(prob_ix) <- Value.Float (weights.(ord) /. total);
        rows'.(ri) <- r)
      members;
    let tbl' = rebuild tbl (Array.to_list rows') in
    (replace_table db tbl', [ (tbl.name, cluster) ], [])

let apply db batch =
  let db, rev_touched, rev_actions =
    List.fold_left
      (fun (db, touched, actions) op ->
        let db, t, a = apply_op db op in
        (db, List.rev_append t touched, List.rev_append a actions))
      (db, [], []) batch
  in
  let touched =
    List.fold_left
      (fun acc (t, c) ->
        if
          List.exists
            (fun (t', c') -> String.equal t t' && Value.equal c c')
            acc
        then acc
        else (t, c) :: acc)
      [] (List.rev rev_touched)
    |> List.rev
  in
  { db; touched; actions = List.rev rev_actions }
