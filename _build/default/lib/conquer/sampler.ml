open Dirty

type estimate = {
  row : Relation.row;
  probability : float;
  std_error : float;
  occurrences : int;
}

(* draw one tuple index per cluster according to the probabilities *)
let pick_tuple rng (table : Dirty_db.table) members =
  let u = Random.State.float rng 1.0 in
  let rec go acc = function
    | [] -> List.nth members (List.length members - 1)  (* rounding tail *)
    | [ last ] -> last
    | i :: rest ->
      let acc = acc +. Dirty_db.row_probability table i in
      if u < acc then i else go acc rest
  in
  go 0.0 members

let sample_candidate rng db =
  List.map
    (fun (t : Dirty_db.table) ->
      let chosen = ref [] in
      Cluster.iter
        (fun _ members -> chosen := pick_tuple rng t members :: !chosen)
        t.clustering;
      let rows =
        List.rev_map (Relation.get t.relation) !chosen
      in
      (t.name, Relation.create (Relation.schema t.relation) rows))
    (Dirty_db.tables db)

module Rtbl = Hashtbl.Make (struct
  type t = Value.t array

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec loop i =
      i >= Array.length a || (Value.equal a.(i) b.(i) && loop (i + 1))
    in
    loop 0

  let hash a = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 a
end)

let estimates ?(seed = 0x5eed) ~samples session sql =
  if samples < 1 then invalid_arg "Sampler.estimates: samples < 1";
  let db = Clean.dirty_db session in
  let rng = Random.State.make [| seed |] in
  let q = Sql.Parser.parse_query sql in
  let engine = Engine.Database.create () in
  List.iter
    (fun (t : Dirty_db.table) ->
      Engine.Database.add_relation engine ~name:t.name t.relation)
    (Dirty_db.tables db);
  let plan = Engine.Database.plan engine q in
  let counts = Rtbl.create 64 in
  for _ = 1 to samples do
    List.iter
      (fun (name, rel) -> Engine.Database.add_relation engine ~name rel)
      (sample_candidate rng db);
    let result = Relation.distinct (Engine.Database.run_plan engine plan) in
    Relation.iter
      (fun row ->
        Rtbl.replace counts row
          (1 + Option.value ~default:0 (Rtbl.find_opt counts row)))
      result
  done;
  let n = float_of_int samples in
  Rtbl.fold
    (fun row occurrences acc ->
      let p = float_of_int occurrences /. n in
      {
        row;
        probability = p;
        std_error = Float.sqrt (p *. (1.0 -. p) /. n);
        occurrences;
      }
      :: acc)
    counts []
  |> List.sort (fun a b ->
         match Float.compare b.probability a.probability with
         | 0 ->
           (* deterministic tie-break on the row values *)
           compare
             (Array.map Value.to_string a.row)
             (Array.map Value.to_string b.row)
         | c -> c)

let answers ?seed ~samples session sql =
  let ests = estimates ?seed ~samples session sql in
  (* the output schema: run the query once against the dirty tables *)
  let base = Engine.Database.query_ast (Clean.engine session) (Sql.Parser.parse_query sql) in
  let schema =
    Schema.append (Relation.schema base)
      (Schema.make
         [ (Rewrite.prob_column, Value.TFloat); ("std_error", Value.TFloat) ])
  in
  Relation.create schema
    (List.map
       (fun e ->
         Array.append e.row
           [| Value.Float e.probability; Value.Float e.std_error |])
       ests)
