lib/matcher/union_find.ml: Array Dirty Fun
