lib/prob/interning.ml: Array Dirty Hashtbl Value
