lib/matcher/limbo.ml: Array Cluster Dirty Infotheory Int List Prob Value
