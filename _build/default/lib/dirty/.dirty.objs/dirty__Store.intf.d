lib/dirty/store.mli: Dirty_db
