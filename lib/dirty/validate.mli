(** Structured integrity diagnostics for dirty databases.

    {!Dirty_db.make_table} stops at the first problem it meets; this
    module instead scans a whole table (or database) and returns a
    {e complete} list of structured diagnostics, so that ingestion of
    dirty data can proceed with a report rather than abort — violated
    constraints surface as data, in the spirit of probabilistic-unclean-
    database frameworks where the error model is first-class.

    Each diagnostic carries a {!severity}: [Error] diagnostics make the
    table unusable under the paper's semantics (per-cluster
    distributions must be probability distributions); [Warning]
    diagnostics are suspicious but tolerable (a zero-probability tuple,
    an exact duplicate inside a cluster).  {!Repair} consumes these
    diagnostics to fix tables cluster by cluster. *)

type severity = Error | Warning

type diagnostic =
  | Missing_column of { table : string; column : string; role : string }
      (** A designated column ([role] is ["identifier"] or
          ["probability"]) is absent from the schema. *)
  | Non_numeric_probability of {
      table : string;
      row : int;
      cluster : Value.t;
      value : Value.t;
    }  (** The probability field does not parse as a number. *)
  | Nan_probability of { table : string; row : int; cluster : Value.t }
      (** The probability is a float NaN. *)
  | Probability_out_of_range of {
      table : string;
      row : int;
      cluster : Value.t;
      value : float;
    }  (** The probability lies outside [0, 1] (beyond tolerance). *)
  | Zero_probability of { table : string; row : int; cluster : Value.t }
      (** The probability is exactly 0: the tuple can never be chosen.
          Warning only. *)
  | Cluster_sum_mismatch of {
      table : string;
      cluster : Value.t;
      sum : float;
      size : int;
    }  (** The cluster's probabilities do not sum to 1 (beyond
          tolerance). *)
  | Duplicate_tuple of {
      table : string;
      cluster : Value.t;
      rows : int list;
    }  (** Two or more rows of the cluster agree on every
          non-probability attribute.  Warning only. *)
  | Empty_cluster of { table : string; cluster : Value.t }
      (** A cluster identifier with no member rows (cannot arise from
          {!Cluster.of_relation}, but guarded against). *)
  | Dangling_reference of {
      table : string;
      row : int;
      attr : string;
      value : Value.t;
      target : string;
    }  (** A foreign-key value (after identifier propagation) that
          names no cluster of the referenced table.  [Null] foreign
          keys are not dangling: {!Dirty_db.propagate} legitimately
          maps unmatched keys to [Null]. *)

val severity : diagnostic -> severity
val table_of : diagnostic -> string

val to_string : diagnostic -> string
(** One-line human-readable rendering, e.g.
    ["error: table customer: cluster c2 probabilities sum to 0.7 (4 tuples), expected 1"]. *)

val pp : Format.formatter -> diagnostic -> unit

(** A foreign-key reference between two dirty tables, checked by
    {!db_diagnostics}: every non-null value of [table.fk_attr] must be
    a cluster identifier of [target]. *)
type reference = { ref_table : string; fk_attr : string; target : string }

val table_diagnostics : Dirty_db.table -> diagnostic list
(** All intra-table diagnostics, in row/cluster order.  One pass;
    never raises. *)

val db_diagnostics :
  ?references:reference list -> Dirty_db.t -> diagnostic list
(** Diagnostics of every table plus dangling-reference checks for the
    given [references].  A [reference] naming an unknown table or
    attribute yields a {!Missing_column} diagnostic rather than an
    exception. *)

val errors : diagnostic list -> diagnostic list
(** The [Error]-severity subset. *)

val is_clean : diagnostic list -> bool
(** True when the list contains no [Error]-severity diagnostic. *)
