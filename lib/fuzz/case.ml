(* A fuzz case: a schema spec, a dirty instance over it, and a query.
   This is the unit the differential harness runs, shrinks, and saves
   to the corpus. *)

type t = {
  spec : Dbgen.spec;
  db : Dirty.Dirty_db.t;
  query : Sql.Ast.query;
}

let sql c = Sql.Pretty.query_to_string c.query

let print c = Dbgen.db_to_string c.db ^ sql c ^ "\n"

let gen ?max_candidates () : t QCheck.Gen.t =
  QCheck.Gen.(
    Dbgen.spec_gen >>= fun spec ->
    Dbgen.instance_gen ?max_candidates spec >>= fun db ->
    Querygen.gen spec >>= fun query -> return { spec; db; query })

(* tables the query does not mention can be dropped wholesale *)
let drop_unused_tables c : t QCheck.Iter.t =
 fun yield ->
  let used =
    List.map (fun (r : Sql.Ast.table_ref) -> r.table) c.query.from
  in
  let tables = Dirty.Dirty_db.tables c.db in
  List.iter
    (fun (t : Dirty.Dirty_db.table) ->
      if not (List.mem t.name used) then begin
        let rest = List.filter (fun (u : Dirty.Dirty_db.table) -> u != t) tables in
        let db =
          List.fold_left Dirty.Dirty_db.add_table Dirty.Dirty_db.empty rest
        in
        let spec =
          List.filter (fun (s : Dbgen.table_spec) -> s.name <> t.name) c.spec
        in
        yield { c with db; spec }
      end)
    tables

let shrink c : t QCheck.Iter.t =
  QCheck.Iter.append
    (QCheck.Iter.map (fun query -> { c with query }) (Querygen.shrink c.query))
    (QCheck.Iter.append (drop_unused_tables c)
       (QCheck.Iter.map (fun db -> { c with db }) (Dbgen.shrink_db c.db)))

let arbitrary ?max_candidates () =
  QCheck.make ~print ~shrink (gen ?max_candidates ())
