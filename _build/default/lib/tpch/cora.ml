module Value = Dirty.Value
module Relation = Dirty.Relation
module Cluster = Dirty.Cluster

type config = {
  cluster_size : int;
  variant_fraction : float;
  plant_foreign : bool;
  seed : int;
}

let default =
  { cluster_size = 56; variant_fraction = 0.25; plant_foreign = true; seed = 7 }

type generated = {
  relation : Relation.t;
  attrs : string list;
  clustering : Cluster.t;
  canonical_rows : int list;
  variant_rows : int list;
  foreign_row : int option;
}

let attrs = [ "author"; "title"; "venue"; "volume"; "year"; "pages" ]

let schema =
  Dirty.Schema.make
    [
      ("author", Value.TString);
      ("title", Value.TString);
      ("venue", Value.TString);
      ("volume", Value.TString);
      ("year", Value.TString);
      ("pages", Value.TString);
      ("cluster", Value.TString);
    ]

(* The canonical citation, after the paper's Schapire example. *)
let canonical =
  [|
    "robert e. schapire";
    "the strength of weak learnability";
    "machine learning";
    "5(2)";
    "1990";
    "197-227";
  |]

(* The planted foreign publication (Table 4's penultimate tuple
   "corresponds to a different publication"). *)
let foreign =
  [|
    "r. schapire";
    "on the strength of weak learnability";
    "proc of the 30th i.e.e.e. symposium";
    "NULL";
    "1989";
    "pp. 28-33";
  |]

(* formatting variations of individual fields *)
let author_variants =
  [| "r. schapire"; "schapire, r.e."; "r. e. schapire"; "robert schapire" |]

let volume_variants = [| "5"; "5(2)"; "vol. 5"; "NULL" |]
let year_variants = [| "1990"; "(1990)"; "90" |]
let pages_variants = [| "197-227"; "pp. 197-227"; "pages 197-227" |]
let venue_variants = [| "machine learning"; "machine learning journal"; "mach. learn." |]

let variant_row rng =
  let pick arr = arr.(Random.State.int rng (Array.length arr)) in
  let row = Array.copy canonical in
  (* vary between one and three fields *)
  let n = 1 + Random.State.int rng 3 in
  for _ = 1 to n do
    match Random.State.int rng 5 with
    | 0 -> row.(0) <- pick author_variants
    | 1 -> row.(2) <- pick venue_variants
    | 2 -> row.(3) <- pick volume_variants
    | 3 -> row.(4) <- pick year_variants
    | _ -> row.(5) <- pick pages_variants
  done;
  row

let generate config =
  let rng = Random.State.make [| config.seed |] in
  let foreign_count = if config.plant_foreign then 1 else 0 in
  let variant_count =
    let base =
      int_of_float
        (Float.round (config.variant_fraction *. float_of_int config.cluster_size))
    in
    min base (config.cluster_size - foreign_count - 1)
  in
  let canonical_count = config.cluster_size - variant_count - foreign_count in
  if canonical_count < 1 then
    invalid_arg "Cora.generate: cluster too small for the requested mix";
  let rows = ref [] and kinds = ref [] in
  for _ = 1 to canonical_count do
    rows := Array.copy canonical :: !rows;
    kinds := `Canonical :: !kinds
  done;
  for _ = 1 to variant_count do
    rows := variant_row rng :: !rows;
    kinds := `Variant :: !kinds
  done;
  if config.plant_foreign then begin
    rows := Array.copy foreign :: !rows;
    kinds := `Foreign :: !kinds
  end;
  (* shuffle rows to avoid positional artifacts *)
  let paired = Array.of_list (List.combine !rows !kinds) in
  for i = Array.length paired - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = paired.(i) in
    paired.(i) <- paired.(j);
    paired.(j) <- tmp
  done;
  let to_value_row fields =
    Array.append
      (Array.map (fun s -> Value.String s) fields)
      [| Value.String "schapire90" |]
  in
  let relation =
    Relation.of_array schema (Array.map (fun (r, _) -> to_value_row r) paired)
  in
  let clustering = Cluster.of_relation relation ~id_attr:"cluster" in
  let classify kind =
    List.of_seq
      (Seq.filter_map
         (fun (i, (_, k)) -> if k = kind then Some i else None)
         (Array.to_seqi paired))
  in
  {
    relation;
    attrs;
    clustering;
    canonical_rows = classify `Canonical;
    variant_rows = classify `Variant;
    foreign_row = (match classify `Foreign with [ i ] -> Some i | _ -> None);
  }

let ranking generated =
  let result =
    Prob.Assign.run ~attrs:generated.attrs generated.relation generated.clustering
  in
  let pairs =
    List.init
      (Array.length result.probabilities)
      (fun i -> (i, result.probabilities.(i)))
  in
  List.sort (fun (_, a) (_, b) -> Float.compare b a) pairs
