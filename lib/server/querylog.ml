(* The structured query log: one flat JSON record per /query request,
   retained in a bounded in-memory ring (the [/debug/querylog] surface
   and the [conquer trace --log] tail read it by sequence cursor) and
   optionally appended as JSON lines to a file.

   Records are flat on purpose: every field is a string, number or
   boolean, so the parser in [of_json] — which the CLI tail and the
   round-trip tests share — stays a page long and the format stays
   greppable with standard tooling. *)

type record = {
  seq : int;  (* monotone per daemon; 0 until {!log} stamps it *)
  ts : float;  (* Unix epoch seconds at response completion *)
  trace_id : string;
  sampled : bool;  (* span tree captured and retained for this id *)
  sql : string;  (* normalized SQL ("" when the query never parsed) *)
  fingerprint : string;  (* stable hash of the normalized SQL *)
  plan_hash : string;  (* stable hash of the physical plan; "" if unplanned *)
  generation : int;  (* store generation answered from; -1 if none *)
  mode : string;  (* "rewritten" | "original" *)
  status : int;  (* HTTP status sent *)
  rows : int;  (* answer rows in a 200; 0 otherwise *)
  truncated : bool;
  cancelled : bool;
  cached : bool;
  slow : bool;  (* total latency crossed the slow-query threshold *)
  queue_wait_ms : float;  (* admission-queue wait (incl. header read) *)
  exec_ms : float;  (* plan+execute inside the engine *)
  total_ms : float;  (* accept to response written *)
}

let empty_record =
  {
    seq = 0;
    ts = 0.0;
    trace_id = "";
    sampled = false;
    sql = "";
    fingerprint = "";
    plan_hash = "";
    generation = -1;
    mode = "rewritten";
    status = 0;
    rows = 0;
    truncated = false;
    cancelled = false;
    cached = false;
    slow = false;
    queue_wait_ms = 0.0;
    exec_ms = 0.0;
    total_ms = 0.0;
  }

(* stable SQL fingerprint: queries equal after normalization (the
   pretty-printed AST) share it across restarts and processes *)
let fingerprint sql = String.sub (Digest.to_hex (Digest.string sql)) 0 16

(* ---- JSON ---- *)

let to_json r =
  let js = Telemetry.Export.json_string in
  (* %.17g round-trips every finite double exactly, so
     [of_json (to_json r) = Ok r] holds bit-for-bit *)
  let jf f =
    if Float.is_finite f then Printf.sprintf "%.17g" f else "null"
  in
  Printf.sprintf
    "{\"seq\":%d,\"ts\":%s,\"trace_id\":%s,\"sampled\":%b,\"sql\":%s,\"fingerprint\":%s,\"plan_hash\":%s,\"generation\":%d,\"mode\":%s,\"status\":%d,\"rows\":%d,\"truncated\":%b,\"cancelled\":%b,\"cached\":%b,\"slow\":%b,\"queue_wait_ms\":%s,\"exec_ms\":%s,\"total_ms\":%s}"
    r.seq (jf r.ts) (js r.trace_id) r.sampled (js r.sql) (js r.fingerprint)
    (js r.plan_hash) r.generation (js r.mode) r.status r.rows r.truncated
    r.cancelled r.cached r.slow (jf r.queue_wait_ms) (jf r.exec_ms)
    (jf r.total_ms)

(* A minimal parser for the flat objects [to_json] emits: string,
   number, boolean and null values only (no nesting).  Unknown keys
   are ignored, so the format can grow fields without breaking old
   readers. *)

exception Parse of string

let of_json line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match line.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match line.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "dangling escape"
           else
             match line.[!pos] with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'n' -> Buffer.add_char buf '\n'
             | 'r' -> Buffer.add_char buf '\r'
             | 't' -> Buffer.add_char buf '\t'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'u' ->
               if !pos + 4 >= n then fail "short \\u escape";
               let hex = String.sub line (!pos + 1) 4 in
               (match int_of_string_opt ("0x" ^ hex) with
               | Some code when code < 0x80 ->
                 Buffer.add_char buf (Char.chr code)
               | Some code ->
                 (* non-ASCII escapes re-encode as UTF-8 *)
                 if code < 0x800 then begin
                   Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                   Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                 end
                 else begin
                   Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                   Buffer.add_char buf
                     (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                   Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                 end
               | None -> fail "bad \\u escape");
               pos := !pos + 4
             | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          advance ();
          go ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_scalar () =
    skip_ws ();
    match peek () with
    | Some '"' -> `String (parse_string ())
    | Some 't' ->
      if !pos + 4 <= n && String.sub line !pos 4 = "true" then begin
        pos := !pos + 4;
        `Bool true
      end
      else fail "bad literal"
    | Some 'f' ->
      if !pos + 5 <= n && String.sub line !pos 5 = "false" then begin
        pos := !pos + 5;
        `Bool false
      end
      else fail "bad literal"
    | Some 'n' ->
      if !pos + 4 <= n && String.sub line !pos 4 = "null" then begin
        pos := !pos + 4;
        `Null
      end
      else fail "bad literal"
    | Some _ ->
      let start = !pos in
      while
        !pos < n
        &&
        match line.[!pos] with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      do
        advance ()
      done;
      if !pos = start then fail "expected a value";
      let text = String.sub line start (!pos - start) in
      (match float_of_string_opt text with
      | Some f -> `Number f
      | None -> fail ("bad number " ^ text))
    | None -> fail "expected a value"
  in
  match
    skip_ws ();
    expect '{';
    let fields = ref [] in
    skip_ws ();
    (match peek () with
    | Some '}' -> advance ()
    | _ ->
      let rec members () =
        let key = (skip_ws (); parse_string ()) in
        expect ':';
        let v = parse_scalar () in
        fields := (key, v) :: !fields;
        skip_ws ();
        match peek () with
        | Some ',' ->
          advance ();
          members ()
        | Some '}' -> advance ()
        | _ -> fail "expected ',' or '}'"
      in
      members ());
    skip_ws ();
    if !pos <> n then fail "trailing bytes";
    !fields
  with
  | exception Parse msg -> Error msg
  | fields ->
    let str key default =
      match List.assoc_opt key fields with
      | Some (`String s) -> s
      | _ -> default
    in
    let num key default =
      match List.assoc_opt key fields with
      | Some (`Number f) -> f
      | _ -> default
    in
    let int_ key default =
      match List.assoc_opt key fields with
      | Some (`Number f) -> int_of_float f
      | _ -> default
    in
    let flag key default =
      match List.assoc_opt key fields with
      | Some (`Bool b) -> b
      | _ -> default
    in
    Ok
      {
        seq = int_ "seq" 0;
        ts = num "ts" 0.0;
        trace_id = str "trace_id" "";
        sampled = flag "sampled" false;
        sql = str "sql" "";
        fingerprint = str "fingerprint" "";
        plan_hash = str "plan_hash" "";
        generation = int_ "generation" (-1);
        mode = str "mode" "rewritten";
        status = int_ "status" 0;
        rows = int_ "rows" 0;
        truncated = flag "truncated" false;
        cancelled = flag "cancelled" false;
        cached = flag "cached" false;
        slow = flag "slow" false;
        queue_wait_ms = num "queue_wait_ms" 0.0;
        exec_ms = num "exec_ms" 0.0;
        total_ms = num "total_ms" 0.0;
      }

(* ---- the log itself: bounded ring plus optional file sink ---- *)

type t = {
  lock : Mutex.t;
  capacity : int;
  slots : record option array;
  mutable next_seq : int;  (* seq of the next record; starts at 1 *)
  sink : out_channel option;
}

let create ?(capacity = 512) ?path () =
  let sink =
    Option.map
      (fun p -> open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 p)
      path
  in
  {
    lock = Mutex.create ();
    capacity = max 1 capacity;
    slots = Array.make (max 1 capacity) None;
    next_seq = 1;
    sink;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* stamp the record with the next sequence number, retain it, append
   it to the sink (if any), and return the stamped record *)
let log t record =
  locked t @@ fun () ->
  let stamped = { record with seq = t.next_seq } in
  t.slots.(t.next_seq mod t.capacity) <- Some stamped;
  t.next_seq <- t.next_seq + 1;
  (match t.sink with
  | Some oc ->
    output_string oc (to_json stamped);
    output_char oc '\n';
    flush oc
  | None -> ());
  stamped

(* records with seq > [after], ascending, at most [n]; the shape a
   tail wants: poll with the last seq seen as the new cursor *)
let recent ?(after = 0) ?n t =
  locked t @@ fun () ->
  let newest = t.next_seq - 1 in
  let oldest = max 1 (t.next_seq - t.capacity) in
  let lo = max oldest (after + 1) in
  let want = match n with None -> t.capacity | Some n -> max 0 n in
  (* when more than [n] match, keep the newest [n] *)
  let lo = max lo (newest - want + 1) in
  let rec collect acc seq =
    if seq < lo then acc
    else
      match t.slots.(seq mod t.capacity) with
      | Some r when r.seq = seq -> collect (r :: acc) (seq - 1)
      | _ -> collect acc (seq - 1)
  in
  collect [] newest

let close t =
  locked t (fun () ->
      match t.sink with Some oc -> close_out_noerr oc | None -> ())
