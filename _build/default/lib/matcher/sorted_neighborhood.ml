open Dirty

type pass = { key_attrs : string list; key_prefix : int }

let pass ?(key_prefix = 3) key_attrs = { key_attrs; key_prefix }

type config = {
  passes : pass list;
  window : int;
  threshold : float;
  attrs : string list;
}

let blocking_key rel pass row_index =
  let schema = Relation.schema rel in
  let row = Relation.get rel row_index in
  String.concat "|"
    (List.map
       (fun attr ->
         let v = Value.to_string row.(Schema.index_of schema attr) in
         let v = String.lowercase_ascii v in
         if String.length v <= pass.key_prefix then v
         else String.sub v 0 pass.key_prefix)
       pass.key_attrs)

let sorted_order rel pass =
  let n = Relation.cardinality rel in
  let keyed = Array.init n (fun i -> (blocking_key rel pass i, i)) in
  Array.sort compare keyed;
  Array.map snd keyed

let validate config =
  if config.passes = [] then
    invalid_arg "Sorted_neighborhood: at least one pass required";
  if config.window < 2 then invalid_arg "Sorted_neighborhood: window < 2";
  if config.threshold < 0.0 || config.threshold > 1.0 then
    invalid_arg "Sorted_neighborhood: threshold outside [0,1]"

let iter_window_pairs order window f =
  let n = Array.length order in
  for i = 0 to n - 1 do
    for j = i + 1 to min (n - 1) (i + window - 1) do
      f order.(i) order.(j)
    done
  done

let run config rel =
  validate config;
  let n = Relation.cardinality rel in
  let uf = Union_find.create n in
  List.iter
    (fun pass ->
      let order = sorted_order rel pass in
      iter_window_pairs order config.window (fun a b ->
          if not (Union_find.same uf a b) then
            if
              Similarity.record_similarity rel ~attrs:config.attrs a b
              >= config.threshold
            then Union_find.union uf a b))
    config.passes;
  Union_find.to_cluster uf

let pairs_compared config rel =
  validate config;
  let n = Relation.cardinality rel in
  let per_pass =
    (* a window of size w over n rows examines (w-1) pairs per start,
       truncated at the tail *)
    let count = ref 0 in
    for i = 0 to n - 1 do
      count := !count + (min (n - 1) (i + config.window - 1) - i)
    done;
    !count
  in
  per_pass * List.length config.passes
