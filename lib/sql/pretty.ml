open Ast

let binop_to_string = function
  | Eq -> "=" | Neq -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"
  | And -> "AND" | Or -> "OR"

let agg_to_string = function
  | Count -> "COUNT" | Sum -> "SUM" | Avg -> "AVG" | Min -> "MIN" | Max -> "MAX"

(* Precedence levels used to decide parenthesization; larger binds
   tighter. *)
let prec_of_binop = function
  | Or -> 1
  | And -> 2
  | Eq | Neq | Lt | Le | Gt | Ge -> 4
  | Add | Sub -> 5
  | Mul | Div -> 6

let prec = function
  | Binop (op, _, _) -> prec_of_binop op
  | Unop (Not, _) -> 3
  | Like _ | Not_like _ | In_list _ | Between _ | Is_null _ | Is_not_null _
  | In_query _ ->
    4
  | Unop (Neg, _) -> 7
  | Lit _ | Col _ | Agg _ | Exists _ | Scalar_subquery _ -> 8

let quote_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '\'';
  String.iter
    (fun c -> if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
    s;
  Buffer.add_char buf '\'';
  Buffer.contents buf

let rec expr_at level e =
  let text = expr_raw e in
  if prec e < level then "(" ^ text ^ ")" else text

and expr_raw = function
  | Lit v -> Dirty.Value.to_sql v
  | Col { table = None; name } -> name
  | Col { table = Some t; name } -> t ^ "." ^ name
  | Unop (Not, e) -> "NOT " ^ expr_at 4 e
  | Unop (Neg, e) ->
    (* avoid "--", which lexes as a line comment *)
    let body = expr_at 8 e in
    if String.length body > 0 && body.[0] = '-' then "-(" ^ body ^ ")"
    else "-" ^ body
  | Binop (((Eq | Neq | Lt | Le | Gt | Ge) as op), a, b) ->
    (* comparisons and predicates are non-associative in the grammar:
       both operands must be additive-level or parenthesized *)
    expr_at 5 a ^ " " ^ binop_to_string op ^ " " ^ expr_at 5 b
  | Binop (((And | Or) as op), a, b) ->
    (* the grammar parses AND/OR right-associative, so a left-nested
       chain must parenthesize its left child to reparse into the same
       tree *)
    let p = prec_of_binop op in
    expr_at (p + 1) a ^ " " ^ binop_to_string op ^ " " ^ expr_at p b
  | Binop (op, a, b) ->
    let p = prec_of_binop op in
    (* left-associative: the right child needs strictly higher
       precedence to avoid parentheses *)
    expr_at p a ^ " " ^ binop_to_string op ^ " " ^ expr_at (p + 1) b
  | Like (e, pattern) -> expr_at 5 e ^ " LIKE " ^ quote_string pattern
  | Not_like (e, pattern) -> expr_at 5 e ^ " NOT LIKE " ^ quote_string pattern
  | In_list (e, values) ->
    expr_at 5 e ^ " IN ("
    ^ String.concat ", " (List.map Dirty.Value.to_sql values)
    ^ ")"
  | Between (e, lo, hi) ->
    expr_at 5 e ^ " BETWEEN " ^ expr_at 5 lo ^ " AND " ^ expr_at 5 hi
  | Is_null e -> expr_at 5 e ^ " IS NULL"
  | Is_not_null e -> expr_at 5 e ^ " IS NOT NULL"
  | Agg (Count, None) -> "COUNT(*)"
  | Agg (f, None) -> agg_to_string f ^ "(*)"
  | Agg (f, Some e) -> agg_to_string f ^ "(" ^ expr_raw e ^ ")"
  | In_query (e, q) -> expr_at 5 e ^ " IN (" ^ query_text ~sep:" " q ^ ")"
  | Exists q -> "EXISTS (" ^ query_text ~sep:" " q ^ ")"
  | Scalar_subquery q -> "(" ^ query_text ~sep:" " q ^ ")"

and select_item_to_string { expr; alias } =
  match alias with
  | None -> expr_raw expr
  | Some a -> expr_raw expr ^ " AS " ^ a

and table_ref_to_string ({ table; t_alias } : Ast.table_ref) =
  match t_alias with None -> table | Some a -> table ^ " " ^ a

(* [sep] separates the clauses: newline for top-level rendering, a
   space for inline subqueries *)
and query_text ~sep q =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "SELECT ";
  if q.distinct then Buffer.add_string buf "DISTINCT ";
  (match q.select with
  | Star -> Buffer.add_string buf "*"
  | Items items ->
    Buffer.add_string buf
      (String.concat ", " (List.map select_item_to_string items)));
  Buffer.add_string buf (sep ^ "FROM ");
  Buffer.add_string buf (String.concat ", " (List.map table_ref_to_string q.from));
  List.iter
    (fun { oj_table; oj_on } ->
      Buffer.add_string buf
        (sep ^ "LEFT OUTER JOIN " ^ table_ref_to_string oj_table ^ " ON "
        ^ expr_raw oj_on))
    q.outer_joins;
  Option.iter
    (fun w ->
      Buffer.add_string buf (sep ^ "WHERE ");
      Buffer.add_string buf (expr_raw w))
    q.where;
  if q.group_by <> [] then begin
    Buffer.add_string buf (sep ^ "GROUP BY ");
    Buffer.add_string buf (String.concat ", " (List.map expr_raw q.group_by))
  end;
  Option.iter
    (fun h ->
      Buffer.add_string buf (sep ^ "HAVING ");
      Buffer.add_string buf (expr_raw h))
    q.having;
  if q.order_by <> [] then begin
    Buffer.add_string buf (sep ^ "ORDER BY ");
    Buffer.add_string buf
      (String.concat ", "
         (List.map
            (fun { o_expr; desc } -> expr_raw o_expr ^ if desc then " DESC" else "")
            q.order_by))
  end;
  Option.iter
    (fun l -> Buffer.add_string buf (Printf.sprintf "%sLIMIT %d" sep l))
    q.limit;
  Buffer.contents buf

let expr_to_string e = expr_raw e
let query_to_string q = query_text ~sep:"\n" q

let pp_expr fmt e = Format.pp_print_string fmt (expr_to_string e)
let pp_query fmt q = Format.pp_print_string fmt (query_to_string q)
