(* Retry-with-capped-exponential-backoff for transient I/O failures.

   The store wraps each per-file persistence step (write temp, fsync,
   rename) in [with_retry]: a transient failure — an injected EIO, an
   interrupted syscall — is retried after a backoff that doubles from
   [base_backoff] up to [max_backoff]; permanent failures (ENOSPC, a
   simulated crash, programming errors) propagate immediately.

   Both the clock and the classifier are injectable, so the QCheck
   property in test/test_chaos.ml verifies the exact attempt count and
   sleep sequence without ever sleeping for real. *)

type policy = {
  attempts : int;
  base_backoff : float;
  max_backoff : float;
  jitter : float;
}

let default_policy =
  { attempts = 3; base_backoff = 0.05; max_backoff = 2.0; jitter = 1.0 }

(* the process-wide policy used by Dirty.Store; the CLI's --retries /
   --io-backoff-ms flags write it once at startup *)
let current = Atomic.make default_policy

let set_policy p =
  Atomic.set current
    {
      p with
      attempts = max 1 p.attempts;
      jitter = Float.min 1.0 (Float.max 0.0 p.jitter);
    }
let policy () = Atomic.get current

let m_io_retries =
  Telemetry.Metrics.counter "fault.retry.io_retries"
    ~help:"I/O operations retried after a transient failure"

exception Gave_up of { attempts : int; last : exn }

let () =
  Printexc.register_printer (function
    | Gave_up { attempts; last } ->
      Some
        (Printf.sprintf "Fault.Retry.Gave_up: still failing after %d attempts: %s"
           attempts (Printexc.to_string last))
    | _ -> None)

let default_classify = function
  | Io.Io_error { transient; _ } -> if transient then `Transient else `Permanent
  | Io.Crashed -> `Permanent
  | Unix.Unix_error ((EINTR | EAGAIN | EIO), _, _) -> `Transient
  | Sys_error _ -> `Transient
  | _ -> `Permanent

let backoff policy i =
  Float.min policy.max_backoff (policy.base_backoff *. (2.0 ** float_of_int i))

(* Full jitter (à la "Exponential Backoff and Jitter", AWS builders'
   library): with jitter factor j, the delay after failed attempt i is
   drawn uniformly from [(1-j)*b, b] where b is the capped-exponential
   ceiling — j=0 is the deterministic schedule, j=1 (the default) is
   the classic full-jitter U[0, b].  Many clients retrying a shed or
   recovering server thereby desynchronize instead of stampeding back
   in lockstep.  [rng] must return a float in [0, 1); it is a seam so
   tests can pin the draw. *)
let default_rng () = Random.float 1.0

let jittered_backoff ?(rng = default_rng) policy i =
  let b = backoff policy i in
  let j = Float.min 1.0 (Float.max 0.0 policy.jitter) in
  b *. (1.0 -. j +. (j *. Float.min 1.0 (Float.max 0.0 (rng ()))))

let with_retry ?policy:p ?(classify = default_classify)
    ?(sleep = Unix.sleepf) ?rng f =
  let p = match p with Some p -> p | None -> policy () in
  let attempts = max 1 p.attempts in
  let rec go i =
    match f () with
    | v -> v
    | exception e -> (
      match classify e with
      | `Permanent -> raise e
      | `Transient ->
        if i + 1 >= attempts then
          if i = 0 then raise e else raise (Gave_up { attempts; last = e })
        else begin
          Telemetry.Metrics.inc m_io_retries;
          sleep (jittered_backoff ?rng p i);
          go (i + 1)
        end)
  in
  go 0
