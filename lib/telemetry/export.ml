(* Exporters: pretty span trees, JSON-lines traces, and a
   Prometheus-style text dump of the metrics registry. *)

(* ---- small hand-rolled JSON emitters (no external dependency) ---- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = "\"" ^ json_escape s ^ "\""

(* JSON numbers may not be nan/inf; clamp to null *)
let json_float f =
  if Float.is_finite f then Printf.sprintf "%.9g" f else "null"

(* ---- span trees ---- *)

let pp_words ppf w =
  if w >= 1e6 then Format.fprintf ppf "%.1fMw" (w /. 1e6)
  else if w >= 1e3 then Format.fprintf ppf "%.1fkw" (w /. 1e3)
  else Format.fprintf ppf "%.0fw" w

let rec pp_span_indent ppf indent (s : Span.t) =
  Format.fprintf ppf "%s%s  %.3fms  minor=%a major=%a" (String.make indent ' ')
    s.name (s.elapsed *. 1000.0) pp_words s.minor_words pp_words s.major_words;
  List.iter
    (fun (k, v) -> Format.fprintf ppf "  %s=%s" k v)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) s.attrs);
  Format.fprintf ppf "@\n";
  List.iter (pp_span_indent ppf (indent + 2)) s.children

let pp_span ppf s = pp_span_indent ppf 0 s

let span_to_string s = Format.asprintf "%a" pp_span s

(* one JSON object per span, children nested *)
let rec span_json buf (s : Span.t) =
  Buffer.add_string buf "{\"name\":";
  Buffer.add_string buf (json_string s.name);
  Buffer.add_string buf (Printf.sprintf ",\"start\":%s" (json_float s.start));
  Buffer.add_string buf
    (Printf.sprintf ",\"elapsed_ms\":%s" (json_float (s.elapsed *. 1000.0)));
  Buffer.add_string buf
    (Printf.sprintf ",\"minor_words\":%s" (json_float s.minor_words));
  Buffer.add_string buf
    (Printf.sprintf ",\"major_words\":%s" (json_float s.major_words));
  if s.attrs <> [] then begin
    Buffer.add_string buf ",\"attrs\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (json_string k);
        Buffer.add_char buf ':';
        Buffer.add_string buf (json_string v))
      (List.sort (fun (a, _) (b, _) -> String.compare a b) s.attrs);
    Buffer.add_char buf '}'
  end;
  if s.children <> [] then begin
    Buffer.add_string buf ",\"children\":[";
    List.iteri
      (fun i child ->
        if i > 0 then Buffer.add_char buf ',';
        span_json buf child)
      s.children;
    Buffer.add_char buf ']'
  end;
  Buffer.add_char buf '}'

let span_to_json s =
  let buf = Buffer.create 256 in
  span_json buf s;
  Buffer.contents buf

(* Append each completed root as one JSON line.  Opens lazily on the
   first span and registers the close at exit, so subscribing is cheap
   when nothing ever traces.  A mutex serializes writers: spans can
   complete on several domains at once, and a torn JSON line would
   corrupt the whole trace file. *)
let trace_writer path =
  let lock = Mutex.create () in
  let channel = ref None in
  let get () =
    match !channel with
    | Some oc -> oc
    | None ->
      let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path in
      channel := Some oc;
      at_exit (fun () -> close_out_noerr oc);
      oc
  in
  fun span ->
    let line = span_to_json span in
    Mutex.lock lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock lock)
      (fun () ->
        let oc = get () in
        output_string oc line;
        output_char oc '\n';
        flush oc)

(* ---- Prometheus text exposition format ----

   Conformant with the classic text format (the dialect a
   promtool-style checker accepts): metric names restricted to
   [a-zA-Z_:][a-zA-Z0-9_:]*, counter families carry the [_total]
   suffix, HELP text escapes backslash and newline, label values
   escape backslash / newline / double quote, sample values render
   as Prometheus floats ([NaN], [+Inf], [-Inf] — never JSON null),
   and every histogram family emits cumulative [_bucket] series
   ending in [le="+Inf"] plus [_sum] and [_count]. *)

let prometheus_name name =
  let mapped =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
        | _ -> '_')
      name
  in
  "conquer_" ^ mapped

(* Prometheus floats are not JSON floats: non-finite values have
   spellings instead of being unrepresentable *)
let prometheus_float f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else Printf.sprintf "%.9g" f

(* HELP lines run to end-of-line: backslash and newline would change
   the parse, so they are escaped (the only escapes the format has) *)
let prometheus_escape_help s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* label values live inside double quotes: quote joins the escape set *)
let prometheus_escape_label s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '"' -> Buffer.add_string buf "\\\""
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let pp_prometheus ppf () =
  List.iter
    (fun (s : Metrics.sample) ->
      let base = prometheus_name s.name in
      let family, kind =
        match s.data with
        (* counters expose the family as <name>_total, the convention
           format checkers enforce *)
        | Metrics.Counter_value _ ->
          ( (if String.ends_with ~suffix:"_total" base then base
             else base ^ "_total"),
            "counter" )
        | Metrics.Gauge_value _ -> (base, "gauge")
        | Metrics.Histogram_value _ -> (base, "histogram")
      in
      if s.help <> "" then
        Format.fprintf ppf "# HELP %s %s@\n" family
          (prometheus_escape_help s.help);
      Format.fprintf ppf "# TYPE %s %s@\n" family kind;
      match s.data with
      | Metrics.Counter_value n -> Format.fprintf ppf "%s %d@\n" family n
      | Metrics.Gauge_value v ->
        Format.fprintf ppf "%s %s@\n" family (prometheus_float v)
      | Metrics.Histogram_value h ->
        Array.iteri
          (fun i bound ->
            Format.fprintf ppf "%s_bucket{le=\"%s\"} %d@\n" family
              (prometheus_float bound) h.hs_counts.(i))
          h.hs_bounds;
        Format.fprintf ppf "%s_bucket{le=\"+Inf\"} %d@\n" family
          h.hs_counts.(Array.length h.hs_counts - 1);
        Format.fprintf ppf "%s_sum %s@\n" family (prometheus_float h.hs_sum);
        Format.fprintf ppf "%s_count %d@\n" family h.hs_total)
    (Metrics.snapshot ())

let prometheus_string () = Format.asprintf "%a" pp_prometheus ()

let write_metrics path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (prometheus_string ()))

(* metrics snapshot as a JSON object: counters and gauges as numbers,
   histograms as {count, sum} — used by the bench harness *)
let metrics_json () =
  let buf = Buffer.create 512 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (s : Metrics.sample) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (json_string s.name);
      Buffer.add_char buf ':';
      match s.data with
      | Metrics.Counter_value n -> Buffer.add_string buf (string_of_int n)
      | Metrics.Gauge_value v -> Buffer.add_string buf (json_float v)
      | Metrics.Histogram_value h ->
        Buffer.add_string buf
          (Printf.sprintf "{\"count\":%d,\"sum\":%s}" h.hs_total
             (json_float h.hs_sum)))
    (Metrics.snapshot ());
  Buffer.add_char buf '}';
  Buffer.contents buf
