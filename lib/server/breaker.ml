(* Circuit breaker with the classic three states.  The cooldown
   schedule is Fault.Retry's capped-exponential backoff with jitter:
   the i-th consecutive trip sleeps jittered_backoff(policy, i), so a
   persistently damaged store is probed at a gently decaying rate and
   a fleet of daemons doesn't re-probe in lockstep. *)

let m_trips =
  Telemetry.Metrics.counter "serve.breaker_trips"
    ~help:"circuit-breaker transitions to open after repeated store failures"

type state = Closed | Open | Half_open

type t = {
  lock : Mutex.t;
  threshold : int;
  policy : Fault.Retry.policy;
  clock : unit -> float;
  mutable st : state;
  mutable consecutive_failures : int;  (* in Closed, toward threshold *)
  mutable consecutive_trips : int;  (* backoff index for the cooldown *)
  mutable open_until : float;
  mutable total_trips : int;
}

let create ?(threshold = 3) ?policy ?(clock = Unix.gettimeofday) () =
  let policy = match policy with Some p -> p | None -> Fault.Retry.policy () in
  {
    lock = Mutex.create ();
    threshold = max 1 threshold;
    policy;
    clock;
    st = Closed;
    consecutive_failures = 0;
    consecutive_trips = 0;
    open_until = 0.0;
    total_trips = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let state t = locked t (fun () -> t.st)
let trips t = locked t (fun () -> t.total_trips)

let trip t =
  t.st <- Open;
  t.open_until <- t.clock () +. Fault.Retry.jittered_backoff t.policy t.consecutive_trips;
  t.consecutive_trips <- t.consecutive_trips + 1;
  t.total_trips <- t.total_trips + 1;
  Telemetry.Metrics.inc m_trips

let allow t =
  locked t @@ fun () ->
  match t.st with
  | Closed -> true
  | Half_open -> false
  | Open ->
    if t.clock () >= t.open_until then begin
      (* cooldown over: admit exactly this caller as the probe *)
      t.st <- Half_open;
      true
    end
    else false

let success t =
  locked t @@ fun () ->
  t.st <- Closed;
  t.consecutive_failures <- 0;
  t.consecutive_trips <- 0

let failure t =
  locked t @@ fun () ->
  match t.st with
  | Half_open ->
    (* the probe failed: straight back to open, longer cooldown *)
    trip t
  | Closed ->
    t.consecutive_failures <- t.consecutive_failures + 1;
    if t.consecutive_failures >= t.threshold then begin
      t.consecutive_failures <- 0;
      trip t
    end
  | Open -> ()
