(* Random dirty databases for the differential fuzzing harness.

   Two generator families live here:

   - the general [spec]/[instance_gen] pair: a random multi-relation
     schema (identifier propagation through foreign keys, optional
     extra edges so join graphs can be diamonds or cycles) and a
     random valid dirty instance over it, and
   - the "store" family (string identifiers, single payload column)
     that the chaos suite crash-tests [Store.save] with.

   Every probability is a multiple of 1/16.  Sixteenths are exact
   binary floats and survive the CSV round-trip bit-for-bit, so
   per-cluster sums come back to exactly 1, differential comparisons
   can use a tight epsilon, and shrinking can move probability mass
   between tuples without leaving the grid. *)

open Dirty

let ( let* ) gen f = QCheck.Gen.( >>= ) gen f

(* ---- schema specs ---- *)

type table_spec = {
  name : string;
  payloads : string list;  (** non-key integer columns, [v0], [v1], ... *)
  fks : (string * string) list;
      (** (column, target table): the column holds identifiers of the
          target table's clusters *)
}

type spec = table_spec list

let fk_column target = "fk" ^ target

let schema_of_spec (t : table_spec) =
  Schema.make
    ((("id", Value.TInt) :: List.map (fun p -> (p, Value.TInt)) t.payloads)
    @ List.map (fun (c, _) -> (c, Value.TInt)) t.fks
    @ [ ("prob", Value.TFloat) ])

let parent_child_spec =
  [
    { name = "parent"; payloads = [ "val" ]; fks = [] };
    { name = "child"; payloads = [ "val" ]; fks = [ ("fk", "parent") ] };
  ]

(* Random spec: t0..t(n-1); every table after the first gets a foreign
   key to some earlier table with high probability (so most specs are
   join-able trees) and occasionally a second edge, which lets the
   query generator build diamond- and cycle-shaped join graphs. *)
let spec_gen : spec QCheck.Gen.t =
  let* ntables = QCheck.Gen.int_range 1 4 in
  let rec build i acc =
    if i >= ntables then QCheck.Gen.return (List.rev acc)
    else
      let name = Printf.sprintf "t%d" i in
      let* npayloads = QCheck.Gen.int_range 1 2 in
      let payloads = List.init npayloads (Printf.sprintf "v%d") in
      let* fks =
        if i = 0 then QCheck.Gen.return []
        else
          let* primary = QCheck.Gen.int_range 0 9 in
          let* target = QCheck.Gen.int_range 0 (i - 1) in
          let first =
            if primary < 9 then [ Printf.sprintf "t%d" target ] else []
          in
          let* extra = QCheck.Gen.int_range 0 9 in
          let* target2 = QCheck.Gen.int_range 0 (i - 1) in
          let t2 = Printf.sprintf "t%d" target2 in
          let all =
            if extra < 2 && not (List.mem t2 first) then first @ [ t2 ]
            else first
          in
          QCheck.Gen.return (List.map (fun t -> (fk_column t, t)) all)
      in
      build (i + 1) ({ name; payloads; fks } :: acc)
  in
  build 0 []

(* ---- probabilities on the 1/16 grid ---- *)

(* [k] positive sixteenth-counts summing to [total] *)
let rec sixteenths_gen k total =
  if k = 1 then QCheck.Gen.return [ total ]
  else
    let* first = QCheck.Gen.int_range 1 (total - k + 1) in
    let* rest = sixteenths_gen (k - 1) (total - first) in
    QCheck.Gen.return (first :: rest)

let probs_gen size =
  let* parts = sixteenths_gen size 16 in
  QCheck.Gen.return (List.map (fun s -> float_of_int s /. 16.0) parts)

(* ---- instances over a spec ---- *)

(* count of entities (clusters) per table, in spec order *)
let entity_counts spec =
  QCheck.Gen.flatten_l (List.map (fun _ -> QCheck.Gen.int_range 1 3) spec)

let fk_value_gen ~targets =
  (* mostly a live reference; sometimes NULL or dangling, which the
     engine must treat as joining to nothing *)
  let* roll = QCheck.Gen.int_range 0 9 in
  if roll = 0 then QCheck.Gen.return Value.Null
  else if roll = 1 then QCheck.Gen.return (Value.Int targets)
  else
    let* v = QCheck.Gen.int_range 0 (max 0 (targets - 1)) in
    QCheck.Gen.return (Value.Int v)

let row_gen (t : table_spec) ~counts_of ~entity ~prob =
  let* payloads =
    QCheck.Gen.flatten_l
      (List.map (fun _ -> QCheck.Gen.int_range 0 4) t.payloads)
  in
  let* fk_values =
    QCheck.Gen.flatten_l
      (List.map (fun (_, target) -> fk_value_gen ~targets:(counts_of target))
         t.fks)
  in
  QCheck.Gen.return
    (Array.of_list
       ((Value.Int entity :: List.map (fun v -> Value.Int v) payloads)
       @ fk_values
       @ [ Value.Float prob ]))

(* The candidate count is the product of cluster sizes across the
   whole database; the shared [budget] reference clamps it so every
   generated instance stays oracle-enumerable. *)
let cluster_rows_gen (t : table_spec) ~counts_of ~budget ~entity =
  let* size = QCheck.Gen.int_range 1 3 in
  let size = if size <= !budget then size else 1 in
  budget := !budget / size;
  let* probs = probs_gen size in
  QCheck.Gen.flatten_l
    (List.map (fun p -> row_gen t ~counts_of ~entity ~prob:p) probs)

let table_gen (t : table_spec) ~counts_of ~budget =
  let* clusters =
    QCheck.Gen.flatten_l
      (List.init (counts_of t.name) (fun entity ->
           cluster_rows_gen t ~counts_of ~budget ~entity))
  in
  QCheck.Gen.return
    (Dirty_db.make_table ~name:t.name ~id_attr:"id" ~prob_attr:"prob"
       (Relation.create (schema_of_spec t) (List.concat clusters)))

let instance_gen ?(max_candidates = 512) (spec : spec) =
  let* counts = entity_counts spec in
  let table = Hashtbl.create 8 in
  List.iter2 (fun (t : table_spec) n -> Hashtbl.replace table t.name n) spec
    counts;
  let counts_of name = try Hashtbl.find table name with Not_found -> 0 in
  (* fresh budget per generated instance: the ref is created inside
     the bind, after [counts] is drawn *)
  let budget = ref (max 1 max_candidates) in
  let* tables =
    QCheck.Gen.flatten_l
      (List.map (fun t -> table_gen t ~counts_of ~budget) spec)
  in
  QCheck.Gen.return (List.fold_left Dirty_db.add_table Dirty_db.empty tables)

(* ---- shrinking ---- *)

let sixteenths_of_table (t : Dirty_db.table) =
  let pi = Schema.index_of (Relation.schema t.relation) t.prob_attr in
  fun row ->
    match Value.to_float row.(pi) with
    | Some p -> int_of_float (Float.round (p *. 16.0))
    | None -> 0

let rebuild_table (t : Dirty_db.table) rows =
  Dirty_db.make_table ~name:t.name ~id_attr:t.id_attr ~prob_attr:t.prob_attr
    (Relation.create (Relation.schema t.relation) rows)

let replace_table db (t : Dirty_db.table) =
  List.fold_left
    (fun acc (u : Dirty_db.table) ->
      Dirty_db.add_table acc (if u.name = t.name then t else u))
    Dirty_db.empty (Dirty_db.tables db)

(* Shrink a database towards smaller witnesses: drop a whole cluster,
   or drop one member of a multi-tuple cluster, donating its
   probability to the first remaining member so the instance stays
   valid and on the sixteenths grid. *)
let shrink_db (db : Dirty_db.t) : Dirty_db.t QCheck.Iter.t =
 fun yield ->
  List.iter
    (fun (t : Dirty_db.table) ->
      let schema = Relation.schema t.relation in
      let idi = Schema.index_of schema t.id_attr in
      let pi = Schema.index_of schema t.prob_attr in
      let sixteenths = sixteenths_of_table t in
      let rows = Array.to_list (Relation.rows t.relation) in
      let ids =
        List.sort_uniq Value.compare (List.map (fun r -> r.(idi)) rows)
      in
      (* drop cluster *)
      List.iter
        (fun id ->
          let rest =
            List.filter (fun r -> not (Value.equal r.(idi) id)) rows
          in
          yield (replace_table db (rebuild_table t rest)))
        ids;
      (* drop one member of a multi-tuple cluster *)
      List.iter
        (fun id ->
          let members, others =
            List.partition (fun r -> Value.equal r.(idi) id) rows
          in
          match members with
          | _ :: _ :: _ ->
            List.iter
              (fun victim ->
                let survivors =
                  List.filter (fun r -> r != victim) members
                in
                match survivors with
                | first :: rest ->
                  let first = Array.copy first in
                  first.(pi) <-
                    Value.Float
                      (float_of_int
                         (sixteenths first + sixteenths victim)
                      /. 16.0);
                  yield
                    (replace_table db
                       (rebuild_table t (others @ (first :: rest))))
                | [] -> ())
              members
          | _ -> ())
        ids)
    (Dirty_db.tables db)

(* ---- the store family (chaos suite) ---- *)

let store_schema =
  Schema.make
    [ ("id", Value.TString); ("val", Value.TInt); ("prob", Value.TFloat) ]

let store_table_of_clusters name clusters =
  let rows =
    List.concat_map
      (fun (cid, members) ->
        List.map
          (fun (v, sixteenths) ->
            [|
              Value.String cid; Value.Int v;
              Value.Float (float_of_int sixteenths /. 16.0);
            |])
          members)
      clusters
  in
  Dirty_db.make_table ~name ~id_attr:"id" ~prob_attr:"prob"
    (Relation.create store_schema rows)

let db_of_tables tables =
  List.fold_left Dirty_db.add_table Dirty_db.empty tables

let store_cluster_gen cid =
  let* size = QCheck.Gen.int_range 1 3 in
  let* parts = sixteenths_gen size 16 in
  let* values =
    QCheck.Gen.flatten_l (List.map (fun _ -> QCheck.Gen.int_range 0 99) parts)
  in
  QCheck.Gen.return
    (Printf.sprintf "c%d" cid, List.combine values parts)

let store_table_gen name =
  let* nclusters = QCheck.Gen.int_range 1 4 in
  let* clusters =
    QCheck.Gen.flatten_l (List.init nclusters store_cluster_gen)
  in
  QCheck.Gen.return (store_table_of_clusters name clusters)

let store_db_gen =
  let* ntables = QCheck.Gen.int_range 1 2 in
  let* tables =
    QCheck.Gen.flatten_l
      (List.init ntables (fun i -> store_table_gen (Printf.sprintf "t%d" i)))
  in
  QCheck.Gen.return (db_of_tables tables)

(* ---- printing ---- *)

let db_to_string db =
  let buf = Buffer.create 256 in
  List.iter
    (fun (t : Dirty_db.table) ->
      Buffer.add_string buf (t.name ^ ":\n");
      Buffer.add_string buf (Relation.to_string t.relation))
    (Dirty_db.tables db);
  Buffer.contents buf
