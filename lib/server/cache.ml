(* Mutex-guarded bounded cache, FIFO eviction.  The eviction queue may
   hold keys that were since re-added or dropped; eviction re-checks
   membership, so a stale queue entry is skipped harmlessly. *)

type ('k, 'v) t = {
  lock : Mutex.t;
  capacity : int;
  table : ('k, 'v) Hashtbl.t;
  order : 'k Queue.t;  (* insertion order, oldest first *)
}

let create ~capacity =
  {
    lock = Mutex.create ();
    capacity;
    table = Hashtbl.create (max 16 capacity);
    order = Queue.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find t k = locked t (fun () -> Hashtbl.find_opt t.table k)

let add t k v =
  if t.capacity > 0 then
    locked t @@ fun () ->
    if not (Hashtbl.mem t.table k) then Queue.push k t.order;
    Hashtbl.replace t.table k v;
    while Hashtbl.length t.table > t.capacity && not (Queue.is_empty t.order) do
      let oldest = Queue.pop t.order in
      Hashtbl.remove t.table oldest
    done

let drop t pred =
  locked t @@ fun () ->
  let doomed =
    Hashtbl.fold (fun k _ acc -> if pred k then k :: acc else acc) t.table []
  in
  List.iter (Hashtbl.remove t.table) doomed

let clear t =
  locked t @@ fun () ->
  Hashtbl.reset t.table;
  Queue.clear t.order

let length t = locked t (fun () -> Hashtbl.length t.table)
