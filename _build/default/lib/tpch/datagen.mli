(** UIS-style dirty data generator for the TPC-H schema (Section 5.1).

    Follows the two knobs of the paper's setup:

    - [sf], the scaling factor, controls the total number of rows
      (scaled down from TPC-H's gigabyte sizes to laptop-bench sizes;
      one [sf] unit is roughly 8k rows across the eight tables);
    - [inconsistency] (the paper's [if]) controls duplication:
      cluster cardinalities are drawn uniformly from
      [[1, 2·if − 1]], so the mean cluster size is [if];
      [if = 1] yields a completely clean database.  Entity counts
      scale as [sf/if], keeping the database size set by [sf] alone
      (as in the paper, where the 1 GB instances keep their size as
      [if] varies).

    Duplicates are perturbed copies of a clean tuple: typos and
    abbreviations on strings, jitter on numbers and dates, and with
    probability [fk_noise] a duplicate that disagrees with its
    cluster-mates on a foreign key (the "true disagreement between
    sources" of the introduction).

    Tuple probabilities are initialized uniformly within each cluster;
    {!assign_probabilities} recomputes them with the Section 4
    procedure. *)

type config = {
  sf : float;
  inconsistency : int;
  seed : int;
  fk_noise : float;
}

val default : config
(** [sf = 0.1], [inconsistency = 3], [seed = 42],
    [fk_noise = 0.1]. *)

val generate : config -> Dirty.Dirty_db.t
(** Generate the eight tables.  The result validates as a dirty
    database (per-cluster probabilities sum to 1). *)

val assign_probabilities :
  ?distance:Prob.Assign.distance -> Dirty.Dirty_db.t -> Dirty.Dirty_db.t
(** Recompute every dirty table's probabilities from its clustering
    (Figure 5), over the non-key descriptive attributes. *)

val dirtify : ?config:config -> Dirty.Dirty_db.t -> Dirty.Dirty_db.t
(** Inject duplicates into an existing database over this schema
    (e.g. real TPC-H data loaded with {!Tbl.load_dir}): every tuple of
    the six dirty tables becomes a cluster whose cardinality is drawn
    as in {!generate}; the duplicates perturb the descriptive columns
    and share the identifier, keys and foreign keys (so referential
    integrity is preserved; [fk_noise] is not applied here).  [sf] is
    ignored — the input data sets the size. *)

val propagate_all : Dirty.Dirty_db.t -> Dirty.Dirty_db.t
(** Re-run identifier propagation for every foreign key (rewrites the
    propagated fk columns from the raw ones) — the offline step timed
    in Figure 7. *)

val row_counts : Dirty.Dirty_db.t -> (string * int) list
val total_rows : Dirty.Dirty_db.t -> int
