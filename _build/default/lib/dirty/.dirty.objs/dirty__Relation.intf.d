lib/dirty/relation.mli: Format Schema Value
