type table_info = { id_attr : string; prob_attr : string }

type env = {
  schema_of : string -> Dirty.Schema.t option;
  info_of : string -> table_info option;
}

let of_dirty_db db =
  {
    schema_of =
      (fun name ->
        Option.map
          (fun (t : Dirty.Dirty_db.table) -> Dirty.Relation.schema t.relation)
          (Dirty.Dirty_db.find_table_opt db name));
    info_of =
      (fun name ->
        Option.map
          (fun (t : Dirty.Dirty_db.table) ->
            { id_attr = t.id_attr; prob_attr = t.prob_attr })
          (Dirty.Dirty_db.find_table_opt db name));
  }
