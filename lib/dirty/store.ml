(* Journaled, checksummed directory persistence.

   Layout (format v2):

     dir/
       CURRENT            -- "2\n": the committed generation number
       journal.g2.csv     -- file,bytes,crc32 for every gen-2 file
       manifest.g2.csv    -- name,id_attr,prob_attr,file
       customer.g2.csv
       orders.g2.csv
       ... generation-1 files (previous snapshot, kept for recovery)

   A save writes the new generation's table files, then the journal
   (which records each file's size and CRC-32, including the manifest's,
   computed before anything is written), then the manifest, and only
   then flips CURRENT — the single atomic commit point.  Every file is
   written to a temp name, fsynced, renamed into place, and the
   directory entry synced, so a crash at any syscall boundary leaves
   either the old committed generation fully intact or the new one
   fully committed, never a mix.  [load] verifies every checksum and
   falls back to the previous intact generation (or the legacy v1
   layout) when verification fails.

   The legacy v1 layout — a bare [manifest.csv] plus [<table>.csv],
   no checksums — is still readable; the first v2 save over it keeps
   it around as generation 0's fallback and the second one cleans it
   up, like any superseded generation.

   Format v3 adds delta generations: a generation is either a full
   snapshot as above or a journaled batch of update records
   ([delta.g<k>.csv], first row naming the parent generation) whose
   journal covers just that file.  Loading a delta generation loads
   the snapshot at the base of its chain and replays each batch in
   order through [Delta.apply]; commit is the same CURRENT flip, so a
   delta append is crash-atomic at every syscall boundary exactly like
   a full save.  Cleanup and recovery are chain-aware: the whole chain
   of the committed generation and of its fallback stay on disk. *)

let current_name = "CURRENT"
let legacy_manifest_name = "manifest.csv"
let manifest_name g = Printf.sprintf "manifest.g%d.csv" g
let journal_name g = Printf.sprintf "journal.g%d.csv" g
let table_file g name = Printf.sprintf "%s.g%d.csv" name g
let delta_name g = Printf.sprintf "delta.g%d.csv" g
let journal_header = [ "file"; "bytes"; "crc32" ]
let manifest_header = [ "name"; "id_attr"; "prob_attr"; "file" ]

exception Corrupt of { dir : string; detail : string }

let () =
  Printexc.register_printer (function
    | Corrupt { dir; detail } ->
      Some (Printf.sprintf "Dirty.Store.Corrupt: %s: %s" dir detail)
    | _ -> None)

let m_files_written =
  Telemetry.Metrics.counter "dirty.store.files_written"
    ~help:"files persisted by Store.save (tables, journals, manifests)"

let m_bytes_written =
  Telemetry.Metrics.counter "dirty.store.bytes_written"
    ~help:"bytes persisted by Store.save"

let m_renames =
  Telemetry.Metrics.counter "dirty.store.renames"
    ~help:"atomic temp-to-final renames (the per-file commit points)"

let m_recoveries =
  Telemetry.Metrics.counter "dirty.store.recoveries"
    ~help:"loads that fell back to an earlier snapshot after corruption"

let m_delta_commits =
  Telemetry.Metrics.counter "dirty.store.delta_commits"
    ~help:"update batches committed by Store.commit_delta"

let m_journal_bytes =
  Telemetry.Metrics.gauge "dirty.store.journal_bytes"
    ~help:"bytes of journaled delta records in the committed chain"

(* temp names are process-unique; leftovers from crashed saves are
   swept by [recover] *)
let tmp_counter = Atomic.make 0

let tmp_name dir =
  Filename.concat dir
    (Printf.sprintf ".store-%d-%d.tmp" (Unix.getpid ())
       (Atomic.fetch_and_add tmp_counter 1))

(* Write [content] to [path]: temp file, fsync, rename, directory
   sync.  The whole sequence is retried on transient failures (each
   attempt uses a fresh temp name, so a torn attempt cannot pollute
   the next).  The rename is atomic on POSIX filesystems, so readers
   and crash recovery only ever observe the old or the new complete
   file, never a partial write. *)
let write_atomic path content =
  let dir = Filename.dirname path in
  Fault.Retry.with_retry (fun () ->
      let tmp = tmp_name dir in
      let w = Fault.Io.open_out tmp in
      match
        Fault.Io.write w content;
        Fault.Io.fsync w;
        Fault.Io.close w;
        Fault.Io.rename tmp path;
        Fault.Io.fsync_dir dir
      with
      | () ->
        Telemetry.Metrics.inc m_files_written;
        Telemetry.Metrics.inc ~n:(String.length content) m_bytes_written;
        Telemetry.Metrics.inc m_renames
      | exception e ->
        Fault.Io.abort w;
        (try Fault.Io.remove tmp with
        | Sys_error _ | Fault.Io.Io_error _ -> ());
        raise e)

let render_rows rows =
  String.concat "" (List.map (fun fields -> Csv.render_line fields ^ "\n") rows)

let table_content (t : Dirty_db.table) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Csv.render_line (Schema.names (Relation.schema t.relation)));
  Buffer.add_char buf '\n';
  Relation.iter
    (fun row ->
      let fields = Array.to_list (Array.map Value.to_string row) in
      Buffer.add_string buf (Csv.render_line fields);
      Buffer.add_char buf '\n')
    t.relation;
  Buffer.contents buf

let is_digits s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

(* "orders.g12.csv" -> Some ("orders", 12) *)
let gen_of_file fname =
  match Filename.chop_suffix_opt ~suffix:".csv" fname with
  | None -> None
  | Some stem -> (
    match String.rindex_opt stem '.' with
    | Some i
      when i + 2 < String.length stem
           && stem.[i + 1] = 'g'
           && is_digits (String.sub stem (i + 2) (String.length stem - i - 2))
      -> (
      match int_of_string_opt (String.sub stem (i + 2) (String.length stem - i - 2)) with
      | Some g -> Some (String.sub stem 0 i, g)
      | None -> None)
    | _ -> None)

let is_tmp_file fname =
  String.length fname > 11
  && String.sub fname 0 7 = ".store-"
  && Filename.check_suffix fname ".tmp"

(* join-spill run files ([Engine.Exec]'s Grace hash join spills
   [.spill-*.tmp] partition files into the store directory); a crashed
   query leaves them behind and [recover] owns the sweep *)
let is_spill_file fname =
  String.length fname > 11
  && String.sub fname 0 7 = ".spill-"
  && Filename.check_suffix fname ".tmp"

(* generations whose journal file exists, newest first *)
let available_generations dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (fun f ->
         match gen_of_file f with
         | Some ("journal", g) -> Some g
         | _ -> None)
  |> List.sort_uniq (fun a b -> compare b a)

let is_delta_generation dir g =
  Sys.file_exists (Filename.concat dir (delta_name g))

(* the snapshot generation at the base of [g]'s chain: [g] itself when
   [g] is a full snapshot, else the first non-delta generation below *)
let rec base_of dir g =
  if g >= 1 && is_delta_generation dir g then base_of dir (g - 1) else g

(* oldest generation still needed as fallback once [cur] is committed:
   everything in the chains of [cur] and of [cur - 1].  When every
   generation is a full snapshot this degenerates to [cur - 1], the
   v2 rule. *)
let fallback_floor dir cur = if cur <= 1 then 1 else base_of dir (cur - 1)

(* What CURRENT says.  [Missing] means no v2 commit ever happened —
   generation files on disk are uncommitted debris and must not be
   loaded.  [Unreadable] means a commit happened but the pointer got
   damaged afterwards; the caller recovers best-effort from whatever
   generations survive. *)
type pointer = Missing | Unreadable | Committed of int

let pointer dir =
  let path = Filename.concat dir current_name in
  if not (Sys.file_exists path) then Missing
  else
    match int_of_string_opt (String.trim (Fault.Io.read_file path)) with
    | Some g when g >= 1 -> Committed g
    | Some _ | None -> Unreadable
    | exception Sys_error _ -> Unreadable

let committed_generation dir =
  match pointer dir with
  | Committed g -> g
  | Unreadable -> (
    match available_generations dir with g :: _ -> g | [] -> 0)
  | Missing -> 0

let generation dir =
  if Sys.file_exists dir && Sys.is_directory dir then committed_generation dir
  else 0

(* delta generations of the committed chain, oldest first *)
let delta_chain dir =
  let cur = committed_generation dir in
  if cur = 0 then []
  else
    let base = base_of dir cur in
    List.init (cur - base) (fun i -> base + 1 + i)

let delta_chain_length dir = List.length (delta_chain dir)

let journal_bytes dir =
  List.fold_left
    (fun acc g ->
      match (Unix.stat (Filename.concat dir (delta_name g))).Unix.st_size with
      | n -> acc + n
      | exception Unix.Unix_error _ -> acc)
    0 (delta_chain dir)

let update_journal_bytes dir =
  Telemetry.Metrics.set m_journal_bytes (float_of_int (journal_bytes dir))

(* best-effort removal: a failure to clean up must not fail a
   committed save (a simulated crash still propagates) *)
let try_remove path =
  try Fault.Io.remove path with Sys_error _ | Fault.Io.Io_error _ -> ()

(* after committing generation [g], drop generations below the
   fallback chain's base and, once a v2 fallback generation exists,
   the legacy v1 files *)
let cleanup_old dir g =
  let floor = fallback_floor dir g in
  Array.iter
    (fun f ->
      match gen_of_file f with
      | Some (_, k) when k < floor -> try_remove (Filename.concat dir f)
      | _ -> ())
    (Sys.readdir dir);
  if g >= 2 && Sys.file_exists (Filename.concat dir legacy_manifest_name) then begin
    let manifest_path = Filename.concat dir legacy_manifest_name in
    (match Csv.read_file manifest_path with
    | rows ->
      List.iter
        (function
          | [ name; _; _ ] when name <> "name" ->
            try_remove (Filename.concat dir (name ^ ".csv"))
          | _ -> ())
        rows
    | exception _ -> ());
    try_remove manifest_path
  end

let save dir db =
  Telemetry.Span.with_ ~name:"store.save" ~attrs:[ ("dir", dir) ] @@ fun () ->
  if not (Sys.file_exists dir) then Fault.Io.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    raise (Sys_error (dir ^ ": not a directory"));
  let g = committed_generation dir + 1 in
  let tables = Dirty_db.tables db in
  let files =
    List.map
      (fun (t : Dirty_db.table) -> (table_file g t.name, table_content t))
      tables
  in
  let manifest_rows =
    manifest_header
    :: List.map
         (fun (t : Dirty_db.table) ->
           [ t.name; t.id_attr; t.prob_attr; table_file g t.name ])
         tables
  in
  let manifest_content = render_rows manifest_rows in
  let journal_rows =
    journal_header
    :: List.map
         (fun (file, content) ->
           [
             file;
             string_of_int (String.length content);
             Fault.Crc32.to_hex (Fault.Crc32.string content);
           ])
         (files @ [ (manifest_name g, manifest_content) ])
  in
  (* tables first, then the journal (sizes + checksums for everything,
     manifest included — contents are fixed before any byte is
     written), then the manifest, then the CURRENT flip: the commit
     point.  Everything before the flip is invisible to [load];
     everything after it is pure cleanup. *)
  List.iter
    (fun (file, content) -> write_atomic (Filename.concat dir file) content)
    files;
  write_atomic
    (Filename.concat dir (journal_name g))
    (render_rows journal_rows);
  write_atomic (Filename.concat dir (manifest_name g)) manifest_content;
  write_atomic (Filename.concat dir current_name) (string_of_int g ^ "\n");
  cleanup_old dir g;
  update_journal_bytes dir

let commit_delta dir batch =
  Telemetry.Span.with_ ~name:"store.commit_delta" ~attrs:[ ("dir", dir) ]
  @@ fun () ->
  if batch = [] then invalid_arg "Dirty.Store.commit_delta: empty batch";
  (match pointer dir with
  | Committed _ -> ()
  | Missing | Unreadable ->
    raise
      (Sys_error (dir ^ ": no committed v2 generation to append a delta to")));
  let parent = committed_generation dir in
  let g = parent + 1 in
  let content =
    render_rows
      ([ "delta"; "parent"; string_of_int parent ] :: Delta.to_rows batch)
  in
  let journal_rows =
    journal_header
    :: [
         [
           delta_name g;
           string_of_int (String.length content);
           Fault.Crc32.to_hex (Fault.Crc32.string content);
         ];
       ]
  in
  (* the delta record, then its journal, then the CURRENT flip — the
     same commit point as [save], so the append is atomic at every
     syscall boundary *)
  write_atomic (Filename.concat dir (delta_name g)) content;
  write_atomic (Filename.concat dir (journal_name g)) (render_rows journal_rows);
  write_atomic (Filename.concat dir current_name) (string_of_int g ^ "\n");
  Telemetry.Metrics.inc m_delta_commits;
  cleanup_old dir g;
  update_journal_bytes dir;
  g

(* a generation that cannot be trusted: missing file, size or CRC
   mismatch, malformed journal/manifest — grounds for falling back *)
exception Unusable of string

let failf fmt = Printf.ksprintf (fun s -> raise (Unusable s)) fmt

let describe_exn = function
  | Sys_error msg -> msg
  | Dirty_db.Invalid msg -> msg
  | Invalid_argument msg -> msg
  | Failure msg -> msg
  | Unusable msg -> msg
  | Csv.Parse_error { path; line; msg } ->
    Printf.sprintf "%s:%d: %s" path line msg
  | e -> Printexc.to_string e

let journal_entries dir g =
  let journal_path = Filename.concat dir (journal_name g) in
  let journal =
    match Fault.Io.read_file journal_path with
    | s -> s
    | exception Sys_error msg -> failf "%s" msg
  in
  match Csv.parse_rows journal with
  | header :: rest when header = journal_header ->
    List.map
      (function
        | [ file; bytes; crc ] -> (
          match (int_of_string_opt bytes, Fault.Crc32.of_hex crc) with
          | Some b, Some c -> (file, b, c)
          | _ -> failf "%s: malformed journal row" journal_path)
        | _ -> failf "%s: malformed journal row" journal_path)
      rest
  | _ -> failf "%s: malformed journal header" journal_path

(* read a journalled file and verify its size and checksum *)
let checked dir entries file =
  let path = Filename.concat dir file in
  match List.find_opt (fun (f, _, _) -> f = file) entries with
  | None -> failf "%s not covered by the journal" file
  | Some (_, bytes, crc) -> (
    match Fault.Io.read_file path with
    | exception Sys_error msg -> failf "%s" msg
    | content ->
      if String.length content <> bytes then
        failf "%s: size %d does not match journalled %d" path
          (String.length content) bytes
      else if Fault.Crc32.string content <> crc then
        failf "%s: checksum mismatch" path
      else content)

(* a generation is a delta batch exactly when its journal covers the
   delta record file *)
let journal_has_delta g entries =
  List.exists (fun (f, _, _) -> f = delta_name g) entries

let parse_delta dir g entries =
  let file = delta_name g in
  let path = Filename.concat dir file in
  let content = checked dir entries file in
  match Csv.parse_rows content with
  | [ "delta"; "parent"; p ] :: ops -> (
    (match int_of_string_opt p with
    | Some parent when parent = g - 1 -> ()
    | Some _ | None ->
      failf "%s: delta parent %S does not match generation %d" path p g);
    match Delta.of_rows ops with
    | batch -> batch
    | exception Delta.Invalid msg -> failf "%s: %s" path msg)
  | _ -> failf "%s: malformed delta header" path

let load_snapshot_generation ~validate ~lenient ~warn dir g entries =
  let checked file = checked dir entries file in
  let manifest = checked (manifest_name g) in
  let manifest_path = Filename.concat dir (manifest_name g) in
  let rows =
    match Csv.parse_rows manifest with
    | header :: rows when header = manifest_header -> rows
    | _ -> failf "%s: malformed manifest header" manifest_path
  in
  List.fold_left
    (fun db row ->
      match row with
      | [ name; id_attr; prob_attr; file ] -> (
        match
          let content = checked file in
          let relation =
            Csv.relation_of_string ~path:(Filename.concat dir file) content
          in
          Dirty_db.make_table ~validate ~name ~id_attr ~prob_attr relation
        with
        | table -> Dirty_db.add_table db table
        (* lenient mode skips a damaged table (checksum-bad included);
           strict mode lets [Unusable] trigger generation fallback and
           validation errors propagate to the caller *)
        | exception e when lenient ->
          warn (Printf.sprintf "table %s skipped: %s" name (describe_exn e));
          db)
      | row ->
        if lenient then begin
          warn
            (Printf.sprintf "%s: malformed manifest row [%s] skipped"
               manifest_path (String.concat "," row));
          db
        end
        else failf "%s: malformed manifest row" manifest_path)
    Dirty_db.empty rows

(* Load generation [g]: a snapshot directly, a delta generation by
   loading its parent (recursively, down to the snapshot at the base
   of the chain) and replaying the batch.  Any CRC, parse or replay
   failure raises [Unusable], triggering generation fallback. *)
let rec load_generation ~validate ~lenient ~warn dir g =
  if g < 1 then failf "delta chain has no snapshot base"
  else begin
    let entries = journal_entries dir g in
    if journal_has_delta g entries then begin
      let batch = parse_delta dir g entries in
      let base = load_generation ~validate ~lenient ~warn dir (g - 1) in
      match Delta.apply base batch with
      | outcome -> outcome.Delta.db
      | exception Delta.Invalid msg ->
        failf "%s: replay failed: %s" (delta_name g) msg
    end
    else load_snapshot_generation ~validate ~lenient ~warn dir g entries
  end

(* The pre-journal v1 layout: no checksums, so structural damage
   surfaces as parse/validation errors instead of CRC mismatches. *)
let load_legacy ~validate ~lenient ~warn dir =
  let manifest_path = Filename.concat dir legacy_manifest_name in
  let rows = Csv.read_file manifest_path in
  let entries =
    match rows with
    | [ "name"; "id_attr"; "prob_attr" ] :: entries -> entries
    | _ -> raise (Sys_error (manifest_path ^ ": malformed manifest header"))
  in
  List.fold_left
    (fun db entry ->
      match entry with
      | [ name; id_attr; prob_attr ] -> (
        let path = Filename.concat dir (name ^ ".csv") in
        match
          let relation = Csv.load_file path in
          Dirty_db.make_table ~validate ~name ~id_attr ~prob_attr relation
        with
        | table -> Dirty_db.add_table db table
        | exception e when lenient ->
          warn (Printf.sprintf "table %s skipped: %s" name (describe_exn e));
          db)
      | entry ->
        if lenient then begin
          warn
            (Printf.sprintf "%s: malformed manifest row [%s] skipped"
               manifest_path (String.concat "," entry));
          db
        end
        else raise (Sys_error (manifest_path ^ ": malformed manifest row")))
    Dirty_db.empty entries

let load_verbose ?(validate = true) ?(lenient = false) dir =
  Telemetry.Span.with_ ~name:"store.load" ~attrs:[ ("dir", dir) ] @@ fun () ->
  let warnings = ref [] in
  let warn s = warnings := s :: !warnings in
  let available = if Sys.file_exists dir then available_generations dir else [] in
  let pointer_damaged = ref false in
  let candidates =
    match pointer dir with
    | Committed g -> g :: List.filter (fun k -> k < g) available
    | Unreadable ->
      warn "CURRENT unreadable; recovering from surviving generations";
      pointer_damaged := true;
      available
    | Missing -> []
  in
  let have_legacy =
    Sys.file_exists (Filename.concat dir legacy_manifest_name)
  in
  let db =
    if candidates = [] then
      (* no v2 snapshot at all: plain legacy directory (or nothing —
         load_legacy raises the usual Sys_error for a missing dir) *)
      load_legacy ~validate ~lenient ~warn dir
    else begin
      let fallen_back = ref !pointer_damaged in
      let rec try_gens = function
        | [] ->
          if have_legacy then begin
            fallen_back := true;
            match load_legacy ~validate ~lenient ~warn dir with
            | db -> db
            | exception e ->
              raise
                (Corrupt
                   {
                     dir;
                     detail =
                       "no intact snapshot: legacy fallback failed: "
                       ^ describe_exn e;
                   })
          end
          else
            raise (Corrupt { dir; detail = "no intact snapshot generation" })
        | g :: rest -> (
          match load_generation ~validate ~lenient ~warn dir g with
          | db -> db
          | exception Unusable detail ->
            warn (Printf.sprintf "generation %d unusable: %s" g detail);
            fallen_back := true;
            try_gens rest)
      in
      let db = try_gens candidates in
      if !fallen_back then Telemetry.Metrics.inc m_recoveries;
      db
    end
  in
  if Sys.file_exists dir && Sys.is_directory dir then update_journal_bytes dir;
  (db, List.rev !warnings)

let load ?validate ?lenient dir = fst (load_verbose ?validate ?lenient dir)

let recover dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else begin
    let cur = committed_generation dir in
    let floor = if cur >= 1 then fallback_floor dir cur else 1 in
    let actions = ref [] in
    let remove f reason =
      match Fault.Io.remove (Filename.concat dir f) with
      | () -> actions := Printf.sprintf "removed %s (%s)" f reason :: !actions
      | exception (Sys_error _ | Fault.Io.Io_error _) -> ()
    in
    Array.iter
      (fun f ->
        if is_tmp_file f then remove f "orphaned temp file"
        else if is_spill_file f then remove f "orphaned join spill"
        else
          match gen_of_file f with
          | Some (_, k) when k > cur ->
            remove f "in-flight generation never committed"
          | Some (_, k) when k < floor -> remove f "superseded generation"
          | _ -> ())
      (Sys.readdir dir);
    List.rev !actions
  end

(* {1 Integrity checking} *)

type check = {
  check_generation : int;
  check_kind : [ `Snapshot | `Delta ];
  check_in_chain : bool;
  check_result : (unit, string) result;
}

let check_generation dir ~chain g =
  let kind = if is_delta_generation dir g then `Delta else `Snapshot in
  let result =
    match
      let entries = journal_entries dir g in
      List.iter (fun (f, _, _) -> ignore (checked dir entries f)) entries;
      if journal_has_delta g entries then ignore (parse_delta dir g entries)
    with
    | () -> Ok ()
    | exception Unusable msg -> Error msg
  in
  {
    check_generation = g;
    check_kind = kind;
    check_in_chain = List.mem g chain;
    check_result = result;
  }

let check_generations dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else begin
    let cur = committed_generation dir in
    let chain =
      if cur = 0 then []
      else
        let base = base_of dir cur in
        List.init (cur - base + 1) (fun i -> base + i)
    in
    List.map (check_generation dir ~chain) (available_generations dir)
  end
