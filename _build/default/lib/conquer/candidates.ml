open Dirty

type cluster_slot = {
  table : string;
  rows : int array;  (* member row indices *)
  probs : float array;  (* matching probabilities *)
}

type selection = {
  slots : cluster_slot array;
  choice : int array;  (* per slot, index into [rows] *)
}

let chosen_rows selection table =
  let acc = ref [] in
  Array.iteri
    (fun i slot ->
      if slot.table = table then acc := slot.rows.(selection.choice.(i)) :: !acc)
    selection.slots;
  List.sort Int.compare !acc

let slots_of_db db =
  let slots = ref [] in
  List.iter
    (fun (t : Dirty_db.table) ->
      Cluster.iter
        (fun _id members ->
          let rows = Array.of_list members in
          let probs = Array.map (Dirty_db.row_probability t) rows in
          slots := { table = t.name; rows; probs } :: !slots)
        t.clustering)
    (Dirty_db.tables db);
  Array.of_list (List.rev !slots)

let count db =
  Array.fold_left
    (fun acc slot -> acc *. float_of_int (Array.length slot.rows))
    1.0 (slots_of_db db)

let fold ?(max_candidates = 1_000_000) db f init =
  let slots = slots_of_db db in
  let total = count db in
  if total > float_of_int max_candidates then
    invalid_arg
      (Printf.sprintf
         "Candidates.fold: %.0f candidate databases exceed the limit of %d"
         total max_candidates);
  let n = Array.length slots in
  let choice = Array.make n 0 in
  let selection = { slots; choice } in
  let acc = ref init in
  let rec go i prob =
    if i >= n then acc := f !acc selection prob
    else
      let slot = slots.(i) in
      for j = 0 to Array.length slot.rows - 1 do
        choice.(i) <- j;
        go (i + 1) (prob *. slot.probs.(j))
      done
  in
  go 0 1.0;
  !acc

let candidate_relations db selection =
  List.map
    (fun (t : Dirty_db.table) ->
      let rows = chosen_rows selection t.name in
      let schema = Relation.schema t.relation in
      ( t.name,
        Relation.create schema (List.map (Relation.get t.relation) rows) ))
    (Dirty_db.tables db)

module Row_key = struct
  type t = Value.t array

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec loop i =
      i >= Array.length a || (Value.equal a.(i) b.(i) && loop (i + 1))
    in
    loop 0

  let hash a = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 a
end

module Rtbl = Hashtbl.Make (Row_key)

(* The oracle shares one engine database and one plan across all
   candidates; only the base relations are swapped. *)
let with_oracle ?max_candidates db query f =
  let engine = Engine.Database.create () in
  List.iter
    (fun (t : Dirty_db.table) ->
      Engine.Database.add_relation engine ~name:t.name t.relation)
    (Dirty_db.tables db);
  let plan = Engine.Database.plan engine query in
  fold ?max_candidates db
    (fun acc selection prob ->
      List.iter
        (fun (name, rel) -> Engine.Database.add_relation engine ~name rel)
        (candidate_relations db selection);
      let result = Relation.distinct (Engine.Database.run_plan engine plan) in
      f acc result prob)
    ()

let clean_answers ?max_candidates db query =
  let answers = Rtbl.create 64 in
  let schema_ref = ref None in
  with_oracle ?max_candidates db query (fun () result prob ->
      if !schema_ref = None then schema_ref := Some (Relation.schema result);
      Relation.iter
        (fun row ->
          let p = Option.value ~default:0.0 (Rtbl.find_opt answers row) in
          Rtbl.replace answers row (p +. prob))
        result);
  let schema =
    match !schema_ref with
    | Some s -> s
    | None ->
      (* no candidate produced rows; derive the schema by running the
         query once on the dirty database itself *)
      let engine = Engine.Database.create () in
      List.iter
        (fun (t : Dirty_db.table) ->
          Engine.Database.add_relation engine ~name:t.name t.relation)
        (Dirty_db.tables db);
      Relation.schema (Engine.Database.query_ast engine query)
  in
  let out_schema =
    Schema.append schema (Schema.make [ (Rewrite.prob_column, Value.TFloat) ])
  in
  let rows =
    Rtbl.fold
      (fun row prob acc -> Array.append row [| Value.Float prob |] :: acc)
      answers []
  in
  let rel = Relation.create out_schema rows in
  let cmp a b =
    let n = Array.length a in
    let rec go i =
      if i >= n then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0
  in
  Relation.sort_by cmp rel

let probability_that_nonempty ?max_candidates db query =
  let total = ref 0.0 in
  with_oracle ?max_candidates db query (fun () result prob ->
      if not (Relation.is_empty result) then total := !total +. prob);
  !total
