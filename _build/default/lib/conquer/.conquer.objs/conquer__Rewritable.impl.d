lib/conquer/rewritable.ml: Dirty_schema Join_graph List Option Printf Result Sql String
