lib/dirty/csv.ml: Array Buffer Fun Hashtbl List Option Printf Relation Schema String Value
