(* Tests for the tuple-matching substrate: union-find, similarity,
   sorted-neighborhood (merge/purge), LIMBO-style clustering, and the
   pairwise evaluation metrics. *)

open Dirty

let v_s s = Value.String s

(* ---- union-find ---- *)

let test_union_find () =
  let uf = Matcher.Union_find.create 6 in
  Alcotest.(check int) "initial classes" 6 (Matcher.Union_find.num_classes uf);
  Matcher.Union_find.union uf 0 1;
  Matcher.Union_find.union uf 1 2;
  Matcher.Union_find.union uf 4 5;
  Alcotest.(check int) "classes after unions" 3
    (Matcher.Union_find.num_classes uf);
  Alcotest.(check bool) "0 ~ 2" true (Matcher.Union_find.same uf 0 2);
  Alcotest.(check bool) "0 !~ 3" false (Matcher.Union_find.same uf 0 3);
  Alcotest.(check bool) "4 ~ 5" true (Matcher.Union_find.same uf 4 5);
  let c = Matcher.Union_find.to_cluster uf in
  Alcotest.(check int) "cluster count" 3 (Cluster.num_clusters c);
  Alcotest.(check int) "cluster rows" 6 (Cluster.num_rows c)

let test_union_find_idempotent () =
  let uf = Matcher.Union_find.create 3 in
  Matcher.Union_find.union uf 0 1;
  Matcher.Union_find.union uf 0 1;
  Matcher.Union_find.union uf 1 0;
  Alcotest.(check int) "no double-count" 2 (Matcher.Union_find.num_classes uf)

(* ---- similarity ---- *)

let test_string_similarity () =
  Fixtures.check_float "identical" 1.0 (Matcher.Similarity.string_similarity "abc" "abc");
  Fixtures.check_float "disjoint" 0.0 (Matcher.Similarity.string_similarity "abc" "xyz");
  Alcotest.(check bool) "typo close" true
    (Matcher.Similarity.string_similarity "john smith" "jonh smith" > 0.7)

let test_token_jaccard () =
  Fixtures.check_float "reordered tokens" 1.0
    (Matcher.Similarity.token_jaccard "John Smith" "smith john");
  Fixtures.check_float "half overlap" (1.0 /. 3.0)
    (Matcher.Similarity.token_jaccard "a b" "b c");
  Fixtures.check_float "both empty" 1.0 (Matcher.Similarity.token_jaccard "" "")

let test_value_similarity () =
  Fixtures.check_float "null-null" 1.0
    (Matcher.Similarity.value_similarity Value.Null Value.Null);
  Fixtures.check_float "null-other" 0.0
    (Matcher.Similarity.value_similarity Value.Null (v_s "x"));
  Alcotest.(check bool) "close numbers" true
    (Matcher.Similarity.value_similarity (Value.Int 100) (Value.Int 95) > 0.9);
  Fixtures.check_float "equal dates" 1.0
    (Matcher.Similarity.value_similarity (Value.Date 100) (Value.Date 100))

let people_relation () =
  Relation.create
    (Schema.make
       [ ("name", Value.TString); ("city", Value.TString); ("age", Value.TInt) ])
    [
      [| v_s "John Smith"; v_s "Toronto"; Value.Int 34 |];   (* 0: A *)
      [| v_s "Jon Smith"; v_s "Toronto"; Value.Int 34 |];    (* 1: A *)
      [| v_s "John Smyth"; v_s "Toronto"; Value.Int 35 |];   (* 2: A *)
      [| v_s "Mary Jones"; v_s "Ottawa"; Value.Int 29 |];    (* 3: B *)
      [| v_s "Mary Jone"; v_s "Ottawa"; Value.Int 29 |];     (* 4: B *)
      [| v_s "Zoe Chen"; v_s "Vancouver"; Value.Int 51 |];   (* 5: C *)
    ]

let truth_clustering () =
  let owners = [| 0; 0; 0; 1; 1; 2 |] in
  Cluster.of_assignment ~size:6 (fun i -> Value.Int owners.(i))

let test_record_similarity () =
  let rel = people_relation () in
  let sim = Matcher.Similarity.record_similarity rel ~attrs:[ "name"; "city"; "age" ] in
  Alcotest.(check bool) "duplicates similar" true (sim 0 1 > 0.85);
  Alcotest.(check bool) "distinct dissimilar" true (sim 0 3 < 0.5);
  Fixtures.check_float "self similarity" 1.0 (sim 2 2);
  (* weighting: name-only comparison *)
  let name_only =
    Matcher.Similarity.record_similarity ~weights:[ 1.0; 0.0; 0.0 ] rel
      ~attrs:[ "name"; "city"; "age" ]
  in
  Alcotest.(check bool) "weights respected" true (name_only 0 1 > 0.85)

(* ---- sorted neighborhood ---- *)

let snm_config =
  {
    Matcher.Sorted_neighborhood.passes =
      [ Matcher.Sorted_neighborhood.pass [ "name" ];
        Matcher.Sorted_neighborhood.pass [ "city"; "name" ] ];
    window = 4;
    threshold = 0.8;
    attrs = [ "name"; "city"; "age" ];
  }

let test_snm_recovers_planted_duplicates () =
  let rel = people_relation () in
  let predicted = Matcher.Sorted_neighborhood.run snm_config rel in
  let scores = Matcher.Evaluate.pairwise ~truth:(truth_clustering ()) predicted in
  Alcotest.(check bool)
    (Format.asprintf "good scores: %a" Matcher.Evaluate.pp scores)
    true
    (scores.precision >= 0.99 && scores.recall >= 0.99)

let test_snm_high_threshold_splits () =
  let rel = people_relation () in
  let predicted =
    Matcher.Sorted_neighborhood.run { snm_config with threshold = 0.999 } rel
  in
  (* nothing merges: all singletons *)
  Alcotest.(check int) "singletons" 6 (Cluster.num_clusters predicted)

let test_snm_low_threshold_overmerges () =
  let rel = people_relation () in
  let predicted =
    Matcher.Sorted_neighborhood.run
      { snm_config with threshold = 0.0; window = 6 }
      rel
  in
  Alcotest.(check int) "everything merged" 1 (Cluster.num_clusters predicted)

let test_snm_blocking_efficiency () =
  let rel = people_relation () in
  let compared = Matcher.Sorted_neighborhood.pairs_compared snm_config rel in
  (* two passes, window 4 over 6 rows: 2 * (3+3+3+2+1) = 24 > full
     pairwise 15 for this tiny input, but sublinear in n for big n *)
  Alcotest.(check int) "pair count formula" 24 compared;
  let big_config = { snm_config with window = 5 } in
  ignore big_config;
  (* windowed comparisons grow linearly with n, full pairwise
     quadratically: check the crossover on a larger synthetic size *)
  let n = 1000 in
  let window_pairs = (List.length snm_config.passes) * (n * (snm_config.window - 1)) in
  Alcotest.(check bool) "linear beats quadratic" true
    (window_pairs < n * (n - 1) / 2)

let test_snm_validation () =
  let rel = people_relation () in
  (match Matcher.Sorted_neighborhood.run { snm_config with window = 1 } rel with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "window 1 accepted");
  match Matcher.Sorted_neighborhood.run { snm_config with passes = [] } rel with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "no passes accepted"

let test_snm_on_generated_customers () =
  (* end-to-end on the TPC-H generator's dirty customers, scored
     against the generator's ground-truth clusters *)
  let db =
    Tpch.Datagen.generate
      { Tpch.Datagen.default with sf = 0.15; inconsistency = 3; seed = 5 }
  in
  let customer = Dirty_db.find_table db "customer" in
  let config =
    {
      Matcher.Sorted_neighborhood.passes =
        [ Matcher.Sorted_neighborhood.pass [ "c_name" ];
          Matcher.Sorted_neighborhood.pass [ "c_address" ];
          Matcher.Sorted_neighborhood.pass [ "c_phone" ] ];
      window = 8;
      threshold = 0.72;
      attrs = [ "c_name"; "c_address"; "c_phone"; "c_acctbal" ];
    }
  in
  let predicted = Matcher.Sorted_neighborhood.run config customer.relation in
  let scores = Matcher.Evaluate.pairwise ~truth:customer.clustering predicted in
  Alcotest.(check bool)
    (Format.asprintf "F1 respectable: %a" Matcher.Evaluate.pp scores)
    true (scores.f1 > 0.6)

(* ---- LIMBO ---- *)

let test_limbo_two_groups () =
  let rel = people_relation () in
  let predicted =
    Matcher.Limbo.run
      { attrs = [ "name"; "city" ]; stop = Num_clusters 3 }
      rel
  in
  let scores = Matcher.Evaluate.pairwise ~truth:(truth_clustering ()) predicted in
  Alcotest.(check int) "three clusters" 3 (Cluster.num_clusters predicted);
  Alcotest.(check bool)
    (Format.asprintf "recovers the groups: %a" Matcher.Evaluate.pp scores)
    true (scores.f1 >= 0.7)

let test_limbo_max_loss_zero_merges_identical () =
  (* with a zero loss budget only information-free merges happen:
     identical tuples collapse, distinct ones stay apart *)
  let rel =
    Relation.create
      (Schema.make [ ("a", Value.TString); ("b", Value.TString) ])
      [
        [| v_s "x"; v_s "y" |];
        [| v_s "x"; v_s "y" |];
        [| v_s "p"; v_s "q" |];
      ]
  in
  let predicted =
    Matcher.Limbo.run { attrs = [ "a"; "b" ]; stop = Max_loss 1e-9 } rel
  in
  Alcotest.(check int) "identical rows merged, others kept" 2
    (Cluster.num_clusters predicted)

let test_limbo_merge_trace () =
  let rel = people_relation () in
  let trace =
    Matcher.Limbo.merge_trace
      { attrs = [ "name"; "city" ]; stop = Num_clusters 1 }
      rel
  in
  Alcotest.(check int) "n-1 merges to a single cluster" 5 (List.length trace);
  List.iter
    (fun (_, _, loss) ->
      Alcotest.(check bool) "losses nonnegative" true (loss >= -1e-12))
    trace;
  (* the first (cheapest) merge should join two of the true duplicate
     pairs, not cross-entity rows *)
  match trace with
  | (a, b, _) :: _ ->
    let truth = truth_clustering () in
    Alcotest.(check bool) "first merge within an entity" true
      (Value.equal (Cluster.cluster_of_row truth a) (Cluster.cluster_of_row truth b))
  | [] -> Alcotest.fail "empty trace"

let test_limbo_single_row () =
  let rel =
    Relation.create (Schema.make [ ("a", Value.TString) ]) [ [| v_s "x" |] ]
  in
  let predicted = Matcher.Limbo.run { attrs = [ "a" ]; stop = Num_clusters 1 } rel in
  Alcotest.(check int) "one row, one cluster" 1 (Cluster.num_clusters predicted)

(* ---- evaluation metrics ---- *)

let test_evaluate_perfect () =
  let truth = truth_clustering () in
  let s = Matcher.Evaluate.pairwise ~truth truth in
  Fixtures.check_float "precision" 1.0 s.precision;
  Fixtures.check_float "recall" 1.0 s.recall;
  Fixtures.check_float "f1" 1.0 s.f1;
  Alcotest.(check int) "true pairs" 4 s.true_pairs

let test_evaluate_all_singletons () =
  let truth = truth_clustering () in
  let singletons = Cluster.of_assignment ~size:6 (fun i -> Value.Int i) in
  let s = Matcher.Evaluate.pairwise ~truth singletons in
  Fixtures.check_float "vacuous precision" 1.0 s.precision;
  Fixtures.check_float "zero recall" 0.0 s.recall

let test_evaluate_one_big_cluster () =
  let truth = truth_clustering () in
  let lump = Cluster.of_assignment ~size:6 (fun _ -> Value.Int 0) in
  let s = Matcher.Evaluate.pairwise ~truth lump in
  Fixtures.check_float "full recall" 1.0 s.recall;
  (* 4 true pairs out of 15 predicted *)
  Fixtures.check_float "diluted precision" (4.0 /. 15.0) s.precision

let test_evaluate_mismatched_sizes () =
  let truth = truth_clustering () in
  let other = Cluster.of_assignment ~size:4 (fun i -> Value.Int i) in
  match Matcher.Evaluate.pairwise ~truth other with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "size mismatch accepted"

(* ---- end-to-end: match, assign, answer ---- *)

let test_pipeline_end_to_end () =
  (* raw duplicated relation with no clustering at all -> matcher ->
     probability assignment -> clean answers *)
  let rel = people_relation () in
  let clustering = Matcher.Sorted_neighborhood.run snm_config rel in
  (* attach the discovered cluster identifier and computed probability *)
  let probs = Prob.Assign.assign ~attrs:[ "name"; "city"; "age" ] rel clustering in
  let schema' =
    Schema.append (Relation.schema rel)
      (Schema.make [ ("id", Value.TInt); ("prob", Value.TFloat) ])
  in
  let counter = ref (-1) in
  let rel' =
    Relation.map_rows schema'
      (fun row ->
        incr counter;
        let id = Cluster.cluster_of_row clustering !counter in
        Array.append row [| id; Value.Float probs.(!counter) |])
      rel
  in
  let table = Dirty_db.make_table ~name:"people" ~id_attr:"id" ~prob_attr:"prob" rel' in
  let db = Dirty_db.add_table Dirty_db.empty table in
  let s = Conquer.Clean.create db in
  let answers = Conquer.Clean.answers s "select id from people where age > 30" in
  (* the John Smith entity qualifies with certainty; Mary (29) and Zoe
     (51) resolve accordingly *)
  Alcotest.(check int) "two qualifying entities" 2 (Relation.cardinality answers)

let () =
  Alcotest.run "matcher"
    [
      ( "union-find",
        [
          Alcotest.test_case "basics" `Quick test_union_find;
          Alcotest.test_case "idempotent unions" `Quick test_union_find_idempotent;
        ] );
      ( "similarity",
        [
          Alcotest.test_case "strings" `Quick test_string_similarity;
          Alcotest.test_case "token jaccard" `Quick test_token_jaccard;
          Alcotest.test_case "values" `Quick test_value_similarity;
          Alcotest.test_case "records" `Quick test_record_similarity;
        ] );
      ( "sorted neighborhood",
        [
          Alcotest.test_case "recovers duplicates" `Quick
            test_snm_recovers_planted_duplicates;
          Alcotest.test_case "high threshold splits" `Quick
            test_snm_high_threshold_splits;
          Alcotest.test_case "low threshold over-merges" `Quick
            test_snm_low_threshold_overmerges;
          Alcotest.test_case "blocking efficiency" `Quick
            test_snm_blocking_efficiency;
          Alcotest.test_case "validation" `Quick test_snm_validation;
          Alcotest.test_case "generated customers" `Quick
            test_snm_on_generated_customers;
        ] );
      ( "limbo",
        [
          Alcotest.test_case "two groups" `Quick test_limbo_two_groups;
          Alcotest.test_case "max-loss zero" `Quick
            test_limbo_max_loss_zero_merges_identical;
          Alcotest.test_case "merge trace" `Quick test_limbo_merge_trace;
          Alcotest.test_case "single row" `Quick test_limbo_single_row;
        ] );
      ( "evaluation",
        [
          Alcotest.test_case "perfect" `Quick test_evaluate_perfect;
          Alcotest.test_case "singletons" `Quick test_evaluate_all_singletons;
          Alcotest.test_case "one big cluster" `Quick
            test_evaluate_one_big_cluster;
          Alcotest.test_case "size mismatch" `Quick
            test_evaluate_mismatched_sizes;
        ] );
      ( "pipeline",
        [ Alcotest.test_case "match-assign-answer" `Quick test_pipeline_end_to_end ] );
    ]
