examples/dedup.mli:
