SELECT r1.id, r0.v0
FROM t1 r1, t0 r0
WHERE r1.fkt0 = r0.id
