lib/infotheory/dcf.mli: Dist Format
