open Dirty

type t = {
  attrs : string list;
  interning : Interning.t;
  symbols : int array array;  (* row -> the m symbols of the tuple *)
}

let of_relation ?attrs rel =
  let schema = Relation.schema rel in
  let attrs =
    match attrs with None -> Schema.names schema | Some names -> names
  in
  let indices = List.map (Schema.index_of schema) attrs in
  let interning = Interning.create () in
  let symbols =
    Array.init (Relation.cardinality rel) (fun i ->
        let row = Relation.get rel i in
        Array.of_list
          (List.mapi (fun attr j -> Interning.intern interning ~attr row.(j)) indices))
  in
  { attrs; interning; symbols }

let num_rows t = Array.length t.symbols
let attrs t = t.attrs
let interning t = t.interning
let symbols_of_row t i = Array.to_list t.symbols.(i)

let row_dist t i =
  let syms = t.symbols.(i) in
  let m = Array.length syms in
  (* a tuple may repeat the same (attr,value)? impossible: symbols are
     per attribute position, hence distinct *)
  Infotheory.Dist.of_assoc
    (Array.to_list (Array.map (fun s -> (s, 1.0 /. float_of_int m)) syms))

let row_dcf t i = Infotheory.Dcf.make ~weight:1.0 (row_dist t i)

let entry t i ~attr ~value =
  match Interning.find_opt t.interning ~attr value with
  | None -> 0.0
  | Some sym ->
    let syms = t.symbols.(i) in
    if Array.exists (fun s -> s = sym) syms then
      1.0 /. float_of_int (Array.length syms)
    else 0.0
