lib/dirty/store.ml: Csv Dirty_db Filename Fun List Sys
