examples/dedup.ml: Array Conquer Dirty Format Matcher Printf Prob
