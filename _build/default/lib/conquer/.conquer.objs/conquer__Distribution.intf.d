lib/conquer/distribution.mli: Clean Dirty Dirty_schema Sql
