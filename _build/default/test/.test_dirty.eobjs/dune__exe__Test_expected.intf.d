test/test_expected.mli:
