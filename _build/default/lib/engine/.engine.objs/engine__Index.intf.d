lib/engine/index.mli: Dirty
