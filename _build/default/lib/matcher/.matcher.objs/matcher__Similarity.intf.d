lib/matcher/similarity.mli: Dirty
