let prob_column = "clean_prob"

exception Not_rewritable of Rewritable.violation list

let m_rewrites =
  Telemetry.Metrics.counter "conquer.rewrite.queries"
    ~help:"queries rewritten into their clean-answer form"

let m_candidate_products =
  Telemetry.Metrics.counter "conquer.rewrite.candidate_products"
    ~help:"probability factors multiplied into rewritten SUM products"

let prob_product env (from : Sql.Ast.table_ref list) =
  let prob_refs =
    List.map
      (fun (r : Sql.Ast.table_ref) ->
        let alias = Option.value ~default:r.table r.t_alias in
        match env.Dirty_schema.info_of r.table with
        | Some { prob_attr; _ } ->
          Sql.Ast.Col { table = Some alias; name = prob_attr }
        | None ->
          invalid_arg
            (Printf.sprintf "Rewrite: %s is not a known dirty table" r.table))
      from
  in
  match prob_refs with
  | [] -> invalid_arg "Rewrite: empty FROM clause"
  | first :: rest ->
    List.fold_left (fun acc e -> Sql.Ast.Binop (Mul, acc, e)) first rest

let rewrite_clean env (q : Sql.Ast.query) : Sql.Ast.query =
  Telemetry.Span.with_ ~name:"conquer.rewrite" @@ fun () ->
  Telemetry.Metrics.inc m_rewrites;
  Telemetry.Metrics.inc ~n:(List.length q.from) m_candidate_products;
  let items =
    match q.select with
    | Items items -> items
    | Star ->
      invalid_arg "Rewrite.rewrite_clean: SELECT * not supported; list attributes"
  in
  (* sum(R1.prob * ... * Rm.prob) over the FROM relations *)
  let product = prob_product env q.from in
  let sum_item : Sql.Ast.select_item =
    { expr = Agg (Sum, Some product); alias = Some prob_column }
  in
  {
    q with
    select = Items (items @ [ sum_item ]);
    group_by = List.map (fun (i : Sql.Ast.select_item) -> i.expr) items;
  }

let rewrite_checked env q =
  match Rewritable.check env q with
  | Ok _ -> Ok (rewrite_clean env q)
  | Error vs -> Error vs

let rewrite_exn env q =
  match rewrite_checked env q with
  | Ok q' -> q'
  | Error vs -> raise (Not_rewritable vs)
