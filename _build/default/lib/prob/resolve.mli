(** Offline conflict resolution (survivorship), the approach the
    paper's introduction contrasts clean answers against.

    Commercial integration tools resolve each duplicate cluster to a
    single tuple with survivorship rules — keep the best
    representation, or merge values (e.g. "take the average between
    multiple conflicting incomes").  This module implements the two
    standard policies so the trade-off is measurable: resolution
    commits to one world up front and loses the uncertain answers
    that clean-answer semantics retains (see the
    [ablation-survivorship] bench report and the paper's Section 1
    discussion of why card 111 disappears). *)

type policy =
  | Most_probable
      (** keep each cluster's highest-probability tuple (ties break to
          the earliest row) *)
  | Merge
      (** synthesize a representative: probability-weighted mean for
          numeric attributes, probability-weighted modal value for
          categorical ones (the "average the incomes" survivorship
          rule) *)

val resolve_table :
  ?policy:policy -> Dirty.Dirty_db.table -> Dirty.Dirty_db.table
(** One tuple per cluster; the probability column becomes 1.0
    everywhere (the result is a clean table over the same schema).
    Default policy: [Most_probable]. *)

val resolve : ?policy:policy -> Dirty.Dirty_db.t -> Dirty.Dirty_db.t
(** Resolve every table. *)
