(** The sorted-neighborhood (merge/purge) method of Hernández and
    Stolfo — the tuple matcher behind the UIS generator the paper's
    evaluation uses.

    Each pass sorts the relation by a blocking key and slides a window
    of size [w] over the sorted order; rows within a window whose
    record similarity reaches [threshold] are merged into the same
    cluster (transitively, via union-find).  Multiple passes with
    different keys catch duplicates that one key ordering separates. *)

type pass = {
  key_attrs : string list;
      (** attributes concatenated (lowercased, prefix-truncated) into
          the blocking key *)
  key_prefix : int;  (** characters kept per attribute (default 3) *)
}

val pass : ?key_prefix:int -> string list -> pass

type config = {
  passes : pass list;
  window : int;  (** sliding-window size w >= 2 *)
  threshold : float;  (** record-similarity merge threshold in [0,1] *)
  attrs : string list;  (** attributes compared by the similarity *)
}

val run : config -> Dirty.Relation.t -> Dirty.Cluster.t
(** Cluster the relation.  @raise Invalid_argument on an empty pass
    list or window < 2. *)

val pairs_compared : config -> Dirty.Relation.t -> int
(** Number of candidate pairs the window strategy examines (for the
    blocking-efficiency report); full pairwise comparison would be
    n(n−1)/2. *)
