lib/prob/resolve.mli: Dirty
