(** Syscall-level I/O with deterministic fault injection.

    Persistence code routes its file operations through this shim.  In
    production every call is pass-through (one atomic flag test of
    overhead).  Under test, a schedule of faults can be armed against
    the numbered operation stream: fail the nth write, deliver a short
    read, tear a write at byte [k], run out of disk space, or {e crash}
    — abort at an exact syscall boundary, after which all further
    state-changing operations are suppressed until {!reset}, exactly
    like a killed process.

    The shim is write-through (no userspace buffer), so the crash
    model is precise: bytes written before the crash point are on
    disk, nothing after is. *)

type fault =
  | Fail_write  (** the write raises a transient I/O error *)
  | Enospc  (** the write raises a permanent out-of-space error *)
  | Torn_write of int
      (** only the first [k] bytes of the payload reach the file, then
          a transient error is raised *)
  | Short_read of int
      (** the read silently returns only the first [k] bytes *)
  | Crash
      (** simulated process death at this syscall boundary: the
          operation does not happen and {!Crashed} is raised *)

type op =
  | Open_out
  | Write
  | Fsync
  | Close_out
  | Rename
  | Open_in
  | Read
  | Remove
  | Mkdir

val op_name : op -> string

exception Crashed
(** The armed [Crash] fault fired (or an operation ran after it). *)

exception
  Io_error of { op : op; path : string; msg : string; transient : bool }
(** An injected I/O failure.  [transient] failures are retried by
    {!Retry.with_retry}'s default classifier; permanent ones are not. *)

(** {1 Schedule control (test harnesses)} *)

val reset : ?record:bool -> unit -> unit
(** Clear the schedule, the counters, the crashed flag and the trace.
    With [record] (default false), subsequent operations are numbered
    and traced — the mode chaos harnesses use to learn how many fault
    points an operation has. *)

val arm : (int * fault) list -> unit
(** Schedule faults at absolute operation indices (counted from the
    last {!reset}). *)

val arm_nth_write : int -> fault -> unit
(** Schedule a fault at the nth [Write] operation (0-based). *)

val arm_nth_read : int -> fault -> unit

val ops : unit -> int
(** Operations performed since the last {!reset} (only counted while
    the shim is active — after [reset ~record:true] or [arm]). *)

val crashed : unit -> bool
val injected : unit -> int
(** Faults triggered since the last {!reset}. *)

val trace : unit -> (int * op * string) list
(** The recorded operation stream (index, operation, path), oldest
    first.  Empty unless recording. *)

val random_schedule : seed:int -> ops:int -> (int * fault) list
(** A reproducible pseudo-random schedule of 1–3 faults over an
    operation stream of the given length; equal seeds give equal
    schedules.  The CI chaos job derives its schedule from
    [CONQUER_FAULT_SEED]. *)

val seed_from_env : unit -> int option
(** Parse [CONQUER_FAULT_SEED]. *)

(** {1 The I/O surface} *)

type writer

val open_out : string -> writer
(** Create/truncate a file for writing ([Open_out] fault point). *)

val write : writer -> string -> unit
(** Append the whole string ([Write] fault point; write-through). *)

val fsync : writer -> unit
(** Force file contents to stable storage ([Fsync] fault point). *)

val close : writer -> unit
(** Close ([Close_out] fault point); idempotent. *)

val abort : writer -> unit
(** Exception-path close: closes the descriptor without checking the
    schedule, so it never masks the original failure. *)

val rename : string -> string -> unit
(** Atomic rename ([Rename] fault point). *)

val remove : string -> unit
(** Delete ([Remove] fault point; suppressed after a crash, so
    unwinding cleanup cannot repair the simulated disk). *)

val mkdir : string -> int -> unit

val fsync_dir : string -> unit
(** Sync a directory's entries after a rename ([Fsync] fault point);
    filesystems that reject directory fsync are tolerated. *)

val read_file : string -> string
(** Whole-file read ([Open_in] then [Read] fault points; a
    [Short_read] fault truncates the returned bytes). *)
