type limits = { max_rows : int option; max_elapsed : float option }

let no_limits = { max_rows = None; max_elapsed = None }

type mode = Raise | Truncate

exception
  Exceeded of { produced : int; elapsed : float; limits : limits }

let exceeded_message ~produced ~elapsed limits =
  let limit_s =
    String.concat ", "
      (List.filter_map Fun.id
         [
           Option.map (Printf.sprintf "max %d rows") limits.max_rows;
           Option.map (Printf.sprintf "max %gs") limits.max_elapsed;
         ])
  in
  Printf.sprintf "execution budget exceeded after %d rows in %.3fs (%s)" produced
    elapsed
    (if limit_s = "" then "no limits" else limit_s)

let () =
  Printexc.register_printer (function
    | Exceeded { produced; elapsed; limits } ->
      Some (exceeded_message ~produced ~elapsed limits)
    | _ -> None)

(* rows admitted between wall-clock reads; gettimeofday costs ~20ns so
   this keeps the per-row overhead well under a nanosecond amortized *)
let time_check_interval = 256

(* The mutable accounting fields are guarded by [lock]: a budget can be
   charged from several domains when the executor runs partitioned
   operators in parallel, and a torn produced/countdown update would
   let rows slip past the limit.  The lock is uncontended in serial
   runs, so the cost there is a couple of atomic instructions per
   admit — still dwarfed by row materialization. *)
type t = {
  limits : limits;
  mode : mode;
  started : float;
  lock : Mutex.t;
  mutable produced : int;
  mutable stopped : bool;
  mutable countdown : int;
}

let create ?(mode = Raise) limits =
  {
    limits;
    mode;
    started = Unix.gettimeofday ();
    lock = Mutex.create ();
    produced = 0;
    stopped = false;
    countdown = time_check_interval;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let elapsed t = Unix.gettimeofday () -. t.started
let produced t = with_lock t (fun () -> t.produced)
let exhausted t = with_lock t (fun () -> t.stopped)
let truncated = exhausted

(* must be called with [t.lock] held; raises in [Raise] mode, so
   callers release the lock via Fun.protect *)
let stop_locked t =
  match t.mode with
  | Raise ->
    raise (Exceeded { produced = t.produced; elapsed = elapsed t; limits = t.limits })
  | Truncate -> t.stopped <- true

let over_time t =
  match t.limits.max_elapsed with
  | None -> false
  | Some lim -> elapsed t > lim

let check_time t =
  with_lock t (fun () -> if (not t.stopped) && over_time t then stop_locked t)

let admit t n =
  with_lock t @@ fun () ->
  if t.stopped then 0
  else begin
    t.countdown <- t.countdown - n;
    if t.countdown <= 0 then begin
      t.countdown <- time_check_interval;
      if over_time t then stop_locked t
    end;
    if t.stopped then 0
    else
      match t.limits.max_rows with
      | None ->
        t.produced <- t.produced + n;
        n
      | Some lim ->
        if t.produced + n <= lim then begin
          t.produced <- t.produced + n;
          n
        end
        else begin
          let allowed = max 0 (lim - t.produced) in
          t.produced <- t.produced + n;
          stop_locked t;
          (* only reached in Truncate mode *)
          allowed
        end
  end
