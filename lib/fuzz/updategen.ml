(* Random valid update sequences for the mutable-store differential
   harness.

   Each generated op is valid against the evolving database state (the
   generator applies ops as it draws them, so ordinals and cluster ids
   always refer to the current state).  Two modes:

   - [Grid] (default): every structural op is followed by a probability
     reassignment of the clusters it touched, with weights drawn on the
     sixteenths grid and summing to exactly 1.  Renormalization divides
     by 1.0, so every probability in the database stays a dyadic
     rational — sums and products of dyadics are exact, which is what
     makes incremental maintenance bit-identical to from-scratch
     execution across executors and morsel slicings (eps 0).
   - [Free]: raw integer weights renormalized off-grid; compared at the
     oracle's usual 1e-9 tolerance instead. *)

open Dirty

let ( let* ) gen f = QCheck.Gen.( >>= ) gen f

type mode = Grid | Free

(* weights on the dyadic grid summing to exactly 1: sixteenths for
   clusters up to 16 members, halving ladder (1/2, 1/4, ..., last takes
   the remainder) beyond *)
let grid_weights_gen n =
  if n <= 16 then
    let* parts = Dbgen.sixteenths_gen n 16 in
    QCheck.Gen.return
      (Array.of_list (List.map (fun s -> float_of_int s /. 16.0) parts))
  else
    QCheck.Gen.return
      (Array.init n (fun i ->
           if i < n - 1 then 1.0 /. float_of_int (1 lsl (i + 1))
           else 1.0 /. float_of_int (1 lsl (n - 1))))

let free_weights_gen n =
  QCheck.Gen.flatten_a
    (Array.init n (fun _ ->
         let* k = QCheck.Gen.int_range 1 16 in
         QCheck.Gen.return (float_of_int k)))

let weights_gen mode n =
  match mode with Grid -> grid_weights_gen n | Free -> free_weights_gen n

let prob_gen mode =
  let* k = QCheck.Gen.int_range 1 16 in
  match mode with
  | Grid -> QCheck.Gen.return (Value.Float (float_of_int k /. 16.0))
  | Free -> QCheck.Gen.return (Value.Float (float_of_int k /. 17.0))

let cluster_ids (t : Dirty_db.table) = Cluster.id_values t.clustering

let cluster_size (t : Dirty_db.table) id = Cluster.size t.clustering id

(* a fresh cluster identifier: for integer ids, beyond the current
   maximum; for strings, a [u<n>] name *)
let fresh_id (t : Dirty_db.table) n =
  let schema = Relation.schema t.relation in
  let ix = Schema.index_of schema t.id_attr in
  match (Schema.attribute_at schema ix).ty with
  | Value.TInt ->
    let mx =
      Array.fold_left
        (fun acc r -> match r.(ix) with Value.Int i -> max acc i | _ -> acc)
        0 (Relation.rows t.relation)
    in
    Value.Int (mx + 1 + n)
  | _ -> Value.String (Printf.sprintf "u%d" n)

let insert_gen ~mode ~counter (t : Dirty_db.table) =
  let schema = Relation.schema t.relation in
  let ids = cluster_ids t in
  let* id =
    let fresh () =
      incr counter;
      QCheck.Gen.return (fresh_id t !counter)
    in
    match ids with
    | [] -> fresh ()
    | _ ->
      let* existing = QCheck.Gen.bool in
      if existing then QCheck.Gen.oneofl ids else fresh ()
  in
  (* non-designated columns sample from the column's existing values,
     keeping foreign keys plausible without knowing the spec *)
  let* fields =
    QCheck.Gen.flatten_l
      (List.map
         (fun (a : Schema.attribute) ->
           if String.equal a.name t.id_attr then QCheck.Gen.return id
           else if String.equal a.name t.prob_attr then prob_gen mode
           else
             match
               Relation.column t.relation a.name
               |> Array.to_list
               |> List.sort_uniq Value.compare
             with
             | [] -> QCheck.Gen.return (Value.Int 0)
             | pool -> QCheck.Gen.oneofl pool)
         (Schema.attributes schema))
  in
  QCheck.Gen.return (Delta.Insert { table = t.name; row = Array.of_list fields })

let delete_gen (t : Dirty_db.table) =
  let* id = QCheck.Gen.oneofl (cluster_ids t) in
  let* member = QCheck.Gen.int_range 0 (cluster_size t id - 1) in
  QCheck.Gen.return (Delta.Delete { table = t.name; cluster = id; member })

let split_gen ~counter (t : Dirty_db.table) =
  let candidates = List.filter (fun id -> cluster_size t id >= 2) (cluster_ids t) in
  let* id = QCheck.Gen.oneofl candidates in
  let n = cluster_size t id in
  let* picks =
    QCheck.Gen.flatten_l (List.init n (fun i -> QCheck.Gen.pair (QCheck.Gen.return i) QCheck.Gen.bool))
  in
  let members =
    match List.filter_map (fun (i, b) -> if b then Some i else None) picks with
    | [] -> [ 0 ]
    | ms -> ms
  in
  incr counter;
  QCheck.Gen.return
    (Delta.Split { table = t.name; cluster = id; into = fresh_id t !counter; members })

let merge_gen (t : Dirty_db.table) =
  let ids = cluster_ids t in
  let* from_ = QCheck.Gen.oneofl ids in
  let* into = QCheck.Gen.oneofl (List.filter (fun i -> not (Value.equal i from_)) ids) in
  QCheck.Gen.return (Delta.Merge { table = t.name; from_; into })

let reassign_gen ~mode (t : Dirty_db.table) =
  let* id = QCheck.Gen.oneofl (cluster_ids t) in
  let* weights = weights_gen mode (cluster_size t id) in
  QCheck.Gen.return (Delta.Reassign { table = t.name; cluster = id; weights })

let op_gen ~mode ~counter db =
  let tables = Dirty_db.tables db in
  let clustered =
    List.filter (fun (t : Dirty_db.table) -> Cluster.num_clusters t.clustering > 0) tables
  in
  let splittable =
    List.filter (fun (t : Dirty_db.table) -> Cluster.max_cluster_size t.clustering >= 2) clustered
  in
  let mergeable =
    List.filter (fun (t : Dirty_db.table) -> Cluster.num_clusters t.clustering >= 2) clustered
  in
  let pick pool k = let* t = QCheck.Gen.oneofl pool in k t in
  QCheck.Gen.frequency
    ([ (3, pick tables (insert_gen ~mode ~counter)) ]
    @ (if clustered = [] then []
       else [ (2, pick clustered delete_gen); (3, pick clustered (reassign_gen ~mode)) ])
    @ (if splittable = [] then [] else [ (2, pick splittable (split_gen ~counter)) ])
    @ (if mergeable = [] then [] else [ (2, pick mergeable merge_gen) ]))

(* one op plus (in grid mode) reassignment fixups that pull every
   touched, still-existing cluster back onto the dyadic grid *)
let step_gen ~mode ~counter db =
  let* op = op_gen ~mode ~counter db in
  match Delta.apply db [ op ] with
  | exception Delta.Invalid _ ->
    (* op_gen only emits valid ops; treat a slip as a skipped step *)
    QCheck.Gen.return ([], db)
  | { Delta.db = db1; touched; _ } -> (
    match mode with
    | Free -> QCheck.Gen.return ([ op ], db1)
    | Grid ->
      let rec fix acc db = function
        | [] -> QCheck.Gen.return (op :: List.rev acc, db)
        | (table, cluster) :: rest -> (
          match Dirty_db.find_table_opt db table with
          | None -> fix acc db rest
          | Some t ->
            let n = cluster_size t cluster in
            if n = 0 then fix acc db rest
            else
              let* weights = grid_weights_gen n in
              let op = Delta.Reassign { table; cluster; weights } in
              let db = (Delta.apply db [ op ]).Delta.db in
              fix (op :: acc) db rest)
      in
      fix [] db1 touched)

let batch_gen_with ~mode ~counter db ~len =
  let rec loop i db acc =
    if i >= len then QCheck.Gen.return (List.concat (List.rev acc), db)
    else
      let* ops, db = step_gen ~mode ~counter db in
      loop (i + 1) db (ops :: acc)
  in
  loop 0 db []

let batch_gen ?(mode = Grid) db ~len =
  batch_gen_with ~mode ~counter:(ref 0) db ~len

let sequence_gen ?(mode = Grid) db ~batches ~len =
  let counter = ref 0 in
  let rec loop i db acc =
    if i >= batches then QCheck.Gen.return (List.rev acc, db)
    else
      let* batch, db = batch_gen_with ~mode ~counter db ~len in
      if batch = [] then loop i db acc
      else loop (i + 1) db (batch :: acc)
  in
  loop 0 db []

(* ---- whole scenarios for the update differential ---- *)

(* the harness needs queries inside the rewritable class (a rejected
   query exercises nothing): retry the general case generator a few
   times, then fall back to the always-rewritable single-table
   identifier projection *)
let rewritable_query (db : Dirty_db.t) : Sql.Ast.query =
  match Dirty_db.tables db with
  | [] -> invalid_arg "Updategen: empty database"
  | t :: _ ->
    {
      distinct = false;
      select =
        Items
          [ { expr = Col { table = Some "r0"; name = t.id_attr }; alias = None } ];
      from = [ { table = t.name; t_alias = Some "r0" } ];
      outer_joins = [];
      where = None;
      group_by = [];
      having = None;
      order_by = [];
      limit = None;
    }

let rewritable_case_gen ?max_candidates () =
  let rec go tries =
    let* case = Case.gen ?max_candidates () in
    let env = Conquer.Dirty_schema.of_dirty_db case.Case.db in
    match Conquer.Rewritable.check env case.Case.query with
    | Ok _ -> QCheck.Gen.return case
    | Error _ ->
      if tries > 0 then go (tries - 1)
      else
        QCheck.Gen.return { case with Case.query = rewritable_query case.Case.db }
  in
  go 20

let scenario_gen ?mode ?max_candidates ?(batches = 3) ?(len = 2) () =
  let* case = rewritable_case_gen ?max_candidates () in
  let* bs, _final = sequence_gen ?mode case.Case.db ~batches ~len in
  QCheck.Gen.return (case, bs)

let scenario_print (case, batches) =
  Case.print case
  ^ String.concat "\n"
      (List.mapi
         (fun i batch ->
           Printf.sprintf "batch %d:\n  %s" (i + 1)
             (String.concat "\n  " (List.map Delta.op_to_string batch)))
         batches)
  ^ "\n"

let scenario_arbitrary ?mode ?max_candidates ?batches ?len () =
  QCheck.make ~print:scenario_print
    (scenario_gen ?mode ?max_candidates ?batches ?len ())
