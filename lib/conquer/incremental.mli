(** Incrementally maintained clean-answer views.

    The Definition 7 rewriting aggregates [SUM(prod(prob))] per answer
    group, and clusters are independent events: an update batch can
    only change the probability mass of answer groups that some join
    tuple involving a {e touched} cluster contributes to.  A
    materialized view therefore keeps, next to the answer relation, a
    provenance index from [(table, cluster)] to the answer groups it
    has ever contributed to (built with the same ungrouped witness
    rewriting {!Provenance} uses).  On {!refresh}:

    + the affected group set is the index image of the touched
      clusters, plus the groups of every new-state join tuple that
      involves a touched cluster (found by re-running the witness
      query restricted to the touched cluster identifiers);
    + the affected groups are recomputed exactly by the rewritten
      query conjoined with a group-membership predicate, and spliced
      into the materialized relation (vanished groups drop out);
    + the index only ever gains entries — stale entries cost a
      redundant recomputation, never a wrong answer.

    The view falls back to full re-execution (and full index rebuild)
    when the query is not localizable (ORDER BY / LIMIT / DISTINCT:
    splicing can't preserve those) or when the affected set exceeds
    [max_affected] — recomputing most groups individually would cost
    more than one scan.  Fallbacks are reported in {!stats} and
    counted by the [conquer.incremental.fallbacks] metric.

    Float caveat (DESIGN §5k): group recomputation folds the same
    per-group products in the same relative row order as a
    from-scratch run, so results are bit-identical on any input for
    the row executor, and bit-identical for the chunked executor
    whenever probabilities are dyadic rationals (the fuzz grid) — the
    general chunked case agrees to within reassociation error only. *)

open Dirty

type t

type stats = {
  s_touched : int;  (** touched clusters relevant to this view's query *)
  s_affected : int;  (** answer groups recomputed *)
  s_fallback : string option;
      (** [Some reason] when the refresh fell back to full
          re-execution; [None] on the incremental path *)
}

val materialize : ?config:Engine.Planner.config -> Clean.session -> string -> t
(** Execute the rewritten query once and build the provenance index.
    @raise Rewrite.Not_rewritable when the query is outside the
    rewritable class, [Invalid_arg] on [SELECT *]. *)

val materialize_query :
  ?config:Engine.Planner.config -> Clean.session -> Sql.Ast.query -> t
(** {!materialize} over an already-parsed query (the fuzz harness's
    entry point). *)

val answers : t -> Relation.t
(** The materialized clean answers (answer columns + [clean_prob]).
    Row order is maintenance order: refreshed groups keep their
    position, new groups append. *)

val sql : t -> string

val refresh :
  ?config:Engine.Planner.config ->
  ?max_affected:int ->
  t ->
  Clean.session ->
  touched:(string * Value.t) list ->
  stats
(** Bring the view up to date with [session] (a session over the
    updated database) given the clusters touched by the update batch
    ({!Delta.outcome.touched}).  [max_affected] (default 256) bounds
    the incremental path; larger affected sets re-execute in full. *)
