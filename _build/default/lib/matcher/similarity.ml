open Dirty

let string_similarity a b = 1.0 -. Prob.Strdist.normalized_levenshtein a b

let tokens s =
  String.split_on_char ' ' (String.lowercase_ascii s)
  |> List.filter (fun t -> t <> "")
  |> List.sort_uniq String.compare

let token_jaccard a b =
  let ta = tokens a and tb = tokens b in
  match ta, tb with
  | [], [] -> 1.0
  | _ ->
    let inter = List.length (List.filter (fun t -> List.mem t tb) ta) in
    let union = List.length (List.sort_uniq String.compare (ta @ tb)) in
    float_of_int inter /. float_of_int union

let numeric_similarity a b =
  let denom = Float.max (Float.max (Float.abs a) (Float.abs b)) 1.0 in
  Float.max 0.0 (1.0 -. (Float.abs (a -. b) /. denom))

let value_similarity a b =
  match a, b with
  | Value.Null, Value.Null -> 1.0
  | Value.Null, _ | _, Value.Null -> 0.0
  | Value.String x, Value.String y -> string_similarity x y
  | (Value.Int _ | Value.Float _), (Value.Int _ | Value.Float _) ->
    numeric_similarity (Option.get (Value.to_float a)) (Option.get (Value.to_float b))
  | Value.Date x, Value.Date y ->
    (* a week apart is still fairly similar *)
    Float.max 0.0 (1.0 -. (Float.abs (float_of_int (x - y)) /. 30.0))
  | Value.Bool x, Value.Bool y -> if x = y then 1.0 else 0.0
  | _ -> string_similarity (Value.to_string a) (Value.to_string b)

let record_similarity ?weights rel ~attrs i j =
  let schema = Relation.schema rel in
  let indices = List.map (Schema.index_of schema) attrs in
  let weights =
    match weights with
    | Some w ->
      if List.length w <> List.length attrs then
        invalid_arg "Similarity.record_similarity: weight arity mismatch"
      else w
    | None -> List.map (fun _ -> 1.0) attrs
  in
  let ri = Relation.get rel i and rj = Relation.get rel j in
  let total_weight = List.fold_left ( +. ) 0.0 weights in
  if total_weight <= 0.0 then invalid_arg "Similarity.record_similarity: zero weight";
  let weighted =
    List.fold_left2
      (fun acc idx w -> acc +. (w *. value_similarity ri.(idx) rj.(idx)))
      0.0 indices weights
  in
  weighted /. total_weight
