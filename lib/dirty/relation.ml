type row = Value.t array
type t = { schema : Schema.t; rows : row array }

let check_row schema row =
  if Array.length row <> Schema.arity schema then
    invalid_arg
      (Printf.sprintf "Relation: row arity %d does not match schema arity %d"
         (Array.length row) (Schema.arity schema))

let of_array schema rows =
  Array.iter (check_row schema) rows;
  { schema; rows }

let create schema rows = of_array schema (Array.of_list rows)
let schema t = t.schema
let cardinality t = Array.length t.rows
let rows t = t.rows
let row_list t = Array.to_list t.rows
let get t i = t.rows.(i)
let is_empty t = cardinality t = 0
let iter f t = Array.iter f t.rows
let fold f init t = Array.fold_left f init t.rows

let filter p t = { t with rows = Array.of_seq (Seq.filter p (Array.to_seq t.rows)) }

let map_rows schema f t =
  let rows = Array.map f t.rows in
  of_array schema rows

let column t name =
  let i = Schema.index_of t.schema name in
  Array.map (fun row -> row.(i)) t.rows

let column_slice t ~col ~lo ~len =
  Array.init len (fun i -> t.rows.(lo + i).(col))

let value t row name = row.(Schema.index_of t.schema name)

let project t names =
  let indices = List.map (Schema.index_of t.schema) names in
  let schema = Schema.project t.schema names in
  map_rows schema (fun row -> Array.of_list (List.map (fun i -> row.(i)) indices)) t

let sort_by cmp t =
  let rows = Array.copy t.rows in
  Array.stable_sort cmp rows;
  { t with rows }

let row_compare a b =
  let n = Array.length a and m = Array.length b in
  if n <> m then Int.compare n m
  else
    let rec go i =
      if i >= n then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

module Row_key = struct
  type t = row

  let equal a b = row_compare a b = 0

  let hash row =
    Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 row
end

module Row_tbl = Hashtbl.Make (Row_key)

let distinct t =
  let seen = Row_tbl.create (cardinality t) in
  let keep = ref [] in
  iter
    (fun row ->
      if not (Row_tbl.mem seen row) then begin
        Row_tbl.add seen row ();
        keep := row :: !keep
      end)
    t;
  { t with rows = Array.of_list (List.rev !keep) }

let append a b =
  if not (Schema.equal a.schema b.schema) then
    invalid_arg "Relation.append: schema mismatch";
  { a with rows = Array.append a.rows b.rows }

let equal_as_bags a b =
  Schema.equal a.schema b.schema
  && cardinality a = cardinality b
  &&
  let counts = Row_tbl.create (cardinality a) in
  iter
    (fun row ->
      let c = Option.value ~default:0 (Row_tbl.find_opt counts row) in
      Row_tbl.replace counts row (c + 1))
    a;
  try
    iter
      (fun row ->
        match Row_tbl.find_opt counts row with
        | None | Some 0 -> raise Exit
        | Some c -> Row_tbl.replace counts row (c - 1))
      b;
    true
  with Exit -> false

let pp ?(max_rows = 50) fmt t =
  let names = Schema.names t.schema in
  let shown = min max_rows (cardinality t) in
  let cells =
    Array.init shown (fun i -> Array.map Value.to_string t.rows.(i))
  in
  let widths =
    List.mapi
      (fun j name ->
        Array.fold_left
          (fun w cell -> max w (String.length cell.(j)))
          (String.length name) cells)
      names
  in
  let hline () =
    List.iter (fun w -> Format.fprintf fmt "+%s" (String.make (w + 2) '-')) widths;
    Format.fprintf fmt "+@\n"
  in
  let print_cells values =
    List.iteri
      (fun j w -> Format.fprintf fmt "| %-*s " w (List.nth values j))
      widths;
    Format.fprintf fmt "|@\n"
  in
  hline ();
  print_cells names;
  hline ();
  Array.iter (fun cell -> print_cells (Array.to_list cell)) cells;
  hline ();
  if shown < cardinality t then
    Format.fprintf fmt "... (%d rows total)@\n" (cardinality t)

let to_string ?max_rows t = Format.asprintf "%a" (pp ?max_rows) t
