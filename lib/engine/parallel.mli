(** A fixed-size pool of worker domains for partition-parallel query
    execution.

    The pool is created lazily on the first parallel region and grows
    (never shrinks) to the largest [jobs] ever requested, capped at
    {!max_jobs}.  Work is distributed by chunk stealing over a shared
    atomic index, and the {e caller participates}: a parallel region
    makes progress even when every worker is busy, so nested regions
    cannot deadlock.

    Telemetry spans opened inside tasks are confined to the executing
    domain ([Telemetry.Span] keeps per-domain stacks) and merged back
    into the caller's span in task-index order, so traces of parallel
    runs are deterministic. *)

val max_jobs : int
(** Hard cap on pool size (the domain count recommended by the
    runtime, at least 1). *)

val default_jobs : unit -> int
(** The jobs count used when no explicit configuration is given: the
    process-wide override from {!set_default_jobs} if set, else the
    [CONQUER_JOBS] environment variable if parseable, else [1]. *)

val set_default_jobs : int -> unit
(** Set the process-wide default (clamped to [1 .. max_jobs]); used by
    the CLI's [--jobs] flag. *)

val warm : int -> unit
(** [warm jobs] pre-spawns the worker domains a [jobs]-wide region
    would use (clamped to {!max_jobs}), so the first parallel region
    does not pay domain-creation cost.  Benchmarks call this before
    sampling; otherwise the lazily-created pool charges its spawn time
    to whichever run happens first. *)

val min_rows_per_chunk : int ref
(** Parallel operators fall back to serial execution when the input
    has fewer than about [jobs * !min_rows_per_chunk] rows — below
    that, domain handoff costs more than it saves.  Exposed (default
    512) so tests can force the parallel paths on small relations. *)

val run : ?cancel:Cancel.token -> jobs:int -> int -> (int -> unit) -> unit
(** [run ~jobs n task] evaluates [task i] for every [0 <= i < n],
    using up to [jobs] domains (including the calling one).  Tasks
    must be thread-safe and write to disjoint state.  Blocks until all
    tasks finish; completed-task effects are visible to the caller.
    If any task raises, the exception of the lowest task index is
    re-raised in the caller after all tasks finish.  With [jobs <= 1]
    or [n <= 1] the tasks run inline in index order.

    When [cancel] is given, the token is polled before each task: once
    it trips, unstarted tasks are skipped and {!Cancel.Cancelled} is
    raised after the region drains.  Only pass a token when raising is
    acceptable (the executor does so in [Raise] budget mode only). *)

val init : ?cancel:Cancel.token -> jobs:int -> int -> (int -> 'a) -> 'a array
(** [init ~jobs n f] is [Array.init n f] with the calls distributed
    like {!run}; element [i] is [f i].  The order of evaluation is
    unspecified, so [f] must be pure up to thread-safe effects.
    [cancel] behaves as in {!run}. *)
