lib/conquer/rewrite.ml: Dirty_schema List Option Printf Rewritable Sql
