(** Monte-Carlo clean answers for queries outside the rewritable
    class.

    Example 7 shows SPJ queries for which no SQL rewriting computes
    the clean answers, and the general problem is co-NP-complete — the
    exact oracle ({!Candidates}) is exponential.  Sampling fills the
    gap: candidate databases are cheap to draw from Dfn 4's
    distribution (pick one tuple per cluster, independently, according
    to the tuple probabilities), and the fraction of sampled candidates
    producing an answer tuple is an unbiased estimator of its clean
    probability.  Cost is [samples × query time], polynomial
    throughout.

    Each estimate comes with its standard error
    [sqrt(p̂(1−p̂)/n)]; answers never observed are absent (they have
    estimated probability 0). *)

type estimate = {
  row : Dirty.Relation.row;  (** the answer tuple (query columns only) *)
  probability : float;  (** fraction of samples producing the row *)
  std_error : float;
  occurrences : int;
}

val sample_candidate :
  Random.State.t -> Dirty.Dirty_db.t -> (string * Dirty.Relation.t) list
(** Draw one candidate database (one tuple per cluster, by tuple
    probability). *)

val estimates :
  ?seed:int -> samples:int -> Clean.session -> string -> estimate list
(** Run the query on [samples] sampled candidates.  Any query the
    engine supports is allowed (including non-rewritable SPJ and
    grouped queries); answers are compared as whole rows.
    @raise Invalid_argument if [samples < 1]. *)

val answers :
  ?seed:int -> samples:int -> Clean.session -> string -> Dirty.Relation.t
(** {!estimates} as a relation: the query's columns followed by
    [clean_prob] (the estimate) and [std_error], sorted by descending
    estimate. *)
