(* Random SPJ queries over a generated schema spec.

   The distribution deliberately straddles the rewritable class
   (Dfn 7): most queries join along foreign keys into a tree and
   project the root identifier, but self-joins, identifier-free
   joins, cyclic join graphs, dropped identifiers, DISTINCT,
   ORDER BY, LIMIT and count-star all appear with small probability so
   the harness also exercises the rejection path of
   [Rewritable.check].

   Round-trip hygiene (the generated queries double as the SQL
   pretty-printer's property inputs): only non-negative integer
   literals (negative ones reparse as [Unop (Neg, ...)]), never
   [Agg (Sum, None)] (sum-star does not parse), columns always
   alias-qualified. *)

open Sql.Ast

let ( let* ) gen f = QCheck.Gen.( >>= ) gen f

let qcol alias name = Col { table = Some alias; name }

(* ---- choosing table references ---- *)

let refs_gen (spec : Dbgen.spec) =
  let tables = Array.of_list spec in
  let n = Array.length tables in
  let* wanted =
    QCheck.Gen.frequency
      [
        (3, QCheck.Gen.return 1);
        (4, QCheck.Gen.return 2);
        (2, QCheck.Gen.return 3);
      ]
  in
  (* allow one repeated table (a self-join) about a tenth of the time *)
  let* allow_self = QCheck.Gen.int_range 0 9 in
  let cap = if allow_self = 0 then n + 1 else n in
  let nrefs = max 1 (min wanted cap) in
  let* idxs =
    QCheck.Gen.flatten_l
      (List.init nrefs (fun _ -> QCheck.Gen.int_range 0 (n - 1)))
  in
  (* bias towards distinct tables: replace duplicates with the first
     unused table unless this query is allowed a self-join *)
  let seen = Hashtbl.create 4 in
  let idxs =
    List.map
      (fun i ->
        if not (Hashtbl.mem seen i) then (Hashtbl.replace seen i (); i)
        else if allow_self = 0 then i
        else begin
          let rec free j = if Hashtbl.mem seen (j mod n) then free (j + 1) else j mod n in
          let j = free i in
          Hashtbl.replace seen j ();
          j
        end)
      idxs
  in
  QCheck.Gen.return
    (List.mapi (fun k i -> (Printf.sprintf "r%d" k, tables.(i))) idxs)

(* ---- join conditions ---- *)

(* foreign-key arcs available between two referenced tables, either
   direction: (fk-side alias, fk column, id-side alias) *)
let fk_arcs (a, (ta : Dbgen.table_spec)) (b, (tb : Dbgen.table_spec)) =
  List.filter_map
    (fun (c, target) -> if target = tb.name then Some (a, c, b) else None)
    ta.fks
  @ List.filter_map
      (fun (c, target) -> if target = ta.name then Some (b, c, a) else None)
      tb.fks

let payload_col_gen (alias, (t : Dbgen.table_spec)) =
  let* p = QCheck.Gen.oneofl t.payloads in
  QCheck.Gen.return (qcol alias p)

let join_cond_gen here there =
  let arcs = fk_arcs here there in
  let* kind =
    QCheck.Gen.frequency
      (List.concat
         [
           (if arcs = [] then [] else [ (6, QCheck.Gen.return `Fk) ]);
           [ (1, QCheck.Gen.return `Id_id); (1, QCheck.Gen.return `Non_id) ];
         ])
  in
  match kind with
  | `Fk ->
    let* fk_alias, c, id_alias = QCheck.Gen.oneofl arcs in
    QCheck.Gen.return (Binop (Eq, qcol fk_alias c, qcol id_alias "id"))
  | `Id_id ->
    QCheck.Gen.return (Binop (Eq, qcol (fst here) "id", qcol (fst there) "id"))
  | `Non_id ->
    let* a = payload_col_gen here in
    let* b = payload_col_gen there in
    QCheck.Gen.return (Binop (Eq, a, b))

(* one condition per reference after the first (so join graphs are
   mostly connected), occasionally omitted, plus an occasional extra
   edge that can close a cycle *)
let joins_gen refs =
  let refs = Array.of_list refs in
  let n = Array.length refs in
  let rec per_ref i acc =
    if i >= n then QCheck.Gen.return (List.rev acc)
    else
      let* skip = QCheck.Gen.int_range 0 9 in
      if skip = 0 then per_ref (i + 1) acc
      else
        let* j = QCheck.Gen.int_range 0 (i - 1) in
        let* cond = join_cond_gen refs.(i) refs.(j) in
        per_ref (i + 1) (cond :: acc)
  in
  let* base = per_ref 1 [] in
  if n < 2 then QCheck.Gen.return base
  else
    let* extra = QCheck.Gen.int_range 0 9 in
    if extra > 0 then QCheck.Gen.return base
    else
      let* i = QCheck.Gen.int_range 1 (n - 1) in
      let* j = QCheck.Gen.int_range 0 (i - 1) in
      let* cond = join_cond_gen refs.(i) refs.(j) in
      QCheck.Gen.return (base @ [ cond ])

(* ---- filters ---- *)

let filter_gen refs =
  let* here = QCheck.Gen.oneofl refs in
  let* column =
    let _, (t : Dbgen.table_spec) = here in
    QCheck.Gen.oneofl (("id" :: t.payloads) @ List.map fst t.fks)
  in
  let* op = QCheck.Gen.oneofl [ Eq; Neq; Lt; Le; Gt; Ge ] in
  let* c = QCheck.Gen.int_range 0 4 in
  QCheck.Gen.return (Binop (op, qcol (fst here) column, lit_int c))

let filters_gen refs =
  let* n = QCheck.Gen.frequency
      [ (4, QCheck.Gen.return 0); (4, QCheck.Gen.return 1); (2, QCheck.Gen.return 2) ]
  in
  QCheck.Gen.flatten_l (List.init n (fun _ -> filter_gen refs))

(* ---- select list ---- *)

let select_gen refs =
  let* picked =
    QCheck.Gen.flatten_l
      (List.map
         (fun (alias, (t : Dbgen.table_spec)) ->
           let* want_id = QCheck.Gen.int_range 0 99 in
           let* payloads =
             QCheck.Gen.flatten_l
               (List.map
                  (fun p ->
                    let* w = QCheck.Gen.int_range 0 99 in
                    QCheck.Gen.return (if w < 35 then [ qcol alias p ] else []))
                  t.payloads)
           in
           QCheck.Gen.return
             ((if want_id < 65 then [ qcol alias "id" ] else [])
             @ List.concat payloads))
         refs)
  in
  let exprs = List.concat picked in
  let* exprs =
    match exprs with
    | [] ->
      (* never an empty select list *)
      let alias, _ = List.hd refs in
      QCheck.Gen.return [ qcol alias "id" ]
    | _ -> QCheck.Gen.return exprs
  in
  QCheck.Gen.flatten_l
    (List.mapi
       (fun k e ->
         let* aliased = QCheck.Gen.int_range 0 9 in
         let alias =
           if aliased < 2 then Some (Printf.sprintf "x%d" k) else None
         in
         QCheck.Gen.return { expr = e; alias })
       exprs)

(* ---- whole queries ---- *)

let gen (spec : Dbgen.spec) : query QCheck.Gen.t =
  let* refs = refs_gen spec in
  let* joins = joins_gen refs in
  let* filters = filters_gen refs in
  let* items = select_gen refs in
  let* rare = QCheck.Gen.int_range 0 99 in
  (* a sliver of deliberately non-SPJ shapes for the rejection path *)
  let distinct = rare < 4 in
  let* limit_roll = QCheck.Gen.int_range 0 99 in
  let* limit_n = QCheck.Gen.int_range 0 3 in
  let limit = if limit_roll < 4 then Some limit_n else None in
  let* order_roll = QCheck.Gen.int_range 0 99 in
  let* order_desc = QCheck.Gen.bool in
  let order_by =
    if order_roll < 4 then
      let alias, _ = List.hd refs in
      [ { o_expr = qcol alias "id"; desc = order_desc } ]
    else []
  in
  let* count_roll = QCheck.Gen.int_range 0 99 in
  let select =
    if count_roll < 3 then Items [ { expr = Agg (Count, None); alias = None } ]
    else Items items
  in
  QCheck.Gen.return
    {
      distinct;
      select;
      from =
        List.map
          (fun (alias, (t : Dbgen.table_spec)) ->
            { table = t.name; t_alias = Some alias })
          refs;
      outer_joins = [];
      where = conj (joins @ filters);
      group_by = [];
      having = None;
      order_by;
      limit;
    }

(* ---- shrinking ---- *)

let aliases_of_expr e =
  List.filter_map (fun (c : column) -> c.table) (expr_columns e)

let mentions_alias alias e = List.mem alias (aliases_of_expr e)

let shrink (q : query) : query QCheck.Iter.t =
 fun yield ->
  if q.distinct then yield { q with distinct = false };
  if q.limit <> None then yield { q with limit = None };
  if q.order_by <> [] then yield { q with order_by = [] };
  let conjs = match q.where with None -> [] | Some w -> conjuncts w in
  (* drop one where conjunct *)
  List.iteri
    (fun k _ ->
      let rest = List.filteri (fun i _ -> i <> k) conjs in
      yield { q with where = conj rest })
    conjs;
  (match q.select with
  | Star -> ()
  | Items items ->
    (* drop one select item, keeping at least one *)
    if List.length items > 1 then
      List.iteri
        (fun k _ ->
          let rest = List.filteri (fun i _ -> i <> k) items in
          yield { q with select = Items rest })
        items;
    (* drop a table reference together with everything naming it *)
    if List.length q.from > 1 then
      List.iter
        (fun (r : table_ref) ->
          match r.t_alias with
          | None -> ()
          | Some alias ->
            let from = List.filter (fun (r' : table_ref) -> r' != r) q.from in
            let conjs =
              List.filter (fun e -> not (mentions_alias alias e)) conjs
            in
            let items' =
              List.filter
                (fun (i : select_item) -> not (mentions_alias alias i.expr))
                items
            in
            let items' =
              match items' with
              | [] -> (
                match from with
                | { t_alias = Some a; _ } :: _ ->
                  [ { expr = qcol a "id"; alias = None } ]
                | _ -> items')
              | _ -> items'
            in
            let order_by =
              List.filter
                (fun (o : order_item) -> not (mentions_alias alias o.o_expr))
                q.order_by
            in
            if items' <> [] then
              yield
                {
                  q with
                  from;
                  where = conj conjs;
                  select = Items items';
                  order_by;
                })
        q.from)
