(** The dirty TPC-H-style schema the evaluation runs on.

    Each dirty table carries:
    - a {e row key} column ([*_rowid]) that is unique per tuple (the
      original key of the source before tuple matching),
    - an {e identifier} column holding the cluster identifier emitted
      by the matcher (the paper's setup where the original key values
      are replaced by the identifier — duplicates share it),
    - a [prob] column, and
    - foreign keys in two forms: a raw form referencing the row key
      of a specific duplicate ([*_raw]) and the propagated form
      referencing the identifier (what queries join on).

    [region] and [nation] are clean lookup tables (singleton
    clusters, probability 1). *)

type table_spec = {
  name : string;
  schema : Dirty.Schema.t;
  id_attr : string;
  rowid_attr : string option;  (** None for the clean lookup tables *)
  prob_attr : string;
}

val region : table_spec
val nation : table_spec
val supplier : table_spec
val part : table_spec
val partsupp : table_spec
val customer : table_spec
val orders : table_spec
val lineitem : table_spec

val all : table_spec list
(** Topological order (referenced tables first). *)

val dirty_tables : table_spec list
(** The six tables that receive duplicates. *)

val spec : string -> table_spec
(** @raise Not_found *)
