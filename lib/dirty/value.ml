type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Date of int

type ty = TBool | TInt | TFloat | TString | TDate

let type_of = function
  | Null -> None
  | Bool _ -> Some TBool
  | Int _ -> Some TInt
  | Float _ -> Some TFloat
  | String _ -> Some TString
  | Date _ -> Some TDate

let ty_name = function
  | TBool -> "BOOLEAN"
  | TInt -> "INTEGER"
  | TFloat -> "FLOAT"
  | TString -> "VARCHAR"
  | TDate -> "DATE"

let is_null = function Null -> true | _ -> false

(* Rank of the type tag, used to keep the order total across types.
   Numeric values (Int/Float) share a rank so that they compare
   numerically with each other. *)
let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | String _ -> 3
  | Date _ -> 4

(* Exact comparison of an int against a float.  Rounding the int to
   float first would be lossy above 2^53 — distinct ints would compare
   equal to the same float, breaking transitivity of [equal] (and with
   it distinct/sort/join keys).  Instead: NaN sorts above every int
   (matching [Float.compare]'s total order); floats beyond the native
   int range compare by sign; otherwise the float's integral part fits
   an int exactly, so compare that, then the fractional part. *)
let compare_int_float x y =
  if Float.is_nan y then 1 (* [Float.compare] sorts NaN below everything *)
  else if y >= 4.611686018427387904e18 (* 2^62 > max_int *) then -1
  else if y < -4.611686018427387904e18 (* min_int as a float *) then 1
  else begin
    let ty = Float.trunc y in
    (* |ty| <= 2^62 and integral, so the conversion is exact *)
    let iy = int_of_float ty in
    if x < iy then -1
    else if x > iy then 1
    else
      let frac = y -. ty in
      if frac > 0.0 then -1 else if frac < 0.0 then 1 else 0
  end

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> compare_int_float x y
  | Float x, Int y -> -compare_int_float y x
  | String x, String y -> String.compare x y
  | Date x, Date y -> Int.compare x y
  | (Null | Bool _ | Int _ | Float _ | String _ | Date _), _ ->
    Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

(* Hashing must agree with [compare]'s equality classes, which for
   floats are coarser than bit equality: [Float.compare (-0.) 0. = 0]
   and NaN equals NaN under the total order.  [Hashtbl.hash] already
   collapses -0.0 onto 0.0 and every NaN payload onto one bucket, so
   hashing the raw float is safe; these named entry points exist so
   columnar kernels hashing unboxed columns inherit the same guarantee
   instead of re-deriving it (e.g. from [Int64.bits_of_float], which
   would split -0.0 from 0.0 and scatter NaNs). *)
let hash_float (f : float) = Hashtbl.hash f

(* ints hash through their float image so that Int 2 and Float 2.0 —
   equal under [compare] — share a bucket *)
let hash_int (i : int) = Hashtbl.hash (float_of_int i)

let hash = function
  | Null -> 17
  | Bool b -> Hashtbl.hash b
  | Int i -> hash_int i
  | Float f -> hash_float f
  | String s -> Hashtbl.hash s
  | Date d -> 31 * Hashtbl.hash d + 5

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Bool b -> Some (if b then 1.0 else 0.0)
  | Date d -> Some (float_of_int d)
  | Null | String _ -> None

let to_int = function
  | Int i -> Some i
  | Float f -> Some (int_of_float f)
  | Bool b -> Some (if b then 1 else 0)
  | Date d -> Some d
  | Null | String _ -> None

(* Civil-date conversion (proleptic Gregorian), after Howard Hinnant's
   algorithms: days_from_civil and civil_from_days. *)

let days_of_civil ~year ~month ~day =
  let y = if month <= 2 then year - 1 else year in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - era * 400 in
  let mp = (month + 9) mod 12 in
  let doy = (153 * mp + 2) / 5 + day - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 719468

let civil_of_days z =
  let z = z + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - era * 146097 in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + era * 400 in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let day = doy - ((153 * mp + 2) / 5) + 1 in
  let month = if mp < 10 then mp + 3 else mp - 9 in
  let year = if month <= 2 then y + 1 else y in
  (year, month, day)

let date_of_string s =
  let fail () = invalid_arg (Printf.sprintf "Value.date_of_string: %S" s) in
  match String.split_on_char '-' s with
  | [ y; m; d ] ->
    (try
       let year = int_of_string y
       and month = int_of_string m
       and day = int_of_string d in
       if month < 1 || month > 12 || day < 1 || day > 31 then fail ()
       else Date (days_of_civil ~year ~month ~day)
     with Failure _ -> fail ())
  | _ -> fail ()

let string_of_date d =
  let year, month, day = civil_of_days d in
  Printf.sprintf "%04d-%02d-%02d" year month day

let looks_like_date s =
  String.length s = 10 && s.[4] = '-' && s.[7] = '-'
  &&
  let digits = [ 0; 1; 2; 3; 5; 6; 8; 9 ] in
  List.for_all (fun i -> s.[i] >= '0' && s.[i] <= '9') digits

let parse s =
  let s' = String.trim s in
  if s' = "" || String.uppercase_ascii s' = "NULL" then Null
  else
    match int_of_string_opt s' with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt s' with
      | Some f -> Float f
      | None ->
        if looks_like_date s' then (try date_of_string s' with Invalid_argument _ -> String s)
        else
          match String.lowercase_ascii s' with
          | "true" -> Bool true
          | "false" -> Bool false
          | _ -> String s)

let to_string = function
  | Null -> "NULL"
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
    else Printf.sprintf "%g" f
  | String s -> s
  | Date d -> string_of_date d

let to_sql = function
  | Null -> "NULL"
  | Bool b -> if b then "TRUE" else "FALSE"
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.17g" f
  | String s ->
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '\'';
    String.iter
      (fun c ->
        if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '\'';
    Buffer.contents buf
  | Date d -> Printf.sprintf "DATE '%s'" (string_of_date d)

let pp fmt v = Format.pp_print_string fmt (to_string v)
