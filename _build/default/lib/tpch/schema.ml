open Dirty

type table_spec = {
  name : string;
  schema : Schema.t;
  id_attr : string;
  rowid_attr : string option;
  prob_attr : string;
}

let region =
  {
    name = "region";
    schema =
      Schema.make
        [
          ("r_regionkey", Value.TInt);
          ("r_name", Value.TString);
          ("r_comment", Value.TString);
          ("prob", Value.TFloat);
        ];
    id_attr = "r_regionkey";
    rowid_attr = None;
    prob_attr = "prob";
  }

let nation =
  {
    name = "nation";
    schema =
      Schema.make
        [
          ("n_nationkey", Value.TInt);
          ("n_name", Value.TString);
          ("n_regionkey", Value.TInt);
          ("n_comment", Value.TString);
          ("prob", Value.TFloat);
        ];
    id_attr = "n_nationkey";
    rowid_attr = None;
    prob_attr = "prob";
  }

let supplier =
  {
    name = "supplier";
    schema =
      Schema.make
        [
          ("s_suppkey", Value.TInt);
          ("s_rowid", Value.TInt);
          ("s_name", Value.TString);
          ("s_address", Value.TString);
          ("s_nationkey", Value.TInt);
          ("s_phone", Value.TString);
          ("s_acctbal", Value.TFloat);
          ("s_comment", Value.TString);
          ("prob", Value.TFloat);
        ];
    id_attr = "s_suppkey";
    rowid_attr = Some "s_rowid";
    prob_attr = "prob";
  }

let part =
  {
    name = "part";
    schema =
      Schema.make
        [
          ("p_partkey", Value.TInt);
          ("p_rowid", Value.TInt);
          ("p_name", Value.TString);
          ("p_mfgr", Value.TString);
          ("p_brand", Value.TString);
          ("p_type", Value.TString);
          ("p_size", Value.TInt);
          ("p_container", Value.TString);
          ("p_retailprice", Value.TFloat);
          ("p_comment", Value.TString);
          ("prob", Value.TFloat);
        ];
    id_attr = "p_partkey";
    rowid_attr = Some "p_rowid";
    prob_attr = "prob";
  }

let partsupp =
  {
    name = "partsupp";
    schema =
      Schema.make
        [
          ("ps_id", Value.TInt);
          ("ps_rowid", Value.TInt);
          ("ps_partkey", Value.TInt);  (* propagated fk to part *)
          ("ps_partkey_raw", Value.TInt);
          ("ps_suppkey", Value.TInt);  (* propagated fk to supplier *)
          ("ps_suppkey_raw", Value.TInt);
          ("ps_availqty", Value.TInt);
          ("ps_supplycost", Value.TFloat);
          ("ps_comment", Value.TString);
          ("prob", Value.TFloat);
        ];
    id_attr = "ps_id";
    rowid_attr = Some "ps_rowid";
    prob_attr = "prob";
  }

let customer =
  {
    name = "customer";
    schema =
      Schema.make
        [
          ("c_custkey", Value.TInt);
          ("c_rowid", Value.TInt);
          ("c_name", Value.TString);
          ("c_address", Value.TString);
          ("c_nationkey", Value.TInt);
          ("c_phone", Value.TString);
          ("c_acctbal", Value.TFloat);
          ("c_mktsegment", Value.TString);
          ("c_comment", Value.TString);
          ("prob", Value.TFloat);
        ];
    id_attr = "c_custkey";
    rowid_attr = Some "c_rowid";
    prob_attr = "prob";
  }

let orders =
  {
    name = "orders";
    schema =
      Schema.make
        [
          ("o_orderkey", Value.TInt);
          ("o_rowid", Value.TInt);
          ("o_custkey", Value.TInt);  (* propagated fk to customer *)
          ("o_custkey_raw", Value.TInt);
          ("o_orderstatus", Value.TString);
          ("o_totalprice", Value.TFloat);
          ("o_orderdate", Value.TDate);
          ("o_orderpriority", Value.TString);
          ("o_clerk", Value.TString);
          ("o_shippriority", Value.TInt);
          ("prob", Value.TFloat);
        ];
    id_attr = "o_orderkey";
    rowid_attr = Some "o_rowid";
    prob_attr = "prob";
  }

let lineitem =
  {
    name = "lineitem";
    schema =
      Schema.make
        [
          ("l_id", Value.TInt);
          ("l_rowid", Value.TInt);
          ("l_orderkey", Value.TInt);  (* propagated fk to orders *)
          ("l_orderkey_raw", Value.TInt);
          ("l_partkey", Value.TInt);  (* propagated fk to part *)
          ("l_suppkey", Value.TInt);  (* propagated fk to supplier *)
          ("l_psid", Value.TInt);  (* propagated fk to partsupp *)
          ("l_psid_raw", Value.TInt);
          ("l_linenumber", Value.TInt);
          ("l_quantity", Value.TInt);
          ("l_extendedprice", Value.TFloat);
          ("l_discount", Value.TFloat);
          ("l_tax", Value.TFloat);
          ("l_returnflag", Value.TString);
          ("l_linestatus", Value.TString);
          ("l_shipdate", Value.TDate);
          ("l_commitdate", Value.TDate);
          ("l_receiptdate", Value.TDate);
          ("l_shipinstruct", Value.TString);
          ("l_shipmode", Value.TString);
          ("prob", Value.TFloat);
        ];
    id_attr = "l_id";
    rowid_attr = Some "l_rowid";
    prob_attr = "prob";
  }

let all = [ region; nation; supplier; part; partsupp; customer; orders; lineitem ]
let dirty_tables = [ supplier; part; partsupp; customer; orders; lineitem ]

let spec name =
  match List.find_opt (fun t -> t.name = name) all with
  | Some t -> t
  | None -> raise Not_found
