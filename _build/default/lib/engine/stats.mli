(** RUNSTATS-style statistics used by the planner's cost model. *)

type histogram = {
  bounds : float array;
      (** ascending bucket upper bounds; bucket [i] covers
          (bounds[i-1], bounds[i]], the first bucket starts at the
          column minimum *)
  depth : float;  (** rows per bucket (equi-depth) *)
}

type column_stats = {
  distinct : int;
  nulls : int;
  min : Dirty.Value.t option;
  max : Dirty.Value.t option;
  histogram : histogram option;
      (** equi-depth histogram over the numeric image of the column
          (numbers and dates); [None] for non-numeric columns *)
}

type t = {
  rows : int;
  columns : (string * column_stats) list;
}

val analyze : Dirty.Relation.t -> t

val column : t -> string -> column_stats option

val histogram_buckets : int
(** Number of equi-depth buckets collected (32). *)

val range_fraction : histogram -> ?lo:float -> ?hi:float -> unit -> float
(** Estimated fraction of (non-null) rows whose value lies in
    [(lo, hi]]; unbounded sides default to the histogram ends.
    Interpolates linearly within buckets. *)

val selectivity : t option -> Sql.Ast.expr -> float
(** Heuristic selectivity in [0,1] of a single-table predicate:
    equality on a column with known statistics uses [1/distinct];
    ranges, LIKE and IN fall back to textbook constants; conjunctions
    multiply, disjunctions add (clamped). [None] statistics fall back
    to the constants alone. *)
