open Dirty

exception Too_many_candidates of { count : float; limit : int }

let default_max_candidates = 1_000_000

let m_evaluations =
  Telemetry.Metrics.counter "conquer.oracle.evaluations"
    ~help:"queries evaluated by the candidate-semantics oracle"

let m_candidates =
  Telemetry.Metrics.counter "conquer.oracle.candidates"
    ~help:"candidate databases materialized by the oracle"

let candidate_count = Candidates.count

let within_budget ?(max_candidates = default_max_candidates) db =
  candidate_count db <= float_of_int max_candidates

let guard max_candidates db =
  let count = candidate_count db in
  if count > float_of_int max_candidates then
    raise (Too_many_candidates { count; limit = max_candidates })

let answers ?(max_candidates = default_max_candidates) db query =
  guard max_candidates db;
  Telemetry.Span.with_ ~name:"conquer.oracle" @@ fun () ->
  Telemetry.Metrics.inc m_evaluations;
  Telemetry.Metrics.inc
    ~n:(int_of_float (candidate_count db))
    m_candidates;
  Candidates.clean_answers ~max_candidates db query

let answer_probabilities ?max_candidates db query =
  let rel = answers ?max_candidates db query in
  Relation.fold
    (fun acc row ->
      let n = Array.length row in
      let key = Array.sub row 0 (n - 1) in
      match Value.to_float row.(n - 1) with
      | Some p -> (key, p) :: acc
      | None -> acc)
    [] rel
  |> List.rev

let nonempty_probability ?(max_candidates = default_max_candidates) db query =
  guard max_candidates db;
  Candidates.probability_that_nonempty ~max_candidates db query

(* ---- differential comparison ---- *)

type mismatch = {
  detail : string;
  row : Relation.row option;
  oracle_prob : float option;
  actual_prob : float option;
}

let mismatch_to_string m =
  match m.row with
  | None -> m.detail
  | Some row ->
    let cell v = Value.to_string v in
    let prob = function Some p -> Printf.sprintf "%.9g" p | None -> "absent" in
    Printf.sprintf "%s: row (%s): oracle %s, candidate %s" m.detail
      (String.concat ", " (Array.to_list (Array.map cell row)))
      (prob m.oracle_prob) (prob m.actual_prob)

module Row_key = struct
  type t = Value.t array

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec loop i =
      i >= Array.length a || (Value.equal a.(i) b.(i) && loop (i + 1))
    in
    loop 0

  let hash a = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 a
end

module Rtbl = Hashtbl.Make (Row_key)

let prob_map rel =
  let tbl = Rtbl.create 64 in
  Relation.iter
    (fun row ->
      let n = Array.length row in
      let key = Array.sub row 0 (n - 1) in
      match Value.to_float row.(n - 1) with
      | Some p -> Rtbl.replace tbl key p
      | None -> ())
    rel;
  tbl

let compare_answers ?(eps = 1e-9) ~oracle candidate =
  if
    Relation.cardinality oracle > 0
    && Relation.cardinality candidate > 0
    && Schema.arity (Relation.schema oracle)
       <> Schema.arity (Relation.schema candidate)
  then
    Error
      {
        detail =
          Printf.sprintf "answer arity differs: oracle %d, candidate %d"
            (Schema.arity (Relation.schema oracle))
            (Schema.arity (Relation.schema candidate));
        row = None;
        oracle_prob = None;
        actual_prob = None;
      }
  else begin
    let expected = prob_map oracle in
    let got = prob_map candidate in
    let first_error = ref None in
    let record m = if !first_error = None then first_error := Some m in
    Rtbl.iter
      (fun key p ->
        match Rtbl.find_opt got key with
        | Some q when Float.abs (p -. q) <= eps -> ()
        | Some q ->
          record
            {
              detail = "probability differs";
              row = Some key;
              oracle_prob = Some p;
              actual_prob = Some q;
            }
        | None ->
          record
            {
              detail = "answer missing from candidate";
              row = Some key;
              oracle_prob = Some p;
              actual_prob = None;
            })
      expected;
    Rtbl.iter
      (fun key q ->
        if not (Rtbl.mem expected key) then
          record
            {
              detail = "spurious answer in candidate";
              row = Some key;
              oracle_prob = None;
              actual_prob = Some q;
            })
      got;
    match !first_error with None -> Ok () | Some m -> Error m
  end

let refute ?eps ?max_candidates db query candidate =
  let oracle = answers ?max_candidates db query in
  match compare_answers ?eps ~oracle candidate with
  | Ok () -> None
  | Error m -> Some m
