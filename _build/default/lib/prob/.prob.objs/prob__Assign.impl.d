lib/prob/assign.ml: Array Cluster Dirty Dirty_db Infotheory List Matrix Relation Representative Schema Strdist Value
