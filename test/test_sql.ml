(* Tests for the SQL lexer, parser, and pretty-printer. *)

open Sql

let parse = Parser.parse_query
let parse_e = Parser.parse_expr

(* ---- lexer ---- *)

let tokens s = List.map fst (Lexer.tokenize s)

let test_lexer_basics () =
  Alcotest.(check int) "token count" 5 (List.length (tokens "select * from t"));
  (match tokens "select" with
  | [ Lexer.KEYWORD "SELECT"; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "keyword");
  (match tokens "foo.bar" with
  | [ Lexer.IDENT "foo"; Lexer.DOT; Lexer.IDENT "bar"; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "qualified name")

let test_lexer_numbers () =
  (match tokens "42 4.5 1e3 0.25" with
  | [ Lexer.INT 42; Lexer.FLOAT a; Lexer.FLOAT b; Lexer.FLOAT c; Lexer.EOF ] ->
    Alcotest.(check (float 1e-9)) "4.5" 4.5 a;
    Alcotest.(check (float 1e-9)) "1e3" 1000.0 b;
    Alcotest.(check (float 1e-9)) "0.25" 0.25 c
  | _ -> Alcotest.fail "numbers")

let test_lexer_strings () =
  (match tokens "'hello' 'it''s'" with
  | [ Lexer.STRING "hello"; Lexer.STRING "it's"; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "strings");
  match Lexer.tokenize "'unterminated" with
  | exception Lexer.Error _ -> ()
  | _ -> Alcotest.fail "unterminated string accepted"

let test_lexer_operators () =
  (match tokens "<= >= <> != = < >" with
  | [
   Lexer.OP "<="; Lexer.OP ">="; Lexer.OP "<>"; Lexer.OP "<>"; Lexer.OP "=";
   Lexer.OP "<"; Lexer.OP ">"; Lexer.EOF;
  ] ->
    ()
  | _ -> Alcotest.fail "operators")

let test_lexer_comments () =
  (match tokens "select -- a comment\n 1" with
  | [ Lexer.KEYWORD "SELECT"; Lexer.INT 1; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "comment skipped")

(* ---- parser ---- *)

let test_parse_simple () =
  let q = parse "select a, b from t where a > 5" in
  (match q.select with
  | Items [ { expr = Col { name = "a"; _ }; _ }; { expr = Col { name = "b"; _ }; _ } ]
    ->
    ()
  | _ -> Alcotest.fail "select list");
  Alcotest.(check int) "one table" 1 (List.length q.from);
  Alcotest.(check bool) "where present" true (Option.is_some q.where)

let test_parse_aliases () =
  let q = parse "select c.id as key, o.x y from customer c, orders as o" in
  (match q.select with
  | Items [ { alias = Some "key"; _ }; { alias = Some "y"; _ } ] -> ()
  | _ -> Alcotest.fail "aliases");
  match q.from with
  | [ { table = "customer"; t_alias = Some "c" }; { table = "orders"; t_alias = Some "o" } ]
    ->
    ()
  | _ -> Alcotest.fail "from aliases"

let test_parse_precedence () =
  (* AND binds tighter than OR; comparison tighter than AND *)
  let e = parse_e "a = 1 or b = 2 and c = 3" in
  (match e with
  | Binop (Or, Binop (Eq, _, _), Binop (And, _, _)) -> ()
  | _ -> Alcotest.fail "boolean precedence");
  let e = parse_e "1 + 2 * 3" in
  (match e with
  | Binop (Add, Lit _, Binop (Mul, _, _)) -> ()
  | _ -> Alcotest.fail "arithmetic precedence");
  let e = parse_e "(1 + 2) * 3" in
  match e with
  | Binop (Mul, Binop (Add, _, _), Lit _) -> ()
  | _ -> Alcotest.fail "parentheses"

let test_parse_predicates () =
  (match parse_e "x like 'a%'" with
  | Like (_, "a%") -> ()
  | _ -> Alcotest.fail "like");
  (match parse_e "x not like 'a%'" with
  | Not_like (_, "a%") -> ()
  | _ -> Alcotest.fail "not like");
  (match parse_e "x in (1, 2, 3)" with
  | In_list (_, [ _; _; _ ]) -> ()
  | _ -> Alcotest.fail "in");
  (match parse_e "x between 1 and 10" with
  | Between (_, _, _) -> ()
  | _ -> Alcotest.fail "between");
  (match parse_e "x is null" with
  | Is_null _ -> ()
  | _ -> Alcotest.fail "is null");
  (match parse_e "x is not null" with
  | Is_not_null _ -> ()
  | _ -> Alcotest.fail "is not null");
  match parse_e "not x = 1" with
  | Unop (Not, Binop (Eq, _, _)) -> ()
  | _ -> Alcotest.fail "not"

let test_parse_dates () =
  match parse_e "d < date '1995-03-15'" with
  | Binop (Lt, _, Lit (Dirty.Value.Date _)) -> ()
  | _ -> Alcotest.fail "date literal"

let test_parse_aggregates () =
  let q = parse "select id, count(*), sum(a * b) from t group by id having count(*) > 2" in
  (match q.select with
  | Items [ _; { expr = Agg (Count, None); _ }; { expr = Agg (Sum, Some _); _ } ] -> ()
  | _ -> Alcotest.fail "aggregates");
  Alcotest.(check int) "group by" 1 (List.length q.group_by);
  Alcotest.(check bool) "having" true (Option.is_some q.having)

let test_parse_order_limit_distinct () =
  let q = parse "select distinct a from t order by a desc, b limit 10" in
  Alcotest.(check bool) "distinct" true q.distinct;
  (match q.order_by with
  | [ { desc = true; _ }; { desc = false; _ } ] -> ()
  | _ -> Alcotest.fail "order by");
  Alcotest.(check (option int)) "limit" (Some 10) q.limit

let test_parse_join_on () =
  (* JOIN ... ON desugars into the FROM list plus WHERE conjuncts *)
  let q =
    parse
      "select a.x from t a join u b on a.k = b.k inner join v c on c.j = b.j \
       cross join w where a.x > 1"
  in
  Alcotest.(check int) "four tables" 4 (List.length q.from);
  (match q.where with
  | Some w -> Alcotest.(check int) "three conjuncts" 3 (List.length (Ast.conjuncts w))
  | None -> Alcotest.fail "where missing");
  (* a JOIN without ON is an error *)
  (match parse "select x from t join u" with
  | exception Parser.Error _ -> ()
  | _ -> Alcotest.fail "JOIN without ON accepted");
  (* pure join query, no WHERE *)
  let q2 = parse "select a.x from t a join u b on a.k = b.k" in
  Alcotest.(check bool) "ON becomes WHERE" true (Option.is_some q2.where)

let test_parse_star () =
  let q = parse "select * from t" in
  match q.select with Star -> () | _ -> Alcotest.fail "star"

let test_parse_errors () =
  let bad = [ "select"; "select from t"; "select a from"; "select a t";
              "select a from t where"; "select a from t limit x" ] in
  List.iter
    (fun sql ->
      match parse sql with
      | exception Parser.Error _ -> ()
      | _ -> Alcotest.failf "accepted %S" sql)
    bad

let test_parse_keywords_case_insensitive () =
  let q = parse "SELECT a FROM t WHERE a > 1 ORDER BY a" in
  Alcotest.(check int) "order" 1 (List.length q.order_by)

(* ---- pretty printer round-trips ---- *)

let roundtrip sql =
  let q = parse sql in
  let printed = Pretty.query_to_string q in
  let q' = parse printed in
  let printed' = Pretty.query_to_string q' in
  Alcotest.(check string) ("fixpoint of " ^ sql) printed printed'

let test_roundtrip_queries () =
  List.iter roundtrip
    [
      "select a from t";
      "select distinct a, b as x from t u where a > 1 and b < 2 or c = 3";
      "select a from t where x like 'a%' and y in (1,2) order by a desc limit 3";
      "select id, sum(p * q) from t group by id having sum(p * q) > 0.5";
      "select a from t where d between date '1995-01-01' and date '1995-12-31'";
      "select a from t where not (a = 1 or b = 2)";
      "select a + b * c - d / e from t";
      "select -a from t where -b > 1";
      "select a from t where s = 'it''s'";
    ]

let test_roundtrip_tpch () =
  List.iter (fun (q : Tpch.Queries.query) -> roundtrip q.sql) Tpch.Queries.all

let test_pretty_parenthesization () =
  (* (a or b) and c must keep its parentheses *)
  let e = parse_e "(a = 1 or b = 2) and c = 3" in
  let printed = Pretty.expr_to_string e in
  match parse_e printed with
  | Binop (And, Binop (Or, _, _), _) -> ()
  | _ -> Alcotest.failf "parentheses lost: %s" printed

let test_pretty_left_nested_bool () =
  (* AND/OR parse right-associative, so a left-nested chain must be
     printed with its left child parenthesized to reparse structurally *)
  let a = parse_e "a = 1" and b = parse_e "b = 2" and c = parse_e "c = 3" in
  let check e =
    let printed = Pretty.expr_to_string e in
    let reparsed = parse_e printed in
    if reparsed <> e then
      Alcotest.failf "left-nested chain changed shape: %s" printed
  in
  check (Ast.Binop (Or, Binop (Or, a, b), c));
  check (Ast.Binop (And, Binop (And, a, b), c));
  check (Ast.Binop (Or, Binop (And, Binop (And, a, b), c), b))

let test_conj_helpers () =
  let e = parse_e "a = 1 and b = 2 and c = 3" in
  Alcotest.(check int) "three conjuncts" 3 (List.length (Ast.conjuncts e));
  match Ast.conj (Ast.conjuncts e) with
  | Some e' ->
    Alcotest.(check int) "refold" 3 (List.length (Ast.conjuncts e'))
  | None -> Alcotest.fail "conj"

let () =
  Alcotest.run "sql"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "numbers" `Quick test_lexer_numbers;
          Alcotest.test_case "strings" `Quick test_lexer_strings;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
        ] );
      ( "parser",
        [
          Alcotest.test_case "simple" `Quick test_parse_simple;
          Alcotest.test_case "aliases" `Quick test_parse_aliases;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "predicates" `Quick test_parse_predicates;
          Alcotest.test_case "dates" `Quick test_parse_dates;
          Alcotest.test_case "aggregates" `Quick test_parse_aggregates;
          Alcotest.test_case "order/limit/distinct" `Quick
            test_parse_order_limit_distinct;
          Alcotest.test_case "join-on desugaring" `Quick test_parse_join_on;
          Alcotest.test_case "star" `Quick test_parse_star;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "case-insensitive keywords" `Quick
            test_parse_keywords_case_insensitive;
        ] );
      ( "pretty",
        [
          Alcotest.test_case "round trips" `Quick test_roundtrip_queries;
          Alcotest.test_case "TPC-H queries round trip" `Quick test_roundtrip_tpch;
          Alcotest.test_case "parenthesization" `Quick
            test_pretty_parenthesization;
          Alcotest.test_case "left-nested and/or chains" `Quick
            test_pretty_left_nested_bool;
          Alcotest.test_case "conjunct helpers" `Quick test_conj_helpers;
        ] );
    ]
