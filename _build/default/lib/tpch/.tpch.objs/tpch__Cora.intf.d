lib/tpch/cora.mli: Dirty
