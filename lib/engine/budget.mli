(** Execution budgets: bounds on the work a query may perform.

    A budget caps the total number of rows the plan's operators
    produce (a proxy for work done — intermediate results count, not
    just the final answer) and the elapsed wall-clock time.  The
    executor charges the budget as rows are materialized, including
    {e inside} join and cross-product loops, so a query whose
    intermediate result explodes is stopped mid-operator rather than
    after the damage is done.

    Two modes of exceeding:

    - [Raise] (the default): raise {!Exceeded} with the work done so
      far — the structured failure callers of
      {!Database.query_ast} observe.
    - [Truncate]: stop producing rows but let the plan finish over the
      partial intermediate results, and record that truncation
      happened.  Used by the degrading query entry points
      ([Database.query_ast_within], [Conquer.Clean.top_answers_within])
      to return partial answers with a truncation flag.

    Crossing the {e time} limit — or an external trip of the attached
    {!Cancel.token} — is a {e cancellation}, not a truncation: in
    [Raise] mode it surfaces as {!Cancel.Cancelled}, and in [Truncate]
    mode the partial result is flagged as cancelled
    (consult {!cancelled}).  {!Exceeded} is reserved for the row
    budget.

    A budget is domain-safe: its accounting is mutex-guarded, so
    charges from parallel operator partitions are serialized and the
    admitted total never exceeds the limit.  (The executor additionally
    runs per-row-charged operators serially when a budget is in force,
    keeping [Truncate] prefixes identical to a serial run.) *)

type limits = {
  max_rows : int option;  (** total rows produced across all operators *)
  max_elapsed : float option;  (** wall-clock seconds *)
}

val no_limits : limits

type mode = Raise | Truncate

exception
  Exceeded of {
    produced : int;  (** rows produced when the budget ran out *)
    elapsed : float;  (** seconds since execution started *)
    limits : limits;  (** the limits that were in force *)
  }

val exceeded_message : produced:int -> elapsed:float -> limits -> string
(** Human-readable rendering used by [Printexc] and the CLI. *)

type t

val create : ?mode:mode -> ?cancel:Cancel.token -> limits -> t
(** A fresh budget; the clock starts now.  When [cancel] is given,
    every charge also polls the token, so tripping it (e.g. from the
    {!Cancel.with_deadline} watchdog) stops the execution at the next
    checkpoint. *)

val admit : t -> int -> int
(** [admit t n] charges [n] more rows and returns how many of them the
    budget admits: [n] while within limits; fewer (possibly 0) in
    [Truncate] mode once the budget stops.  The wall clock is
    consulted at most once every few hundred admitted rows, keeping
    the per-row cost negligible; the cancellation token (if any) is
    polled on every charge.
    @raise Exceeded in [Raise] mode when the row limit is crossed.
    @raise Cancel.Cancelled in [Raise] mode on time-limit crossing or
    token trip. *)

val check_time : t -> unit
(** Force a clock and token check (used at operator boundaries, where
    crossing the time limit should surface promptly).
    @raise Cancel.Cancelled in [Raise] mode. *)

val exhausted : t -> bool
(** True once the budget stopped admitting rows ([Truncate] mode),
    whether by truncation or cancellation. *)

val truncated : t -> bool
(** True when the row budget ran out ([Truncate] mode) — the partial
    result is a prefix of the full one. *)

val cancelled : t -> bool
(** True when the execution was cancelled (time limit or token trip);
    in [Truncate] mode the partial rows produced so far were still
    returned. *)

val cancel_token : t -> Cancel.token option
val mode : t -> mode
val limits : t -> limits
val produced : t -> int
val elapsed : t -> float
