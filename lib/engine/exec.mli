(** Plan evaluation.

    Operators are materialized: each node produces a full
    {!Dirty.Relation.t}.  Joins are hash-based; aggregation is
    hash-grouped. *)

type catalog = {
  relation : string -> Dirty.Relation.t;
      (** base table by name. @raise Not_found for unknown tables *)
  index : string -> string -> Index.t option;
      (** [index table attr] is the persistent index, when one
          exists *)
}

exception Exec_error of string

type spill = { spill_rows : int; spill_dir : string }
(** Grace-spill configuration for hash joins: when the build side of a
    join holds at least [spill_rows] rows, both sides are hash-
    partitioned into [.spill-*.tmp] run files under [spill_dir]
    (through {!Fault.Io}, so chaos tests can fail or crash any
    syscall) and joined partition-at-a-time, bounding the in-memory
    hash table.  Spilled join output is partition-major — bag-
    identical to the in-memory join, but row order differs.  A
    crashed spill leaves debris that [Dirty.Store.recover] sweeps. *)

val run :
  ?budget:Budget.t ->
  ?jobs:int ->
  ?chunked:bool ->
  ?spill:spill ->
  catalog ->
  Plan.t ->
  Dirty.Relation.t
(** [jobs] (default [1]) caps the domains used for partition-parallel
    operators (hash join, filter, project, aggregate).  Results are
    bit-identical to a serial run for any [jobs]: chunk outputs are
    concatenated in input order and aggregate groups are merged in
    first-occurrence order.  Per-row budget-charged operators fall
    back to serial whenever [budget] is given, so [Truncate] prefixes
    stay well-defined.

    [chunked] (default [true]) selects the columnar chunk executor for
    Filter/Project/Hash_join/Aggregate: inputs are pivoted into
    {!Chunk.t} batches of [!Chunk.default_rows] rows, operators run
    one morsel (chunk) per scheduling unit, and chunk-friendly
    subtrees fuse column-to-column when no budget is in force, no
    spill is configured, and telemetry is off.  Chunk boundaries are a
    function of the data only, so the jobs=1 ≡ jobs=N guarantee
    carries over.  Results are bit-identical to [chunked:false] (the
    row-at-a-time executor): chunked aggregation partitions groups by
    key hash exactly like the row path, feeding every group in global
    row order — no partial merge, no float reassociation.  The one
    accepted divergence: when several rows would each raise a type
    error, the reported instance may differ (whether an error is
    raised never does).

    [spill] (default off) enables the Grace hash-join spill; joins
    below the threshold are unaffected.
    @raise Exec_error on semantic errors (unknown table, unbound or
    ambiguous column, type errors).
    @raise Budget.Exceeded when a [Raise]-mode budget runs out; with a
    [Truncate]-mode budget the result is the partial output produced
    within the budget (consult {!Budget.truncated}).
    @raise Fault.Io.Io_error when a spill file operation fails (a torn
    spill frame surfaces as a non-transient read error). *)

(** Per-operator execution statistics (EXPLAIN ANALYZE). *)
type profile = {
  operator : string;  (** short operator label, e.g. ["HashJoin"] *)
  out_rows : int;  (** rows the operator produced *)
  elapsed : float;  (** seconds, inclusive of children *)
  children : profile list;
}

val run_profiled :
  ?budget:Budget.t ->
  ?jobs:int ->
  ?chunked:bool ->
  ?spill:spill ->
  catalog ->
  Plan.t ->
  Dirty.Relation.t * profile
(** Like {!run} but also returns the per-node statistics tree.
    Fusion is disabled so every node keeps its own row boundary (and
    an accurate [out_rows]); profiled results are bit-identical to
    {!run}'s. *)

val pp_profile : Format.formatter -> profile -> unit

val infer_schema :
  string list -> Dirty.Relation.row list -> Dirty.Schema.t
(** Output-schema inference for computed columns: each column's type
    is taken from its first non-null value (VARCHAR when none).
    Exposed for tests. *)
