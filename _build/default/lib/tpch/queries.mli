(** The thirteen evaluation queries (Section 5.3).

    They follow TPC-H queries 1, 2, 3, 4, 6, 9, 10, 11, 12, 14, 17,
    18 and 20 with the changes the paper's setup requires:

    - aggregate expressions removed (as in the paper);
    - nested subqueries removed (they contain aggregates);
    - the identifier of the join-graph root added to the SELECT
      clause so the query is in the rewritable class (the paper notes
      including the identifier "is not an onerous restriction");
    - joins written against the propagated identifier columns of the
      dirty schema (composite joins to [partsupp] go through its
      propagated identifier [l_psid = ps_id]).

    Parameters use the TPC-H validation values where applicable; two
    point predicates (Q2's part size, Q17's brand/container) are
    widened to prefix/range form so that result sizes stay meaningful
    at the scaled-down data sizes this reproduction runs on. *)

type query = {
  qid : int;  (** TPC-H query number *)
  sql : string;
  description : string;
}

val all : query list
(** The 13 queries, ascending [qid]. *)

val find : int -> query
(** @raise Not_found *)

val q3_no_order_by : query
(** Query 3 with the ORDER BY clause removed (Figure 9's dashed
    lines). *)

val q18_original_form : query
(** Query 18 in its genuine TPC-H shape, with the IN-subquery over a
    grouped HAVING that the paper removed.  The engine evaluates the
    (uncorrelated) subquery; the query is outside the rewritable class
    — answer it with {!Conquer.Sampler} or the oracle. *)
