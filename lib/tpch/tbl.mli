(** Loader for official TPC-H [dbgen] output ([.tbl] files,
    pipe-separated, no header, trailing separator).

    The files are mapped onto this repository's dirty schema: every
    tuple becomes its own singleton cluster with probability 1 (a
    clean database), row keys coincide with the original primary keys,
    synthetic identifiers are allocated for [partsupp] and [lineitem],
    and [lineitem] rows are linked to their [partsupp] identifier via
    the (partkey, suppkey) pair.  Comment columns that our scaled
    schema does not carry are dropped.

    Use {!Datagen.dirtify} afterwards to inject duplicates into the
    loaded data. *)

exception Parse_error of { path : string; lineno : int; msg : string }
(** A malformed [.tbl] row: wrong field count, a non-numeric key or
    amount, an unparseable date, or a [lineitem] row naming a
    (partkey, suppkey) pair with no [partsupp] row. *)

val parse_line : string -> string list
(** Split one [.tbl] line (handles the trailing ['|']). *)

val load_file : string -> string list list

val load_dir : string -> Dirty.Dirty_db.t
(** Load [region.tbl], [nation.tbl], [supplier.tbl], [part.tbl],
    [partsupp.tbl], [customer.tbl], [orders.tbl] and [lineitem.tbl]
    from the directory.  Missing files raise [Sys_error]; malformed
    rows raise {!Parse_error} with the file and line. *)
