(** Pairwise clustering quality against a ground-truth clustering.

    A predicted clustering is scored by the set of within-cluster row
    pairs it implies: precision is the fraction of predicted pairs
    that are true duplicates, recall the fraction of true duplicate
    pairs predicted. *)

type scores = {
  precision : float;
  recall : float;
  f1 : float;
  predicted_pairs : int;
  true_pairs : int;
  common_pairs : int;
}

val pairwise : truth:Dirty.Cluster.t -> Dirty.Cluster.t -> scores
(** @raise Invalid_argument when the clusterings cover different row
    counts.  Conventions: with zero predicted pairs precision is 1;
    with zero true pairs recall is 1. *)

val pp : Format.formatter -> scores -> unit
