(* Dirty.Delta and Store v3 delta generations: op semantics and
   validation, the CSV record round-trip, chain commit/load/compaction
   mechanics, retention, the per-generation integrity report, and
   recovery of delta debris.  The crash matrix for the write path
   lives in test_chaos.ml; the maintenance differential in
   test_fuzz.ml. *)

open Dirty

let v_s s = Value.String s
let v_i i = Value.Int i
let v_f f = Value.Float f

let table_of_clusters = Fuzz.Dbgen.store_table_of_clusters
let db_of_tables = Fuzz.Dbgen.db_of_tables

(* alpha: a1 = {1@10/16, 2@6/16}, a2 = {3@16/16}; beta: b1 = {7,8} *)
let base () =
  db_of_tables
    [
      table_of_clusters "alpha"
        [ ("a1", [ (1, 10); (2, 6) ]); ("a2", [ (3, 16) ]) ];
      table_of_clusters "beta" [ ("b1", [ (7, 8); (8, 8) ]) ];
    ]

let find db name = Dirty_db.find_table db name

let cluster_probs (t : Dirty_db.table) cid =
  let schema = Relation.schema t.relation in
  let idi = Schema.index_of schema t.id_attr in
  let pi = Schema.index_of schema t.prob_attr in
  Relation.fold
    (fun acc row ->
      if Value.equal row.(idi) (v_s cid) then
        acc @ [ Option.get (Value.to_float row.(pi)) ]
      else acc)
    [] t.relation

let cluster_sum t cid = List.fold_left ( +. ) 0.0 (cluster_probs t cid)

let check_sum name t cid =
  Alcotest.(check (float 0.0)) name 1.0 (cluster_sum t cid)

(* ---- op semantics ---- *)

let test_insert_existing_cluster () =
  let o =
    Delta.apply (base ())
      [ Delta.Insert { table = "alpha"; row = [| v_s "a1"; v_i 9; v_f 0.25 |] } ]
  in
  let t = find o.db "alpha" in
  Alcotest.(check int) "cluster grew" 3 (List.length (cluster_probs t "a1"));
  check_sum "renormalized to 1" t "a1";
  Alcotest.(check (list (pair string string))) "touched"
    [ ("alpha", "a1") ]
    (List.map (fun (tb, c) -> (tb, Value.to_string c)) o.touched)

let test_insert_new_cluster () =
  let o =
    Delta.apply (base ())
      [ Delta.Insert { table = "beta"; row = [| v_s "b9"; v_i 1; v_f 0.5 |] } ]
  in
  let t = find o.db "beta" in
  check_sum "singleton renormalized to 1" t "b9";
  Alcotest.(check (float 0.0)) "existing cluster untouched bit-for-bit" 0.5
    (List.hd (cluster_probs t "b1"))

let test_delete_member () =
  let o =
    Delta.apply (base ())
      [ Delta.Delete { table = "alpha"; cluster = v_s "a1"; member = 1 } ]
  in
  let t = find o.db "alpha" in
  Alcotest.(check (list (float 0.0))) "survivor renormalized" [ 1.0 ]
    (cluster_probs t "a1")

let test_delete_last_tuple_removes_cluster () =
  let o =
    Delta.apply (base ())
      [ Delta.Delete { table = "alpha"; cluster = v_s "a2"; member = 0 } ]
  in
  let t = find o.db "alpha" in
  Alcotest.(check (list (float 0.0))) "cluster gone" [] (cluster_probs t "a2");
  Alcotest.(check int) "other cluster intact" 2
    (List.length (cluster_probs t "a1"))

let test_split () =
  let o =
    Delta.apply (base ())
      [
        Delta.Split
          { table = "alpha"; cluster = v_s "a1"; into = v_s "a9"; members = [ 0 ] };
      ]
  in
  let t = find o.db "alpha" in
  check_sum "source renormalized" t "a1";
  check_sum "target renormalized" t "a9";
  (* both sides touched *)
  Alcotest.(check int) "touched both clusters" 2 (List.length o.touched)

let test_merge () =
  let o =
    Delta.apply (base ()) [ Delta.Merge { table = "alpha"; from_ = v_s "a2"; into = v_s "a1" } ]
  in
  let t = find o.db "alpha" in
  Alcotest.(check (list (float 0.0))) "source gone" [] (cluster_probs t "a2");
  Alcotest.(check int) "merged size" 3 (List.length (cluster_probs t "a1"));
  check_sum "merged cluster renormalized" t "a1"

let test_reassign_exact_bits () =
  let o =
    Delta.apply (base ())
      [
        Delta.Reassign
          { table = "alpha"; cluster = v_s "a1"; weights = [| 0.25; 0.75 |] };
      ]
  in
  let t = find o.db "alpha" in
  (* weights summing to exactly 1 are assigned bit-for-bit *)
  Alcotest.(check (list (float 0.0))) "exact assignment" [ 0.25; 0.75 ]
    (cluster_probs t "a1")

let test_apply_is_functional () =
  let db = base () in
  ignore
    (Delta.apply db
       [ Delta.Delete { table = "alpha"; cluster = v_s "a1"; member = 0 } ]);
  Alcotest.(check int) "input database unchanged" 2
    (List.length (cluster_probs (find db "alpha") "a1"))

let invalid name op =
  Alcotest.test_case name `Quick (fun () ->
      match Delta.apply (base ()) [ op ] with
      | _ -> Alcotest.failf "%s: expected Delta.Invalid" name
      | exception Delta.Invalid _ -> ())

let invalid_cases =
  [
    invalid "unknown table"
      (Delta.Insert { table = "nope"; row = [| v_s "x"; v_i 0; v_f 1.0 |] });
    invalid "unknown cluster"
      (Delta.Delete { table = "alpha"; cluster = v_s "zz"; member = 0 });
    invalid "ordinal out of range"
      (Delta.Delete { table = "alpha"; cluster = v_s "a1"; member = 5 });
    invalid "duplicate split members"
      (Delta.Split
         { table = "alpha"; cluster = v_s "a1"; into = v_s "a9"; members = [ 0; 0 ] });
    invalid "split into itself"
      (Delta.Split
         { table = "alpha"; cluster = v_s "a1"; into = v_s "a1"; members = [ 0 ] });
    invalid "merge into itself"
      (Delta.Merge { table = "alpha"; from_ = v_s "a1"; into = v_s "a1" });
    invalid "weight count mismatch"
      (Delta.Reassign { table = "alpha"; cluster = v_s "a1"; weights = [| 1.0 |] });
    invalid "negative weight"
      (Delta.Reassign
         { table = "alpha"; cluster = v_s "a1"; weights = [| -1.0; 2.0 |] });
    invalid "zero weight sum"
      (Delta.Reassign
         { table = "alpha"; cluster = v_s "a1"; weights = [| 0.0; 0.0 |] });
    invalid "insert arity mismatch"
      (Delta.Insert { table = "alpha"; row = [| v_s "a1"; v_i 0 |] });
    invalid "insert null identifier"
      (Delta.Insert { table = "alpha"; row = [| Value.Null; v_i 0; v_f 1.0 |] });
    invalid "insert probability out of range"
      (Delta.Insert { table = "alpha"; row = [| v_s "a1"; v_i 0; v_f 1.5 |] });
  ]

(* ---- record round-trip ---- *)

let test_roundtrip () =
  let batch =
    [
      Delta.Insert { table = "alpha"; row = [| v_s "a,1"; v_i 7; v_f 0.125 |] };
      Delta.Delete { table = "alpha"; cluster = v_s "a1"; member = 1 };
      Delta.Split
        { table = "beta"; cluster = v_s "b1"; into = v_s "b2"; members = [ 0; 2 ] };
      Delta.Merge { table = "beta"; from_ = v_s "b1"; into = v_s "b2" };
      Delta.Reassign
        { table = "alpha"; cluster = v_s "a1"; weights = [| 0.1; 0.9 |] };
      Delta.Reassign
        { table = "alpha"; cluster = v_s "a1"; weights = [| 2.0; 14.0 |] };
    ]
  in
  let back = Delta.of_rows (Delta.to_rows batch) in
  Alcotest.(check int) "length preserved" (List.length batch) (List.length back);
  List.iter2
    (fun a b ->
      if a <> b then
        Alcotest.failf "record did not round-trip: %s became %s"
          (Delta.op_to_string a) (Delta.op_to_string b))
    batch back

(* off-grid floats must replay to the same bits: %.17g is lossless *)
let test_roundtrip_float_bits () =
  let w = 1.0 /. 3.0 in
  let batch =
    [ Delta.Reassign { table = "t"; cluster = v_s "c"; weights = [| w; 1.0 -. w |] } ]
  in
  match Delta.of_rows (Delta.to_rows batch) with
  | [ Delta.Reassign { weights; _ } ] ->
    Alcotest.(check bool) "weight bits identical" true
      (Int64.equal (Int64.bits_of_float weights.(0)) (Int64.bits_of_float w))
  | _ -> Alcotest.fail "shape changed in round-trip"

let test_of_rows_rejects_garbage () =
  List.iter
    (fun rows ->
      match Delta.of_rows rows with
      | _ -> Alcotest.failf "expected Delta.Invalid"
      | exception Delta.Invalid _ -> ())
    [
      [ [ "bogus"; "t" ] ];
      [ [ "delete"; "t"; "c" ] ];
      [ [ "delete"; "t"; "c"; "notanint" ] ];
      [ [ "reassign"; "t"; "c"; "0.5"; "x" ] ];
      [ [] ];
    ]

(* ---- store v3: chains, compaction, retention ---- *)

let batch1 =
  [
    Delta.Reassign { table = "alpha"; cluster = v_s "a1"; weights = [| 0.25; 0.75 |] };
  ]

let batch2 =
  [
    Delta.Insert { table = "beta"; row = [| v_s "b2"; v_i 5; v_f 1.0 |] };
    Delta.Delete { table = "alpha"; cluster = v_s "a2"; member = 0 };
  ]

let test_commit_load_chain () =
  Testutil.with_temp_dir (fun dir ->
      let db0 = base () in
      Store.save dir db0;
      let g1 = Store.commit_delta dir batch1 in
      Alcotest.(check int) "first delta generation" 2 g1;
      Alcotest.(check int) "chain length 1" 1 (Store.delta_chain_length dir);
      let g2 = Store.commit_delta dir batch2 in
      Alcotest.(check int) "second delta generation" 3 g2;
      Alcotest.(check int) "chain length 2" 2 (Store.delta_chain_length dir);
      Alcotest.(check bool) "journal bytes accounted" true
        (Store.journal_bytes dir > 0);
      let expected =
        (Delta.apply (Delta.apply db0 batch1).Delta.db batch2).Delta.db
      in
      let loaded = Store.load dir in
      Alcotest.(check bool) "load replays the chain" true
        (Testutil.db_fingerprint loaded = Testutil.db_fingerprint expected))

let test_save_compacts_chain () =
  Testutil.with_temp_dir (fun dir ->
      let db0 = base () in
      Store.save dir db0;
      ignore (Store.commit_delta dir batch1);
      ignore (Store.commit_delta dir batch2);
      let current = Store.load dir in
      Store.save dir current;
      Alcotest.(check int) "chain collapsed" 0 (Store.delta_chain_length dir);
      Alcotest.(check int) "journal bytes zero for snapshot chain" 0
        (Store.journal_bytes dir);
      let loaded = Store.load dir in
      Alcotest.(check bool) "snapshot equals the replayed chain" true
        (Testutil.db_fingerprint loaded = Testutil.db_fingerprint current))

let test_commit_delta_requires_snapshot () =
  Testutil.with_temp_dir (fun dir ->
      match Store.commit_delta dir batch1 with
      | _ -> Alcotest.fail "commit_delta without a snapshot must fail"
      | exception Sys_error _ -> ())

let test_commit_delta_rejects_empty () =
  Testutil.with_temp_dir (fun dir ->
      Store.save dir (base ());
      match Store.commit_delta dir [] with
      | _ -> Alcotest.fail "empty batch must be rejected"
      | exception Invalid_argument _ -> ())

let test_corrupt_delta_falls_back () =
  Testutil.with_temp_dir (fun dir ->
      let db0 = base () in
      Store.save dir db0;
      ignore (Store.commit_delta dir batch1);
      (* flip a byte in the delta record: load must fall back to the
         base snapshot, not replay garbage *)
      let path = Filename.concat dir "delta.g2.csv" in
      let contents = In_channel.with_open_bin path In_channel.input_all in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc contents;
          Out_channel.output_string oc "tampered\n");
      let db, warnings = Store.load_verbose dir in
      Alcotest.(check bool) "fell back to the base snapshot" true
        (Testutil.db_fingerprint db = Testutil.db_fingerprint db0);
      Alcotest.(check bool) "fallback reported" true (warnings <> []);
      (* the integrity report names the corrupt generation *)
      let checks = Store.check_generations dir in
      let bad =
        List.filter
          (fun (c : Store.check) -> Result.is_error c.check_result)
          checks
      in
      Alcotest.(check int) "one corrupt generation" 1 (List.length bad);
      Alcotest.(check int) "it is the delta" 2
        (List.hd bad).Store.check_generation)

let test_check_generations_report () =
  Testutil.with_temp_dir (fun dir ->
      Store.save dir (base ());
      ignore (Store.commit_delta dir batch1);
      let checks = Store.check_generations dir in
      Alcotest.(check int) "two generations" 2 (List.length checks);
      (match checks with
      | [ d; s ] ->
        Alcotest.(check int) "newest first" 2 d.Store.check_generation;
        Alcotest.(check bool) "delta kind" true (d.Store.check_kind = `Delta);
        Alcotest.(check bool) "snapshot kind" true
          (s.Store.check_kind = `Snapshot);
        Alcotest.(check bool) "both in chain" true
          (d.Store.check_in_chain && s.Store.check_in_chain);
        List.iter
          (fun (c : Store.check) ->
            Alcotest.(check bool) "intact" true (Result.is_ok c.check_result))
          checks
      | _ -> Alcotest.fail "unexpected report shape"))

let test_recover_sweeps_uncommitted_delta () =
  Testutil.with_temp_dir (fun dir ->
      Store.save dir (base ());
      ignore (Store.commit_delta dir batch1);
      (* fabricate an in-flight generation-3 delta that never flipped
         CURRENT: recover must sweep it and leave the chain loadable *)
      Out_channel.with_open_bin (Filename.concat dir "delta.g3.csv")
        (fun oc -> Out_channel.output_string oc "delta,parent,2\n");
      Out_channel.with_open_bin (Filename.concat dir "journal.g3.csv")
        (fun oc -> Out_channel.output_string oc "file,bytes,crc32\n");
      let actions = Store.recover dir in
      Alcotest.(check bool) "something swept" true (actions <> []);
      Alcotest.(check bool) "debris gone" false
        (Sys.file_exists (Filename.concat dir "delta.g3.csv"));
      Alcotest.(check int) "still at generation 2" 2 (Store.generation dir);
      ignore (Store.load dir);
      Alcotest.(check (list string)) "recover is idempotent" []
        (Store.recover dir))

let test_retention_keeps_fallback_chain () =
  Testutil.with_temp_dir (fun dir ->
      let db0 = base () in
      Store.save dir db0;
      ignore (Store.commit_delta dir batch1);
      ignore (Store.commit_delta dir batch2);
      let current = Store.load dir in
      (* compacting save: generation 4; the fallback chain is 1..3 and
         must all be retained, nothing swept *)
      Store.save dir current;
      Alcotest.(check int) "compacted generation" 4 (Store.generation dir);
      List.iter
        (fun f ->
          Alcotest.(check bool) (f ^ " retained") true
            (Sys.file_exists (Filename.concat dir f)))
        [ "journal.g1.csv"; "delta.g2.csv"; "delta.g3.csv"; "journal.g4.csv" ];
      Alcotest.(check (list string)) "nothing to recover" []
        (Store.recover dir);
      (* one more snapshot: generation 5's fallback is generation 4, a
         snapshot, so the whole old chain is now sweepable *)
      Store.save dir (Store.load dir);
      List.iter
        (fun f ->
          Alcotest.(check bool) (f ^ " swept") false
            (Sys.file_exists (Filename.concat dir f)))
        [ "journal.g1.csv"; "delta.g2.csv"; "delta.g3.csv" ])

let () =
  Alcotest.run "delta"
    [
      ( "apply",
        [
          Alcotest.test_case "insert into an existing cluster" `Quick
            test_insert_existing_cluster;
          Alcotest.test_case "insert starting a new cluster" `Quick
            test_insert_new_cluster;
          Alcotest.test_case "delete renormalizes survivors" `Quick
            test_delete_member;
          Alcotest.test_case "deleting the last tuple removes the cluster"
            `Quick test_delete_last_tuple_removes_cluster;
          Alcotest.test_case "split renormalizes both sides" `Quick test_split;
          Alcotest.test_case "merge relabels and renormalizes" `Quick
            test_merge;
          Alcotest.test_case "reassign with sum-1 weights is bit-exact" `Quick
            test_reassign_exact_bits;
          Alcotest.test_case "apply never mutates its input" `Quick
            test_apply_is_functional;
        ] );
      ("validation", invalid_cases);
      ( "records",
        [
          Alcotest.test_case "batch round-trips through CSV rows" `Quick
            test_roundtrip;
          Alcotest.test_case "off-grid floats keep their bits" `Quick
            test_roundtrip_float_bits;
          Alcotest.test_case "garbage rows are rejected" `Quick
            test_of_rows_rejects_garbage;
        ] );
      ( "store",
        [
          Alcotest.test_case "commit and replay a delta chain" `Quick
            test_commit_load_chain;
          Alcotest.test_case "save compacts the chain" `Quick
            test_save_compacts_chain;
          Alcotest.test_case "commit_delta needs a committed snapshot" `Quick
            test_commit_delta_requires_snapshot;
          Alcotest.test_case "empty batches are rejected" `Quick
            test_commit_delta_rejects_empty;
          Alcotest.test_case "corrupt delta falls back to its base" `Quick
            test_corrupt_delta_falls_back;
          Alcotest.test_case "check_generations reports every generation"
            `Quick test_check_generations_report;
          Alcotest.test_case "recover sweeps an uncommitted delta" `Quick
            test_recover_sweeps_uncommitted_delta;
          Alcotest.test_case "retention keeps the fallback chain" `Quick
            test_retention_keeps_fallback_chain;
        ] );
    ]
