(* A lazily-created, fixed-size pool of worker domains.

   Design notes:

   - Work distribution is chunk stealing over a shared atomic index:
     a parallel region with [n] tasks publishes one closure that loops
     [i = Atomic.fetch_and_add next 1; if i < n then run task i].
     Workers and the {e caller} all run that same closure, so the
     region completes even if every pool worker is busy with someone
     else's region — which is what makes nested regions deadlock-free.

   - Completion is a mutex/condition pair around a remaining-task
     count.  Taking the mutex on the last decrement also gives the
     caller the happens-before edge it needs to read task results
     written by other domains.

   - Exceptions are captured per task and the lowest task index is
     re-raised in the caller once the region drains, so failures are
     deterministic regardless of scheduling.

   - Telemetry: each task runs under [Telemetry.Span.detached], and the
     captured per-task span trees are re-attached to the caller's
     current span in task-index order — a parallel trace is shaped the
     same from run to run. *)

let max_jobs = max 1 (Domain.recommended_domain_count ())

(* process-wide default used when Planner.config doesn't pin jobs:
   CLI --jobs override beats the CONQUER_JOBS environment variable
   beats serial *)
let default_override = Atomic.make 0 (* 0 = unset *)

let set_default_jobs n = Atomic.set default_override (max 1 (min max_jobs n))

let env_jobs =
  lazy
    (match Sys.getenv_opt "CONQUER_JOBS" with
    | None -> 1
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> min n max_jobs
      | _ -> 1))

let default_jobs () =
  let o = Atomic.get default_override in
  if o > 0 then o else Lazy.force env_jobs

let min_rows_per_chunk = ref 512

(* ---- the pool ---- *)

type pool = {
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable domains : unit Domain.t list;
  mutable size : int;
  mutable shutdown : bool;
}

let pool =
  {
    lock = Mutex.create ();
    nonempty = Condition.create ();
    queue = Queue.create ();
    domains = [];
    size = 0;
    shutdown = false;
  }

let rec worker_loop () =
  Mutex.lock pool.lock;
  let rec next_job () =
    if pool.shutdown then None
    else
      match Queue.take_opt pool.queue with
      | Some _ as job -> job
      | None ->
        Condition.wait pool.nonempty pool.lock;
        next_job ()
  in
  let job = next_job () in
  Mutex.unlock pool.lock;
  match job with
  | None -> ()
  | Some job ->
    (* regions capture their own exceptions; a stale region closure
       can only raise through a bug, and must not kill the worker *)
    (try job () with _ -> ());
    worker_loop ()

let () =
  at_exit (fun () ->
      Mutex.lock pool.lock;
      pool.shutdown <- true;
      Condition.broadcast pool.nonempty;
      let domains = pool.domains in
      pool.domains <- [];
      Mutex.unlock pool.lock;
      List.iter Domain.join domains)

(* make sure [want] workers exist (callers also work, so a region
   asking for [jobs] needs [jobs - 1]); the pool only ever grows *)
let ensure_workers want =
  if pool.size < want then begin
    Mutex.lock pool.lock;
    while pool.size < want && not pool.shutdown do
      pool.domains <- Domain.spawn worker_loop :: pool.domains;
      pool.size <- pool.size + 1
    done;
    Mutex.unlock pool.lock
  end

(* pre-spawn the workers a [jobs]-wide region will use, so the first
   timed run doesn't pay domain-creation cost (benchmarks warm the
   pool before sampling) *)
let warm jobs = ensure_workers (max 0 (min jobs max_jobs - 1))

let enqueue_copies k job =
  Mutex.lock pool.lock;
  for _ = 1 to k do
    Queue.add job pool.queue
  done;
  if k = 1 then Condition.signal pool.nonempty else Condition.broadcast pool.nonempty;
  Mutex.unlock pool.lock

(* ---- parallel regions ---- *)

let run ?cancel ~jobs n task =
  if n <= 0 then ()
  else if jobs <= 1 || n = 1 then
    for i = 0 to n - 1 do
      (match cancel with Some tok -> Cancel.check tok | None -> ());
      task i
    done
  else begin
    let jobs = min (min jobs max_jobs) n in
    let errors : exn option array = Array.make n None in
    let spans : Telemetry.Span.t option array = Array.make n None in
    let next = Atomic.make 0 in
    let done_lock = Mutex.create () in
    let done_cond = Condition.create () in
    let remaining = ref n in
    let run_one i =
      (match
         (* cancellation checkpoint: once the token trips, remaining
            chunks are claimed and marked cancelled without running, so
            the region drains promptly and the caller sees [Cancelled]
            (lowest-index error wins as usual) *)
         match cancel with
         | Some tok when Cancel.cancelled tok -> Cancel.check tok
         | _ ->
           if Telemetry.Control.enabled () then begin
             let (), span =
               Telemetry.Span.detached
                 ~attrs:[ ("task", string_of_int i) ]
                 ~name:"parallel.task"
                 (fun () -> task i)
             in
             spans.(i) <- span
           end
           else task i
       with
      | () -> ()
      | exception e -> errors.(i) <- Some e);
      Mutex.lock done_lock;
      decr remaining;
      if !remaining = 0 then Condition.signal done_cond;
      Mutex.unlock done_lock
    in
    let region () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          run_one i;
          loop ()
        end
      in
      loop ()
    in
    let helpers = jobs - 1 in
    ensure_workers helpers;
    enqueue_copies helpers region;
    region ();
    Mutex.lock done_lock;
    while !remaining > 0 do
      Condition.wait done_cond done_lock
    done;
    Mutex.unlock done_lock;
    Array.iter (function Some sp -> Telemetry.Span.attach sp | None -> ()) spans;
    Array.iter (function Some e -> raise e | None -> ()) errors
  end

let init ?cancel ~jobs n f =
  if n <= 0 then [||]
  else begin
    let results = Array.make n None in
    run ?cancel ~jobs n (fun i -> results.(i) <- Some (f i));
    Array.map (function Some v -> v | None -> assert false) results
  end
