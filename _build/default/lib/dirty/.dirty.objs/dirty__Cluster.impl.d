lib/dirty/cluster.ml: Array Hashtbl List Option Relation Schema Value
