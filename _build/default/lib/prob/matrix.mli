(** The normalized tuple/value matrix M of Section 4.1.1 (Table 1).

    Row [t] of the matrix holds the conditional distribution
    [p(v | t)]: probability [1/m] on each of the [m] attribute values
    appearing in tuple [t], zero elsewhere.  The matrix is stored
    sparsely as interned symbols per row. *)

type t

val of_relation : ?attrs:string list -> Dirty.Relation.t -> t
(** Build the matrix over the given attributes (default: all
    attributes of the relation).  Values are interned per attribute
    position. @raise Not_found if an attribute is missing. *)

val num_rows : t -> int
val attrs : t -> string list
val interning : t -> Interning.t

val symbols_of_row : t -> int -> int list
(** The m interned symbols of the row, attribute order. *)

val row_dist : t -> int -> Infotheory.Dist.t
(** [p(v | t)]: uniform over the row's symbols. *)

val row_dcf : t -> int -> Infotheory.Dcf.t
(** Singleton-cluster DCF of the row (weight 1). *)

val entry : t -> int -> attr:int -> value:Dirty.Value.t -> float
(** The matrix entry M[t, (attr, value)] after normalization: [1/m]
    when the tuple's [attr] equals [value], else 0. *)
