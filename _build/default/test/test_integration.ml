(* Golden integration tests: a battery of SQL queries over a fixed
   database, each with its expected result spelled out.  These pin the
   end-to-end behaviour of the lexer, parser, planner and executor
   together. *)

open Dirty

let v_s s = Value.String s
let v_i i = Value.Int i
let v_f f = Value.Float f
let v_d s = Value.date_of_string s

let engine () =
  let e = Engine.Database.create () in
  let products =
    Relation.create
      (Schema.make
         [
           ("pid", Value.TInt);
           ("pname", Value.TString);
           ("category", Value.TString);
           ("price", Value.TFloat);
           ("stock", Value.TInt);
         ])
      [
        [| v_i 1; v_s "apple"; v_s "fruit"; v_f 0.5; v_i 100 |];
        [| v_i 2; v_s "banana"; v_s "fruit"; v_f 0.25; v_i 150 |];
        [| v_i 3; v_s "carrot"; v_s "vegetable"; v_f 0.3; v_i 80 |];
        [| v_i 4; v_s "daikon"; v_s "vegetable"; v_f 1.2; v_i 0 |];
        [| v_i 5; v_s "endive"; v_s "vegetable"; v_f 2.1; Value.Null |];
        [| v_i 6; v_s "fig"; v_s "fruit"; v_f 3.0; v_i 20 |];
      ]
  in
  let sales =
    Relation.create
      (Schema.make
         [
           ("sid", Value.TInt);
           ("product", Value.TInt);
           ("qty", Value.TInt);
           ("day", Value.TDate);
         ])
      [
        [| v_i 1; v_i 1; v_i 10; v_d "2024-01-05" |];
        [| v_i 2; v_i 1; v_i 5; v_d "2024-01-06" |];
        [| v_i 3; v_i 2; v_i 7; v_d "2024-01-06" |];
        [| v_i 4; v_i 3; v_i 2; v_d "2024-02-01" |];
        [| v_i 5; v_i 6; v_i 1; v_d "2024-02-02" |];
        [| v_i 6; v_i 99; v_i 4; v_d "2024-02-03" |];  (* dangling product *)
      ]
  in
  Engine.Database.add_relation e ~name:"products" products;
  Engine.Database.add_relation e ~name:"sales" sales;
  Engine.Database.analyze_all e;
  e

let run sql = Engine.Database.query (engine ()) sql

(* compare the result against expected rows (order-sensitive) *)
let expect_rows sql expected =
  let result = run sql in
  let actual = Relation.row_list result in
  if List.length actual <> List.length expected then
    Alcotest.failf "%s\nexpected %d rows, got %d:\n%s" sql
      (List.length expected) (List.length actual)
      (Relation.to_string result);
  List.iteri
    (fun i (exp_row : Value.t list) ->
      let act = List.nth actual i in
      List.iteri
        (fun j v ->
          if not (Value.equal v act.(j)) then
            Alcotest.failf "%s\nrow %d col %d: expected %s, got %s\n%s" sql i j
              (Value.to_string v) (Value.to_string act.(j))
              (Relation.to_string result))
        exp_row)
    expected

(* order-insensitive variant *)
let expect_bag sql expected =
  let result = run sql in
  let schema = Relation.schema result in
  let expected_rel = Relation.create schema (List.map Array.of_list expected) in
  if not (Relation.equal_as_bags result expected_rel) then
    Alcotest.failf "%s\nexpected (any order):\n%s\ngot:\n%s" sql
      (Relation.to_string expected_rel)
      (Relation.to_string result)

let case name f = Alcotest.test_case name `Quick f

let selection_tests =
  [
    case "equality" (fun () ->
        expect_bag "select pname from products where category = 'fruit'"
          [ [ v_s "apple" ]; [ v_s "banana" ]; [ v_s "fig" ] ]);
    case "range and arithmetic" (fun () ->
        expect_bag "select pname from products where price * 2 > 2.0"
          [ [ v_s "daikon" ]; [ v_s "endive" ]; [ v_s "fig" ] ]);
    case "between" (fun () ->
        expect_bag "select pid from products where price between 0.3 and 1.2"
          [ [ v_i 1 ]; [ v_i 3 ]; [ v_i 4 ] ]);
    case "in list" (fun () ->
        expect_bag "select pname from products where pid in (2, 4, 17)"
          [ [ v_s "banana" ]; [ v_s "daikon" ] ]);
    case "like prefix" (fun () ->
        expect_bag "select pname from products where pname like '_a%'"
          [ [ v_s "banana" ]; [ v_s "carrot" ]; [ v_s "daikon" ] ]);
    case "not like" (fun () ->
        expect_bag
          "select pname from products where pname not like '%a%' and category = 'fruit'"
          [ [ v_s "fig" ] ]);
    case "is null" (fun () ->
        expect_bag "select pname from products where stock is null"
          [ [ v_s "endive" ] ]);
    case "is not null and comparison" (fun () ->
        expect_bag
          "select pname from products where stock is not null and stock < 50"
          [ [ v_s "daikon" ]; [ v_s "fig" ] ]);
    case "boolean precedence" (fun () ->
        (* OR binds looser than AND *)
        expect_bag
          "select pid from products where category = 'fruit' and price > 1.0 \
           or pid = 3"
          [ [ v_i 3 ]; [ v_i 6 ] ]);
    case "not with parens" (fun () ->
        expect_bag
          "select pid from products where not (category = 'fruit' or price > 1.0)"
          [ [ v_i 3 ] ]);
    case "date comparison" (fun () ->
        expect_bag "select sid from sales where day < date '2024-02-01'"
          [ [ v_i 1 ]; [ v_i 2 ]; [ v_i 3 ] ]);
    case "date arithmetic" (fun () ->
        (* day + 3 pushes the Jan 6 sales past Jan 8 *)
        expect_bag
          "select sid from sales where day + 3 > date '2024-01-08' \
           and day < date '2024-01-31'"
          [ [ v_i 2 ]; [ v_i 3 ] ]);
  ]

let projection_tests =
  [
    case "computed columns" (fun () ->
        expect_rows
          "select pname, price * stock as value from products where pid = 1"
          [ [ v_s "apple"; v_f 50.0 ] ]);
    case "null propagation in projection" (fun () ->
        expect_rows "select price * stock from products where pid = 5"
          [ [ Value.Null ] ]);
    case "negation" (fun () ->
        expect_rows "select -stock from products where pid = 4" [ [ v_i 0 ] ]);
    case "integer vs float division" (fun () ->
        expect_rows "select stock / 3, price / 2 from products where pid = 1"
          [ [ v_i 33; v_f 0.25 ] ]);
    case "string literal column" (fun () ->
        expect_rows "select 'x', pid from products where pid = 1"
          [ [ v_s "x"; v_i 1 ] ]);
  ]

let join_tests =
  [
    case "two-way join with predicate" (fun () ->
        expect_bag
          "select p.pname, s.qty from products p, sales s \
           where s.product = p.pid and s.qty >= 5"
          [
            [ v_s "apple"; v_i 10 ]; [ v_s "apple"; v_i 5 ];
            [ v_s "banana"; v_i 7 ];
          ]);
    case "join-on syntax" (fun () ->
        expect_bag
          "select p.pname from products p join sales s on s.product = p.pid \
           where s.day >= date '2024-02-01'"
          [ [ v_s "carrot" ]; [ v_s "fig" ] ]);
    case "dangling sale dropped by inner join" (fun () ->
        expect_bag
          "select s.sid from sales s, products p where s.product = p.pid \
           and s.sid = 6"
          []);
    case "left join keeps dangling sale" (fun () ->
        expect_rows
          "select s.sid, p.pname from sales s left join products p \
           on s.product = p.pid where s.sid = 6"
          [ [ v_i 6; Value.Null ] ]);
    case "cross join count" (fun () ->
        expect_rows "select count(*) from products, sales" [ [ v_i 36 ] ]);
    case "join with expression keys" (fun () ->
        (* join on pid = product - 0 exercises expression join keys *)
        expect_bag
          "select p.pid from products p, sales s where p.pid + 0 = s.product \
           and s.qty = 7"
          [ [ v_i 2 ] ]);
  ]

let aggregate_tests =
  [
    case "global aggregates" (fun () ->
        expect_rows
          "select count(*), count(stock), min(price), max(price) from products"
          [ [ v_i 6; v_i 5; v_f 0.25; v_f 3.0 ] ]);
    case "sum and avg skip nulls" (fun () ->
        expect_rows "select sum(stock), avg(stock) from products"
          [ [ v_i 350; v_f 70.0 ] ]);
    case "group by with order" (fun () ->
        expect_rows
          "select category, count(*), sum(stock) from products \
           group by category order by category"
          [
            [ v_s "fruit"; v_i 3; v_i 270 ];
            [ v_s "vegetable"; v_i 3; v_i 80 ];
          ]);
    case "group by with having" (fun () ->
        expect_rows
          "select category from products group by category \
           having min(price) < 0.3 order by category"
          [ [ v_s "fruit" ] ]);
    case "aggregate of expression" (fun () ->
        expect_rows
          "select sum(qty * 2) from sales where product = 1"
          [ [ v_i 30 ] ]);
    case "expression over aggregates" (fun () ->
        expect_rows
          "select max(price) - min(price) from products where category = 'fruit'"
          [ [ v_f 2.75 ] ]);
    case "group on expression" (fun () ->
        expect_rows
          "select qty / 5, count(*) from sales group by qty / 5 order by qty / 5"
          [ [ v_i 0; v_i 3 ]; [ v_i 1; v_i 2 ]; [ v_i 2; v_i 1 ] ]);
    case "empty group input" (fun () ->
        expect_rows
          "select category, count(*) from products where pid > 100 group by category"
          []);
    case "ungrouped aggregate over empty input" (fun () ->
        expect_rows "select count(*), sum(price) from products where pid > 100"
          [ [ v_i 0; Value.Null ] ]);
    case "join then aggregate" (fun () ->
        expect_rows
          "select p.category, sum(s.qty) from products p, sales s \
           where s.product = p.pid group by p.category order by p.category"
          [ [ v_s "fruit"; v_i 23 ]; [ v_s "vegetable"; v_i 2 ] ]);
  ]

let ordering_tests =
  [
    case "order by desc with limit" (fun () ->
        expect_rows "select pname from products order by price desc limit 2"
          [ [ v_s "fig" ]; [ v_s "endive" ] ]);
    case "order by two keys" (fun () ->
        expect_rows
          "select category, pname from products order by category desc, pname"
          [
            [ v_s "vegetable"; v_s "carrot" ];
            [ v_s "vegetable"; v_s "daikon" ];
            [ v_s "vegetable"; v_s "endive" ];
            [ v_s "fruit"; v_s "apple" ];
            [ v_s "fruit"; v_s "banana" ];
            [ v_s "fruit"; v_s "fig" ];
          ]);
    case "order by alias" (fun () ->
        expect_rows
          "select pname, price * 10 as deci from products \
           where category = 'fruit' order by deci"
          [
            [ v_s "banana"; v_f 2.5 ];
            [ v_s "apple"; v_f 5.0 ];
            [ v_s "fig"; v_f 30.0 ];
          ]);
    case "order by unselected column" (fun () ->
        expect_rows
          "select pname from products where category = 'vegetable' order by price"
          [ [ v_s "carrot" ]; [ v_s "daikon" ]; [ v_s "endive" ] ]);
    case "nulls sort first" (fun () ->
        expect_rows "select pid from products order by stock limit 2"
          [ [ v_i 5 ]; [ v_i 4 ] ]);
    case "distinct" (fun () ->
        expect_rows "select distinct category from products order by category"
          [ [ v_s "fruit" ]; [ v_s "vegetable" ] ]);
    case "distinct with limit" (fun () ->
        expect_rows "select distinct product from sales order by product limit 3"
          [ [ v_i 1 ]; [ v_i 2 ]; [ v_i 3 ] ]);
    case "limit larger than result" (fun () ->
        expect_rows "select pid from products where pid = 1 limit 10"
          [ [ v_i 1 ] ]);
  ]

let star_tests =
  [
    case "select star arity" (fun () ->
        let r = run "select * from sales where sid = 1" in
        Alcotest.(check int) "four columns" 4 (Schema.arity (Relation.schema r)));
    case "select star join arity" (fun () ->
        let r =
          run "select * from products p, sales s where s.product = p.pid limit 1"
        in
        Alcotest.(check int) "nine columns" 9 (Schema.arity (Relation.schema r)));
    case "count star on empty table join" (fun () ->
        expect_rows
          "select count(*) from sales where day > date '2030-01-01'"
          [ [ v_i 0 ] ]);
  ]

let subquery_tests =
  [
    case "in subquery" (fun () ->
        expect_bag
          "select pname from products where pid in \
           (select product from sales where qty > 5)"
          [ [ v_s "apple" ]; [ v_s "banana" ] ]);
    case "not in subquery" (fun () ->
        expect_bag
          "select pid from products where pid not in (select product from sales)"
          [ [ v_i 4 ]; [ v_i 5 ] ]);
    case "scalar subquery comparison" (fun () ->
        expect_bag
          "select pname from products where price > \
           (select avg(price) from products)"
          [ [ v_s "endive" ]; [ v_s "fig" ] ]);
    case "scalar subquery as projection" (fun () ->
        expect_rows
          "select pid, (select max(qty) from sales) from products where pid = 1"
          [ [ v_i 1; v_i 10 ] ]);
    case "exists true" (fun () ->
        expect_rows
          "select count(*) from products where exists \
           (select sid from sales where qty > 5)"
          [ [ v_i 6 ] ]);
    case "exists false" (fun () ->
        expect_rows
          "select count(*) from products where exists \
           (select sid from sales where qty > 100)"
          [ [ v_i 0 ] ]);
    case "not exists" (fun () ->
        expect_rows
          "select count(*) from products where not exists \
           (select sid from sales where qty > 100)"
          [ [ v_i 6 ] ]);
    case "nested subqueries" (fun () ->
        expect_bag
          "select pname from products where pid in \
           (select product from sales where qty > \
            (select avg(qty) from sales))"
          [ [ v_s "apple" ]; [ v_s "banana" ] ]);
    case "empty scalar subquery is null" (fun () ->
        (* NULL comparison is false: no rows survive *)
        expect_rows
          "select pid from products where price > \
           (select price from products where pid = 99)"
          []);
    case "scalar subquery multiple rows rejected" (fun () ->
        match run "select pid from products where price > (select price from products)" with
        | exception Engine.Exec.Exec_error _ -> ()
        | _ -> Alcotest.fail "multi-row scalar accepted");
    case "correlated subquery rejected" (fun () ->
        match
          run
            "select pname from products p where exists \
             (select sid from sales s where s.product = p.pid)"
        with
        | exception Engine.Exec.Exec_error _ -> ()
        | _ -> Alcotest.fail "correlated subquery accepted");
  ]

let error_tests =
  [
    case "unknown column" (fun () ->
        match run "select zzz from products" with
        | exception Engine.Exec.Exec_error _ -> ()
        | exception Engine.Planner.Plan_error _ -> ()
        | _ -> Alcotest.fail "unknown column accepted");
    case "unknown table" (fun () ->
        match run "select 1 from missing" with
        | exception Engine.Planner.Plan_error _ -> ()
        | _ -> Alcotest.fail "unknown table accepted");
    case "type error in predicate" (fun () ->
        match run "select pid from products where pname + 1 > 0" with
        | exception Engine.Exec.Exec_error _ -> ()
        | _ -> Alcotest.fail "string arithmetic accepted");
    case "syntax error" (fun () ->
        match run "select from products" with
        | exception Sql.Parser.Error _ -> ()
        | _ -> Alcotest.fail "syntax error accepted");
  ]

let () =
  Alcotest.run "integration"
    [
      ("selection", selection_tests);
      ("projection", projection_tests);
      ("joins", join_tests);
      ("aggregation", aggregate_tests);
      ("ordering", ordering_tests);
      ("star & misc", star_tests);
      ("subqueries", subquery_tests);
      ("errors", error_tests);
    ]
