(** Translation of SQL queries to plans.

    The planner performs the classical SPJ pipeline:

    - selection pushdown (single-table conjuncts are filtered at the
      scans),
    - extraction of equi-join predicates,
    - greedy join ordering driven by estimated cardinalities from
      {!Stats},
    - index-join selection when the inner side is a bare scan of a
      table with a persistent index on its first join attribute,
    - residual filters, aggregation/HAVING, DISTINCT, ORDER BY and
      LIMIT on top.

    ORDER BY keys that reference output aliases are sorted after
    projection; keys that need pre-projection columns are sorted
    below the projection. *)

type config = {
  pushdown : bool;  (** push single-table predicates below joins *)
  use_indexes : bool;  (** allow index joins *)
  max_rows : int option;
      (** execution budget: total rows the plan's operators may
          produce (intermediate results included); [None] (the
          default) is unlimited.  See {!Budget}. *)
  max_elapsed : float option;
      (** execution budget: wall-clock seconds; [None] is
          unlimited. *)
  jobs : int;
      (** domains used for partition-parallel operators; [1] (the
          default) keeps execution serial.  Results are bit-identical
          for any value — see {!Exec.run}. *)
  chunked : bool;
      (** use the columnar chunk executor (the default); [false]
          selects the row-at-a-time executor.  An executor toggle
          passed through to {!Exec.run} — the planner itself does not
          read it. *)
  spill_rows : int option;
      (** Grace-spill threshold for hash joins: when the build side of
          a join has at least this many rows, both sides are hash-
          partitioned to disk (through {!Fault.Io}, so chaos tests can
          crash the spill) and joined partition-at-a-time.  [None]
          (the default) keeps joins fully in memory.  Spilled join
          output is partition-major — bag-identical to the in-memory
          join, but row order differs; passed through to {!Exec.run},
          the planner itself does not read it. *)
  spill_dir : string option;
      (** directory for spill partition files ([.spill-*.tmp]);
          [None] falls back to the system temporary directory. *)
}

val default_config : config

type env = {
  schema_of : string -> Dirty.Schema.t option;
      (** bare (unqualified) schema of a base table *)
  stats_of : string -> Stats.t option;
  has_index : string -> string -> bool;
}

exception Plan_error of string

val plan : ?config:config -> env -> Sql.Ast.query -> Plan.t
(** @raise Plan_error on unknown tables, duplicate aliases, or
    ambiguous references. *)
