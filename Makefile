.PHONY: all build test check bench examples quickbench clean

all: build

build:
	dune build @all

test:
	dune runtest

# everything CI runs: full build, test suite, and the examples
check:
	dune build @all
	dune runtest
	$(MAKE) examples

# full evaluation harness (all tables/figures/ablations + bechamel)
bench:
	dune exec bench/main.exe

# CI-sized benchmark pass
quickbench:
	dune exec bench/main.exe -- --quick --no-bechamel

examples:
	dune exec examples/quickstart.exe
	dune exec examples/crm.exe
	dune exec examples/citations.exe
	dune exec examples/tpch_demo.exe
	dune exec examples/dedup.exe
	dune exec examples/aggregates.exe

clean:
	dune clean
