lib/engine/database.ml: Dirty Exec Format Hashtbl Index List Option Plan Planner Relation Sql Stats String
