(* Process-wide metrics registry: named counters, gauges and
   log-scale latency histograms.

   Handles are created once (find-or-create against a global table)
   and mutated in place on the hot path — no locking, no allocation
   per update ("lock-free-ish via plain mutation").  Readers take a
   [snapshot], which copies every value, so a dump observes a
   consistent point-in-time view even if updates race it.

   All updates are gated on {!Control.enabled}; with telemetry off an
   update is a flag test and a branch. *)

type counter = { c_name : string; c_help : string; mutable count : int }
type gauge = { g_name : string; g_help : string; mutable value : float }

(* log-scale buckets: upper bounds grow by powers of two from
   [base] seconds; the last bucket is +infinity *)
type histogram = {
  h_name : string;
  h_help : string;
  bounds : float array;  (* upper bound of each finite bucket *)
  counts : int array;    (* one per finite bucket, plus one overflow *)
  mutable sum : float;
  mutable total : int;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let find_or_create name make =
  match Hashtbl.find_opt registry name with
  | Some m -> m
  | None ->
    let m = make () in
    Hashtbl.replace registry name m;
    m

let counter ?(help = "") name =
  match
    find_or_create name (fun () -> Counter { c_name = name; c_help = help; count = 0 })
  with
  | Counter c -> c
  | _ -> invalid_arg (name ^ " is registered as a non-counter metric")

let gauge ?(help = "") name =
  match
    find_or_create name (fun () -> Gauge { g_name = name; g_help = help; value = 0.0 })
  with
  | Gauge g -> g
  | _ -> invalid_arg (name ^ " is registered as a non-gauge metric")

(* 22 log-scale buckets from 1us to ~2s cover micro-operator to
   whole-query latencies *)
let default_bounds =
  Array.init 22 (fun i -> 1e-6 *. Float.of_int (1 lsl i))

let histogram ?(help = "") ?(bounds = default_bounds) name =
  match
    find_or_create name (fun () ->
        Histogram
          {
            h_name = name;
            h_help = help;
            bounds;
            counts = Array.make (Array.length bounds + 1) 0;
            sum = 0.0;
            total = 0;
          })
  with
  | Histogram h -> h
  | _ -> invalid_arg (name ^ " is registered as a non-histogram metric")

let inc ?(n = 1) c = if Control.enabled () then c.count <- c.count + n
let set g v = if Control.enabled () then g.value <- v
let add g v = if Control.enabled () then g.value <- g.value +. v

let bucket_index bounds v =
  (* first bucket whose upper bound admits v; bounds are sorted *)
  let n = Array.length bounds in
  let rec go lo hi =
    (* invariant: every bucket < lo is too small, hi admits v (or is
       the overflow bucket n) *)
    if lo >= hi then hi
    else
      let mid = (lo + hi) / 2 in
      if v <= bounds.(mid) then go lo mid else go (mid + 1) hi
  in
  go 0 n

let observe h v =
  if Control.enabled () then begin
    let i = bucket_index h.bounds v in
    h.counts.(i) <- h.counts.(i) + 1;
    h.sum <- h.sum +. v;
    h.total <- h.total + 1
  end

(* ---- snapshots ---- *)

type histogram_snapshot = {
  hs_bounds : float array;
  hs_counts : int array;  (* cumulative, per finite bound, then +Inf *)
  hs_sum : float;
  hs_total : int;
}

type value =
  | Counter_value of int
  | Gauge_value of float
  | Histogram_value of histogram_snapshot

type sample = { name : string; help : string; data : value }

let snapshot () =
  Hashtbl.fold
    (fun _ m acc ->
      let sample =
        match m with
        | Counter c -> { name = c.c_name; help = c.c_help; data = Counter_value c.count }
        | Gauge g -> { name = g.g_name; help = g.g_help; data = Gauge_value g.value }
        | Histogram h ->
          let cumulative = Array.make (Array.length h.counts) 0 in
          let running = ref 0 in
          Array.iteri
            (fun i c ->
              running := !running + c;
              cumulative.(i) <- !running)
            h.counts;
          {
            name = h.h_name;
            help = h.h_help;
            data =
              Histogram_value
                {
                  hs_bounds = Array.copy h.bounds;
                  hs_counts = cumulative;
                  hs_sum = h.sum;
                  hs_total = h.total;
                };
          }
      in
      sample :: acc)
    registry []
  |> List.sort (fun a b -> String.compare a.name b.name)

(* zero every metric (handles stay valid); for tests and benchmarks *)
let reset () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> c.count <- 0
      | Gauge g -> g.value <- 0.0
      | Histogram h ->
        Array.fill h.counts 0 (Array.length h.counts) 0;
        h.sum <- 0.0;
        h.total <- 0)
    registry

let find name = Hashtbl.find_opt registry name

let counter_value name =
  match Hashtbl.find_opt registry name with
  | Some (Counter c) -> Some c.count
  | _ -> None
