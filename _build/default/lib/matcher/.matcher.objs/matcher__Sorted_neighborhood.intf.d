lib/matcher/sorted_neighborhood.mli: Dirty
