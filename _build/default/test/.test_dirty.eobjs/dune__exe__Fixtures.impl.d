test/fixtures.ml: Alcotest Array Cluster Dirty Dirty_db Float Fun List Printf Relation Schema String Value
