lib/dirty/csv.mli: Relation
