(* Tests for the telemetry subsystem: the metrics registry, tracing
   spans, the exporters, the shared timing helper, and the
   instrumentation wired through the engine and the cleaner. *)

open Dirty

(* every test leaves the global flag off, the way production code
   expects it *)
let with_telemetry f =
  Telemetry.Metrics.reset ();
  Telemetry.Control.with_enabled f

(* ---- metrics registry ---- *)

let test_disabled_noop () =
  Telemetry.Metrics.reset ();
  let c = Telemetry.Metrics.counter "test.noop.counter" in
  let g = Telemetry.Metrics.gauge "test.noop.gauge" in
  let h = Telemetry.Metrics.histogram "test.noop.histogram" in
  Telemetry.Metrics.inc ~n:5 c;
  Telemetry.Metrics.set g 3.0;
  Telemetry.Metrics.observe h 0.1;
  Alcotest.(check int) "counter untouched" 0 (Telemetry.Metrics.count c);
  Fixtures.check_float "gauge untouched" 0.0 (Telemetry.Metrics.gauge_value g);
  Alcotest.(check int) "histogram untouched" 0 (Telemetry.Metrics.histogram_total h)

let test_counter_and_gauge () =
  with_telemetry @@ fun () ->
  let c = Telemetry.Metrics.counter "test.basic.counter" in
  Telemetry.Metrics.inc c;
  Telemetry.Metrics.inc ~n:4 c;
  Alcotest.(check int) "counter" 5 (Telemetry.Metrics.count c);
  (* find-or-create hands back the same underlying metric *)
  let c' = Telemetry.Metrics.counter "test.basic.counter" in
  Alcotest.(check int) "same handle" 5 (Telemetry.Metrics.count c');
  let g = Telemetry.Metrics.gauge "test.basic.gauge" in
  Telemetry.Metrics.set g 2.5;
  Telemetry.Metrics.add g 1.0;
  Fixtures.check_float "gauge" 3.5 (Telemetry.Metrics.gauge_value g)

let test_kind_mismatch () =
  ignore (Telemetry.Metrics.counter "test.kind");
  match Telemetry.Metrics.histogram "test.kind" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch accepted"

let test_histogram_buckets () =
  with_telemetry @@ fun () ->
  let h =
    Telemetry.Metrics.histogram ~bounds:[| 1.0; 2.0; 4.0 |] "test.buckets"
  in
  List.iter (Telemetry.Metrics.observe h) [ 0.5; 1.0; 1.5; 3.0; 100.0 ];
  (* raw counts: (<=1) gets 0.5 and 1.0; (<=2) gets 1.5; (<=4) gets
     3.0; the overflow bucket gets 100 *)
  Alcotest.(check (array int)) "raw counts" [| 2; 1; 1; 1 |]
    (Telemetry.Metrics.histogram_counts h);
  Alcotest.(check int) "total" 5 (Telemetry.Metrics.histogram_total h);
  Fixtures.check_float "sum" 106.0 (Telemetry.Metrics.histogram_sum h);
  let samples = Telemetry.Metrics.snapshot () in
  match
    List.find_opt (fun (s : Telemetry.Metrics.sample) -> s.name = "test.buckets") samples
  with
  | Some { data = Telemetry.Metrics.Histogram_value hs; _ } ->
    Alcotest.(check (array int)) "cumulative counts" [| 2; 3; 4; 5 |] hs.hs_counts;
    Alcotest.(check int) "snapshot total" 5 hs.hs_total
  | _ -> Alcotest.fail "histogram missing from snapshot"

let test_reset () =
  with_telemetry @@ fun () ->
  let c = Telemetry.Metrics.counter "test.reset.counter" in
  Telemetry.Metrics.inc ~n:7 c;
  Telemetry.Metrics.reset ();
  Alcotest.(check int) "zeroed, handle still valid" 0 (Telemetry.Metrics.count c);
  Telemetry.Metrics.inc c;
  Alcotest.(check int) "usable after reset" 1 (Telemetry.Metrics.count c)

(* four domains hammering the same counter, gauge and histogram: every
   update must land (fetch-and-add / CAS / mutex — no lost updates) *)
let test_concurrent_counters () =
  with_telemetry @@ fun () ->
  let c = Telemetry.Metrics.counter "test.concurrent.counter" in
  let g = Telemetry.Metrics.gauge "test.concurrent.gauge" in
  let h = Telemetry.Metrics.histogram ~bounds:[| 1.0 |] "test.concurrent.hist" in
  let per_domain = 10_000 in
  let work () =
    for _ = 1 to per_domain do
      Telemetry.Metrics.inc c;
      Telemetry.Metrics.add g 1.0;
      Telemetry.Metrics.observe h 0.5
    done
  in
  let domains = List.init 4 (fun _ -> Domain.spawn work) in
  List.iter Domain.join domains;
  Alcotest.(check int) "no lost increments" (4 * per_domain)
    (Telemetry.Metrics.count c);
  Fixtures.check_float "no lost gauge adds"
    (Float.of_int (4 * per_domain))
    (Telemetry.Metrics.gauge_value g);
  Alcotest.(check int) "no lost observations" (4 * per_domain)
    (Telemetry.Metrics.histogram_total h)

(* ---- spans ---- *)

let test_span_disabled_passthrough () =
  Alcotest.(check bool) "telemetry off" false (Telemetry.Control.enabled ());
  let v = Telemetry.Span.with_ ~name:"never" (fun () -> 41 + 1) in
  Alcotest.(check int) "value passes through" 42 v

let test_span_nesting () =
  let v, roots =
    Telemetry.Span.collecting (fun () ->
        Telemetry.Span.with_ ~name:"root" (fun () ->
            Telemetry.Span.add_attr "k" "v";
            Telemetry.Span.with_ ~name:"a" (fun () -> ());
            Telemetry.Span.with_ ~name:"b" (fun () -> ());
            42))
  in
  Alcotest.(check int) "result" 42 v;
  match roots with
  | [ root ] ->
    Alcotest.(check string) "root name" "root" root.Telemetry.Span.name;
    Alcotest.(check (list string)) "children in order" [ "a"; "b" ]
      (List.map (fun (s : Telemetry.Span.t) -> s.name) root.children);
    Alcotest.(check (option string)) "attr" (Some "v")
      (List.assoc_opt "k" root.attrs);
    Alcotest.(check int) "count" 3 (Telemetry.Span.count root);
    List.iter
      (fun (child : Telemetry.Span.t) ->
        Alcotest.(check bool) "parent time covers child" true
          (root.elapsed >= child.elapsed))
      root.children
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

let test_span_exception_safety () =
  let (), roots =
    Telemetry.Span.collecting (fun () ->
        try Telemetry.Span.with_ ~name:"boom" (fun () -> raise Exit)
        with Exit -> ())
  in
  Alcotest.(check (list string)) "failed span still completes" [ "boom" ]
    (List.map (fun (s : Telemetry.Span.t) -> s.name) roots);
  (* the span stack recovered: a fresh span is again a root *)
  let (), roots = Telemetry.Span.collecting (fun () ->
      Telemetry.Span.with_ ~name:"after" (fun () -> ()))
  in
  Alcotest.(check (list string)) "stack recovered" [ "after" ]
    (List.map (fun (s : Telemetry.Span.t) -> s.name) roots)

let span_names root =
  List.rev
    (Telemetry.Span.fold_preorder
       (fun acc ~depth:_ (s : Telemetry.Span.t) -> s.name :: acc)
       [] root)

let test_clean_answers_spans () =
  Telemetry.Metrics.reset ();
  let session = Conquer.Clean.create (Fixtures.figure2_db ()) in
  let answers, roots =
    Telemetry.Span.collecting (fun () -> Conquer.Clean.answers session Fixtures.q1)
  in
  Alcotest.(check bool) "query answered" true (Relation.cardinality answers > 0);
  match roots with
  | [ root ] ->
    Alcotest.(check string) "root is the clean-answer aggregation"
      "conquer.answers" root.Telemetry.Span.name;
    let names = span_names root in
    Alcotest.(check bool) "rewrite span" true (List.mem "conquer.rewrite" names);
    Alcotest.(check bool) "planner span" true (List.mem "planner.plan" names);
    Alcotest.(check bool) "plan operator spans" true
      (List.exists
         (fun n -> String.length n > 5 && String.sub n 0 5 = "exec.")
         names);
    let has_rows_out =
      Telemetry.Span.fold_preorder
        (fun acc ~depth:_ (s : Telemetry.Span.t) ->
          acc || List.mem_assoc "rows_out" s.attrs)
        false root
    in
    Alcotest.(check bool) "operators report rows_out" true has_rows_out;
    Alcotest.(check (option string)) "root reports the answer count"
      (Some (string_of_int (Relation.cardinality answers)))
      (List.assoc_opt "answers" root.attrs);
    (* the instrumented run also fed the metrics registry *)
    let count name =
      Option.value ~default:0 (Telemetry.Metrics.counter_value name)
    in
    Alcotest.(check bool) "operators counted" true (count "engine.exec.operators" > 0);
    Alcotest.(check bool) "rows counted" true (count "engine.exec.rows_out" > 0);
    Alcotest.(check int) "one plan" 1 (count "engine.planner.plans");
    Alcotest.(check int) "one conquer query" 1 (count "conquer.queries");
    Alcotest.(check int) "one rewrite" 1 (count "conquer.rewrite.queries")
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

(* ---- store instrumentation ---- *)

let test_store_counters () =
  with_telemetry @@ fun () ->
  let dir = Filename.temp_file "telemetry-store" "" in
  Sys.remove dir;
  let count name =
    Option.value ~default:0 (Telemetry.Metrics.counter_value name)
  in
  let files0 = count "dirty.store.files_written" in
  Dirty.Store.save dir (Fixtures.figure2_db ());
  (* two tables, the journal, the manifest, and the CURRENT flip *)
  Alcotest.(check int) "files written" 5
    (count "dirty.store.files_written" - files0);
  Alcotest.(check int) "one rename per file" 5 (count "dirty.store.renames");
  Alcotest.(check bool) "bytes accounted" true
    (count "dirty.store.bytes_written" > 0);
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

(* ---- exporters ---- *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_prometheus_dump () =
  with_telemetry @@ fun () ->
  let c = Telemetry.Metrics.counter ~help:"a test counter" "test.prom.counter" in
  Telemetry.Metrics.inc ~n:3 c;
  let h = Telemetry.Metrics.histogram "test.prom.hist" in
  Telemetry.Metrics.observe h 0.5;
  let dump = Telemetry.Export.prometheus_string () in
  Alcotest.(check bool) "counter line" true
    (contains dump "conquer_test_prom_counter 3");
  Alcotest.(check bool) "help line" true
    (contains dump "# HELP conquer_test_prom_counter a test counter");
  Alcotest.(check bool) "type line" true
    (contains dump "# TYPE conquer_test_prom_counter counter");
  Alcotest.(check bool) "histogram buckets" true
    (contains dump "conquer_test_prom_hist_bucket{le=");
  Alcotest.(check bool) "histogram +Inf bucket" true
    (contains dump "conquer_test_prom_hist_bucket{le=\"+Inf\"} 1");
  Alcotest.(check bool) "histogram count" true
    (contains dump "conquer_test_prom_hist_count 1")

let test_metrics_json () =
  with_telemetry @@ fun () ->
  let c = Telemetry.Metrics.counter "test.json.counter" in
  Telemetry.Metrics.inc ~n:2 c;
  let json = Telemetry.Export.metrics_json () in
  Alcotest.(check bool) "counter entry" true
    (contains json "\"test.json.counter\":2")

let test_span_json () =
  let (), roots =
    Telemetry.Span.collecting (fun () ->
        Telemetry.Span.with_ ~name:"outer" (fun () ->
            Telemetry.Span.add_attr "q" "select 1";
            Telemetry.Span.with_ ~name:"inner" (fun () -> ())))
  in
  let json = Telemetry.Export.span_to_json (List.hd roots) in
  Alcotest.(check bool) "root name" true (contains json "\"name\":\"outer\"");
  Alcotest.(check bool) "nested child" true
    (contains json "\"children\":[{\"name\":\"inner\"");
  Alcotest.(check bool) "attr escaped into json" true
    (contains json "\"q\":\"select 1\"")

let test_json_escaping () =
  Alcotest.(check string) "quotes and newlines" "\"a\\\"b\\nc\""
    (Telemetry.Export.json_string "a\"b\nc");
  Alcotest.(check string) "nan is null" "null" (Telemetry.Export.json_float Float.nan)

(* ---- the shared timing helper ---- *)

let test_timing_stats () =
  let s = Telemetry.Timing.of_samples [ 3.0; 1.0; 2.0 ] in
  Alcotest.(check int) "runs" 3 s.runs;
  Fixtures.check_float "min" 1.0 s.min;
  Fixtures.check_float "median" 2.0 s.median;
  Fixtures.check_float "max" 3.0 s.max;
  let s = Telemetry.Timing.singleton 0.5 in
  Fixtures.check_float "singleton min=median=max" 0.5 s.min;
  Fixtures.check_float "singleton max" 0.5 s.max

let test_time_runs () =
  let calls = ref 0 in
  let s = Telemetry.Timing.time_runs ~warmup:2 ~runs:5 (fun () -> incr calls) in
  Alcotest.(check int) "warmup + timed runs" 7 !calls;
  Alcotest.(check int) "stats runs" 5 s.runs;
  Alcotest.(check bool) "ordered" true (s.min <= s.median && s.median <= s.max);
  Alcotest.(check bool) "nonnegative" true (s.min >= 0.0)

let () =
  Alcotest.run "telemetry"
    [
      ( "metrics",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
          Alcotest.test_case "counter and gauge" `Quick test_counter_and_gauge;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "reset" `Quick test_reset;
          Alcotest.test_case "concurrent domains lose nothing" `Quick
            test_concurrent_counters;
        ] );
      ( "spans",
        [
          Alcotest.test_case "disabled passthrough" `Quick
            test_span_disabled_passthrough;
          Alcotest.test_case "nesting and attrs" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safety;
          Alcotest.test_case "clean answers span tree" `Quick
            test_clean_answers_spans;
        ] );
      ( "instrumentation",
        [ Alcotest.test_case "store counters" `Quick test_store_counters ] );
      ( "export",
        [
          Alcotest.test_case "prometheus dump" `Quick test_prometheus_dump;
          Alcotest.test_case "metrics json" `Quick test_metrics_json;
          Alcotest.test_case "span json" `Quick test_span_json;
          Alcotest.test_case "json escaping" `Quick test_json_escaping;
        ] );
      ( "timing",
        [
          Alcotest.test_case "stats of samples" `Quick test_timing_stats;
          Alcotest.test_case "time_runs" `Quick test_time_runs;
        ] );
    ]
