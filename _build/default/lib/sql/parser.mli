(** Recursive-descent parser for the SQL subset described in
    {!Ast}. *)

exception Error of string
(** Parse error with a human-readable message including position. *)

val parse_query : string -> Ast.query
(** @raise Error on syntax errors. *)

val parse_expr : string -> Ast.expr
(** Parse a standalone scalar expression (used by tests and the
    CLI). *)
