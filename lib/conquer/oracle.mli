(** The candidate-semantics reference interpreter.

    {!Candidates} enumerates candidate databases; this module packages
    that enumeration as the {e specification oracle} the differential
    fuzzing harness tests the production path against.  It evaluates
    any SPJ query AST over any dirty database by materializing every
    candidate (guarded by a size budget) and summing candidate
    probabilities per distinct answer tuple — Dfn 5 executed
    literally, with no reliance on the rewriting, the rewritability
    check, or the planner's clever paths beyond plain execution.

    The oracle is exponential in the number of multi-tuple clusters;
    the guard turns an over-budget database into the typed exception
    {!Too_many_candidates} so harness code can skip rather than
    stall. *)

exception Too_many_candidates of { count : float; limit : int }

val default_max_candidates : int
(** 1_000_000, matching {!Candidates.fold}. *)

val candidate_count : Dirty.Dirty_db.t -> float
(** Number of candidate databases (as a float; it overflows 63-bit
    integers quickly). *)

val within_budget : ?max_candidates:int -> Dirty.Dirty_db.t -> bool

val answers :
  ?max_candidates:int -> Dirty.Dirty_db.t -> Sql.Ast.query -> Dirty.Relation.t
(** Reference clean answers: the query's output schema extended with
    [clean_prob], sorted by the answer columns.
    @raise Too_many_candidates when the database is over budget. *)

val answer_probabilities :
  ?max_candidates:int ->
  Dirty.Dirty_db.t ->
  Sql.Ast.query ->
  (Dirty.Relation.row * float) list
(** The same answers as an association list keyed on the answer tuple
    (probability column not included in the key). *)

val nonempty_probability :
  ?max_candidates:int -> Dirty.Dirty_db.t -> Sql.Ast.query -> float
(** Probability mass of the candidates on which the query returns at
    least one row. *)

(** {1 Differential comparison} *)

type mismatch = {
  detail : string;  (** human-readable description *)
  row : Dirty.Relation.row option;
      (** the answer tuple (without probability) the relations
          disagree on, when the disagreement is row-level *)
  oracle_prob : float option;  (** [None]: the oracle lacks the row *)
  actual_prob : float option;  (** [None]: the candidate lacks the row *)
}

val mismatch_to_string : mismatch -> string

val compare_answers :
  ?eps:float ->
  oracle:Dirty.Relation.t ->
  Dirty.Relation.t ->
  (unit, mismatch) result
(** Compare two answer relations whose last column is the probability,
    keyed on all other columns, with absolute tolerance [eps] (default
    1e-9) on the probabilities.  Returns the first disagreement:
    differing arity, a row only one side has, or a probability gap. *)

val refute :
  ?eps:float ->
  ?max_candidates:int ->
  Dirty.Dirty_db.t ->
  Sql.Ast.query ->
  Dirty.Relation.t ->
  mismatch option
(** [refute db q candidate] runs the oracle on [(db, q)] and returns
    the disagreement with [candidate] if there is one — the witness
    that a claimed clean-answer relation is wrong.
    @raise Too_many_candidates when the database is over budget. *)
