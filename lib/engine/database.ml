open Dirty

type entry = {
  relation : Relation.t;
  mutable indexes : (string * Index.t) list;  (* attr -> index *)
  mutable stats : Stats.t option;
}

type t = (string, entry) Hashtbl.t

let h_query_seconds =
  Telemetry.Metrics.histogram "engine.query_seconds"
    ~help:"end-to-end wall-clock of plan+execute per query"

let m_queries =
  Telemetry.Metrics.counter "engine.queries" ~help:"queries executed"

let create () : t = Hashtbl.create 16

(* Shallow copy with one table's entry swapped in from another
   database.  Entries (relations, indexes, stats) are shared with the
   base, so an overlay is cheap to build per shard: the shard executor
   overlays its fragment of the partition table over the global
   catalog and reads every other table as-is. *)
let overlay t ~name ~from : t =
  let t' = Hashtbl.copy t in
  (match Hashtbl.find_opt from name with
  | Some e -> Hashtbl.replace t' name e
  | None -> Hashtbl.remove t' name);
  t'

let add_relation t ~name rel =
  Hashtbl.replace t name { relation = rel; indexes = []; stats = None }

let drop_relation t name = Hashtbl.remove t name

let entry t name =
  match Hashtbl.find_opt t name with
  | Some e -> e
  | None -> raise Not_found

let relation t name = (entry t name).relation
let relation_opt t name = Option.map (fun e -> e.relation) (Hashtbl.find_opt t name)
let table_names t = List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t [])

let create_index t ~table ~attr =
  let e = entry t table in
  let attr = String.lowercase_ascii attr in
  let index = Index.build e.relation attr in
  e.indexes <- (attr, index) :: List.remove_assoc attr e.indexes

let index t ~table ~attr =
  match Hashtbl.find_opt t table with
  | None -> None
  | Some e -> List.assoc_opt (String.lowercase_ascii attr) e.indexes

let has_index t ~table ~attr = index t ~table ~attr <> None

let analyze t name =
  let e = entry t name in
  Telemetry.Span.with_ ~name:"engine.analyze" ~attrs:[ ("table", name) ]
    (fun () -> e.stats <- Some (Stats.analyze e.relation))

let analyze_all t = List.iter (analyze t) (table_names t)
let stats t name = Option.bind (Hashtbl.find_opt t name) (fun e -> e.stats)

let planner_env t : Planner.env =
  {
    schema_of =
      (fun name ->
        Option.map (fun e -> Relation.schema e.relation) (Hashtbl.find_opt t name));
    stats_of = (fun name -> stats t name);
    has_index = (fun table attr -> has_index t ~table ~attr);
  }

let exec_catalog t : Exec.catalog =
  {
    relation = (fun name -> relation t name);
    index = (fun table attr -> index t ~table ~attr);
  }

let plan ?config t q = Planner.plan ?config (planner_env t) q

let spill_of_config (config : Planner.config option) =
  match config with
  | Some { spill_rows = Some rows; spill_dir; _ } ->
    Some
      {
        Exec.spill_rows = rows;
        spill_dir =
          (match spill_dir with
          | Some dir -> dir
          | None -> Filename.get_temp_dir_name ());
      }
  | _ -> None

let run_plan ?budget ?jobs ?chunked ?spill t p =
  Exec.run ?budget ?jobs ?chunked ?spill (exec_catalog t) p

(* the parallelism the caller asked for: an explicit config pins it
   (so jobs=1 vs jobs=4 comparisons are environment-independent);
   otherwise the process default (CLI --jobs / CONQUER_JOBS) applies *)
let effective_jobs (config : Planner.config option) =
  match config with Some c -> c.jobs | None -> Parallel.default_jobs ()

let effective_chunked (config : Planner.config option) =
  match config with Some c -> c.chunked | None -> true

(* The budget declared by the planner config, if any; a time-limited
   budget gets a cancellation token so the wall-clock watchdog can
   interrupt parallel regions mid-operator.  An externally supplied
   token (the server's per-request token, tripped on client
   disconnect) is attached to the budget whatever the limits — and
   forces a budget into existence even for a limitless config, so the
   execution polls it at every checkpoint. *)
let budget_of_config ?cancel mode (config : Planner.config option) =
  let limits =
    match config with
    | Some { max_rows; max_elapsed; _ } -> { Budget.max_rows; max_elapsed }
    | None -> Budget.no_limits
  in
  if limits = Budget.no_limits && cancel = None then None
  else
    let cancel =
      match cancel with
      | Some _ as c -> c
      | None ->
        if limits.Budget.max_elapsed <> None then Some (Cancel.create ())
        else None
    in
    Some (Budget.create ~mode ?cancel limits)

(* run [f] under the wall-clock watchdog when the budget carries a
   time limit: the watchdog trips the budget's token at the deadline,
   so execution stops at the next checkpoint (budget charge, operator
   boundary, or parallel chunk claim) rather than only when a row
   charge happens to consult the clock *)
let guarded budget f =
  match budget with
  | None -> f ()
  | Some b -> (
    match (Budget.cancel_token b, (Budget.limits b).Budget.max_elapsed) with
    | Some tok, Some seconds -> Cancel.with_deadline ~seconds tok f
    | _ -> f ())

(* Every query entry point runs under one [engine.query] span, so a
   request-scoped trace (the daemon's) sees planning and per-operator
   execution as a single attributable subtree rather than a loose
   collection of roots. *)
let timed_query f =
  Telemetry.Metrics.inc m_queries;
  if not (Telemetry.Control.enabled ()) then f ()
  else
    Telemetry.Span.with_ ~name:"engine.query" (fun () ->
        let t0 = Unix.gettimeofday () in
        let result = f () in
        Telemetry.Metrics.observe h_query_seconds (Unix.gettimeofday () -. t0);
        result)

let query_ast ?config t q =
  timed_query (fun () ->
      let budget = budget_of_config Budget.Raise config in
      guarded budget (fun () ->
          run_plan ?budget ~jobs:(effective_jobs config)
            ~chunked:(effective_chunked config) ?spill:(spill_of_config config)
            t (plan ?config t q)))

type stop = { truncated : bool; cancelled : bool }

let no_stop = { truncated = false; cancelled = false }

let query_ast_within ?config ?cancel t q =
  timed_query (fun () ->
      let budget = budget_of_config ?cancel Budget.Truncate config in
      let rel =
        guarded budget (fun () ->
            run_plan ?budget ~jobs:(effective_jobs config)
              ~chunked:(effective_chunked config)
              ?spill:(spill_of_config config) t (plan ?config t q))
      in
      let stop =
        match budget with
        | Some b ->
          { truncated = Budget.truncated b; cancelled = Budget.cancelled b }
        | None -> no_stop
      in
      Telemetry.Span.add_attr "rows" (string_of_int (Relation.cardinality rel));
      if stop.truncated then Telemetry.Span.add_attr "truncated" "true";
      if stop.cancelled then Telemetry.Span.add_attr "cancelled" "true";
      (rel, stop))

let query ?config t text = query_ast ?config t (Sql.Parser.parse_query text)

let explain ?config t text =
  Plan.to_string (plan ?config t (Sql.Parser.parse_query text))

let query_profiled ?config t text =
  let p = plan ?config t (Sql.Parser.parse_query text) in
  let budget = budget_of_config Budget.Raise config in
  guarded budget (fun () ->
      Exec.run_profiled ?budget ~jobs:(effective_jobs config)
        ~chunked:(effective_chunked config) ?spill:(spill_of_config config)
        (exec_catalog t) p)

let explain_analyze ?config t text =
  let _, profile = query_profiled ?config t text in
  Format.asprintf "%a" Exec.pp_profile profile
