module Value = Dirty.Value
module Relation = Dirty.Relation
module Dirty_db = Dirty.Dirty_db

let parse_line line =
  let line =
    let n = String.length line in
    if n > 0 && line.[n - 1] = '|' then String.sub line 0 (n - 1) else line
  in
  String.split_on_char '|' line

(* reads go through the fault-injection shim, like every other loader *)
let load_file path =
  Fault.Io.read_file path
  |> String.split_on_char '\n'
  |> List.filter_map (fun line ->
         let line =
           let n = String.length line in
           if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1)
           else line
         in
         if line = "" then None else Some (parse_line line))

exception Parse_error of { path : string; lineno : int; msg : string }

let () =
  Printexc.register_printer (function
    | Parse_error { path; lineno; msg } ->
      Some (Printf.sprintf "Tpch.Tbl.Parse_error: %s:%d: %s" path lineno msg)
    | _ -> None)

let failf path lineno fmt =
  Printf.ksprintf (fun msg -> raise (Parse_error { path; lineno; msg })) fmt

let int_field path lineno s =
  match int_of_string_opt (String.trim s) with
  | Some i -> i
  | None -> failf path lineno "expected integer, got %S" s

let float_field path lineno s =
  match float_of_string_opt (String.trim s) with
  | Some f -> f
  | None -> failf path lineno "expected number, got %S" s

let date_field path lineno s =
  match Value.date_of_string (String.trim s) with
  | d -> d
  | exception Invalid_argument _ -> failf path lineno "expected date, got %S" s

let v_i i = Value.Int i
let v_f f = Value.Float f
let v_s s = Value.String s
let prob_one = Value.Float 1.0

(* each loader maps a .tbl row onto our dirty-schema row *)

let load_table dir name arity convert (spec : Schema.table_spec) =
  let path = Filename.concat dir (name ^ ".tbl") in
  let rows = load_file path in
  let converted =
    List.mapi
      (fun i fields ->
        let lineno = i + 1 in
        if List.length fields <> arity then
          failf path lineno "expected %d fields, got %d" arity
            (List.length fields);
        convert path lineno i (Array.of_list fields))
      rows
  in
  Dirty_db.make_table ~name:spec.name ~id_attr:spec.id_attr
    ~prob_attr:spec.prob_attr
    (Relation.create spec.schema converted)

let load_dir dir =
  let region =
    load_table dir "region" 3 (fun path ln _ f ->
        [| v_i (int_field path ln f.(0)); v_s f.(1); v_s f.(2); prob_one |])
      Schema.region
  in
  let nation =
    load_table dir "nation" 4 (fun path ln _ f ->
        [|
          v_i (int_field path ln f.(0)); v_s f.(1);
          v_i (int_field path ln f.(2)); v_s f.(3); prob_one;
        |])
      Schema.nation
  in
  let supplier =
    load_table dir "supplier" 7 (fun path ln _ f ->
        let key = int_field path ln f.(0) in
        [|
          v_i key; v_i key; v_s f.(1); v_s f.(2);
          v_i (int_field path ln f.(3)); v_s f.(4);
          v_f (float_field path ln f.(5)); v_s f.(6); prob_one;
        |])
      Schema.supplier
  in
  let part =
    load_table dir "part" 9 (fun path ln _ f ->
        let key = int_field path ln f.(0) in
        [|
          v_i key; v_i key; v_s f.(1); v_s f.(2); v_s f.(3); v_s f.(4);
          v_i (int_field path ln f.(5)); v_s f.(6);
          v_f (float_field path ln f.(7)); v_s f.(8); prob_one;
        |])
      Schema.part
  in
  (* partsupp gets a synthetic identifier; remember (partkey, suppkey)
     -> ps_id for lineitem linking *)
  let ps_index = Hashtbl.create 1024 in
  let partsupp =
    load_table dir "partsupp" 5 (fun path ln i f ->
        let partkey = int_field path ln f.(0) in
        let suppkey = int_field path ln f.(1) in
        Hashtbl.replace ps_index (partkey, suppkey) i;
        [|
          v_i i; v_i i; v_i partkey; v_i partkey; v_i suppkey; v_i suppkey;
          v_i (int_field path ln f.(2)); v_f (float_field path ln f.(3));
          v_s f.(4); prob_one;
        |])
      Schema.partsupp
  in
  let customer =
    load_table dir "customer" 8 (fun path ln _ f ->
        let key = int_field path ln f.(0) in
        [|
          v_i key; v_i key; v_s f.(1); v_s f.(2);
          v_i (int_field path ln f.(3)); v_s f.(4);
          v_f (float_field path ln f.(5)); v_s f.(6); v_s f.(7); prob_one;
        |])
      Schema.customer
  in
  let orders =
    load_table dir "orders" 9 (fun path ln _ f ->
        let key = int_field path ln f.(0) in
        let custkey = int_field path ln f.(1) in
        [|
          v_i key; v_i key; v_i custkey; v_i custkey; v_s f.(2);
          v_f (float_field path ln f.(3)); date_field path ln f.(4);
          v_s f.(5); v_s f.(6); v_i (int_field path ln f.(7)); prob_one;
        |])
      Schema.orders
  in
  let lineitem =
    load_table dir "lineitem" 16 (fun path ln i f ->
        let orderkey = int_field path ln f.(0) in
        let partkey = int_field path ln f.(1) in
        let suppkey = int_field path ln f.(2) in
        let psid =
          match Hashtbl.find_opt ps_index (partkey, suppkey) with
          | Some id -> id
          | None -> failf path ln "no partsupp row for (%d, %d)" partkey suppkey
        in
        [|
          v_i i; v_i i; v_i orderkey; v_i orderkey; v_i partkey; v_i suppkey;
          v_i psid; v_i psid; v_i (int_field path ln f.(3));
          v_i (int_of_float (float_field path ln f.(4)));
          v_f (float_field path ln f.(5)); v_f (float_field path ln f.(6));
          v_f (float_field path ln f.(7)); v_s f.(8); v_s f.(9);
          date_field path ln f.(10); date_field path ln f.(11);
          date_field path ln f.(12); v_s f.(13); v_s f.(14); prob_one;
        |])
      Schema.lineitem
  in
  List.fold_left Dirty_db.add_table Dirty_db.empty
    [ region; nation; supplier; part; partsupp; customer; orders; lineitem ]
