type column = { table : string option; name : string }

type binop =
  | Eq | Neq | Lt | Le | Gt | Ge
  | Add | Sub | Mul | Div
  | And | Or

type unop = Not | Neg

type agg_fun = Count | Sum | Avg | Min | Max

type table_ref = { table : string; t_alias : string option }

type expr =
  | Lit of Dirty.Value.t
  | Col of column
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Like of expr * string
  | Not_like of expr * string
  | In_list of expr * Dirty.Value.t list
  | Between of expr * expr * expr
  | Is_null of expr
  | Is_not_null of expr
  | Agg of agg_fun * expr option
  | In_query of expr * query
  | Exists of query
  | Scalar_subquery of query

and select_item = { expr : expr; alias : string option }
and select_list = Star | Items of select_item list
and order_item = { o_expr : expr; desc : bool }
and outer_join = { oj_table : table_ref; oj_on : expr }

and query = {
  distinct : bool;
  select : select_list;
  from : table_ref list;
  outer_joins : outer_join list;
  where : expr option;
  group_by : expr list;
  having : expr option;
  order_by : order_item list;
  limit : int option;
}

let col ?table name = Col { table; name = String.lowercase_ascii name }
let lit_int i = Lit (Dirty.Value.Int i)
let lit_float f = Lit (Dirty.Value.Float f)
let lit_string s = Lit (Dirty.Value.String s)

let conj = function
  | [] -> None
  | e :: es -> Some (List.fold_left (fun acc e' -> Binop (And, acc, e')) e es)

let rec conjuncts = function
  | Binop (And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let simple_query ~select ~from ?where () =
  {
    distinct = false;
    select = Items select;
    from;
    outer_joins = [];
    where;
    group_by = [];
    having = None;
    order_by = [];
    limit = None;
  }

(* subqueries are opaque scopes: their aggregates and columns are not
   the outer query's *)
let rec has_aggregates = function
  | Agg _ -> true
  | Lit _ | Col _ | Exists _ | Scalar_subquery _ -> false
  | Unop (_, e) | Like (e, _) | Not_like (e, _) | In_list (e, _)
  | Is_null e | Is_not_null e | In_query (e, _) ->
    has_aggregates e
  | Binop (_, a, b) -> has_aggregates a || has_aggregates b
  | Between (a, b, c) -> has_aggregates a || has_aggregates b || has_aggregates c

let rec has_subqueries = function
  | In_query _ | Exists _ | Scalar_subquery _ -> true
  | Lit _ | Col _ | Agg (_, None) -> false
  | Agg (_, Some e)
  | Unop (_, e) | Like (e, _) | Not_like (e, _) | In_list (e, _)
  | Is_null e | Is_not_null e ->
    has_subqueries e
  | Binop (_, a, b) -> has_subqueries a || has_subqueries b
  | Between (a, b, c) -> has_subqueries a || has_subqueries b || has_subqueries c

let query_has_subqueries (q : query) =
  let exprs =
    (match q.select with
    | Star -> []
    | Items items -> List.map (fun i -> i.expr) items)
    @ Option.to_list q.where @ q.group_by @ Option.to_list q.having
    @ List.map (fun o -> o.o_expr) q.order_by
    @ List.map (fun oj -> oj.oj_on) q.outer_joins
  in
  List.exists has_subqueries exprs

let is_spj q =
  (not q.distinct) && q.group_by = [] && q.having = None
  &&
  match q.select with
  | Star -> true
  | Items items ->
    List.for_all (fun item -> not (has_aggregates item.expr)) items
    && Option.fold ~none:true ~some:(fun e -> not (has_aggregates e)) q.where

let expr_columns e =
  let rec go acc = function
    | Col c -> c :: acc
    | Lit _ -> acc
    (* columns inside a subquery belong to the subquery's own scope *)
    | Exists _ | Scalar_subquery _ -> acc
    | Unop (_, e) | Like (e, _) | Not_like (e, _) | In_list (e, _)
    | Is_null e | Is_not_null e | In_query (e, _) ->
      go acc e
    | Agg (_, Some e) -> go acc e
    | Agg (_, None) -> acc
    | Binop (_, a, b) -> go (go acc a) b
    | Between (a, b, c) -> go (go (go acc a) b) c
  in
  List.rev (go [] e)

let equal_expr (a : expr) (b : expr) = a = b
