examples/crm.mli:
