test/test_sampler.ml: Alcotest Array Cluster Conquer Dirty Dirty_db Engine Fixtures Float List Option Printf Random Relation Sql Value
