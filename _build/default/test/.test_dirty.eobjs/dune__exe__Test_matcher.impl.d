test/test_matcher.ml: Alcotest Array Cluster Conquer Dirty Dirty_db Fixtures Format List Matcher Prob Relation Schema Tpch Value
