exception Parse_error of { path : string; line : int; msg : string }

let () =
  Printexc.register_printer (function
    | Parse_error { path; line; msg } ->
      Some (Printf.sprintf "Dirty.Csv.Parse_error: %s:%d: %s" path line msg)
    | _ -> None)

let parse_line ?(sep = ',') line =
  let n = String.length line in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let push () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  (* [i] scans the line; [quoted] tracks whether we are inside "..." *)
  let rec go i quoted =
    if i >= n then push ()
    else
      let c = line.[i] in
      if quoted then
        if c = '"' then
          if i + 1 < n && line.[i + 1] = '"' then begin
            Buffer.add_char buf '"';
            go (i + 2) true
          end
          else go (i + 1) false
        else begin
          Buffer.add_char buf c;
          go (i + 1) true
        end
      else if c = '"' && Buffer.length buf = 0 then go (i + 1) true
      else if c = sep then begin
        push ();
        go (i + 1) false
      end
      else begin
        Buffer.add_char buf c;
        go (i + 1) false
      end
  in
  go 0 false;
  List.rev !fields

let needs_quoting sep s =
  String.exists (fun c -> c = sep || c = '"' || c = '\n' || c = '\r') s

let render_field sep s =
  if not (needs_quoting sep s) then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let render_line ?(sep = ',') fields =
  match fields with
  (* a row whose single field is the empty string must not render as a
     blank line (blank lines are skipped on read): quote it *)
  | [ "" ] -> "\"\""
  | _ -> String.concat (String.make 1 sep) (List.map (render_field sep) fields)

(* Quote-aware parse of a whole document: rows are split on newlines
   {e outside} quotes, so fields containing '\n' (which {!render_field}
   legitimately emits quoted) round-trip.  Blank lines are skipped;
   CRLF and lone-CR row terminators are tolerated; an unterminated
   quote at end of input keeps the text read so far.  Each row is
   tagged with the 1-based physical line it starts on, so downstream
   errors can point at the offending line of the file. *)
let parse_rows_loc ?(sep = ',') s =
  let n = String.length s in
  let rows = ref [] in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  (* [seen] distinguishes a blank line from a row holding one empty
     field written as "" *)
  let seen = ref false in
  let line = ref 1 in
  let row_line = ref 1 in
  let push_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let end_row () =
    if !seen || !fields <> [] || Buffer.length buf > 0 then begin
      push_field ();
      rows := (!row_line, List.rev !fields) :: !rows;
      fields := []
    end;
    seen := false
  in
  let newline () =
    incr line;
    if not (!seen || !fields <> [] || Buffer.length buf > 0) then
      row_line := !line
  in
  let rec go i quoted =
    if i >= n then end_row ()
    else
      let c = s.[i] in
      if quoted then
        if c = '"' then
          if i + 1 < n && s.[i + 1] = '"' then begin
            Buffer.add_char buf '"';
            go (i + 2) true
          end
          else go (i + 1) false
        else begin
          if c = '\n' then incr line;
          Buffer.add_char buf c;
          go (i + 1) true
        end
      else if c = '"' && Buffer.length buf = 0 then begin
        seen := true;
        go (i + 1) true
      end
      else if c = sep then begin
        seen := true;
        push_field ();
        go (i + 1) false
      end
      else if c = '\r' && i + 1 < n && s.[i + 1] = '\n' then begin
        end_row ();
        newline ();
        go (i + 2) false
      end
      else if c = '\n' || c = '\r' then begin
        end_row ();
        newline ();
        go (i + 1) false
      end
      else begin
        seen := true;
        Buffer.add_char buf c;
        go (i + 1) false
      end
  in
  go 0 false;
  List.rev !rows

let parse_rows ?sep s = List.map snd (parse_rows_loc ?sep s)

let read_all ic =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    let k = input ic chunk 0 (Bytes.length chunk) in
    if k > 0 then begin
      Buffer.add_subbytes buf chunk 0 k;
      go ()
    end
  in
  go ();
  Buffer.contents buf

let read_channel ?sep ic = parse_rows ?sep (read_all ic)

(* whole-file reads go through the fault-injection shim so the chaos
   harness can exercise short reads and crashes on the load path too *)
let read_file ?sep path = parse_rows ?sep (Fault.Io.read_file path)

(* Majority-vote type inference for a parsed column. *)
let infer_type values =
  let counts = Hashtbl.create 8 in
  let total = ref 0 in
  List.iter
    (fun v ->
      match Value.type_of v with
      | None -> ()
      | Some ty ->
        incr total;
        let c = Option.value ~default:0 (Hashtbl.find_opt counts ty) in
        Hashtbl.replace counts ty (c + 1))
    values;
  if !total = 0 then Value.TString
  else begin
    let best = ref Value.TString and best_count = ref (-1) in
    Hashtbl.iter
      (fun ty c ->
        if c > !best_count then begin
          best := ty;
          best_count := c
        end)
      counts;
    (* A column mixing ints and floats is a float column. *)
    if
      !best = Value.TInt
      && Hashtbl.mem counts Value.TFloat
    then Value.TFloat
    else if Hashtbl.length counts > 1 && !best <> Value.TFloat then Value.TString
    else !best
  end

let relation_of_located ?(path = "<csv>") ?(header = true) rows =
  match rows with
  | [] -> Relation.create (Schema.make []) []
  | (_, first) :: rest ->
    let names, data =
      if header then (first, rest)
      else (List.mapi (fun i _ -> Printf.sprintf "c%d" i) first, rows)
    in
    let arity = List.length names in
    let parsed =
      List.map
        (fun (line, row) ->
          if List.length row <> arity then
            raise
              (Parse_error
                 {
                   path;
                   line;
                   msg =
                     Printf.sprintf "row has %d fields, expected %d"
                       (List.length row) arity;
                 });
          List.map Value.parse row)
        data
    in
    let columns =
      List.mapi (fun j _ -> List.map (fun row -> List.nth row j) parsed) names
    in
    let types = List.map infer_type columns in
    let schema = Schema.make (List.combine names types) in
    Relation.create schema (List.map Array.of_list parsed)

let relation_of_rows ?path ?header rows =
  relation_of_located ?path ?header
    (List.mapi (fun i row -> (i + 1, row)) rows)

let relation_of_string ?path ?sep ?header s =
  relation_of_located ?path ?header (parse_rows_loc ?sep s)

let load_file ?sep ?header path =
  relation_of_string ~path ?sep ?header (Fault.Io.read_file path)

let write_channel ?sep ?(header = true) oc rel =
  if header then begin
    output_string oc (render_line ?sep (Schema.names (Relation.schema rel)));
    output_char oc '\n'
  end;
  Relation.iter
    (fun row ->
      let fields = Array.to_list (Array.map Value.to_string row) in
      output_string oc (render_line ?sep fields);
      output_char oc '\n')
    rel

let write_file ?sep ?header path rel =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> write_channel ?sep ?header oc rel)
