#!/bin/sh
# Bench regression check: compare the two newest BENCH_<n>.json files
# (conquer-bench/1 schema) sample by sample and flag medians that grew
# more than the threshold.
#
#   scripts/bench_regression.sh [--threshold PCT] \
#       [--fail-match REGEX] [--fail-threshold PCT] [DIR]
#
# By default the check is warn-only: CI bench boxes are noisy, so a
# regression is a reason to look, not a reason to block.  With
# --fail-match, samples whose "report/name" matches REGEX become
# load-bearing: any of them growing beyond --fail-threshold (default:
# the warn threshold) fails the script with exit 1.  Everything else
# stays warn-only.  Exits 0 when there are fewer than two files.

THRESHOLD=20
FAIL_MATCH=
FAIL_THRESHOLD=
while [ $# -gt 0 ]; do
  case "$1" in
    --threshold)
      THRESHOLD="$2"
      shift 2
      ;;
    --fail-match)
      FAIL_MATCH="$2"
      shift 2
      ;;
    --fail-threshold)
      FAIL_THRESHOLD="$2"
      shift 2
      ;;
    *)
      break
      ;;
  esac
done
DIR="${1:-.}"
[ -n "$FAIL_THRESHOLD" ] || FAIL_THRESHOLD="$THRESHOLD"

# newest two by the numeric suffix bench/main.ml allocates
files=$(ls "$DIR"/BENCH_*.json 2>/dev/null \
  | sed 's/.*BENCH_\([0-9]*\)\.json/\1 &/' \
  | sort -n | awk '{print $2}' | tail -2)
count=$(printf '%s\n' "$files" | grep -c . || true)

if [ "$count" -lt 2 ]; then
  echo "bench-regression: need two BENCH_*.json files, found $count -- nothing to compare"
  exit 0
fi

old=$(printf '%s\n' "$files" | head -1)
new=$(printf '%s\n' "$files" | tail -1)
echo "bench-regression: $old -> $new (warn at ${THRESHOLD}% median growth)"
if [ -n "$FAIL_MATCH" ]; then
  echo "bench-regression: failing when '$FAIL_MATCH' samples grow beyond ${FAIL_THRESHOLD}%"
fi

# one "report|name|median_ms" line per sample; the files are
# machine-written, so splitting objects on "},{" is reliable
medians() {
  tr '{' '\n' < "$1" \
    | grep '"median_ms"' \
    | sed 's/.*"report":"\([^"]*\)","name":"\([^"]*\)".*"median_ms":\([0-9.eE+-]*\).*/\1|\2|\3/'
}

medians "$old" > /tmp/bench_old.$$
medians "$new" > /tmp/bench_new.$$
trap 'rm -f /tmp/bench_old.$$ /tmp/bench_new.$$' EXIT

warned=0
failed=0
while IFS='|' read -r report name new_ms; do
  old_ms=$(grep -F "$report|$name|" /tmp/bench_old.$$ | head -1 | cut -d'|' -f3)
  [ -n "$old_ms" ] || continue
  load_bearing=no
  if [ -n "$FAIL_MATCH" ] && printf '%s' "$report/$name" | grep -Eq "$FAIL_MATCH"; then
    load_bearing=yes
  fi
  verdict=$(awk -v o="$old_ms" -v n="$new_ms" -v t="$THRESHOLD" \
                -v ft="$FAIL_THRESHOLD" -v lb="$load_bearing" 'BEGIN {
    if (o <= 0) { print "skip"; exit }
    pct = (n - o) / o * 100.0
    if (lb == "yes" && pct > ft) printf "FAIL %.1f", pct
    else if (pct > t) printf "WARN %.1f", pct
    else printf "ok %.1f", pct
  }')
  case "$verdict" in
    skip) ;;
    FAIL*)
      pct=${verdict#FAIL }
      echo "  FAIL $report/$name: ${old_ms}ms -> ${new_ms}ms (+${pct}%)"
      failed=$((failed + 1))
      ;;
    WARN*)
      pct=${verdict#WARN }
      echo "  WARN $report/$name: ${old_ms}ms -> ${new_ms}ms (+${pct}%)"
      warned=$((warned + 1))
      ;;
    *)
      pct=${verdict#ok }
      echo "    ok $report/$name: ${old_ms}ms -> ${new_ms}ms (${pct}%)"
      ;;
  esac
done < /tmp/bench_new.$$

if [ "$failed" -gt 0 ]; then
  echo "bench-regression: $failed load-bearing sample(s) regressed beyond ${FAIL_THRESHOLD}% -- failing"
  exit 1
fi
if [ "$warned" -gt 0 ]; then
  echo "bench-regression: $warned sample(s) regressed beyond ${THRESHOLD}% (warn-only, not failing the build)"
else
  echo "bench-regression: no sample regressed beyond ${THRESHOLD}%"
fi
exit 0
