module Value = Dirty.Value
module Relation = Dirty.Relation
module Dirty_db = Dirty.Dirty_db

type config = { sf : float; inconsistency : int; seed : int; fk_noise : float }

let default = { sf = 0.1; inconsistency = 3; seed = 42; fk_noise = 0.1 }

(* ---- vocabulary ---- *)

let region_names = [| "AFRICA"; "AMERICA"; "ASIA"; "EUROPE"; "MIDDLE EAST" |]

let nation_names =
  [|
    "ALGERIA"; "ARGENTINA"; "BRAZIL"; "CANADA"; "EGYPT"; "ETHIOPIA"; "FRANCE";
    "GERMANY"; "INDIA"; "INDONESIA"; "IRAN"; "IRAQ"; "JAPAN"; "JORDAN"; "KENYA";
    "MOROCCO"; "MOZAMBIQUE"; "PERU"; "CHINA"; "ROMANIA"; "SAUDI ARABIA";
    "VIETNAM"; "RUSSIA"; "UNITED KINGDOM"; "UNITED STATES";
  |]

(* nation -> region mapping, TPC-H standard *)
let nation_regions =
  [| 0; 1; 1; 1; 4; 0; 3; 3; 2; 2; 4; 4; 2; 4; 0; 0; 0; 1; 2; 3; 4; 2; 3; 3; 1 |]

let first_names =
  [|
    "James"; "Mary"; "John"; "Patricia"; "Robert"; "Jennifer"; "Michael";
    "Linda"; "William"; "Elizabeth"; "David"; "Barbara"; "Richard"; "Susan";
    "Joseph"; "Jessica"; "Thomas"; "Sarah"; "Charles"; "Karen";
  |]

let last_names =
  [|
    "Smith"; "Johnson"; "Williams"; "Brown"; "Jones"; "Garcia"; "Miller";
    "Davis"; "Rodriguez"; "Martinez"; "Hernandez"; "Lopez"; "Gonzalez";
    "Wilson"; "Anderson"; "Thomas"; "Taylor"; "Moore"; "Jackson"; "Martin";
  |]

let street_names =
  [|
    "Maple"; "Oak"; "Pine"; "Cedar"; "Elm"; "Birch"; "Walnut"; "Chestnut";
    "Spruce"; "Willow"; "Ash"; "Poplar"; "Baldwin"; "Arrow"; "Jones";
  |]

let street_kinds = [| "St"; "Ave"; "Blvd"; "Rd"; "Lane"; "Way" |]

let mktsegments =
  [| "AUTOMOBILE"; "BUILDING"; "FURNITURE"; "MACHINERY"; "HOUSEHOLD" |]

let priorities = [| "1-URGENT"; "2-HIGH"; "3-MEDIUM"; "4-NOT SPECIFIED"; "5-LOW" |]
let shipmodes = [| "REG AIR"; "AIR"; "RAIL"; "SHIP"; "TRUCK"; "MAIL"; "FOB" |]
let shipinstructs =
  [| "DELIVER IN PERSON"; "COLLECT COD"; "NONE"; "TAKE BACK RETURN" |]

let part_adjectives =
  [|
    "almond"; "antique"; "aquamarine"; "azure"; "beige"; "bisque"; "black";
    "blanched"; "blue"; "blush"; "brown"; "burlywood"; "burnished"; "chartreuse";
    "chiffon"; "chocolate"; "coral"; "cornflower"; "cornsilk"; "cream"; "cyan";
    "dark"; "deep"; "dim"; "dodger"; "drab"; "firebrick"; "floral"; "forest";
    "frosted"; "gainsboro"; "ghost"; "goldenrod"; "green"; "grey"; "honeydew";
    "hot"; "indian"; "ivory"; "khaki"; "lace"; "lavender"; "lawn"; "lemon";
  |]

let part_nouns =
  [| "copper"; "steel"; "brass"; "tin"; "nickel"; "zinc"; "iron"; "chrome" |]

let part_types_1 = [| "STANDARD"; "SMALL"; "MEDIUM"; "LARGE"; "ECONOMY"; "PROMO" |]
let part_types_2 = [| "ANODIZED"; "BURNISHED"; "PLATED"; "POLISHED"; "BRUSHED" |]
let part_types_3 = [| "TIN"; "NICKEL"; "BRASS"; "STEEL"; "COPPER" |]

let containers_1 = [| "SM"; "MED"; "LG"; "JUMBO"; "WRAP" |]
let containers_2 = [| "CASE"; "BOX"; "BAG"; "JAR"; "PKG"; "PACK"; "CAN"; "DRUM" |]

let comment_words =
  [|
    "carefully"; "quickly"; "furiously"; "slyly"; "blithely"; "final";
    "special"; "pending"; "express"; "regular"; "ironic"; "even"; "bold";
    "silent"; "daring"; "requests"; "deposits"; "packages"; "accounts";
    "instructions"; "theodolites"; "platelets"; "foxes"; "ideas"; "dependencies";
  |]

(* ---- randomness helpers ---- *)

let pick rng arr = arr.(Random.State.int rng (Array.length arr))
let int_between rng lo hi = lo + Random.State.int rng (hi - lo + 1)

let comment rng =
  let n = int_between rng 3 7 in
  String.concat " " (List.init n (fun _ -> pick rng comment_words))

let date_between rng lo hi =
  match Value.date_of_string lo, Value.date_of_string hi with
  | Value.Date dlo, Value.Date dhi -> int_between rng dlo dhi
  | _ -> assert false

(* ---- perturbations ---- *)

let typo rng s =
  if String.length s < 2 then s
  else
    let b = Bytes.of_string s in
    let i = Random.State.int rng (Bytes.length b - 1) in
    (match Random.State.int rng 4 with
    | 0 ->
      (* transpose adjacent characters *)
      let c = Bytes.get b i in
      Bytes.set b i (Bytes.get b (i + 1));
      Bytes.set b (i + 1) c;
      Bytes.to_string b
    | 1 ->
      (* drop a character *)
      let s = Bytes.to_string b in
      String.sub s 0 i ^ String.sub s (i + 1) (String.length s - i - 1)
    | 2 ->
      (* duplicate a character *)
      let s = Bytes.to_string b in
      String.sub s 0 i ^ String.make 1 s.[i] ^ String.sub s i (String.length s - i)
    | _ ->
      (* replace with a nearby letter *)
      Bytes.set b i (Char.chr (97 + Random.State.int rng 26));
      Bytes.to_string b)

let case_flip s =
  if s = "" then s
  else if s.[0] >= 'A' && s.[0] <= 'Z' then String.lowercase_ascii s
  else String.capitalize_ascii s

let abbreviate s =
  match String.index_opt s ' ' with
  | Some i when i >= 1 -> String.sub s 0 1 ^ "." ^ String.sub s i (String.length s - i)
  | _ -> if String.length s > 4 then String.sub s 0 4 ^ "." else s

let perturb_string rng s =
  match Random.State.int rng 5 with
  | 0 | 1 -> typo rng s
  | 2 -> case_flip s
  | 3 -> abbreviate s
  | _ -> s

let perturb_float rng x =
  let jitter = 1.0 +. ((Random.State.float rng 0.2) -. 0.1) in
  Float.round (x *. jitter *. 100.0) /. 100.0

let perturb_int rng x = max 1 (x + int_between rng (-2) 2)
let perturb_date rng d = d + int_between rng (-3) 3

(* ---- cluster machinery ---- *)

(* Per dirty table we track, for every entity, the rowids of its
   duplicates, so that raw foreign keys can reference a specific
   duplicate. *)
type entity_index = { mutable rowids : int list array }

let cluster_size rng inconsistency =
  if inconsistency <= 1 then 1 else int_between rng 1 ((2 * inconsistency) - 1)

(* emit the duplicate rows of one entity.  [canonical] builds the
   descriptive columns once; [emit] receives (rowid, perturbed or not,
   probability). *)
let with_cluster rng config ~next_rowid ~index ~entity emit =
  let size = cluster_size rng config.inconsistency in
  let prob = 1.0 /. float_of_int size in
  let rowids = ref [] in
  for dup = 0 to size - 1 do
    let rowid = !next_rowid in
    next_rowid := rowid + 1;
    rowids := rowid :: !rowids;
    emit ~rowid ~dup ~prob
  done;
  index.rowids.(entity) <- List.rev !rowids

let raw_fk rng index entity =
  match index.rowids.(entity) with
  | [] -> invalid_arg "Datagen.raw_fk: entity with no rows"
  | rowids -> List.nth rowids (Random.State.int rng (List.length rowids))

(* possibly redirect a duplicate's fk to a different entity *)
let noisy_entity rng config ~num_entities ~dup entity =
  if dup > 0 && num_entities > 1 && Random.State.float rng 1.0 < config.fk_noise
  then begin
    let other = Random.State.int rng num_entities in
    if other = entity then (entity + 1) mod num_entities else other
  end
  else entity

(* ---- table builders ---- *)

let v_i i = Value.Int i
let v_f f = Value.Float f
let v_s s = Value.String s
let v_d d = Value.Date d

let build_region () =
  Relation.create (Schema.region).schema
    (List.init (Array.length region_names) (fun i ->
         [| v_i i; v_s region_names.(i); v_s "clean lookup table"; v_f 1.0 |]))

let build_nation () =
  Relation.create (Schema.nation).schema
    (List.init (Array.length nation_names) (fun i ->
         [| v_i i; v_s nation_names.(i); v_i nation_regions.(i); v_s "clean lookup table"; v_f 1.0 |]))

let person_name rng = pick rng first_names ^ " " ^ pick rng last_names

let address rng =
  Printf.sprintf "%d %s %s" (int_between rng 1 999) (pick rng street_names)
    (pick rng street_kinds)

let phone rng nation =
  Printf.sprintf "%02d-%03d-%03d-%04d" (10 + nation) (int_between rng 100 999)
    (int_between rng 100 999) (int_between rng 1000 9999)

let build_supplier rng config ~count =
  let index = { rowids = Array.make count [] } in
  let next_rowid = ref 0 in
  let rows = ref [] in
  for entity = 0 to count - 1 do
    let name = Printf.sprintf "Supplier %s" (person_name rng) in
    let addr = address rng in
    let nation = Random.State.int rng (Array.length nation_names) in
    let ph = phone rng nation in
    let bal = Random.State.float rng 9999.0 -. 999.0 in
    let cmt = comment rng in
    with_cluster rng config ~next_rowid ~index ~entity (fun ~rowid ~dup ~prob ->
        let p s = if dup = 0 then s else perturb_string rng s in
        rows :=
          [|
            v_i entity; v_i rowid; v_s (p name); v_s (p addr); v_i nation;
            v_s (p ph); v_f (if dup = 0 then bal else perturb_float rng bal);
            v_s (p cmt); v_f prob;
          |]
          :: !rows)
  done;
  (Relation.create (Schema.supplier).schema (List.rev !rows), index)

let build_part rng config ~count =
  let index = { rowids = Array.make count [] } in
  let next_rowid = ref 0 in
  let rows = ref [] in
  for entity = 0 to count - 1 do
    let name =
      Printf.sprintf "%s %s %s" (pick rng part_adjectives) (pick rng part_adjectives)
        (pick rng part_nouns)
    in
    let mfgr = Printf.sprintf "Manufacturer#%d" (int_between rng 1 5) in
    let brand = Printf.sprintf "Brand#%d%d" (int_between rng 1 5) (int_between rng 1 5) in
    let ty =
      Printf.sprintf "%s %s %s" (pick rng part_types_1) (pick rng part_types_2)
        (pick rng part_types_3)
    in
    let size = int_between rng 1 50 in
    let container = pick rng containers_1 ^ " " ^ pick rng containers_2 in
    let price = 900.0 +. Random.State.float rng 1200.0 in
    let cmt = comment rng in
    with_cluster rng config ~next_rowid ~index ~entity (fun ~rowid ~dup ~prob ->
        let p s = if dup = 0 then s else perturb_string rng s in
        rows :=
          [|
            v_i entity; v_i rowid; v_s (p name); v_s mfgr; v_s brand; v_s (p ty);
            v_i (if dup = 0 then size else perturb_int rng size);
            v_s (p container);
            v_f (if dup = 0 then price else perturb_float rng price);
            v_s (p cmt); v_f prob;
          |]
          :: !rows)
  done;
  (Relation.create (Schema.part).schema (List.rev !rows), index)

let build_partsupp rng config ~num_parts ~num_suppliers ~part_index ~supp_index =
  let count = num_parts * 4 in
  let index = { rowids = Array.make count [] } in
  let next_rowid = ref 0 in
  let rows = ref [] in
  (* the (part, supplier) entity pair of each partsupp entity; needed
     again by lineitem generation *)
  let refs = Array.make count (0, 0) in
  for entity = 0 to count - 1 do
    let part_entity = entity / 4 in
    let supp_entity = Random.State.int rng num_suppliers in
    refs.(entity) <- (part_entity, supp_entity);
    let qty = int_between rng 1 9999 in
    let cost = 1.0 +. Random.State.float rng 999.0 in
    let cmt = comment rng in
    with_cluster rng config ~next_rowid ~index ~entity (fun ~rowid ~dup ~prob ->
        let pe =
          noisy_entity rng config ~num_entities:num_parts ~dup part_entity
        in
        let se =
          noisy_entity rng config ~num_entities:num_suppliers ~dup supp_entity
        in
        rows :=
          [|
            v_i entity; v_i rowid; v_i pe; v_i (raw_fk rng part_index pe);
            v_i se; v_i (raw_fk rng supp_index se);
            v_i (if dup = 0 then qty else perturb_int rng qty);
            v_f (if dup = 0 then cost else perturb_float rng cost);
            v_s (if dup = 0 then cmt else perturb_string rng cmt); v_f prob;
          |]
          :: !rows)
  done;
  (Relation.create (Schema.partsupp).schema (List.rev !rows), index, refs)

let build_customer rng config ~count =
  let index = { rowids = Array.make count [] } in
  let next_rowid = ref 0 in
  let rows = ref [] in
  for entity = 0 to count - 1 do
    let name = person_name rng in
    let addr = address rng in
    let nation = Random.State.int rng (Array.length nation_names) in
    let ph = phone rng nation in
    let bal = Random.State.float rng 9999.0 -. 999.0 in
    let seg = pick rng mktsegments in
    let cmt = comment rng in
    with_cluster rng config ~next_rowid ~index ~entity (fun ~rowid ~dup ~prob ->
        let p s = if dup = 0 then s else perturb_string rng s in
        rows :=
          [|
            v_i entity; v_i rowid; v_s (p name); v_s (p addr); v_i nation;
            v_s (p ph); v_f (if dup = 0 then bal else perturb_float rng bal);
            v_s seg; v_s (p cmt); v_f prob;
          |]
          :: !rows)
  done;
  (Relation.create (Schema.customer).schema (List.rev !rows), index)

let build_orders rng config ~count ~num_customers ~cust_index =
  let index = { rowids = Array.make count [] } in
  let next_rowid = ref 0 in
  let rows = ref [] in
  let order_dates = Array.make count 0 in
  for entity = 0 to count - 1 do
    let cust_entity = Random.State.int rng num_customers in
    let status = pick rng [| "F"; "O"; "P" |] in
    let total = 1000.0 +. Random.State.float rng 300_000.0 in
    let odate = date_between rng "1992-01-01" "1998-08-02" in
    order_dates.(entity) <- odate;
    let priority = pick rng priorities in
    let clerk = Printf.sprintf "Clerk#%09d" (int_between rng 1 1000) in
    with_cluster rng config ~next_rowid ~index ~entity (fun ~rowid ~dup ~prob ->
        let ce =
          noisy_entity rng config ~num_entities:num_customers ~dup cust_entity
        in
        rows :=
          [|
            v_i entity; v_i rowid; v_i ce; v_i (raw_fk rng cust_index ce);
            v_s status;
            v_f (if dup = 0 then total else perturb_float rng total);
            v_d (if dup = 0 then odate else perturb_date rng odate);
            v_s priority; v_s clerk; v_i 0; v_f prob;
          |]
          :: !rows)
  done;
  (Relation.create (Schema.orders).schema (List.rev !rows), index, order_dates)

let build_lineitem rng config ~num_orders ~order_index ~order_dates ~num_partsupps
    ~ps_index ~ps_refs =
  (* 1-7 lineitem entities per order entity *)
  let per_order = Array.init num_orders (fun _ -> int_between rng 1 7) in
  let count = Array.fold_left ( + ) 0 per_order in
  let index = { rowids = Array.make (max 1 count) [] } in
  let next_rowid = ref 0 in
  let rows = ref [] in
  let entity = ref 0 in
  for order = 0 to num_orders - 1 do
    for line = 1 to per_order.(order) do
      let e = !entity in
      incr entity;
      let ps_entity = Random.State.int rng num_partsupps in
      let part_entity, supp_entity = ps_refs.(ps_entity) in
      let qty = int_between rng 1 50 in
      let price = float_of_int qty *. (900.0 +. Random.State.float rng 1200.0) in
      let discount = float_of_int (int_between rng 0 10) /. 100.0 in
      let tax = float_of_int (int_between rng 0 8) /. 100.0 in
      let rflag = pick rng [| "R"; "A"; "N" |] in
      let lstatus = pick rng [| "O"; "F" |] in
      let shipdate = order_dates.(order) + int_between rng 1 121 in
      let commitdate = order_dates.(order) + int_between rng 30 90 in
      let receiptdate = shipdate + int_between rng 1 30 in
      with_cluster rng config ~next_rowid ~index ~entity:e
        (fun ~rowid ~dup ~prob ->
          let oe =
            noisy_entity rng config ~num_entities:num_orders ~dup order
          in
          let pse =
            noisy_entity rng config ~num_entities:num_partsupps ~dup ps_entity
          in
          let pe, se =
            if pse = ps_entity then (part_entity, supp_entity) else ps_refs.(pse)
          in
          rows :=
            [|
              v_i e; v_i rowid; v_i oe; v_i (raw_fk rng order_index oe);
              v_i pe; v_i se; v_i pse; v_i (raw_fk rng ps_index pse);
              v_i line;
              v_i (if dup = 0 then qty else perturb_int rng qty);
              v_f (if dup = 0 then price else perturb_float rng price);
              v_f discount; v_f tax; v_s rflag; v_s lstatus;
              v_d (if dup = 0 then shipdate else perturb_date rng shipdate);
              v_d commitdate;
              v_d (if dup = 0 then receiptdate else perturb_date rng receiptdate);
              v_s (pick rng shipinstructs); v_s (pick rng shipmodes); v_f prob;
            |]
            :: !rows)
    done
  done;
  Relation.create (Schema.lineitem).schema (List.rev !rows)

(* ---- entry points ---- *)

(* [sf] fixes the total number of rows; [if] fixes the mean cluster
   size.  Entity counts therefore scale as sf/if, so that
   entities x mean-cluster-size stays (approximately) constant across
   [if] — matching the paper's setup where the database size is set
   by sf alone and Figure 7's propagation time is flat across if. *)
let scaled config base =
  let entities =
    float_of_int base *. config.sf /. float_of_int (max 1 config.inconsistency)
  in
  max 2 (int_of_float (Float.round entities))

let generate config =
  let rng = Random.State.make [| config.seed |] in
  let num_suppliers = scaled config 100 in
  let num_parts = scaled config 200 in
  let num_customers = scaled config 150 in
  let num_orders = scaled config 1500 in
  let region = build_region () in
  let nation = build_nation () in
  let supplier, supp_index = build_supplier rng config ~count:num_suppliers in
  let part, part_index = build_part rng config ~count:num_parts in
  let partsupp, ps_index, ps_refs =
    build_partsupp rng config ~num_parts ~num_suppliers ~part_index ~supp_index
  in
  let customer, cust_index = build_customer rng config ~count:num_customers in
  let orders, order_index, order_dates =
    build_orders rng config ~count:num_orders ~num_customers ~cust_index
  in
  let lineitem =
    build_lineitem rng config ~num_orders ~order_index ~order_dates
      ~num_partsupps:(num_parts * 4) ~ps_index ~ps_refs
  in
  let add db (spec : Schema.table_spec) rel =
    Dirty_db.add_table db
      (Dirty_db.make_table ~name:spec.name ~id_attr:spec.id_attr
         ~prob_attr:spec.prob_attr rel)
  in
  let db = Dirty_db.empty in
  let db = add db Schema.region region in
  let db = add db Schema.nation nation in
  let db = add db Schema.supplier supplier in
  let db = add db Schema.part part in
  let db = add db Schema.partsupp partsupp in
  let db = add db Schema.customer customer in
  let db = add db Schema.orders orders in
  add db Schema.lineitem lineitem

let descriptive_attrs (spec : Schema.table_spec) =
  let skip = ref [ spec.id_attr; spec.prob_attr ] in
  (match spec.rowid_attr with Some r -> skip := r :: !skip | None -> ());
  (* raw foreign keys duplicate the propagated ones; leave both out of
     the summaries *)
  List.filter
    (fun n -> (not (List.mem n !skip)) && not (String.ends_with ~suffix:"_raw" n))
    (Dirty.Schema.names spec.schema)

let assign_probabilities ?distance db =
  List.fold_left
    (fun acc (spec : Schema.table_spec) ->
      match Dirty_db.find_table_opt db spec.name with
      | None -> acc
      | Some table ->
        let attrs = descriptive_attrs spec in
        let table' = Prob.Assign.annotate_table ?distance ~attrs table in
        Dirty_db.add_table acc table')
    Dirty_db.empty
    (List.map (fun (t : Dirty_db.table) -> Schema.spec t.name) (Dirty_db.tables db))

(* columns that must stay fixed when perturbing a duplicate: the
   identifier, row key, probability, and all (raw and propagated)
   foreign keys *)
let protected_attrs (spec : Schema.table_spec) =
  let base = [ spec.id_attr; spec.prob_attr ] in
  let base =
    match spec.rowid_attr with Some r -> r :: base | None -> base
  in
  List.filter
    (fun n ->
      List.mem n base
      || String.ends_with ~suffix:"_raw" n
      || String.ends_with ~suffix:"key" n
      || n = "l_psid")
    (Dirty.Schema.names spec.schema)

let perturb_value rng (v : Value.t) =
  match v with
  | Value.String s -> Value.String (perturb_string rng s)
  | Value.Int i -> Value.Int (perturb_int rng i)
  | Value.Float f -> Value.Float (perturb_float rng f)
  | Value.Date d -> Value.Date (perturb_date rng d)
  | Value.Null | Value.Bool _ -> v

let dirtify ?(config = default) db =
  let rng = Random.State.make [| config.seed |] in
  List.fold_left
    (fun acc (t : Dirty_db.table) ->
      match List.find_opt (fun (s : Schema.table_spec) -> s.name = t.name)
              Schema.dirty_tables
      with
      | None -> Dirty_db.add_table acc t
      | Some spec ->
        let sch = Relation.schema t.relation in
        let prob_idx = Dirty.Schema.index_of sch spec.prob_attr in
        let rowid_idx =
          Option.map (Dirty.Schema.index_of sch) spec.rowid_attr
        in
        let protected_idx =
          List.map (Dirty.Schema.index_of sch) (protected_attrs spec)
        in
        (* fresh row keys continue after the existing maximum *)
        let next_rowid =
          ref
            (1
            + Relation.fold
                (fun acc row ->
                  match rowid_idx with
                  | Some i -> (
                    match Value.to_int row.(i) with
                    | Some r -> max acc r
                    | None -> acc)
                  | None -> acc)
                0 t.relation)
        in
        let out = ref [] in
        Relation.iter
          (fun row ->
            let size = cluster_size rng config.inconsistency in
            let prob = 1.0 /. float_of_int size in
            let original = Array.copy row in
            original.(prob_idx) <- Value.Float prob;
            out := original :: !out;
            for _ = 2 to size do
              let dup = Array.copy row in
              Array.iteri
                (fun j v ->
                  if not (List.mem j protected_idx) then
                    dup.(j) <- perturb_value rng v)
                dup;
              (match rowid_idx with
              | Some i ->
                dup.(i) <- Value.Int !next_rowid;
                incr next_rowid
              | None -> ());
              dup.(prob_idx) <- Value.Float prob;
              out := dup :: !out
            done)
          t.relation;
        let relation = Relation.create sch (List.rev !out) in
        Dirty_db.add_table acc
          (Dirty_db.make_table ~name:spec.name ~id_attr:spec.id_attr
             ~prob_attr:spec.prob_attr relation))
    Dirty_db.empty (Dirty_db.tables db)

let propagations =
  (* (src table, src rowid attr, dst table, raw fk attr, propagated attr) *)
  [
    ("customer", "c_rowid", "orders", "o_custkey_raw", "o_custkey");
    ("part", "p_rowid", "partsupp", "ps_partkey_raw", "ps_partkey");
    ("supplier", "s_rowid", "partsupp", "ps_suppkey_raw", "ps_suppkey");
    ("orders", "o_rowid", "lineitem", "l_orderkey_raw", "l_orderkey");
    ("partsupp", "ps_rowid", "lineitem", "l_psid_raw", "l_psid");
  ]

let propagate_all db =
  List.fold_left
    (fun db (src_name, src_key, dst_name, fk_attr, out_attr) ->
      let src = Dirty_db.find_table db src_name in
      let dst = Dirty_db.find_table db dst_name in
      let dst' = Dirty_db.propagate ~src ~src_key ~dst ~fk_attr ~out_attr in
      let without =
        List.fold_left
          (fun acc (t : Dirty_db.table) ->
            if t.name = dst_name then acc else Dirty_db.add_table acc t)
          Dirty_db.empty (Dirty_db.tables db)
      in
      Dirty_db.add_table without dst')
    db propagations

let row_counts db =
  List.map
    (fun (t : Dirty_db.table) -> (t.name, Relation.cardinality t.relation))
    (Dirty_db.tables db)

let total_rows db = List.fold_left (fun acc (_, n) -> acc + n) 0 (row_counts db)
