test/test_matcher.mli:
