test/test_conquer.mli:
