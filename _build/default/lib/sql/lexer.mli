(** Tokenizer for the SQL subset. *)

type token =
  | IDENT of string       (** lowercased identifier *)
  | KEYWORD of string     (** uppercased reserved word *)
  | INT of int
  | FLOAT of float
  | STRING of string      (** contents of a ['...'] literal *)
  | OP of string          (** one of [=, <>, !=, <, <=, >, >=, +, -, *, /] *)
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | EOF

exception Error of string * int  (** message, byte position *)

val keywords : string list

val tokenize : string -> (token * int) list
(** Tokens paired with their start positions; ends with [EOF].
    Comments ([-- ...] to end of line) and whitespace are skipped.
    @raise Error on an unexpected character or an unterminated string. *)

val token_to_string : token -> string
