(** Directory persistence for dirty databases.

    A database is saved as one CSV file per table plus a
    [manifest.csv] recording each table's identifier and probability
    attributes:

    {v
    dir/
      manifest.csv      -- name,id_attr,prob_attr
      customer.csv
      orders.csv
    v} *)

val save : string -> Dirty_db.t -> unit
(** Write the database into the directory (created if missing;
    existing table files are overwritten). *)

val load : ?validate:bool -> string -> Dirty_db.t
(** Load a database saved by {!save}.  When [validate] (default
    [true]) the per-cluster probability sums are re-checked.
    @raise Sys_error / Dirty_db.Invalid on missing or malformed
    files. *)
