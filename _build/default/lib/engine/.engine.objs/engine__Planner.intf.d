lib/engine/planner.mli: Dirty Plan Sql Stats
