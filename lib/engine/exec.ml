open Dirty

type catalog = {
  relation : string -> Relation.t;
  index : string -> string -> Index.t option;
}

exception Exec_error of string

let exec_errorf fmt = Printf.ksprintf (fun s -> raise (Exec_error s)) fmt

(* ---- telemetry ----

   Per-operator spans and registry counters.  Everything is gated on
   {!Telemetry.Control.enabled}, so the disabled cost on the per-row
   paths is a flag test. *)

let m_operators =
  Telemetry.Metrics.counter "engine.exec.operators"
    ~help:"plan operators evaluated"

let m_rows_out =
  Telemetry.Metrics.counter "engine.exec.rows_out"
    ~help:"rows materialized by plan operators (intermediates included)"

let m_budget_ticks =
  Telemetry.Metrics.counter "engine.exec.budget_ticks"
    ~help:"per-row budget charges inside join emit loops"

let h_operator_seconds =
  Telemetry.Metrics.histogram "engine.exec.operator_seconds"
    ~help:"wall-clock per plan operator (inclusive of children)"

let operator_label (plan : Plan.t) =
  match plan with
  | Scan { table; _ } -> "Scan " ^ table
  | Filter _ -> "Filter"
  | Project _ -> "Project"
  | Hash_join _ -> "HashJoin"
  | Index_join { table; _ } -> "IndexJoin " ^ table
  | Left_outer_join _ -> "LeftOuterJoin"
  | Cross _ -> "CrossProduct"
  | Aggregate _ -> "Aggregate"
  | Sort _ -> "Sort"
  | Distinct _ -> "Distinct"
  | Limit _ -> "Limit"

(* ---- budget accounting ----

   Operators charge the budget per materialized row.  In [Raise] mode
   {!Budget.admit} raises {!Budget.Exceeded} itself; in [Truncate]
   mode it stops admitting rows, and the local [Budget_stop] exception
   unwinds the operator's emit loop so it finishes with the partial
   output produced so far. *)

exception Budget_stop

let tick budget =
  match budget with
  | None -> ()
  | Some b ->
    Telemetry.Metrics.inc m_budget_ticks;
    if Budget.admit b 1 = 0 then raise Budget_stop

(* nodes whose emit loops tick per row; everything else is charged on
   its materialized output at the node boundary *)
let per_row_charged (plan : Plan.t) =
  match plan with
  | Hash_join _ | Left_outer_join _ | Cross _ | Index_join _ -> true
  | Scan _ | Filter _ | Project _ | Aggregate _ | Sort _ | Distinct _ | Limit _ ->
    false

(* Result of a per-row-charged emit loop.  A cancelled execution's
   partial rows are discarded at every node boundary above anyway, so
   don't pay to reverse and materialize a possibly huge accumulator —
   this is part of what keeps cancellation latency bounded. *)
let emit_result budget out_schema out =
  match budget with
  | Some b when Budget.cancelled b -> Relation.create out_schema []
  | _ -> Relation.create out_schema (List.rev !out)

let infer_column_ty rows j =
  let rec go = function
    | [] -> Value.TString
    | row :: rest -> (
      match Value.type_of row.(j) with Some ty -> ty | None -> go rest)
  in
  go rows

let infer_schema names rows =
  Schema.make (List.mapi (fun j name -> (name, infer_column_ty rows j)) names)

let compile schema e =
  try Expr.compile schema e with
  | Expr.Unbound_column c -> exec_errorf "unbound column %s" c
  | Expr.Ambiguous_column c -> exec_errorf "ambiguous column %s" c
  | Expr.Type_error msg -> raise (Exec_error msg)

let predicate schema e =
  let f = compile schema e in
  fun row -> Expr.truth (f row)

(* ---- aggregation ---- *)

type agg_state =
  | Count_state of int ref
  | Sum_state of { mutable int_sum : int; mutable float_sum : float;
                   mutable is_float : bool; mutable seen : bool }
  | Avg_state of { mutable total : float; mutable count : int }
  | Min_state of Value.t option ref
  | Max_state of Value.t option ref

let new_state (f : Sql.Ast.agg_fun) =
  match f with
  | Count -> Count_state (ref 0)
  | Sum -> Sum_state { int_sum = 0; float_sum = 0.0; is_float = false; seen = false }
  | Avg -> Avg_state { total = 0.0; count = 0 }
  | Min -> Min_state (ref None)
  | Max -> Max_state (ref None)

let feed state (v : Value.t option) =
  (* [v] is [None] for count-star, [Some value] otherwise *)
  match state, v with
  | Count_state r, None -> incr r
  | Count_state r, Some v -> if not (Value.is_null v) then incr r
  | Sum_state s, Some v -> (
    if not (Value.is_null v) then
      match v with
      | Value.Int i ->
        s.seen <- true;
        if s.is_float then s.float_sum <- s.float_sum +. float_of_int i
        else s.int_sum <- s.int_sum + i
      | _ -> (
        match Value.to_float v with
        | Some f ->
          s.seen <- true;
          if not s.is_float then begin
            s.is_float <- true;
            s.float_sum <- float_of_int s.int_sum
          end;
          s.float_sum <- s.float_sum +. f
        | None -> exec_errorf "SUM of non-numeric value %s" (Value.to_string v)))
  | Avg_state s, Some v -> (
    if not (Value.is_null v) then
      match Value.to_float v with
      | Some f ->
        s.total <- s.total +. f;
        s.count <- s.count + 1
      | None -> exec_errorf "AVG of non-numeric value %s" (Value.to_string v))
  | Min_state r, Some v ->
    if not (Value.is_null v) then begin
      match !r with
      | None -> r := Some v
      | Some m -> if Value.compare v m < 0 then r := Some v
    end
  | Max_state r, Some v ->
    if not (Value.is_null v) then begin
      match !r with
      | None -> r := Some v
      | Some m -> if Value.compare v m > 0 then r := Some v
    end
  | (Sum_state _ | Avg_state _ | Min_state _ | Max_state _), None ->
    exec_errorf "aggregate other than COUNT requires an argument"

let finish = function
  | Count_state r -> Value.Int !r
  | Sum_state s ->
    if not s.seen then Value.Null
    else if s.is_float then Value.Float s.float_sum
    else Value.Int s.int_sum
  | Avg_state s ->
    if s.count = 0 then Value.Null else Value.Float (s.total /. float_of_int s.count)
  | Min_state r | Max_state r -> Option.value ~default:Value.Null !r

(* Collect the distinct aggregate calls appearing in the given
   expressions, in syntactic order. *)
let collect_aggs exprs =
  let seen = ref [] in
  let rec go (e : Sql.Ast.expr) =
    match e with
    | Agg (_, _) -> if not (List.mem e !seen) then seen := e :: !seen
    | Lit _ | Col _ | Exists _ | Scalar_subquery _ -> ()
    | Unop (_, a) | Like (a, _) | Not_like (a, _) | In_list (a, _)
    | Is_null a | Is_not_null a | In_query (a, _) ->
      go a
    | Binop (_, a, b) -> go a; go b
    | Between (a, b, c) -> go a; go b; go c
  in
  List.iter go exprs;
  List.rev !seen

(* Substitute group-by expressions and aggregate calls with references
   to the intermediate columns #g<i> / #a<i>. *)
let rewrite_grouped ~group_by ~aggs e =
  let rec go (e : Sql.Ast.expr) : Sql.Ast.expr =
    match List.find_index (Sql.Ast.equal_expr e) group_by with
    | Some i -> Col { table = None; name = Printf.sprintf "#g%d" i }
    | None -> (
      match List.find_index (Sql.Ast.equal_expr e) aggs with
      | Some i -> Col { table = None; name = Printf.sprintf "#a%d" i }
      | None -> (
        match e with
        | Lit _ | Col _ -> e
        | Unop (op, a) -> Unop (op, go a)
        | Binop (op, a, b) -> Binop (op, go a, go b)
        | Like (a, p) -> Like (go a, p)
        | Not_like (a, p) -> Not_like (go a, p)
        | In_list (a, vs) -> In_list (go a, vs)
        | Between (a, b, c) -> Between (go a, go b, go c)
        | Is_null a -> Is_null (go a)
        | Is_not_null a -> Is_not_null (go a)
        | In_query (a, q) -> In_query (go a, q)
        | Exists _ | Scalar_subquery _ -> e
        | Agg _ ->
          exec_errorf "nested aggregate: %s" (Sql.Pretty.expr_to_string e)))
  in
  go e

module Key = struct
  type t = Value.t array

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec loop i = i >= Array.length a || (Value.equal a.(i) b.(i) && loop (i + 1)) in
    loop 0

  let hash a = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 a
end

module Ktbl = Hashtbl.Make (Key)

(* ---- partition-parallel helpers ----

   Operators with enough rows split their input into contiguous
   chunks, evaluate the chunks on the domain pool, and concatenate the
   per-chunk results in chunk order — so the output row order (and
   hence every downstream result) is bit-identical to a serial run.
   Small inputs stay serial: below [Parallel.min_rows_per_chunk] per
   requested job the handoff costs more than it saves. *)

let use_parallel ~jobs n = jobs > 1 && n >= jobs * !Parallel.min_rows_per_chunk

(* split [0..n-1] into contiguous ranges, a few per job so chunk
   stealing evens out skew; returns [(offset, length)] pairs *)
let chunk_ranges ~jobs n =
  let max_chunks = max 1 (n / max 1 !Parallel.min_rows_per_chunk) in
  let chunks = max 1 (min (jobs * 4) max_chunks) in
  let base = n / chunks and extra = n mod chunks in
  Array.init chunks (fun i ->
      let lo = (i * base) + min i extra in
      let len = base + if i < extra then 1 else 0 in
      (lo, len))

(* positive partition id for a group/join key *)
let key_pid ~nparts key = Key.hash key land max_int mod nparts

(* cancellation token forwarded to parallel regions: only in [Raise]
   budget mode, where aborting a region with [Cancel.Cancelled] is the
   desired outcome.  Truncate-mode executions must return partial
   rows, so their regions run to completion and the stop is observed
   at the next node boundary instead. *)
let region_cancel budget =
  match budget with
  | Some b when Budget.mode b = Budget.Raise -> Budget.cancel_token b
  | _ -> None

(* chunked parallel filter; preserves row order exactly *)
let run_filter ?cancel ~jobs pred rel =
  let rows = Relation.rows rel in
  let n = Array.length rows in
  if not (use_parallel ~jobs n) then Relation.filter pred rel
  else begin
    let ranges = chunk_ranges ~jobs n in
    let parts =
      Parallel.init ?cancel ~jobs (Array.length ranges) (fun ci ->
          let lo, len = ranges.(ci) in
          let acc = ref [] in
          for i = lo + len - 1 downto lo do
            if pred rows.(i) then acc := rows.(i) :: !acc
          done;
          !acc)
    in
    Relation.create (Relation.schema rel) (List.concat (Array.to_list parts))
  end

(* chunked parallel row mapping (Project); order-preserving *)
let run_map_rows ?cancel ~jobs f rel =
  let rows = Relation.rows rel in
  let n = Array.length rows in
  if not (use_parallel ~jobs n) then List.map f (Array.to_list rows)
  else begin
    let ranges = chunk_ranges ~jobs n in
    let parts =
      Parallel.init ?cancel ~jobs (Array.length ranges) (fun ci ->
          let lo, len = ranges.(ci) in
          List.init len (fun i -> f rows.(lo + i)))
    in
    List.concat (Array.to_list parts)
  end

(* an aggregate argument: count-star or a compiled expression *)
type agg_arg = Star_arg | Expr_arg of (Relation.row -> Value.t)

let feed_arg state arg row =
  match arg with
  | Star_arg -> feed state None
  | Expr_arg f -> feed state (Some (f row))

let run_aggregate ?cancel ~jobs input ~group_by ~items ~having =
  let in_schema = Relation.schema input in
  let key_fns = Array.of_list (List.map (compile in_schema) group_by) in
  let num_keys = Array.length key_fns in
  let exprs = List.map fst items @ Option.to_list having in
  let aggs = collect_aggs exprs in
  let agg_specs =
    Array.of_list
      (List.map
         (fun e ->
           match (e : Sql.Ast.expr) with
           | Agg (f, None) -> (f, Star_arg)
           | Agg (f, Some arg) -> (f, Expr_arg (compile in_schema arg))
           | _ -> assert false)
         aggs)
  in
  let num_aggs = Array.length agg_specs in
  let new_states () = Array.map (fun (f, _) -> new_state f) agg_specs in
  let rows = Relation.rows input in
  let n = Array.length rows in
  let feed_row states row =
    for i = 0 to num_aggs - 1 do
      feed_arg states.(i) (snd agg_specs.(i)) row
    done
  in
  (* Parallel grouping partitions GROUPS (by key hash), not rows: a
     partition owns every row of its groups and feeds them in original
     row order, so per-group accumulation (including float order) is
     exactly the serial one.  Merging sorts partitions' groups by
     first-occurrence row index, recovering serial group order — the
     whole operator is bit-identical to serial.  Ungrouped aggregates
     have a single group and stay serial. *)
  let finished_rows =
    if num_keys > 0 && use_parallel ~jobs n then begin
      let keys = Array.make n [||] in
      let nparts = min jobs Parallel.max_jobs in
      let pids = Array.make n 0 in
      let ranges = chunk_ranges ~jobs n in
      Parallel.run ?cancel ~jobs (Array.length ranges) (fun ci ->
          let lo, len = ranges.(ci) in
          for i = lo to lo + len - 1 do
            let key = Array.init num_keys (fun j -> key_fns.(j) rows.(i)) in
            keys.(i) <- key;
            pids.(i) <- key_pid ~nparts key
          done);
      let per_part =
        Parallel.init ?cancel ~jobs nparts (fun p ->
            let groups = Ktbl.create 64 in
            (* (first-occurrence row index, key, states), reversed *)
            let entries = ref [] in
            for i = 0 to n - 1 do
              if pids.(i) = p then begin
                let states =
                  match Ktbl.find_opt groups keys.(i) with
                  | Some states -> states
                  | None ->
                    let states = new_states () in
                    Ktbl.add groups keys.(i) states;
                    entries := (i, keys.(i), states) :: !entries;
                    states
                in
                feed_row states rows.(i)
              end
            done;
            List.rev !entries)
      in
      let merged =
        List.sort
          (fun (a, _, _) (b, _, _) -> Int.compare a b)
          (List.concat (Array.to_list per_part))
      in
      List.map
        (fun (_, key, states) -> Array.append key (Array.map finish states))
        merged
    end
    else begin
      let groups = Ktbl.create 256 in
      let order = ref [] in
      Array.iter
        (fun row ->
          let key = Array.init num_keys (fun i -> key_fns.(i) row) in
          let states =
            match Ktbl.find_opt groups key with
            | Some states -> states
            | None ->
              let states = new_states () in
              Ktbl.add groups key states;
              order := key :: !order;
              states
          in
          feed_row states row)
        rows;
      (* SQL semantics: an ungrouped aggregate over an empty input
         yields a single row of initial aggregate values *)
      if group_by = [] && Ktbl.length groups = 0 then begin
        Ktbl.add groups [||] (new_states ());
        order := [ [||] ]
      end;
      List.rev_map
        (fun key ->
          let states = Ktbl.find groups key in
          Array.append key (Array.map finish states))
        !order
    end
  in
  (* fast path: the output columns are exactly the group columns
     followed by the aggregates, and no HAVING — emit directly *)
  let rewritten_items =
    List.map (fun (e, n) -> (rewrite_grouped ~group_by ~aggs e, n)) items
  in
  let is_passthrough =
    having = None
    && List.length items = num_keys + num_aggs
    && List.for_all2
         (fun (e, _) i ->
           match (e : Sql.Ast.expr) with
           | Col { table = None; name } ->
             name
             = (if i < num_keys then Printf.sprintf "#g%d" i
                else Printf.sprintf "#a%d" (i - num_keys))
           | _ -> false)
         rewritten_items
         (List.init (List.length items) Fun.id)
  in
  if is_passthrough then
    Relation.create (infer_schema (List.map snd items) finished_rows) finished_rows
  else begin
    let inter_names =
      List.mapi (fun i _ -> Printf.sprintf "#g%d" i) group_by
      @ List.mapi (fun i _ -> Printf.sprintf "#a%d" i) aggs
    in
    let inter_schema = infer_schema inter_names finished_rows in
    let inter = Relation.create inter_schema finished_rows in
    let inter =
      match having with
      | None -> inter
      | Some h ->
        let h' = rewrite_grouped ~group_by ~aggs h in
        Relation.filter (predicate inter_schema h') inter
    in
    let out_names = List.map snd items in
    let out_fns = List.map (fun (e, _) -> compile inter_schema e) rewritten_items in
    let out_rows =
      List.map
        (fun row -> Array.of_list (List.map (fun f -> f row) out_fns))
        (Relation.row_list inter)
    in
    Relation.create (infer_schema out_names out_rows) out_rows
  end

(* ---- joins ---- *)

(* A build-side bucket.  Rows are consed during the build (so they sit
   in reverse scan order) and reversed in place exactly once — lazily
   at the bucket's first probe hit in the serial path, eagerly after
   the partition build in the parallel path (probes there run on other
   domains and must not mutate).  Either way we never rebuild the
   whole table just to fix bucket order. *)
type bucket = { mutable b_rows : Relation.row list; mutable b_ordered : bool }

let bucket_add table key row =
  match Ktbl.find_opt table key with
  | Some b -> b.b_rows <- row :: b.b_rows
  | None -> Ktbl.add table key { b_rows = [ row ]; b_ordered = false }

let bucket_rows b =
  if not b.b_ordered then begin
    b.b_rows <- List.rev b.b_rows;
    b.b_ordered <- true
  end;
  b.b_rows

let run_hash_join ?budget ~jobs left right ~left_keys ~right_keys =
  let ls = Relation.schema left and rs = Relation.schema right in
  let lf = List.map (compile ls) left_keys and rf = List.map (compile rs) right_keys in
  let out_schema = Schema.append ls rs in
  let lrows = Relation.rows left and rrows = Relation.rows right in
  let nl = Array.length lrows and nr = Array.length rrows in
  let probe_key fns row =
    let key = Array.of_list (List.map (fun f -> f row) fns) in
    if Array.exists Value.is_null key then None else Some key
  in
  (* With a budget in force the join stays serial: rows are charged as
     they are emitted, and a parallel emit would make the Truncate
     prefix depend on scheduling. *)
  if Option.is_some budget || not (use_parallel ~jobs (nl + nr)) then begin
    let table = Ktbl.create (max 16 nr) in
    Array.iter
      (fun row ->
        match probe_key rf row with
        | Some key -> bucket_add table key row
        | None -> ())
      rrows;
    let out = ref [] in
    (try
       Array.iter
         (fun lrow ->
           match probe_key lf lrow with
           | None -> ()
           | Some key -> (
             match Ktbl.find_opt table key with
             | None -> ()
             | Some b ->
               List.iter
                 (fun rrow ->
                   tick budget;
                   out := Array.append lrow rrow :: !out)
                 (bucket_rows b)))
         lrows
     with Budget_stop -> ());
    emit_result budget out_schema out
  end
  else begin
    (* radix-partitioned build: extract build keys in parallel, build
       one sub-table per key partition in parallel (each partition
       scans the key array, touching only its own rows), then probe
       left chunks in parallel against the read-only tables.  Chunk
       outputs concatenate in order, so the result is bit-identical to
       the serial join. *)
    let nparts = min jobs Parallel.max_jobs in
    let rkeys = Array.make nr None in
    let rpids = Array.make nr 0 in
    let branges = chunk_ranges ~jobs nr in
    Parallel.run ~jobs (Array.length branges) (fun ci ->
        let lo, len = branges.(ci) in
        for i = lo to lo + len - 1 do
          match probe_key rf rrows.(i) with
          | Some key ->
            rkeys.(i) <- Some key;
            rpids.(i) <- key_pid ~nparts key
          | None -> ()
        done);
    let tables =
      Parallel.init ~jobs nparts (fun p ->
          let table = Ktbl.create (max 16 (nr / nparts)) in
          for i = 0 to nr - 1 do
            match rkeys.(i) with
            | Some key when rpids.(i) = p -> bucket_add table key rrows.(i)
            | _ -> ()
          done;
          Ktbl.iter
            (fun _ b ->
              b.b_rows <- List.rev b.b_rows;
              b.b_ordered <- true)
            table;
          table)
    in
    let pranges = chunk_ranges ~jobs nl in
    let parts =
      Parallel.init ~jobs (Array.length pranges) (fun ci ->
          let lo, len = pranges.(ci) in
          let acc = ref [] in
          for i = lo to lo + len - 1 do
            let lrow = lrows.(i) in
            match probe_key lf lrow with
            | None -> ()
            | Some key -> (
              match Ktbl.find_opt tables.(key_pid ~nparts key) key with
              | None -> ()
              | Some b ->
                List.iter
                  (fun rrow -> acc := Array.append lrow rrow :: !acc)
                  b.b_rows)
          done;
          List.rev !acc)
    in
    Relation.create out_schema (List.concat (Array.to_list parts))
  end

(* Find an equality conjunct of [on] whose sides resolve strictly on
   the two inputs, to drive a hash path for the outer join; the rest
   of [on] is verified per candidate pair. *)
let split_outer_condition ls rs on =
  let resolves schema e =
    try
      List.iter (fun c -> ignore (Expr.resolve schema c)) (Sql.Ast.expr_columns e);
      Sql.Ast.expr_columns e <> []
    with Expr.Unbound_column _ | Expr.Ambiguous_column _ -> false
  in
  let conjuncts = Sql.Ast.conjuncts on in
  (* [acc] holds the skipped conjuncts in reverse; rev_append restores
     their order — consing keeps the scan linear in the conjunct count *)
  let rec pick acc = function
    | [] -> None
    | (Sql.Ast.Binop (Eq, a, b) as c) :: rest ->
      if resolves ls a && resolves rs b then Some ((a, b), List.rev_append acc rest)
      else if resolves rs a && resolves ls b then
        Some ((b, a), List.rev_append acc rest)
      else pick (c :: acc) rest
    | c :: rest -> pick (c :: acc) rest
  in
  pick [] conjuncts

let run_left_outer_join ?budget lrel rrel ~on =
  let ls = Relation.schema lrel and rs = Relation.schema rrel in
  let out_schema = Schema.append ls rs in
  let nulls = Array.make (Schema.arity rs) Dirty.Value.Null in
  let out = ref [] in
  (try
     match split_outer_condition ls rs on with
  | Some ((lkey, rkey), residual) ->
    let lf = compile ls lkey and rf = compile rs rkey in
    let table = Ktbl.create (max 16 (Relation.cardinality rrel)) in
    let add_bucket key row =
      let existing = Option.value ~default:[] (Ktbl.find_opt table key) in
      Ktbl.replace table key (row :: existing)
    in
    Relation.iter
      (fun rrow ->
        let key = [| rf rrow |] in
        if not (Value.is_null key.(0)) then add_bucket key rrow)
      rrel;
    let residual_pred =
      match Sql.Ast.conj residual with
      | None -> fun _ -> true
      | Some pred -> predicate out_schema pred
    in
    Relation.iter
      (fun lrow ->
        let key = [| lf lrow |] in
        let matches =
          if Value.is_null key.(0) then []
          else
            List.filter
              (fun combined -> residual_pred combined)
              (List.rev_map
                 (fun rrow -> Array.append lrow rrow)
                 (Option.value ~default:[] (Ktbl.find_opt table key)))
        in
        match matches with
        | [] ->
          tick budget;
          out := Array.append lrow nulls :: !out
        | rows ->
          List.iter
            (fun row ->
              tick budget;
              out := row :: !out)
            (List.rev rows))
      lrel
  | None ->
    (* general nested-loop outer join *)
    let pred = predicate out_schema on in
    Relation.iter
      (fun lrow ->
        let matched = ref false in
        Relation.iter
          (fun rrow ->
            let combined = Array.append lrow rrow in
            if pred combined then begin
              matched := true;
              tick budget;
              out := combined :: !out
            end)
          rrel;
        if not !matched then begin
          tick budget;
          out := Array.append lrow nulls :: !out
        end)
      lrel
   with Budget_stop -> ());
  emit_result budget out_schema out

(* ---- main interpreter ----

   The interpreter threads a [hook] around every node's evaluation so
   that {!run_profiled} can record per-operator statistics without a
   second copy of the evaluation logic. *)

let rec run_hooked budget jobs hook catalog (plan : Plan.t) : Relation.t =
  (* bail out of deep plans promptly when the clock has run out *)
  (match budget with None -> () | Some b -> Budget.check_time b);
  let eval_node () =
    hook plan (fun () ->
        eval budget jobs hook catalog (resolve_node budget jobs catalog plan))
  in
  let rel =
    if not (Telemetry.Control.enabled ()) then eval_node ()
    else
      Telemetry.Span.with_ ~name:("exec." ^ operator_label plan) (fun () ->
          let t0 = Unix.gettimeofday () in
          let rel = eval_node () in
          Telemetry.Metrics.observe h_operator_seconds (Unix.gettimeofday () -. t0);
          let n = Relation.cardinality rel in
          Telemetry.Metrics.inc m_operators;
          Telemetry.Metrics.inc ~n m_rows_out;
          Telemetry.Span.add_attr "rows_out" (string_of_int n);
          rel)
  in
  match budget with
  | None -> rel
  | Some _ when per_row_charged plan -> rel
  | Some b ->
    let n = Relation.cardinality rel in
    let allowed = Budget.admit b n in
    if allowed >= n then rel
    else Relation.of_array (Relation.schema rel) (Array.sub (Relation.rows rel) 0 allowed)

(* ---- uncorrelated subqueries ----

   Subquery expressions are resolved when the node holding them is
   evaluated: the subquery is planned and run against the catalog's
   base tables, and its result replaces the expression (a value list
   for IN, a boolean for EXISTS, a scalar for value subqueries).
   Correlated references fail inside the subquery's own planning with
   an unbound-column error. *)

and eval_subquery budget jobs catalog (q : Sql.Ast.query) : Relation.t =
  let env : Planner.env =
    {
      schema_of =
        (fun name ->
          match catalog.relation name with
          | rel -> Some (Relation.schema rel)
          | exception Not_found -> None);
      stats_of = (fun _ -> None);
      has_index = (fun table attr -> catalog.index table attr <> None);
    }
  in
  let plan =
    try Planner.plan env q
    with Planner.Plan_error msg -> exec_errorf "in subquery: %s" msg
  in
  run_hooked budget jobs (fun _ f -> f ()) catalog plan

and scalar_of_subquery budget jobs catalog q =
  let rel = eval_subquery budget jobs catalog q in
  if Schema.arity (Relation.schema rel) <> 1 then
    exec_errorf "scalar subquery must return one column";
  match Relation.cardinality rel with
  | 0 -> Value.Null
  | 1 -> (Relation.get rel 0).(0)
  | n -> exec_errorf "scalar subquery returned %d rows" n

and resolve_expr budget jobs catalog (e : Sql.Ast.expr) : Sql.Ast.expr =
  let go = resolve_expr budget jobs catalog in
  match e with
  | In_query (x, q) ->
    let rel = eval_subquery budget jobs catalog q in
    if Schema.arity (Relation.schema rel) <> 1 then
      exec_errorf "IN subquery must return one column";
    let values =
      Relation.fold
        (fun acc row -> if Value.is_null row.(0) then acc else row.(0) :: acc)
        [] rel
    in
    In_list (go x, List.rev values)
  | Exists q ->
    Lit (Value.Bool (not (Relation.is_empty (eval_subquery budget jobs catalog q))))
  | Scalar_subquery q -> Lit (scalar_of_subquery budget jobs catalog q)
  | Lit _ | Col _ | Agg (_, None) -> e
  | Agg (f, Some a) -> Agg (f, Some (go a))
  | Unop (op, a) -> Unop (op, go a)
  | Binop (op, a, b) -> Binop (op, go a, go b)
  | Like (a, p) -> Like (go a, p)
  | Not_like (a, p) -> Not_like (go a, p)
  | In_list (a, vs) -> In_list (go a, vs)
  | Between (a, b, c) -> Between (go a, go b, go c)
  | Is_null a -> Is_null (go a)
  | Is_not_null a -> Is_not_null (go a)

and resolve_if_needed budget jobs catalog e =
  if Sql.Ast.has_subqueries e then resolve_expr budget jobs catalog e else e

and resolve_node budget jobs catalog (plan : Plan.t) : Plan.t =
  let r = resolve_if_needed budget jobs catalog in
  match plan with
  | Scan _ | Distinct _ | Limit _ -> plan
  | Filter { input; pred } -> Filter { input; pred = r pred }
  | Project { input; items } ->
    Project { input; items = List.map (fun (e, n) -> (r e, n)) items }
  | Hash_join { left; right; left_keys; right_keys } ->
    Hash_join
      {
        left;
        right;
        left_keys = List.map r left_keys;
        right_keys = List.map r right_keys;
      }
  | Index_join j -> Index_join { j with left_keys = List.map r j.left_keys }
  | Left_outer_join { left; right; on } ->
    Left_outer_join { left; right; on = r on }
  | Cross _ -> plan
  | Aggregate { input; group_by; items; having } ->
    Aggregate
      {
        input;
        group_by = List.map r group_by;
        items = List.map (fun (e, n) -> (r e, n)) items;
        having = Option.map r having;
      }
  | Sort { input; keys } ->
    Sort { input; keys = List.map (fun (e, d) -> (r e, d)) keys }

and eval budget jobs hook catalog (plan : Plan.t) : Relation.t =
  let run catalog plan =
    let rel = run_hooked budget jobs hook catalog plan in
    (* Once a Truncate-mode budget has stopped, every node boundary
       above the stop admits 0 rows anyway — so hand parents an empty
       input instead of letting them process (then discard) a large
       partial intermediate.  This is what bounds cancellation latency:
       after the token trips mid-join, the plan unwinds without paying
       for filters/projections over millions of doomed rows. *)
    match budget with
    | Some b when Budget.exhausted b ->
      Relation.of_array (Relation.schema rel) [||]
    | _ -> rel
  in
  let cancel = region_cancel budget in
  match plan with
  | Scan { table; alias } ->
    let rel =
      try catalog.relation table
      with Not_found -> exec_errorf "unknown table %s" table
    in
    let schema = Schema.rename ~prefix:alias (Relation.schema rel) in
    Relation.of_array schema (Relation.rows rel)
  | Filter { input; pred } ->
    let rel = run catalog input in
    run_filter ?cancel ~jobs (predicate (Relation.schema rel) pred) rel
  | Project { input; items } ->
    let rel = run catalog input in
    let schema = Relation.schema rel in
    let fns = List.map (fun (e, _) -> compile schema e) items in
    let rows =
      run_map_rows ?cancel ~jobs
        (fun row -> Array.of_list (List.map (fun f -> f row) fns))
        rel
    in
    Relation.create (infer_schema (List.map snd items) rows) rows
  | Hash_join { left; right; left_keys; right_keys } ->
    run_hash_join ?budget ~jobs (run catalog left) (run catalog right) ~left_keys
      ~right_keys
  | Left_outer_join { left; right; on } ->
    run_left_outer_join ?budget (run catalog left) (run catalog right) ~on
  | Index_join { left; table; alias; left_keys; right_attrs } -> (
    let base =
      try catalog.relation table
      with Not_found -> exec_errorf "unknown table %s" table
    in
    match right_attrs with
    | [] -> exec_errorf "index join with no key attributes"
    | first_attr :: other_attrs -> (
      match catalog.index table first_attr with
      | None -> exec_errorf "no index on %s.%s" table first_attr
      | Some index ->
        let lrel = run catalog left in
        let ls = Relation.schema lrel in
        let lf =
          match List.map (compile ls) left_keys with
          | [] -> exec_errorf "index join with no probe keys"
          | f :: fs -> (f, fs)
        in
        let other_idx =
          List.map (Schema.index_of (Relation.schema base)) other_attrs
        in
        let out_schema =
          Schema.append ls (Schema.rename ~prefix:alias (Relation.schema base))
        in
        let out = ref [] in
        (try
           Relation.iter
             (fun lrow ->
               let first_f, rest_f = lf in
               let probe = first_f lrow in
               if not (Value.is_null probe) then
                 List.iter
                   (fun i ->
                     let rrow = Relation.get base i in
                     (* residual equalities on the remaining key attrs *)
                     let rest_vals = List.map (fun f -> f lrow) rest_f in
                     let ok =
                       List.for_all2
                         (fun v j -> Value.equal v rrow.(j))
                         rest_vals other_idx
                     in
                     if ok then begin
                       tick budget;
                       out := Array.append lrow rrow :: !out
                     end)
                   (Index.lookup index probe))
             lrel
         with Budget_stop -> ());
        emit_result budget out_schema out))
  | Cross (a, b) ->
    let ra = run catalog a and rb = run catalog b in
    let schema = Schema.append (Relation.schema ra) (Relation.schema rb) in
    let out = ref [] in
    (try
       Relation.iter
         (fun rowa ->
           Relation.iter
             (fun rowb ->
               tick budget;
               out := Array.append rowa rowb :: !out)
             rb)
         ra
     with Budget_stop -> ());
    emit_result budget schema out
  | Aggregate { input; group_by; items; having } ->
    run_aggregate ?cancel ~jobs (run catalog input) ~group_by ~items ~having
  | Sort { input; keys } ->
    let rel = run catalog input in
    let schema = Relation.schema rel in
    let compiled = List.map (fun (e, desc) -> (compile schema e, desc)) keys in
    let cmp a b =
      let rec go = function
        | [] -> 0
        | (f, desc) :: rest ->
          let c = Value.compare (f a) (f b) in
          if c <> 0 then if desc then -c else c else go rest
      in
      go compiled
    in
    Relation.sort_by cmp rel
  | Distinct input -> Relation.distinct (run catalog input)
  | Limit (input, n) ->
    let rel = run catalog input in
    let keep = min n (Relation.cardinality rel) in
    Relation.of_array (Relation.schema rel)
      (Array.sub (Relation.rows rel) 0 keep)

let run ?budget ?(jobs = 1) catalog plan =
  (* evaluation-time type errors surface as engine errors *)
  try run_hooked budget jobs (fun _ f -> f ()) catalog plan
  with Expr.Type_error msg -> raise (Exec_error msg)

type profile = {
  operator : string;
  out_rows : int;
  elapsed : float;
  children : profile list;
}

let run_profiled ?budget ?(jobs = 1) catalog plan =
  (* a stack of children accumulators: the hook pushes a frame before
     evaluating a node and folds the completed profile into the
     parent's frame afterwards *)
  let stack = ref [ [] ] in
  let hook node f =
    stack := [] :: !stack;
    let t0 = Unix.gettimeofday () in
    let rel = f () in
    let elapsed = Unix.gettimeofday () -. t0 in
    (match !stack with
    | children :: parent :: rest ->
      let p =
        {
          operator = operator_label node;
          out_rows = Relation.cardinality rel;
          elapsed;
          children = List.rev children;
        }
      in
      stack := (p :: parent) :: rest
    | _ -> assert false);
    rel
  in
  let rel =
    try run_hooked budget jobs hook catalog plan
    with Expr.Type_error msg -> raise (Exec_error msg)
  in
  match !stack with
  | [ [ root ] ] -> (rel, root)
  | _ -> raise (Exec_error "run_profiled: unbalanced profile stack")

let rec pp_profile_indent fmt indent p =
  Format.fprintf fmt "%s%s  rows=%d  time=%.3fms@\n"
    (String.make indent ' ')
    p.operator p.out_rows (p.elapsed *. 1000.0);
  List.iter (pp_profile_indent fmt (indent + 2)) p.children

let pp_profile fmt p = pp_profile_indent fmt 0 p
