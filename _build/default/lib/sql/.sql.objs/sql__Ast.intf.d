lib/sql/ast.mli: Dirty
