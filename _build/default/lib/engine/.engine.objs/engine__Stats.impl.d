lib/engine/stats.ml: Array Dirty Float Hashtbl List Option Relation Schema Seq Sql Value
