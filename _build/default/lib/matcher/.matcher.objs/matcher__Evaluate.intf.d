lib/matcher/evaluate.mli: Dirty Format
