examples/crm.ml: Array Conquer Dirty Engine Fun List Option Printf Prob
