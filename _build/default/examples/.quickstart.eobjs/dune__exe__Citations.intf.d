examples/citations.mli:
