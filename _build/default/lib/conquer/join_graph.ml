type arc = {
  from_alias : string;
  from_attr : string;
  to_alias : string;
  to_attr : string;
}

type join_kind =
  | Fk_join of arc
  | Id_id_join of string * string
  | Non_id_join of string * string

type t = {
  vertices : string list;
  arcs : arc list;
  joins : (Sql.Ast.expr * join_kind) list;
  non_equality : Sql.Ast.expr list;
}

exception Unresolved of string

let unresolvedf fmt = Printf.ksprintf (fun s -> raise (Unresolved s)) fmt

type binding = {
  alias : string;
  table : string;
  schema : Dirty.Schema.t;
  info : Dirty_schema.table_info option;
}

let bindings_of env (q : Sql.Ast.query) =
  List.map
    (fun ({ table; t_alias } : Sql.Ast.table_ref) ->
      let alias = Option.value ~default:table t_alias in
      match env.Dirty_schema.schema_of table with
      | None -> unresolvedf "unknown table %s" table
      | Some schema -> { alias; table; schema; info = env.Dirty_schema.info_of table })
    q.from

let owner bindings (c : Sql.Ast.column) =
  match c.table with
  | Some t -> (
    match List.find_opt (fun b -> b.alias = t) bindings with
    | Some b when Dirty.Schema.mem b.schema c.name -> b
    | Some _ -> unresolvedf "column %s.%s not found" t c.name
    | None -> unresolvedf "unknown alias %s" t)
  | None -> (
    match List.filter (fun b -> Dirty.Schema.mem b.schema c.name) bindings with
    | [ b ] -> b
    | [] -> unresolvedf "unbound column %s" c.name
    | _ -> unresolvedf "ambiguous column %s" c.name)

let is_identifier binding attr =
  match binding.info with
  | Some { id_attr; _ } -> String.lowercase_ascii attr = id_attr
  | None -> false

let build env (q : Sql.Ast.query) =
  let bindings = bindings_of env q in
  let vertices = List.map (fun b -> b.alias) bindings in
  let conjuncts =
    match q.where with None -> [] | Some w -> Sql.Ast.conjuncts w
  in
  let aliases_of e =
    List.sort_uniq String.compare
      (List.map (fun c -> (owner bindings c).alias) (Sql.Ast.expr_columns e))
  in
  let joins = ref [] and non_equality = ref [] in
  List.iter
    (fun conjunct ->
      match aliases_of conjunct with
      | [] | [ _ ] -> ()  (* single-relation predicate: not a join *)
      | [ _; _ ] -> (
        match (conjunct : Sql.Ast.expr) with
        | Binop (Eq, Col ca, Col cb) ->
          let ba = owner bindings ca and bb = owner bindings cb in
          let ida = is_identifier ba ca.name and idb = is_identifier bb cb.name in
          let kind =
            if ida && idb then Id_id_join (ba.alias, bb.alias)
            else if idb then
              Fk_join
                {
                  from_alias = ba.alias;
                  from_attr = ca.name;
                  to_alias = bb.alias;
                  to_attr = cb.name;
                }
            else if ida then
              Fk_join
                {
                  from_alias = bb.alias;
                  from_attr = cb.name;
                  to_alias = ba.alias;
                  to_attr = ca.name;
                }
            else Non_id_join (ba.alias, bb.alias)
          in
          joins := (conjunct, kind) :: !joins
        | _ -> non_equality := conjunct :: !non_equality)
      | _ -> non_equality := conjunct :: !non_equality)
    conjuncts;
  let arcs =
    List.filter_map
      (function _, Fk_join arc -> Some arc | _ -> None)
      (List.rev !joins)
  in
  {
    vertices;
    arcs;
    joins = List.rev !joins;
    non_equality = List.rev !non_equality;
  }

let in_degree t v =
  List.length (List.filter (fun a -> a.to_alias = v) t.arcs)

let roots t = List.filter (fun v -> in_degree t v = 0) t.vertices

let is_tree t =
  match t.vertices with
  | [] -> false
  | [ _ ] -> t.arcs = []
  | _ -> (
    match roots t with
    | [ root ] ->
      List.for_all (fun v -> v = root || in_degree t v = 1) t.vertices
      &&
      (* reachability from the root *)
      let visited = Hashtbl.create 8 in
      let rec visit v =
        if not (Hashtbl.mem visited v) then begin
          Hashtbl.replace visited v ();
          List.iter
            (fun a -> if a.from_alias = v then visit a.to_alias)
            t.arcs
        end
      in
      visit root;
      List.for_all (Hashtbl.mem visited) t.vertices
    | _ -> false)

let pp fmt t =
  Format.fprintf fmt "vertices: %s@\n" (String.concat ", " t.vertices);
  List.iter
    (fun a ->
      Format.fprintf fmt "arc: %s.%s -> %s.%s@\n" a.from_alias a.from_attr
        a.to_alias a.to_attr)
    t.arcs
