lib/conquer/independent.mli: Dirty Sql
