lib/conquer/independent.ml: Array Dirty Dirty_db Engine Float Hashtbl List Option Printf Relation Rewrite Schema Value
