(** Mutual information between a clustering variable C and a value
    variable V (Section 4.1.3).

    A clustering is a list of [(p(c), p(V|c))] pairs; the cluster
    priors must sum to 1 and each conditional must be normalized. *)

val mutual_information : (float * Dist.t) list -> float
(** [I(C;V) = Σ_c p(c) Σ_v p(v|c) log₂ (p(v|c) / p(v))] with
    [p(v) = Σ_c p(c) p(v|c)]. *)

val marginal : (float * Dist.t) list -> Dist.t
(** [p(V)] of the clustering. *)

val merge_loss : total:float -> Dcf.t -> Dcf.t -> rest:Dcf.t list -> float
(** Direct computation of [I(C;V) − I(C';V)] where C consists of the
    two clusters plus [rest] and C' merges the two.  Used in tests to
    validate the {!Dcf.information_loss} shortcut (the shortcut does
    not need [rest]). *)
