(** Record similarity for tuple matching.

    Similarities are in [0, 1]; 1 means identical.  The record-level
    similarity averages per-attribute similarities, where each
    attribute uses a type-appropriate measure:

    - strings: 1 − normalized Levenshtein distance (with a token-set
      Jaccard alternative for multi-word fields),
    - numbers: 1 − |a − b| / max(|a|, |b|, 1),
    - NULLs: similarity 1 to another NULL, 0 to anything else. *)

val string_similarity : string -> string -> float
(** Edit-distance based. *)

val token_jaccard : string -> string -> float
(** Jaccard similarity of whitespace-token sets (case-folded). *)

val numeric_similarity : float -> float -> float

val value_similarity : Dirty.Value.t -> Dirty.Value.t -> float

val record_similarity :
  ?weights:float list ->
  Dirty.Relation.t ->
  attrs:string list ->
  int ->
  int ->
  float
(** [record_similarity rel ~attrs i j] compares rows [i] and [j] on
    the given attributes; [weights] (default all 1) weight the
    per-attribute similarities. *)
