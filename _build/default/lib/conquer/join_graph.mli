(** Join graphs of SPJ queries (Dfn 6).

    The vertices are the relations (aliases) used in the query; there
    is an arc from [Ri] to [Rj] when a non-identifier attribute of
    [Ri] is equated with the identifier attribute of [Rj] — the
    shape of a foreign-key join after identifier propagation. *)

type arc = {
  from_alias : string;
  from_attr : string;  (** non-identifier attribute of the source *)
  to_alias : string;
  to_attr : string;  (** identifier attribute of the target *)
}

(** How each equality join condition of the query was classified. *)
type join_kind =
  | Fk_join of arc  (** non-identifier = identifier: a graph arc *)
  | Id_id_join of string * string
      (** identifier = identifier: allowed by Dfn 7(1) but
          contributes no arc *)
  | Non_id_join of string * string
      (** neither side is an identifier: violates Dfn 7(1) *)

type t = {
  vertices : string list;  (** aliases, FROM order *)
  arcs : arc list;
  joins : (Sql.Ast.expr * join_kind) list;
      (** every cross-relation equality conjunct with its kind *)
  non_equality : Sql.Ast.expr list;
      (** cross-relation conjuncts that are not simple column
          equalities (not covered by the rewritable class) *)
}

exception Unresolved of string
(** A column reference could not be resolved against the FROM
    clause. *)

val build : Dirty_schema.env -> Sql.Ast.query -> t
(** @raise Unresolved on unknown tables/columns or ambiguity. *)

val roots : t -> string list
(** Vertices with no incoming arc. *)

val is_tree : t -> bool
(** True when the arcs form a single arborescence spanning all
    vertices: exactly one root, every other vertex with exactly one
    incoming arc, and every vertex reachable from the root.  A
    single-vertex graph is a tree. *)

val pp : Format.formatter -> t -> unit
