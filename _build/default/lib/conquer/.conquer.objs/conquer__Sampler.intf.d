lib/conquer/sampler.mli: Clean Dirty Random
