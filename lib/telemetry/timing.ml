(* The one timing helper shared by the bench harness and the CLI's
   [profile] subcommand: wall-clock over repeated runs, summarized as
   min/median/max (a single median hides the spread that distinguishes
   a stable measurement from a noisy one). *)

type stats = { runs : int; min : float; median : float; max : float }

let time_once f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (Unix.gettimeofday () -. t0, result)

let of_samples samples =
  match samples with
  | [] -> invalid_arg "Timing.of_samples: empty"
  | _ ->
    let sorted = List.sort Float.compare samples in
    let n = List.length sorted in
    {
      runs = n;
      min = List.hd sorted;
      median = List.nth sorted (n / 2);
      max = List.nth sorted (n - 1);
    }

(* [runs] timed executions after [warmup] discarded ones *)
let time_runs ?(warmup = 1) ?(runs = 3) f =
  for _ = 1 to warmup do
    ignore (f ())
  done;
  of_samples (List.init (max 1 runs) (fun _ -> fst (time_once f)))

let singleton t = { runs = 1; min = t; median = t; max = t }

let ms t = t *. 1000.0

let to_string s =
  Printf.sprintf "min %.2fms  median %.2fms  max %.2fms  (%d runs)" (ms s.min)
    (ms s.median) (ms s.max) s.runs
