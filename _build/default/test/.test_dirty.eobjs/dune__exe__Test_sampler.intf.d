test/test_sampler.mli:
