type attribute = { name : string; ty : Value.ty }

type t = {
  attrs : attribute array;
  by_name : (string, int) Hashtbl.t;
}

let build attrs =
  let by_name = Hashtbl.create (Array.length attrs * 2) in
  Array.iteri
    (fun i a ->
      if Hashtbl.mem by_name a.name then
        invalid_arg (Printf.sprintf "Schema.make: duplicate attribute %S" a.name);
      Hashtbl.add by_name a.name i)
    attrs;
  { attrs; by_name }

let make pairs =
  let attrs =
    Array.of_list
      (List.map (fun (name, ty) -> { name = String.lowercase_ascii name; ty }) pairs)
  in
  build attrs

let attributes t = Array.to_list t.attrs
let arity t = Array.length t.attrs
let names t = List.map (fun a -> a.name) (attributes t)
let mem t name = Hashtbl.mem t.by_name (String.lowercase_ascii name)

let index_of t name =
  match Hashtbl.find_opt t.by_name (String.lowercase_ascii name) with
  | Some i -> i
  | None -> raise Not_found

let index_of_opt t name = Hashtbl.find_opt t.by_name (String.lowercase_ascii name)
let attribute_at t i = t.attrs.(i)

let project t names =
  build (Array.of_list (List.map (fun n -> t.attrs.(index_of t n)) names))

let append a b =
  let taken = Hashtbl.create 16 in
  Array.iter (fun at -> Hashtbl.replace taken at.name ()) a.attrs;
  let fresh name =
    if not (Hashtbl.mem taken name) then name
    else
      let rec go i =
        let candidate = Printf.sprintf "%s_%d" name i in
        if Hashtbl.mem taken candidate then go (i + 1) else candidate
      in
      go 2
  in
  let renamed =
    Array.map
      (fun at ->
        let name = fresh at.name in
        Hashtbl.replace taken name ();
        { at with name })
      b.attrs
  in
  build (Array.append a.attrs renamed)

let rename ~prefix t =
  build
    (Array.map
       (fun a -> { a with name = String.lowercase_ascii prefix ^ "." ^ a.name })
       t.attrs)

let equal a b =
  arity a = arity b
  && Array.for_all2 (fun x y -> x.name = y.name && x.ty = y.ty) a.attrs b.attrs

let pp fmt t =
  Format.fprintf fmt "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       (fun fmt a -> Format.fprintf fmt "%s %s" a.name (Value.ty_name a.ty)))
    (attributes t)
