(** Why-provenance for clean answers.

    The probability of a clean answer is a sum over the join tuples
    that produce it (Theorem 1's disjointness argument): each join
    tuple picks one duplicate per relation and contributes the product
    of their probabilities.  This module exposes that decomposition,
    so a user can see {e why} an answer is likely — which combination
    of duplicates supports it and with how much mass.

    For the running example's q2, the answer (o2, c1, 0.5) explains
    as:

    {v
    (o2, c1)  probability 0.5
      0.35 = orders[o2 @ 0.5] * customer[c1 @ 0.7]
      0.15 = orders[o2 @ 0.5] * customer[c1 @ 0.3]
    v}

    Sound for the same class as {!Rewrite} (Dfn 7); the per-answer
    totals equal {!Clean.answers}' probabilities. *)

type witness = {
  w_alias : string;  (** relation alias in the query *)
  w_table : string;
  w_cluster : Dirty.Value.t;  (** the duplicate's cluster identifier *)
  w_probability : float;  (** the duplicate's tuple probability *)
}

type contribution = {
  witnesses : witness list;  (** one per FROM relation, query order *)
  mass : float;
      (** total probability mass of the join tuples sharing this
          witness signature (= count × product of the witness
          probabilities) *)
  count : int;
      (** number of join tuples with this signature (duplicates that
          agree on cluster and probability are indistinguishable in
          the explanation) *)
}

type explanation = {
  answer : Dirty.Relation.row;  (** the answer tuple (query columns) *)
  total : float;  (** = the clean-answer probability *)
  contributions : contribution list;  (** descending by mass *)
}

val explain :
  ?config:Engine.Planner.config -> Clean.session -> string -> explanation list
(** Explanations for every clean answer of a rewritable query, sorted
    by descending total.
    @raise Rewrite.Not_rewritable outside the class. *)

val pp_explanation : Format.formatter -> explanation -> unit
