open Dirty

type violation =
  | Self_join of string
  | Unknown_dirty_table of string
  | Distinct_not_supported
  | Having_not_supported
  | Outer_join_not_supported
  | Group_select_mismatch of string
  | Unsupported_aggregate of string
  | Unresolved_column of string

let violation_to_string = function
  | Self_join t -> "relation " ^ t ^ " appears more than once (self-join)"
  | Unknown_dirty_table t -> "relation " ^ t ^ " is not a known dirty table"
  | Distinct_not_supported -> "DISTINCT is not supported"
  | Having_not_supported -> "HAVING is not supported"
  | Outer_join_not_supported -> "outer joins are not supported"
  | Group_select_mismatch what ->
    "non-aggregate select item not in GROUP BY: " ^ what
  | Unsupported_aggregate what -> "unsupported aggregate: " ^ what
  | Unresolved_column msg -> msg

exception Not_supported of violation list

(* classify a select item: a grouping item (no aggregates, must appear
   in GROUP BY) or a supported simple aggregate *)
type item_kind =
  | Group_item
  | Count_star
  | Sum_of of Sql.Ast.expr
  | Avg_of of Sql.Ast.expr

let classify_item group_by (item : Sql.Ast.select_item) =
  match item.expr with
  | Agg (Count, None) -> Ok Count_star
  | Agg (Sum, Some e) when not (Sql.Ast.has_aggregates e) -> Ok (Sum_of e)
  | Agg (Avg, Some e) when not (Sql.Ast.has_aggregates e) -> Ok (Avg_of e)
  | Agg (_, _) ->
    Error (Unsupported_aggregate (Sql.Pretty.expr_to_string item.expr))
  | e when Sql.Ast.has_aggregates e ->
    Error (Unsupported_aggregate (Sql.Pretty.expr_to_string e))
  | e ->
    if List.exists (Sql.Ast.equal_expr e) group_by then Ok Group_item
    else Error (Group_select_mismatch (Sql.Pretty.expr_to_string e))

let check env (q : Sql.Ast.query) =
  let violations = ref [] in
  let add v = violations := v :: !violations in
  if q.distinct then add Distinct_not_supported;
  if q.having <> None then add Having_not_supported;
  if q.outer_joins <> [] then add Outer_join_not_supported;
  if Sql.Ast.query_has_subqueries q then
    add (Unsupported_aggregate "subquery present");
  List.iter
    (fun (r : Sql.Ast.table_ref) ->
      match env.Dirty_schema.info_of r.table with
      | Some _ -> ()
      | None -> add (Unknown_dirty_table r.table))
    q.from;
  let tables = List.map (fun (r : Sql.Ast.table_ref) -> r.table) q.from in
  let rec dup = function
    | [] -> ()
    | t :: rest ->
      if List.mem t rest then add (Self_join t);
      dup (List.filter (fun x -> x <> t) rest)
  in
  dup tables;
  (match q.select with
  | Star -> add (Group_select_mismatch "SELECT *")
  | Items items ->
    List.iter
      (fun item ->
        match classify_item q.group_by item with
        | Ok _ -> ()
        | Error v -> add v)
      items);
  (match q.where with
  | Some w when Sql.Ast.has_aggregates w ->
    add (Unsupported_aggregate "aggregate in WHERE")
  | _ -> ());
  match List.rev !violations with [] -> Ok () | vs -> Error vs

let rewrite env (q : Sql.Ast.query) : Sql.Ast.query =
  let items =
    match q.select with
    | Items items -> items
    | Star -> invalid_arg "Expected.rewrite: SELECT * not supported"
  in
  let product = Rewrite.prob_product env q.from in
  let rewrite_item (item : Sql.Ast.select_item) : Sql.Ast.select_item =
    let with_alias default expr : Sql.Ast.select_item =
      { expr; alias = (match item.alias with Some a -> Some a | None -> Some default) }
    in
    match classify_item q.group_by item with
    | Ok Group_item -> item
    | Ok Count_star -> with_alias "expected_count" (Agg (Sum, Some product))
    | Ok (Sum_of e) ->
      with_alias "expected_sum" (Agg (Sum, Some (Binop (Mul, e, product))))
    | Ok (Avg_of e) ->
      with_alias "expected_avg"
        (Binop
           ( Div,
             Agg (Sum, Some (Binop (Mul, e, product))),
             Agg (Sum, Some product) ))
    | Error v -> invalid_arg ("Expected.rewrite: " ^ violation_to_string v)
  in
  { q with select = Items (List.map rewrite_item items) }

let answers ?config session sql =
  let q = Sql.Parser.parse_query sql in
  let env = Clean.env session in
  match check env q with
  | Error vs -> raise (Not_supported vs)
  | Ok () ->
    Engine.Database.query_ast ?config (Clean.engine session) (rewrite env q)

(* ---- the oracle ---- *)

module Key = struct
  type t = Value.t array

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec loop i =
      i >= Array.length a || (Value.equal a.(i) b.(i) && loop (i + 1))
    in
    loop 0

  let hash a = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 a
end

module Ktbl = Hashtbl.Make (Key)

let answers_oracle ?max_candidates session sql =
  let q = Sql.Parser.parse_query sql in
  let db = Clean.dirty_db session in
  let items =
    match q.select with
    | Items items -> items
    | Star -> invalid_arg "Expected.answers_oracle: SELECT * not supported"
  in
  (* positions of aggregate outputs within the result row *)
  let is_agg =
    Array.of_list
      (List.map (fun (i : Sql.Ast.select_item) -> Sql.Ast.has_aggregates i.expr) items)
  in
  let engine = Engine.Database.create () in
  List.iter
    (fun (t : Dirty_db.table) ->
      Engine.Database.add_relation engine ~name:t.name t.relation)
    (Dirty_db.tables db);
  let plan = Engine.Database.plan engine q in
  let schema_full = Relation.schema (Engine.Database.run_plan engine plan) in
  let expectations = Ktbl.create 64 in
  let group_of row =
    Array.of_list
      (List.filteri (fun j _ -> not is_agg.(j)) (Array.to_list row))
  in
  Candidates.fold ?max_candidates db
    (fun () selection prob ->
      List.iter
        (fun (name, rel) -> Engine.Database.add_relation engine ~name rel)
        (Candidates.candidate_relations db selection);
      let result = Engine.Database.run_plan engine plan in
      Relation.iter
        (fun row ->
          let key = group_of row in
          let acc =
            match Ktbl.find_opt expectations key with
            | Some acc -> acc
            | None ->
              let acc = Array.make (Array.length row) 0.0 in
              Ktbl.add expectations key acc;
              acc
          in
          Array.iteri
            (fun j v ->
              if is_agg.(j) then
                match Value.to_float v with
                | Some x -> acc.(j) <- acc.(j) +. (prob *. x)
                | None -> ())
            row)
        result)
    ();
  let rows =
    Ktbl.fold
      (fun key acc out ->
        let row = Array.make (Array.length is_agg) Value.Null in
        let gi = ref 0 in
        Array.iteri
          (fun j agg ->
            if agg then row.(j) <- Value.Float acc.(j)
            else begin
              row.(j) <- key.(!gi);
              incr gi
            end)
          is_agg;
        row :: out)
      expectations []
  in
  let cmp a b =
    let rec go i =
      if i >= Array.length a then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0
  in
  Relation.sort_by cmp (Relation.create schema_full rows)
