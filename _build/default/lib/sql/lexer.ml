type token =
  | IDENT of string
  | KEYWORD of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | OP of string
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | EOF

exception Error of string * int

let keywords =
  [
    "SELECT"; "DISTINCT"; "FROM"; "WHERE"; "GROUP"; "BY"; "HAVING"; "ORDER";
    "ASC"; "DESC"; "LIMIT"; "AND"; "OR"; "NOT"; "AS"; "LIKE"; "IN"; "BETWEEN";
    "IS"; "NULL"; "TRUE"; "FALSE"; "COUNT"; "SUM"; "AVG"; "MIN"; "MAX"; "DATE";
    "JOIN"; "INNER"; "CROSS"; "ON"; "LEFT"; "OUTER"; "EXISTS";
  ]

let is_keyword s = List.mem (String.uppercase_ascii s) keywords

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let emit tok pos = tokens := (tok, pos) :: !tokens in
  let rec skip_line_comment i = if i < n && input.[i] <> '\n' then skip_line_comment (i + 1) else i in
  let rec go i =
    if i >= n then emit EOF n
    else
      let c = input.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then go (i + 1)
      else if c = '-' && i + 1 < n && input.[i + 1] = '-' then go (skip_line_comment i)
      else if c = '(' then begin emit LPAREN i; go (i + 1) end
      else if c = ')' then begin emit RPAREN i; go (i + 1) end
      else if c = ',' then begin emit COMMA i; go (i + 1) end
      else if c = '.' && not (i + 1 < n && is_digit input.[i + 1]) then begin
        emit DOT i;
        go (i + 1)
      end
      else if c = '\'' then begin
        (* string literal with '' escaping *)
        let buf = Buffer.create 16 in
        let rec scan j =
          if j >= n then raise (Error ("unterminated string literal", i))
          else if input.[j] = '\'' then
            if j + 1 < n && input.[j + 1] = '\'' then begin
              Buffer.add_char buf '\'';
              scan (j + 2)
            end
            else j + 1
          else begin
            Buffer.add_char buf input.[j];
            scan (j + 1)
          end
        in
        let j = scan (i + 1) in
        emit (STRING (Buffer.contents buf)) i;
        go j
      end
      else if is_digit c || (c = '.' && i + 1 < n && is_digit input.[i + 1]) then begin
        let j = ref i in
        let seen_dot = ref false and seen_exp = ref false in
        let continue = ref true in
        while !continue && !j < n do
          let d = input.[!j] in
          if is_digit d then incr j
          else if d = '.' && not !seen_dot && not !seen_exp then begin
            seen_dot := true;
            incr j
          end
          else if (d = 'e' || d = 'E') && not !seen_exp && !j > i then begin
            seen_exp := true;
            incr j;
            if !j < n && (input.[!j] = '+' || input.[!j] = '-') then incr j
          end
          else continue := false
        done;
        let text = String.sub input i (!j - i) in
        let tok =
          if !seen_dot || !seen_exp then
            match float_of_string_opt text with
            | Some f -> FLOAT f
            | None -> raise (Error (Printf.sprintf "bad number %S" text, i))
          else
            match int_of_string_opt text with
            | Some k -> INT k
            | None -> (
              match float_of_string_opt text with
              | Some f -> FLOAT f
              | None -> raise (Error (Printf.sprintf "bad number %S" text, i)))
        in
        emit tok i;
        go !j
      end
      else if is_ident_start c then begin
        let j = ref i in
        while !j < n && is_ident_char input.[!j] do
          incr j
        done;
        let text = String.sub input i (!j - i) in
        if is_keyword text then emit (KEYWORD (String.uppercase_ascii text)) i
        else emit (IDENT (String.lowercase_ascii text)) i;
        go !j
      end
      else begin
        let two = if i + 1 < n then String.sub input i 2 else "" in
        match two with
        | "<>" | "!=" | "<=" | ">=" ->
          emit (OP (if two = "!=" then "<>" else two)) i;
          go (i + 2)
        | _ -> (
          match c with
          | '=' | '<' | '>' | '+' | '-' | '*' | '/' ->
            emit (OP (String.make 1 c)) i;
            go (i + 1)
          | _ -> raise (Error (Printf.sprintf "unexpected character %C" c, i)))
      end
  in
  go 0;
  List.rev !tokens

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | KEYWORD s -> s
  | INT i -> string_of_int i
  | FLOAT f -> string_of_float f
  | STRING s -> Printf.sprintf "'%s'" s
  | OP s -> s
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | DOT -> "."
  | EOF -> "<end of input>"
