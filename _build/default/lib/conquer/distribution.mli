(** Exact distributions of COUNT answers over a dirty relation.

    {!Expected} returns the {e expectation} of an aggregate; for a
    single dirty relation the full {e distribution} of the entity
    count is also tractable.  For a query

    {v select <identifier> from R where W v}

    each cluster [c] of [R] contributes a Bernoulli variable with

      p_c = Σ {prob(t) | t ∈ c, t satisfies W}

    (exactly one tuple of [c] is in any candidate database, so the
    events "the chosen tuple satisfies W" are disjoint within the
    cluster and independent across clusters).  The number of entities
    satisfying [W] in the clean database is therefore a
    Poisson-binomial variable; its probability mass function is
    computed exactly by dynamic programming in O(k²) for k clusters.

    Only single-relation select-project queries are supported — with
    joins the cluster events are shared between answer rows and the
    count is no longer a sum of independent Bernoullis. *)

type violation =
  | Not_single_table
  | Not_spj of string
  | Unknown_dirty_table of string

val violation_to_string : violation -> string

exception Not_supported of violation list

val check : Dirty_schema.env -> Sql.Ast.query -> (unit, violation list) result

val qualification_probabilities :
  Clean.session -> string -> (Dirty.Value.t * float) list
(** Per cluster identifier, the probability that the cluster's clean
    tuple satisfies the query's WHERE clause.  Clusters with
    probability 0 are omitted.
    @raise Not_supported when {!check} fails. *)

val count_distribution : Clean.session -> string -> float array
(** [count_distribution s sql] is the pmf of the entity count: index
    [i] holds the probability that exactly [i] entities satisfy the
    predicate in the clean database.  Sums to 1.
    @raise Not_supported when {!check} fails. *)

val count_distribution_oracle :
  ?max_candidates:int -> Clean.session -> string -> float array
(** The same pmf by candidate enumeration (Dfn 5 applied to the
    counting query); exponential, for validation. *)

val mean : float array -> float
val variance : float array -> float

val at_least : float array -> int -> float
(** [at_least pmf k] = P(count >= k): tail probability, e.g. "what is
    the chance at least 10 customers qualify?". *)

(** {1 Moments of SUM aggregates}

    For [select sum(e) from R where W] over a single dirty relation,
    the sum is [Σ_c X_c] with [X_c = e(chosen tuple)·1{W}] independent
    across clusters, so both moments are exact:
    [E = Σ_c Σ_t prob(t)·e(t)·1W(t)] and
    [Var = Σ_c (E[X_c²] − E[X_c]²)]. *)

type moments = { mean : float; variance : float; std_dev : float }

val sum_moments : Clean.session -> string -> moments
(** The query must be [select sum(<expr>) from <table> where <w>]
    (exactly one ungrouped SUM over one dirty relation).
    @raise Not_supported / Invalid_argument otherwise. *)
