(* The differential core: run one fuzz case through both paths and
   compare.

   Operational path: [Rewritable.check], then [Rewrite.rewrite_exn],
   then engine execution — once per requested parallelism degree plus
   one row-at-a-time executor leg, since answers must be bit-identical
   at any [jobs] value and the chunked and row executors must agree.
   Declarative path: [Oracle.answers], candidate enumeration.

   A rejected query is not a failure — rejection is the fuzzer probing
   the class boundary — but acceptance followed by disagreement with
   the oracle is, as is any exception out of the rewrite or the
   engine on an accepted query. *)

type outcome =
  | Rejected of Conquer.Rewritable.violation list
  | Agree of { answers : int }
  | Mismatch of {
      jobs : int;
      chunked : bool;
      mismatch : Conquer.Oracle.mismatch;
    }
  | S_mismatch of {
      shards : int;
      jobs : int;
      chunked : bool;
      vs_oracle : bool;
          (* true: sharded answers disagree with the oracle; false:
             they disagree bit-for-bit with the unsharded answers *)
      mismatch : Conquer.Oracle.mismatch;
    }
  | S_error of {
      shards : int;
      jobs : int;
      chunked : bool;
      message : string;
    }
  | Oracle_too_large of { count : float }
  | Error_during of { stage : string; message : string }

let default_jobs = [ 1; 4 ]
let default_shards = [ 1; 2; 4 ]

let failing = function
  | Mismatch _ | S_mismatch _ | S_error _ | Error_during _ -> true
  | Rejected _ | Agree _ | Oracle_too_large _ -> false

let leg_label jobs chunked =
  Printf.sprintf "jobs=%d, %s executor" jobs
    (if chunked then "chunked" else "row")

let to_string = function
  | Rejected vs ->
    "rejected: "
    ^ String.concat "; "
        (List.map Conquer.Rewritable.violation_to_string vs)
  | Agree { answers } -> Printf.sprintf "agree (%d answers)" answers
  | Mismatch { jobs; chunked; mismatch } ->
    Printf.sprintf "MISMATCH at jobs=%d (%s executor): %s" jobs
      (if chunked then "chunked" else "row")
      (Conquer.Oracle.mismatch_to_string mismatch)
  | S_mismatch { shards; jobs; chunked; vs_oracle; mismatch } ->
    Printf.sprintf "SHARD MISMATCH vs %s at shards=%d (%s): %s"
      (if vs_oracle then "oracle" else "unsharded answers")
      shards (leg_label jobs chunked)
      (Conquer.Oracle.mismatch_to_string mismatch)
  | S_error { shards; jobs; chunked; message } ->
    Printf.sprintf "SHARD ERROR at shards=%d (%s): %s" shards
      (leg_label jobs chunked) message
  | Oracle_too_large { count } ->
    Printf.sprintf "oracle budget exceeded (%.0f candidates)" count
  | Error_during { stage; message } ->
    Printf.sprintf "ERROR during %s: %s" stage message

let run ?(jobs = default_jobs) ?(shards = default_shards)
    ?(max_candidates = 200_000) (case : Case.t) =
  let env = Conquer.Dirty_schema.of_dirty_db case.db in
  match Conquer.Rewritable.check env case.query with
  | Error vs -> Rejected vs
  | Ok _ -> (
    match Conquer.Oracle.answers ~max_candidates case.db case.query with
    | exception Conquer.Oracle.Too_many_candidates { count; _ } ->
      Oracle_too_large { count }
    | exception e ->
      Error_during { stage = "oracle"; message = Printexc.to_string e }
    | oracle -> (
      match Conquer.Rewrite.rewrite_exn env case.query with
      | exception e ->
        Error_during { stage = "rewrite"; message = Printexc.to_string e }
      | rewritten ->
        let session = Conquer.Clean.create case.db in
        (* one leg per jobs value on the chunked executor, plus a
           serial row-at-a-time leg: chunked vs row disagreement is a
           real bug even when both agree across jobs values *)
        let legs =
          (1, false) :: List.map (fun j -> (j, true)) jobs
        in
        let reference = ref None in
        let rec check_legs = function
          | [] -> check_shards ()
          | (j, chunked) :: rest -> (
            let config =
              { Engine.Planner.default_config with jobs = j; chunked }
            in
            match
              Engine.Database.query_ast ~config
                (Conquer.Clean.engine session)
                rewritten
            with
            | exception e ->
              Error_during
                {
                  stage = Printf.sprintf "execute (%s)" (leg_label j chunked);
                  message = Printexc.to_string e;
                }
            | answers -> (
              if !reference = None then reference := Some answers;
              match Conquer.Oracle.compare_answers ~oracle answers with
              | Ok () -> check_legs rest
              | Error mismatch -> Mismatch { jobs = j; chunked; mismatch }))
        (* the shards legs: scatter/gather across every shard count ×
           (jobs, executor) combination must agree with the oracle and
           be bit-identical (eps 0 — the dbgen grid keeps float sums
           exact under re-association across shards) to the unsharded
           answers of the first leg *)
        and check_shards () =
          let unsharded = Option.get !reference in
          let shard_legs =
            List.concat_map
              (fun s ->
                List.map (fun (j, chunked) -> (s, j, chunked)) legs)
              shards
          in
          let rec go = function
            | [] -> Agree { answers = Dirty.Relation.cardinality oracle }
            | (s, j, chunked) :: rest -> (
              let config =
                { Engine.Planner.default_config with jobs = j; chunked }
              in
              match
                let sharded = Conquer.Clean.create ~shards:s case.db in
                Conquer.Clean.answers_ast_within ~config sharded rewritten
              with
              | exception e ->
                S_error
                  {
                    shards = s;
                    jobs = j;
                    chunked;
                    message = Printexc.to_string e;
                  }
              | answers, _stop -> (
                match Conquer.Oracle.compare_answers ~oracle answers with
                | Error mismatch ->
                  S_mismatch
                    { shards = s; jobs = j; chunked; vs_oracle = true; mismatch }
                | Ok () -> (
                  match
                    Conquer.Oracle.compare_answers ~eps:0.0 ~oracle:unsharded
                      answers
                  with
                  | Error mismatch ->
                    S_mismatch
                      {
                        shards = s;
                        jobs = j;
                        chunked;
                        vs_oracle = false;
                        mismatch;
                      }
                  | Ok () -> go rest)))
          in
          go shard_legs
        in
        check_legs legs))

(* The update differential: replay a sequence of update batches and
   compare incremental view maintenance against from-scratch execution
   after every batch, at every (jobs, executor) leg.  On grid-mode
   sequences (all probabilities dyadic) the comparison runs at eps 0:
   sums and products of dyadic rationals are exact, so incremental
   splicing, morsel slicing and executor choice must all produce the
   same float bits.  The final database is additionally checked
   against the enumeration oracle when it fits the candidate budget. *)

type update_outcome =
  | U_rejected of Conquer.Rewritable.violation list
  | U_agree of { batches : int; answers : int; fallbacks : int }
  | U_mismatch of {
      jobs : int;
      chunked : bool;
      batch : int;  (** 1-based index of the first diverging batch *)
      mismatch : Conquer.Oracle.mismatch;
    }
  | U_oracle_mismatch of { mismatch : Conquer.Oracle.mismatch }
  | U_error of { stage : string; message : string }

let update_failing = function
  | U_mismatch _ | U_oracle_mismatch _ | U_error _ -> true
  | U_rejected _ | U_agree _ -> false

let update_to_string = function
  | U_rejected vs ->
    "rejected: "
    ^ String.concat "; "
        (List.map Conquer.Rewritable.violation_to_string vs)
  | U_agree { batches; answers; fallbacks } ->
    Printf.sprintf "agree (%d batches, %d answers, %d fallbacks)" batches
      answers fallbacks
  | U_mismatch { jobs; chunked; batch; mismatch } ->
    Printf.sprintf "MISMATCH after batch %d at jobs=%d (%s executor): %s"
      batch jobs
      (if chunked then "chunked" else "row")
      (Conquer.Oracle.mismatch_to_string mismatch)
  | U_oracle_mismatch { mismatch } ->
    Printf.sprintf "ORACLE MISMATCH on final database: %s"
      (Conquer.Oracle.mismatch_to_string mismatch)
  | U_error { stage; message } ->
    Printf.sprintf "ERROR during %s: %s" stage message

let run_updates ?(jobs = default_jobs) ?(max_candidates = 200_000)
    ?(eps = 0.0) (case : Case.t) (batches : Dirty.Delta.batch list) =
  let env = Conquer.Dirty_schema.of_dirty_db case.db in
  match Conquer.Rewritable.check env case.query with
  | Error vs -> U_rejected vs
  | Ok _ -> (
    match
      (* apply the batches once; the per-leg work is read-only *)
      List.fold_left
        (fun (db, acc) batch ->
          let o = Dirty.Delta.apply db batch in
          (o.Dirty.Delta.db, (o.Dirty.Delta.touched, o.Dirty.Delta.db) :: acc))
        (case.db, []) batches
    with
    | exception e ->
      U_error { stage = "apply"; message = Printexc.to_string e }
    | _, rev_states -> (
      let states =
        List.rev_map
          (fun (touched, db) -> (touched, Conquer.Clean.create db))
          rev_states
      in
      let session0 = Conquer.Clean.create case.db in
      match Conquer.Rewrite.rewrite_exn env case.query with
      | exception e ->
        U_error { stage = "rewrite"; message = Printexc.to_string e }
      | rewritten -> (
        let fallbacks = ref 0 in
        let legs =
          List.concat_map (fun j -> [ (j, false); (j, true) ]) jobs
        in
        let exception Fail of update_outcome in
        let check_leg (j, chunked) =
          let config =
            { Engine.Planner.default_config with jobs = j; chunked }
          in
          let stage fmt =
            Printf.ksprintf
              (fun s ->
                Printf.sprintf "%s (jobs=%d, %s executor)" s j
                  (if chunked then "chunked" else "row"))
              fmt
          in
          let view =
            try Conquer.Incremental.materialize_query ~config session0 case.query
            with e ->
              raise
                (Fail
                   (U_error
                      {
                        stage = stage "materialize";
                        message = Printexc.to_string e;
                      }))
          in
          List.iteri
            (fun i (touched, session) ->
              (match
                 Conquer.Incremental.refresh ~config view session ~touched
               with
              | exception e ->
                raise
                  (Fail
                     (U_error
                        {
                          stage = stage "refresh (batch %d)" (i + 1);
                          message = Printexc.to_string e;
                        }))
              | stats ->
                if stats.Conquer.Incremental.s_fallback <> None then
                  incr fallbacks);
              let scratch =
                try
                  Engine.Database.query_ast ~config
                    (Conquer.Clean.engine session)
                    rewritten
                with e ->
                  raise
                    (Fail
                       (U_error
                          {
                            stage = stage "execute (batch %d)" (i + 1);
                            message = Printexc.to_string e;
                          }))
              in
              match
                Conquer.Oracle.compare_answers ~eps ~oracle:scratch
                  (Conquer.Incremental.answers view)
              with
              | Ok () -> ()
              | Error mismatch ->
                raise
                  (Fail (U_mismatch { jobs = j; chunked; batch = i + 1; mismatch })))
            states;
          view
        in
        match List.map check_leg legs with
        | exception Fail outcome -> outcome
        | views -> (
          let view = List.hd views in
          let answers =
            Dirty.Relation.cardinality (Conquer.Incremental.answers view)
          in
          let agree =
            U_agree
              { batches = List.length states; answers; fallbacks = !fallbacks }
          in
          match states with
          | [] -> agree
          | _ -> (
            let _, final_session = List.nth states (List.length states - 1) in
            let final_db = Conquer.Clean.dirty_db final_session in
            match Conquer.Oracle.answers ~max_candidates final_db case.query with
            | exception Conquer.Oracle.Too_many_candidates _ -> agree
            | exception e ->
              U_error { stage = "oracle"; message = Printexc.to_string e }
            | oracle -> (
              match
                Conquer.Oracle.compare_answers ~oracle
                  (Conquer.Incremental.answers view)
              with
              | Ok () -> agree
              | Error mismatch -> U_oracle_mismatch { mismatch }))))))

(* Greedy shrinking: repeatedly take the first shrink candidate that
   still fails, until none does (or the step budget runs out).  Used
   both by the property tests' deliberate-bug check and the CLI's
   counterexample minimizer. *)
let minimize ?(max_steps = 500) still_failing (case : Case.t) =
  let steps = ref 0 in
  let exception Found of Case.t in
  let rec go case =
    if !steps >= max_steps then case
    else
      match
        Case.shrink case (fun candidate ->
            incr steps;
            if !steps <= max_steps && still_failing candidate then
              raise (Found candidate))
      with
      | () -> case
      | exception Found smaller -> go smaller
  in
  go case
