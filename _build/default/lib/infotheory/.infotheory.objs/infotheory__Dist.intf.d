lib/infotheory/dist.mli: Format
