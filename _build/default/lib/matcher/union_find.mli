(** Disjoint sets over the integers [0..n-1] (union by rank, path
    compression).  Used by the matchers to merge tuple pairs into
    duplicate clusters. *)

type t

val create : int -> t
val find : t -> int -> int
(** Canonical representative. *)

val union : t -> int -> int -> unit
val same : t -> int -> int -> bool
val num_classes : t -> int

val to_cluster : t -> Dirty.Cluster.t
(** The partition as a {!Dirty.Cluster.t}; cluster identifiers are the
    canonical representatives as [Int] values. *)
