(* End-to-end deduplication pipeline: raw duplicated data with no
   clustering at all, through the full ConQuer stack.

   Run with:  dune exec examples/dedup.exe

     raw relation
       │  sorted-neighborhood matching (Hernández-Stolfo merge/purge)
       ▼
     clustering                         ← what commercial matchers emit
       │  Figure 5 probability assignment (information loss to the
       │  cluster representative)
       ▼
     dirty table (id + prob columns)
       │  RewriteClean
       ▼
     clean answers with probabilities

   The paper assumes the first step is done by a data-integration
   tool; this example closes the loop with the matcher the UIS
   generator's lineage suggests, and also shows the LIMBO-style
   information-theoretic clusterer as an alternative. *)

module Value = Dirty.Value
module Relation = Dirty.Relation
module Schema = Dirty.Schema
module Cluster = Dirty.Cluster
module Dirty_db = Dirty.Dirty_db

let v_s s = Value.String s
let v_i i = Value.Int i

(* a raw feed of customer records from three sources *)
let raw =
  Relation.create
    (Schema.make
       [
         ("name", Value.TString);
         ("city", Value.TString);
         ("segment", Value.TString);
         ("income", Value.TInt);
       ])
    [
      [| v_s "John Smith"; v_s "Toronto"; v_s "premium"; v_i 120_000 |];
      [| v_s "Jon Smith"; v_s "Toronto"; v_s "premium"; v_i 118_000 |];
      [| v_s "John Smyth"; v_s "Torontoo"; v_s "standard"; v_i 80_000 |];
      [| v_s "Mary Jones"; v_s "Ottawa"; v_s "premium"; v_i 140_000 |];
      [| v_s "Mary Jone"; v_s "Ottawa"; v_s "standard"; v_i 40_000 |];
      [| v_s "Zoe Chen"; v_s "Vancouver"; v_s "premium"; v_i 95_000 |];
      [| v_s "Ravi Patel"; v_s "Calgary"; v_s "standard"; v_i 61_000 |];
      [| v_s "Ravi Patell"; v_s "Calgary"; v_s "standard"; v_i 62_000 |];
    ]

let attrs = [ "name"; "city"; "segment"; "income" ]

let () =
  print_endline "Raw feed (no clustering, no probabilities):";
  print_string (Relation.to_string raw);

  (* --- step 1: tuple matching --- *)
  let config =
    {
      Matcher.Sorted_neighborhood.passes =
        [
          Matcher.Sorted_neighborhood.pass [ "name" ];
          Matcher.Sorted_neighborhood.pass [ "city"; "name" ];
        ];
      window = 4;
      threshold = 0.8;
      (* match on the identifying attributes only: the descriptive
         ones (segment, income) carry the very conflicts we want to
         keep, per the introduction's CRM motivation *)
      attrs = [ "name"; "city" ];
    }
  in
  let clustering = Matcher.Sorted_neighborhood.run config raw in
  Printf.printf "\nSorted-neighborhood matching found %d entities among %d records\n"
    (Cluster.num_clusters clustering)
    (Cluster.num_rows clustering);

  (* the LIMBO-style clusterer reaches the same partition here *)
  let limbo =
    Matcher.Limbo.run
      { attrs = [ "name"; "city" ]; stop = Num_clusters (Cluster.num_clusters clustering) }
      raw
  in
  let agreement = Matcher.Evaluate.pairwise ~truth:clustering limbo in
  Format.printf "LIMBO agreement with merge/purge: %a@." Matcher.Evaluate.pp
    agreement;

  (* --- step 2: probabilities from the clustering (Figure 5) --- *)
  let probs = Prob.Assign.assign ~attrs raw clustering in
  let schema' =
    Schema.append (Relation.schema raw)
      (Schema.make [ ("id", Value.TInt); ("prob", Value.TFloat) ])
  in
  let counter = ref (-1) in
  let dirty_rel =
    Relation.map_rows schema'
      (fun row ->
        incr counter;
        Array.append row
          [| Cluster.cluster_of_row clustering !counter; Value.Float probs.(!counter) |])
      raw
  in
  let table =
    Dirty_db.make_table ~name:"customer" ~id_attr:"id" ~prob_attr:"prob" dirty_rel
  in
  print_endline "\nDirty table with discovered identifiers and probabilities:";
  print_string (Relation.to_string table.relation);

  (* --- step 3: clean answers --- *)
  let db = Dirty_db.add_table Dirty_db.empty table in
  let session = Conquer.Clean.create db in
  let sql = "select id from customer where income > 100000" in
  Printf.printf "\nQuery: %s\n" sql;
  print_endline "Clean answers (entity, probability of earning > 100K):";
  print_string (Relation.to_string (Conquer.Clean.answers session sql));

  (* and the expected-aggregate extension over the same data *)
  let agg = "select count(*) from customer where segment = 'premium'" in
  let expected = Conquer.Expected.answers session agg in
  Printf.printf "\nExpected number of premium customers: %s\n"
    (Value.to_string (Relation.get expected 0).(0))
