lib/conquer/candidates.ml: Array Cluster Dirty Dirty_db Engine Hashtbl Int List Option Printf Relation Rewrite Schema Value
