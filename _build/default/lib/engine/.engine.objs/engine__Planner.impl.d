lib/engine/planner.ml: Dirty Expr Hashtbl List Logs Option Plan Printf Schema Sql Stats String Value
