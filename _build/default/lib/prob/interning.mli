(** Interning of attribute values into integer symbols.

    Section 4.1.1 requires the domain of each attribute to be "named
    in such a way that identical values from different attributes are
    treated as distinct values": the symbol space is keyed by the
    (attribute position, value) pair. *)

type t

val create : unit -> t

val intern : t -> attr:int -> Dirty.Value.t -> int
(** Symbol of the pair, allocating a fresh one on first sight. *)

val find_opt : t -> attr:int -> Dirty.Value.t -> int option
val size : t -> int

val to_pair : t -> int -> int * Dirty.Value.t
(** Inverse mapping. @raise Not_found for unallocated symbols. *)

val attr_of : t -> int -> int
val value_of : t -> int -> Dirty.Value.t
