lib/matcher/evaluate.ml: Cluster Dirty Format Hashtbl List Option Value
