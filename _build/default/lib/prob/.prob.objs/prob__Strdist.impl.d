lib/prob/strdist.ml: Array Fun String
