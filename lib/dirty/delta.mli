(** Typed updates over dirty databases.

    A delta is a batch of update operations against a {!Dirty_db.t}:
    tuple insert/delete, cluster split/merge (the unclean database
    evolving as the matching tool revises its clustering), and
    probability reassignment.  Operations apply sequentially; after
    each structural operation the touched clusters are renormalized
    through {!Repair} under the [Renormalize] policy, so a valid
    database stays valid and untouched clusters keep their exact
    probability bits.

    Batches serialize to CSV rows (the journaled delta record format,
    see DESIGN §5k).  Values round-trip through
    {!Value.to_string}/{!Value.parse} with the same semantics as the
    store's table snapshots, so replaying a journaled delta over a
    loaded snapshot is deterministic. *)

type op =
  | Insert of { table : string; row : Value.t array }
      (** Append one tuple (full row in schema order, including the
          identifier and probability attributes).  Joins an existing
          cluster when the identifier value is known, otherwise starts
          a new one. *)
  | Delete of { table : string; cluster : Value.t; member : int }
      (** Remove the [member]-th tuple (0-based, row order) of the
          cluster.  Deleting the last tuple removes the cluster. *)
  | Split of {
      table : string;
      cluster : Value.t;
      into : Value.t;
      members : int list;
    }
      (** Move the listed member ordinals of [cluster] into cluster
          [into] (fresh or existing).  Both sides renormalize. *)
  | Merge of { table : string; from_ : Value.t; into : Value.t }
      (** Relabel every tuple of cluster [from_] as [into]; the merged
          cluster renormalizes. *)
  | Reassign of { table : string; cluster : Value.t; weights : float array }
      (** Replace the cluster's probabilities with
          [w_i / sum(w)] (one weight per member, row order).  Weights
          already summing to 1 are assigned bit-exactly. *)

type batch = op list

exception Invalid of string
(** Raised by {!apply} and {!of_rows} on an operation that does not
    validate against the database (unknown table/cluster, ordinal out
    of range, bad weights, arity mismatch) or a malformed record. *)

type outcome = {
  db : Dirty_db.t;  (** the updated database *)
  touched : (string * Value.t) list;
      (** distinct (table, cluster id) pairs affected by the batch, in
          first-touch order — the input to incremental view
          maintenance.  Clusters that no longer exist (deleted, merged
          away) are still listed. *)
  actions : Repair.action list;
      (** renormalizations performed, in application order *)
}

val apply : Dirty_db.t -> batch -> outcome
(** Apply the batch sequentially. @raise Invalid as described above;
    the input database is never partially modified (application is
    functional). *)

(** {1 Record format} *)

val op_table : op -> string
val op_to_row : op -> string list
val op_of_row : string list -> op
val to_rows : batch -> string list list
val of_rows : string list list -> batch
val op_to_string : op -> string
(** One-line human description, used by the CLI and the query log. *)
