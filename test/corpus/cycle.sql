SELECT r0.id, r1.id, r2.id
FROM t0 r0, t1 r1, t2 r2
WHERE (r1.fkt0 = r0.id AND r2.fkt1 = r1.id) AND r2.fkt0 = r0.id
