(* Process-wide metrics registry: named counters, gauges and
   log-scale latency histograms.

   Handles are created once (find-or-create against a global table)
   and mutated in place on the hot path.  The registry is domain-safe:
   counters and gauges are [Atomic.t] cells (a counter increment is
   one fetch-and-add, so no increments are lost when several domains
   run instrumented code), histograms and the registry table itself
   are guarded by mutexes.  Readers take a [snapshot], which copies
   every value, so a dump observes a consistent point-in-time view
   even if updates race it.

   All updates are gated on {!Control.enabled}; with telemetry off an
   update is a flag test and a branch. *)

type counter = { c_name : string; c_help : string; count : int Atomic.t }
type gauge = { g_name : string; g_help : string; value : float Atomic.t }

(* log-scale buckets: upper bounds grow by powers of two from
   [base] seconds; the last bucket is +infinity.  A histogram update
   touches three fields, so it takes the per-histogram lock — observe
   sites are per-operator (not per-row), keeping the cost acceptable. *)
(* An exemplar pins one concrete observation to a bucket — typically
   the trace id of a recent request that landed there — so a latency
   histogram can answer "show me a request from the slow bucket". *)
type exemplar = { ex_label : string; ex_value : float; ex_at : float }

type histogram = {
  h_name : string;
  h_help : string;
  h_lock : Mutex.t;
  bounds : float array;  (* upper bound of each finite bucket *)
  counts : int array;    (* one per finite bucket, plus one overflow *)
  exemplars : exemplar option array;  (* last labeled hit per bucket *)
  mutable sum : float;
  mutable total : int;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let with_lock lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let find_or_create name make =
  with_lock registry_lock @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some m -> m
  | None ->
    let m = make () in
    Hashtbl.replace registry name m;
    m

let counter ?(help = "") name =
  match
    find_or_create name (fun () ->
        Counter { c_name = name; c_help = help; count = Atomic.make 0 })
  with
  | Counter c -> c
  | _ -> invalid_arg (name ^ " is registered as a non-counter metric")

let gauge ?(help = "") name =
  match
    find_or_create name (fun () ->
        Gauge { g_name = name; g_help = help; value = Atomic.make 0.0 })
  with
  | Gauge g -> g
  | _ -> invalid_arg (name ^ " is registered as a non-gauge metric")

(* 22 log-scale buckets from 1us to ~2s cover micro-operator to
   whole-query latencies *)
let default_bounds =
  Array.init 22 (fun i -> 1e-6 *. Float.of_int (1 lsl i))

let histogram ?(help = "") ?(bounds = default_bounds) name =
  match
    find_or_create name (fun () ->
        Histogram
          {
            h_name = name;
            h_help = help;
            h_lock = Mutex.create ();
            bounds;
            counts = Array.make (Array.length bounds + 1) 0;
            exemplars = Array.make (Array.length bounds + 1) None;
            sum = 0.0;
            total = 0;
          })
  with
  | Histogram h -> h
  | _ -> invalid_arg (name ^ " is registered as a non-histogram metric")

let inc ?(n = 1) c =
  if Control.enabled () then ignore (Atomic.fetch_and_add c.count n)

let set g v = if Control.enabled () then Atomic.set g.value v

let add g v =
  if Control.enabled () then begin
    (* CAS loop: Atomic.t has no float fetch-and-add *)
    let rec loop () =
      let old = Atomic.get g.value in
      if not (Atomic.compare_and_set g.value old (old +. v)) then loop ()
    in
    loop ()
  end

(* direct reads, primarily for tests *)
let count c = Atomic.get c.count
let gauge_value g = Atomic.get g.value

let bucket_index bounds v =
  (* first bucket whose upper bound admits v; bounds are sorted *)
  let n = Array.length bounds in
  let rec go lo hi =
    (* invariant: every bucket < lo is too small, hi admits v (or is
       the overflow bucket n) *)
    if lo >= hi then hi
    else
      let mid = (lo + hi) / 2 in
      if v <= bounds.(mid) then go lo mid else go (mid + 1) hi
  in
  go 0 n

let observe ?exemplar h v =
  if Control.enabled () then begin
    let i = bucket_index h.bounds v in
    with_lock h.h_lock @@ fun () ->
    h.counts.(i) <- h.counts.(i) + 1;
    h.sum <- h.sum +. v;
    h.total <- h.total + 1;
    match exemplar with
    | Some label ->
      h.exemplars.(i) <-
        Some { ex_label = label; ex_value = v; ex_at = Unix.gettimeofday () }
    | None -> ()
  end

let histogram_total h = with_lock h.h_lock (fun () -> h.total)
let histogram_sum h = with_lock h.h_lock (fun () -> h.sum)
let histogram_counts h = with_lock h.h_lock (fun () -> Array.copy h.counts)

(* ---- snapshots ---- *)

type histogram_snapshot = {
  hs_bounds : float array;
  hs_counts : int array;  (* cumulative, per finite bound, then +Inf *)
  hs_sum : float;
  hs_total : int;
  hs_exemplars : exemplar option array;  (* per bucket, +Inf last *)
}

type value =
  | Counter_value of int
  | Gauge_value of float
  | Histogram_value of histogram_snapshot

type sample = { name : string; help : string; data : value }

let snapshot () =
  let metrics =
    with_lock registry_lock (fun () ->
        Hashtbl.fold (fun _ m acc -> m :: acc) registry [])
  in
  List.rev_map
    (fun m ->
      match m with
      | Counter c ->
        { name = c.c_name; help = c.c_help; data = Counter_value (Atomic.get c.count) }
      | Gauge g ->
        { name = g.g_name; help = g.g_help; data = Gauge_value (Atomic.get g.value) }
      | Histogram h ->
        let counts, sum, total, exemplars =
          with_lock h.h_lock (fun () ->
              (Array.copy h.counts, h.sum, h.total, Array.copy h.exemplars))
        in
        let cumulative = Array.make (Array.length counts) 0 in
        let running = ref 0 in
        Array.iteri
          (fun i c ->
            running := !running + c;
            cumulative.(i) <- !running)
          counts;
        {
          name = h.h_name;
          help = h.h_help;
          data =
            Histogram_value
              {
                hs_bounds = Array.copy h.bounds;
                hs_counts = cumulative;
                hs_sum = sum;
                hs_total = total;
                hs_exemplars = exemplars;
              };
        })
    metrics
  |> List.sort (fun a b -> String.compare a.name b.name)

(* The q-quantile (q in [0,1]) of a histogram snapshot: the upper
   bound of the first bucket whose cumulative count reaches the rank —
   an upper estimate at the buckets' log-scale resolution.  Ranks that
   land in the overflow bucket report the largest finite bound. *)
let histogram_quantile hs q =
  if hs.hs_total = 0 then 0.0
  else begin
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let rank =
      max 1 (int_of_float (Float.ceil (q *. float_of_int hs.hs_total)))
    in
    let n = Array.length hs.hs_bounds in
    let rec go i =
      if i >= n then if n = 0 then 0.0 else hs.hs_bounds.(n - 1)
      else if hs.hs_counts.(i) >= rank then hs.hs_bounds.(i)
      else go (i + 1)
    in
    go 0
  end

(* zero every metric (handles stay valid); for tests and benchmarks *)
let reset () =
  let metrics =
    with_lock registry_lock (fun () ->
        Hashtbl.fold (fun _ m acc -> m :: acc) registry [])
  in
  List.iter
    (fun m ->
      match m with
      | Counter c -> Atomic.set c.count 0
      | Gauge g -> Atomic.set g.value 0.0
      | Histogram h ->
        with_lock h.h_lock (fun () ->
            Array.fill h.counts 0 (Array.length h.counts) 0;
            Array.fill h.exemplars 0 (Array.length h.exemplars) None;
            h.sum <- 0.0;
            h.total <- 0))
    metrics

let find name =
  with_lock registry_lock (fun () -> Hashtbl.find_opt registry name)

let counter_value name =
  match find name with
  | Some (Counter c) -> Some (Atomic.get c.count)
  | _ -> None
