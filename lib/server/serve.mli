(** The overload-resilient query daemon.

    A long-lived HTTP/JSON front end over a {!Dirty.Store} directory
    and {!Conquer.Clean} query answering, designed to degrade rather
    than fall over:

    - {b admission control}: accepted connections enter a bounded
      queue drained by a fixed pool of worker domains; when the queue
      is full the request is shed immediately with 503 and a
      [Retry-After] hint instead of piling up latency for everyone.
    - {b deadlines}: every query runs under a wall-clock deadline
      (from the [deadline_ms] parameter, clamped to the configured
      maximum).  Time spent waiting in the queue counts against it.
      An expired deadline never produces a 500: if the query already
      started, the partial rows computed so far come back as HTTP 200
      with ["partial": true]; if it never started, 408.
    - {b disconnect cancellation}: a reaper domain watches in-flight
      connections; a client that goes away trips the query's
      cancellation token, freeing the worker at its next checkpoint.
    - {b circuit breaker}: repeated store failures (corruption,
      injected I/O faults, exhausted retries) open a per-store
      {!Breaker}; while open, queries answer 503 without touching the
      store, and a jittered-backoff probe schedule closes it again
      once the store heals.
    - {b prepared queries and result cache}: parsing and rewriting
      are cached per normalized query text; complete (non-partial)
      results are cached keyed on (normalized query, mode, store
      generation), so a store commit invalidates every stale entry by
      construction.
    - {b graceful drain}: {!shutdown} (the SIGTERM handler's job)
      stops accepting, lets workers finish the queue, and — if the
      drain deadline passes — cancels what is still running before
      joining every domain.

    {b HTTP surface} (one request per connection, [Content-Length]
    framing):

    - [GET /healthz] — 200 while the process lives.
    - [GET /readyz] — 200 when accepting and the breaker is closed,
      503 otherwise.
    - [GET /metrics] — Prometheus text exposition of the telemetry
      registry.
    - [POST /query] (SQL text as the body) or [GET /query?sql=...] —
      query parameters [deadline_ms], [budget_rows], and
      [mode=rewritten|original].  200 carries
      [{"columns", "rows", "row_count", "generation", "partial",
      "truncated", "cancelled", "cached", "elapsed_ms"}]; 400 for
      unparsable or non-rewritable queries, 408 for a deadline that
      expired before execution began, 503 when shed, draining, or
      breaker-open, 500 (with the telemetry counter
      [serve.internal_errors]) for anything else — the worker never
      dies. *)

type config = {
  host : string;  (** bind address, default 127.0.0.1 *)
  port : int;  (** 0 picks an ephemeral port (see {!port}) *)
  concurrency : int;  (** worker domains draining the queue *)
  queue_capacity : int;  (** admission queue bound; beyond it, shed *)
  default_deadline : float;  (** seconds, when [deadline_ms] absent *)
  max_deadline : float;  (** ceiling clamped onto client deadlines *)
  default_budget_rows : int option;  (** row budget when none given *)
  jobs : int;  (** engine domains per query; 1 = serial execution *)
  cache_capacity : int;  (** result-cache entries; 0 disables *)
  breaker_threshold : int;  (** store failures before tripping open *)
  drain_deadline : float;  (** seconds {!run} waits before hard drain *)
  retry_after : float;  (** seconds advertised on shed responses *)
}

val default_config : config

type t

val create : ?config:config -> dir:string -> unit -> t
(** Sweep the store directory ({!Dirty.Store.recover}), load the
    committed snapshot, build the query session, and bind the listen
    socket.  Enables telemetry for the process (the daemon's counters
    and [/metrics] endpoint are part of its contract).
    @raise Dirty.Store.Corrupt when no intact snapshot exists (the
    CLI maps this to exit code 4). *)

val port : t -> int
(** The bound port (useful with [port = 0]). *)

val recovery_log : t -> string list
(** What the startup {!Dirty.Store.recover} sweep removed. *)

type drain_report = {
  drained : bool;
      (** every in-flight and queued request completed within
          [drain_deadline] *)
  cancelled_inflight : int;
      (** queries force-cancelled by the hard drain *)
}

val run : t -> drain_report
(** Serve until {!shutdown}: spawns the worker pool and the
    disconnect reaper, then accepts in the calling domain (with
    [SIGPIPE] ignored process-wide — socket writes must fail with
    [EPIPE], not kill the daemon).  Returns once every domain is
    joined. *)

val shutdown : t -> unit
(** Begin draining: stop accepting, finish (or, past the drain
    deadline, cancel) in-flight work.  Safe from any domain;
    idempotent.  Takes a lock — from a signal handler use
    {!request_shutdown} instead. *)

val request_shutdown : t -> unit
(** Async-signal-safe {!shutdown} request (one atomic store): the
    accept loop notices within one poll interval and begins the
    drain.  This is what the CLI's SIGTERM/SIGINT handlers call. *)
