(** Sparse finite probability distributions over integer-coded
    symbols.

    Symbols are non-negative integers (callers intern their domain
    values, see {!Prob.Interning}); probabilities of symbols outside
    the support are zero.  All logarithms are base 2, so entropies and
    divergences are in bits. *)

type t

val of_assoc : (int * float) list -> t
(** Builds a distribution from (symbol, mass) pairs.  Masses for the
    same symbol accumulate; zero-mass entries are dropped.
    @raise Invalid_argument on negative mass. *)

val uniform : int list -> t
(** Uniform distribution over the given (distinct) symbols. *)

val singleton : int -> t

val prob : t -> int -> float
val support : t -> int list
(** Symbols with non-zero mass, ascending. *)

val support_size : t -> int
val total_mass : t -> float
val is_normalized : ?eps:float -> t -> bool

val normalize : t -> t
(** Scale to total mass 1. @raise Invalid_argument on zero total
    mass. *)

val scale : float -> t -> t

val mix : (float * t) list -> t
(** Weighted mixture [sum_i w_i * d_i]; weights need not sum to 1 (the
    result is not normalized unless they do and each [d_i] is). *)

val fold : (int -> float -> 'a -> 'a) -> t -> 'a -> 'a

val entropy : t -> float
(** Shannon entropy in bits; 0·log 0 = 0. Assumes normalization. *)

val kl_divergence : t -> t -> float
(** [kl_divergence p q] = Σ p(x) log₂ (p(x)/q(x)).
    @raise Invalid_argument when p's support is not contained in
    q's (infinite divergence). *)

val js_divergence : ?w1:float -> ?w2:float -> t -> t -> float
(** Generalized Jensen–Shannon divergence with mixture weights [w1],
    [w2] (default 0.5 each):
    [w1·KL(p‖m) + w2·KL(q‖m)] with [m = w1·p + w2·q]. *)

val equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
