test/test_engine.ml: Alcotest Array Conquer Dirty Engine Fixtures Float List Relation Schema Sql String Value
