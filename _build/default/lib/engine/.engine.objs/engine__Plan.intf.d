lib/engine/plan.mli: Format Sql
