(** Independent-tuple possible-worlds semantics (Dalvi–Suciu style),
    implemented by naive world enumeration.

    Under this semantics every tuple is independently present with
    its probability — there is no exclusivity between the duplicates
    of a cluster, so a world may retain zero, one, or several tuples
    of the same cluster.  The paper argues (Section 1) that this is
    the wrong semantics for duplicated data; this module makes the
    contrast executable (see the [ablation-independent] bench
    report).

    The enumeration is 2^n in the number of tuples; it is only usable
    for example-sized databases. *)

val world_count : Dirty.Dirty_db.t -> float

val answers :
  ?max_worlds:int -> Dirty.Dirty_db.t -> Sql.Ast.query -> Dirty.Relation.t
(** Each distinct answer tuple with the total probability of the
    worlds producing it.  Output schema and sorting as in
    {!Candidates.clean_answers}.
    @raise Invalid_argument when 2^n exceeds [max_worlds] (default
    [1_000_000]). *)
