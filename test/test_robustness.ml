(* Robustness: complete structured diagnostics (Validate), per-cluster
   repair policies (Repair), crash-safe persistence (Store), and
   execution budgets (Engine.Budget), exercised end-to-end with the
   fault-injection helpers of [Fault]. *)

open Dirty

let v_s s = Value.String s
let v_f f = Value.Float f

(* ---- Validate: one pass reports every seeded problem ---- *)

let seeded_diags () =
  Validate.db_diagnostics ~references:[ Seeded.seeded_reference ]
    (Seeded.seeded_db ())

let count p diags = List.length (List.filter p diags)

let test_validate_reports_everything () =
  let diags = seeded_diags () in
  let open Validate in
  Alcotest.(check int) "cluster sum mismatch" 1
    (count (function Cluster_sum_mismatch { cluster; _ } ->
         Value.equal cluster (v_s "c1") | _ -> false)
       diags);
  Alcotest.(check int) "non-numeric probability" 1
    (count (function Non_numeric_probability _ -> true | _ -> false) diags);
  Alcotest.(check int) "NaN probability" 1
    (count (function Nan_probability _ -> true | _ -> false) diags);
  Alcotest.(check int) "out-of-range probabilities" 2
    (count (function Probability_out_of_range _ -> true | _ -> false) diags);
  Alcotest.(check int) "zero probability (warning)" 1
    (count (function Zero_probability _ -> true | _ -> false) diags);
  Alcotest.(check int) "duplicate tuples (warning)" 1
    (count (function Duplicate_tuple _ -> true | _ -> false) diags);
  Alcotest.(check int) "dangling reference" 1
    (count (function Dangling_reference { value; _ } ->
         Value.equal value (v_s "zzz") | _ -> false)
       diags);
  (* nothing else: the control cluster c7 and orders/o2 are clean *)
  Alcotest.(check int) "total diagnostics" 8 (List.length diags);
  Alcotest.(check int) "error-severity subset" 6
    (List.length (Validate.errors diags));
  Alcotest.(check bool) "not clean" false (Validate.is_clean diags)

let test_validate_clean_db () =
  let diags = Validate.db_diagnostics (Fixtures.figure2_db ()) in
  Alcotest.(check int) "no diagnostics" 0 (List.length diags);
  Alcotest.(check bool) "clean" true (Validate.is_clean diags)

let test_validate_unknown_reference () =
  let diags =
    Validate.db_diagnostics
      ~references:
        [ { Validate.ref_table = "orders"; fk_attr = "nope"; target = "cust" } ]
      (Seeded.seeded_db ())
  in
  Alcotest.(check bool) "missing foreign-key column reported" true
    (List.exists
       (function Validate.Missing_column { column = "nope"; _ } -> true
         | _ -> false)
       diags)

(* ---- Repair: every policy yields a Validate-clean database ---- *)

let refs = [ Seeded.seeded_reference ]

let test_repair_policy policy () =
  let db, actions = Repair.repair_db ~references:refs ~policy (Seeded.seeded_db ()) in
  Alcotest.(check bool) "actions reported" true (actions <> []);
  Alcotest.(check bool)
    (Repair.policy_to_string policy ^ " leaves no errors")
    true
    (Validate.is_clean (Validate.db_diagnostics ~references:refs db))

let test_repair_fail_policy () =
  match Repair.repair_db ~references:refs ~policy:Repair.Fail (Seeded.seeded_db ()) with
  | exception Repair.Repair_failed _ -> ()
  | _ -> Alcotest.fail "Fail policy did not raise"

let test_repair_renormalize_values () =
  let db, _ =
    Repair.repair_db ~references:refs ~policy:Repair.Renormalize
      (Seeded.seeded_db ())
  in
  let cust = Dirty_db.find_table db "cust" in
  let prob_of name =
    let found = ref None in
    Relation.iter
      (fun row ->
        if Value.equal (Relation.value cust.relation row "name") (v_s name) then
          found := Value.to_float (Relation.value cust.relation row "prob"))
      cust.relation;
    match !found with
    | Some p -> p
    | None -> Alcotest.failf "row %s not found" name
  in
  (* c1 summed to 1.3: renormalized in place *)
  Fixtures.check_float "Ann renormalized" (0.7 /. 1.3) (prob_of "Ann");
  Fixtures.check_float "Anne renormalized" (0.6 /. 1.3) (prob_of "Anne");
  (* c2 had a non-numeric probability: renormalize degrades to uniform *)
  Fixtures.check_float "Bob uniform fallback" 0.5 (prob_of "Bob");
  (* the clean control cluster is untouched *)
  Fixtures.check_float "Gus untouched" 1.0 (prob_of "Gus")

let test_repair_drop_dangling () =
  let db, _ =
    Repair.repair_db ~references:refs ~policy:Repair.Drop_cluster
      (Seeded.seeded_db ())
  in
  let orders = Dirty_db.find_table db "orders" in
  Alcotest.(check int) "dangling order cluster dropped" 1
    (Relation.cardinality orders.relation);
  Alcotest.(check bool) "surviving row is the clean one" true
    (Value.equal (Relation.value orders.relation
                    (Relation.get orders.relation 0) "id")
       (v_s "o2"))

let test_repair_null_dangling () =
  let db, _ =
    Repair.repair_db ~references:refs ~policy:Repair.Renormalize
      (Seeded.seeded_db ())
  in
  let orders = Dirty_db.find_table db "orders" in
  Alcotest.(check int) "no rows dropped" 2 (Relation.cardinality orders.relation);
  let fk_of_o1 =
    Relation.value orders.relation (Relation.get orders.relation 0) "custfk"
  in
  Alcotest.(check bool) "dangling foreign key nulled" true
    (Value.is_null fk_of_o1)

(* every non-Fail policy, on random garbage probabilities drawn over
   the fuzzing harness's table space (see [Seeded.garbage_table_gen]) *)
let repair_property =
  let policy_gen =
    QCheck.Gen.oneofl
      [
        Repair.Renormalize; Repair.Uniform_fallback;
        Repair.Clamp_and_renormalize; Repair.Drop_cluster;
      ]
  in
  let print ((t : Dirty_db.table), policy) =
    Repair.policy_to_string policy ^ "\n" ^ Relation.to_string t.relation
  in
  let arb =
    QCheck.make ~print QCheck.Gen.(pair Seeded.garbage_table_gen policy_gen)
  in
  QCheck.Test.make ~count:200 ~name:"repair leaves no error diagnostics" arb
    (fun (t, policy) ->
      let t', _ = Repair.repair_table ~policy t in
      Validate.is_clean (Validate.table_diagnostics t'))

(* ---- Store: crash safety and failure modes ---- *)

let modified_figure2 () =
  (* figure2 plus a new table the interrupted save gets to write first *)
  let extra =
    Relation.create
      (Schema.make [ ("id", Value.TString); ("prob", Value.TFloat) ])
      [ [| v_s "x1"; v_f 1.0 |] ]
  in
  let db = Fixtures.figure2_db () in
  Dirty_db.add_table db
    (Dirty_db.make_table ~name:"aextra" ~id_attr:"id" ~prob_attr:"prob" extra)

(* a save of an n-table database performs one Io.write per file:
   n tables, then the journal, the manifest, and CURRENT *)
let writes_per_save db = List.length (Dirty_db.tables db) + 3

let crashed_save ~at_write dir db =
  Fault.Io.reset ();
  Fault.Io.arm_nth_write at_write Fault.Io.Crash;
  (match Store.save dir db with
  | () -> Alcotest.fail "save survived its crash schedule"
  | exception Fault.Io.Crashed -> ());
  Fault.Io.reset ()

let test_store_crash_before_commit () =
  Testutil.with_temp_dir (fun dir ->
      let v1 = Fixtures.figure2_db () in
      Store.save dir v1;
      (* the re-save of a grown database crashes at the very last
         write — CURRENT's temp file — so generation 2 is fully on
         disk but never committed *)
      let v2 = modified_figure2 () in
      crashed_save ~at_write:(writes_per_save v2 - 1) dir v2;
      let db = Store.load dir in
      Alcotest.(check (list string))
        "load sees exactly the previous save"
        (Dirty_db.table_names v1) (Dirty_db.table_names db);
      List.iter2
        (fun (a : Dirty_db.table) (b : Dirty_db.table) ->
          Alcotest.(check bool) (a.name ^ " intact") true
            (Relation.equal_as_bags a.relation b.relation))
        (Dirty_db.tables v1) (Dirty_db.tables db))

let test_store_crash_on_first_save () =
  Testutil.with_temp_dir (fun dir ->
      (* crash while writing the journal of the very first save: no
         generation was ever committed, so there is nothing to load *)
      crashed_save ~at_write:2 dir (Fixtures.figure2_db ());
      match Store.load dir with
      | exception Sys_error _ -> ()
      | _ -> Alcotest.fail "half-written first save was loadable")

let test_store_stray_temp_ignored () =
  Testutil.with_temp_dir (fun dir ->
      let db = Fixtures.figure2_db () in
      Store.save dir db;
      Testutil.write_bytes (Filename.concat dir ".store-stray.tmp") "id,pr";
      let db' = Store.load dir in
      Alcotest.(check (list string))
        "temp file invisible to load"
        (Dirty_db.table_names db) (Dirty_db.table_names db'))

let test_store_torn_table_file () =
  Testutil.with_temp_dir (fun dir ->
      Store.save dir (Fixtures.figure2_db ());
      let path = Filename.concat dir "customer.g1.csv" in
      Testutil.truncate_file path ~keep:30;
      (* the checksum catches the tear; with no older generation to
         fall back to, strict load reports corruption *)
      (match Store.load dir with
      | exception Store.Corrupt _ -> ()
      | _ -> Alcotest.fail "torn table accepted by strict load");
      let db, warnings = Store.load_verbose ~lenient:true dir in
      Alcotest.(check (list string)) "torn table skipped" [ "orders" ]
        (Dirty_db.table_names db);
      Alcotest.(check int) "one warning" 1 (List.length warnings))

let test_store_missing_table_file () =
  Testutil.with_temp_dir (fun dir ->
      Store.save dir (Fixtures.figure2_db ());
      Sys.remove (Filename.concat dir "orders.g1.csv");
      (match Store.load dir with
      | exception Store.Corrupt _ -> ()
      | _ -> Alcotest.fail "missing table accepted by strict load");
      let db, warnings = Store.load_verbose ~lenient:true dir in
      Alcotest.(check (list string)) "missing table skipped" [ "customer" ]
        (Dirty_db.table_names db);
      Alcotest.(check int) "one warning" 1 (List.length warnings))

let test_store_manifest_corruption_falls_back () =
  Testutil.with_temp_dir (fun dir ->
      let v1 = Fixtures.figure2_db () in
      Store.save dir v1;
      Store.save dir (modified_figure2 ());
      (* damage the committed generation's manifest: its checksum no
         longer matches the journal, so load falls back to gen 1 *)
      let manifest = Filename.concat dir "manifest.g2.csv" in
      Testutil.write_bytes manifest (Testutil.read_bytes manifest ^ "too,few\n");
      let db, warnings = Store.load_verbose dir in
      Alcotest.(check (list string))
        "fell back to the previous snapshot"
        (Dirty_db.table_names v1) (Dirty_db.table_names db);
      Alcotest.(check bool) "warning names the bad generation" true
        (List.exists (fun w -> Testutil.contains w "generation 2") warnings))

let test_store_manifest_destroyed () =
  Testutil.with_temp_dir (fun dir ->
      Store.save dir (Fixtures.figure2_db ());
      Testutil.write_bytes
        (Filename.concat dir "manifest.g1.csv")
        "not,a,manifest\n";
      (* fatal even in lenient mode: with the only generation's
         manifest gone and nothing to fall back to, nothing loads *)
      match Store.load ~lenient:true dir with
      | exception Store.Corrupt _ -> ()
      | _ -> Alcotest.fail "destroyed manifest accepted")

let test_store_save_is_atomic_per_file () =
  Testutil.with_temp_dir (fun dir ->
      (* overwriting an existing store never truncates in place: the
         old generation stays on disk until the new one commits, and
         generations older than the fallback are swept *)
      Store.save dir (Fixtures.figure2_db ());
      Store.save dir (Fixtures.figure2_db ());
      Store.save dir (Fixtures.figure2_db ());
      Alcotest.(check bool) "superseded generation swept" false
        (Sys.file_exists (Filename.concat dir "customer.g1.csv"));
      Alcotest.(check bool) "fallback generation kept" true
        (Sys.file_exists (Filename.concat dir "customer.g2.csv"));
      let db = Store.load dir in
      Alcotest.(check int) "still two tables" 2
        (List.length (Dirty_db.table_names db)))

let test_store_recover_sweeps_debris () =
  Testutil.with_temp_dir (fun dir ->
      let v1 = Fixtures.figure2_db () in
      Store.save dir v1;
      (* a crashed re-save leaves uncommitted gen-2 files and a torn
         temp file behind *)
      crashed_save ~at_write:3 dir (modified_figure2 ());
      let actions = Store.recover dir in
      Alcotest.(check bool) "something was swept" true (actions <> []);
      Alcotest.(check (list string)) "second sweep finds nothing" []
        (Store.recover dir);
      let db = Store.load dir in
      Alcotest.(check (list string))
        "committed snapshot untouched"
        (Dirty_db.table_names v1) (Dirty_db.table_names db))

(* ---- budgets ---- *)

let test_budget_admit_raise () =
  let b = Engine.Budget.create { Engine.Budget.max_rows = Some 5; max_elapsed = None } in
  Alcotest.(check int) "within budget" 3 (Engine.Budget.admit b 3);
  (match Engine.Budget.admit b 3 with
  | exception Engine.Budget.Exceeded { produced; limits; _ } ->
    Alcotest.(check int) "produced counts the overflow" 6 produced;
    Alcotest.(check (option int)) "limits echoed" (Some 5) limits.max_rows
  | _ -> Alcotest.fail "over-budget admit did not raise");
  (* the exception propagates; exhausted is the Truncate-mode flag *)
  Alcotest.(check int) "produced still recorded" 6 (Engine.Budget.produced b)

let test_budget_admit_truncate () =
  let b =
    Engine.Budget.create ~mode:Engine.Budget.Truncate
      { Engine.Budget.max_rows = Some 5; max_elapsed = None }
  in
  Alcotest.(check int) "full batch" 3 (Engine.Budget.admit b 3);
  Alcotest.(check int) "partial batch" 2 (Engine.Budget.admit b 4);
  Alcotest.(check bool) "truncated" true (Engine.Budget.truncated b);
  Alcotest.(check int) "nothing after exhaustion" 0 (Engine.Budget.admit b 1)

let budget_config ?rows ?secs () =
  { Engine.Planner.default_config with max_rows = rows; max_elapsed = secs }

let test_query_budget_raises () =
  let s = Conquer.Clean.create (Fixtures.figure2_db ()) in
  match Conquer.Clean.answers ~config:(budget_config ~rows:2 ()) s Fixtures.q2 with
  | exception Engine.Budget.Exceeded _ -> ()
  | _ -> Alcotest.fail "row budget did not raise"

let test_query_time_budget_raises () =
  let s = Conquer.Clean.create (Fixtures.figure2_db ()) in
  (* a pre-expired clock: the first wall-clock check trips; crossing a
     time limit surfaces as a cancellation, not Exceeded *)
  match
    Conquer.Clean.answers ~config:(budget_config ~secs:(-1.0) ()) s Fixtures.q2
  with
  | exception Engine.Cancel.Cancelled _ -> ()
  | _ -> Alcotest.fail "time budget did not cancel"

let test_query_unbudgeted_config_unchanged () =
  let s = Conquer.Clean.create (Fixtures.figure2_db ()) in
  let rel = Conquer.Clean.answers ~config:Engine.Planner.default_config s Fixtures.q2 in
  Alcotest.(check int) "all answers" 3 (Relation.cardinality rel)

let test_answers_within_degrades () =
  let s = Conquer.Clean.create (Fixtures.figure2_db ()) in
  let full = Conquer.Clean.answers s Fixtures.q2 in
  (* generous budget: complete answers, not truncated *)
  let complete =
    Conquer.Clean.answers_within ~config:(budget_config ~rows:100_000 ()) s
      Fixtures.q2
  in
  Alcotest.(check bool) "not truncated" false complete.truncated;
  Alcotest.(check bool) "same answers" true
    (Relation.equal_as_bags full complete.rows);
  (* starved budget: partial prefix, flagged *)
  let partial =
    Conquer.Clean.answers_within ~config:(budget_config ~rows:2 ()) s Fixtures.q2
  in
  Alcotest.(check bool) "truncated" true partial.truncated;
  Alcotest.(check bool) "a strict prefix of the work" true
    (Relation.cardinality partial.rows < Relation.cardinality full)

let test_top_answers_within_partial_prefix () =
  let s = Conquer.Clean.create (Fixtures.figure2_db ()) in
  let full = Conquer.Clean.top_answers ~k:3 s Fixtures.q2 in
  let generous =
    Conquer.Clean.top_answers_within ~config:(budget_config ~rows:100_000 ())
      ~k:3 s Fixtures.q2
  in
  Alcotest.(check bool) "generous budget: not truncated" false
    generous.truncated;
  Alcotest.(check bool) "generous budget: identical ranking" true
    (Relation.equal_as_bags full generous.rows);
  let starved =
    Conquer.Clean.top_answers_within ~config:(budget_config ~rows:2 ()) ~k:3 s
      Fixtures.q2
  in
  Alcotest.(check bool) "starved budget: truncated" true starved.truncated;
  Alcotest.(check bool) "starved budget: prefix only" true
    (Relation.cardinality starved.rows < Relation.cardinality full)

(* ---- end-to-end: seeded db -> repair -> store -> budgeted query ---- *)

let test_pipeline_end_to_end () =
  Testutil.with_temp_dir (fun dir ->
      let dirty = Seeded.seeded_db () in
      Alcotest.(check bool) "starts dirty" false
        (Validate.is_clean (Validate.db_diagnostics ~references:refs dirty));
      let repaired, _ =
        Repair.repair_db ~references:refs ~policy:Repair.Clamp_and_renormalize
          dirty
      in
      Store.save dir repaired;
      let loaded = Store.load dir in
      Alcotest.(check bool) "reloaded db validates" true
        (Validate.is_clean (Validate.db_diagnostics loaded));
      let s = Conquer.Clean.create loaded in
      let { Conquer.Clean.rows; truncated; cancelled = _ } =
        Conquer.Clean.answers_within
          ~config:(budget_config ~rows:100_000 ())
          s "select id from cust"
      in
      Alcotest.(check bool) "not truncated" false truncated;
      Alcotest.(check int) "one answer per cluster" 7 (Relation.cardinality rows))

(* ---- CSV round-trips with hostile content ---- *)

let hostile_schema =
  Schema.make [ ("a", Value.TString); ("b", Value.TString) ]

let test_csv_embedded_newlines () =
  let rel =
    Relation.create hostile_schema
      [
        [| v_s "line1\nline2"; v_s "plain" |];
        [| v_s "with,comma"; v_s "with\"quote" |];
        (* an empty cell reads back as Null (Value.parse convention) *)
        [| v_s "\r\nwindows"; Value.Null |];
      ]
  in
  let path = Filename.temp_file "conquer" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv.write_file path rel;
      let rel' = Csv.load_file path in
      Alcotest.(check bool) "newline fields round-trip" true
        (Relation.equal_as_bags rel rel'))

let test_csv_empty_single_field_row () =
  let rows = [ [ "v" ]; [ "x" ]; [ "" ]; [ "y" ] ] in
  let rendered =
    String.concat "\n" (List.map Csv.render_line rows) ^ "\n"
  in
  Alcotest.(check int) "empty row not dropped" 4
    (List.length (Csv.parse_rows rendered));
  Alcotest.(check (list (list string))) "round-trip" rows
    (Csv.parse_rows rendered)

let test_csv_crlf_and_blank_lines () =
  let doc = "a,b\r\n1,2\r\n\r\n3,4\n\n" in
  Alcotest.(check (list (list string))) "CRLF handled, blank lines skipped"
    [ [ "a"; "b" ]; [ "1"; "2" ]; [ "3"; "4" ] ]
    (Csv.parse_rows doc)

let () =
  Alcotest.run "robustness"
    [
      ( "validate",
        [
          Alcotest.test_case "reports every seeded problem" `Quick
            test_validate_reports_everything;
          Alcotest.test_case "clean db is clean" `Quick test_validate_clean_db;
          Alcotest.test_case "unknown reference column" `Quick
            test_validate_unknown_reference;
        ] );
      ( "repair",
        [
          Alcotest.test_case "renormalize -> clean" `Quick
            (test_repair_policy Repair.Renormalize);
          Alcotest.test_case "clamp -> clean" `Quick
            (test_repair_policy Repair.Clamp_and_renormalize);
          Alcotest.test_case "uniform -> clean" `Quick
            (test_repair_policy Repair.Uniform_fallback);
          Alcotest.test_case "drop -> clean" `Quick
            (test_repair_policy Repair.Drop_cluster);
          Alcotest.test_case "fail raises" `Quick test_repair_fail_policy;
          Alcotest.test_case "renormalized values" `Quick
            test_repair_renormalize_values;
          Alcotest.test_case "drop removes dangling cluster" `Quick
            test_repair_drop_dangling;
          Alcotest.test_case "null out dangling foreign key" `Quick
            test_repair_null_dangling;
          QCheck_alcotest.to_alcotest ~long:false repair_property;
        ] );
      ( "store",
        [
          Alcotest.test_case "crash before commit keeps old db" `Quick
            test_store_crash_before_commit;
          Alcotest.test_case "crash on first save loads nothing" `Quick
            test_store_crash_on_first_save;
          Alcotest.test_case "stray temp file ignored" `Quick
            test_store_stray_temp_ignored;
          Alcotest.test_case "torn table file" `Quick test_store_torn_table_file;
          Alcotest.test_case "missing table file" `Quick
            test_store_missing_table_file;
          Alcotest.test_case "manifest corruption falls back" `Quick
            test_store_manifest_corruption_falls_back;
          Alcotest.test_case "manifest destroyed" `Quick
            test_store_manifest_destroyed;
          Alcotest.test_case "resave over existing store" `Quick
            test_store_save_is_atomic_per_file;
          Alcotest.test_case "recover sweeps debris" `Quick
            test_store_recover_sweeps_debris;
        ] );
      ( "budget",
        [
          Alcotest.test_case "admit raises in Raise mode" `Quick
            test_budget_admit_raise;
          Alcotest.test_case "admit truncates in Truncate mode" `Quick
            test_budget_admit_truncate;
          Alcotest.test_case "row budget raises" `Quick test_query_budget_raises;
          Alcotest.test_case "time budget raises" `Quick
            test_query_time_budget_raises;
          Alcotest.test_case "config without budget unchanged" `Quick
            test_query_unbudgeted_config_unchanged;
          Alcotest.test_case "answers_within degrades gracefully" `Quick
            test_answers_within_degrades;
          Alcotest.test_case "top_answers_within partial prefix" `Quick
            test_top_answers_within_partial_prefix;
        ] );
      ( "end-to-end",
        [ Alcotest.test_case "validate/repair/store/budget" `Quick
            test_pipeline_end_to_end ] );
      ( "csv",
        [
          Alcotest.test_case "embedded newlines round-trip" `Quick
            test_csv_embedded_newlines;
          Alcotest.test_case "empty single-field row" `Quick
            test_csv_empty_single_field_row;
          Alcotest.test_case "CRLF and blank lines" `Quick
            test_csv_crlf_and_blank_lines;
        ] );
    ]
