lib/tpch/queries.ml: List
