(** Minimal CSV reader/writer used by the CLI and the examples.

    Supports RFC-4180-style quoting: fields containing the separator,
    a double quote, or a newline are quoted with ["..."] and embedded
    quotes are doubled. *)

exception Parse_error of { path : string; line : int; msg : string }
(** A structurally invalid document: [path] and the 1-based physical
    [line] locate the offending row ([path] is ["<csv>"] when the
    input did not come from a file). *)

val parse_line : ?sep:char -> string -> string list
(** Parse a single physical line (no embedded newlines). *)

val parse_rows : ?sep:char -> string -> string list list
(** Parse a whole CSV document.  Quoting is honoured {e across} line
    boundaries, so fields containing newlines round-trip; blank lines
    (outside quotes) are skipped; CRLF and lone-CR terminators are
    tolerated. *)

val parse_rows_loc : ?sep:char -> string -> (int * string list) list
(** Like {!parse_rows}, each row tagged with the 1-based physical line
    it starts on. *)

val render_line : ?sep:char -> string list -> string
(** Inverse of {!parse_line}/{!parse_rows} row rendering.  A row whose
    single field is the empty string renders as [""] (quoted) so it is
    not mistaken for a blank line on read. *)

val read_channel : ?sep:char -> in_channel -> string list list
(** {!parse_rows} over the channel's remaining contents. *)

val read_file : ?sep:char -> string -> string list list
(** Reads go through {!Fault.Io}, so fault-injection schedules cover
    the load path. *)

val relation_of_rows :
  ?path:string -> ?header:bool -> string list list -> Relation.t
(** Build a relation from raw CSV rows.  When [header] (default true)
    the first row gives attribute names; otherwise names are
    [c0, c1, ...].  Column types are inferred by {!Value.parse} on the
    data (majority vote; mixed columns degrade to VARCHAR, storing the
    parsed values unchanged).
    @raise Parse_error on a row whose arity differs from the header's
    (located by row index when the physical line is unknown). *)

val relation_of_string :
  ?path:string -> ?sep:char -> ?header:bool -> string -> Relation.t
(** {!parse_rows} + {!relation_of_rows} with physical line numbers in
    errors. *)

val load_file : ?sep:char -> ?header:bool -> string -> Relation.t
(** @raise Parse_error with the file's path and physical line number
    on malformed rows. *)

val write_channel : ?sep:char -> ?header:bool -> out_channel -> Relation.t -> unit
val write_file : ?sep:char -> ?header:bool -> string -> Relation.t -> unit
