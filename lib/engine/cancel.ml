(* Cooperative cancellation.

   A token is a single atomic flag threaded through the executor's
   checkpoints: budget charges, operator boundaries, and the parallel
   pool's chunk-claim loop all poll it, so a long-running query — in
   particular a partition-parallel join spread over several domains —
   can be interrupted at the next checkpoint rather than only between
   queries.  Checking costs one atomic load, cheap enough for per-row
   paths.

   Tripping is one-shot and carries a reason (published before the
   flag, so any checkpoint that observes the flag also sees why).  The
   wall-clock watchdog behind [--budget-time] lives here too: OCaml's
   [Condition] has no timed wait, so [with_deadline] runs a small
   polling domain that trips the token when the deadline passes and is
   joined when the guarded region ends. *)

let m_cancellations =
  Telemetry.Metrics.counter "engine.cancel.cancellations"
    ~help:"queries interrupted via a cancellation token"

type token = { flag : bool Atomic.t; why : string Atomic.t }

exception Cancelled of string

let () =
  Printexc.register_printer (function
    | Cancelled reason -> Some (Printf.sprintf "query cancelled: %s" reason)
    | _ -> None)

let create () = { flag = Atomic.make false; why = Atomic.make "cancelled" }

let cancel ?(reason = "cancelled") t =
  if not (Atomic.get t.flag) then begin
    (* reason first, flag second: observers of the flag see the reason *)
    Atomic.set t.why reason;
    if Atomic.compare_and_set t.flag false true then
      Telemetry.Metrics.inc m_cancellations
  end

let cancelled t = Atomic.get t.flag
let reason t = if Atomic.get t.flag then Some (Atomic.get t.why) else None
let check t = if Atomic.get t.flag then raise (Cancelled (Atomic.get t.why))

(* ---- wall-clock watchdog ---- *)

let poll_interval = 0.002

let expired_reason seconds =
  if seconds <= 0.0 then
    Printf.sprintf "deadline of %gs already expired" seconds
  else Printf.sprintf "time budget of %gs exceeded" seconds

let with_deadline_watchdog ~seconds t f =
  let stop = Atomic.make false in
  let deadline = Unix.gettimeofday () +. seconds in
  let dog =
    Domain.spawn (fun () ->
        let rec loop () =
          if Atomic.get stop || Atomic.get t.flag then ()
          else begin
            let left = deadline -. Unix.gettimeofday () in
            if left <= 0.0 then
              cancel ~reason:(Printf.sprintf "time budget of %gs exceeded" seconds) t
            else begin
              Unix.sleepf (Float.min poll_interval left);
              loop ()
            end
          end
        in
        loop ())
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Domain.join dog)
    f

let with_deadline ~seconds t f =
  (* A deadline at or below the watchdog tick is beneath the watchdog's
     resolution: it would fire one poll interval late, after the guarded
     function had already started doing work it was never entitled to.
     Trip the token synchronously instead, before [f] runs — [f] still
     executes (so Truncate-mode callers get their empty partial result
     through the normal path) but observes the cancellation at its very
     first checkpoint.  No watchdog domain is spawned. *)
  if seconds <= poll_interval then begin
    cancel ~reason:(expired_reason seconds) t;
    f ()
  end
  else with_deadline_watchdog ~seconds t f
