test/test_conquer.ml: Alcotest Array Cluster Conquer Dirty Dirty_db Engine Fixtures Float Format List Option Printf Relation Schema Sql String Value
