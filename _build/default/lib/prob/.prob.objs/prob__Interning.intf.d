lib/prob/interning.mli: Dirty
