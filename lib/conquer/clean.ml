open Dirty

let log_src = Logs.Src.create "conquer.clean" ~doc:"clean query answering"

module Log = (val Logs.src_log log_src)

type session = {
  dirty : Dirty_db.t;
  engine : Engine.Database.t;
  env : Dirty_schema.env;
  shard : Engine.Shard.session option;
}

let m_sessions =
  Telemetry.Metrics.counter "conquer.sessions" ~help:"clean-answer sessions created"

let m_queries =
  Telemetry.Metrics.counter "conquer.queries"
    ~help:"clean-answer queries served (all modes)"

let m_clusters_indexed =
  Telemetry.Metrics.counter "conquer.clusters_indexed"
    ~help:"identifier-index entries built at session creation"

(* wrap a query entry point in a root span carrying the query mode *)
let spanned mode f =
  Telemetry.Metrics.inc m_queries;
  Telemetry.Span.with_ ~name:"conquer.answers" ~attrs:[ ("mode", mode) ] f

let create ?(index_identifiers = true) ?shards dirty =
  Telemetry.Metrics.inc m_sessions;
  Telemetry.Span.with_ ~name:"conquer.session_create" @@ fun () ->
  let engine = Engine.Database.create () in
  List.iter
    (fun (t : Dirty_db.table) ->
      Engine.Database.add_relation engine ~name:t.name t.relation;
      if index_identifiers then begin
        Engine.Database.create_index engine ~table:t.name ~attr:t.id_attr;
        Engine.Database.analyze engine t.name;
        Telemetry.Metrics.inc
          ~n:(Relation.cardinality t.relation)
          m_clusters_indexed
      end)
    (Dirty_db.tables dirty);
  let shard =
    match shards with
    | None -> None
    | Some n ->
      Some (Engine.Shard.create ~index_identifiers ~base:engine ~shards:n dirty)
  in
  { dirty; engine; env = Dirty_schema.of_dirty_db dirty; shard }

let dirty_db s = s.dirty
let engine s = s.engine
let env s = s.env
let shards s = match s.shard with Some sh -> Engine.Shard.shards sh | None -> 1

(* Every rewritten-query entry point funnels through these: a sharded
   session scatters shardable queries across the shard catalogs and
   falls back to the plain engine path for the rest, so callers see
   one behaviour whatever the shard count. *)
let run_ast ?config s q =
  match s.shard with
  | Some sh -> (
    match Engine.Shard.query_ast ?config sh q with
    | Some rel -> rel
    | None -> Engine.Database.query_ast ?config s.engine q)
  | None -> Engine.Database.query_ast ?config s.engine q

let run_ast_within ?config ?cancel s q =
  match s.shard with
  | Some sh -> (
    match Engine.Shard.query_ast_within ?config ?cancel sh q with
    | Some r -> r
    | None -> Engine.Database.query_ast_within ?config ?cancel s.engine q)
  | None -> Engine.Database.query_ast_within ?config ?cancel s.engine q

let check s sql = Rewritable.check s.env (Sql.Parser.parse_query sql)

let rewrite s sql =
  match Rewrite.rewrite_checked s.env (Sql.Parser.parse_query sql) with
  | Ok q -> Ok (Sql.Pretty.query_to_string q)
  | Error vs -> Error vs

let answers ?config s sql =
  spanned "rewritten" @@ fun () ->
  let q = Sql.Parser.parse_query sql in
  let rewritten = Rewrite.rewrite_exn s.env q in
  Log.debug (fun m -> m "rewritten query:@\n%a" Sql.Pretty.pp_query rewritten);
  let rel = run_ast ?config s rewritten in
  Telemetry.Span.add_attr "answers" (string_of_int (Relation.cardinality rel));
  rel

let rewritten_ast s sql =
  Rewrite.rewrite_exn s.env (Sql.Parser.parse_query sql)

let top_answers ?config ~k s sql =
  let q = rewritten_ast s sql in
  let by_prob : Sql.Ast.order_item =
    { o_expr = Sql.Ast.col Rewrite.prob_column; desc = true }
  in
  run_ast ?config s { q with order_by = [ by_prob ]; limit = Some k }

(* ---- graceful degradation under execution budgets ---- *)

type partial = { rows : Relation.t; truncated : bool; cancelled : bool }

let partial_of (rows, { Engine.Database.truncated; cancelled }) =
  { rows; truncated; cancelled }

let answers_ast_within ?config ?cancel s q = run_ast_within ?config ?cancel s q

let answers_within ?config ?cancel s sql =
  spanned "rewritten-within" @@ fun () ->
  let q = Sql.Parser.parse_query sql in
  let rewritten = Rewrite.rewrite_exn s.env q in
  Log.debug (fun m -> m "rewritten query:@\n%a" Sql.Pretty.pp_query rewritten);
  partial_of (run_ast_within ?config ?cancel s rewritten)

let top_answers_within ?config ?cancel ~k s sql =
  let q = rewritten_ast s sql in
  let by_prob : Sql.Ast.order_item =
    { o_expr = Sql.Ast.col Rewrite.prob_column; desc = true }
  in
  partial_of
    (run_ast_within ?config ?cancel s
       { q with order_by = [ by_prob ]; limit = Some k })

let answers_above ?config ~threshold s sql =
  let q = rewritten_ast s sql in
  (* the HAVING predicate re-states the SUM aggregate; the engine
     matches aggregate calls syntactically, so reuse the select item's
     expression *)
  let sum_expr =
    match q.select with
    | Items items -> (List.nth items (List.length items - 1)).expr
    | Star -> assert false
  in
  let having = Sql.Ast.Binop (Ge, sum_expr, Sql.Ast.lit_float threshold) in
  run_ast ?config s { q with having = Some having }

let answers_unchecked ?config s sql =
  let q = Sql.Parser.parse_query sql in
  run_ast ?config s (Rewrite.rewrite_clean s.env q)

let answers_oracle ?max_candidates s sql =
  Candidates.clean_answers ?max_candidates s.dirty (Sql.Parser.parse_query sql)

let original ?config s sql =
  spanned "original" @@ fun () -> run_ast ?config s (Sql.Parser.parse_query sql)

let consistent_answers ?config ?(eps = 1e-9) s sql =
  let with_probs = answers ?config s sql in
  let schema = Relation.schema with_probs in
  let prob_idx = Schema.index_of schema Rewrite.prob_column in
  let certain =
    Relation.filter
      (fun row ->
        match Value.to_float row.(prob_idx) with
        | Some p -> p >= 1.0 -. eps
        | None -> false)
      with_probs
  in
  let keep =
    List.filter (fun n -> n <> Rewrite.prob_column) (Schema.names schema)
  in
  Relation.project certain keep

let answer_probability rel row =
  ignore rel;
  match row with
  | [||] -> invalid_arg "Clean.answer_probability: empty row"
  | _ -> (
    match Value.to_float row.(Array.length row - 1) with
    | Some p -> p
    | None -> invalid_arg "Clean.answer_probability: non-numeric probability")
