lib/conquer/provenance.mli: Clean Dirty Engine Format
