lib/dirty/relation.ml: Array Format Hashtbl Int List Option Printf Schema Seq String Value
