(* Shared fixtures: the paper's running examples. *)

open Dirty

let v_s s = Value.String s
let v_i i = Value.Int i
let v_f f = Value.Float f

(* ---- Figure 1: the loyalty-card database ---- *)

let loyalty_db () =
  let loyaltycard =
    Relation.create
      (Schema.make
         [ ("cardid", Value.TInt); ("custfk", Value.TString); ("prob", Value.TFloat) ])
      [
        [| v_i 111; v_s "c1"; v_f 0.4 |];
        [| v_i 111; v_s "c2"; v_f 0.6 |];
      ]
  in
  let customer =
    Relation.create
      (Schema.make
         [
           ("custid", Value.TString);
           ("name", Value.TString);
           ("income", Value.TInt);
           ("prob", Value.TFloat);
         ])
      [
        [| v_s "c1"; v_s "John"; v_i 120_000; v_f 0.9 |];
        [| v_s "c1"; v_s "John"; v_i 80_000; v_f 0.1 |];
        [| v_s "c2"; v_s "Mary"; v_i 140_000; v_f 0.4 |];
        [| v_s "c2"; v_s "Marion"; v_i 40_000; v_f 0.6 |];
      ]
  in
  let db = Dirty_db.empty in
  let db =
    Dirty_db.add_table db
      (Dirty_db.make_table ~name:"loyaltycard" ~id_attr:"cardid" ~prob_attr:"prob"
         loyaltycard)
  in
  Dirty_db.add_table db
    (Dirty_db.make_table ~name:"customer" ~id_attr:"custid" ~prob_attr:"prob"
       customer)

(* ---- Figure 2: the order/customer database ----

   Tuple probabilities for the order cluster o2 are 0.5/0.5, which
   reproduces the candidate probabilities of Example 3. *)

let order_schema =
  Schema.make
    [
      ("id", Value.TString);
      ("orderid", Value.TInt);
      ("custfk", Value.TString);
      ("cidfk", Value.TString);
      ("quantity", Value.TInt);
      ("prob", Value.TFloat);
    ]

let customer_schema =
  Schema.make
    [
      ("id", Value.TString);
      ("custid", Value.TString);
      ("name", Value.TString);
      ("balance", Value.TInt);
      ("prob", Value.TFloat);
    ]

let orders_relation () =
  Relation.create order_schema
    [
      [| v_s "o1"; v_i 11; v_s "m1"; v_s "c1"; v_i 3; v_f 1.0 |];
      [| v_s "o2"; v_i 12; v_s "m2"; v_s "c1"; v_i 2; v_f 0.5 |];
      [| v_s "o2"; v_i 13; v_s "m3"; v_s "c2"; v_i 5; v_f 0.5 |];
    ]

let customers_relation () =
  Relation.create customer_schema
    [
      [| v_s "c1"; v_s "m1"; v_s "John"; v_i 20_000; v_f 0.7 |];
      [| v_s "c1"; v_s "m2"; v_s "John"; v_i 30_000; v_f 0.3 |];
      [| v_s "c2"; v_s "m3"; v_s "Mary"; v_i 27_000; v_f 0.2 |];
      [| v_s "c2"; v_s "m4"; v_s "Marion"; v_i 5_000; v_f 0.8 |];
    ]

let figure2_db () =
  let db = Dirty_db.empty in
  let db =
    Dirty_db.add_table db
      (Dirty_db.make_table ~name:"orders" ~id_attr:"id" ~prob_attr:"prob"
         (orders_relation ()))
  in
  Dirty_db.add_table db
    (Dirty_db.make_table ~name:"customer" ~id_attr:"id" ~prob_attr:"prob"
       (customers_relation ()))

(* The three queries of Examples 4-7 (over the Figure 2 database).
   The order relation is named [orders] to avoid the SQL keyword. *)

let q1 = "select id from customer c where balance > 10000"
let q2 =
  "select o.id, c.id from orders o, customer c \
   where o.cidfk = c.id and c.balance > 10000"
let q3 =
  "select c.id from orders o, customer c \
   where o.quantity < 5 and o.cidfk = c.id and c.balance > 25000"

(* ---- Figure 6: the Section 4 customer relation ---- *)

let section4_customer () =
  Relation.create
    (Schema.make
       [
         ("name", Value.TString);
         ("mktsegment", Value.TString);
         ("nation", Value.TString);
         ("address", Value.TString);
         ("cluster", Value.TString);
       ])
    [
      [| v_s "Mary"; v_s "building"; v_s "USA"; v_s "Jones Ave"; v_s "c1" |];
      [| v_s "Mary"; v_s "banking"; v_s "USA"; v_s "Jones Ave"; v_s "c1" |];
      [| v_s "Marion"; v_s "banking"; v_s "USA"; v_s "Jones ave"; v_s "c1" |];
      [| v_s "John"; v_s "building"; v_s "America"; v_s "Arrow"; v_s "c2" |];
      [| v_s "John S."; v_s "building"; v_s "USA"; v_s "Arrow"; v_s "c2" |];
      [| v_s "John"; v_s "banking"; v_s "Canada"; v_s "Baldwin"; v_s "c3" |];
    ]

let section4_attrs = [ "name"; "mktsegment"; "nation"; "address" ]

let section4_clustering () =
  Cluster.of_relation (section4_customer ()) ~id_attr:"cluster"

(* ---- assertion helpers ---- *)

let float_eq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_float ?(eps = 1e-9) msg expected actual =
  if not (float_eq ~eps expected actual) then
    Alcotest.failf "%s: expected %.9f, got %.9f" msg expected actual

(* Look up the probability of an answer row identified by a prefix of
   values (the non-probability columns). *)
let answer_prob rel key =
  let rows = Relation.row_list rel in
  let matches row =
    List.for_all2
      (fun expected i -> Value.equal expected row.(i))
      key
      (List.init (List.length key) Fun.id)
  in
  match List.find_opt matches rows with
  | Some row -> (
    match Value.to_float row.(Array.length row - 1) with
    | Some p -> Some p
    | None -> None)
  | None -> None

let expect_answer rel key prob =
  match answer_prob rel key with
  | Some p ->
    check_float ~eps:1e-9
      (Printf.sprintf "answer [%s]"
         (String.concat ", " (List.map Value.to_string key)))
      prob p
  | None ->
    Alcotest.failf "answer [%s] not found"
      (String.concat ", " (List.map Value.to_string key))

let expect_no_answer rel key =
  match answer_prob rel key with
  | None -> ()
  | Some p ->
    Alcotest.failf "answer [%s] unexpectedly present with probability %f"
      (String.concat ", " (List.map Value.to_string key))
      p
