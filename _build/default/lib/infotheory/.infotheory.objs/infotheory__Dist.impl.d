lib/infotheory/dist.ml: Float Format Int List Map Option
