type policy =
  | Renormalize
  | Uniform_fallback
  | Clamp_and_renormalize
  | Drop_cluster
  | Fail

let policy_to_string = function
  | Renormalize -> "renormalize"
  | Uniform_fallback -> "uniform"
  | Clamp_and_renormalize -> "clamp"
  | Drop_cluster -> "drop"
  | Fail -> "fail"

let policy_of_string = function
  | "renormalize" -> Some Renormalize
  | "uniform" | "uniform-fallback" -> Some Uniform_fallback
  | "clamp" | "clamp-and-renormalize" -> Some Clamp_and_renormalize
  | "drop" | "drop-cluster" -> Some Drop_cluster
  | "fail" -> Some Fail
  | _ -> None

(* conservativeness order used when one cluster carries diagnostics
   that select different policies *)
let rank = function
  | Renormalize -> 0
  | Clamp_and_renormalize -> 1
  | Uniform_fallback -> 2
  | Drop_cluster -> 3
  | Fail -> 4

type action = {
  a_table : string;
  a_cluster : Value.t;
  a_policy : policy;
  a_note : string;
}

let action_to_string a =
  Printf.sprintf "table %s: cluster %s: %s (%s)" a.a_table
    (Value.to_string a.a_cluster)
    a.a_note
    (policy_to_string a.a_policy)

exception Repair_failed of Validate.diagnostic

module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

let tolerance = Dirty_db.tolerance

let prob_of row pidx =
  match row.(pidx) with
  | Value.Int n -> Some (float_of_int n)
  | Value.Float f when not (Float.is_nan f) -> Some f
  | _ -> None

(* New probabilities for one cluster under a policy; returns the
   per-member probability list and a note. *)
let fix_cluster policy relation pidx members =
  let n = List.length members in
  let uniform note = (List.map (fun _ -> 1.0 /. float_of_int n) members, note) in
  let raw = List.map (fun i -> prob_of (Relation.get relation i) pidx) members in
  match policy with
  | Uniform_fallback -> uniform (Printf.sprintf "uniform 1/%d over %d tuples" n n)
  | Clamp_and_renormalize ->
    let clamped =
      List.map
        (function
          | None -> 0.0
          | Some p -> Float.max 0.0 (Float.min 1.0 p))
        raw
    in
    let sum = List.fold_left ( +. ) 0.0 clamped in
    if sum > 0.0 then
      ( List.map (fun p -> p /. sum) clamped,
        Printf.sprintf "clamped and renormalized %d tuples (clamped sum %g)" n sum )
    else uniform "clamped sum is 0; used uniform fallback"
  | Renormalize -> (
    let numeric =
      List.map (Option.map (fun p -> if p >= -.tolerance then Float.max 0.0 p else p)) raw
    in
    match
      List.fold_left
        (fun acc p ->
          match (acc, p) with
          | Some s, Some p when p >= 0.0 -> Some (s +. p)
          | _ -> None)
        (Some 0.0) numeric
    with
    | Some sum when sum > 0.0 ->
      ( List.map (fun p -> Option.get p /. sum) numeric,
        Printf.sprintf "renormalized %d tuples (sum %g)" n sum )
    | _ -> uniform "renormalize preconditions failed; used uniform fallback")
  | Drop_cluster | Fail -> assert false

let repair_table ?(policy_for = fun _ -> None) ~policy (t : Dirty_db.table) =
  let diags = Validate.table_diagnostics t in
  (match List.find_opt (function Validate.Missing_column _ -> true | _ -> false) diags with
  | Some d -> raise (Repair_failed d)
  | None -> ());
  let errors = Validate.errors diags in
  if errors = [] then (t, [])
  else begin
    let schema = Relation.schema t.relation in
    let pidx = Schema.index_of schema t.prob_attr in
    (* per-cluster: the most conservative policy its diagnostics select,
       and a representative diagnostic for error reporting *)
    let chosen : (policy * Validate.diagnostic) Vtbl.t = Vtbl.create 8 in
    let clusters_in_order = ref [] in
    List.iter
      (fun d ->
        let cluster =
          match d with
          | Validate.Non_numeric_probability { cluster; _ }
          | Validate.Nan_probability { cluster; _ }
          | Validate.Probability_out_of_range { cluster; _ }
          | Validate.Cluster_sum_mismatch { cluster; _ }
          | Validate.Empty_cluster { cluster; _ } ->
            Some cluster
          | _ -> None
        in
        match cluster with
        | None -> ()
        | Some cluster ->
          let p = Option.value ~default:policy (policy_for d) in
          (match Vtbl.find_opt chosen cluster with
          | None ->
            clusters_in_order := cluster :: !clusters_in_order;
            Vtbl.replace chosen cluster (p, d)
          | Some (p0, d0) ->
            if rank p > rank p0 then Vtbl.replace chosen cluster (p, d)
            else Vtbl.replace chosen cluster (p0, d0)))
      errors;
    let clusters_in_order = List.rev !clusters_in_order in
    (* Fail wins before any mutation *)
    List.iter
      (fun c ->
        match Vtbl.find chosen c with
        | Fail, d -> raise (Repair_failed d)
        | _ -> ())
      clusters_in_order;
    let actions = ref [] in
    (* new probability per row index, and the set of dropped clusters *)
    let row_prob = Hashtbl.create 16 in
    let dropped : unit Vtbl.t = Vtbl.create 8 in
    List.iter
      (fun cluster ->
        let p, _ = Vtbl.find chosen cluster in
        let members = Cluster.members t.clustering cluster in
        match p with
        | Fail -> assert false
        | Drop_cluster ->
          Vtbl.replace dropped cluster ();
          actions :=
            {
              a_table = t.name;
              a_cluster = cluster;
              a_policy = Drop_cluster;
              a_note = Printf.sprintf "dropped %d tuples" (List.length members);
            }
            :: !actions
        | (Renormalize | Uniform_fallback | Clamp_and_renormalize) as p ->
          let probs, note = fix_cluster p t.relation pidx members in
          List.iter2 (fun i q -> Hashtbl.replace row_prob i q) members probs;
          actions :=
            { a_table = t.name; a_cluster = cluster; a_policy = p; a_note = note }
            :: !actions)
      clusters_in_order;
    let out = ref [] in
    let n = Relation.cardinality t.relation in
    for i = n - 1 downto 0 do
      let cluster = Cluster.cluster_of_row t.clustering i in
      if not (Vtbl.mem dropped cluster) then begin
        let row = Relation.get t.relation i in
        match Hashtbl.find_opt row_prob i with
        | None -> out := row :: !out
        | Some q ->
          let row' = Array.copy row in
          row'.(pidx) <- Value.Float q;
          out := row' :: !out
      end
    done;
    let relation = Relation.create schema !out in
    let t' =
      Dirty_db.make_table ~validate:false ~name:t.name ~id_attr:t.id_attr
        ~prob_attr:t.prob_attr relation
    in
    (t', List.rev !actions)
  end

(* ---- database-level repair: tables, then dangling references ---- *)

(* One pass over [t]: null the foreign-key cells named by [to_null]
   (a list of (row, attr_index) pairs over the {e original} row
   numbering) and drop the clusters in [drop_clusters]. *)
let apply_fk_fixes (t : Dirty_db.table) ~to_null ~drop_clusters =
  let schema = Relation.schema t.relation in
  let out = ref [] in
  let n = Relation.cardinality t.relation in
  for i = n - 1 downto 0 do
    let cluster = Cluster.cluster_of_row t.clustering i in
    if not (Vtbl.mem drop_clusters cluster) then begin
      let row = Relation.get t.relation i in
      match List.filter_map (fun (r, j) -> if r = i then Some j else None) to_null with
      | [] -> out := row :: !out
      | cols ->
        let row' = Array.copy row in
        List.iter (fun j -> row'.(j) <- Value.Null) cols;
        out := row' :: !out
    end
  done;
  Dirty_db.make_table ~validate:false ~name:t.name ~id_attr:t.id_attr
    ~prob_attr:t.prob_attr (Relation.create schema !out)

let replace_table db (t : Dirty_db.table) =
  Dirty_db.add_table
    (List.fold_left
       (fun acc (u : Dirty_db.table) ->
         if u.name = t.name then acc else Dirty_db.add_table acc u)
       Dirty_db.empty (Dirty_db.tables db))
    t

let repair_db ?(references = []) ?(policy_for = fun _ -> None) ~policy db =
  let db', actions =
    List.fold_left
      (fun (db', actions) t ->
        let t', acts = repair_table ~policy_for ~policy t in
        (Dirty_db.add_table db' t', actions @ acts))
      (Dirty_db.empty, []) (Dirty_db.tables db)
  in
  let dangling =
    if references = [] then []
    else
      List.filter
        (function Validate.Dangling_reference _ -> true | _ -> false)
        (Validate.db_diagnostics ~references db')
  in
  if dangling = [] then (db', actions)
  else begin
    (* group the per-row fixes by referencing table *)
    let to_null : (string, (int * int) list) Hashtbl.t = Hashtbl.create 8 in
    let to_drop : (string, unit Vtbl.t) Hashtbl.t = Hashtbl.create 8 in
    let drop_set table =
      match Hashtbl.find_opt to_drop table with
      | Some s -> s
      | None ->
        let s = Vtbl.create 4 in
        Hashtbl.replace to_drop table s;
        s
    in
    let actions = ref actions in
    List.iter
      (fun d ->
        match d with
        | Validate.Dangling_reference { table; row; attr; value; target } -> (
          let t = Dirty_db.find_table db' table in
          let cluster = Cluster.cluster_of_row t.clustering row in
          match Option.value ~default:policy (policy_for d) with
          | Fail -> raise (Repair_failed d)
          | Drop_cluster ->
            let set = drop_set table in
            if not (Vtbl.mem set cluster) then begin
              Vtbl.replace set cluster ();
              actions :=
                {
                  a_table = table;
                  a_cluster = cluster;
                  a_policy = Drop_cluster;
                  a_note =
                    Printf.sprintf "dropped cluster: %s = %s names no cluster of %s"
                      attr (Value.to_string value) target;
                }
                :: !actions
            end
          | p ->
            let j = Schema.index_of (Relation.schema t.relation) attr in
            Hashtbl.replace to_null table
              ((row, j) :: Option.value ~default:[] (Hashtbl.find_opt to_null table));
            actions :=
              {
                a_table = table;
                a_cluster = cluster;
                a_policy = p;
                a_note =
                  Printf.sprintf "nulled %s = %s (no cluster of %s)" attr
                    (Value.to_string value) target;
              }
              :: !actions)
        | _ -> ())
      dangling;
    let tables_touched =
      List.sort_uniq String.compare
        (Hashtbl.fold (fun t _ acc -> t :: acc) to_null []
        @ Hashtbl.fold (fun t _ acc -> t :: acc) to_drop [])
    in
    let db'' =
      List.fold_left
        (fun db'' name ->
          let t = Dirty_db.find_table db'' name in
          let t' =
            apply_fk_fixes t
              ~to_null:(Option.value ~default:[] (Hashtbl.find_opt to_null name))
              ~drop_clusters:
                (Option.value ~default:(Vtbl.create 1) (Hashtbl.find_opt to_drop name))
          in
          replace_table db'' t')
        db' tables_touched
    in
    (db'', !actions)
  end
