lib/engine/stats.mli: Dirty Sql
