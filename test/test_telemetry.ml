(* Tests for the telemetry subsystem: the metrics registry, tracing
   spans, the exporters, the shared timing helper, and the
   instrumentation wired through the engine and the cleaner. *)

open Dirty

(* every test leaves the global flag off, the way production code
   expects it *)
let with_telemetry f =
  Telemetry.Metrics.reset ();
  Telemetry.Control.with_enabled f

(* ---- metrics registry ---- *)

let test_disabled_noop () =
  Telemetry.Metrics.reset ();
  let c = Telemetry.Metrics.counter "test.noop.counter" in
  let g = Telemetry.Metrics.gauge "test.noop.gauge" in
  let h = Telemetry.Metrics.histogram "test.noop.histogram" in
  Telemetry.Metrics.inc ~n:5 c;
  Telemetry.Metrics.set g 3.0;
  Telemetry.Metrics.observe h 0.1;
  Alcotest.(check int) "counter untouched" 0 (Telemetry.Metrics.count c);
  Fixtures.check_float "gauge untouched" 0.0 (Telemetry.Metrics.gauge_value g);
  Alcotest.(check int) "histogram untouched" 0 (Telemetry.Metrics.histogram_total h)

let test_counter_and_gauge () =
  with_telemetry @@ fun () ->
  let c = Telemetry.Metrics.counter "test.basic.counter" in
  Telemetry.Metrics.inc c;
  Telemetry.Metrics.inc ~n:4 c;
  Alcotest.(check int) "counter" 5 (Telemetry.Metrics.count c);
  (* find-or-create hands back the same underlying metric *)
  let c' = Telemetry.Metrics.counter "test.basic.counter" in
  Alcotest.(check int) "same handle" 5 (Telemetry.Metrics.count c');
  let g = Telemetry.Metrics.gauge "test.basic.gauge" in
  Telemetry.Metrics.set g 2.5;
  Telemetry.Metrics.add g 1.0;
  Fixtures.check_float "gauge" 3.5 (Telemetry.Metrics.gauge_value g)

let test_kind_mismatch () =
  ignore (Telemetry.Metrics.counter "test.kind");
  match Telemetry.Metrics.histogram "test.kind" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch accepted"

let test_histogram_buckets () =
  with_telemetry @@ fun () ->
  let h =
    Telemetry.Metrics.histogram ~bounds:[| 1.0; 2.0; 4.0 |] "test.buckets"
  in
  List.iter (Telemetry.Metrics.observe h) [ 0.5; 1.0; 1.5; 3.0; 100.0 ];
  (* raw counts: (<=1) gets 0.5 and 1.0; (<=2) gets 1.5; (<=4) gets
     3.0; the overflow bucket gets 100 *)
  Alcotest.(check (array int)) "raw counts" [| 2; 1; 1; 1 |]
    (Telemetry.Metrics.histogram_counts h);
  Alcotest.(check int) "total" 5 (Telemetry.Metrics.histogram_total h);
  Fixtures.check_float "sum" 106.0 (Telemetry.Metrics.histogram_sum h);
  let samples = Telemetry.Metrics.snapshot () in
  match
    List.find_opt (fun (s : Telemetry.Metrics.sample) -> s.name = "test.buckets") samples
  with
  | Some { data = Telemetry.Metrics.Histogram_value hs; _ } ->
    Alcotest.(check (array int)) "cumulative counts" [| 2; 3; 4; 5 |] hs.hs_counts;
    Alcotest.(check int) "snapshot total" 5 hs.hs_total
  | _ -> Alcotest.fail "histogram missing from snapshot"

let test_reset () =
  with_telemetry @@ fun () ->
  let c = Telemetry.Metrics.counter "test.reset.counter" in
  Telemetry.Metrics.inc ~n:7 c;
  Telemetry.Metrics.reset ();
  Alcotest.(check int) "zeroed, handle still valid" 0 (Telemetry.Metrics.count c);
  Telemetry.Metrics.inc c;
  Alcotest.(check int) "usable after reset" 1 (Telemetry.Metrics.count c)

(* four domains hammering the same counter, gauge and histogram: every
   update must land (fetch-and-add / CAS / mutex — no lost updates) *)
let test_concurrent_counters () =
  with_telemetry @@ fun () ->
  let c = Telemetry.Metrics.counter "test.concurrent.counter" in
  let g = Telemetry.Metrics.gauge "test.concurrent.gauge" in
  let h = Telemetry.Metrics.histogram ~bounds:[| 1.0 |] "test.concurrent.hist" in
  let per_domain = 10_000 in
  let work () =
    for _ = 1 to per_domain do
      Telemetry.Metrics.inc c;
      Telemetry.Metrics.add g 1.0;
      Telemetry.Metrics.observe h 0.5
    done
  in
  let domains = List.init 4 (fun _ -> Domain.spawn work) in
  List.iter Domain.join domains;
  Alcotest.(check int) "no lost increments" (4 * per_domain)
    (Telemetry.Metrics.count c);
  Fixtures.check_float "no lost gauge adds"
    (Float.of_int (4 * per_domain))
    (Telemetry.Metrics.gauge_value g);
  Alcotest.(check int) "no lost observations" (4 * per_domain)
    (Telemetry.Metrics.histogram_total h)

(* ---- spans ---- *)

let test_span_disabled_passthrough () =
  Alcotest.(check bool) "telemetry off" false (Telemetry.Control.enabled ());
  let v = Telemetry.Span.with_ ~name:"never" (fun () -> 41 + 1) in
  Alcotest.(check int) "value passes through" 42 v

let test_span_nesting () =
  let v, roots =
    Telemetry.Span.collecting (fun () ->
        Telemetry.Span.with_ ~name:"root" (fun () ->
            Telemetry.Span.add_attr "k" "v";
            Telemetry.Span.with_ ~name:"a" (fun () -> ());
            Telemetry.Span.with_ ~name:"b" (fun () -> ());
            42))
  in
  Alcotest.(check int) "result" 42 v;
  match roots with
  | [ root ] ->
    Alcotest.(check string) "root name" "root" root.Telemetry.Span.name;
    Alcotest.(check (list string)) "children in order" [ "a"; "b" ]
      (List.map (fun (s : Telemetry.Span.t) -> s.name) root.children);
    Alcotest.(check (option string)) "attr" (Some "v")
      (List.assoc_opt "k" root.attrs);
    Alcotest.(check int) "count" 3 (Telemetry.Span.count root);
    List.iter
      (fun (child : Telemetry.Span.t) ->
        Alcotest.(check bool) "parent time covers child" true
          (root.elapsed >= child.elapsed))
      root.children
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

let test_span_exception_safety () =
  let (), roots =
    Telemetry.Span.collecting (fun () ->
        try Telemetry.Span.with_ ~name:"boom" (fun () -> raise Exit)
        with Exit -> ())
  in
  Alcotest.(check (list string)) "failed span still completes" [ "boom" ]
    (List.map (fun (s : Telemetry.Span.t) -> s.name) roots);
  (* the span stack recovered: a fresh span is again a root *)
  let (), roots = Telemetry.Span.collecting (fun () ->
      Telemetry.Span.with_ ~name:"after" (fun () -> ()))
  in
  Alcotest.(check (list string)) "stack recovered" [ "after" ]
    (List.map (fun (s : Telemetry.Span.t) -> s.name) roots)

let span_names root =
  List.rev
    (Telemetry.Span.fold_preorder
       (fun acc ~depth:_ (s : Telemetry.Span.t) -> s.name :: acc)
       [] root)

let test_clean_answers_spans () =
  Telemetry.Metrics.reset ();
  let session = Conquer.Clean.create (Fixtures.figure2_db ()) in
  let answers, roots =
    Telemetry.Span.collecting (fun () -> Conquer.Clean.answers session Fixtures.q1)
  in
  Alcotest.(check bool) "query answered" true (Relation.cardinality answers > 0);
  match roots with
  | [ root ] ->
    Alcotest.(check string) "root is the clean-answer aggregation"
      "conquer.answers" root.Telemetry.Span.name;
    let names = span_names root in
    Alcotest.(check bool) "rewrite span" true (List.mem "conquer.rewrite" names);
    Alcotest.(check bool) "planner span" true (List.mem "planner.plan" names);
    Alcotest.(check bool) "plan operator spans" true
      (List.exists
         (fun n -> String.length n > 5 && String.sub n 0 5 = "exec.")
         names);
    let has_rows_out =
      Telemetry.Span.fold_preorder
        (fun acc ~depth:_ (s : Telemetry.Span.t) ->
          acc || List.mem_assoc "rows_out" s.attrs)
        false root
    in
    Alcotest.(check bool) "operators report rows_out" true has_rows_out;
    Alcotest.(check (option string)) "root reports the answer count"
      (Some (string_of_int (Relation.cardinality answers)))
      (List.assoc_opt "answers" root.attrs);
    (* the instrumented run also fed the metrics registry *)
    let count name =
      Option.value ~default:0 (Telemetry.Metrics.counter_value name)
    in
    Alcotest.(check bool) "operators counted" true (count "engine.exec.operators" > 0);
    Alcotest.(check bool) "rows counted" true (count "engine.exec.rows_out" > 0);
    Alcotest.(check int) "one plan" 1 (count "engine.planner.plans");
    Alcotest.(check int) "one conquer query" 1 (count "conquer.queries");
    Alcotest.(check int) "one rewrite" 1 (count "conquer.rewrite.queries")
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

(* ---- store instrumentation ---- *)

let test_store_counters () =
  with_telemetry @@ fun () ->
  let dir = Filename.temp_file "telemetry-store" "" in
  Sys.remove dir;
  let count name =
    Option.value ~default:0 (Telemetry.Metrics.counter_value name)
  in
  let files0 = count "dirty.store.files_written" in
  Dirty.Store.save dir (Fixtures.figure2_db ());
  (* two tables, the journal, the manifest, and the CURRENT flip *)
  Alcotest.(check int) "files written" 5
    (count "dirty.store.files_written" - files0);
  Alcotest.(check int) "one rename per file" 5 (count "dirty.store.renames");
  Alcotest.(check bool) "bytes accounted" true
    (count "dirty.store.bytes_written" > 0);
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

(* ---- exporters ---- *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_prometheus_dump () =
  with_telemetry @@ fun () ->
  let c = Telemetry.Metrics.counter ~help:"a test counter" "test.prom.counter" in
  Telemetry.Metrics.inc ~n:3 c;
  let h = Telemetry.Metrics.histogram "test.prom.hist" in
  Telemetry.Metrics.observe h 0.5;
  let dump = Telemetry.Export.prometheus_string () in
  (* counters expose the family with the _total suffix *)
  Alcotest.(check bool) "counter line" true
    (contains dump "conquer_test_prom_counter_total 3");
  Alcotest.(check bool) "help line" true
    (contains dump "# HELP conquer_test_prom_counter_total a test counter");
  Alcotest.(check bool) "type line" true
    (contains dump "# TYPE conquer_test_prom_counter_total counter");
  Alcotest.(check bool) "histogram buckets" true
    (contains dump "conquer_test_prom_hist_bucket{le=");
  Alcotest.(check bool) "histogram +Inf bucket" true
    (contains dump "conquer_test_prom_hist_bucket{le=\"+Inf\"} 1");
  Alcotest.(check bool) "histogram count" true
    (contains dump "conquer_test_prom_hist_count 1")

(* a promtool-style structural check over the whole exposition: every
   line is a comment or [name[{labels}] value] with a legal metric
   name and a parseable Prometheus float, HELP text is escaped, and
   every histogram family ends with +Inf/_sum/_count *)
let test_prometheus_conformance () =
  with_telemetry @@ fun () ->
  let c =
    Telemetry.Metrics.counter ~help:"line one\nline two \\ backslash"
      "test.conf.counter"
  in
  Telemetry.Metrics.inc c;
  let g = Telemetry.Metrics.gauge "test.conf.gauge" in
  Telemetry.Metrics.set g Float.infinity;
  let h = Telemetry.Metrics.histogram ~help:"h" "test.conf.hist" in
  Telemetry.Metrics.observe h 0.003;
  Telemetry.Metrics.observe h 1e9;
  let dump = Telemetry.Export.prometheus_string () in
  let name_ok name =
    name <> ""
    && (match name.[0] with
       | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
       | _ -> false)
    && String.for_all
         (fun ch ->
           match ch with
           | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
           | _ -> false)
         name
  in
  let value_ok v =
    v = "NaN" || v = "+Inf" || v = "-Inf" || float_of_string_opt v <> None
  in
  let check_line line =
    if line = "" || String.length line >= 2 && String.sub line 0 2 = "# " then begin
      (* comment lines must be HELP or TYPE with a legal family name *)
      if line <> "" then
        match String.split_on_char ' ' line with
        | "#" :: ("HELP" | "TYPE") :: family :: _ ->
          Alcotest.(check bool) ("family name: " ^ line) true (name_ok family)
        | _ -> Alcotest.failf "bad comment line: %s" line
    end
    else begin
      (* sample line: name[{labels}] value *)
      let name_part, value_part =
        match String.rindex_opt line ' ' with
        | None -> Alcotest.failf "no value on line: %s" line
        | Some i ->
          ( String.sub line 0 i,
            String.sub line (i + 1) (String.length line - i - 1) )
      in
      let bare_name =
        match String.index_opt name_part '{' with
        | None -> name_part
        | Some i ->
          Alcotest.(check bool)
            ("label block closes: " ^ line)
            true
            (name_part.[String.length name_part - 1] = '}');
          String.sub name_part 0 i
      in
      Alcotest.(check bool) ("metric name: " ^ line) true (name_ok bare_name);
      Alcotest.(check bool) ("value: " ^ line) true (value_ok value_part)
    end
  in
  List.iter check_line (String.split_on_char '\n' dump);
  (* the multi-line help text is escaped onto one line *)
  Alcotest.(check bool) "help newline escaped" true
    (contains dump "line one\\nline two \\\\ backslash");
  Alcotest.(check bool) "inf gauge spelled +Inf" true
    (contains dump "conquer_test_conf_gauge +Inf");
  Alcotest.(check bool) "hist sum present" true
    (contains dump "conquer_test_conf_hist_sum");
  Alcotest.(check bool) "hist count present" true
    (contains dump "conquer_test_conf_hist_count 2");
  Alcotest.(check bool) "hist +Inf bucket present" true
    (contains dump "conquer_test_conf_hist_bucket{le=\"+Inf\"} 2")

(* ---- trace context ---- *)

let test_trace_ids_deterministic () =
  Telemetry.Trace.set_seed 42;
  let first = List.init 8 (fun _ -> Telemetry.Trace.gen_id ()) in
  Telemetry.Trace.set_seed 42;
  let second = List.init 8 (fun _ -> Telemetry.Trace.gen_id ()) in
  Alcotest.(check (list string)) "seeded stream reproduces" first second;
  List.iter
    (fun id ->
      Alcotest.(check bool) ("valid id " ^ id) true (Telemetry.Trace.valid_id id);
      Alcotest.(check int) "16 hex chars" 16 (String.length id))
    first;
  Alcotest.(check bool) "distinct ids" true
    (List.length (List.sort_uniq String.compare first) = 8);
  Alcotest.(check bool) "reject empty" false (Telemetry.Trace.valid_id "");
  Alcotest.(check bool) "reject non-hex" false (Telemetry.Trace.valid_id "xyz");
  Alcotest.(check bool) "reject oversized" false
    (Telemetry.Trace.valid_id (String.make 65 'a'))

let test_trace_sampling () =
  (* pure in (rate, id): same verdict on every call *)
  Telemetry.Trace.set_seed 7;
  let ids = List.init 2000 (fun _ -> Telemetry.Trace.gen_id ()) in
  List.iter
    (fun id ->
      Alcotest.(check bool) "rate 0 drops" false
        (Telemetry.Trace.decide ~rate:0.0 id);
      Alcotest.(check bool) "rate 1 keeps" true
        (Telemetry.Trace.decide ~rate:1.0 id);
      Alcotest.(check bool) "decision stable"
        (Telemetry.Trace.decide ~rate:0.3 id)
        (Telemetry.Trace.decide ~rate:0.3 id))
    ids;
  let kept =
    List.length (List.filter (Telemetry.Trace.decide ~rate:0.3) ids)
  in
  let fraction = float_of_int kept /. 2000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "rate 0.3 keeps roughly 30%% (got %.3f)" fraction)
    true
    (fraction > 0.2 && fraction < 0.4);
  (* monotone: anything kept at a lower rate is kept at a higher one *)
  List.iter
    (fun id ->
      if Telemetry.Trace.decide ~rate:0.1 id then
        Alcotest.(check bool) "monotone in rate" true
          (Telemetry.Trace.decide ~rate:0.5 id))
    ids

let test_trace_ring () =
  let span name =
    Telemetry.Span.manual ~name ~start:0.0 ~elapsed:0.001 ()
  in
  let r = Telemetry.Trace.ring_create ~capacity:3 in
  Alcotest.(check int) "capacity" 3 (Telemetry.Trace.ring_capacity r);
  List.iter
    (fun i ->
      Telemetry.Trace.ring_add r
        ~trace_id:(Printf.sprintf "%016x" i)
        (span (Printf.sprintf "s%d" i)))
    [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "bounded" 3 (Telemetry.Trace.ring_length r);
  Alcotest.(check bool) "oldest evicted" true
    (Telemetry.Trace.ring_find r (Printf.sprintf "%016x" 1) = None);
  (match Telemetry.Trace.ring_find r (Printf.sprintf "%016x" 5) with
  | Some e ->
    Alcotest.(check string) "newest retrievable" "s5"
      e.Telemetry.Trace.root.Telemetry.Span.name
  | None -> Alcotest.fail "newest trace missing");
  let recent = Telemetry.Trace.ring_recent r in
  Alcotest.(check (list string))
    "newest first"
    [ "5"; "4"; "3" ]
    (List.map
       (fun (e : Telemetry.Trace.entry) ->
         String.sub e.root.Telemetry.Span.name 1 1)
       recent);
  Alcotest.(check int) "n limits" 2
    (List.length (Telemetry.Trace.ring_recent ~n:2 r))

let test_histogram_exemplars () =
  with_telemetry @@ fun () ->
  let h = Telemetry.Metrics.histogram "test.exemplar.hist" in
  Telemetry.Metrics.observe ~exemplar:"aaaa000000000001" h 0.002;
  Telemetry.Metrics.observe h 0.002;
  (* unlabeled observation keeps the previous exemplar *)
  let snap () =
    match
      List.find_map
        (fun (s : Telemetry.Metrics.sample) ->
          if s.name = "test.exemplar.hist" then
            match s.data with
            | Telemetry.Metrics.Histogram_value hv -> Some hv
            | _ -> None
          else None)
        (Telemetry.Metrics.snapshot ())
    with
    | Some hv -> hv
    | None -> Alcotest.fail "histogram missing from snapshot"
  in
  let hv = snap () in
  let stored =
    Array.to_list hv.hs_exemplars
    |> List.filter_map (fun e ->
           Option.map (fun e -> e.Telemetry.Metrics.ex_label) e)
  in
  Alcotest.(check (list string)) "exemplar retained" [ "aaaa000000000001" ]
    stored;
  Telemetry.Metrics.observe ~exemplar:"aaaa000000000002" h 0.002;
  let stored' =
    Array.to_list (snap ()).hs_exemplars
    |> List.filter_map (fun e ->
           Option.map (fun e -> e.Telemetry.Metrics.ex_label) e)
  in
  Alcotest.(check (list string)) "newest wins per bucket"
    [ "aaaa000000000002" ] stored';
  Telemetry.Metrics.reset ();
  let cleared =
    Array.for_all (fun e -> e = None) (snap ()).hs_exemplars
  in
  Alcotest.(check bool) "reset clears exemplars" true cleared

let test_span_manual_and_leaf_elapsed () =
  let leaf name elapsed =
    Telemetry.Span.manual ~name ~start:0.0 ~elapsed ()
  in
  let (), roots =
    Telemetry.Span.collecting (fun () ->
        Telemetry.Span.with_ ~name:"root" (fun () ->
            Telemetry.Span.attach (leaf "queue_wait" 0.5);
            Telemetry.Span.with_ ~name:"mid" (fun () ->
                Telemetry.Span.attach (leaf "a" 0.25);
                Telemetry.Span.attach (leaf "b" 0.25))))
  in
  let root = List.hd roots in
  (* leaves: queue_wait, a, b — mid and root are interior *)
  Alcotest.(check (float 1e-4)) "leaf sum" 1.0
    (Telemetry.Span.leaf_elapsed root);
  Alcotest.(check int) "span count" 5 (Telemetry.Span.count root);
  (* self-time annotation: an interior span costing more than its
     children gains a "(self)" leaf with the difference, after which
     the leaves account for the whole attributed wall-clock *)
  let g = Telemetry.Span.manual ~name:"g" ~start:0.0 ~elapsed:2.0 () in
  let c = Telemetry.Span.manual ~name:"c" ~start:0.0 ~elapsed:0.5 () in
  let d = Telemetry.Span.manual ~name:"d" ~start:0.5 ~elapsed:0.25 () in
  c.Telemetry.Span.children <- [ d ];
  g.Telemetry.Span.children <- [ c ];
  Telemetry.Span.annotate_self g;
  Alcotest.(check int) "two self leaves inserted" 5 (Telemetry.Span.count g);
  Alcotest.(check (float 1e-9)) "leaves partition the root" 2.0
    (Telemetry.Span.leaf_elapsed g);
  (* idempotence is not required, but a childless span must never
     gain one *)
  let lone = Telemetry.Span.manual ~name:"lone" ~start:0.0 ~elapsed:1.0 () in
  Telemetry.Span.annotate_self lone;
  Alcotest.(check int) "leaf untouched" 1 (Telemetry.Span.count lone)

let test_metrics_json () =
  with_telemetry @@ fun () ->
  let c = Telemetry.Metrics.counter "test.json.counter" in
  Telemetry.Metrics.inc ~n:2 c;
  let json = Telemetry.Export.metrics_json () in
  Alcotest.(check bool) "counter entry" true
    (contains json "\"test.json.counter\":2")

let test_span_json () =
  let (), roots =
    Telemetry.Span.collecting (fun () ->
        Telemetry.Span.with_ ~name:"outer" (fun () ->
            Telemetry.Span.add_attr "q" "select 1";
            Telemetry.Span.with_ ~name:"inner" (fun () -> ())))
  in
  let json = Telemetry.Export.span_to_json (List.hd roots) in
  Alcotest.(check bool) "root name" true (contains json "\"name\":\"outer\"");
  Alcotest.(check bool) "nested child" true
    (contains json "\"children\":[{\"name\":\"inner\"");
  Alcotest.(check bool) "attr escaped into json" true
    (contains json "\"q\":\"select 1\"")

let test_json_escaping () =
  Alcotest.(check string) "quotes and newlines" "\"a\\\"b\\nc\""
    (Telemetry.Export.json_string "a\"b\nc");
  Alcotest.(check string) "nan is null" "null" (Telemetry.Export.json_float Float.nan)

(* ---- the shared timing helper ---- *)

let test_timing_stats () =
  let s = Telemetry.Timing.of_samples [ 3.0; 1.0; 2.0 ] in
  Alcotest.(check int) "runs" 3 s.runs;
  Fixtures.check_float "min" 1.0 s.min;
  Fixtures.check_float "median" 2.0 s.median;
  Fixtures.check_float "max" 3.0 s.max;
  let s = Telemetry.Timing.singleton 0.5 in
  Fixtures.check_float "singleton min=median=max" 0.5 s.min;
  Fixtures.check_float "singleton max" 0.5 s.max

let test_time_runs () =
  let calls = ref 0 in
  let s = Telemetry.Timing.time_runs ~warmup:2 ~runs:5 (fun () -> incr calls) in
  Alcotest.(check int) "warmup + timed runs" 7 !calls;
  Alcotest.(check int) "stats runs" 5 s.runs;
  Alcotest.(check bool) "ordered" true (s.min <= s.median && s.median <= s.max);
  Alcotest.(check bool) "nonnegative" true (s.min >= 0.0)

let () =
  Alcotest.run "telemetry"
    [
      ( "metrics",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
          Alcotest.test_case "counter and gauge" `Quick test_counter_and_gauge;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "reset" `Quick test_reset;
          Alcotest.test_case "concurrent domains lose nothing" `Quick
            test_concurrent_counters;
        ] );
      ( "spans",
        [
          Alcotest.test_case "disabled passthrough" `Quick
            test_span_disabled_passthrough;
          Alcotest.test_case "nesting and attrs" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safety;
          Alcotest.test_case "clean answers span tree" `Quick
            test_clean_answers_spans;
        ] );
      ( "instrumentation",
        [ Alcotest.test_case "store counters" `Quick test_store_counters ] );
      ( "export",
        [
          Alcotest.test_case "prometheus dump" `Quick test_prometheus_dump;
          Alcotest.test_case "prometheus conformance" `Quick
            test_prometheus_conformance;
          Alcotest.test_case "metrics json" `Quick test_metrics_json;
          Alcotest.test_case "span json" `Quick test_span_json;
          Alcotest.test_case "json escaping" `Quick test_json_escaping;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "seeded trace-id stream" `Quick
            test_trace_ids_deterministic;
          Alcotest.test_case "sampling is pure and calibrated" `Quick
            test_trace_sampling;
          Alcotest.test_case "trace ring bounds and lookup" `Quick
            test_trace_ring;
          Alcotest.test_case "histogram exemplars" `Quick
            test_histogram_exemplars;
          Alcotest.test_case "manual spans and leaf coverage" `Quick
            test_span_manual_and_leaf_elapsed;
        ] );
      ( "timing",
        [
          Alcotest.test_case "stats of samples" `Quick test_timing_stats;
          Alcotest.test_case "time_runs" `Quick test_time_runs;
        ] );
    ]
