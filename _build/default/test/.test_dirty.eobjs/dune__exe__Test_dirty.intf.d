test/test_dirty.mli:
