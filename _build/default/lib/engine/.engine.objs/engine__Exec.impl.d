lib/engine/exec.ml: Array Dirty Expr Format Fun Hashtbl Index List Option Plan Planner Printf Relation Schema Sql String Unix Value
