lib/dirty/cluster.mli: Relation Value
