(** Abstract syntax for the SQL subset.

    The subset covers the paper's needs: select-project-join queries
    with conjunctive and disjunctive predicates, grouping,
    aggregation, HAVING, ORDER BY and LIMIT.  The rewriting of
    Section 3 maps an SPJ query in this AST to another query in this
    AST. *)

type column = { table : string option; name : string }
(** A possibly qualified column reference, e.g. [c.balance] or
    [balance]. *)

type binop =
  | Eq | Neq | Lt | Le | Gt | Ge
  | Add | Sub | Mul | Div
  | And | Or

type unop = Not | Neg

type agg_fun = Count | Sum | Avg | Min | Max

type table_ref = { table : string; t_alias : string option }

type expr =
  | Lit of Dirty.Value.t
  | Col of column
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Like of expr * string  (** SQL LIKE with [%] and [_] wildcards *)
  | Not_like of expr * string
  | In_list of expr * Dirty.Value.t list
  | Between of expr * expr * expr  (** [Between (e, lo, hi)] *)
  | Is_null of expr
  | Is_not_null of expr
  | Agg of agg_fun * expr option
      (** aggregate call; a [None] argument encodes count-star *)
  | In_query of expr * query
      (** [e IN (SELECT ...)]; the subquery must be uncorrelated and
          single-column *)
  | Exists of query  (** [EXISTS (SELECT ...)], uncorrelated *)
  | Scalar_subquery of query
      (** a parenthesized single-column subquery used as a value; must
          return at most one row (empty gives NULL) *)

and select_item = { expr : expr; alias : string option }

and select_list =
  | Star
  | Items of select_item list

and order_item = { o_expr : expr; desc : bool }

and outer_join = { oj_table : table_ref; oj_on : expr }
(** A [LEFT [OUTER] JOIN oj_table ON oj_on] applied, in order, after
    the inner-join block of the FROM clause. *)

and query = {
  distinct : bool;
  select : select_list;
  from : table_ref list;
      (** comma/inner-join block; inner [JOIN ... ON] conditions are
          desugared into [where] by the parser *)
  outer_joins : outer_join list;
  where : expr option;
  group_by : expr list;
  having : expr option;
  order_by : order_item list;
  limit : int option;
}

val col : ?table:string -> string -> expr
val lit_int : int -> expr
val lit_float : float -> expr
val lit_string : string -> expr

val conj : expr list -> expr option
(** AND-fold a list of predicates; [None] for the empty list. *)

val conjuncts : expr -> expr list
(** Flatten a predicate into its top-level AND-ed conjuncts. *)

val simple_query : select:select_item list -> from:table_ref list ->
  ?where:expr -> unit -> query
(** An SPJ query with no grouping, ordering, distinct or limit. *)

val is_spj : query -> bool
(** True when the query is pure select-project-join: no aggregates, no
    grouping, no HAVING, no DISTINCT (ORDER BY and LIMIT are
    tolerated, as the paper's experiments keep ORDER BY). *)

val has_aggregates : expr -> bool
(** Aggregates of the expression's own scope; subqueries are opaque. *)

val has_subqueries : expr -> bool

val query_has_subqueries : query -> bool
(** True when any clause of the query contains a subquery (one level;
    does not recurse into the subqueries themselves). *)

val expr_columns : expr -> column list
(** All column references in the expression's own scope, in syntactic
    order (columns inside subqueries are excluded — subqueries must be
    uncorrelated). *)

val equal_expr : expr -> expr -> bool
