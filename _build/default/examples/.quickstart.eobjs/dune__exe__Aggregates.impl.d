examples/aggregates.ml: Array Conquer Dirty Float List Printf
