(** Minimal CSV reader/writer used by the CLI and the examples.

    Supports RFC-4180-style quoting: fields containing the separator,
    a double quote, or a newline are quoted with ["..."] and embedded
    quotes are doubled. *)

val parse_line : ?sep:char -> string -> string list
(** Parse a single physical line (no embedded newlines). *)

val parse_rows : ?sep:char -> string -> string list list
(** Parse a whole CSV document.  Quoting is honoured {e across} line
    boundaries, so fields containing newlines round-trip; blank lines
    (outside quotes) are skipped; CRLF and lone-CR terminators are
    tolerated. *)

val render_line : ?sep:char -> string list -> string
(** Inverse of {!parse_line}/{!parse_rows} row rendering.  A row whose
    single field is the empty string renders as [""] (quoted) so it is
    not mistaken for a blank line on read. *)

val read_channel : ?sep:char -> in_channel -> string list list
(** {!parse_rows} over the channel's remaining contents. *)

val read_file : ?sep:char -> string -> string list list

val relation_of_rows :
  ?header:bool -> string list list -> Relation.t
(** Build a relation from raw CSV rows.  When [header] (default true)
    the first row gives attribute names; otherwise names are
    [c0, c1, ...].  Column types are inferred by {!Value.parse} on the
    data (majority vote; mixed columns degrade to VARCHAR, storing the
    parsed values unchanged). *)

val load_file : ?sep:char -> ?header:bool -> string -> Relation.t

val write_channel : ?sep:char -> ?header:bool -> out_channel -> Relation.t -> unit
val write_file : ?sep:char -> ?header:bool -> string -> Relation.t -> unit
