type table = {
  name : string;
  relation : Relation.t;
  id_attr : string;
  prob_attr : string;
  clustering : Cluster.t;
}

exception Invalid of string

let invalidf fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt
let tolerance = 1e-6

module Smap = Map.Make (String)

type t = table Smap.t

let prob_of_value name i = function
  | Value.Int n -> float_of_int n
  | Value.Float f -> f
  | v ->
    invalidf "table %s: row %d has non-numeric probability %s" name i
      (Value.to_string v)

let row_probability table i =
  let idx = Schema.index_of (Relation.schema table.relation) table.prob_attr in
  prob_of_value table.name i (Relation.get table.relation i).(idx)

let cluster_rows table id = Cluster.members table.clustering id

let table_violations ~name ~id_attr ~prob_attr relation clustering =
  let schema = Relation.schema relation in
  match
    (Schema.index_of_opt schema id_attr, Schema.index_of_opt schema prob_attr)
  with
  | None, _ -> [ Printf.sprintf "table %s: missing identifier column %s" name id_attr ]
  | _, None ->
    [ Printf.sprintf "table %s: missing probability column %s" name prob_attr ]
  | Some _, Some pidx ->
    let problems = ref [] in
    let prob i = prob_of_value name i (Relation.get relation i).(pidx) in
    (try
       Cluster.iter
         (fun id members ->
           let sum = ref 0.0 in
           List.iter
             (fun i ->
               let p = prob i in
               if p < -.tolerance || p > 1.0 +. tolerance then
                 problems :=
                   Printf.sprintf
                     "table %s: row %d (cluster %s) probability %g outside [0,1]"
                     name i (Value.to_string id) p
                   :: !problems;
               sum := !sum +. p)
             members;
           if Float.abs (!sum -. 1.0) > tolerance *. float_of_int (List.length members + 1)
           then
             problems :=
               Printf.sprintf
                 "table %s: cluster %s probabilities sum to %g, expected 1"
                 name (Value.to_string id) !sum
               :: !problems)
         clustering
     with Invalid msg -> problems := msg :: !problems);
    List.rev !problems

let make_table ?(validate = true) ~name ~id_attr ~prob_attr relation =
  let id_attr = String.lowercase_ascii id_attr
  and prob_attr = String.lowercase_ascii prob_attr in
  let schema = Relation.schema relation in
  if not (Schema.mem schema id_attr) then
    invalidf "table %s: missing identifier column %s" name id_attr;
  if not (Schema.mem schema prob_attr) then
    invalidf "table %s: missing probability column %s" name prob_attr;
  let clustering = Cluster.of_relation relation ~id_attr in
  if validate then begin
    match table_violations ~name ~id_attr ~prob_attr relation clustering with
    | [] -> ()
    | problem :: _ -> raise (Invalid problem)
  end;
  { name; relation; id_attr; prob_attr; clustering }

let of_clean ~name ~id_attr ?(prob_attr = "prob") relation =
  let schema = Relation.schema relation in
  if Schema.mem schema prob_attr then
    invalidf "table %s: column %s already exists" name prob_attr;
  let schema' = Schema.append schema (Schema.make [ (prob_attr, Value.TFloat) ]) in
  let relation' =
    Relation.map_rows schema'
      (fun row -> Array.append row [| Value.Float 1.0 |])
      relation
  in
  make_table ~name ~id_attr ~prob_attr relation'

let with_probabilities table probs =
  let n = Relation.cardinality table.relation in
  if Array.length probs <> n then
    invalidf "table %s: %d probabilities for %d rows" table.name
      (Array.length probs) n;
  let schema = Relation.schema table.relation in
  let pidx = Schema.index_of schema table.prob_attr in
  let counter = ref (-1) in
  let relation =
    Relation.map_rows schema
      (fun row ->
        incr counter;
        let row' = Array.copy row in
        row'.(pidx) <- Value.Float probs.(!counter);
        row')
      table.relation
  in
  make_table ~name:table.name ~id_attr:table.id_attr ~prob_attr:table.prob_attr
    relation

let table_validate table =
  table_violations ~name:table.name ~id_attr:table.id_attr
    ~prob_attr:table.prob_attr table.relation table.clustering

let empty = Smap.empty

let add_table db table =
  if Smap.mem table.name db then invalidf "duplicate table %s" table.name;
  Smap.add table.name table db

let find_table db name = Smap.find name db
let find_table_opt db name = Smap.find_opt name db
let table_names db = List.map fst (Smap.bindings db)
let tables db = List.map snd (Smap.bindings db)
let validate db = List.concat_map table_validate (tables db)

let shard_of_value ~shards v = Value.hash v land max_int mod shards

let partition_table ~shards table =
  let schema = Relation.schema table.relation in
  let id_idx = Schema.index_of schema table.id_attr in
  let buckets = Array.make shards [] in
  Relation.iter
    (fun row -> let s = shard_of_value ~shards row.(id_idx) in
      buckets.(s) <- row :: buckets.(s))
    table.relation;
  Array.map
    (fun rows ->
      let relation = Relation.create schema (List.rev rows) in
      (* fragments inherit validity from the source table: clusters stay
         whole (all rows of a cluster share the identifier value, hence
         the shard), so per-cluster sums are unchanged *)
      make_table ~validate:false ~name:table.name ~id_attr:table.id_attr
        ~prob_attr:table.prob_attr relation)
    buckets

let partition db ~shards =
  if shards < 1 then invalidf "partition: shards must be >= 1, got %d" shards;
  let out = Array.make shards Smap.empty in
  Smap.iter
    (fun name table ->
      let frags = partition_table ~shards table in
      Array.iteri (fun i frag -> out.(i) <- Smap.add name frag out.(i)) frags)
    db;
  out

module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

let propagate ~src ~src_key ~dst ~fk_attr ~out_attr =
  let src_schema = Relation.schema src.relation in
  let key_idx = Schema.index_of src_schema src_key in
  let id_idx = Schema.index_of src_schema src.id_attr in
  let map = Vtbl.create (Relation.cardinality src.relation) in
  Relation.iter
    (fun row ->
      let key = row.(key_idx) in
      if Vtbl.mem map key then
        invalidf "propagate: key %s of table %s is not unique"
          (Value.to_string key) src.name;
      Vtbl.replace map key row.(id_idx))
    src.relation;
  let dst_schema = Relation.schema dst.relation in
  let fk_idx = Schema.index_of dst_schema fk_attr in
  let lookup v = Option.value ~default:Value.Null (Vtbl.find_opt map v) in
  let relation =
    match Schema.index_of_opt dst_schema out_attr with
    | Some out_idx ->
      Relation.map_rows dst_schema
        (fun row ->
          let row' = Array.copy row in
          row'.(out_idx) <- lookup row.(fk_idx);
          row')
        dst.relation
    | None ->
      let id_ty =
        (Schema.attribute_at src_schema id_idx).Schema.ty
      in
      let schema' = Schema.append dst_schema (Schema.make [ (out_attr, id_ty) ]) in
      Relation.map_rows schema'
        (fun row -> Array.append row [| lookup row.(fk_idx) |])
        dst.relation
  in
  make_table ~validate:false ~name:dst.name ~id_attr:dst.id_attr
    ~prob_attr:dst.prob_attr relation
