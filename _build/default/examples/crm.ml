(* CRM scenario from the paper's introduction (Figure 1).

   Run with:  dune exec examples/crm.exe

   A customer-relationship database integrated from several sources
   contains conflicting information about the same customers.  Tuple
   matching has grouped the conflicting records, but no probabilities
   are given — so we compute them from the clustering itself with the
   Section 4 procedure (cluster representatives + information-loss
   distance), then answer a marketing query with clean-answer
   semantics.

   The scenario also demonstrates why offline "keep the best tuple"
   cleaning loses answers that clean-answer semantics retains. *)

module Value = Dirty.Value
module Relation = Dirty.Relation
module Schema = Dirty.Schema
module Cluster = Dirty.Cluster
module Dirty_db = Dirty.Dirty_db

let v_s s = Value.String s
let v_i i = Value.Int i

(* Customer records from three sources after tuple matching: custid is
   the cluster identifier; no probabilities yet. *)
let customer_raw =
  Relation.create
    (Schema.make
       [
         ("custid", Value.TString);
         ("name", Value.TString);
         ("segment", Value.TString);
         ("city", Value.TString);
         ("income", Value.TInt);
       ])
    [
      (* cluster c1: three sources mostly agree on John *)
      [| v_s "c1"; v_s "John Doe"; v_s "premium"; v_s "Toronto"; v_i 120_000 |];
      [| v_s "c1"; v_s "John Doe"; v_s "premium"; v_s "Toronto"; v_i 115_000 |];
      [| v_s "c1"; v_s "J. Doe"; v_s "standard"; v_s "Toronto"; v_i 80_000 |];
      (* cluster c2: two sources disagree sharply about Mary/Marion *)
      [| v_s "c2"; v_s "Mary Jones"; v_s "premium"; v_s "Ottawa"; v_i 140_000 |];
      [| v_s "c2"; v_s "Marion Jones"; v_s "standard"; v_s "Hull"; v_i 40_000 |];
      (* cluster c3: a single clean record *)
      [| v_s "c3"; v_s "Ada Lovelace"; v_s "premium"; v_s "London"; v_i 200_000 |];
    ]

(* Loyalty cards reference customers by identifier; cards themselves
   were also matched (card 111 has two conflicting owners). *)
let loyaltycard =
  Relation.create
    (Schema.make
       [
         ("cardid", Value.TInt);
         ("custfk", Value.TString);
         ("points", Value.TInt);
         ("prob", Value.TFloat);
       ])
    [
      [| v_i 111; v_s "c1"; v_i 4200; Value.Float 0.4 |];
      [| v_i 111; v_s "c2"; v_i 4200; Value.Float 0.6 |];
      [| v_i 222; v_s "c3"; v_i 900; Value.Float 1.0 |];
    ]

let () =
  (* assign probabilities to the customer clusters from their own
     value distributions (Figure 5) *)
  let with_placeholder =
    let schema =
      Schema.append
        (Relation.schema customer_raw)
        (Schema.make [ ("prob", Value.TFloat) ])
    in
    Relation.map_rows schema
      (fun row -> Array.append row [| Value.Float 1.0 |])
      customer_raw
  in
  let customer_table =
    Dirty_db.make_table ~validate:false ~name:"customer" ~id_attr:"custid"
      ~prob_attr:"prob" with_placeholder
  in
  let customer_table =
    Prob.Assign.annotate_table
      ~attrs:[ "name"; "segment"; "city"; "income" ]
      customer_table
  in
  print_endline "Customer probabilities computed from the clustering:";
  print_string (Relation.to_string customer_table.relation);

  let db =
    Dirty_db.empty
    |> Fun.flip Dirty_db.add_table customer_table
    |> Fun.flip Dirty_db.add_table
         (Dirty_db.make_table ~name:"loyaltycard" ~id_attr:"cardid"
            ~prob_attr:"prob" loyaltycard)
  in
  let session = Conquer.Clean.create db in

  (* marketing question: which cards belong to customers who are
     likely in the premium segment? *)
  let sql =
    "select l.cardid, c.custid from loyaltycard l, customer c \
     where l.custfk = c.custid and c.segment = 'premium'"
  in
  Printf.printf "\nQuery: %s\n\n" sql;
  let answers = Conquer.Clean.answers session sql in
  print_endline "Clean answers (card, customer, probability):";
  print_string (Relation.to_string answers);

  (* contrast with offline cleaning: keep only each cluster's most
     probable tuple, then query *)
  let keep_best (t : Dirty_db.table) =
    let best =
      Cluster.fold
        (fun _ members acc ->
          let best =
            List.fold_left
              (fun best i ->
                match best with
                | None -> Some i
                | Some j ->
                  if
                    Dirty_db.row_probability t i > Dirty_db.row_probability t j
                  then Some i
                  else best)
              None members
          in
          Option.get best :: acc)
        t.clustering []
    in
    Relation.create (Relation.schema t.relation)
      (List.rev_map (Relation.get t.relation) best)
  in
  let engine = Engine.Database.create () in
  List.iter
    (fun (t : Dirty_db.table) ->
      Engine.Database.add_relation engine ~name:t.name (keep_best t))
    (Dirty_db.tables db);
  let offline = Engine.Database.query engine sql in
  print_endline "\nSame query after offline keep-the-best cleaning:";
  print_string (Relation.to_string offline);
  print_endline
    "\nOffline cleaning commits to one representation per entity and loses\n\
     the uncertain (but likely) premium customers; clean answers keep them,\n\
     ranked by probability."
