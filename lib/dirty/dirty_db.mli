(** Dirty databases (Dfn 2 of the paper).

    A dirty database is a set of named dirty tables.  Each dirty
    table is a relation that carries two designated attributes:

    - an {e identifier} attribute holding the cluster identifier
      produced by a tuple-matching tool (duplicate tuples share the
      identifier value), and
    - a {e probability} attribute [prob] holding the tuple's
      probability of being in the clean database.

    The probabilities within each cluster must sum to 1. *)

type table = private {
  name : string;
  relation : Relation.t;
  id_attr : string;
  prob_attr : string;
  clustering : Cluster.t;
}

type t

exception Invalid of string
(** Raised by the validating constructors. *)

(** {1 Tables} *)

val make_table :
  ?validate:bool ->
  name:string ->
  id_attr:string ->
  prob_attr:string ->
  Relation.t ->
  table
(** Wrap a relation that already has identifier and probability
    columns.  When [validate] (default [true]), checks that
    probabilities lie in [0,1] and sum to 1 (within {!tolerance})
    inside every cluster.
    @raise Invalid when validation fails or a column is missing. *)

val of_clean :
  name:string -> id_attr:string -> ?prob_attr:string -> Relation.t -> table
(** Treat a clean relation as dirty: every tuple is its own cluster
    with probability 1.  A [prob] column (named [prob_attr], default
    ["prob"]) is appended, and [id_attr] must be an existing unique
    column. *)

val with_probabilities : table -> float array -> table
(** Replace the probability column (one entry per row, row order).
    Validation is re-run. *)

val tolerance : float
(** Absolute tolerance on per-cluster probability sums (1e-6). *)

val row_probability : table -> int -> float
(** Probability of the i-th row. @raise Invalid if the stored value is
    not numeric. *)

val cluster_rows : table -> Value.t -> int list
(** Row indices of the cluster named by the identifier value. *)

val table_validate : table -> string list
(** Human-readable list of violations (empty when the table is a valid
    dirty table). *)

(** {1 Databases} *)

val empty : t
val add_table : t -> table -> t
(** @raise Invalid if a table with the same name exists. *)

val find_table : t -> string -> table
(** @raise Not_found *)

val find_table_opt : t -> string -> table option
val table_names : t -> string list
val tables : t -> table list
val validate : t -> string list

(** {1 Cluster-hash partitioning}

    Clusters are independent events, so a dirty database partitions
    cleanly along cluster boundaries: every row of a cluster carries
    the same identifier value and therefore lands on the same shard.
    This is the storage side of scale-out sharding (ROADMAP item 5). *)

val shard_of_value : shards:int -> Value.t -> int
(** Shard index of a cluster identifier: [Value.hash v] reduced mod
    [shards].  Deterministic in-process; [Int n] and [Float n.] hash
    alike, matching {!Value.equal}. *)

val partition : t -> shards:int -> t array
(** [partition db ~shards] splits every table of [db] into [shards]
    fragments by {!shard_of_value} of the cluster identifier.  Clusters
    are never split across fragments and row order is preserved within
    each fragment, so each fragment is itself a valid dirty database
    (validation is skipped — it holds by construction).
    @raise Invalid when [shards < 1]. *)

(** {1 Identifier propagation}

    Tuple matchers emit cluster identifiers per relation; foreign keys
    still reference the original keys of the referenced relation.
    [propagate] rewrites them to reference cluster identifiers, as the
    paper's pre-processing step does. *)

val propagate :
  src:table ->
  src_key:string ->
  dst:table ->
  fk_attr:string ->
  out_attr:string ->
  table
(** [propagate ~src ~src_key ~dst ~fk_attr ~out_attr] builds the map
    from [src]'s original key ([src_key], unique per tuple) to [src]'s
    cluster identifier, then stores, for every [dst] tuple, the image
    of its [fk_attr] value under that map into column [out_attr]
    (appended if absent, overwritten otherwise).  Unmatched foreign
    keys map to [Null].
    @raise Invalid if [src_key] values are not unique. *)
