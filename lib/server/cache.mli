(** A bounded, domain-safe key-value cache with FIFO eviction.

    Backs the daemon's result cache (keyed on normalized query text
    and store generation — see {!Serve}) and its prepared-query cache.
    FIFO rather than LRU: eviction order only matters under pressure,
    and FIFO needs no bookkeeping on the (hot, shared) read path. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** [capacity <= 0] disables the cache ({!add} is a no-op). *)

val find : ('k, 'v) t -> 'k -> 'v option

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert (replacing any previous binding); evicts the oldest
    insertions once over capacity. *)

val drop : ('k, 'v) t -> ('k -> bool) -> unit
(** Remove every binding whose key satisfies the predicate (used to
    purge entries of superseded store generations eagerly). *)

val clear : ('k, 'v) t -> unit
val length : ('k, 'v) t -> int
