(** A per-store circuit breaker.

    Guards the daemon's store interactions (generation probes and
    snapshot reloads): repeated failures — [Dirty.Store.Corrupt],
    [Fault.Io.Io_error], exhausted retries — trip the breaker {e open},
    after which guarded work is refused outright (the daemon answers
    503 instead of hammering a damaged store).  After a cooldown drawn
    from the {!Fault.Retry} backoff schedule (jitter included, so many
    daemons watching one store don't re-probe in lockstep) the breaker
    {e half-opens}: exactly one caller is let through as a probe; its
    success closes the breaker, its failure re-opens it with the next,
    longer cooldown.

    All transitions are mutex-guarded and counted by the
    [serve.breaker_trips] telemetry counter. *)

type t

type state = Closed | Open | Half_open

val create :
  ?threshold:int ->
  ?policy:Fault.Retry.policy ->
  ?clock:(unit -> float) ->
  unit ->
  t
(** [threshold] (default 3) is the consecutive-failure count that
    trips the breaker.  [policy] (default {!Fault.Retry.policy}[ ()])
    supplies the cooldown schedule: the cooldown after the [i]-th
    consecutive trip is [jittered_backoff policy i].  [clock] is
    injectable for tests. *)

val state : t -> state

val allow : t -> bool
(** May the caller attempt the guarded operation right now?  [Closed]:
    yes.  [Open]: no, until the cooldown elapses — the first call after
    that transitions to [Half_open] and is admitted as the probe.
    [Half_open]: no (a probe is already in flight).  Callers that are
    admitted {e must} report {!success} or {!failure}. *)

val success : t -> unit
(** The guarded operation succeeded: close the breaker and reset the
    failure and trip streaks. *)

val failure : t -> unit
(** The guarded operation failed.  In [Closed], counts toward the
    threshold; reaching it trips the breaker.  In [Half_open], the
    probe failed: re-open with the next cooldown. *)

val trips : t -> int
(** Total times this breaker tripped open. *)
