(** Clusterings of a relation (Dfn 1 of the paper).

    A clustering partitions the tuples of a relation into disjoint
    clusters of potential duplicates.  Following the paper's
    convention, the cluster of a tuple is named by the value of a
    designated {e identifier attribute}; tuples sharing the identifier
    value are duplicates of the same real-world entity. *)

type t

val of_relation : Relation.t -> id_attr:string -> t
(** Group the relation's rows by the value of [id_attr].
    @raise Not_found if [id_attr] is not in the schema. *)

val of_assignment : size:int -> (int -> Value.t) -> t
(** Clustering over row indices [0..size-1] where row [i] belongs to
    the cluster named [f i]. *)

val id_values : t -> Value.t list
(** Cluster identifiers, in first-appearance order. *)

val members : t -> Value.t -> int list
(** Row indices of the cluster named by the identifier value, in row
    order.  Empty list for unknown identifiers. *)

val cluster_of_row : t -> int -> Value.t
(** Identifier of the cluster the given row belongs to. *)

val size : t -> Value.t -> int
val num_clusters : t -> int
val num_rows : t -> int

val is_singleton : t -> Value.t -> bool

val fold : (Value.t -> int list -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Value.t -> int list -> unit) -> t -> unit

val max_cluster_size : t -> int
val mean_cluster_size : t -> float
