module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

type t = {
  order : Value.t array;  (* cluster identifiers in first-appearance order *)
  groups : int list Vtbl.t;  (* identifier -> member row indices, row order *)
  owner : Value.t array;  (* row index -> identifier *)
}

let of_assignment ~size f =
  let groups = Vtbl.create (max 16 size) in
  let order = ref [] in
  let owner = Array.init size f in
  Array.iteri
    (fun i id ->
      match Vtbl.find_opt groups id with
      | None ->
        Vtbl.replace groups id [ i ];
        order := id :: !order
      | Some members -> Vtbl.replace groups id (i :: members))
    owner;
  (* members were accumulated in reverse row order *)
  let groups' = Vtbl.create (Vtbl.length groups) in
  Vtbl.iter (fun id members -> Vtbl.replace groups' id (List.rev members)) groups;
  { order = Array.of_list (List.rev !order); groups = groups'; owner }

let of_relation rel ~id_attr =
  let idx = Schema.index_of (Relation.schema rel) id_attr in
  of_assignment ~size:(Relation.cardinality rel) (fun i -> (Relation.get rel i).(idx))

let id_values t = Array.to_list t.order
let members t id = Option.value ~default:[] (Vtbl.find_opt t.groups id)
let cluster_of_row t i = t.owner.(i)
let size t id = List.length (members t id)
let num_clusters t = Array.length t.order
let num_rows t = Array.length t.owner
let is_singleton t id = size t id = 1

let fold f t init =
  Array.fold_left (fun acc id -> f id (members t id) acc) init t.order

let iter f t = Array.iter (fun id -> f id (members t id)) t.order

let max_cluster_size t = fold (fun _ ms acc -> max acc (List.length ms)) t 0

let mean_cluster_size t =
  if num_clusters t = 0 then 0.0
  else float_of_int (num_rows t) /. float_of_int (num_clusters t)
