open Dirty

exception Type_error of string
exception Unbound_column of string
exception Ambiguous_column of string

let type_errorf fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

let column_display (c : Sql.Ast.column) =
  match c.table with None -> c.name | Some t -> t ^ "." ^ c.name

let resolve schema (c : Sql.Ast.column) =
  match c.table with
  | Some t -> (
    let qualified = t ^ "." ^ c.name in
    match Schema.index_of_opt schema qualified with
    | Some i -> i
    | None -> (
      (* a bare (un-prefixed) schema still accepts t.c if c is there
         unambiguously; this lets the same expression run against a
         single-table schema *)
      match Schema.index_of_opt schema c.name with
      | Some i -> i
      | None -> raise (Unbound_column (column_display c))))
  | None -> (
    match Schema.index_of_opt schema c.name with
    | Some i -> i
    | None ->
      let suffix = "." ^ c.name in
      let matches =
        List.filteri
          (fun _ (a : Schema.attribute) ->
            String.length a.name > String.length suffix
            && String.sub a.name
                 (String.length a.name - String.length suffix)
                 (String.length suffix)
               = suffix)
          (Schema.attributes schema)
      in
      (match matches with
      | [ a ] -> Schema.index_of schema a.name
      | [] -> raise (Unbound_column (column_display c))
      | _ :: _ :: _ -> raise (Ambiguous_column (column_display c))))

let truth = function
  | Value.Bool b -> b
  | Value.Null -> false
  | v -> type_errorf "expected boolean predicate, got %s" (Value.to_string v)

(* SQL LIKE: '%' matches any sequence, '_' any single character. *)
let like_matcher pattern =
  let p = pattern and np = String.length pattern in
  fun s ->
    let ns = String.length s in
    (* memoized recursion over (pattern index, string index) *)
    let memo = Hashtbl.create 16 in
    let rec go i j =
      match Hashtbl.find_opt memo (i, j) with
      | Some r -> r
      | None ->
        let r =
          if i >= np then j >= ns
          else
            match p.[i] with
            | '%' -> go (i + 1) j || (j < ns && go i (j + 1))
            | '_' -> j < ns && go (i + 1) (j + 1)
            | c -> j < ns && s.[j] = c && go (i + 1) (j + 1)
        in
        Hashtbl.add memo (i, j) r;
        r
    in
    go 0 0

let numeric2 name fint ffloat a b =
  match a, b with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | Value.Int x, Value.Int y -> Value.Int (fint x y)
  | _ -> (
    match Value.to_float a, Value.to_float b with
    | Some x, Some y -> Value.Float (ffloat x y)
    | _ ->
      type_errorf "%s: non-numeric operands %s, %s" name (Value.to_string a)
        (Value.to_string b))

let add a b =
  match a, b with
  | Value.Date d, Value.Int i | Value.Int i, Value.Date d -> Value.Date (d + i)
  | _ -> numeric2 "+" ( + ) ( +. ) a b

let sub a b =
  match a, b with
  | Value.Date d, Value.Int i -> Value.Date (d - i)
  | Value.Date d1, Value.Date d2 -> Value.Int (d1 - d2)
  | _ -> numeric2 "-" ( - ) ( -. ) a b

let mul = numeric2 "*" ( * ) ( *. )

let div a b =
  match a, b with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | Value.Int _, Value.Int 0 -> type_errorf "division by zero"
  | Value.Int x, Value.Int y -> Value.Int (x / y)
  | _ -> (
    match Value.to_float a, Value.to_float b with
    | Some _, Some 0.0 -> type_errorf "division by zero"
    | Some x, Some y -> Value.Float (x /. y)
    | _ ->
      type_errorf "/: non-numeric operands %s, %s" (Value.to_string a)
        (Value.to_string b))

let comparison op a b =
  if Value.is_null a || Value.is_null b then Value.Bool false
  else
    let c = Value.compare a b in
    let r =
      match op with
      | Sql.Ast.Eq -> c = 0
      | Sql.Ast.Neq -> c <> 0
      | Sql.Ast.Lt -> c < 0
      | Sql.Ast.Le -> c <= 0
      | Sql.Ast.Gt -> c > 0
      | Sql.Ast.Ge -> c >= 0
      | Sql.Ast.Add | Sql.Ast.Sub | Sql.Ast.Mul | Sql.Ast.Div | Sql.Ast.And
      | Sql.Ast.Or ->
        assert false
    in
    Value.Bool r

let string_of v =
  match v with
  | Value.String s -> Some s
  | Value.Null -> None
  | v -> Some (Value.to_string v)

let rec compile schema (e : Sql.Ast.expr) : Relation.row -> Value.t =
  match e with
  | Lit v -> fun _ -> v
  | Col c ->
    let i = resolve schema c in
    fun row -> row.(i)
  | Unop (Not, e) ->
    let f = compile schema e in
    fun row ->
      (match f row with
      | Value.Bool b -> Value.Bool (not b)
      | Value.Null -> Value.Bool false
      | v -> type_errorf "NOT: expected boolean, got %s" (Value.to_string v))
  | Unop (Neg, e) ->
    let f = compile schema e in
    fun row ->
      (match f row with
      | Value.Int i -> Value.Int (-i)
      | Value.Float x -> Value.Float (-.x)
      | Value.Null -> Value.Null
      | v -> type_errorf "unary -: expected number, got %s" (Value.to_string v))
  | Binop (And, a, b) ->
    let fa = compile schema a and fb = compile schema b in
    fun row -> Value.Bool (truth (fa row) && truth (fb row))
  | Binop (Or, a, b) ->
    let fa = compile schema a and fb = compile schema b in
    fun row -> Value.Bool (truth (fa row) || truth (fb row))
  | Binop (Add, a, b) ->
    let fa = compile schema a and fb = compile schema b in
    fun row -> add (fa row) (fb row)
  | Binop (Sub, a, b) ->
    let fa = compile schema a and fb = compile schema b in
    fun row -> sub (fa row) (fb row)
  | Binop (Mul, a, b) ->
    let fa = compile schema a and fb = compile schema b in
    fun row -> mul (fa row) (fb row)
  | Binop (Div, a, b) ->
    let fa = compile schema a and fb = compile schema b in
    fun row -> div (fa row) (fb row)
  | Binop (((Eq | Neq | Lt | Le | Gt | Ge) as op), a, b) ->
    let fa = compile schema a and fb = compile schema b in
    fun row -> comparison op (fa row) (fb row)
  | Like (e, pattern) ->
    let f = compile schema e in
    let matcher = like_matcher pattern in
    fun row ->
      (match string_of (f row) with
      | None -> Value.Bool false
      | Some s -> Value.Bool (matcher s))
  | Not_like (e, pattern) ->
    let f = compile schema e in
    let matcher = like_matcher pattern in
    fun row ->
      (match string_of (f row) with
      | None -> Value.Bool false
      | Some s -> Value.Bool (not (matcher s)))
  | In_list (e, values) ->
    let f = compile schema e in
    fun row ->
      let v = f row in
      if Value.is_null v then Value.Bool false
      else Value.Bool (List.exists (Value.equal v) values)
  | Between (e, lo, hi) ->
    let f = compile schema e and flo = compile schema lo and fhi = compile schema hi in
    fun row ->
      let v = f row and l = flo row and h = fhi row in
      if Value.is_null v || Value.is_null l || Value.is_null h then Value.Bool false
      else Value.Bool (Value.compare l v <= 0 && Value.compare v h <= 0)
  | Is_null e ->
    let f = compile schema e in
    fun row -> Value.Bool (Value.is_null (f row))
  | Is_not_null e ->
    let f = compile schema e in
    fun row -> Value.Bool (not (Value.is_null (f row)))
  | Agg _ ->
    type_errorf "aggregate in scalar context: %s" (Sql.Pretty.expr_to_string e)
  | In_query _ | Exists _ | Scalar_subquery _ ->
    (* the executor resolves subqueries before compiling *)
    type_errorf "unresolved subquery: %s" (Sql.Pretty.expr_to_string e)

let columns_of = Sql.Ast.expr_columns
