(* Tests for distributions, entropy, mutual information, and DCFs. *)

open Infotheory

let check_float = Fixtures.check_float

(* ---- Dist ---- *)

let test_of_assoc () =
  let d = Dist.of_assoc [ (1, 0.25); (2, 0.5); (1, 0.25) ] in
  check_float "accumulated" 0.5 (Dist.prob d 1);
  check_float "direct" 0.5 (Dist.prob d 2);
  check_float "outside support" 0.0 (Dist.prob d 99);
  Alcotest.(check (list int)) "support" [ 1; 2 ] (Dist.support d);
  Alcotest.(check bool) "normalized" true (Dist.is_normalized d);
  match Dist.of_assoc [ (1, -0.1) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative mass accepted"

let test_uniform_singleton () =
  let u = Dist.uniform [ 1; 2; 3; 4 ] in
  check_float "uniform prob" 0.25 (Dist.prob u 3);
  let s = Dist.singleton 7 in
  check_float "singleton" 1.0 (Dist.prob s 7);
  check_float "entropy of singleton" 0.0 (Dist.entropy s)

let test_normalize_scale_mix () =
  let d = Dist.of_assoc [ (1, 2.0); (2, 6.0) ] in
  let n = Dist.normalize d in
  check_float "normalized" 0.25 (Dist.prob n 1);
  let s = Dist.scale 0.5 n in
  check_float "scaled mass" 0.5 (Dist.total_mass s);
  let m = Dist.mix [ (0.5, Dist.singleton 1); (0.5, Dist.singleton 2) ] in
  check_float "mixture" 0.5 (Dist.prob m 1);
  Alcotest.(check bool) "mixture normalized" true (Dist.is_normalized m)

let test_entropy () =
  check_float "fair coin = 1 bit" 1.0 (Dist.entropy (Dist.uniform [ 0; 1 ]));
  check_float "uniform 4 = 2 bits" 2.0 (Dist.entropy (Dist.uniform [ 0; 1; 2; 3 ]));
  let biased = Dist.of_assoc [ (0, 0.9); (1, 0.1) ] in
  Alcotest.(check bool) "biased below 1 bit" true (Dist.entropy biased < 1.0);
  Alcotest.(check bool) "entropy nonneg" true (Dist.entropy biased >= 0.0)

let test_kl () =
  let p = Dist.of_assoc [ (0, 0.5); (1, 0.5) ] in
  let q = Dist.of_assoc [ (0, 0.75); (1, 0.25) ] in
  check_float "self divergence" 0.0 (Dist.kl_divergence p p);
  Alcotest.(check bool) "kl positive" true (Dist.kl_divergence p q > 0.0);
  (* containment violation *)
  let r = Dist.singleton 0 in
  (match Dist.kl_divergence p r with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "infinite KL accepted");
  (* KL(singleton || p) is fine *)
  check_float "kl singleton" 1.0 (Dist.kl_divergence r p)

let test_js () =
  let p = Dist.singleton 0 and q = Dist.singleton 1 in
  (* maximally different: JS = 1 bit with equal weights *)
  check_float "disjoint JS" 1.0 (Dist.js_divergence p q);
  check_float "identical JS" 0.0 (Dist.js_divergence p p);
  (* symmetry with equal weights *)
  let a = Dist.of_assoc [ (0, 0.3); (1, 0.7) ] in
  let b = Dist.of_assoc [ (0, 0.6); (1, 0.4) ] in
  check_float "symmetric" (Dist.js_divergence a b) (Dist.js_divergence b a);
  (* weighted version is still nonnegative *)
  Alcotest.(check bool) "weighted nonneg" true
    (Dist.js_divergence ~w1:0.25 ~w2:0.75 a b >= 0.0)

(* ---- Mutual information ---- *)

let test_mutual_information_independent () =
  (* two clusters with identical conditionals: I(C;V) = 0 *)
  let cond = Dist.of_assoc [ (0, 0.5); (1, 0.5) ] in
  check_float "independent" 0.0
    (Mutual_info.mutual_information [ (0.5, cond); (0.5, cond) ])

let test_mutual_information_determined () =
  (* clusters with disjoint conditionals: I(C;V) = H(C) = 1 bit *)
  check_float "determined" 1.0
    (Mutual_info.mutual_information
       [ (0.5, Dist.singleton 0); (0.5, Dist.singleton 1) ])

let test_mutual_information_nonneg () =
  let clusters =
    [
      (0.25, Dist.of_assoc [ (0, 0.7); (1, 0.3) ]);
      (0.5, Dist.of_assoc [ (1, 0.2); (2, 0.8) ]);
      (0.25, Dist.of_assoc [ (0, 0.1); (2, 0.9) ]);
    ]
  in
  Alcotest.(check bool) "nonneg" true
    (Mutual_info.mutual_information clusters >= 0.0)

(* ---- DCF ---- *)

let test_dcf_of_symbols () =
  let d = Dcf.of_symbols [ 3; 5; 9; 11 ] in
  check_float "weight" 1.0 d.Dcf.weight;
  check_float "per-value" 0.25 (Dist.prob d.Dcf.dist 5)

let test_dcf_merge_weighted_average () =
  let a = Dcf.make ~weight:1.0 (Dist.singleton 0) in
  let b = Dcf.make ~weight:3.0 (Dist.singleton 1) in
  let m = Dcf.merge a b in
  check_float "merged weight" 4.0 m.Dcf.weight;
  check_float "weighted p0" 0.25 (Dist.prob m.Dcf.dist 0);
  check_float "weighted p1" 0.75 (Dist.prob m.Dcf.dist 1);
  Alcotest.(check bool) "normalized" true (Dist.is_normalized m.Dcf.dist)

let test_dcf_merge_many_associative_weight () =
  let parts = List.init 5 (fun i -> Dcf.of_symbols [ i; i + 10 ]) in
  let m = Dcf.merge_many parts in
  check_float "total weight" 5.0 m.Dcf.weight;
  Alcotest.(check bool) "normalized" true (Dist.is_normalized m.Dcf.dist)

let test_information_loss_matches_direct () =
  (* the JS shortcut must agree with the I(C;V) - I(C';V) difference *)
  let a = Dcf.make ~weight:2.0 (Dist.of_assoc [ (0, 0.5); (1, 0.5) ]) in
  let b = Dcf.make ~weight:1.0 (Dist.of_assoc [ (1, 0.25); (2, 0.75) ]) in
  let rest = [ Dcf.make ~weight:3.0 (Dist.of_assoc [ (2, 0.2); (3, 0.8) ]) ] in
  let total = 6.0 in
  let direct = Mutual_info.merge_loss ~total a b ~rest in
  let shortcut = Dcf.information_loss ~total a b in
  Fixtures.check_float ~eps:1e-9 "shortcut equals direct" direct shortcut

let test_information_loss_zero_for_identical () =
  let a = Dcf.make ~weight:1.0 (Dist.of_assoc [ (0, 0.5); (1, 0.5) ]) in
  let b = Dcf.make ~weight:2.0 (Dist.of_assoc [ (0, 0.5); (1, 0.5) ]) in
  check_float "no loss merging identical" 0.0
    (Dcf.information_loss ~total:3.0 a b)

let test_information_loss_nonneg () =
  let a = Dcf.make ~weight:1.5 (Dist.of_assoc [ (0, 0.9); (1, 0.1) ]) in
  let b = Dcf.make ~weight:2.5 (Dist.of_assoc [ (0, 0.2); (2, 0.8) ]) in
  Alcotest.(check bool) "nonneg" true (Dcf.information_loss ~total:4.0 a b >= 0.0)

let () =
  Alcotest.run "infotheory"
    [
      ( "dist",
        [
          Alcotest.test_case "of_assoc" `Quick test_of_assoc;
          Alcotest.test_case "uniform/singleton" `Quick test_uniform_singleton;
          Alcotest.test_case "normalize/scale/mix" `Quick
            test_normalize_scale_mix;
          Alcotest.test_case "entropy" `Quick test_entropy;
          Alcotest.test_case "KL divergence" `Quick test_kl;
          Alcotest.test_case "JS divergence" `Quick test_js;
        ] );
      ( "mutual information",
        [
          Alcotest.test_case "independent" `Quick
            test_mutual_information_independent;
          Alcotest.test_case "determined" `Quick
            test_mutual_information_determined;
          Alcotest.test_case "nonnegative" `Quick test_mutual_information_nonneg;
        ] );
      ( "dcf",
        [
          Alcotest.test_case "of_symbols" `Quick test_dcf_of_symbols;
          Alcotest.test_case "weighted merge" `Quick
            test_dcf_merge_weighted_average;
          Alcotest.test_case "merge_many" `Quick
            test_dcf_merge_many_associative_weight;
          Alcotest.test_case "loss = direct MI difference" `Quick
            test_information_loss_matches_direct;
          Alcotest.test_case "identical merge is free" `Quick
            test_information_loss_zero_for_identical;
          Alcotest.test_case "loss nonnegative" `Quick
            test_information_loss_nonneg;
        ] );
    ]
