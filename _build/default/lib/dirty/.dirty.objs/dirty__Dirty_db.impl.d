lib/dirty/dirty_db.ml: Array Cluster Float Hashtbl List Map Option Printf Relation Schema String Value
