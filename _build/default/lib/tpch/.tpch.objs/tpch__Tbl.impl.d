lib/tpch/tbl.ml: Array Dirty Filename Fun Hashtbl List Printf Schema String
