(* Parallel execution tests: the Engine.Parallel pool itself, and the
   serial-equivalence guarantee of the partition-parallel operators —
   jobs=4 must produce results bit-identical to jobs=1, including
   aggregate group order and budgeted Truncate prefixes.

   [Parallel.min_rows_per_chunk] is lowered so the small relations
   used here actually take the parallel paths. *)

open Dirty

let () = Engine.Parallel.min_rows_per_chunk := 2

let v_i i = Value.Int i
let v_f f = Value.Float f
let v_s s = Value.String s

let config ~jobs = { Engine.Planner.default_config with jobs }

(* exact relational equality: same schema names, same rows in the same
   order, cell-compared with Value.compare *)
let check_same_relation msg expected actual =
  Alcotest.(check (list string))
    (msg ^ ": schema")
    (Schema.names (Relation.schema expected))
    (Schema.names (Relation.schema actual));
  Alcotest.(check int)
    (msg ^ ": cardinality")
    (Relation.cardinality expected) (Relation.cardinality actual);
  Relation.rows expected
  |> Array.iteri (fun i row ->
         let row' = Relation.get actual i in
         Alcotest.(check int) (Printf.sprintf "%s: row %d arity" msg i)
           (Array.length row) (Array.length row');
         Array.iteri
           (fun j v ->
             if Value.compare v row'.(j) <> 0 then
               Alcotest.failf "%s: row %d col %d: %s <> %s" msg i j
                 (Value.to_string v)
                 (Value.to_string row'.(j)))
           row)

(* ---- the pool ---- *)

let test_pool_init () =
  let a = Engine.Parallel.init ~jobs:4 100 (fun i -> i * i) in
  Alcotest.(check (array int)) "init" (Array.init 100 (fun i -> i * i)) a;
  Alcotest.(check (array int)) "empty" [||] (Engine.Parallel.init ~jobs:4 0 (fun i -> i))

let test_pool_nested () =
  (* inner regions must make progress even with every worker busy *)
  let sums = Engine.Parallel.init ~jobs:4 8 (fun i ->
      let inner = Engine.Parallel.init ~jobs:4 16 (fun j -> (i * 16) + j) in
      Array.fold_left ( + ) 0 inner)
  in
  let expect = Array.init 8 (fun i -> (16 * ((i * 16) + (i * 16) + 15)) / 2) in
  Alcotest.(check (array int)) "nested sums" expect sums

exception Task_failed of int

let test_pool_exception () =
  (* several tasks fail; the lowest index must win deterministically *)
  match
    Engine.Parallel.run ~jobs:4 32 (fun i ->
        if i mod 7 = 3 then raise (Task_failed i))
  with
  | () -> Alcotest.fail "expected a task failure"
  | exception Task_failed i -> Alcotest.(check int) "lowest failing task" 3 i

(* ---- serial equivalence of the relational operators ---- *)

let join_db () =
  let engine = Engine.Database.create () in
  let left =
    Relation.create
      (Schema.make [ ("k", Value.TInt); ("a", Value.TString) ])
      (List.init 60 (fun i ->
           let key = if i mod 10 = 7 then Value.Null else v_i (i mod 8) in
           [| key; v_s (Printf.sprintf "l%d" i) |]))
  in
  let right =
    Relation.create
      (Schema.make [ ("k", Value.TInt); ("b", Value.TString) ])
      (List.init 50 (fun i ->
           let key = if i mod 9 = 4 then Value.Null else v_i (i mod 6) in
           [| key; v_s (Printf.sprintf "r%d" i) |]))
  in
  Engine.Database.add_relation engine ~name:"l" left;
  Engine.Database.add_relation engine ~name:"r" right;
  engine

let test_hash_join_null_keys () =
  let engine = join_db () in
  let sql = "select l.a, r.b from l, r where l.k = r.k" in
  let serial = Engine.Database.query ~config:(config ~jobs:1) engine sql in
  let parallel = Engine.Database.query ~config:(config ~jobs:4) engine sql in
  (* NULL join keys match nothing, on either side, under any jobs *)
  let expected =
    let matches = ref 0 in
    List.iter
      (fun i ->
        if i mod 10 <> 7 then
          List.iter
            (fun j ->
              if j mod 9 <> 4 && i mod 8 = j mod 6 then incr matches)
            (List.init 50 Fun.id))
      (List.init 60 Fun.id);
    !matches
  in
  Alcotest.(check int) "null keys skipped" expected (Relation.cardinality serial);
  check_same_relation "jobs=4 equals jobs=1" serial parallel

let test_filter_project_parallel () =
  let engine = join_db () in
  let sql = "select l.a from l where l.k > 2" in
  let serial = Engine.Database.query ~config:(config ~jobs:1) engine sql in
  let parallel = Engine.Database.query ~config:(config ~jobs:4) engine sql in
  check_same_relation "filter+project" serial parallel

let test_truncate_prefix () =
  let engine = join_db () in
  let q =
    Sql.Parser.parse_query "select l.a, r.b from l, r where l.k = r.k"
  in
  let full = Engine.Database.query_ast ~config:(config ~jobs:1) engine q in
  let check_at jobs =
    let cfg = { (config ~jobs) with max_rows = Some 200 } in
    let rel, { Engine.Database.truncated; cancelled = _ } =
      Engine.Database.query_ast_within ~config:cfg engine q
    in
    Alcotest.(check bool)
      (Printf.sprintf "jobs=%d truncated" jobs)
      true truncated;
    Alcotest.(check bool)
      (Printf.sprintf "jobs=%d partial" jobs)
      true
      (Relation.cardinality rel < Relation.cardinality full);
    (* the truncated answer is a prefix of the full answer *)
    let prefix =
      Relation.of_array (Relation.schema full)
        (Array.sub (Relation.rows full) 0 (Relation.cardinality rel))
    in
    check_same_relation (Printf.sprintf "jobs=%d prefix" jobs) prefix rel;
    rel
  in
  let serial = check_at 1 in
  let parallel = check_at 4 in
  check_same_relation "truncated prefixes agree" serial parallel

(* ---- randomized serial-equivalence (QCheck) ---- *)

let ( let* ) gen f = QCheck.Gen.( >>= ) gen f

let value_gen =
  QCheck.Gen.oneof
    [
      QCheck.Gen.map v_i (QCheck.Gen.int_range (-50) 50);
      QCheck.Gen.map v_f (QCheck.Gen.float_range (-100.0) 100.0);
      QCheck.Gen.return Value.Null;
    ]

let grouped_relation_gen =
  let* n = QCheck.Gen.int_range 20 200 in
  let* rows =
    QCheck.Gen.list_size (QCheck.Gen.return n)
      (let* g = QCheck.Gen.int_range 0 12 in
       let* v = value_gen in
       QCheck.Gen.return [| v_i g; v |])
  in
  QCheck.Gen.return
    (Relation.create (Schema.make [ ("g", Value.TInt); ("v", Value.TInt) ]) rows)

let same_answers engine sql =
  let serial = Engine.Database.query ~config:(config ~jobs:1) engine sql in
  let parallel = Engine.Database.query ~config:(config ~jobs:4) engine sql in
  check_same_relation sql serial parallel

let prop_aggregate_group_order =
  QCheck.Test.make ~count:60
    ~name:"aggregate groups identical between jobs=1 and jobs=4"
    (QCheck.make grouped_relation_gen)
    (fun rel ->
      let engine = Engine.Database.create () in
      Engine.Database.add_relation engine ~name:"t" rel;
      (* no ORDER BY: first-occurrence group order must match too *)
      same_answers engine
        "select g, count(*), sum(v), avg(v), min(v), max(v) from t group by g";
      same_answers engine
        "select g, count(v) from t where g > 3 group by g having count(*) > 1";
      true)

let join_pair_gen =
  let* nl = QCheck.Gen.int_range 20 150 in
  let* nr = QCheck.Gen.int_range 20 150 in
  let row_gen tag =
    let* k = QCheck.Gen.oneof
        [ QCheck.Gen.map v_i (QCheck.Gen.int_range 0 15);
          QCheck.Gen.return Value.Null ]
    in
    let* v = QCheck.Gen.int_range 0 1000 in
    QCheck.Gen.return [| k; v_s (Printf.sprintf "%s%d" tag v) |]
  in
  let* lrows = QCheck.Gen.list_size (QCheck.Gen.return nl) (row_gen "l") in
  let* rrows = QCheck.Gen.list_size (QCheck.Gen.return nr) (row_gen "r") in
  let schema tag = Schema.make [ ("k", Value.TInt); (tag, Value.TString) ] in
  QCheck.Gen.return
    (Relation.create (schema "a") lrows, Relation.create (schema "b") rrows)

let prop_join_rows =
  QCheck.Test.make ~count:60
    ~name:"hash join identical between jobs=1 and jobs=4"
    (QCheck.make join_pair_gen)
    (fun (left, right) ->
      let engine = Engine.Database.create () in
      Engine.Database.add_relation engine ~name:"l" left;
      Engine.Database.add_relation engine ~name:"r" right;
      same_answers engine "select l.a, r.b from l, r where l.k = r.k";
      true)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "init" `Quick test_pool_init;
          Alcotest.test_case "nested regions" `Quick test_pool_nested;
          Alcotest.test_case "deterministic failure" `Quick test_pool_exception;
        ] );
      ( "operators",
        [
          Alcotest.test_case "hash join skips null keys" `Quick
            test_hash_join_null_keys;
          Alcotest.test_case "filter and project" `Quick
            test_filter_project_parallel;
          Alcotest.test_case "truncate prefix" `Quick test_truncate_prefix;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_aggregate_group_order; prop_join_rows ] );
    ]
