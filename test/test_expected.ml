(* Tests for the expected-aggregates extension (the paper's named
   future work): the rewriting computes E[SUM]/E[COUNT] exactly, even
   for queries outside the Dfn 7 rewritable class, because expectation
   is linear. *)

open Dirty

let v_s s = Value.String s

let session () = Conquer.Clean.create (Fixtures.figure2_db ())

let expected_value rel key =
  match Fixtures.answer_prob rel key with
  | Some v -> v
  | None ->
    Alcotest.failf "group [%s] not found"
      (String.concat ", " (List.map Value.to_string key))

(* ---- hand-computed expectations on the Figure 2 database ---- *)

let test_expected_count_global () =
  let s = session () in
  (* E[#customers with balance > 10000]: cluster c1 always qualifies
     (0.7 + 0.3), cluster c2 with probability 0.2 => 1.2 *)
  let r =
    Conquer.Expected.answers s
      "select count(*) from customer where balance > 10000"
  in
  Alcotest.(check int) "one row" 1 (Relation.cardinality r);
  Fixtures.check_float "expected count" 1.2
    (Option.get (Value.to_float (Relation.get r 0).(0)))

let test_expected_count_oracle_agrees () =
  let s = session () in
  let sql = "select count(*) from customer where balance > 10000" in
  let oracle = Conquer.Expected.answers_oracle s sql in
  Fixtures.check_float "oracle expected count" 1.2
    (Option.get (Value.to_float (Relation.get oracle 0).(0)))

let test_expected_sum () =
  let s = session () in
  (* E[sum of qualifying balances] =
     20000*0.7 + 30000*0.3 + 27000*0.2 = 14000 + 9000 + 5400 = 28400 *)
  let sql = "select sum(balance) from customer where balance > 10000" in
  let r = Conquer.Expected.answers s sql in
  Fixtures.check_float "expected sum" 28_400.0
    (Option.get (Value.to_float (Relation.get r 0).(0)));
  let oracle = Conquer.Expected.answers_oracle s sql in
  Fixtures.check_float "oracle agrees" 28_400.0
    (Option.get (Value.to_float (Relation.get oracle 0).(0)))

let test_expected_group_by () =
  let s = session () in
  (* expected number of order lines per customer identifier:
     joins o2->(c1 via t2), o2->(c2 via t3), o1->(c1);
     E[count | group c1] = 1.0 (t1 with any c1 pick) + 0.5 (t2) = 1.5
     E[count | group c2] = 0.5 (t3 with any c2 pick) = 0.5 *)
  let sql =
    "select c.id, count(*) from orders o, customer c \
     where o.cidfk = c.id group by c.id"
  in
  let r = Conquer.Expected.answers s sql in
  Fixtures.check_float "c1 expectation" 1.5 (expected_value r [ v_s "c1" ]);
  Fixtures.check_float "c2 expectation" 0.5 (expected_value r [ v_s "c2" ]);
  let oracle = Conquer.Expected.answers_oracle s sql in
  Fixtures.check_float "oracle c1" 1.5 (expected_value oracle [ v_s "c1" ]);
  Fixtures.check_float "oracle c2" 0.5 (expected_value oracle [ v_s "c2" ])

let test_expected_beyond_dfn7 () =
  (* Example 7's query shape (root identifier NOT selected) is outside
     the clean-answer rewritable class, but its expected-count version
     is exact: E[#(order,customer) join pairs with quantity < 5 and
     balance > 25000 per customer] *)
  let s = session () in
  let sql =
    "select c.id, count(*) from orders o, customer c \
     where o.quantity < 5 and o.cidfk = c.id and c.balance > 25000 \
     group by c.id"
  in
  (* join tuples for c1: (t1, t5) with prob 1.0*0.3 = 0.3 and (t2, t5)
     with prob 0.5*0.3 = 0.15 => E = 0.45.  For c2: t3 fails the
     quantity predicate => no group. *)
  let r = Conquer.Expected.answers s sql in
  Fixtures.check_float "E[count] for c1" 0.45 (expected_value r [ v_s "c1" ]);
  Fixtures.expect_no_answer r [ v_s "c2" ];
  let oracle = Conquer.Expected.answers_oracle s sql in
  Fixtures.check_float "oracle agrees" 0.45 (expected_value oracle [ v_s "c1" ])

let test_expected_avg_ratio () =
  let s = session () in
  let sql = "select avg(balance) from customer where balance > 10000" in
  let r = Conquer.Expected.answers s sql in
  (* the rewriting computes E[SUM]/E[COUNT] = 28400 / 1.2 *)
  Fixtures.check_float ~eps:1e-6 "ratio of expectations" (28_400.0 /. 1.2)
    (Option.get (Value.to_float (Relation.get r 0).(0)))

let test_check_rejects () =
  let s = session () in
  let env = Conquer.Clean.env s in
  let reject sql pred =
    match Conquer.Expected.check env (Sql.Parser.parse_query sql) with
    | Ok () -> Alcotest.failf "accepted %s" sql
    | Error vs ->
      Alcotest.(check bool)
        ("violation for " ^ sql)
        true (List.exists pred vs)
  in
  reject "select a.id, count(*) from customer a, customer b group by a.id"
    (function Conquer.Expected.Self_join _ -> true | _ -> false);
  reject "select min(balance) from customer"
    (function Conquer.Expected.Unsupported_aggregate _ -> true | _ -> false);
  reject "select name, count(*) from customer group by id"
    (function Conquer.Expected.Group_select_mismatch _ -> true | _ -> false);
  reject "select distinct id, count(*) from customer group by id"
    (function Conquer.Expected.Distinct_not_supported -> true | _ -> false);
  reject "select id, count(*) from customer group by id having count(*) > 1"
    (function Conquer.Expected.Having_not_supported -> true | _ -> false)

let test_answers_raises () =
  let s = session () in
  match Conquer.Expected.answers s "select min(balance) from customer" with
  | exception Conquer.Expected.Not_supported _ -> ()
  | _ -> Alcotest.fail "expected Not_supported"

let test_clean_database_expectations () =
  (* on a clean database the expected aggregates coincide with the
     ordinary ones *)
  let clean =
    Tpch.Datagen.generate
      { Tpch.Datagen.default with sf = 0.02; inconsistency = 1 }
  in
  let s = Conquer.Clean.create clean in
  let sql = "select count(*) from lineitem where l_quantity < 25" in
  let expected = Conquer.Expected.answers s sql in
  let plain = Conquer.Clean.original s sql in
  let ev = Option.get (Value.to_float (Relation.get expected 0).(0)) in
  let pv = Option.get (Value.to_float (Relation.get plain 0).(0)) in
  Fixtures.check_float ~eps:1e-6 "clean db: expectation = actual" pv ev

(* ---- hand-built two-cluster closed forms ---- *)

let test_two_cluster_closed_forms () =
  (* cluster 0: values 2 (p) and 4 (1-p); cluster 1: values 6 (q) and
     0 (1-q).  With every tuple qualifying:
       E[COUNT] = 2 exactly,
       E[SUM]   = 2p + 4(1-p) + 6q + 0(1-q)  (linearity, Dfn 5) *)
  List.iter
    (fun (p, q) ->
      let rel =
        Relation.create
          (Schema.make
             [ ("id", Value.TInt); ("v", Value.TInt); ("prob", Value.TFloat) ])
          [
            [| Value.Int 0; Value.Int 2; Value.Float p |];
            [| Value.Int 0; Value.Int 4; Value.Float (1.0 -. p) |];
            [| Value.Int 1; Value.Int 6; Value.Float q |];
            [| Value.Int 1; Value.Int 0; Value.Float (1.0 -. q) |];
          ]
      in
      let db =
        Dirty_db.add_table Dirty_db.empty
          (Dirty_db.make_table ~name:"t" ~id_attr:"id" ~prob_attr:"prob" rel)
      in
      let s = Conquer.Clean.create db in
      let scalar rel = Option.get (Value.to_float (Relation.get rel 0).(0)) in
      let e_sum = (2.0 *. p) +. (4.0 *. (1.0 -. p)) +. (6.0 *. q) in
      Fixtures.check_float "E[SUM] closed form" e_sum
        (scalar (Conquer.Expected.answers s "select sum(v) from t"));
      Fixtures.check_float "E[COUNT] = cluster count" 2.0
        (scalar (Conquer.Expected.answers s "select count(*) from t"));
      Fixtures.check_float "oracle E[SUM]" e_sum
        (scalar (Conquer.Expected.answers_oracle s "select sum(v) from t"));
      (* restricted to v >= 4: cluster 0 contributes 4(1-p), cluster 1
         contributes 6q; E[COUNT] = (1-p) + q *)
      Fixtures.check_float "filtered E[SUM]"
        ((4.0 *. (1.0 -. p)) +. (6.0 *. q))
        (scalar (Conquer.Expected.answers s "select sum(v) from t where v >= 4"));
      Fixtures.check_float "filtered E[COUNT]"
        (1.0 -. p +. q)
        (scalar
           (Conquer.Expected.answers s "select count(*) from t where v >= 4")))
    [ (0.25, 0.5); (0.9375, 0.0625); (1.0, 0.5) ]

(* ---- the rewriting agrees with the oracle over the fuzzing space ---- *)

let prop_expected_matches_oracle =
  QCheck.Test.make ~count:100
    ~name:"expected aggregates: rewriting = oracle on fuzzed stores"
    (QCheck.make Fuzz.Dbgen.store_db_gen ~print:Fuzz.Dbgen.db_to_string)
    (fun db ->
      let s = Conquer.Clean.create db in
      let sql = "select sum(val), count(*) from t0 where val < 50" in
      let fast = Conquer.Expected.answers s sql in
      let slow = Conquer.Expected.answers_oracle s sql in
      (* SUM over an empty qualifying set is NULL on both paths *)
      let value rel i =
        Option.value ~default:0.0 (Value.to_float (Relation.get rel 0).(i))
      in
      Float.abs (value fast 0 -. value slow 0) <= 1e-6
      && Float.abs (value fast 1 -. value slow 1) <= 1e-9)

(* ---- oracle equality on random databases (QCheck-lite, via seeds) ---- *)

let test_oracle_equality_randomized () =
  (* a deterministic sweep over seeds, complementing the QCheck suite *)
  List.iter
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let cluster_rows prefix entity =
        let size = 1 + Random.State.int rng 3 in
        List.init size (fun _ ->
            ( Printf.sprintf "%s%d" prefix entity,
              Random.State.int rng 8,
              1.0 /. float_of_int size ))
      in
      let rows =
        List.concat (List.init 3 (fun e -> cluster_rows "e" e))
      in
      let rel =
        Relation.create
          (Schema.make
             [ ("id", Value.TString); ("val", Value.TInt); ("prob", Value.TFloat) ])
          (List.map
             (fun (id, v, p) -> [| v_s id; Value.Int v; Value.Float p |])
             rows)
      in
      let db =
        Dirty_db.add_table Dirty_db.empty
          (Dirty_db.make_table ~name:"t" ~id_attr:"id" ~prob_attr:"prob" rel)
      in
      let s = Conquer.Clean.create db in
      let sql = "select id, sum(val), count(*) from t where val < 6 group by id" in
      let fast = Conquer.Expected.answers s sql in
      let slow = Conquer.Expected.answers_oracle s sql in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: same groups" seed)
        (Relation.cardinality slow) (Relation.cardinality fast);
      Relation.iter
        (fun row ->
          let key = [ row.(0) ] in
          let sum_fast = Option.get (Value.to_float row.(1)) in
          let cnt_fast = Option.get (Value.to_float row.(2)) in
          let slow_row =
            List.find
              (fun r -> Value.equal r.(0) row.(0))
              (Relation.row_list slow)
          in
          Fixtures.check_float ~eps:1e-9
            (Printf.sprintf "seed %d sum %s" seed
               (String.concat "," (List.map Value.to_string key)))
            (Option.get (Value.to_float slow_row.(1)))
            sum_fast;
          Fixtures.check_float ~eps:1e-9
            (Printf.sprintf "seed %d count" seed)
            (Option.get (Value.to_float slow_row.(2)))
            cnt_fast)
        fast)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_tpch_aggregate_variants () =
  (* the aggregate forms of TPC-H Q1/Q6 run through the extension *)
  let db =
    Tpch.Datagen.generate
      { Tpch.Datagen.default with sf = 0.05; inconsistency = 3 }
  in
  let s = Conquer.Clean.create db in
  let q1 =
    "select l_returnflag, l_linestatus, sum(l_quantity), \
     sum(l_extendedprice), count(*) from lineitem \
     where l_shipdate <= date '1998-09-02' \
     group by l_returnflag, l_linestatus \
     order by l_returnflag, l_linestatus"
  in
  let r1 = Conquer.Expected.answers s q1 in
  Alcotest.(check bool) "q1 groups" true (Relation.cardinality r1 > 0);
  let q6 =
    "select sum(l_extendedprice * l_discount) from lineitem \
     where l_shipdate >= date '1994-01-01' and l_shipdate < date '1995-01-01' \
     and l_discount between 0.05 and 0.07 and l_quantity < 24"
  in
  let r6 = Conquer.Expected.answers s q6 in
  Alcotest.(check int) "q6 single row" 1 (Relation.cardinality r6)

let () =
  Alcotest.run "expected"
    [
      ( "hand-computed",
        [
          Alcotest.test_case "global count" `Quick test_expected_count_global;
          Alcotest.test_case "oracle count" `Quick
            test_expected_count_oracle_agrees;
          Alcotest.test_case "sum" `Quick test_expected_sum;
          Alcotest.test_case "group by" `Quick test_expected_group_by;
          Alcotest.test_case "beyond Dfn 7" `Quick test_expected_beyond_dfn7;
          Alcotest.test_case "avg ratio" `Quick test_expected_avg_ratio;
          Alcotest.test_case "two-cluster closed forms" `Quick
            test_two_cluster_closed_forms;
        ] );
      ( "class check",
        [
          Alcotest.test_case "rejections" `Quick test_check_rejects;
          Alcotest.test_case "answers raises" `Quick test_answers_raises;
        ] );
      ( "equivalences",
        [
          Alcotest.test_case "clean db" `Quick test_clean_database_expectations;
          Alcotest.test_case "randomized oracle equality" `Quick
            test_oracle_equality_randomized;
          QCheck_alcotest.to_alcotest ~long:false prop_expected_matches_oracle;
          Alcotest.test_case "TPC-H aggregate variants" `Quick
            test_tpch_aggregate_variants;
        ] );
    ]
