(* Tests for the exact COUNT-distribution extension (Poisson-binomial
   over clusters). *)

open Dirty

let session () = Conquer.Clean.create (Fixtures.figure2_db ())

let check_pmf msg expected actual =
  Alcotest.(check int) (msg ^ ": support size") (Array.length expected)
    (Array.length actual);
  Array.iteri
    (fun i p -> Fixtures.check_float (Printf.sprintf "%s: pmf[%d]" msg i) p actual.(i))
    expected

let test_figure2_distribution () =
  let s = session () in
  let sql = "select id from customer where balance > 25000" in
  (* qualifying: cluster c1 via t5 (0.3), cluster c2 via t6 (0.2);
     count pmf: P(0) = .7*.8 = .56, P(1) = .3*.8 + .7*.2 = .38,
     P(2) = .3*.2 = .06 *)
  let pmf = Conquer.Distribution.count_distribution s sql in
  check_pmf "figure 2" [| 0.56; 0.38; 0.06 |] pmf;
  Fixtures.check_float "mean = expected count" 0.5 (Conquer.Distribution.mean pmf);
  Fixtures.check_float "variance = sum p(1-p)"
    ((0.3 *. 0.7) +. (0.2 *. 0.8))
    (Conquer.Distribution.variance pmf);
  Fixtures.check_float "P(count >= 1)" 0.44 (Conquer.Distribution.at_least pmf 1);
  Fixtures.check_float "tail beyond support" 0.0
    (Conquer.Distribution.at_least pmf 3)

let test_matches_expected_count () =
  let s = session () in
  let sql = "select id from customer where balance > 10000" in
  let pmf = Conquer.Distribution.count_distribution s sql in
  let expected =
    Conquer.Expected.answers s "select count(*) from customer where balance > 10000"
  in
  let e = Option.get (Value.to_float (Relation.get expected 0).(0)) in
  Fixtures.check_float "mean equals E[count]" e (Conquer.Distribution.mean pmf)

let test_oracle_agrees () =
  let s = session () in
  let sql = "select id from customer where balance > 25000" in
  let fast = Conquer.Distribution.count_distribution s sql in
  let slow = Conquer.Distribution.count_distribution_oracle s sql in
  (* the oracle's support covers all clusters; compare index-wise *)
  Array.iteri
    (fun i p ->
      let q = if i < Array.length fast then fast.(i) else 0.0 in
      Fixtures.check_float (Printf.sprintf "pmf[%d]" i) p q)
    slow

let test_oracle_agrees_randomized () =
  List.iter
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let rows = ref [] in
      for entity = 0 to 3 do
        let size = 1 + Random.State.int rng 3 in
        for _ = 1 to size do
          rows :=
            [|
              Value.Int entity;
              Value.Int (Random.State.int rng 10);
              Value.Float (1.0 /. float_of_int size);
            |]
            :: !rows
        done
      done;
      let rel =
        Relation.create
          (Schema.make
             [ ("id", Value.TInt); ("val", Value.TInt); ("prob", Value.TFloat) ])
          (List.rev !rows)
      in
      let db =
        Dirty_db.add_table Dirty_db.empty
          (Dirty_db.make_table ~name:"t" ~id_attr:"id" ~prob_attr:"prob" rel)
      in
      let s = Conquer.Clean.create db in
      let sql = "select id from t where val < 5" in
      let fast = Conquer.Distribution.count_distribution s sql in
      let slow = Conquer.Distribution.count_distribution_oracle s sql in
      Array.iteri
        (fun i p ->
          let q = if i < Array.length fast then fast.(i) else 0.0 in
          Fixtures.check_float (Printf.sprintf "seed %d pmf[%d]" seed i) p q)
        slow)
    [ 10; 11; 12; 13; 14 ]

let test_pmf_normalized () =
  let s = session () in
  let pmf =
    Conquer.Distribution.count_distribution s "select id from customer where balance > 0"
  in
  let total = Array.fold_left ( +. ) 0.0 pmf in
  Fixtures.check_float "normalized" 1.0 total

let test_certain_counts () =
  (* predicates satisfied by every duplicate: the count is deterministic *)
  let s = session () in
  let pmf =
    Conquer.Distribution.count_distribution s
      "select id from customer where balance > 1000"
  in
  (* both clusters qualify with certainty: P(2) = 1 *)
  check_pmf "deterministic" [| 0.0; 0.0; 1.0 |] pmf

let test_qualification_probabilities () =
  let s = session () in
  let ps =
    Conquer.Distribution.qualification_probabilities s
      "select id from customer where balance > 25000"
  in
  Alcotest.(check int) "two clusters qualify" 2 (List.length ps);
  let lookup id = List.assoc (Value.String id) ps in
  Fixtures.check_float "c1" 0.3 (lookup "c1");
  Fixtures.check_float "c2" 0.2 (lookup "c2")

let test_check_rejections () =
  let s = session () in
  let env = Conquer.Clean.env s in
  let reject sql pred =
    match Conquer.Distribution.check env (Sql.Parser.parse_query sql) with
    | Ok () -> Alcotest.failf "accepted %s" sql
    | Error vs -> Alcotest.(check bool) ("violation for " ^ sql) true (List.exists pred vs)
  in
  reject "select o.id from orders o, customer c where o.cidfk = c.id"
    (function Conquer.Distribution.Not_single_table -> true | _ -> false);
  reject "select count(*) from customer"
    (function Conquer.Distribution.Not_spj _ -> true | _ -> false);
  reject "select distinct id from customer"
    (function Conquer.Distribution.Not_spj _ -> true | _ -> false);
  match
    Conquer.Distribution.count_distribution s
      "select o.id from orders o, customer c where o.cidfk = c.id"
  with
  | exception Conquer.Distribution.Not_supported _ -> ()
  | _ -> Alcotest.fail "expected Not_supported"

let test_poisson_binomial_shape () =
  (* uniform halves: binomial(4, 0.5) *)
  let rel =
    Relation.create
      (Schema.make
         [ ("id", Value.TInt); ("v", Value.TInt); ("prob", Value.TFloat) ])
      (List.concat
         (List.init 4 (fun e ->
              [
                [| Value.Int e; Value.Int 1; Value.Float 0.5 |];
                [| Value.Int e; Value.Int 0; Value.Float 0.5 |];
              ])))
  in
  let db =
    Dirty_db.add_table Dirty_db.empty
      (Dirty_db.make_table ~name:"t" ~id_attr:"id" ~prob_attr:"prob" rel)
  in
  let s = Conquer.Clean.create db in
  let pmf = Conquer.Distribution.count_distribution s "select id from t where v = 1" in
  let binom = [| 0.0625; 0.25; 0.375; 0.25; 0.0625 |] in
  check_pmf "binomial(4, 1/2)" binom pmf

(* ---- hand-built two-cluster closed forms ---- *)

(* two clusters qualifying with p1 and p2: the count pmf is
   [(1-p1)(1-p2); p1(1-p2) + (1-p1)p2; p1 p2] *)
let two_cluster_db p1 p2 =
  (* each cluster holds one qualifying tuple (v = 1) with the given
     probability and one non-qualifying remainder *)
  let rel =
    Relation.create
      (Schema.make
         [ ("id", Value.TInt); ("v", Value.TInt); ("prob", Value.TFloat) ])
      [
        [| Value.Int 0; Value.Int 1; Value.Float p1 |];
        [| Value.Int 0; Value.Int 0; Value.Float (1.0 -. p1) |];
        [| Value.Int 1; Value.Int 1; Value.Float p2 |];
        [| Value.Int 1; Value.Int 0; Value.Float (1.0 -. p2) |];
      ]
  in
  Dirty_db.add_table Dirty_db.empty
    (Dirty_db.make_table ~name:"t" ~id_attr:"id" ~prob_attr:"prob" rel)

let test_two_cluster_closed_form () =
  List.iter
    (fun (p1, p2) ->
      let s = Conquer.Clean.create (two_cluster_db p1 p2) in
      let sql = "select id from t where v = 1" in
      let pmf = Conquer.Distribution.count_distribution s sql in
      check_pmf
        (Printf.sprintf "p1=%g p2=%g" p1 p2)
        [|
          (1.0 -. p1) *. (1.0 -. p2);
          (p1 *. (1.0 -. p2)) +. ((1.0 -. p1) *. p2);
          p1 *. p2;
        |]
        pmf;
      Fixtures.check_float "mean = p1 + p2" (p1 +. p2)
        (Conquer.Distribution.mean pmf);
      Fixtures.check_float "variance = sum p(1-p)"
        ((p1 *. (1.0 -. p1)) +. (p2 *. (1.0 -. p2)))
        (Conquer.Distribution.variance pmf);
      Fixtures.check_float "P(>=1) = 1 - (1-p1)(1-p2)"
        (1.0 -. ((1.0 -. p1) *. (1.0 -. p2)))
        (Conquer.Distribution.at_least pmf 1);
      let oracle = Conquer.Distribution.count_distribution_oracle s sql in
      check_pmf "oracle pmf" oracle pmf)
    [ (0.25, 0.5); (0.0625, 0.9375); (1.0, 0.5) ]

(* ---- the DP agrees with the oracle over the fuzzing space ---- *)

let prop_pmf_matches_oracle =
  QCheck.Test.make ~count:100
    ~name:"count pmf: DP = oracle, normalized, on fuzzed stores"
    (QCheck.make Fuzz.Dbgen.store_db_gen ~print:Fuzz.Dbgen.db_to_string)
    (fun db ->
      let s = Conquer.Clean.create db in
      let sql = "select id from t0 where val < 50" in
      let fast = Conquer.Distribution.count_distribution s sql in
      let slow = Conquer.Distribution.count_distribution_oracle s sql in
      let total = Array.fold_left ( +. ) 0.0 fast in
      Float.abs (total -. 1.0) <= 1e-9
      && Array.for_all (fun p -> p >= -1e-9 && p <= 1.0 +. 1e-9) fast
      && Array.for_all2
           (fun p q -> Float.abs (p -. q) <= 1e-9)
           (Array.append fast
              (Array.make (max 0 (Array.length slow - Array.length fast)) 0.0))
           (Array.append slow
              (Array.make (max 0 (Array.length fast - Array.length slow)) 0.0)))

let () =
  Alcotest.run "distribution"
    [
      ( "count pmf",
        [
          Alcotest.test_case "figure 2 numbers" `Quick test_figure2_distribution;
          Alcotest.test_case "mean = E[count]" `Quick test_matches_expected_count;
          Alcotest.test_case "oracle agrees" `Quick test_oracle_agrees;
          Alcotest.test_case "oracle agrees (randomized)" `Quick
            test_oracle_agrees_randomized;
          Alcotest.test_case "normalized" `Quick test_pmf_normalized;
          Alcotest.test_case "deterministic counts" `Quick test_certain_counts;
          Alcotest.test_case "binomial shape" `Quick test_poisson_binomial_shape;
          Alcotest.test_case "two-cluster closed form" `Quick
            test_two_cluster_closed_form;
          QCheck_alcotest.to_alcotest ~long:false prop_pmf_matches_oracle;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "qualification probabilities" `Quick
            test_qualification_probabilities;
          Alcotest.test_case "rejections" `Quick test_check_rejections;
        ] );
    ]
