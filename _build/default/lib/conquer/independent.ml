open Dirty

let tuple_universe db =
  List.concat_map
    (fun (t : Dirty_db.table) ->
      List.init (Relation.cardinality t.relation) (fun i ->
          (t.name, i, Dirty_db.row_probability t i)))
    (Dirty_db.tables db)

let world_count db = Float.pow 2.0 (float_of_int (List.length (tuple_universe db)))

module Rtbl = Hashtbl.Make (struct
  type t = Value.t array

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec loop i =
      i >= Array.length a || (Value.equal a.(i) b.(i) && loop (i + 1))
    in
    loop 0

  let hash a = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 a
end)

let answers ?(max_worlds = 1_000_000) db query =
  let universe = Array.of_list (tuple_universe db) in
  let n = Array.length universe in
  if Float.pow 2.0 (float_of_int n) > float_of_int max_worlds then
    invalid_arg
      (Printf.sprintf "Independent.answers: 2^%d worlds exceed the limit of %d"
         n max_worlds);
  let engine = Engine.Database.create () in
  let tables = Dirty_db.tables db in
  List.iter
    (fun (t : Dirty_db.table) ->
      Engine.Database.add_relation engine ~name:t.name t.relation)
    tables;
  let plan = Engine.Database.plan engine query in
  let answers = Rtbl.create 64 in
  let schema_ref = ref None in
  for mask = 0 to (1 lsl n) - 1 do
    (* world probability: product over present tuples of p, absent of 1-p *)
    let prob = ref 1.0 in
    for i = 0 to n - 1 do
      let _, _, p = universe.(i) in
      prob := !prob *. (if mask land (1 lsl i) <> 0 then p else 1.0 -. p)
    done;
    if !prob > 0.0 then begin
      (* materialize the world's relations *)
      List.iter
        (fun (t : Dirty_db.table) ->
          let rows = ref [] in
          for i = n - 1 downto 0 do
            let name, row, _ = universe.(i) in
            if name = t.name && mask land (1 lsl i) <> 0 then
              rows := Relation.get t.relation row :: !rows
          done;
          Engine.Database.add_relation engine ~name:t.name
            (Relation.create (Relation.schema t.relation) !rows))
        tables;
      let result = Relation.distinct (Engine.Database.run_plan engine plan) in
      if !schema_ref = None then schema_ref := Some (Relation.schema result);
      Relation.iter
        (fun row ->
          let p = Option.value ~default:0.0 (Rtbl.find_opt answers row) in
          Rtbl.replace answers row (p +. !prob))
        result
    end
  done;
  let schema =
    match !schema_ref with
    | Some s -> s
    | None ->
      List.iter
        (fun (t : Dirty_db.table) ->
          Engine.Database.add_relation engine ~name:t.name t.relation)
        tables;
      Relation.schema (Engine.Database.run_plan engine plan)
  in
  let out_schema =
    Schema.append schema (Schema.make [ (Rewrite.prob_column, Value.TFloat) ])
  in
  let rows =
    Rtbl.fold
      (fun row prob acc -> Array.append row [| Value.Float prob |] :: acc)
      answers []
  in
  let cmp a b =
    let rec go i =
      if i >= Array.length a then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0
  in
  Relation.sort_by cmp (Relation.create out_schema rows)
