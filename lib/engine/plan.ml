type t =
  | Scan of { table : string; alias : string }
  | Filter of { input : t; pred : Sql.Ast.expr }
  | Project of { input : t; items : (Sql.Ast.expr * string) list }
  | Hash_join of {
      left : t;
      right : t;
      left_keys : Sql.Ast.expr list;
      right_keys : Sql.Ast.expr list;
    }
  | Index_join of {
      left : t;
      table : string;
      alias : string;
      left_keys : Sql.Ast.expr list;
      right_attrs : string list;
    }
  | Left_outer_join of { left : t; right : t; on : Sql.Ast.expr }
  | Cross of t * t
  | Aggregate of {
      input : t;
      group_by : Sql.Ast.expr list;
      items : (Sql.Ast.expr * string) list;
      having : Sql.Ast.expr option;
    }
  | Sort of { input : t; keys : (Sql.Ast.expr * bool) list }
  | Distinct of t
  | Limit of t * int

let expr_to_string = Sql.Pretty.expr_to_string

let exprs_to_string es = String.concat ", " (List.map expr_to_string es)

let rec pp_indent fmt indent plan =
  let pad () = Format.pp_print_string fmt (String.make indent ' ') in
  pad ();
  match plan with
  | Scan { table; alias } ->
    if table = alias then Format.fprintf fmt "Scan %s@\n" table
    else Format.fprintf fmt "Scan %s AS %s@\n" table alias
  | Filter { input; pred } ->
    Format.fprintf fmt "Filter (%s)@\n" (expr_to_string pred);
    pp_indent fmt (indent + 2) input
  | Project { input; items } ->
    Format.fprintf fmt "Project [%s]@\n"
      (String.concat ", "
         (List.map (fun (e, n) -> expr_to_string e ^ " AS " ^ n) items));
    pp_indent fmt (indent + 2) input
  | Hash_join { left; right; left_keys; right_keys } ->
    Format.fprintf fmt "HashJoin (%s = %s)@\n" (exprs_to_string left_keys)
      (exprs_to_string right_keys);
    pp_indent fmt (indent + 2) left;
    pp_indent fmt (indent + 2) right
  | Index_join { left; table; alias; left_keys; right_attrs } ->
    Format.fprintf fmt "IndexJoin %s AS %s (%s = %s)@\n" table alias
      (exprs_to_string left_keys)
      (String.concat ", " right_attrs);
    pp_indent fmt (indent + 2) left
  | Left_outer_join { left; right; on } ->
    Format.fprintf fmt "LeftOuterJoin (%s)@\n" (expr_to_string on);
    pp_indent fmt (indent + 2) left;
    pp_indent fmt (indent + 2) right
  | Cross (a, b) ->
    Format.fprintf fmt "CrossProduct@\n";
    pp_indent fmt (indent + 2) a;
    pp_indent fmt (indent + 2) b
  | Aggregate { input; group_by; items; having } ->
    Format.fprintf fmt "Aggregate group=[%s] out=[%s]%s@\n"
      (exprs_to_string group_by)
      (String.concat ", "
         (List.map (fun (e, n) -> expr_to_string e ^ " AS " ^ n) items))
      (match having with
      | None -> ""
      | Some h -> " having=(" ^ expr_to_string h ^ ")");
    pp_indent fmt (indent + 2) input
  | Sort { input; keys } ->
    Format.fprintf fmt "Sort [%s]@\n"
      (String.concat ", "
         (List.map
            (fun (e, desc) -> expr_to_string e ^ if desc then " DESC" else "")
            keys));
    pp_indent fmt (indent + 2) input
  | Distinct input ->
    Format.fprintf fmt "Distinct@\n";
    pp_indent fmt (indent + 2) input
  | Limit (input, n) ->
    Format.fprintf fmt "Limit %d@\n" n;
    pp_indent fmt (indent + 2) input

let pp fmt plan = pp_indent fmt 0 plan
let to_string plan = Format.asprintf "%a" pp plan

let rec base_tables = function
  | Scan { table; alias } -> [ (table, alias) ]
  | Filter { input; _ } | Project { input; _ } | Aggregate { input; _ }
  | Sort { input; _ } ->
    base_tables input
  | Hash_join { left; right; _ }
  | Left_outer_join { left; right; _ }
  | Cross (left, right) ->
    base_tables left @ base_tables right
  | Index_join { left; table; alias; _ } -> base_tables left @ [ (table, alias) ]
  | Distinct input | Limit (input, _) -> base_tables input

(* nodes with a columnar (chunk-at-a-time) implementation; subtrees of
   these evaluate column-to-column when the executor fuses *)
let chunk_friendly = function
  | Scan _ | Filter _ | Project _ | Hash_join _ -> true
  | Index_join _ | Left_outer_join _ | Cross _ | Aggregate _ | Sort _
  | Distinct _ | Limit _ ->
    false
