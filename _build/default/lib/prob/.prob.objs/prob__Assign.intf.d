lib/prob/assign.mli: Dirty Infotheory Matrix
