lib/conquer/rewrite.mli: Dirty_schema Rewritable Sql
