(** Persistent hash indexes on a single attribute of a base table.

    The paper's experiments create indexes on the identifier
    attributes before timing queries; {!Planner} uses these indexes
    for index joins when available. *)

type t

val build : Dirty.Relation.t -> string -> t
(** [build rel attr] indexes [rel]'s rows by the value of [attr].
    @raise Not_found if [attr] is not in the schema. *)

val attr : t -> string
val lookup : t -> Dirty.Value.t -> int list
(** Row indices holding the value, in row order. *)

val distinct_keys : t -> int
val cardinality : t -> int
