(* The daemon under hostile conditions.

   The headline soak: a few hundred concurrent requests — fast clean
   queries, budgeted queries, short-deadline heavy queries, rude
   clients that hang up mid-query, injected store faults, and live
   re-commits bumping the generation — against one server.  The
   daemon must never crash, never return a wrong answer (every
   complete 200 is compared against [Clean.answers] recomputed
   directly from the snapshot of the generation the response claims),
   and over-deadline requests must come back as partial/408 in
   bounded time.

   Around the soak: unit tests for the FIFO cache and the circuit
   breaker (injected clock), the cache-invalidation property (a
   commit is immediately visible; no stale-generation answers), the
   shed/burst path, disconnect cancellation, both drain outcomes, and
   the serve.* metrics surface. *)

open Dirty

(* ---- fixture database ---- *)

let table_of_clusters = Fuzz.Dbgen.store_table_of_clusters
let db_of_tables = Fuzz.Dbgen.db_of_tables

(* [variant k] databases answer the fixture queries differently for
   every k, so a stale cache or session is caught by content, not
   just by the generation number *)
let variant k =
  let cluster i =
    ( Printf.sprintf "c%d" i,
      [ ((100 * k) + i, 10); ((100 * k) + i + 1, 6) ] )
  in
  db_of_tables
    [
      table_of_clusters "alpha" (List.init 24 cluster);
      table_of_clusters "beta" (List.init 6 cluster);
    ]

let fixture = variant 0

let q_alpha = "select id from alpha"
let q_beta = "select id from beta where val >= 0"
let q_proj = "select id, val from alpha"
let fast_queries = [ q_alpha; q_beta; q_proj ]

(* ~1.3M intermediate rows (run as mode=original, outside the
   rewritable class): long enough to outlive a short deadline, bounded
   enough for the suite once cancelled *)
let slow_sql =
  "select a.val from alpha a, alpha b, alpha c, beta d where a.val + b.val + \
   c.val + d.val > -1"

(* ---- expected answers, rendered the way the server renders them ---- *)

let value_json v =
  match v with
  | Value.Null -> "null"
  | Value.Bool b -> if b then "true" else "false"
  | Value.Int i -> string_of_int i
  | Value.Float f -> Telemetry.Export.json_float f
  | Value.String s -> Telemetry.Export.json_string s
  | Value.Date _ -> Telemetry.Export.json_string (Value.to_string v)

let rows_json rel =
  let buf = Buffer.create 256 in
  Buffer.add_char buf '[';
  Array.iteri
    (fun i row ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '[';
      Array.iteri
        (fun j v ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (value_json v))
        row;
      Buffer.add_char buf ']')
    (Relation.rows rel);
  Buffer.add_char buf ']';
  Buffer.contents buf

(* query text -> expected rows JSON, for one database snapshot *)
let expected_rows db =
  let session = Conquer.Clean.create db in
  List.map
    (fun sql -> (sql, rows_json (Conquer.Clean.answers session sql)))
    fast_queries

(* ---- response parsing (field extraction, no JSON library) ---- *)

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

let body_rows body =
  match (find_sub body "\"rows\":", find_sub body ",\"row_count\"") with
  | Some i, Some j ->
    let start = i + String.length "\"rows\":" in
    String.sub body start (j - start)
  | _ -> Alcotest.failf "no rows field in %s" body

let body_field body name =
  let tag = "\"" ^ name ^ "\":" in
  match find_sub body tag with
  | None -> Alcotest.failf "no %s field in %s" name body
  | Some i ->
    let start = i + String.length tag in
    let rec stop j =
      if j >= String.length body then j
      else match body.[j] with ',' | '}' -> j | _ -> stop (j + 1)
    in
    String.sub body start (stop start - start)

let body_generation body = int_of_string (body_field body "generation")
let body_flag body name = body_field body name = "true"

(* ---- server harness ---- *)

let base_config =
  {
    Server.Serve.default_config with
    port = 0;
    concurrency = 4;
    queue_capacity = 16;
    default_deadline = 10.0;
    drain_deadline = 10.0;
  }

(* run [f dir t port] against a live server; returns f's result and
   the drain report from shutting the server down afterwards *)
let with_server ?(config = base_config) db f =
  Testutil.with_temp_dir @@ fun dir ->
  Fault.Io.reset ();
  Store.save dir db;
  let t = Server.Serve.create ~config ~dir () in
  let runner = Domain.spawn (fun () -> Server.Serve.run t) in
  let res =
    try f dir t (Server.Serve.port t)
    with e ->
      Server.Serve.shutdown t;
      ignore (Domain.join runner);
      Fault.Io.reset ();
      raise e
  in
  Server.Serve.shutdown t;
  let report = Domain.join runner in
  Fault.Io.reset ();
  (res, report)

type outcome = Resp of Server.Http.response | Conn_error of string

let client port ?body ?(timeout = 30.0) target =
  try Resp (Server.Http.request ~host:"127.0.0.1" ~port ?body ~timeout target)
  with
  | Server.Http.Disconnected -> Conn_error "disconnected"
  | Server.Http.Timeout -> Conn_error "timeout"
  | Unix.Unix_error (e, _, _) -> Conn_error (Unix.error_message e)

let expect_200 outcome =
  match outcome with
  | Resp { status = 200; r_body; _ } -> r_body
  | Resp { status; r_body; _ } ->
    Alcotest.failf "expected 200, got %d: %s" status r_body
  | Conn_error e -> Alcotest.failf "expected 200, got connection error: %s" e

(* a rude client: sends a request and hangs up without reading *)
let fire_and_hangup port target =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  (try
     Unix.connect fd (ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
     let req =
       Printf.sprintf "POST %s HTTP/1.1\r\ncontent-length: %d\r\n\r\n%s" target
         (String.length slow_sql) slow_sql
     in
     ignore (Unix.write_substring fd req 0 (String.length req))
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* ---- unit: cache ---- *)

let test_cache_fifo () =
  let open Server in
  let c = Cache.create ~capacity:3 in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  Cache.add c "c" 3;
  Cache.add c "d" 4;
  Alcotest.(check (option int)) "oldest evicted" None (Cache.find c "a");
  Alcotest.(check (option int)) "newest kept" (Some 4) (Cache.find c "d");
  Alcotest.(check int) "bounded" 3 (Cache.length c);
  Cache.add c "b" 20;
  Alcotest.(check (option int)) "replace in place" (Some 20) (Cache.find c "b");
  Alcotest.(check int) "replace does not grow" 3 (Cache.length c);
  Cache.drop c (fun k -> k <> "b");
  Alcotest.(check int) "drop by predicate" 1 (Cache.length c);
  Cache.clear c;
  Alcotest.(check int) "clear" 0 (Cache.length c);
  let off = Cache.create ~capacity:0 in
  Cache.add off "a" 1;
  Alcotest.(check (option int)) "capacity 0 disables" None (Cache.find off "a")

(* ---- unit: circuit breaker with an injected clock ---- *)

let test_breaker_transitions () =
  let open Server in
  let now = ref 0.0 in
  let policy =
    { Fault.Retry.attempts = 5; base_backoff = 1.0; max_backoff = 8.0; jitter = 0.0 }
  in
  let b = Breaker.create ~threshold:2 ~policy ~clock:(fun () -> !now) () in
  Alcotest.(check bool) "closed admits" true (Breaker.allow b);
  Breaker.failure b;
  Alcotest.(check bool) "one failure stays closed" true (Breaker.allow b);
  Breaker.failure b;
  Alcotest.(check bool) "threshold trips open" true (Breaker.state b = Breaker.Open);
  Alcotest.(check bool) "open refuses" false (Breaker.allow b);
  now := 0.5;
  Alcotest.(check bool) "still cooling down" false (Breaker.allow b);
  now := 1.1;
  Alcotest.(check bool) "cooldown over: one probe" true (Breaker.allow b);
  Alcotest.(check bool) "half-open refuses a second probe" false (Breaker.allow b);
  Breaker.failure b;
  Alcotest.(check bool) "probe failure re-opens" true (Breaker.state b = Breaker.Open);
  (* second trip backs off exponentially: 2s from the re-trip *)
  now := 2.0;
  Alcotest.(check bool) "longer cooldown holds" false (Breaker.allow b);
  now := 3.2;
  Alcotest.(check bool) "second probe admitted" true (Breaker.allow b);
  Breaker.success b;
  Alcotest.(check bool) "probe success closes" true (Breaker.state b = Breaker.Closed);
  Alcotest.(check bool) "closed admits again" true (Breaker.allow b);
  Alcotest.(check int) "two trips counted" 2 (Breaker.trips b)

(* ---- unit: histogram quantiles ---- *)

let test_histogram_quantile () =
  let hs =
    {
      Telemetry.Metrics.hs_bounds = [| 0.001; 0.002; 0.004 |];
      hs_counts = [| 2; 3; 4; 5 |];
      hs_sum = 0.02;
      hs_total = 5;
      hs_exemplars = [| None; None; None; None |];
    }
  in
  Alcotest.(check (float 1e-9)) "p40 in first bucket" 0.001
    (Telemetry.Metrics.histogram_quantile hs 0.4);
  Alcotest.(check (float 1e-9)) "p60 in second bucket" 0.002
    (Telemetry.Metrics.histogram_quantile hs 0.6);
  Alcotest.(check (float 1e-9)) "overflow reports last bound" 0.004
    (Telemetry.Metrics.histogram_quantile hs 1.0);
  let empty =
    { Telemetry.Metrics.hs_bounds = [| 1.0 |]; hs_counts = [| 0; 0 |];
      hs_sum = 0.0; hs_total = 0; hs_exemplars = [| None; None |] }
  in
  Alcotest.(check (float 1e-9)) "empty histogram" 0.0
    (Telemetry.Metrics.histogram_quantile empty 0.99)

(* ---- unit: query-log records round-trip ---- *)

let test_querylog_roundtrip () =
  let open Server in
  let record =
    {
      Querylog.empty_record with
      ts = 1723111845.1234567;
      trace_id = "00ff00ff00ff00ff";
      sampled = true;
      sql = "SELECT \"weird\"\n\tid FROM t \\ x";
      fingerprint = Querylog.fingerprint "select id from t";
      plan_hash = "abcdef0123456789";
      generation = 7;
      mode = "original";
      status = 200;
      rows = 42;
      truncated = true;
      cancelled = false;
      cached = true;
      slow = true;
      queue_wait_ms = 0.037;
      exec_ms = 12.5;
      total_ms = 13.000000000000004;
    }
  in
  (match Querylog.of_json (Querylog.to_json record) with
  | Ok r -> Alcotest.(check bool) "bit-for-bit round-trip" true (r = record)
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e);
  (match Querylog.of_json "{}" with
  | Ok r ->
    Alcotest.(check bool) "missing keys take defaults" true
      (r = Querylog.empty_record)
  | Error e -> Alcotest.failf "empty object: %s" e);
  (match Querylog.of_json "{\"seq\":1,\"later_field\":\"ignored\"}" with
  | Ok r -> Alcotest.(check int) "unknown keys ignored" 1 r.Querylog.seq
  | Error e -> Alcotest.failf "unknown key: %s" e);
  (match Querylog.of_json "not json" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ());
  (* ring + cursor semantics *)
  let log = Querylog.create ~capacity:4 () in
  let stamped =
    List.map
      (fun i ->
        Querylog.log log { Querylog.empty_record with rows = i })
      [ 1; 2; 3; 4; 5; 6 ]
  in
  Alcotest.(check (list int)) "seq stamps monotonically"
    [ 1; 2; 3; 4; 5; 6 ]
    (List.map (fun (r : Querylog.record) -> r.seq) stamped);
  Alcotest.(check (list int)) "ring keeps the newest, ascending"
    [ 3; 4; 5; 6 ]
    (List.map (fun (r : Querylog.record) -> r.seq) (Querylog.recent log));
  Alcotest.(check (list int)) "cursor tails past seq 4"
    [ 5; 6 ]
    (List.map
       (fun (r : Querylog.record) -> r.seq)
       (Querylog.recent ~after:4 log));
  Alcotest.(check (list int)) "n keeps the newest"
    [ 5; 6 ]
    (List.map (fun (r : Querylog.record) -> r.seq) (Querylog.recent ~n:2 log));
  Querylog.close log

(* ---- request tracing ---- *)

(* the pretty span rendering, one "(indent)name  X.XXXms ..." line per
   span: parse (indent, name, elapsed_ms) per line *)
let parse_pretty_spans text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let indent =
           let rec go i =
             if i < String.length line && line.[i] = ' ' then go (i + 1) else i
           in
           go 0
         in
         let rest = String.sub line indent (String.length line - indent) in
         match String.index_opt rest ' ' with
         | None -> None
         | Some i -> (
           let name = String.sub rest 0 i in
           let after = String.sub rest i (String.length rest - i) in
           let words =
             String.split_on_char ' ' after |> List.filter (fun w -> w <> "")
           in
           match
             List.find_opt
               (fun w -> String.length w > 2 && Filename.check_suffix w "ms")
               words
           with
           | Some w -> (
             match
               float_of_string_opt (String.sub w 0 (String.length w - 2))
             with
             | Some ms -> Some (indent, name, ms)
             | None -> None)
           | None -> None))

(* leaves of the indentation tree: a line none of whose successors is
   deeper before the indentation returns to its level *)
let leaf_ms spans =
  let arr = Array.of_list spans in
  let n = Array.length arr in
  let is_leaf i =
    let indent_i, _, _ = arr.(i) in
    if i + 1 >= n then true
    else
      let indent_next, _, _ = arr.(i + 1) in
      indent_next <= indent_i
  in
  let total = ref 0.0 in
  Array.iteri (fun i (_, _, ms) -> if is_leaf i then total := !total +. ms) arr;
  !total

let test_trace_capture_and_coverage () =
  let config = { base_config with trace_sample = 1.0 } in
  let trace_id = "feedc0de12345678" in
  let (), _report =
    with_server ~config fixture (fun _dir _t port ->
        (* a heavy enough query that per-operator time dominates the
           fixed per-request glue *)
        let target = "/query?mode=original&deadline_ms=30000" in
        let resp =
          Server.Http.request ~host:"127.0.0.1" ~port
            ~headers:[ ("x-trace-id", trace_id) ]
            ~body:"select a.val from alpha a, alpha b where a.val + b.val >= 0"
            target
        in
        Alcotest.(check int) "query ok" 200 resp.Server.Http.status;
        Alcotest.(check (option string)) "trace id echoed" (Some trace_id)
          (List.assoc_opt "x-trace-id" resp.Server.Http.r_headers);
        (* the retained trace, pretty-rendered by the daemon *)
        let pretty =
          expect_200
            (client port (Printf.sprintf "/debug/traces/%s?format=pretty" trace_id))
        in
        let spans = parse_pretty_spans pretty in
        let names = List.map (fun (_, name, _) -> name) spans in
        Alcotest.(check bool) "root serve.request" true
          (List.mem "serve.request" names);
        Alcotest.(check bool) "queue wait span" true
          (List.mem "serve.queue_wait" names);
        Alcotest.(check bool) "per-operator exec span" true
          (List.exists
             (fun n -> String.length n >= 5 && String.sub n 0 5 = "exec.")
             names);
        Alcotest.(check bool) "planner span" true
          (List.mem "planner.plan" names);
        Alcotest.(check bool) "serialization span" true
          (List.mem "serve.serialize" names);
        let root_ms =
          match spans with
          | (_, _, ms) :: _ -> ms
          | [] -> Alcotest.fail "no spans parsed"
        in
        let covered = leaf_ms spans in
        Alcotest.(check bool)
          (Printf.sprintf "leaf spans cover >=95%% (%.3f of %.3fms)" covered
             root_ms)
          true
          (covered >= 0.95 *. root_ms);
        (* JSON form of the same trace *)
        let json = expect_200 (client port ("/debug/traces/" ^ trace_id)) in
        Alcotest.(check bool) "json trace carries id" true
          (find_sub json trace_id <> None);
        (* the index lists it *)
        let index = expect_200 (client port "/debug/traces") in
        Alcotest.(check bool) "index lists the trace" true
          (find_sub index trace_id <> None);
        (* exemplars join the latency histogram to this trace *)
        let ex = expect_200 (client port "/debug/exemplars") in
        Alcotest.(check bool) "exemplar references a trace" true
          (find_sub ex "serve.request_seconds" <> None);
        (* unknown ids 404 *)
        match client port "/debug/traces/0000000000000000" with
        | Resp { status = 404; _ } -> ()
        | Resp { status; _ } -> Alcotest.failf "expected 404, got %d" status
        | Conn_error e -> Alcotest.failf "connection error: %s" e)
  in
  ()

(* four worker domains, every request traced with its own id: each
   retained tree must be intact (its own trace id, exactly one queue
   wait, a planner and an exec subtree) — a cross-domain span-stack
   mixup would show up as missing or foreign spans *)
let test_trace_integrity_across_domains () =
  let config =
    { base_config with concurrency = 4; trace_sample = 1.0;
      trace_capacity = 128; cache_capacity = 0 }
  in
  let n_clients = 4 and per_client = 8 in
  let ids =
    List.init (n_clients * per_client) (fun i ->
        Printf.sprintf "ab%014x" (i + 1))
  in
  let (), _report =
    with_server ~config fixture (fun _dir _t port ->
        let fire id k =
          let sql = List.nth fast_queries (k mod List.length fast_queries) in
          let resp =
            Server.Http.request ~host:"127.0.0.1" ~port
              ~headers:[ ("x-trace-id", id) ]
              ~body:sql "/query"
          in
          Alcotest.(check int) "query ok" 200 resp.Server.Http.status
        in
        List.init n_clients (fun c ->
            Domain.spawn (fun () ->
                List.iteri
                  (fun k id -> fire id k)
                  (List.filteri
                     (fun i _ -> i mod n_clients = c)
                     ids)))
        |> List.iter Domain.join;
        List.iter
          (fun id ->
            let pretty =
              expect_200
                (client port
                   (Printf.sprintf "/debug/traces/%s?format=pretty" id))
            in
            Alcotest.(check bool)
              ("trace " ^ id ^ " carries its own id")
              true
              (find_sub pretty ("trace_id=" ^ id) <> None);
            let spans = parse_pretty_spans pretty in
            let count name =
              List.length (List.filter (fun (_, n, _) -> n = name) spans)
            in
            Alcotest.(check int) "exactly one root" 1 (count "serve.request");
            Alcotest.(check int) "exactly one queue wait" 1
              (count "serve.queue_wait");
            Alcotest.(check int) "exactly one engine subtree" 1
              (count "engine.query");
            (* >= 1: a prepared-cache miss also plans once for the
               plan hash *)
            Alcotest.(check bool) "planned" true (count "planner.plan" >= 1);
            Alcotest.(check bool) "per-operator exec spans" true
              (List.exists
                 (fun (_, n, _) ->
                   String.length n >= 5 && String.sub n 0 5 = "exec.")
                 spans))
          ids)
  in
  ()

(* rate 0 plus a zero slow-query threshold: nothing samples, but every
   request crosses the threshold and is promoted to a retained dump *)
let test_slow_query_promotion () =
  let config =
    { base_config with trace_sample = 0.0; slow_query_ms = Some 0.0 }
  in
  let (), _report =
    with_server ~config fixture (fun _dir _t port ->
        let resp =
          Server.Http.request ~host:"127.0.0.1" ~port
            ~headers:[ ("x-trace-id", "5109999999999999") ]
            ~body:q_alpha "/query"
        in
        Alcotest.(check int) "query ok" 200 resp.Server.Http.status;
        ignore
          (expect_200 (client port "/debug/traces/5109999999999999"));
        let log = expect_200 (client port "/debug/querylog?n=10") in
        Alcotest.(check bool) "record flagged slow" true
          (find_sub log "\"slow\":true" <> None))
  in
  ()

(* the structured query log over the wire: every /query lands one
   record, parseable by the CLI's reader, with the latency split and
   the outcome flags; the seq cursor tails correctly *)
let test_querylog_over_http () =
  let config = { base_config with trace_sample = 1.0 } in
  let (), _report =
    with_server ~config fixture (fun _dir _t port ->
        List.iter
          (fun sql -> ignore (expect_200 (client port ~body:sql "/query")))
          fast_queries;
        (* one cached repeat *)
        ignore (expect_200 (client port ~body:q_alpha "/query"));
        let body = expect_200 (client port "/debug/querylog?n=100") in
        let records =
          String.split_on_char '\n' body
          |> List.filter (fun l -> String.trim l <> "")
          |> List.map (fun line ->
                 match Server.Querylog.of_json line with
                 | Ok r -> r
                 | Error e -> Alcotest.failf "unparseable record %s: %s" line e)
        in
        Alcotest.(check int) "one record per query" 4 (List.length records);
        List.iter
          (fun (r : Server.Querylog.record) ->
            Alcotest.(check int) "status" 200 r.status;
            Alcotest.(check bool) "rows counted" true (r.rows > 0);
            Alcotest.(check bool) "fingerprint present" true
              (String.length r.fingerprint = 16);
            Alcotest.(check bool) "plan hash present" true
              (String.length r.plan_hash = 16);
            Alcotest.(check bool) "generation known" true (r.generation >= 0);
            Alcotest.(check bool) "total covers exec" true
              (r.total_ms >= r.exec_ms);
            Alcotest.(check bool) "queue wait measured" true
              (r.queue_wait_ms >= 0.0);
            Alcotest.(check bool) "trace id present" true
              (Telemetry.Trace.valid_id r.trace_id))
          records;
        Alcotest.(check bool) "cached repeat flagged" true
          (List.exists (fun (r : Server.Querylog.record) -> r.cached) records);
        (* identical queries share fingerprints *)
        let by_first =
          List.filter
            (fun (r : Server.Querylog.record) ->
              r.fingerprint
              = (List.hd records).Server.Querylog.fingerprint)
            records
        in
        Alcotest.(check int) "repeat shares the fingerprint" 2
          (List.length by_first);
        (* cursor: everything after the second record *)
        let tail = expect_200 (client port "/debug/querylog?n=100&after=2") in
        let tail_seqs =
          String.split_on_char '\n' tail
          |> List.filter (fun l -> String.trim l <> "")
          |> List.map (fun line ->
                 match Server.Querylog.of_json line with
                 | Ok r -> r.Server.Querylog.seq
                 | Error e -> Alcotest.failf "tail parse: %s" e)
        in
        Alcotest.(check (list int)) "seq cursor" [ 3; 4 ] tail_seqs)
  in
  ()

(* /debug/requests shows an executing query with its trace id, and
   /debug/gc answers *)
let test_debug_requests_inflight () =
  let config =
    { base_config with trace_sample = 1.0; cache_capacity = 0 }
  in
  let (), _report =
    with_server ~config fixture (fun _dir _t port ->
        let slow_client =
          Domain.spawn (fun () ->
              client port
                ~body:slow_sql
                ~timeout:30.0 "/query?mode=original&deadline_ms=3000")
        in
        (* poll until the slow query shows up in flight *)
        let rec probe tries =
          let body = expect_200 (client port "/debug/requests") in
          if find_sub body "\"sql\":" <> None && find_sub body "alpha" <> None
          then body
          else if tries <= 0 then
            Alcotest.failf "query never appeared in flight: %s" body
          else begin
            Unix.sleepf 0.02;
            probe (tries - 1)
          end
        in
        let body = probe 100 in
        Alcotest.(check bool) "trace id listed" true
          (find_sub body "\"trace_id\":" <> None);
        Alcotest.(check bool) "elapsed listed" true
          (find_sub body "\"elapsed_ms\":" <> None);
        let gc = expect_200 (client port "/debug/gc") in
        Alcotest.(check bool) "gc snapshot" true
          (find_sub gc "\"heap_words\":" <> None);
        ignore (Domain.join slow_client))
  in
  ()

(* with sampling off and no slow threshold, nothing is retained and
   the debug surface stays empty (the <3%% overhead configuration) *)
let test_tracing_off_retains_nothing () =
  let (), _report =
    with_server fixture (fun _dir _t port ->
        List.iter
          (fun sql -> ignore (expect_200 (client port ~body:sql "/query")))
          fast_queries;
        let index = expect_200 (client port "/debug/traces") in
        Alcotest.(check bool) "no traces retained" true
          (find_sub index "\"count\":0" <> None);
        (* the query log still records everything *)
        let log = expect_200 (client port "/debug/querylog?n=10") in
        let lines =
          List.filter
            (fun l -> String.trim l <> "")
            (String.split_on_char '\n' log)
        in
        Alcotest.(check int) "query log still populated" 3
          (List.length lines);
        List.iter
          (fun line ->
            match Server.Querylog.of_json line with
            | Ok r ->
              Alcotest.(check bool) "not sampled" false
                r.Server.Querylog.sampled
            | Error e -> Alcotest.failf "parse: %s" e)
          lines)
  in
  ()

(* --query-log FILE: records are also appended as JSON lines *)
let test_querylog_file_sink () =
  Testutil.with_temp_dir @@ fun scratch ->
  let path = Filename.concat scratch "queries.jsonl" in
  let config = { base_config with querylog_path = Some path } in
  let (), _report =
    with_server ~config fixture (fun _dir _t port ->
        List.iter
          (fun sql -> ignore (expect_200 (client port ~body:sql "/query")))
          [ q_alpha; q_beta ])
  in
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let records =
    List.rev_map
      (fun line ->
        match Server.Querylog.of_json line with
        | Ok r -> r
        | Error e -> Alcotest.failf "file sink line %s: %s" line e)
      !lines
  in
  Alcotest.(check int) "one line per query" 2 (List.length records)

(* ---- endpoints and differential answers ---- *)

let test_endpoints_and_answers () =
  let expected = expected_rows fixture in
  let (), _report =
    with_server fixture (fun _dir _t port ->
        let body = expect_200 (client port "/healthz") in
        Alcotest.(check string) "healthz" "{\"status\":\"ok\"}" body;
        ignore (expect_200 (client port "/readyz"));
        (match client port "/metrics" with
        | Resp { status = 200; r_body; _ } ->
          Alcotest.(check bool) "prometheus exposition" true
            (find_sub r_body "conquer_serve_requests" <> None)
        | _ -> Alcotest.fail "metrics endpoint failed");
        List.iter
          (fun (sql, rows) ->
            let body = expect_200 (client port ~body:sql "/query") in
            Alcotest.(check string) ("answers: " ^ sql) rows (body_rows body);
            Alcotest.(check bool) "complete" false (body_flag body "partial");
            Alcotest.(check bool) "first run computes" false
              (body_flag body "cached");
            let again = expect_200 (client port ~body:sql "/query") in
            Alcotest.(check string) "cached rows identical" rows
              (body_rows again);
            Alcotest.(check bool) "second run cached" true
              (body_flag again "cached"))
          expected;
        (match client port "/nope" with
        | Resp { status = 404; _ } -> ()
        | _ -> Alcotest.fail "unknown path should 404");
        (match client port ~body:q_alpha "/healthz" with
        | Resp { status = 405; _ } -> ()
        | _ -> Alcotest.fail "POST /healthz should 405");
        (match client port "/query" with
        | Resp { status = 400; _ } -> ()
        | _ -> Alcotest.fail "query without sql should 400");
        (match client port ~body:"select nonsense from" "/query" with
        | Resp { status = 400; _ } -> ()
        | _ -> Alcotest.fail "parse error should 400");
        (match client port ~body:"select val from alpha" "/query" with
        | Resp { status = 400; r_body; _ } ->
          Alcotest.(check bool) "explains the violation" true
            (find_sub r_body "not rewritable" <> None)
        | _ -> Alcotest.fail "non-rewritable should 400"))
  in
  ()

let test_partial_on_tiny_budget () =
  let (), _report =
    with_server fixture (fun _dir _t port ->
        let body =
          expect_200 (client port ~body:q_alpha "/query?budget_rows=2")
        in
        Alcotest.(check bool) "partial" true (body_flag body "partial");
        Alcotest.(check bool) "truncated" true (body_flag body "truncated");
        (* partial results must never be served from the cache *)
        let again =
          expect_200 (client port ~body:q_alpha "/query?budget_rows=2")
        in
        Alcotest.(check bool) "partial not cached" false
          (body_flag again "cached"))
  in
  ()

let test_deadline_partial_or_408 () =
  let (), _report =
    with_server fixture (fun _dir _t port ->
        let started = Unix.gettimeofday () in
        let outcome =
          client port ~body:slow_sql "/query?mode=original&deadline_ms=500"
        in
        let elapsed = Unix.gettimeofday () -. started in
        (match outcome with
        | Resp { status = 200; r_body; _ } ->
          Alcotest.(check bool) "over-deadline answer is partial" true
            (body_flag r_body "partial");
          Alcotest.(check bool) "flagged cancelled" true
            (body_flag r_body "cancelled")
        | Resp { status = 408; _ } -> ()
        | Resp { status; r_body; _ } ->
          Alcotest.failf "expected partial 200 or 408, got %d: %s" status r_body
        | Conn_error e -> Alcotest.failf "connection error: %s" e);
        Alcotest.(check bool)
          (Printf.sprintf "within 2x deadline (took %.3fs)" elapsed)
          true (elapsed <= 1.0))
  in
  ()

(* ---- overload: shed with Retry-After, queue deadline 408 ---- *)

let test_shed_under_burst () =
  let config =
    { base_config with concurrency = 1; queue_capacity = 2; default_deadline = 0.4 }
  in
  let before = Option.value (Telemetry.Metrics.counter_value "serve.shed") ~default:0 in
  let outcomes, _report =
    with_server ~config fixture (fun _dir _t port ->
        let clients =
          List.init 12 (fun _ ->
              Domain.spawn (fun () ->
                  client port ~body:slow_sql "/query?mode=original"))
        in
        List.map Domain.join clients)
  in
  let shed =
    List.filter
      (fun o ->
        match o with
        | Resp ({ status = 503; _ } as r) ->
          Alcotest.(check bool) "shed carries retry-after" true
            (Server.Http.(
               List.assoc_opt "retry-after" r.r_headers <> None));
          true
        | _ -> false)
      outcomes
  in
  List.iter
    (fun o ->
      match o with
      | Resp { status = 200 | 408 | 503; _ } -> ()
      | Resp { status; r_body; _ } ->
        Alcotest.failf "burst produced status %d: %s" status r_body
      | Conn_error _ -> (* a shed connection torn down mid-exchange *) ())
    outcomes;
  Alcotest.(check bool) "burst actually shed" true (List.length shed >= 1);
  let after = Option.value (Telemetry.Metrics.counter_value "serve.shed") ~default:0 in
  Alcotest.(check bool) "serve.shed counted" true (after > before)

(* ---- disconnect cancellation frees the worker ---- *)

let test_client_disconnect_cancels () =
  let config = { base_config with concurrency = 1 } in
  let before =
    Option.value (Telemetry.Metrics.counter_value "serve.cancelled") ~default:0
  in
  let (), _report =
    with_server ~config fixture (fun _dir _t port ->
        (* occupy the only worker with a 30s-deadline heavy query whose
           client immediately hangs up *)
        fire_and_hangup port "/query?mode=original&deadline_ms=30000";
        Unix.sleepf 0.2;
        (* the reaper must trip the abandoned query's token well before
           its deadline, freeing the worker for this request *)
        let started = Unix.gettimeofday () in
        let body = expect_200 (client port ~body:q_alpha "/query" ~timeout:20.0) in
        let elapsed = Unix.gettimeofday () -. started in
        Alcotest.(check bool) "answer still correct" false
          (body_flag body "partial");
        Alcotest.(check bool)
          (Printf.sprintf "worker freed fast (%.3fs)" elapsed)
          true (elapsed < 10.0))
  in
  let after =
    Option.value (Telemetry.Metrics.counter_value "serve.cancelled") ~default:0
  in
  Alcotest.(check bool) "disconnect counted as cancellation" true (after > before)

(* ---- cache invalidation across commits (satellite property) ---- *)

let test_cache_invalidation_on_commit () =
  let (), _report =
    with_server fixture (fun dir _t port ->
        for k = 1 to 6 do
          (* populate the cache for the current generation... *)
          ignore (expect_200 (client port ~body:q_alpha "/query"));
          let warm = expect_200 (client port ~body:q_alpha "/query") in
          Alcotest.(check bool) "cache warm before commit" true
            (body_flag warm "cached");
          (* ...then commit a snapshot with different answers *)
          let db = variant k in
          Store.save dir db;
          let committed = Store.generation dir in
          let fresh = List.assoc q_alpha (expected_rows db) in
          let body = expect_200 (client port ~body:q_alpha "/query") in
          Alcotest.(check int)
            (Printf.sprintf "commit %d visible immediately" k)
            committed (body_generation body);
          Alcotest.(check string)
            (Printf.sprintf "no stale answers after commit %d" k)
            fresh (body_rows body);
          Alcotest.(check bool) "not served from the stale cache" false
            (body_flag body "cached")
        done)
  in
  ()

(* ---- POST /update: commit, invalidation, durability ---- *)

let test_update_endpoint () =
  let batch_csv = "reassign,alpha,c0,1,3\ninsert,alpha,zz,5,1.0" in
  let updated =
    (Delta.apply fixture (Delta.of_rows (Csv.parse_rows batch_csv))).Delta.db
  in
  let (), _report =
    with_server fixture (fun dir _t port ->
        (* warm the result cache for the current generation *)
        ignore (expect_200 (client port ~body:q_alpha "/query"));
        let warm = expect_200 (client port ~body:q_alpha "/query") in
        Alcotest.(check bool) "cache warm before update" true
          (body_flag warm "cached");
        let gen0 = body_generation warm in
        (match client port "/update" with
        | Resp { status = 405; _ } -> ()
        | _ -> Alcotest.fail "GET /update should 405");
        (* nothing commits on bad input *)
        List.iter
          (fun body ->
            match client port ~body "/update" with
            | Resp { status = 400; _ } -> ()
            | Resp { status; r_body; _ } ->
              Alcotest.failf "bad update %S: expected 400, got %d: %s" body
                status r_body
            | Conn_error e -> Alcotest.failf "connection error: %s" e)
          [ " "; "bogus,alpha,c0"; "delete,alpha,nope,0" ];
        Alcotest.(check int) "rejected updates committed nothing" gen0
          (Store.generation dir);
        (* the real batch *)
        let body = expect_200 (client port ~body:batch_csv "/update") in
        let gen = body_generation body in
        Alcotest.(check int) "generation bumped" (gen0 + 1) gen;
        Alcotest.(check string) "ops counted" "2" (body_field body "ops");
        Alcotest.(check string) "touched clusters counted" "2"
          (body_field body "touched");
        Alcotest.(check bool) "delta append, not a compaction" false
          (body_flag body "compacted");
        (* immediately visible, never served from the stale cache *)
        let fresh = List.assoc q_alpha (expected_rows updated) in
        let q = expect_200 (client port ~body:q_alpha "/query") in
        Alcotest.(check int) "new generation visible" gen (body_generation q);
        Alcotest.(check string) "updated answers" fresh (body_rows q);
        Alcotest.(check bool) "stale cache not used" false (body_flag q "cached");
        (* durable: an independent load replays the committed delta *)
        Alcotest.(check bool) "committed delta replays on load" true
          (Testutil.db_fingerprint (Store.load dir)
          = Testutil.db_fingerprint updated);
        (* metrics surface *)
        let prom = expect_200 (client port "/metrics") in
        Alcotest.(check bool) "updates counter exported" true
          (find_sub prom "conquer_serve_updates" <> None);
        Alcotest.(check bool) "journal bytes gauge exported" true
          (find_sub prom "conquer_dirty_store_journal_bytes" <> None))
  in
  ()

let test_update_compaction_threshold () =
  let config = { base_config with compact_every = 2 } in
  let (), _report =
    with_server ~config fixture (fun dir _t port ->
        let b1 =
          expect_200 (client port ~body:"reassign,alpha,c1,1,1" "/update")
        in
        Alcotest.(check bool) "first update appends a delta" false
          (body_flag b1 "compacted");
        Alcotest.(check int) "chain grew" 1 (Store.delta_chain_length dir);
        let b2 =
          expect_200 (client port ~body:"reassign,alpha,c2,1,1" "/update")
        in
        Alcotest.(check bool) "threshold update compacts" true
          (body_flag b2 "compacted");
        Alcotest.(check int) "chain reset by the snapshot" 0
          (Store.delta_chain_length dir))
  in
  ()

(* concurrent writers: every update serializes onto a distinct
   generation, losers get 503 + Retry-After (never 500), and the final
   database is the commutative image of every committed reassign *)
let test_concurrent_updates_serialize () =
  let n_writers = 4 and per_writer = 4 in
  let config = { base_config with concurrency = 4 } in
  let (results, final_gen, final_db), _report =
    with_server ~config fixture (fun dir _t port ->
        let writers =
          List.init n_writers (fun w ->
              Domain.spawn (fun () ->
                  List.init per_writer (fun i ->
                      let csv =
                        Printf.sprintf "reassign,alpha,c%d,1,3"
                          ((w * per_writer) + i)
                      in
                      (w, i, client port ~body:csv "/update"))))
        in
        let results = List.concat_map Domain.join writers in
        (results, Store.generation dir, Store.load dir))
  in
  let committed =
    List.filter_map
      (fun (w, i, o) ->
        match o with
        | Resp ({ status = 200; r_body; _ } : Server.Http.response) ->
          Some ((w * per_writer) + i, body_generation r_body)
        | Resp ({ status = 503; _ } as r) ->
          Alcotest.(check bool) "write-path 503 carries retry-after" true
            (List.assoc_opt "retry-after" r.Server.Http.r_headers <> None);
          None
        | Resp { status; r_body; _ } ->
          Alcotest.failf "concurrent update status %d: %s" status r_body
        | Conn_error e -> Alcotest.failf "connection error: %s" e)
      results
  in
  let gens = List.map snd committed in
  Alcotest.(check int) "every commit took a distinct generation"
    (List.length gens)
    (List.length (List.sort_uniq compare gens));
  Alcotest.(check int) "final generation counts the commits"
    (1 + List.length committed)
    final_gen;
  (* distinct clusters commute, so the final database is the image of
     applying exactly the committed reassigns in any order *)
  let expected =
    List.fold_left
      (fun db (k, _) ->
        (Delta.apply db
           [
             Delta.Reassign
               {
                 table = "alpha";
                 cluster = Value.String (Printf.sprintf "c%d" k);
                 weights = [| 1.0; 3.0 |];
               };
           ])
          .Delta.db)
      fixture committed
  in
  Alcotest.(check bool) "final database is the committed image" true
    (Testutil.db_fingerprint final_db = Testutil.db_fingerprint expected)

(* ---- circuit breaker against injected store faults ---- *)

let test_breaker_trips_and_recovers () =
  let saved_policy = Fault.Retry.policy () in
  Fault.Retry.set_policy
    { attempts = 2; base_backoff = 0.02; max_backoff = 0.1; jitter = 0.0 };
  Fun.protect ~finally:(fun () -> Fault.Retry.set_policy saved_policy)
  @@ fun () ->
  let config = { base_config with breaker_threshold = 2 } in
  let before =
    Option.value (Telemetry.Metrics.counter_value "serve.breaker_trips")
      ~default:0
  in
  let (), _report =
    with_server ~config fixture (fun _dir _t port ->
        ignore (expect_200 (client port ~body:q_alpha "/query"));
        (* simulate the store's disk dying mid-flight: every shim
           operation now raises *)
        Fault.Io.reset ();
        Fault.Io.arm [ (0, Fault.Io.Crash) ];
        let statuses =
          List.init 6 (fun _ ->
              match client port ~body:q_beta "/query" with
              | Resp r -> r.Server.Http.status
              | Conn_error e -> Alcotest.failf "connection error: %s" e)
        in
        List.iter
          (fun s ->
            Alcotest.(check int) "faulty store answers 503, not 500" 503 s)
          statuses;
        (* cached answers for the current generation are not reachable
           while the breaker is open — the daemon fails fast instead *)
        (* the disk heals; after the cooldown the half-open probe must
           close the breaker and serve again *)
        Fault.Io.reset ();
        Unix.sleepf 0.3;
        let rec recovered tries =
          if tries = 0 then Alcotest.fail "breaker never closed after heal"
          else
            match client port ~body:q_alpha "/query" with
            | Resp { status = 200; _ } -> ()
            | _ ->
              Unix.sleepf 0.1;
              recovered (tries - 1)
        in
        recovered 10)
  in
  let after =
    Option.value (Telemetry.Metrics.counter_value "serve.breaker_trips")
      ~default:0
  in
  Alcotest.(check bool) "breaker trip counted" true (after > before)

(* ---- drain: clean and forced ---- *)

let test_graceful_drain_clean () =
  let config = { base_config with concurrency = 2; drain_deadline = 10.0 } in
  let outcomes, report =
    with_server ~config fixture (fun _dir t port ->
        let clients =
          List.init 3 (fun _ ->
              Domain.spawn (fun () ->
                  client port ~body:slow_sql "/query?mode=original&deadline_ms=800"))
        in
        Unix.sleepf 0.1;
        (* drain while they are still executing; with_server joins the
           runner, so returning here races shutdown against the work *)
        Server.Serve.shutdown t;
        List.map Domain.join clients)
  in
  Alcotest.(check bool) "drained cleanly" true report.Server.Serve.drained;
  List.iter
    (fun o ->
      match o with
      | Resp { status = 200 | 408 | 503; _ } -> ()
      | Resp { status; _ } -> Alcotest.failf "drain produced status %d" status
      | Conn_error e -> Alcotest.failf "drain dropped a client: %s" e)
    outcomes

let test_forced_drain_cancels () =
  let config =
    { base_config with concurrency = 2; drain_deadline = 0.2; default_deadline = 30.0 }
  in
  let started = Unix.gettimeofday () in
  let outcomes, report =
    with_server ~config fixture (fun _dir t port ->
        let clients =
          List.init 2 (fun _ ->
              Domain.spawn (fun () ->
                  client port ~body:slow_sql "/query?mode=original"))
        in
        Unix.sleepf 0.15;
        Server.Serve.shutdown t;
        List.map Domain.join clients)
  in
  let elapsed = Unix.gettimeofday () -. started in
  Alcotest.(check bool) "hard drain reported" false report.Server.Serve.drained;
  Alcotest.(check bool) "in-flight work was cancelled" true
    (report.Server.Serve.cancelled_inflight >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "came down in bounded time (%.2fs)" elapsed)
    true (elapsed < 10.0);
  (* force-cancelled queries still answer: 200 with the partial flag *)
  List.iter
    (fun o ->
      match o with
      | Resp { status = 200; r_body; _ } ->
        Alcotest.(check bool) "cancelled partial" true
          (body_flag r_body "partial")
      | Resp { status = 408 | 503; _ } -> ()
      | Resp { status; _ } -> Alcotest.failf "forced drain status %d" status
      | Conn_error e -> Alcotest.failf "forced drain dropped a client: %s" e)
    outcomes

(* ---- metrics surface (satellite snapshot test) ---- *)

let test_metrics_surface () =
  (* by this point earlier tests have driven real traffic *)
  let names =
    List.map
      (fun (s : Telemetry.Metrics.sample) -> s.name)
      (Telemetry.Metrics.snapshot ())
  in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " registered") true (List.mem n names))
    [
      "serve.requests"; "serve.shed"; "serve.cancelled"; "serve.partial";
      "serve.cache_hits"; "serve.breaker_trips"; "serve.request_seconds";
    ];
  Alcotest.(check bool) "requests counted" true
    (Option.value (Telemetry.Metrics.counter_value "serve.requests") ~default:0
    > 0);
  let prom = Telemetry.Export.prometheus_string () in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " exported") true (find_sub prom n <> None))
    [
      "conquer_serve_requests"; "conquer_serve_shed";
      "conquer_serve_cache_hits"; "conquer_serve_breaker_trips";
      "conquer_serve_request_seconds";
    ];
  (* the latency histogram is live: quantiles are ordered and positive *)
  match
    List.find_opt
      (fun (s : Telemetry.Metrics.sample) -> s.name = "serve.request_seconds")
      (Telemetry.Metrics.snapshot ())
  with
  | Some { data = Telemetry.Metrics.Histogram_value hs; _ } when hs.hs_total > 0
    ->
    let p50 = Telemetry.Metrics.histogram_quantile hs 0.5 in
    let p99 = Telemetry.Metrics.histogram_quantile hs 0.99 in
    Alcotest.(check bool) "p50 positive" true (p50 > 0.0);
    Alcotest.(check bool) "quantiles ordered" true (p50 <= p99)
  | _ -> Alcotest.fail "serve.request_seconds has no observations"

(* ---- the chaos soak ---- *)

let test_chaos_soak () =
  (* generation -> expected rows per query; written by the saver
     domain, read by the clients, hence the lock *)
  let gen_expected = Hashtbl.create 8 in
  let exp_lock = Mutex.create () in
  let record_expected gen db =
    let rows = expected_rows db in
    Mutex.lock exp_lock;
    Hashtbl.replace gen_expected gen rows;
    Mutex.unlock exp_lock
  in
  let lookup_expected gen =
    Mutex.lock exp_lock;
    let r = Hashtbl.find_opt gen_expected gen in
    Mutex.unlock exp_lock;
    r
  in
  record_expected 1 fixture;
  let wrong = ref [] in
  let wrong_lock = Mutex.create () in
  let complain fmt =
    Printf.ksprintf
      (fun msg ->
        Mutex.lock wrong_lock;
        wrong := msg :: !wrong;
        Mutex.unlock wrong_lock)
      fmt
  in
  (* a complete 200 must carry exactly the direct [Clean.answers] of
     the snapshot of the generation it claims *)
  let check_complete_answer sql body =
    if not (body_flag body "partial") then begin
      let gen = body_generation body in
      match lookup_expected gen with
      | None -> complain "response claims unknown generation %d" gen
      | Some expected ->
        let want = List.assoc sql expected in
        let got = body_rows body in
        if got <> want then
          complain "wrong answer for %S at generation %d: %s <> %s" sql gen got
            want
    end
  in
  let config =
    { base_config with concurrency = 4; queue_capacity = 8; breaker_threshold = 3 }
  in
  let statuses = Array.make 600 0 in
  let phase nclients per_client worker =
    let domains =
      List.init nclients (fun c ->
          Domain.spawn (fun () ->
              for i = 0 to per_client - 1 do
                worker c i
              done))
    in
    List.iter Domain.join domains
  in
  let (), report =
    with_server ~config fixture (fun dir _t port ->
        let record slot outcome =
          (match outcome with
          | Resp { status = (200 | 400 | 408 | 503) as s; _ } ->
            statuses.(slot) <- s
          | Resp { status; r_body; _ } ->
            complain "unexpected status %d: %s" status r_body
          | Conn_error _ -> statuses.(slot) <- -1);
          outcome
        in
        (* phase A: 160 concurrent well-behaved requests, no faults —
           every one must come back 200 with the right rows *)
        phase 8 20 (fun c i ->
            let slot = (c * 20) + i in
            let sql = List.nth fast_queries (i mod 3) in
            match record slot (client port ~body:sql "/query") with
            | Resp { status = 200; r_body; _ } ->
              check_complete_answer sql r_body
            | Resp { status; r_body; _ } ->
              complain "phase A status %d: %s" status r_body
            | Conn_error e -> complain "phase A connection error: %s" e);
        (* phase B: 64 requests mixing heavy short-deadline queries,
           tiny budgets, and rude disconnecting clients *)
        phase 8 8 (fun c i ->
            let slot = 160 + (c * 8) + i in
            match i mod 4 with
            | 0 -> (
              let started = Unix.gettimeofday () in
              let o =
                record slot
                  (client port ~body:slow_sql
                     "/query?mode=original&deadline_ms=1000")
              in
              let elapsed = Unix.gettimeofday () -. started in
              if elapsed > 2.0 then
                complain "deadline overrun: %.3fs for a 1s deadline" elapsed;
              match o with
              | Resp { status = 200; _ } -> () (* partial or complete: fine *)
              | Resp { status = 408 | 503; _ } -> ()
              | Resp { status; _ } -> complain "phase B status %d" status
              | Conn_error e -> complain "phase B connection error: %s" e)
            | 1 ->
              fire_and_hangup port "/query?mode=original&deadline_ms=20000";
              statuses.(slot) <- 0
            | _ -> (
              let sql = List.nth fast_queries (i mod 3) in
              match
                record slot (client port ~body:sql "/query?budget_rows=3")
              with
              | Resp { status = 200; r_body; _ } ->
                check_complete_answer sql r_body
              | Resp { status = 503; _ } -> ()
              | Resp { status; _ } -> complain "phase B status %d" status
              | Conn_error e -> complain "phase B connection error: %s" e));
        (* phase C: live re-commits concurrent with 96 readers — every
           complete answer must match the generation it names.  The
           saver records the expected answers BEFORE committing (one
           sequential saver, so the post-save generation is known), so
           a reader can never observe a generation it cannot check. *)
        let saver =
          Domain.spawn (fun () ->
              for k = 1 to 2 do
                Unix.sleepf 0.05;
                let db = variant k in
                record_expected (Store.generation dir + 1) db;
                Store.save dir db
              done)
        in
        phase 8 12 (fun c i ->
            let slot = 224 + (c * 12) + i in
            let sql = List.nth fast_queries (i mod 3) in
            match record slot (client port ~body:sql "/query") with
            | Resp { status = 200; r_body; _ } ->
              check_complete_answer sql r_body
            | Resp { status = 503; _ } -> ()
            | Resp { status; r_body; _ } ->
              complain "phase C status %d: %s" status r_body
            | Conn_error e -> complain "phase C connection error: %s" e);
        Domain.join saver)
  in
  (match !wrong with
  | [] -> ()
  | msgs ->
    Alcotest.failf "soak found %d violation(s):\n%s" (List.length msgs)
      (String.concat "\n" msgs));
  let total = Array.fold_left (fun n s -> if s <> 0 then n + 1 else n) 0 statuses in
  Alcotest.(check bool)
    (Printf.sprintf "soak exercised %d requests" total)
    true (total >= 200);
  let ok = Array.fold_left (fun n s -> if s = 200 then n + 1 else n) 0 statuses in
  Alcotest.(check bool)
    (Printf.sprintf "most requests answered 200 (%d/%d)" ok total)
    true (ok * 10 >= total * 7);
  Alcotest.(check bool) "server drained after the soak" true
    report.Server.Serve.drained

let () =
  Alcotest.run "serve"
    [
      ( "units",
        [
          Alcotest.test_case "cache FIFO semantics" `Quick test_cache_fifo;
          Alcotest.test_case "breaker transitions" `Quick
            test_breaker_transitions;
          Alcotest.test_case "histogram quantiles" `Quick
            test_histogram_quantile;
          Alcotest.test_case "query-log records round-trip" `Quick
            test_querylog_roundtrip;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "sampled trace covers the wall-clock" `Quick
            test_trace_capture_and_coverage;
          Alcotest.test_case "trace integrity across 4 worker domains" `Quick
            test_trace_integrity_across_domains;
          Alcotest.test_case "slow queries promote to span dumps" `Quick
            test_slow_query_promotion;
          Alcotest.test_case "query log over /debug/querylog" `Quick
            test_querylog_over_http;
          Alcotest.test_case "/debug/requests shows in-flight work" `Quick
            test_debug_requests_inflight;
          Alcotest.test_case "rate 0 retains nothing" `Quick
            test_tracing_off_retains_nothing;
          Alcotest.test_case "query-log file sink" `Quick
            test_querylog_file_sink;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "endpoints and differential answers" `Quick
            test_endpoints_and_answers;
          Alcotest.test_case "tiny budget yields partial, uncached" `Quick
            test_partial_on_tiny_budget;
          Alcotest.test_case "deadline yields partial or 408 in 2x" `Quick
            test_deadline_partial_or_408;
          Alcotest.test_case "burst sheds with Retry-After" `Quick
            test_shed_under_burst;
          Alcotest.test_case "client disconnect cancels the query" `Quick
            test_client_disconnect_cancels;
          Alcotest.test_case "commits invalidate the result cache" `Quick
            test_cache_invalidation_on_commit;
          Alcotest.test_case "POST /update commits and invalidates" `Quick
            test_update_endpoint;
          Alcotest.test_case "update compaction threshold" `Quick
            test_update_compaction_threshold;
          Alcotest.test_case "concurrent updates serialize" `Quick
            test_concurrent_updates_serialize;
          Alcotest.test_case "breaker trips on store faults and heals" `Quick
            test_breaker_trips_and_recovers;
          Alcotest.test_case "graceful drain completes in-flight work" `Quick
            test_graceful_drain_clean;
          Alcotest.test_case "forced drain cancels in bounded time" `Quick
            test_forced_drain_cancels;
        ] );
      ( "soak",
        [ Alcotest.test_case "chaos soak" `Slow test_chaos_soak ] );
      ( "metrics",
        [
          Alcotest.test_case "serve counters surfaced" `Quick
            test_metrics_surface;
        ] );
    ]
