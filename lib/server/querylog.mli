(** Structured query log: one flat JSON record per request, retained
    in a bounded ring (served by [/debug/querylog] and tailed by
    [conquer trace --log]) and optionally appended to a JSON-lines
    file. *)

type record = {
  seq : int;  (** monotone per daemon; stamped by {!log} *)
  ts : float;  (** Unix epoch seconds at response completion *)
  trace_id : string;
  sampled : bool;  (** a span tree was captured and retained *)
  sql : string;  (** normalized SQL; [""] when parsing failed *)
  fingerprint : string;  (** stable hash of the normalized SQL *)
  plan_hash : string;  (** stable hash of the physical plan; [""] if unplanned *)
  generation : int;  (** store generation answered from; [-1] if none *)
  mode : string;  (** ["rewritten"] or ["original"] *)
  status : int;  (** HTTP status sent *)
  rows : int;  (** answer rows in a 200 *)
  truncated : bool;
  cancelled : bool;
  cached : bool;
  slow : bool;  (** total latency crossed the slow-query threshold *)
  queue_wait_ms : float;
  exec_ms : float;
  total_ms : float;
}

val empty_record : record
(** All-zero template; build records with [{ empty_record with ... }]. *)

val fingerprint : string -> string
(** Stable 16-hex-char fingerprint of (normalized) SQL text. *)

val to_json : record -> string
(** One flat JSON object, no newline.  Finite floats round-trip
    exactly through {!of_json}. *)

val of_json : string -> (record, string) result
(** Parse a record emitted by {!to_json}.  Unknown keys are ignored;
    missing keys take the {!empty_record} defaults. *)

type t

val create : ?capacity:int -> ?path:string -> unit -> t
(** A log retaining the newest [capacity] (default 512) records;
    [path] additionally appends each record as a JSON line. *)

val log : t -> record -> record
(** Stamp the next sequence number onto the record, retain it, append
    it to the file sink, and return the stamped record. *)

val recent : ?after:int -> ?n:int -> t -> record list
(** Records with [seq > after] still in the ring, ascending by [seq],
    the newest [n] (default: everything retained).  Tail by polling
    with the last seen [seq] as the next [after]. *)

val close : t -> unit
(** Close the file sink, if any. *)
