(** The embedded database: catalog, indexes, statistics, and the query
    entry points. *)

type t

val create : unit -> t

val overlay : t -> name:string -> from:t -> t
(** [overlay t ~name ~from] is a shallow copy of [t] whose entry for
    table [name] — relation, indexes, statistics — is the one [from]
    holds (removed when [from] has no such table).  Every other entry
    is shared with [t], so later index or statistics changes on either
    database are visible through both.  The shard executor uses this
    to run a plan fragment against [fragment ∪ global-other-tables]
    without copying any table data. *)

val add_relation : t -> name:string -> Dirty.Relation.t -> unit
(** Register (or replace) a base table. Replacing a table drops its
    indexes and statistics. *)

val drop_relation : t -> string -> unit
val relation : t -> string -> Dirty.Relation.t
(** @raise Not_found *)

val relation_opt : t -> string -> Dirty.Relation.t option
val table_names : t -> string list

val create_index : t -> table:string -> attr:string -> unit
(** Build (or rebuild) a hash index. @raise Not_found for an unknown
    table or attribute. *)

val has_index : t -> table:string -> attr:string -> bool
val index : t -> table:string -> attr:string -> Index.t option

val analyze : t -> string -> unit
(** RUNSTATS: collect statistics for the table. *)

val analyze_all : t -> unit
val stats : t -> string -> Stats.t option

val plan : ?config:Planner.config -> t -> Sql.Ast.query -> Plan.t
val run_plan :
  ?budget:Budget.t -> ?jobs:int -> ?chunked:bool -> ?spill:Exec.spill ->
  t -> Plan.t -> Dirty.Relation.t
(** Execute a plan directly.  [chunked] (default [true]) selects the
    columnar chunk executor; [spill] enables the Grace hash-join spill
    — see {!Exec.run}. *)

val query_ast : ?config:Planner.config -> t -> Sql.Ast.query -> Dirty.Relation.t
val query : ?config:Planner.config -> t -> string -> Dirty.Relation.t
(** Parse, plan and execute SQL text.  When the config declares an
    execution budget, exceeding [max_rows] raises {!Budget.Exceeded}
    and exceeding [max_elapsed] raises {!Cancel.Cancelled} — a
    wall-clock watchdog trips the budget's cancellation token, so even
    a query stuck inside a parallel operator is interrupted at its
    next checkpoint.  The config's [jobs] field selects
    partition-parallel execution; with no config the process-wide
    default ([--jobs] / [CONQUER_JOBS]) applies.
    @raise Sql.Parser.Error, Planner.Plan_error, Exec.Exec_error,
    Budget.Exceeded or Cancel.Cancelled. *)

type stop = {
  truncated : bool;  (** the row budget ran out; rows are a prefix *)
  cancelled : bool;
      (** the time budget ran out (or the token was tripped); rows are
          whatever had been produced when the execution stopped *)
}

val query_ast_within :
  ?config:Planner.config ->
  ?cancel:Cancel.token ->
  t ->
  Sql.Ast.query ->
  Dirty.Relation.t * stop
(** Like {!query_ast}, but a budget declared by the config degrades
    gracefully instead of raising: execution stops producing rows once
    the budget is spent and the partial result is returned together
    with how it stopped.

    When [cancel] is given, that token (rather than a fresh internal
    one) is attached to the budget — and a budget is created even for
    a limitless config — so an external trip (a disconnected client, a
    server drain) stops the execution at its next checkpoint and
    surfaces as [stop.cancelled]. *)

val explain : ?config:Planner.config -> t -> string -> string
(** The plan the query would run, rendered EXPLAIN-style. *)

val query_profiled :
  ?config:Planner.config -> t -> string -> Dirty.Relation.t * Exec.profile
(** Execute and return per-operator row counts and timings. *)

val explain_analyze : ?config:Planner.config -> t -> string -> string
(** Run the query and render the profiled plan (rows and elapsed time
    per operator, EXPLAIN ANALYZE-style). *)
