(** SQL pretty-printer.

    The rewriting of Section 3 produces an SQL query; this module
    renders query ASTs back to SQL text so that rewritten queries can
    be displayed, logged, and re-parsed (round-tripping is covered by
    tests). *)

val expr_to_string : Ast.expr -> string
val query_to_string : Ast.query -> string

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_query : Format.formatter -> Ast.query -> unit
