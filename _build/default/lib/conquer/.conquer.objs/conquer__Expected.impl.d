lib/conquer/expected.ml: Array Candidates Clean Dirty Dirty_db Dirty_schema Engine Hashtbl List Relation Rewrite Sql Value
