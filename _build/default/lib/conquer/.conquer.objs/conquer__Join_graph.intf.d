lib/conquer/join_graph.mli: Dirty_schema Format Sql
