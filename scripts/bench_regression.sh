#!/bin/sh
# Warn-only bench regression check: compare the two newest
# BENCH_<n>.json files (conquer-bench/1 schema) sample by sample and
# flag medians that moved more than the threshold.
#
#   scripts/bench_regression.sh [--threshold PCT] [DIR]
#
# Never fails the build: CI bench boxes are noisy, so a regression
# here is a reason to look, not a reason to block.  Exits 0 always
# (including when there are fewer than two files to compare).

THRESHOLD=20
case "$1" in
  --threshold)
    THRESHOLD="$2"
    shift 2
    ;;
esac
DIR="${1:-.}"

# newest two by the numeric suffix bench/main.ml allocates
files=$(ls "$DIR"/BENCH_*.json 2>/dev/null \
  | sed 's/.*BENCH_\([0-9]*\)\.json/\1 &/' \
  | sort -n | awk '{print $2}' | tail -2)
count=$(printf '%s\n' "$files" | grep -c . || true)

if [ "$count" -lt 2 ]; then
  echo "bench-regression: need two BENCH_*.json files, found $count -- nothing to compare"
  exit 0
fi

old=$(printf '%s\n' "$files" | head -1)
new=$(printf '%s\n' "$files" | tail -1)
echo "bench-regression: $old -> $new (warn at ${THRESHOLD}% median growth)"

# one "report|name|median_ms" line per sample; the files are
# machine-written, so splitting objects on "},{" is reliable
medians() {
  tr '{' '\n' < "$1" \
    | grep '"median_ms"' \
    | sed 's/.*"report":"\([^"]*\)","name":"\([^"]*\)".*"median_ms":\([0-9.eE+-]*\).*/\1|\2|\3/'
}

medians "$old" > /tmp/bench_old.$$
medians "$new" > /tmp/bench_new.$$
trap 'rm -f /tmp/bench_old.$$ /tmp/bench_new.$$' EXIT

warned=0
while IFS='|' read -r report name new_ms; do
  old_ms=$(grep -F "$report|$name|" /tmp/bench_old.$$ | head -1 | cut -d'|' -f3)
  [ -n "$old_ms" ] || continue
  verdict=$(awk -v o="$old_ms" -v n="$new_ms" -v t="$THRESHOLD" 'BEGIN {
    if (o <= 0) { print "skip"; exit }
    pct = (n - o) / o * 100.0
    printf "%s %.1f", (pct > t) ? "WARN" : "ok", pct
  }')
  case "$verdict" in
    skip) ;;
    WARN*)
      pct=${verdict#WARN }
      echo "  WARN $report/$name: ${old_ms}ms -> ${new_ms}ms (+${pct}%)"
      warned=$((warned + 1))
      ;;
    *)
      pct=${verdict#ok }
      echo "    ok $report/$name: ${old_ms}ms -> ${new_ms}ms (${pct}%)"
      ;;
  esac
done < /tmp/bench_new.$$

if [ "$warned" -gt 0 ]; then
  echo "bench-regression: $warned sample(s) regressed beyond ${THRESHOLD}% (warn-only, not failing the build)"
else
  echo "bench-regression: no sample regressed beyond ${THRESHOLD}%"
fi
exit 0
