lib/prob/representative.mli: Dirty Format Infotheory Matrix
