(** The class of rewritable queries (Dfn 7).

    An SPJ query is rewritable when:

    + every join involves the identifier of at least one relation,
    + its join graph is a tree,
    + no relation appears in the FROM clause more than once (no
      self-joins), and
    + the identifier of the relation at the root of the join graph
      appears in the SELECT clause.

    For such queries {!Rewrite.rewrite_clean} computes the clean
    answers on every dirty database (Theorem 1). *)

type violation =
  | Not_spj of string
      (** the query has aggregates/grouping/DISTINCT — outside the
          class *)
  | Unknown_dirty_table of string
      (** a FROM relation has no identifier/probability metadata *)
  | Join_without_identifier of Sql.Ast.expr  (** violates condition 1 *)
  | Non_equality_join of Sql.Ast.expr
      (** a cross-relation predicate that is not a column equality *)
  | Graph_not_tree of { roots : string list }  (** violates condition 2 *)
  | Repeated_relation of string  (** violates condition 3 *)
  | Root_identifier_not_selected of { root : string; id_attr : string }
      (** violates condition 4 *)
  | Unresolved_column of string

val violation_to_string : violation -> string

val check :
  Dirty_schema.env -> Sql.Ast.query -> (Join_graph.t, violation list) result
(** All violations (empty list never returned as [Error]); on success
    the query's join graph. *)

val is_rewritable : Dirty_schema.env -> Sql.Ast.query -> bool

val root : Join_graph.t -> string
(** The root of a tree-shaped join graph.
    @raise Invalid_argument if the graph is not a tree. *)
