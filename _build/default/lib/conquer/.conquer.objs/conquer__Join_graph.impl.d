lib/conquer/join_graph.ml: Dirty Dirty_schema Format Hashtbl List Option Printf Sql String
