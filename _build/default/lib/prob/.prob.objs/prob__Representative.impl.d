lib/prob/representative.ml: Array Cluster Dirty Format Infotheory Interning List Matrix Value
